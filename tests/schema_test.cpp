#include <gtest/gtest.h>

#include "graph/gaifman.hpp"
#include "schema/closure.hpp"
#include "schema/encode.hpp"
#include "schema/generators.hpp"
#include "schema/primality_bruteforce.hpp"
#include "schema/schema.hpp"
#include "td/heuristics.hpp"
#include "td/validate.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

TEST(SchemaTest, ParseAndToString) {
  auto schema = Schema::Parse("attributes: a, b, c\na b -> c\nc -> a\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->NumAttributes(), 3);
  EXPECT_EQ(schema->NumFds(), 2);
  EXPECT_EQ(schema->ToString(), "R = {a, b, c};  F = {a b -> c, c -> a}");
}

TEST(SchemaTest, ParseErrors) {
  EXPECT_EQ(Schema::Parse("a b c\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Schema::Parse("-> c\n").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Schema::Parse("a 1x -> c\n").status().code(),
            StatusCode::kParseError);
}

TEST(SchemaTest, FdsDeduplicateLhs) {
  Schema s;
  AttributeId a = s.AddAttribute("a");
  AttributeId b = s.AddAttribute("b");
  FdId f = s.AddFd({b, a, b}, a).value();
  EXPECT_EQ(s.Fd(f).lhs, (std::vector<AttributeId>{a, b}));
}

TEST(ClosureTest, PaperExampleClosures) {
  Schema s = Schema::PaperExampleSchema();
  auto attr = [&](const char* n) { return s.AttributeByName(n).value(); };
  // {a, b}⁺ = {a, b, c} (via ab -> c, then c -> b adds nothing new).
  AttrSet ab = MakeAttrSet(s, {attr("a"), attr("b")});
  AttrSet closure = Closure(s, ab);
  EXPECT_TRUE(closure[static_cast<size_t>(attr("c"))]);
  EXPECT_FALSE(closure[static_cast<size_t>(attr("d"))]);
  EXPECT_FALSE(closure[static_cast<size_t>(attr("e"))]);
  // {a, b, d}⁺ = R.
  EXPECT_TRUE(IsSuperkey(s, MakeAttrSet(s, {attr("a"), attr("b"), attr("d")})));
  // {g}⁺ = {g, e}: closed check.
  AttrSet ge = MakeAttrSet(s, {attr("g"), attr("e")});
  EXPECT_TRUE(IsClosed(s, ge));
  EXPECT_FALSE(IsClosed(s, MakeAttrSet(s, {attr("g")})));
}

TEST(ClosureTest, PaperExampleKeys) {
  Schema s = Schema::PaperExampleSchema();
  auto attr = [&](const char* n) { return s.AttributeByName(n).value(); };
  AttrSet abd = MakeAttrSet(s, {attr("a"), attr("b"), attr("d")});
  AttrSet acd = MakeAttrSet(s, {attr("a"), attr("c"), attr("d")});
  EXPECT_TRUE(IsKey(s, abd));
  EXPECT_TRUE(IsKey(s, acd));
  // Ex 2.1: these are the only two keys.
  auto keys = AllKeysBruteForce(s);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_TRUE((keys[0] == abd && keys[1] == acd) ||
              (keys[0] == acd && keys[1] == abd));
}

TEST(ClosureTest, EmptySetAndFullSet) {
  Schema s = Schema::PaperExampleSchema();
  EXPECT_TRUE(IsClosed(s, EmptyAttrSet(s)));
  EXPECT_TRUE(IsSuperkey(s, FullAttrSet(s)));
  EXPECT_FALSE(IsKey(s, FullAttrSet(s)));  // not minimal
}

TEST(ClosureTest, ClosureIsMonotoneIdempotentExtensive) {
  Rng rng(TestSeed());
  for (int trial = 0; trial < 20; ++trial) {
    Schema s = RandomWindowSchema(10, 6, 4, &rng);
    AttrSet x = EmptyAttrSet(s);
    AttrSet y = EmptyAttrSet(s);
    for (int a = 0; a < s.NumAttributes(); ++a) {
      bool in_x = rng.Bernoulli(0.3);
      x[static_cast<size_t>(a)] = in_x;
      y[static_cast<size_t>(a)] = in_x || rng.Bernoulli(0.2);  // x ⊆ y
    }
    AttrSet cx = Closure(s, x);
    AttrSet cy = Closure(s, y);
    for (size_t a = 0; a < cx.size(); ++a) {
      EXPECT_TRUE(!x[a] || cx[a]) << "extensive";
      EXPECT_TRUE(!cx[a] || cy[a]) << "monotone";
    }
    EXPECT_EQ(Closure(s, cx), cx) << "idempotent";
  }
}

TEST(PrimalityBruteForceTest, PaperExamplePrimes) {
  Schema s = Schema::PaperExampleSchema();
  auto primes = AllPrimesBruteForce(s);
  auto attr = [&](const char* n) {
    return static_cast<size_t>(s.AttributeByName(n).value());
  };
  EXPECT_TRUE(primes[attr("a")]);
  EXPECT_TRUE(primes[attr("b")]);
  EXPECT_TRUE(primes[attr("c")]);
  EXPECT_TRUE(primes[attr("d")]);
  EXPECT_FALSE(primes[attr("e")]);
  EXPECT_FALSE(primes[attr("g")]);
}

TEST(PrimalityBruteForceTest, MatchesKeyMembership) {
  // Definition check: prime iff member of some minimal key.
  Rng rng(TestSeed());
  for (int trial = 0; trial < 15; ++trial) {
    Schema s = RandomWindowSchema(8, 5, 4, &rng);
    auto keys = AllKeysBruteForce(s);
    std::vector<bool> in_some_key(static_cast<size_t>(s.NumAttributes()), false);
    for (const AttrSet& key : keys) {
      for (size_t a = 0; a < key.size(); ++a) {
        if (key[a]) in_some_key[a] = true;
      }
    }
    for (AttributeId a = 0; a < s.NumAttributes(); ++a) {
      EXPECT_EQ(IsPrimeBruteForce(s, a), in_some_key[static_cast<size_t>(a)])
          << "trial " << trial << " attribute " << a;
    }
  }
}

TEST(EncodeTest, PaperExampleEncoding) {
  Schema s = Schema::PaperExampleSchema();
  SchemaEncoding enc = EncodeSchema(s);
  EXPECT_EQ(enc.structure.NumElements(), 11u);
  EXPECT_EQ(enc.num_attributes, 6);
  EXPECT_EQ(enc.num_fds, 5);
  EXPECT_TRUE(enc.IsAttrElement(enc.AttrElement(0)));
  EXPECT_TRUE(enc.IsFdElement(enc.FdElement(0)));
  EXPECT_EQ(enc.AttrOf(enc.AttrElement(3)), 3);
  EXPECT_EQ(enc.FdOf(enc.FdElement(2)), 2);
  PredicateId lh = enc.structure.signature().PredicateIdOf("lh").value();
  EXPECT_EQ(enc.structure.Relation(lh).size(), 8u);
}

TEST(EncodeTest, DecodeRoundTrip) {
  Schema s = Schema::PaperExampleSchema();
  SchemaEncoding enc = EncodeSchema(s);
  auto back = DecodeSchema(enc.structure);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumAttributes(), s.NumAttributes());
  EXPECT_EQ(back->NumFds(), s.NumFds());
  // Same primality profile (semantic round trip).
  EXPECT_EQ(AllPrimesBruteForce(*back), AllPrimesBruteForce(s));
}

TEST(EncodeTest, EncodedPaperExampleHasTreewidthTwo) {
  // Ex 2.2 argues tw(A) = 2; exact search on the Gaifman graph confirms.
  Schema s = Schema::PaperExampleSchema();
  SchemaEncoding enc = EncodeSchema(s);
  Graph gaifman = GaifmanGraph(enc.structure);
  EXPECT_EQ(ExactTreewidth(gaifman).value(), 2);
}

TEST(GeneratorTest, BalancedInstanceStructure) {
  for (int g : {1, 2, 3, 7}) {
    BalancedInstance inst = GenerateBalancedInstance(g);
    EXPECT_EQ(inst.schema.NumAttributes(), 3 * g);
    EXPECT_EQ(inst.schema.NumFds(), g);
    EXPECT_EQ(inst.td.Width(), 3);
    EXPECT_TRUE(ValidateForStructure(inst.encoding.structure, inst.td).ok());
    // Root bag contains both distinguished attributes.
    EXPECT_TRUE(inst.td.BagContains(
        inst.td.root(), inst.encoding.AttrElement(inst.query_attribute)));
    EXPECT_TRUE(inst.td.BagContains(
        inst.td.root(), inst.encoding.AttrElement(inst.nonprime_attribute)));
  }
}

TEST(GeneratorTest, BalancedInstanceGroundTruthPrimality) {
  for (int g : {1, 2, 4}) {
    BalancedInstance inst = GenerateBalancedInstance(g);
    auto primes = AllPrimesBruteForce(inst.schema);
    for (AttributeId a = 0; a < inst.schema.NumAttributes(); ++a) {
      const std::string& name = inst.schema.AttributeName(a);
      bool expect_prime = name[0] == 'x' || name[0] == 'y';
      EXPECT_EQ(primes[static_cast<size_t>(a)], expect_prime)
          << "g=" << g << " attr " << name;
    }
    EXPECT_TRUE(primes[static_cast<size_t>(inst.query_attribute)]);
    EXPECT_FALSE(primes[static_cast<size_t>(inst.nonprime_attribute)]);
  }
}

TEST(GeneratorTest, RandomWindowSchemaShape) {
  Rng rng(TestSeed());
  Schema s = RandomWindowSchema(12, 8, 4, &rng);
  EXPECT_EQ(s.NumAttributes(), 12);
  EXPECT_EQ(s.NumFds(), 8);
  for (const auto& fd : s.fds()) {
    EXPECT_GE(fd.lhs.size(), 1u);
    // Window constraint: lhs and rhs span < window.
    AttributeId lo = std::min(fd.lhs.front(), fd.rhs);
    AttributeId hi = std::max(fd.lhs.back(), fd.rhs);
    EXPECT_LT(hi - lo, 4);
  }
}

}  // namespace
}  // namespace treedl
