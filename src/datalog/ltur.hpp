// Linear-time unit resolution for propositional Horn programs
// (Dowling–Gallier [7] / Minoux's LTUR [27]) — the evaluation engine behind
// Thm 4.4's O(|P| · |A|) bound: after grounding, "propositional datalog can
// be evaluated in linear time".
#ifndef TREEDL_DATALOG_LTUR_HPP_
#define TREEDL_DATALOG_LTUR_HPP_

#include <vector>

namespace treedl::datalog {

struct HornClause {
  int head = 0;
  std::vector<int> body;  // empty body = fact
};

/// Computes the least model: out[i] is true iff atom i is derivable.
/// Linear in the total size of `clauses`.
std::vector<bool> LturSolve(int num_atoms,
                            const std::vector<HornClause>& clauses);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_LTUR_HPP_
