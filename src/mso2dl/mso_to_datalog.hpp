// The generic MSO-to-monadic-datalog construction of Theorem 4.5.
//
// Given a unary MSO query φ(x) (or an MSO sentence) over τ-structures of
// treewidth ≤ w, produces a quasi-guarded monadic datalog program over τ_td
// whose distinguished predicate "phi" selects exactly the elements satisfying
// φ (resp. derives the 0-ary "phi" iff the sentence holds).
//
// The construction materializes the ≡MSO_k-types of §3 (k = quantifier depth
// of φ) with concrete witness structures, saturating:
//   Θ↑ — types of (A, ā) where ā is the root bag of a width-w decomposition,
//        closed under permutation / element-replacement / branch extensions
//        ("bottom-up", proof part 1);
//   Θ↓ — types where ā sits at a leaf ("top-down", proof part 2; only needed
//        for unary queries);
// and finally emitting the element-selection rules (proof part 3) by model
// checking φ on glued witnesses.
//
// Composition maps are memoized per type (sound by Lemmas 3.5/3.6), but the
// type computations themselves are exponential in witness size — the very
// "state explosion" the paper cites as motivation for the hand-crafted §5
// programs. Budgets make the blow-up an explicit error; in practice the
// construction is usable for quantifier depth ≤ 1–2 and width 1–2.
#ifndef TREEDL_MSO2DL_MSO_TO_DATALOG_HPP_
#define TREEDL_MSO2DL_MSO_TO_DATALOG_HPP_

#include <string>

#include "common/status.hpp"
#include "datalog/ast.hpp"
#include "mso/ast.hpp"

namespace treedl::mso2dl {

struct Mso2DlOptions {
  /// Treewidth bound w ≥ 1 of the intended input structures.
  int width = 1;
  /// Budget for all rank-k type computations (see mso::TypeOptions).
  uint64_t type_work_budget = 500'000'000;
  /// Saturation guard: maximum number of types per direction.
  size_t max_types = 512;
  /// Witness structures beyond this many elements abort the construction
  /// (type computation enumerates 2^n subsets per quantifier level).
  size_t max_witness_elements = 22;
};

struct Mso2DlResult {
  datalog::Program program;
  size_t num_up_types = 0;
  size_t num_down_types = 0;
  /// Quantifier depth used as the type rank k.
  int rank = 0;
};

/// Unary-query form. `phi` must have exactly the free individual variable
/// `free_var` (and no free set variables). Target predicate: "phi"/1.
StatusOr<Mso2DlResult> MsoToDatalog(const Signature& tau,
                                    const mso::FormulaPtr& phi,
                                    const std::string& free_var,
                                    const Mso2DlOptions& options = {});

/// Sentence form (§4 discussion): only the bottom-up Θ↑ is constructed and
/// the target predicate "phi"/0 is derived at the root. `phi` must be a
/// sentence.
StatusOr<Mso2DlResult> MsoToDatalogSentence(const Signature& tau,
                                            const mso::FormulaPtr& phi,
                                            const Mso2DlOptions& options = {});

}  // namespace treedl::mso2dl

#endif  // TREEDL_MSO2DL_MSO_TO_DATALOG_HPP_
