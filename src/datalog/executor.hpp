// Compiled join executors: each rule body is compiled once — at Prepare
// time — into nested-index-join plans over the columnar FactStore, one plan
// per delta position (plus the full plan used by round 0), replacing
// per-tuple atom interpretation in the semi-naive engine.
//
// A JoinPlan is a sequence of steps in the analyzer's plan order. Each step
// records, per argument position, what the executor does with it:
//
//   kConst       compare against a resolved constant (part of the probe key)
//   kBound       variable bound by an earlier step     (part of the probe key)
//   kBindFirst   first occurrence of a variable: bind it from the row
//   kCheckRepeat repeated variable within this atom: compare against the
//                value the earlier position of the same row just bound
//
// The probe mask (kConst|kBound positions) selects the FactStore
// bound-pattern index; the step kind picks the executor:
//
//   kNegCheck    negative literal, fully bound — absence check
//   kBoundCheck  positive literal, fully bound — presence (+ delta range)
//   kIndexProbe  some positions bound — index probe + chain walk
//   kFullScan    nothing bound — row scan (the delta range directly)
//
// Executors are stateless singletons resolved from the ExecutorRegistry by
// (kind, arity) — small objects with arity-specialized inner loops
// (following tensorlogic's Runtime/Executors + ExecutorRegistry split).
// Plans hold the resolved executor pointer, so the per-step dispatch at run
// time is one virtual call counted by RunStats::executor_dispatches.
//
// Determinism contract: a probed chain enumerates rows in relation
// insertion order (FactStore invariant), a stronger multi-column probe only
// skips non-matching rows, and a delta range filters the same order — so a
// compiled plan yields exactly the match sequence of the interpreted
// MatchAtom kernel, and model, round, task, and work counters are
// bit-identical at any thread count.
#ifndef TREEDL_DATALOG_EXECUTOR_HPP_
#define TREEDL_DATALOG_EXECUTOR_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/arena.hpp"
#include "common/arena_vec.hpp"
#include "datalog/database.hpp"

namespace treedl::datalog {

enum class ArgAction : uint8_t { kConst, kBound, kBindFirst, kCheckRepeat };

enum class StepKind : uint8_t {
  kNegCheck,
  kBoundCheck,
  kIndexProbe,
  kFullScan,
};

/// One body literal, compiled: the probe pattern plus per-position actions.
struct JoinStep {
  PredicateId predicate = 0;
  /// True on the plan's delta position: read the delta store, restricted to
  /// the task's row range.
  bool is_delta = false;
  uint32_t probe_mask = 0;  // kConst|kBound positions, bit i = position i
  std::vector<ArgAction> actions;     // one per argument position
  std::vector<ElementId> const_args;  // valid at kConst positions
  std::vector<VariableId> vars;       // valid at non-kConst positions
};

struct ExecCounters {
  /// Step entries — same accounting as the interpreted engine's
  /// rule_applications (one per step execution per prefix binding).
  size_t work = 0;
  /// StepExecutor::Execute invocations. Equal to `work` when evaluation is
  /// fully compiled — the differential harness pins that equality.
  size_t dispatches = 0;
};

/// A stateless step kernel. Calls `next` once per matching row, with
/// `binding` temporarily extended by the row's kBindFirst assignments.
class StepExecutor {
 public:
  virtual ~StepExecutor() = default;
  virtual void Execute(const JoinStep& step, FactStore* store,
                       FactStore* delta, size_t begin, size_t end,
                       Binding* binding,
                       const std::function<void()>& next) const = 0;
};

/// Resolves (kind, arity) to the shared executor instance: one
/// arity-specialized kernel per arity up to kMaxSpecializedArity, a generic
/// fallback above.
class ExecutorRegistry {
 public:
  static constexpr int kMaxSpecializedArity = 4;

  static const ExecutorRegistry& Instance();
  const StepExecutor* Resolve(StepKind kind, int arity) const;

 private:
  ExecutorRegistry();
  // [kind][min(arity, kMaxSpecializedArity + 1)]
  const StepExecutor* table_[4][kMaxSpecializedArity + 2] = {};
};

struct CompiledStep {
  JoinStep spec;
  StepKind kind = StepKind::kFullScan;
  const StepExecutor* executor = nullptr;
};

struct JoinPlan {
  int delta_position = -1;  // -1: the full (round 0) plan
  ResolvedAtom head;
  size_t num_variables = 0;
  std::vector<CompiledStep> steps;
};

/// All plans of one rule: the full plan plus one variant per positive
/// intensional body position (ascending). The variants share step structure
/// — bound-variable sets per position do not depend on which position is
/// the delta — and differ only in which step reads the delta store.
struct CompiledRule {
  JoinPlan full;
  std::vector<JoinPlan> delta_variants;
};

/// Compiles one rule's plans from its resolved body (already in plan
/// order). `positive`/`body_intensional` align with `body`.
CompiledRule CompileRule(const ResolvedAtom& head,
                         const std::vector<ResolvedAtom>& body,
                         const std::vector<bool>& positive,
                         const std::vector<bool>& body_intensional,
                         size_t num_variables);

/// Derived head tuples of one rule task, flat in a task-local arena (one
/// bump allocation stream instead of one heap Tuple per derivation; the
/// whole set frees with the task).
class PendingSet {
 public:
  PendingSet() = default;
  PendingSet(PendingSet&&) = default;
  PendingSet& operator=(PendingSet&&) = default;

  /// Grounds `head` under `binding` directly into the flat buffer.
  void Add(const ResolvedAtom& head, const Binding& binding);

  size_t size() const { return entries_.size(); }
  PredicateId predicate(size_t i) const { return entries_[i].predicate; }
  /// Argument values of entry i (arity = the head predicate's arity).
  const ElementId* args(size_t i) const {
    return values_.data() + entries_[i].offset;
  }
  uint32_t arity(size_t i) const { return entries_[i].arity; }

 private:
  struct Entry {
    PredicateId predicate;
    uint32_t offset;
    uint32_t arity;
  };
  Arena arena_;
  ArenaVec<Entry> entries_;
  ArenaVec<ElementId> values_;
};

/// Runs `plan` to completion: every derived head tuple is appended to
/// `out`, work/dispatch counters accumulate into `counters`. `delta` and
/// [begin, end) apply to the plan's delta step (ignored for full plans).
void ExecutePlan(const JoinPlan& plan, FactStore* store, FactStore* delta,
                 size_t begin, size_t end, PendingSet* out,
                 ExecCounters* counters);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_EXECUTOR_HPP_
