#include "engine/run_stats.hpp"

#include <sstream>


namespace treedl {

EngineCounters& GlobalEngineCounters() {
  static EngineCounters counters;
  return counters;
}

std::string RunStats::ToString() const {
  std::ostringstream out;
  out << "builds{encode=" << encode_builds << " td=" << td_builds
      << " normalize=" << normalize_builds << " cache_hits=" << cache_hits
      << "}";
  if (artifact_loads > 0 || artifact_saves > 0) {
    out << " session{loads=" << artifact_loads << " saves=" << artifact_saves
        << "}";
  }
  if (mso_compile_builds > 0) {
    out << " mso{compiles=" << mso_compile_builds << "}";
  }
  if (dp_states > 0) {
    out << " dp{states=" << dp_states
        << " max_per_node=" << dp_max_states_per_node;
    if (dp_traversals > 0) {
      out << " traversals=" << dp_traversals << " passes=" << dp_passes;
    }
    if (dp_shards > 0) {
      double slowest = dp_slowest_shard_millis;
      for (double ms : dp_shard_millis) slowest = slowest > ms ? slowest : ms;
      out << " shards=" << dp_shards << " slowest_shard=" << slowest << "ms";
    }
    if (dp_peak_table_bytes > 0) {
      out << " table_peak=" << dp_peak_table_bytes << "B";
    }
    if (dp_tables_evicted > 0) {
      out << " tables_evicted=" << dp_tables_evicted;
    }
    out << "}";
  }
  if (eval_iterations > 0) {
    out << " eval{iters=" << eval_iterations << " derived=" << derived_facts
        << " rule_apps=" << rule_applications;
    if (fixpoint_rounds > 0) {
      out << " rounds=" << fixpoint_rounds
          << " rule_tasks=" << fixpoint_rule_tasks;
    }
    if (plan_compiles > 0) {
      out << " plans=" << plan_compiles
          << " dispatches=" << executor_dispatches;
    }
    out << "}";
  }
  if (primality_shards > 0) {
    out << " primality{shards=" << primality_shards << "}";
  }
  if (ground_clauses > 0) {
    out << " ground{clauses=" << ground_clauses << " atoms=" << ground_atoms
        << " guards=" << guard_instantiations << "}";
  }
  if (!passes.empty()) {
    out << " passes{";
    for (size_t i = 0; i < passes.size(); ++i) {
      if (i > 0) out << " ";
      out << passes[i].pass << "=" << passes[i].millis << "ms";
    }
    out << "}";
  }
  out << " total=" << total_millis << "ms";
  return out.str();
}

}  // namespace treedl
