#include <gtest/gtest.h>

#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_algorithms.hpp"
#include "structure/structure_io.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

TEST(GraphTest, EdgesAreUndirectedAndDeduplicated) {
  Graph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));  // same edge
  EXPECT_FALSE(g.AddEdge(2, 2));  // self loop ignored
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphTest, EdgesListNormalized) {
  Graph g(4);
  g.AddEdge(3, 1);
  g.AddEdge(0, 2);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  for (auto [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GeneratorsTest, FamiliesHaveExpectedShape) {
  EXPECT_EQ(PathGraph(5).NumEdges(), 4u);
  EXPECT_EQ(CycleGraph(5).NumEdges(), 5u);
  EXPECT_EQ(CompleteGraph(5).NumEdges(), 10u);
  EXPECT_EQ(GridGraph(3, 4).NumEdges(), 3u * 3u + 2u * 4u);
  Graph petersen = PetersenGraph();
  EXPECT_EQ(petersen.NumVertices(), 10u);
  EXPECT_EQ(petersen.NumEdges(), 15u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(petersen.Degree(v), 3u);
}

TEST(GeneratorsTest, RandomKTreeHasRightEdgeCount) {
  Rng rng(TestSeed());
  // A k-tree on n vertices has k(k+1)/2 + (n-k-1)k edges.
  for (int k : {1, 2, 3}) {
    for (size_t n : {size_t{4}, size_t{8}, size_t{15}}) {
      Graph g = RandomKTree(n, k, &rng);
      size_t expected = static_cast<size_t>(k) * (k + 1) / 2 +
                        (n - static_cast<size_t>(k) - 1) * static_cast<size_t>(k);
      EXPECT_EQ(g.NumEdges(), expected) << "n=" << n << " k=" << k;
      EXPECT_TRUE(IsConnected(g));
    }
  }
}

TEST(GeneratorsTest, PartialKTreeIsSubgraph) {
  Rng rng(TestSeed());
  Graph g = RandomPartialKTree(12, 3, 0.5, &rng);
  EXPECT_EQ(g.NumVertices(), 12u);
  // Edge count at most that of the full 3-tree.
  EXPECT_LE(g.NumEdges(), 6u + 8u * 3u);
}

TEST(AlgorithmsTest, ConnectedComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(3, 4);
  auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_TRUE(IsConnected(PathGraph(4)));
  EXPECT_TRUE(IsConnected(Graph(1)));
  EXPECT_TRUE(IsConnected(Graph(0)));
}

TEST(AlgorithmsTest, BruteForceColoringOnKnownGraphs) {
  // K4 is not 3-colorable; K3 is; odd cycles need 3 colors.
  EXPECT_FALSE(BruteForceColoring(CompleteGraph(4), 3).has_value());
  EXPECT_TRUE(BruteForceColoring(CompleteGraph(3), 3).has_value());
  EXPECT_FALSE(BruteForceColoring(CycleGraph(5), 2).has_value());
  EXPECT_TRUE(BruteForceColoring(CycleGraph(5), 3).has_value());
  EXPECT_TRUE(BruteForceColoring(PetersenGraph(), 3).has_value());
}

TEST(AlgorithmsTest, ColoringIsProper) {
  Graph g = GridGraph(3, 3);
  auto coloring = BruteForceColoring(g, 3);
  ASSERT_TRUE(coloring.has_value());
  for (auto [u, v] : g.Edges()) {
    EXPECT_NE((*coloring)[u], (*coloring)[v]);
  }
}

TEST(AlgorithmsTest, CountColorings) {
  // Chromatic polynomial: P(K3, 3) = 3! = 6; P(path_3, 3) = 3·2·2 = 12;
  // P(C4, k) = (k-1)^4 + (k-1) = 18 for k = 3.
  EXPECT_EQ(CountColoringsBruteForce(CompleteGraph(3), 3), 6u);
  EXPECT_EQ(CountColoringsBruteForce(PathGraph(3), 3), 12u);
  EXPECT_EQ(CountColoringsBruteForce(CycleGraph(4), 3), 18u);
}

TEST(AlgorithmsTest, VertexCoverIndependentSetDominatingSet) {
  // C5: min VC 3, max IS 2, min DS 2. Star K1,4: VC 1, IS 4, DS 1.
  Graph c5 = CycleGraph(5);
  EXPECT_EQ(MinVertexCoverBruteForce(c5), 3u);
  EXPECT_EQ(MaxIndependentSetBruteForce(c5), 2u);
  EXPECT_EQ(MinDominatingSetBruteForce(c5), 2u);
  Graph star(5);
  for (VertexId v = 1; v < 5; ++v) star.AddEdge(0, v);
  EXPECT_EQ(MinVertexCoverBruteForce(star), 1u);
  EXPECT_EQ(MaxIndependentSetBruteForce(star), 4u);
  EXPECT_EQ(MinDominatingSetBruteForce(star), 1u);
}

TEST(AlgorithmsTest, GaussIdentityVcPlusIs) {
  // Gallai: min VC + max IS = n on any graph.
  Rng rng(TestSeed());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGnp(9, 0.35, &rng);
    EXPECT_EQ(MinVertexCoverBruteForce(g) + MaxIndependentSetBruteForce(g),
              g.NumVertices());
  }
}

TEST(GaifmanTest, StructureRoundTrip) {
  Graph g = CycleGraph(4);
  Structure s = GraphToStructure(g);
  EXPECT_EQ(s.NumElements(), 4u);
  auto back = StructureToGraph(s);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumEdges(), 4u);
  for (auto [u, v] : g.Edges()) EXPECT_TRUE(back->HasEdge(u, v));
}

TEST(GaifmanTest, GaifmanOfSchemaStructureConnectsCoOccurrences) {
  auto parsed = ParseStructure(Signature::SchemaSignature(),
                               "att(a). att(b). fd(f1). lh(a, f1). rh(b, f1).");
  ASSERT_TRUE(parsed.ok());
  Graph g = GaifmanGraph(*parsed);
  ElementId a = parsed->ElementByName("a").value();
  ElementId b = parsed->ElementByName("b").value();
  ElementId f1 = parsed->ElementByName("f1").value();
  EXPECT_TRUE(g.HasEdge(a, f1));
  EXPECT_TRUE(g.HasEdge(b, f1));
  EXPECT_FALSE(g.HasEdge(a, b));  // a and b never co-occur directly
}

}  // namespace
}  // namespace treedl
