// Bag sharding: partitioning a modified-normalized tree decomposition into
// independent subtrees for the parallel bottom-up DP.
//
// The §5 dynamic programs are bottom-up tree traversals, so disjoint subtrees
// of the decomposition can be processed concurrently — the only ordering
// constraint is that a node runs after its children. A BagSharding cuts the
// tree into connected regions ("shards") of roughly balanced size; the shards
// themselves form a tree, and a shard becomes runnable exactly when all of
// its child shards have completed. core/tree_dp.hpp executes this schedule on
// a ThreadPool (see RunTreeDpSharded).
//
// The same partition also serves root-to-leaves passes: because every shard
// is a connected region whose nodes are listed in global post order, running
// the shard tree *inverted* (a shard after its parent shard, its nodes
// reversed) is a valid parents-before-children schedule — how the §5.3
// enumeration runs its top-down solve↓ pass (tree_dp.hpp,
// WalkDirection::kTopDown).
#ifndef TREEDL_TD_SHARD_HPP_
#define TREEDL_TD_SHARD_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "td/normalize.hpp"

namespace treedl {

/// One connected region of the decomposition tree.
struct BagShard {
  /// The topmost node of the shard (its parent, if any, lies in the parent
  /// shard).
  TdNodeId top = kNoTdNode;
  /// The shard's nodes in global post-order — processing them in this order
  /// sees every child either earlier in the list or in a completed child
  /// shard.
  std::vector<TdNodeId> nodes;
  /// Index of the parent shard, or -1 for the shard containing the root.
  int parent = -1;
  /// Indices of the child shards (the shard's dependencies).
  std::vector<int> children;
  /// Summed weight of the shard's nodes under the weight function the
  /// sharding was computed with (node count for ComputeBagSharding, the
  /// EstimateNodeCost model for ComputeBagShardingByCost).
  uint64_t cost = 0;
};

struct BagSharding {
  std::vector<BagShard> shards;
  /// Node id -> shard index.
  std::vector<int> shard_of;

  size_t NumShards() const { return shards.size(); }
};

/// Partitions `ntd` into at most ~`target_shards` connected subtree regions
/// of roughly equal node count (post-order accumulation with a grain of
/// ceil(n / target)). target_shards == 1 (or a tiny decomposition) yields a
/// single shard covering the whole tree. Deterministic.
BagSharding ComputeBagSharding(const NormalizedTreeDecomposition& ntd,
                               size_t target_shards);

/// Estimated DP work of one normalized node — the width-driven state-count
/// model behind cost-aware sharding. A bag of b elements carries up to 3^b
/// reachable states in the heaviest in-tree problems (3-coloring's colorings,
/// dominating set's in/dominated/waiting statuses; vertex cover's 2^b is
/// dominated by that), and each state is touched a constant number of times
/// per transition, so: cost = 3^min(b, 20), doubled at branch nodes (the
/// join pairs two child tables instead of streaming one). The cap keeps the
/// model in uint64 for degenerate widths; relative balance is what matters.
uint64_t EstimateNodeCost(const NormNode& node);

/// Cost-aware variant of ComputeBagSharding: same connected-subtree
/// partition, but the post-order accumulation balances the shards by summed
/// EstimateNodeCost instead of node count — shards near the root (few nodes,
/// wide bags) shrink, leaf-heavy shards grow, and the slowest shard tracks
/// the mean instead of the root shard dominating the critical path.
/// Deterministic; BagShard::cost reports each shard's modeled cost.
BagSharding ComputeBagShardingByCost(const NormalizedTreeDecomposition& ntd,
                                     size_t target_shards);

/// Checks the sharding invariants: every node assigned to exactly one shard,
/// shards are connected regions listed in global post-order, shard tree edges
/// mirror the node tree, and the root's shard has no parent.
Status ValidateSharding(const NormalizedTreeDecomposition& ntd,
                        const BagSharding& sharding);

}  // namespace treedl

#endif  // TREEDL_TD_SHARD_HPP_
