// Deprecated convenience free functions, kept as thin shims over a one-shot
// treedl::Engine. Each call pays for a fresh encoding and decomposition —
// exactly the repeated-preprocessing pattern §5.3 argues against — and the
// legacy stats structs are populated by forwarding from the Engine's RunStats
// so out-of-tree callers still get numbers.
#include "core/extensions.hpp"
#include "core/primality.hpp"
#include "core/primality_enum.hpp"
#include "core/three_color.hpp"
#include "engine/engine.hpp"

namespace treedl::core {

namespace {

void CopyDp(const RunStats& run, DpStats* stats) {
  if (stats == nullptr) return;
  stats->total_states = run.dp_states;
  stats->max_states_per_node = run.dp_max_states_per_node;
}

}  // namespace

StatusOr<bool> IsPrimeViaTd(const Schema& schema, AttributeId a,
                            RunStats* stats) {
  Engine engine(schema);
  return engine.IsPrime(a, stats);
}

StatusOr<bool> IsPrimeViaTd(const Schema& schema, AttributeId a,
                            DpStats* stats) {
  RunStats run;
  auto result = IsPrimeViaTd(schema, a, &run);
  CopyDp(run, stats);
  return result;
}

StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            RunStats* stats) {
  Engine engine(schema);
  return engine.AllPrimes(stats);
}

StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            DpStats* stats) {
  RunStats run;
  auto result = EnumeratePrimes(schema, &run);
  CopyDp(run, stats);
  return result;
}

StatusOr<ThreeColorResult> SolveThreeColor(const Graph& graph,
                                           bool extract_coloring) {
  EngineOptions options;
  options.extract_witness = extract_coloring;
  Engine engine = Engine::FromGraph(graph, options);
  RunStats run;
  TREEDL_ASSIGN_OR_RETURN(Engine::SolveResult solved,
                          engine.Solve(Engine::Problem::kThreeColor, &run));
  ThreeColorResult result;
  result.colorable = solved.feasible;
  result.coloring = std::move(solved.witness);
  CopyDp(run, &result.stats);
  return result;
}

StatusOr<uint64_t> CountThreeColorings(const Graph& graph) {
  Engine engine = Engine::FromGraph(graph);
  TREEDL_ASSIGN_OR_RETURN(Engine::SolveResult solved,
                          engine.Solve(Engine::Problem::kThreeColorCount));
  return solved.count;
}

StatusOr<size_t> MinVertexCoverTd(const Graph& graph, DpStats* stats) {
  Engine engine = Engine::FromGraph(graph);
  RunStats run;
  TREEDL_ASSIGN_OR_RETURN(Engine::SolveResult solved,
                          engine.Solve(Engine::Problem::kVertexCover, &run));
  CopyDp(run, stats);
  return solved.optimum;
}

StatusOr<size_t> MaxIndependentSetTd(const Graph& graph, DpStats* stats) {
  Engine engine = Engine::FromGraph(graph);
  RunStats run;
  TREEDL_ASSIGN_OR_RETURN(Engine::SolveResult solved,
                          engine.Solve(Engine::Problem::kIndependentSet, &run));
  CopyDp(run, stats);
  return solved.optimum;
}

StatusOr<size_t> MinDominatingSetTd(const Graph& graph, DpStats* stats) {
  Engine engine = Engine::FromGraph(graph);
  RunStats run;
  TREEDL_ASSIGN_OR_RETURN(Engine::SolveResult solved,
                          engine.Solve(Engine::Problem::kDominatingSet, &run));
  CopyDp(run, stats);
  return solved.optimum;
}

}  // namespace treedl::core
