// Deterministic, site-keyed fault injection for the serving stack.
//
// Chaos testing only works when the chaos replays: a fault schedule must
// produce the SAME failures — at the same protocol positions, with the same
// messages — on every run, at every thread count, under every sanitizer.
// This registry gets there by keying faults on (site name, per-site hit
// index) instead of time or randomness at the call site:
//
//   TREEDL_RETURN_IF_ERROR(TREEDL_FAULT_POINT("session_io.write"));
//
// Each call is one *hit* of that site. The schedule decides which hits fail:
//
//   scripted   "session_io.write@1,session_pool.build" — a comma-separated
//              list of site[@N] tokens; site@N fails the N-th hit (0-based),
//              bare site means site@0. One token, one failure.
//
//   seeded     Seed(s, permille) — every (site, hit) pair fails with
//              probability permille/1000, decided by a pure hash of
//              (seed, site, hit). No RNG stream, no ordering sensitivity:
//              whether hit #7 of "session_io.read" fails depends only on the
//              seed, never on what other threads did in between.
//
// Hit counters are per-site and atomic; the serving stack only places fault
// points on the dispatch thread's sequential stage (LOAD/SAVE/OPEN/acquire
// all barrier first), so hit indexes — and therefore transcripts — are a
// pure function of the input script.
//
// When disabled (the default, and always in production paths) the macro
// costs one relaxed atomic load and a predictable branch.
#ifndef TREEDL_COMMON_FAULT_INJECTION_HPP_
#define TREEDL_COMMON_FAULT_INJECTION_HPP_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace treedl {

class FaultInjector {
 public:
  /// The process-wide injector all TREEDL_FAULT_POINT sites consult.
  static FaultInjector& Global();

  /// Installs a scripted schedule ("site@N,site2,..."; empty disables) and
  /// resets all hit counters. Returns InvalidArgument on a malformed token.
  Status SetSchedule(const std::string& schedule);

  /// Installs a seeded schedule: each (site, hit) fails with probability
  /// `permille`/1000, decided by a pure hash of (seed, site, hit).
  void Seed(uint64_t seed, uint32_t permille);

  /// Disables injection and clears schedules and counters.
  void Disable();

  /// Fast-path gate: false in production (no-op branch at every site).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// One hit of `site`: OK to proceed, or the injected failure. The error
  /// message names the site and hit index — both schedule-deterministic —
  /// so injected failures diff byte-for-byte in transcripts.
  Status Hit(const char* site);

  /// Total faults injected since the last schedule install.
  size_t FaultsInjected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector() = default;

  struct SiteState {
    uint64_t hits = 0;
    std::vector<uint64_t> fail_hits;  // scripted hit indexes, unsorted
  };

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> faults_injected_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
  bool seeded_ = false;
  uint64_t seed_ = 0;
  uint32_t permille_ = 0;
};

/// The function behind TREEDL_FAULT_POINT: no-op when injection is disabled.
inline Status FaultPoint(const char* site) {
  FaultInjector& injector = FaultInjector::Global();
  if (!injector.enabled()) return Status::OK();
  return injector.Hit(site);
}

}  // namespace treedl

// Use as: TREEDL_RETURN_IF_ERROR(TREEDL_FAULT_POINT("session_io.write"));
#define TREEDL_FAULT_POINT(site) ::treedl::FaultPoint(site)

#endif  // TREEDL_COMMON_FAULT_INJECTION_HPP_
