// 3-Colorability (§5.1): the datalog-style DP scales linearly in the data at
// fixed treewidth (Thm 5.1), while brute-force search is exponential. Also
// measures the counting extension.
#include <benchmark/benchmark.h>

#include "core/three_color.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"
#include "td/heuristics.hpp"

namespace treedl {
namespace {

// Fixed-treewidth instances of growing size: random partial 3-trees.
Graph Instance(size_t n) {
  Rng rng(n * 2654435761u + 7);
  return RandomPartialKTree(n, 3, 0.8, &rng);
}

void BM_ThreeColorDp(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Graph g = Instance(n);
  auto td = Decompose(g);
  TREEDL_CHECK(td.ok());
  for (auto _ : state) {
    auto result = core::SolveThreeColor(g, *td, /*extract_coloring=*/false);
    TREEDL_CHECK(result.ok());
    benchmark::DoNotOptimize(result->colorable);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ThreeColorDp)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_ThreeColorBruteForce(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Graph g = Instance(n);
  for (auto _ : state) {
    auto coloring = BruteForceColoring(g, 3);
    benchmark::DoNotOptimize(coloring.has_value());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
// Backtracking happens to be fast on colorable instances; keep sizes small
// so hard (uncolorable) draws do not stall the harness.
BENCHMARK(BM_ThreeColorBruteForce)->DenseRange(10, 22, 4);

void BM_ThreeColorCounting(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Graph g = Instance(n);
  auto td = Decompose(g);
  TREEDL_CHECK(td.ok());
  for (auto _ : state) {
    auto count = core::CountThreeColorings(g, *td);
    TREEDL_CHECK(count.ok());
    benchmark::DoNotOptimize(*count);
  }
}
BENCHMARK(BM_ThreeColorCounting)->RangeMultiplier(2)->Range(16, 256);

void BM_ThreeColorWitnessExtraction(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Graph g = Instance(n);
  auto td = Decompose(g);
  TREEDL_CHECK(td.ok());
  for (auto _ : state) {
    auto result = core::SolveThreeColor(g, *td, /*extract_coloring=*/true);
    TREEDL_CHECK(result.ok());
    benchmark::DoNotOptimize(result->coloring);
  }
}
BENCHMARK(BM_ThreeColorWitnessExtraction)->Arg(64)->Arg(256);

}  // namespace
}  // namespace treedl

BENCHMARK_MAIN();
