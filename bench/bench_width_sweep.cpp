// Ablation: the f(w) factor of Cor 4.6 / Thm 5.3. At fixed data size, the
// PRIMALITY DP's state count and runtime grow steeply with the width of the
// decomposition (FD-window schemas of increasing window).
#include <cstdio>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "schema/generators.hpp"

namespace treedl {
namespace {

void RunWidthSweep() {
  std::printf("PRIMALITY DP cost vs decomposition width (fixed ~36 attrs)\n");
  std::printf("%7s %6s %10s %14s %14s\n", "window", "width", "time ms",
              "total states", "max/node");
  for (int window : {2, 3, 4, 5, 6}) {
    Rng rng(static_cast<uint64_t>(window) * 31 + 5);
    Schema schema = RandomWindowSchema(36, 24, window, &rng);
    Engine engine(schema);
    int width = engine.Width().value_or(-1);
    Timer timer;
    RunStats run;
    auto primes = engine.AllPrimes(&run);
    double ms = timer.ElapsedMillis();
    TREEDL_CHECK(primes.ok()) << primes.status();
    std::printf("%7d %6d %10.2f %14zu %14zu\n", window, width, ms,
                run.dp_states, run.dp_max_states_per_node);
  }
  std::printf("\n(time and states grow exponentially in the width — the f(w) "
              "of Cor 4.6 —\n while Table 1 shows linear growth in the data "
              "at fixed width)\n");
}

}  // namespace
}  // namespace treedl

int main() {
  treedl::RunWidthSweep();
  return 0;
}
