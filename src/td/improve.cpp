#include "td/improve.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/rng.hpp"
#include "common/work_budget.hpp"
#include "td/elimination_order.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"

namespace treedl {

namespace {

uint64_t Pow3Capped(size_t bag_size) {
  uint64_t states = 1;
  for (size_t i = 0; i < std::min<size_t>(bag_size, 20); ++i) states *= 3;
  return states;
}

bool IsSubset(const std::vector<ElementId>& a, const std::vector<ElementId>& b) {
  // Bags are sorted and duplicate-free.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// The quality objective everything in this file optimizes: width first,
/// then the modeled cost of the normal form the DPs actually traverse.
StatusOr<std::pair<int, uint64_t>> TdQuality(const TreeDecomposition& td) {
  TREEDL_ASSIGN_OR_RETURN(uint64_t cost, NormalizedDpCost(td));
  return std::make_pair(td.Width(), cost);
}

}  // namespace

uint64_t ModeledTdCost(const TreeDecomposition& td) {
  uint64_t cost = 0;
  for (size_t id = 0; id < td.NumNodes(); ++id) {
    cost += Pow3Capped(td.Bag(static_cast<TdNodeId>(id)).size());
  }
  return cost;
}

StatusOr<uint64_t> NormalizedDpCost(const TreeDecomposition& td) {
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd, Normalize(td));
  uint64_t cost = 0;
  for (size_t id = 0; id < ntd.NumNodes(); ++id) {
    cost += EstimateNodeCost(ntd.node(static_cast<TdNodeId>(id)));
  }
  return cost;
}

size_t WidthReduce(TreeDecomposition* td) {
  if (td->Empty()) return 0;
  size_t n = td->NumNodes();
  std::vector<std::vector<ElementId>> bag(n);
  std::vector<TdNodeId> parent(n);
  std::vector<std::vector<TdNodeId>> children(n);
  std::vector<bool> alive(n, true);
  for (size_t id = 0; id < n; ++id) {
    const TdNode& node = td->node(static_cast<TdNodeId>(id));
    bag[id] = node.bag;
    parent[id] = node.parent;
    children[id] = node.children;
  }
  size_t merges = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t c = 0; c < n; ++c) {
      if (!alive[c] || parent[c] == kNoTdNode) continue;
      size_t p = static_cast<size_t>(parent[c]);
      bool child_in_parent = IsSubset(bag[c], bag[p]);
      if (!child_in_parent && !IsSubset(bag[p], bag[c])) continue;
      // Contract the edge: the merged bag is the larger of the two, so no
      // other bag changes and the width cannot grow.
      if (!child_in_parent) bag[p] = bag[c];
      for (TdNodeId grandchild : children[c]) {
        parent[static_cast<size_t>(grandchild)] = static_cast<TdNodeId>(p);
        children[p].push_back(grandchild);
      }
      children[p].erase(std::find(children[p].begin(), children[p].end(),
                                  static_cast<TdNodeId>(c)));
      alive[c] = false;
      ++merges;
      progress = true;
    }
  }
  if (merges == 0) return 0;
  TreeDecomposition out;
  std::vector<TdNodeId> mapped(n, kNoTdNode);
  std::vector<TdNodeId> stack{td->root()};
  while (!stack.empty()) {
    TdNodeId id = stack.back();
    stack.pop_back();
    size_t i = static_cast<size_t>(id);
    TdNodeId p = parent[i];
    mapped[i] = out.AddNode(
        bag[i], p == kNoTdNode ? kNoTdNode : mapped[static_cast<size_t>(p)]);
    for (auto it = children[i].rbegin(); it != children[i].rend(); ++it) {
      stack.push_back(*it);
    }
  }
  *td = std::move(out);
  return merges;
}

StatusOr<size_t> CostGuardedWidthReduce(TreeDecomposition* td) {
  if (td->Empty()) return static_cast<size_t>(0);
  TreeDecomposition reduced = *td;
  size_t merges = WidthReduce(&reduced);
  if (merges == 0) return static_cast<size_t>(0);
  TREEDL_ASSIGN_OR_RETURN(auto before, TdQuality(*td));
  TREEDL_ASSIGN_OR_RETURN(auto after, TdQuality(reduced));
  if (after > before) return static_cast<size_t>(0);  // revert: DP got slower
  *td = std::move(reduced);
  return merges;
}

std::vector<VertexId> EliminationOrderFromTd(const Graph& graph,
                                             const TreeDecomposition& td) {
  size_t n = graph.NumVertices();
  std::vector<size_t> occurrences(n, 0);
  for (size_t id = 0; id < td.NumNodes(); ++id) {
    for (ElementId e : td.Bag(static_cast<TdNodeId>(id))) {
      if (e < n) ++occurrences[e];
    }
  }
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (occurrences[v] == 0) order.push_back(v);
  }
  // A vertex's bags form a connected subtree whose topmost node is visited
  // last in post order — eliminating each vertex at that point reproduces a
  // width-<=(td width) order.
  for (TdNodeId id : td.PostOrder()) {
    for (ElementId e : td.Bag(id)) {
      if (e < n && --occurrences[e] == 0) {
        order.push_back(static_cast<VertexId>(e));
      }
    }
  }
  return order;
}

StatusOr<ImproveOutcome> ImproveTd(const Graph& graph,
                                   const TreeDecomposition& td,
                                   const ImproveOptions& options,
                                   WorkBudget* budget) {
  if (graph.NumVertices() == 0 || td.Empty()) {
    return Status::InvalidArgument(
        "improve: needs a nonempty graph and decomposition");
  }
  ImproveOutcome out;
  TREEDL_ASSIGN_OR_RETURN(auto input_quality, TdQuality(td));
  out.width_before = input_quality.first;
  out.cost_before = input_quality.second;
  // Round zero is free: the cost-guarded width reduction either pays or is
  // reverted, so `best` starts no worse than the input.
  TreeDecomposition best = td;
  TREEDL_RETURN_IF_ERROR(CostGuardedWidthReduce(&best).status());
  TREEDL_ASSIGN_OR_RETURN(auto best_quality, TdQuality(best));
  std::vector<VertexId> order = EliminationOrderFromTd(graph, best);
  Rng rng(options.seed);
  while (budget != nullptr ? budget->ConsumeUnit()
                           : out.rounds < options.max_rounds) {
    ++out.rounds;
    std::vector<VertexId> candidate = order;
    size_t len = candidate.size();
    if (len >= 2) {
      switch (rng.UniformIndex(3)) {
        case 0: {  // swap two positions
          size_t i = rng.UniformIndex(len);
          size_t j = rng.UniformIndex(len);
          std::swap(candidate[i], candidate[j]);
          break;
        }
        case 1: {  // relocate one vertex
          size_t i = rng.UniformIndex(len);
          VertexId v = candidate[i];
          candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
          size_t j = rng.UniformIndex(len);
          candidate.insert(candidate.begin() + static_cast<ptrdiff_t>(j), v);
          break;
        }
        default: {  // reverse a short segment
          size_t i = rng.UniformIndex(len);
          size_t hi = std::min(len, i + 2 + rng.UniformIndex(7));
          std::reverse(candidate.begin() + static_cast<ptrdiff_t>(i),
                       candidate.begin() + static_cast<ptrdiff_t>(hi));
          break;
        }
      }
    }
    StatusOr<TreeDecomposition> cand_td =
        DecompositionFromOrder(graph, candidate);
    TREEDL_RETURN_IF_ERROR(cand_td.status());
    TREEDL_ASSIGN_OR_RETURN(auto quality, TdQuality(*cand_td));
    if (quality < best_quality) {
      best = std::move(cand_td).value();
      best_quality = quality;
      order = std::move(candidate);
      ++out.accepted;
    }
  }
  // A final guarded reduction is free quality: it only sticks when the
  // normalized cost does not regress.
  TREEDL_RETURN_IF_ERROR(CostGuardedWidthReduce(&best).status());
  TREEDL_ASSIGN_OR_RETURN(best_quality, TdQuality(best));
  out.width_after = best_quality.first;
  out.cost_after = best_quality.second;
  out.improved = best_quality < input_quality;
  if (out.improved) {
    out.td = std::move(best);
  } else {
    out.td = td;
  }
  return out;
}

StatusOr<TreeDecomposition> DecomposePipeline(const Graph& graph,
                                              const PipelineOptions& options,
                                              PipelineStats* stats) {
  if (graph.NumVertices() == 0) {
    return Status::InvalidArgument("cannot decompose the empty graph");
  }
  PipelineStats local;
  PipelineStats* st = stats != nullptr ? (*stats = PipelineStats{}, stats)
                                       : &local;
  PreprocessResult pre = Preprocess(graph);
  st->reductions = pre.counters;
  st->lower_bound = pre.lower_bound;
  st->eliminated = pre.eliminated.size();

  TreeDecomposition reduced_td;
  if (pre.reduced.NumVertices() > 0) {
    MultiStartOptions multi;
    multi.starts = std::max<size_t>(1, options.starts);
    multi.seed = options.seed;
    TREEDL_ASSIGN_OR_RETURN(
        reduced_td, DecompositionFromOrder(
                        pre.reduced, MinFillMultiStartOrder(pre.reduced, multi)));
  }
  TREEDL_ASSIGN_OR_RETURN(TreeDecomposition pipeline,
                          SpliceBack(pre, reduced_td));
  {
    TREEDL_ASSIGN_OR_RETURN(size_t merges, CostGuardedWidthReduce(&pipeline));
    st->merges += merges;
  }

  // The legacy single-order candidate caps the result: the pipeline may only
  // ship when it is at least as good, so callers never regress vs kMinFill —
  // neither in width nor in normalized DP cost.
  TREEDL_ASSIGN_OR_RETURN(TreeDecomposition legacy,
                          Decompose(graph, TdHeuristic::kMinFill));
  st->baseline_width = legacy.Width();
  {
    TREEDL_ASSIGN_OR_RETURN(size_t merges, CostGuardedWidthReduce(&legacy));
    st->merges += merges;
  }

  TREEDL_ASSIGN_OR_RETURN(auto pipeline_quality, TdQuality(pipeline));
  TREEDL_ASSIGN_OR_RETURN(auto legacy_quality, TdQuality(legacy));
  st->used_pipeline = pipeline_quality <= legacy_quality;
  TreeDecomposition best =
      st->used_pipeline ? std::move(pipeline) : std::move(legacy);

  // Polish: bounded local search with the same objective; only strict
  // improvements are kept, so the no-regression guarantee survives.
  if (options.improve_rounds > 0) {
    ImproveOptions iopts;
    iopts.seed = options.seed;
    iopts.max_rounds = options.improve_rounds;
    TREEDL_ASSIGN_OR_RETURN(ImproveOutcome polished,
                            ImproveTd(graph, best, iopts));
    if (polished.improved) best = std::move(polished.td);
  }
  return best;
}

}  // namespace treedl
