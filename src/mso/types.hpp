// Rank-k MSO types (§2.3, §3).
//
// The ≡MSO_k-class of a structure with distinguished elements (A, ā) is
// represented by a hash-consed Hintikka tree:
//   rank-0 type  = the atomic diagram over the distinguished elements and
//                  distinguished sets (facts, equalities, memberships);
//   rank-k type  = the pair of (i) the set of rank-(k-1) types of all point
//                  extensions (A, ā·c) and (ii) the set of rank-(k-1) types
//                  of all set extensions (A, ā, P̄·Q).
// Two structures are ≡MSO_k-equivalent iff their rank-k types coincide —
// equivalently, iff the duplicator wins the k-round MSO game (§2.3); this
// representation *is* the game tree quotiented by winning strategies.
//
// Cost is Θ((n + 2^n)^k) for an n-element structure, which is exactly the
// state explosion the paper's §1 warns about; the work budget turns the blow-
// up into a reportable error instead of a hang.
#ifndef TREEDL_MSO_TYPES_HPP_
#define TREEDL_MSO_TYPES_HPP_

#include <map>
#include <vector>

#include "common/small_bitset.hpp"
#include "common/status.hpp"
#include "structure/structure.hpp"

namespace treedl::mso {

using TypeId = int;

struct TypeOptions {
  /// Recursion-node budget across the lifetime of the computer. 0 = unlimited.
  uint64_t work_budget = 200'000'000;
};

/// Computes and interns rank-k types. TypeIds are comparable across calls on
/// the *same* TypeComputer instance (the intern table is shared), regardless
/// of which structure they came from.
class TypeComputer {
 public:
  explicit TypeComputer(TypeOptions options = {}) : options_(options) {}

  /// Rank-k type of (A, elems) with optional distinguished sets.
  StatusOr<TypeId> ComputeType(const Structure& a,
                               const std::vector<ElementId>& elems, int k,
                               const std::vector<SmallBitset>& sets = {});

  size_t NumInternedTypes() const { return next_id_; }
  uint64_t WorkUsed() const { return work_; }

 private:
  StatusOr<TypeId> Compute(const Structure& a, std::vector<ElementId>* elems,
                           std::vector<SmallBitset>* sets, int k);
  TypeId Intern(std::vector<uint64_t> key);
  TypeId AtomicType(const Structure& a, const std::vector<ElementId>& elems,
                    const std::vector<SmallBitset>& sets);

  TypeOptions options_;
  uint64_t work_ = 0;
  std::map<std::vector<uint64_t>, TypeId> interned_;
  TypeId next_id_ = 0;
};

/// (A, ā) ≡MSO_k (B, b̄)? Both types are computed on `computer`.
StatusOr<bool> KEquivalent(TypeComputer* computer, const Structure& a,
                           const std::vector<ElementId>& ea, const Structure& b,
                           const std::vector<ElementId>& eb, int k);

}  // namespace treedl::mso

#endif  // TREEDL_MSO_TYPES_HPP_
