#include "datalog/executor.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl::datalog {

namespace {

/// Per-row tail shared by the probing executors: checks kCheckRepeat
/// positions, binds kBindFirst ones, runs `next`, and unbinds. kConst and
/// kBound positions were already matched exactly by the probe key (or are
/// absent, for full scans). kStaticArity >= 0 turns the position loop into a
/// compile-time-bounded (unrollable) one; -1 is the generic fallback.
template <int kStaticArity>
inline void VisitRow(const JoinStep& step, FactStore* src, uint32_t row,
                     Binding* binding, const std::function<void()>& next) {
  const int arity = kStaticArity >= 0
                        ? kStaticArity
                        : static_cast<int>(step.actions.size());
  VariableId bound_vars[32];
  int num_bound = 0;
  bool ok = true;
  for (int i = 0; i < arity; ++i) {
    ArgAction action = step.actions[static_cast<size_t>(i)];
    if (action == ArgAction::kConst || action == ArgAction::kBound) continue;
    ElementId value = src->At(step.predicate, i, row);
    ElementId& slot =
        (*binding)[static_cast<size_t>(step.vars[static_cast<size_t>(i)])];
    if (action == ArgAction::kBindFirst) {
      slot = value;
      bound_vars[num_bound++] = step.vars[static_cast<size_t>(i)];
    } else if (slot != value) {  // kCheckRepeat
      ok = false;
      break;
    }
  }
  if (ok) next();
  for (int k = 0; k < num_bound; ++k) {
    (*binding)[static_cast<size_t>(bound_vars[k])] = kUnbound;
  }
}

/// Grounds the step's arguments under `binding` into `key` (all positions
/// are kConst or kBound — the fully-bound executors' precondition).
template <int kStaticArity>
inline void GroundKey(const JoinStep& step, const Binding& binding,
                      Tuple* key) {
  const int arity = kStaticArity >= 0
                        ? kStaticArity
                        : static_cast<int>(step.actions.size());
  for (int i = 0; i < arity; ++i) {
    size_t pos = static_cast<size_t>(i);
    (*key)[pos] = step.actions[pos] == ArgAction::kConst
                      ? step.const_args[pos]
                      : binding[static_cast<size_t>(step.vars[pos])];
  }
}

template <int kStaticArity>
class NegCheckExec final : public StepExecutor {
 public:
  void Execute(const JoinStep& step, FactStore* store, FactStore* /*delta*/,
               size_t /*begin*/, size_t /*end*/, Binding* binding,
               const std::function<void()>& next) const override {
    Tuple key(step.actions.size());
    GroundKey<kStaticArity>(step, *binding, &key);
    if (store->FindRow(step.predicate, key) == FactStore::kNoRow) next();
  }
};

template <int kStaticArity>
class BoundCheckExec final : public StepExecutor {
 public:
  void Execute(const JoinStep& step, FactStore* store, FactStore* delta,
               size_t begin, size_t end, Binding* binding,
               const std::function<void()>& next) const override {
    FactStore* src = step.is_delta ? delta : store;
    Tuple key(step.actions.size());
    GroundKey<kStaticArity>(step, *binding, &key);
    uint32_t row = src->FindRow(step.predicate, key);
    if (row == FactStore::kNoRow) return;
    if (step.is_delta && (row < begin || row >= end)) return;
    next();
  }
};

template <int kStaticArity>
class IndexProbeExec final : public StepExecutor {
 public:
  void Execute(const JoinStep& step, FactStore* store, FactStore* delta,
               size_t begin, size_t end, Binding* binding,
               const std::function<void()>& next) const override {
    FactStore* src = step.is_delta ? delta : store;
    const int arity = kStaticArity >= 0
                          ? kStaticArity
                          : static_cast<int>(step.actions.size());
    ElementId key[32];
    int k = 0;
    for (int i = 0; i < arity; ++i) {
      size_t pos = static_cast<size_t>(i);
      if (step.actions[pos] == ArgAction::kConst) {
        key[k++] = step.const_args[pos];
      } else if (step.actions[pos] == ArgAction::kBound) {
        key[k++] = (*binding)[static_cast<size_t>(step.vars[pos])];
      }
    }
    // Chain rows arrive in relation insertion order; the delta range is a
    // filter over that same order, so batches concatenate deterministically.
    uint32_t row = src->Probe(step.predicate, step.probe_mask, key);
    while (row != FactStore::kNoRow) {
      uint32_t current = row;
      row = src->NextRow(step.predicate, step.probe_mask, row);
      if (!step.is_delta || (current >= begin && current < end)) {
        VisitRow<kStaticArity>(step, src, current, binding, next);
      }
    }
  }
};

template <int kStaticArity>
class FullScanExec final : public StepExecutor {
 public:
  void Execute(const JoinStep& step, FactStore* store, FactStore* delta,
               size_t begin, size_t end, Binding* binding,
               const std::function<void()>& next) const override {
    FactStore* src = step.is_delta ? delta : store;
    size_t num_rows = src->NumTuples(step.predicate);
    size_t lo = step.is_delta ? std::min(begin, num_rows) : 0;
    size_t hi = step.is_delta ? std::min(end, num_rows) : num_rows;
    for (size_t row = lo; row < hi; ++row) {
      VisitRow<kStaticArity>(step, src, static_cast<uint32_t>(row), binding,
                             next);
    }
  }
};

template <template <int> class ExecT>
void RegisterKind(const StepExecutor** row) {
  static const ExecT<0> arity0;
  static const ExecT<1> arity1;
  static const ExecT<2> arity2;
  static const ExecT<3> arity3;
  static const ExecT<4> arity4;
  static const ExecT<-1> generic;
  row[0] = &arity0;
  row[1] = &arity1;
  row[2] = &arity2;
  row[3] = &arity3;
  row[4] = &arity4;
  row[5] = &generic;
}

}  // namespace

ExecutorRegistry::ExecutorRegistry() {
  RegisterKind<NegCheckExec>(table_[static_cast<int>(StepKind::kNegCheck)]);
  RegisterKind<BoundCheckExec>(
      table_[static_cast<int>(StepKind::kBoundCheck)]);
  RegisterKind<IndexProbeExec>(
      table_[static_cast<int>(StepKind::kIndexProbe)]);
  RegisterKind<FullScanExec>(table_[static_cast<int>(StepKind::kFullScan)]);
}

const ExecutorRegistry& ExecutorRegistry::Instance() {
  static const ExecutorRegistry registry;
  return registry;
}

const StepExecutor* ExecutorRegistry::Resolve(StepKind kind, int arity) const {
  int slot = arity <= kMaxSpecializedArity ? arity : kMaxSpecializedArity + 1;
  return table_[static_cast<int>(kind)][slot];
}

namespace {

JoinPlan CompilePlan(const ResolvedAtom& head,
                     const std::vector<ResolvedAtom>& body,
                     const std::vector<bool>& positive, int delta_position,
                     size_t num_variables) {
  const ExecutorRegistry& registry = ExecutorRegistry::Instance();
  JoinPlan plan;
  plan.delta_position = delta_position;
  plan.head = head;
  plan.num_variables = num_variables;
  std::vector<bool> bound(num_variables, false);
  for (size_t pos = 0; pos < body.size(); ++pos) {
    const ResolvedAtom& atom = body[pos];
    const size_t arity = atom.const_args.size();
    CompiledStep step;
    step.spec.predicate = atom.predicate;
    step.spec.is_delta = static_cast<int>(pos) == delta_position;
    step.spec.actions.resize(arity);
    step.spec.const_args = atom.const_args;
    step.spec.vars = atom.vars;
    bool fully_bound = true;
    for (size_t i = 0; i < arity; ++i) {
      VariableId var = atom.vars[i];
      if (var < 0) {
        step.spec.actions[i] = ArgAction::kConst;
        step.spec.probe_mask |= 1u << i;
      } else if (bound[static_cast<size_t>(var)]) {
        step.spec.actions[i] = ArgAction::kBound;
        step.spec.probe_mask |= 1u << i;
      } else {
        // First occurrence in this atom binds; later in-atom occurrences
        // can only be compared once the row supplies the value.
        bool repeat = false;
        for (size_t j = 0; j < i; ++j) {
          if (atom.vars[j] == var &&
              step.spec.actions[j] == ArgAction::kBindFirst) {
            repeat = true;
            break;
          }
        }
        step.spec.actions[i] =
            repeat ? ArgAction::kCheckRepeat : ArgAction::kBindFirst;
        fully_bound = false;
      }
    }
    if (!positive[pos]) {
      // Analysis orders negatives after their variables are bound.
      TREEDL_DCHECK(fully_bound);
      step.kind = StepKind::kNegCheck;
    } else if (fully_bound) {
      step.kind = StepKind::kBoundCheck;
    } else if (step.spec.probe_mask != 0) {
      step.kind = StepKind::kIndexProbe;
    } else {
      step.kind = StepKind::kFullScan;
    }
    step.executor = registry.Resolve(step.kind, static_cast<int>(arity));
    if (positive[pos]) {
      for (VariableId var : atom.vars) {
        if (var >= 0) bound[static_cast<size_t>(var)] = true;
      }
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

}  // namespace

CompiledRule CompileRule(const ResolvedAtom& head,
                         const std::vector<ResolvedAtom>& body,
                         const std::vector<bool>& positive,
                         const std::vector<bool>& body_intensional,
                         size_t num_variables) {
  CompiledRule compiled;
  compiled.full = CompilePlan(head, body, positive, -1, num_variables);
  for (size_t pos = 0; pos < body.size(); ++pos) {
    if (!positive[pos] || !body_intensional[pos]) continue;
    compiled.delta_variants.push_back(CompilePlan(
        head, body, positive, static_cast<int>(pos), num_variables));
  }
  return compiled;
}

void PendingSet::Add(const ResolvedAtom& head, const Binding& binding) {
  Entry entry;
  entry.predicate = head.predicate;
  entry.offset = static_cast<uint32_t>(values_.size());
  entry.arity = static_cast<uint32_t>(head.const_args.size());
  for (size_t i = 0; i < head.const_args.size(); ++i) {
    ElementId value = head.vars[i] >= 0
                          ? binding[static_cast<size_t>(head.vars[i])]
                          : head.const_args[i];
    TREEDL_DCHECK(value != kUnbound);
    values_.push_back(value, &arena_);
  }
  entries_.push_back(entry, &arena_);
}

void ExecutePlan(const JoinPlan& plan, FactStore* store, FactStore* delta,
                 size_t begin, size_t end, PendingSet* out,
                 ExecCounters* counters) {
  TREEDL_DCHECK(!plan.steps.empty());
  Binding binding(plan.num_variables, kUnbound);
  const size_t num_steps = plan.steps.size();
  // Continuation per step: entering a step is one unit of work (the same
  // accounting as the interpreted engine) and one executor dispatch.
  std::vector<std::function<void()>> continuations(num_steps + 1);
  continuations[num_steps] = [&] { out->Add(plan.head, binding); };
  for (size_t i = num_steps; i-- > 0;) {
    continuations[i] = [&, i] {
      ++counters->work;
      ++counters->dispatches;
      const CompiledStep& step = plan.steps[i];
      step.executor->Execute(step.spec, store, delta, begin, end, &binding,
                             continuations[i + 1]);
    };
  }
  continuations[0]();
}

}  // namespace treedl::datalog
