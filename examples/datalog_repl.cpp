// Datalog runner: evaluate a program against a fact base with any of the
// three engines and print the derived facts.
//
// Usage: datalog_repl [program.dl facts.txt [naive|seminaive|grounded]]
// Without arguments, runs a built-in transitive-closure demo.
#include <fstream>
#include <iostream>
#include <sstream>

#include "datalog/analysis.hpp"
#include "datalog/parser.hpp"
#include "engine/engine.hpp"
#include "structure/structure_io.hpp"

namespace {

constexpr const char* kDemoProgram = R"(
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
cyclic(X) :- path(X, X).
)";

constexpr const char* kDemoFacts = R"(
edge(a, b). edge(b, c). edge(c, d). edge(d, b).
)";

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treedl;
  using namespace treedl::datalog;

  std::string program_text = kDemoProgram;
  std::string facts_text = kDemoFacts;
  std::string engine = "seminaive";
  if (argc >= 3) {
    program_text = ReadFile(argv[1]);
    facts_text = ReadFile(argv[2]);
  }
  if (argc >= 4) engine = argv[3];

  auto program = ParseProgram(program_text);
  if (!program.ok()) {
    std::cerr << "program parse error: " << program.status() << "\n";
    return 1;
  }
  // Facts declare the EDB signature implicitly: parse them as a program too,
  // then re-parse as a structure over the discovered extensional predicates.
  auto info = AnalyzeProgram(*program);
  if (!info.ok()) {
    std::cerr << "program analysis error: " << info.status() << "\n";
    return 1;
  }
  Signature edb_signature;
  for (PredicateId p = 0; p < program->signature().size(); ++p) {
    if (!info->intensional[static_cast<size_t>(p)]) {
      auto added = edb_signature.AddPredicate(program->signature().name(p),
                                              program->signature().arity(p));
      if (!added.ok()) {
        std::cerr << added.status() << "\n";
        return 1;
      }
    }
  }
  auto edb = ParseStructure(edb_signature, facts_text);
  if (!edb.ok()) {
    std::cerr << "facts parse error: " << edb.status() << "\n";
    return 1;
  }

  std::cout << "Program (" << program->NumRules() << " rules, "
            << (info->is_monadic ? "monadic" : "non-monadic") << ", "
            << (CheckQuasiGuarded(*program).ok() ? "quasi-guarded"
                                                 : "not quasi-guarded")
            << "):\n"
            << program->ToString() << "\n";

  // One Engine session over the EDB; the backend is an option, not a
  // different API.
  EngineOptions options;
  options.backend = engine == "naive"      ? DatalogBackend::kNaive
                    : engine == "grounded" ? DatalogBackend::kGrounded
                                           : DatalogBackend::kSemiNaive;
  Engine session(*edb, options);
  RunStats run;
  StatusOr<Structure> result = session.EvaluateDatalog(*program, &run);
  if (!result.ok()) {
    std::cerr << "evaluation failed: " << result.status() << "\n";
    return 1;
  }
  if (options.backend == DatalogBackend::kGrounded) {
    std::cout << "grounded: " << run.ground_clauses << " clauses over "
              << run.ground_atoms << " atoms\n";
  } else {
    std::cout << "fixpoint: " << run.eval_iterations << " rounds, "
              << run.derived_facts << " facts derived\n";
  }
  std::cout << "Derived facts (" << engine << "):\n";
  for (PredicateId p = 0; p < result->signature().size(); ++p) {
    if (edb_signature.HasPredicate(result->signature().name(p))) continue;
    for (const Tuple& t : result->Relation(p)) {
      std::cout << "  " << result->signature().name(p);
      if (!t.empty()) {
        std::cout << "(";
        for (size_t i = 0; i < t.size(); ++i) {
          if (i > 0) std::cout << ", ";
          std::cout << result->ElementName(t[i]);
        }
        std::cout << ")";
      }
      std::cout << "\n";
    }
  }
  return 0;
}
