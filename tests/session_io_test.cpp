// Persistent-session round trips: save → load must reproduce every answer
// bit-identically with ZERO rebuilds (the acceptance criterion of the
// session-IO work), and damaged files — truncated, bit-flipped, wrong
// fingerprint, future version — must fail with a clean error Status, never a
// crash, leaving the engine usable.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "engine/engine.hpp"
#include "engine/session_io.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace treedl {
namespace {

constexpr Engine::Problem kAllProblems[] = {
    Engine::Problem::kThreeColor,      Engine::Problem::kThreeColorCount,
    Engine::Problem::kVertexCover,     Engine::Problem::kIndependentSet,
    Engine::Problem::kDominatingSet,
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void ExpectSameResult(const Engine::SolveResult& a,
                      const Engine::SolveResult& b, const char* what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.optimum, b.optimum) << what;
  EXPECT_EQ(a.count, b.count) << what;
  EXPECT_EQ(a.witness, b.witness) << what;
}

TEST(SessionIoTest, GraphSessionRoundTripIsBitIdenticalWithZeroRebuilds) {
  Rng rng(TestSeed());
  Graph graph = RandomPartialKTree(60, 3, 0.6, &rng);
  EngineOptions options;
  options.num_threads = 4;
  const std::string path = TempPath("graph_session.tdls");

  // Warm a session: Width + all five problems + the fused batch, then save.
  Engine warm = Engine::FromGraph(graph, options);
  auto width = warm.Width();
  ASSERT_TRUE(width.ok()) << width.status();
  std::vector<Engine::SolveResult> expected;
  for (Engine::Problem problem : kAllProblems) {
    auto result = warm.Solve(problem);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(*result);
  }
  auto warm_all = warm.SolveAll();
  ASSERT_TRUE(warm_all.ok()) << warm_all.status();
  RunStats save_run;
  ASSERT_TRUE(warm.SaveSession(path, &save_run).ok());
  EXPECT_GT(save_run.artifact_saves, 0u);

  // A cold engine over the same graph restores the cache from disk...
  Engine cold = Engine::FromGraph(graph, options);
  RunStats load_run;
  Status loaded = cold.LoadSession(path, &load_run);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_GT(load_run.artifact_loads, 0u);
  EXPECT_EQ(load_run.encode_builds, 0u);
  EXPECT_EQ(load_run.td_builds, 0u);
  EXPECT_EQ(load_run.normalize_builds, 0u);

  // ... and every answer is bit-identical, with zero rebuilds.
  auto cold_width = cold.Width();
  ASSERT_TRUE(cold_width.ok()) << cold_width.status();
  EXPECT_EQ(*cold_width, *width);
  for (size_t i = 0; i < std::size(kAllProblems); ++i) {
    RunStats run;
    auto result = cold.Solve(kAllProblems[i], &run);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectSameResult(*result, expected[i], "Solve after load");
    EXPECT_EQ(run.td_builds, 0u) << "problem " << i;
    EXPECT_EQ(run.normalize_builds, 0u) << "problem " << i;
    EXPECT_GT(run.cache_hits, 0u) << "problem " << i;
  }
  RunStats all_run;
  auto cold_all = cold.SolveAll(&all_run);
  ASSERT_TRUE(cold_all.ok()) << cold_all.status();
  EXPECT_EQ(cold_all->three_colorable, warm_all->three_colorable);
  EXPECT_EQ(cold_all->coloring, warm_all->coloring);
  EXPECT_EQ(cold_all->three_colorings, warm_all->three_colorings);
  EXPECT_EQ(cold_all->min_vertex_cover, warm_all->min_vertex_cover);
  EXPECT_EQ(cold_all->max_independent_set, warm_all->max_independent_set);
  EXPECT_EQ(cold_all->min_dominating_set, warm_all->min_dominating_set);
  EXPECT_EQ(all_run.td_builds, 0u);
  EXPECT_EQ(all_run.normalize_builds, 0u);

  // Session-wide: the cold engine never built anything.
  RunStats total = cold.CumulativeStats();
  EXPECT_EQ(total.encode_builds, 0u);
  EXPECT_EQ(total.td_builds, 0u);
  EXPECT_EQ(total.normalize_builds, 0u);
  std::remove(path.c_str());
}

TEST(SessionIoTest, SchemaSessionRoundTripRestoresPrimesAndEncoding) {
  Schema schema = Schema::PaperExampleSchema();
  const std::string path = TempPath("schema_session.tdls");

  Engine warm(schema);
  auto primes = warm.AllPrimes();
  ASSERT_TRUE(primes.ok()) << primes.status();
  ASSERT_TRUE(warm.SaveSession(path).ok());

  Engine cold(schema);
  RunStats load_run;
  ASSERT_TRUE(cold.LoadSession(path, &load_run).ok());
  EXPECT_GT(load_run.artifact_loads, 0u);

  // AllPrimes comes straight from the restored memo: no encode, no td, no
  // normalize — a pure cache hit.
  RunStats run;
  auto cold_primes = cold.AllPrimes(&run);
  ASSERT_TRUE(cold_primes.ok()) << cold_primes.status();
  EXPECT_EQ(*cold_primes, *primes);
  EXPECT_EQ(run.encode_builds, 0u);
  EXPECT_EQ(run.td_builds, 0u);
  EXPECT_EQ(run.normalize_builds, 0u);
  EXPECT_GT(run.cache_hits, 0u);

  // IsPrime answers O(1) from the memo too.
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    RunStats is_run;
    auto is_prime = cold.IsPrime(a, &is_run);
    ASSERT_TRUE(is_prime.ok()) << is_prime.status();
    EXPECT_EQ(*is_prime, (*primes)[static_cast<size_t>(a)]);
    EXPECT_EQ(is_run.td_builds, 0u);
  }
  EXPECT_EQ(cold.CumulativeStats().encode_builds, 0u);
  EXPECT_EQ(cold.CumulativeStats().td_builds, 0u);
  std::remove(path.c_str());
}

TEST(SessionIoTest, FingerprintMismatchIsRejected) {
  Rng rng(TestSeed());
  Graph g1 = RandomPartialKTree(30, 2, 0.6, &rng);
  Graph g2 = RandomPartialKTree(31, 2, 0.6, &rng);
  const std::string path = TempPath("fingerprint.tdls");

  Engine a = Engine::FromGraph(g1);
  ASSERT_TRUE(a.Width().ok());
  ASSERT_TRUE(a.SaveSession(path).ok());

  Engine b = Engine::FromGraph(g2);
  Status status = b.LoadSession(path);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("fingerprint"), std::string::npos)
      << status.message();
  // The engine is unharmed and still answers.
  EXPECT_TRUE(b.Solve(Engine::Problem::kVertexCover).ok());
  std::remove(path.c_str());
}

TEST(SessionIoTest, CorruptedAndTruncatedFilesFailCleanly) {
  Rng rng(TestSeed());
  Graph graph = RandomPartialKTree(40, 3, 0.6, &rng);
  const std::string path = TempPath("corrupt.tdls");

  Engine warm = Engine::FromGraph(graph);
  ASSERT_TRUE(warm.Solve(Engine::Problem::kThreeColor).ok());
  ASSERT_TRUE(warm.SaveSession(path).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 24u);

  // Truncations at every prefix length of the header and a sweep of body
  // prefixes: all clean errors.
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 16u, 23u}) {
    WriteFileBytes(path, bytes.substr(0, len));
    Engine cold = Engine::FromGraph(graph);
    EXPECT_FALSE(cold.LoadSession(path).ok()) << "truncated at " << len;
  }
  for (size_t len = 24; len < bytes.size(); len += 13) {
    WriteFileBytes(path, bytes.substr(0, len));
    Engine cold = Engine::FromGraph(graph);
    EXPECT_FALSE(cold.LoadSession(path).ok()) << "truncated at " << len;
  }

  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    WriteFileBytes(path, bad);
    Engine cold = Engine::FromGraph(graph);
    Status status = cold.LoadSession(path);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("magic"), std::string::npos);
  }

  // A version from the future is refused deliberately (not a parse crash).
  {
    std::string bad = bytes;
    bad[4] = static_cast<char>(99);
    WriteFileBytes(path, bad);
    Engine cold = Engine::FromGraph(graph);
    Status status = cold.LoadSession(path);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("version"), std::string::npos)
        << status.message();
  }

  // Bit flips through the body: either a clean parse error or — when the
  // flip lands in redundantly-validated data that still decodes — a clean
  // load; never a crash. After every attempt the engine still works.
  Rng flip_rng(TestSeed(1));
  for (int trial = 0; trial < 32; ++trial) {
    std::string bad = bytes;
    size_t pos = 16 + flip_rng.UniformIndex(bad.size() - 16);
    bad[pos] = static_cast<char>(bad[pos] ^ (1 << flip_rng.UniformIndex(8)));
    WriteFileBytes(path, bad);
    Engine cold = Engine::FromGraph(graph);
    (void)cold.LoadSession(path);
    auto result = cold.Solve(Engine::Problem::kIndependentSet);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  std::remove(path.c_str());
}

TEST(SessionIoTest, FailedLoadRestoresNothing) {
  // A file whose encoding section decodes fine but whose decomposition
  // carries an out-of-domain bag element must fail the load atomically: no
  // artifact (not even the valid-looking encoding) may stick.
  Schema schema = Schema::PaperExampleSchema();
  const std::string path = TempPath("partial_session.tdls");
  Engine warm(schema);
  ASSERT_TRUE(warm.AllPrimes().ok());
  ASSERT_TRUE(warm.SaveSession(path).ok());

  // Rebuild the file with a poisoned decomposition, via the public format
  // API (the fingerprint is plainly readable at offset 8).
  std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), 16u);
  uint64_t fingerprint = 0;
  {
    BinaryReader header(bytes);
    uint32_t skip = 0;
    ASSERT_TRUE(header.U32(&skip).ok());
    ASSERT_TRUE(header.U32(&skip).ok());
    ASSERT_TRUE(header.U64(&fingerprint).ok());
  }
  auto artifacts = engine::DecodeSessionFile(bytes, fingerprint);
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();
  ASSERT_TRUE(artifacts->td.has_value());
  artifacts->td->SetBag(artifacts->td->root(), {0, 1, 999999});
  engine::SessionArtifactRefs refs;
  refs.td = &*artifacts->td;
  if (artifacts->encoding.has_value()) refs.encoding = &*artifacts->encoding;
  if (artifacts->primes.has_value()) refs.primes = &*artifacts->primes;
  WriteFileBytes(path, engine::EncodeSessionFile(fingerprint, refs));

  Engine cold(schema);
  RunStats load_run;
  Status status = cold.LoadSession(path, &load_run);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(load_run.artifact_loads, 0u);
  // Nothing file-derived stuck: the next query builds its own encoding and
  // decomposition and answers correctly.
  RunStats run;
  auto primes = cold.AllPrimes(&run);
  ASSERT_TRUE(primes.ok()) << primes.status();
  EXPECT_EQ(run.encode_builds, 1u);
  EXPECT_EQ(run.td_builds, 1u);
  EXPECT_EQ(*primes, *warm.AllPrimes());
  std::remove(path.c_str());
}

TEST(SessionIoTest, UnknownSectionsAreSkipped) {
  // A same-version file carrying a section tag this reader does not know:
  // the known sections still load (forward compatibility within a version).
  BinaryWriter payload;
  payload.Str("artifact from the future");
  BinaryWriter file;
  file.U32(engine::kSessionMagic);
  file.U32(engine::kSessionVersion);
  file.U64(0xfeedULL);
  file.U64(1);  // one section
  file.U32(999);
  file.Str(payload.buffer());
  auto artifacts = engine::DecodeSessionFile(file.buffer(), 0xfeedULL);
  ASSERT_TRUE(artifacts.ok()) << artifacts.status();
  EXPECT_EQ(artifacts->Count(), 0u);
}

TEST(SessionIoTest, SaveBeforeAnyQueryWritesAnEmptySession) {
  Rng rng(TestSeed());
  Graph graph = RandomPartialKTree(20, 2, 0.6, &rng);
  const std::string path = TempPath("empty_session.tdls");
  Engine cold = Engine::FromGraph(graph);
  RunStats save_run;
  ASSERT_TRUE(cold.SaveSession(path, &save_run).ok());
  EXPECT_EQ(save_run.artifact_saves, 0u);

  Engine other = Engine::FromGraph(graph);
  RunStats load_run;
  ASSERT_TRUE(other.LoadSession(path, &load_run).ok());
  EXPECT_EQ(load_run.artifact_loads, 0u);
  // Nothing restored; the first query builds as usual.
  RunStats run;
  ASSERT_TRUE(other.Solve(Engine::Problem::kThreeColor, &run).ok());
  EXPECT_EQ(run.td_builds, 1u);
  std::remove(path.c_str());
}

TEST(SessionIoTest, SaveIsAtomicAndLeavesNoTempFiles) {
  namespace fs = std::filesystem;
  Rng rng(TestSeed());
  Graph graph = RandomPartialKTree(40, 3, 0.6, &rng);
  fs::path dir = fs::path(::testing::TempDir()) / "atomic_save_dir";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directory(dir));
  const std::string path = (dir / "session.tdls").string();

  Engine warm = Engine::FromGraph(graph);
  ASSERT_TRUE(warm.Solve(Engine::Problem::kVertexCover).ok());
  ASSERT_TRUE(warm.SaveSession(path).ok());

  // Exactly the published file — the temporary sibling was renamed away.
  std::vector<std::string> entries;
  for (const auto& entry : fs::directory_iterator(dir)) {
    entries.push_back(entry.path().filename().string());
  }
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0], "session.tdls");

  // Overwriting an existing session is also atomic: the target is never
  // truncated in place, so even racing a crash there is always a complete
  // file at `path`. After the second save the file still loads cleanly.
  ASSERT_TRUE(warm.SaveSession(path).ok());
  entries.clear();
  for (const auto& entry : fs::directory_iterator(dir)) {
    entries.push_back(entry.path().filename().string());
  }
  ASSERT_EQ(entries.size(), 1u);
  Engine cold = Engine::FromGraph(graph);
  EXPECT_TRUE(cold.LoadSession(path).ok());
  fs::remove_all(dir);
}

TEST(SessionIoTest, FailedSaveCreatesNoFile) {
  Rng rng(TestSeed());
  Graph graph = RandomPartialKTree(20, 2, 0.6, &rng);
  Engine warm = Engine::FromGraph(graph);
  ASSERT_TRUE(warm.Solve(Engine::Problem::kVertexCover).ok());
  const std::string path =
      "/nonexistent_treedl_dir/no_such_subdir/session.tdls";
  Status result = warm.SaveSession(path);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace treedl
