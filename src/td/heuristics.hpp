// Tree-decomposition construction.
//
// The paper relies on Bodlaender's linear-time algorithm [3] for obtaining a
// width-w decomposition; that algorithm is famously impractical, so — like
// every practical system in this space (htd, D-FLAT, …) — we provide the
// standard elimination-order heuristics, plus an exact exponential algorithm
// for small graphs used to assess heuristic quality. DESIGN.md records this
// substitution; downstream components only require *a* valid decomposition of
// bounded width.
#ifndef TREEDL_TD_HEURISTICS_HPP_
#define TREEDL_TD_HEURISTICS_HPP_

#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "structure/structure.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

enum class TdHeuristic {
  kMinDegree,        // eliminate a vertex of minimum current degree
  kMinFill,          // eliminate a vertex adding the fewest fill edges
  kMcs,              // maximum cardinality search order (reversed)
  kMinFillTieBreak,  // min-fill, ties broken by current degree then id
};

/// An elimination order chosen greedily by `heuristic`. kMinDegree / kMinFill
/// break ties by lowest id (the historical behavior the default session
/// decompositions — and the transcripts and bench baselines pinned to them —
/// depend on); kMinFillTieBreak breaks min-fill ties by smallest current
/// degree, then lowest id, which dominates kMinFill on width in practice.
std::vector<VertexId> HeuristicOrder(const Graph& graph, TdHeuristic heuristic);

struct MultiStartOptions {
  /// Total orders tried: the deterministic (fill, degree, id) order plus
  /// starts - 1 randomized-tie-break restarts.
  size_t starts = 8;
  /// Base seed of the randomized restarts. The decomposition-quality
  /// pipeline passes the session fingerprint here, making the multi-start
  /// result a pure function of the session input.
  uint64_t seed = 0;
};

/// Best-of-K min-fill: the tie-broken deterministic order plus seeded
/// restarts that break (fill, degree) ties uniformly at random, keeping the
/// order with the smallest (induced width, modeled cost). Deterministic per
/// (graph, options). Requires a nonempty graph.
std::vector<VertexId> MinFillMultiStartOrder(const Graph& graph,
                                             const MultiStartOptions& options);

/// Decomposes `graph` with `heuristic` (default: min-fill, usually the best
/// of the three).
StatusOr<TreeDecomposition> Decompose(const Graph& graph,
                                      TdHeuristic heuristic = TdHeuristic::kMinFill);

/// Decomposes a τ-structure via its Gaifman graph (§2.2: a TD of the
/// structure is exactly a TD of the Gaifman graph).
StatusOr<TreeDecomposition> DecomposeStructure(
    const Structure& structure, TdHeuristic heuristic = TdHeuristic::kMinFill);

/// Exact treewidth via the O(2^n · n^2) subset dynamic program over
/// elimination prefixes. Requires n <= 20; intended for tests and the
/// heuristic-quality benchmark.
StatusOr<int> ExactTreewidth(const Graph& graph);

}  // namespace treedl

#endif  // TREEDL_TD_HEURISTICS_HPP_
