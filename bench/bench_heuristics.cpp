// Decomposition-quality ablation: min-fill vs min-degree vs MCS against the
// exact treewidth on random graphs (the substrate substitution for
// Bodlaender's algorithm documented in DESIGN.md).
#include <cstdio>

#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "td/heuristics.hpp"

namespace treedl {
namespace {

void RunHeuristicsBench() {
  std::printf("Tree-decomposition heuristics vs exact treewidth\n");
  std::printf("(32 random partial 3-trees, n = 14)\n");
  std::printf("%10s %10s %10s %12s\n", "heuristic", "avg width", "excess",
              "time ms/graph");
  Rng rng(99);
  std::vector<Graph> graphs;
  std::vector<int> exact;
  for (int i = 0; i < 32; ++i) {
    graphs.push_back(RandomPartialKTree(14, 3, 0.75, &rng));
    exact.push_back(ExactTreewidth(graphs.back()).value());
  }
  struct Row {
    const char* name;
    TdHeuristic heuristic;
  };
  for (Row row : {Row{"min-fill", TdHeuristic::kMinFill},
                  Row{"min-degree", TdHeuristic::kMinDegree},
                  Row{"mcs", TdHeuristic::kMcs}}) {
    double total_width = 0, total_excess = 0;
    Timer timer;
    for (size_t i = 0; i < graphs.size(); ++i) {
      auto td = Decompose(graphs[i], row.heuristic);
      TREEDL_CHECK(td.ok());
      total_width += td->Width();
      total_excess += td->Width() - exact[static_cast<size_t>(i)];
    }
    double ms = timer.ElapsedMillis() / static_cast<double>(graphs.size());
    std::printf("%10s %10.2f %10.2f %12.3f\n", row.name,
                total_width / static_cast<double>(graphs.size()),
                total_excess / static_cast<double>(graphs.size()), ms);
  }
  double avg_exact = 0;
  for (int w : exact) avg_exact += w;
  std::printf("%10s %10.2f\n", "exact",
              avg_exact / static_cast<double>(exact.size()));
}

}  // namespace
}  // namespace treedl

int main() {
  treedl::RunHeuristicsBench();
  return 0;
}
