#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "datalog/eval.hpp"
#include "datalog/eval_internal.hpp"

namespace treedl::datalog {

namespace {

constexpr size_t kMaxDeltaBatches = 8;

/// One rule-evaluation unit of a fixpoint round: rule x delta position x
/// contiguous delta batch. Round 0 units carry delta_position = -1 and a
/// full-relation range. The decomposition of a round into units depends only
/// on the program and the delta sizes — never on the thread count — so the
/// fixpoint_rule_tasks counter (and every derived-work counter) is identical
/// between sequential and parallel runs.
struct RuleTask {
  size_t rule = 0;
  int delta_position = -1;
  internal::DeltaRange range;
};

struct TaskResult {
  std::vector<std::pair<PredicateId, Tuple>> pending;
  size_t rule_applications = 0;
};

/// Pre-builds the (predicate, position) column indexes the rule tasks will
/// probe against `store`. The probe position of a body atom is statically
/// determined: ProbePosition (the same choice MatchAtom makes at runtime)
/// applied to the statically-bound variable set — at plan position k exactly
/// the variables of positive atoms 0..k-1 are bound (negative literals bind
/// nothing new). The parallel round shares the store read-only across
/// tasks; with the probed indexes frozen, MatchAtom is a pure read (Add
/// keeps built indexes maintained between rounds).
void FreezeIndexes(const internal::PreparedProgram& prep, FactStore* store,
                   bool delta_positions_only) {
  std::vector<bool> bound(prep.num_variables);
  for (const internal::PreparedRule& rule : prep.rules) {
    bound.assign(prep.num_variables, false);
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      const ResolvedAtom& atom = rule.body[pos];
      if (rule.positive[pos] &&
          (!delta_positions_only || rule.body_intensional[pos])) {
        int probe = ProbePosition(atom, [&](VariableId var) {
          return bound[static_cast<size_t>(var)];
        });
        if (probe >= 0) store->EnsureColumnIndex(atom.predicate, probe);
      }
      if (rule.positive[pos]) {
        for (VariableId var : atom.vars) {
          if (var >= 0) bound[static_cast<size_t>(var)] = true;
        }
      }
    }
  }
}

/// Executes `tasks` — on exec.pool when it is usable, inline otherwise — and
/// returns the per-task results in task order. Tasks only read `prep.store`
/// and `delta`; the caller replays the pending facts in task order, so the
/// store's insertion sequence is bit-identical to the sequential engine's.
std::vector<TaskResult> RunRuleTasks(const internal::PreparedProgram& prep,
                                     FactStore* store, FactStore* delta,
                                     const std::vector<RuleTask>& tasks,
                                     const EvalExec& exec) {
  std::vector<TaskResult> results(tasks.size());
  auto run_one = [&](size_t i) {
    const RuleTask& task = tasks[i];
    const internal::PreparedRule& rule = prep.rules[task.rule];
    TaskResult& out = results[i];
    out.rule_applications = internal::ApplyRule(
        rule, store, delta, task.delta_position, prep.num_variables,
        [&](const Tuple& tuple) {
          out.pending.emplace_back(rule.head.predicate, tuple);
        },
        task.range);
  };
  if (!exec.Parallel() || tasks.size() <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) run_one(i);
    return results;
  }
  WaitGroup done;
  done.Add(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    exec.pool->Submit([&run_one, &done, i] {
      run_one(i);
      done.Done();
    });
  }
  // Help drain the pool instead of idling (also makes progress when several
  // concurrent queries share one pool).
  while (exec.pool->RunOneTask()) {
  }
  done.Wait();
  return results;
}

/// Batch count for one (rule, delta position) unit: 1 unless the delta
/// literal is the plan's first atom (no prefix join to re-run per batch) and
/// its delta relation is wide enough to be worth splitting. A pure function
/// of the data and exec.delta_batch_grain.
size_t NumDeltaBatches(const internal::PreparedRule& rule, size_t pos,
                       size_t delta_size, const EvalExec& exec) {
  (void)rule;
  if (pos != 0 || exec.delta_batch_grain == 0) return 1;
  if (delta_size < 2 * exec.delta_batch_grain) return 1;
  return std::min(kMaxDeltaBatches, delta_size / exec.delta_batch_grain);
}

void AppendBatchedTasks(std::vector<RuleTask>* tasks, size_t rule_index,
                        size_t pos, size_t delta_size, size_t batches) {
  for (size_t b = 0; b < batches; ++b) {
    RuleTask task;
    task.rule = rule_index;
    task.delta_position = static_cast<int>(pos);
    task.range.begin = delta_size * b / batches;
    task.range.end = delta_size * (b + 1) / batches;
    tasks->push_back(task);
  }
}

}  // namespace

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb,
                                      const EvalExec& exec, RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  TREEDL_ASSIGN_OR_RETURN(internal::PreparedProgram prep,
                          internal::Prepare(program, edb));
  EvalStats local;
  size_t rule_tasks = 0;
  int num_preds = prep.result.signature().size();
  const bool parallel = exec.Parallel();
  // The store is shared read-only by the tasks of a round; freeze its
  // indexes up front so no task triggers a lazy index build mid-round (Add
  // maintains them as the merge step inserts derived facts).
  if (parallel) FreezeIndexes(prep, &prep.store, /*delta_positions_only=*/false);

  // Round 0: full evaluation against the EDB (+ ground facts); all derived
  // facts form the first delta.
  FactStore delta(num_preds);
  auto derive_into = [&](FactStore* next_delta, PredicateId pred,
                         const Tuple& tuple) {
    if (prep.store.Add(pred, tuple)) {
      ++local.derived_facts;
      next_delta->Add(pred, tuple);
      Status st = prep.result.AddFact(pred, tuple);
      TREEDL_CHECK(st.ok()) << st.ToString();
    }
  };
  auto merge_results = [&](const std::vector<TaskResult>& results,
                           FactStore* next_delta) {
    for (const TaskResult& result : results) {
      local.rule_applications += result.rule_applications;
      for (const auto& [pred, tuple] : result.pending) {
        derive_into(next_delta, pred, tuple);
      }
    }
  };

  {
    ++local.iterations;
    std::vector<RuleTask> tasks;
    tasks.reserve(prep.rules.size());
    for (size_t r = 0; r < prep.rules.size(); ++r) {
      tasks.push_back(RuleTask{r, -1, {}});
    }
    rule_tasks += tasks.size();
    merge_results(RunRuleTasks(prep, &prep.store, nullptr, tasks, exec),
                  &delta);
  }

  // Delta rounds: for every rule and every intensional body position, match
  // that position against the previous delta and the rest against the full
  // store; wide position-0 deltas split into contiguous batches. Duplicate
  // derivations are absorbed by the store.
  while (delta.TotalFacts() > 0) {
    ++local.iterations;
    if (parallel) FreezeIndexes(prep, &delta, /*delta_positions_only=*/true);
    FactStore next_delta(num_preds);
    std::vector<RuleTask> tasks;
    for (size_t r = 0; r < prep.rules.size(); ++r) {
      const internal::PreparedRule& rule = prep.rules[r];
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        if (!rule.body_intensional[pos] || !rule.positive[pos]) continue;
        size_t delta_size = delta.Tuples(rule.body[pos].predicate).size();
        AppendBatchedTasks(&tasks, r, pos, delta_size,
                           NumDeltaBatches(rule, pos, delta_size, exec));
      }
    }
    rule_tasks += tasks.size();
    merge_results(RunRuleTasks(prep, &prep.store, &delta, tasks, exec),
                  &next_delta);
    delta = std::move(next_delta);
  }

  if (stats != nullptr) {
    stats->eval_iterations += local.iterations;
    stats->derived_facts += local.derived_facts;
    stats->rule_applications += local.rule_applications;
    stats->fixpoint_rounds += local.iterations;
    stats->fixpoint_rule_tasks += rule_tasks;
  }
  return std::move(prep.result);
}

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, RunStats* stats) {
  return SemiNaiveEvaluate(program, edb, EvalExec{}, stats);
}

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, EvalStats* stats) {
  RunStats run;
  auto result = SemiNaiveEvaluate(program, edb, &run);
  if (stats != nullptr) {
    stats->iterations = run.eval_iterations;
    stats->derived_facts = run.derived_facts;
    stats->rule_applications = run.rule_applications;
  }
  return result;
}

}  // namespace treedl::datalog
