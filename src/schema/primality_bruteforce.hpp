// Exponential primality oracles (§2.1), used as correctness baselines for the
// fixed-parameter algorithms of §5.2/§5.3 and as the slow comparator in the
// benchmark harness.
#ifndef TREEDL_SCHEMA_PRIMALITY_BRUTEFORCE_HPP_
#define TREEDL_SCHEMA_PRIMALITY_BRUTEFORCE_HPP_

#include <vector>

#include "schema/schema.hpp"

namespace treedl {

/// Tests whether `a` is prime (member of at least one key) via the paper's
/// characterization (Ex 2.6): a is prime iff there exists Y ⊆ R with
/// Y⁺ = Y, a ∉ Y and (Y ∪ {a})⁺ = R. Exhaustive over subsets of R \ {a};
/// requires <= 24 attributes.
bool IsPrimeBruteForce(const Schema& schema, AttributeId a);

/// Membership vector of prime attributes (brute force).
std::vector<bool> AllPrimesBruteForce(const Schema& schema);

}  // namespace treedl

#endif  // TREEDL_SCHEMA_PRIMALITY_BRUTEFORCE_HPP_
