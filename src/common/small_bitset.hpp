// SmallBitset: a 64-slot bitset used for bag-local subsets and MSO set values.
//
// Bags in a width-w tree decomposition have at most w+1 elements and MSO model
// checking is only feasible on small domains, so a single machine word is
// sufficient and keeps DP states trivially hashable and comparable.
#ifndef TREEDL_COMMON_SMALL_BITSET_HPP_
#define TREEDL_COMMON_SMALL_BITSET_HPP_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace treedl {

class SmallBitset {
 public:
  static constexpr int kCapacity = 64;

  constexpr SmallBitset() : bits_(0) {}
  constexpr explicit SmallBitset(uint64_t bits) : bits_(bits) {}

  /// A set containing the single element i.
  static SmallBitset Single(int i) {
    TREEDL_DCHECK(0 <= i && i < kCapacity);
    return SmallBitset(uint64_t{1} << i);
  }
  /// The set {0, 1, ..., n-1}. Requires 0 <= n <= 64.
  static SmallBitset FirstN(int n) {
    TREEDL_DCHECK(0 <= n && n <= kCapacity);
    if (n == kCapacity) return SmallBitset(~uint64_t{0});
    return SmallBitset((uint64_t{1} << n) - 1);
  }
  static SmallBitset FromIndices(const std::vector<int>& indices) {
    SmallBitset s;
    for (int i : indices) s.Set(i);
    return s;
  }

  bool Test(int i) const {
    TREEDL_DCHECK(0 <= i && i < kCapacity);
    return (bits_ >> i) & 1;
  }
  void Set(int i) {
    TREEDL_DCHECK(0 <= i && i < kCapacity);
    bits_ |= uint64_t{1} << i;
  }
  void Reset(int i) {
    TREEDL_DCHECK(0 <= i && i < kCapacity);
    bits_ &= ~(uint64_t{1} << i);
  }

  int Count() const { return std::popcount(bits_); }
  bool Empty() const { return bits_ == 0; }
  uint64_t bits() const { return bits_; }

  bool IsSubsetOf(SmallBitset other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  SmallBitset operator|(SmallBitset o) const { return SmallBitset(bits_ | o.bits_); }
  SmallBitset operator&(SmallBitset o) const { return SmallBitset(bits_ & o.bits_); }
  SmallBitset operator^(SmallBitset o) const { return SmallBitset(bits_ ^ o.bits_); }
  /// Set difference: elements of *this not in o.
  SmallBitset operator-(SmallBitset o) const { return SmallBitset(bits_ & ~o.bits_); }
  SmallBitset& operator|=(SmallBitset o) { bits_ |= o.bits_; return *this; }
  SmallBitset& operator&=(SmallBitset o) { bits_ &= o.bits_; return *this; }

  bool operator==(const SmallBitset&) const = default;

  /// Indices of set bits in increasing order.
  std::vector<int> ToIndices() const {
    std::vector<int> out;
    uint64_t b = bits_;
    while (b) {
      int i = std::countr_zero(b);
      out.push_back(i);
      b &= b - 1;
    }
    return out;
  }

  /// Renders as "{i1,i2,...}".
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (int i : ToIndices()) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(i);
    }
    out += "}";
    return out;
  }

 private:
  uint64_t bits_;
};

}  // namespace treedl

template <>
struct std::hash<treedl::SmallBitset> {
  size_t operator()(const treedl::SmallBitset& s) const noexcept {
    return std::hash<uint64_t>{}(s.bits());
  }
};

#endif  // TREEDL_COMMON_SMALL_BITSET_HPP_
