// The MSO-to-FTA route's state sets, measured on concrete inputs.
//
// The classical recipe runs a *deterministic* tree automaton over the
// decomposition whose states are sets of partial solutions (the subset /
// determinization construction). Each distinct set is one automaton state, so
// counting the distinct sets that actually arise quantifies the automaton's
// state usage — against which the datalog approach's per-node *fact* count
// (one solve() fact per partial solution) is compared in
// bench/bench_state_explosion.
#ifndef TREEDL_FTA_TYPE_AUTOMATON_HPP_
#define TREEDL_FTA_TYPE_AUTOMATON_HPP_

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl::fta {

struct AutomatonUsage {
  /// Distinct determinized automaton states (sets of bag colorings) that
  /// occurred during the run.
  size_t distinct_subset_states = 0;
  /// Total datalog-style facts (individual bag colorings summed per node) —
  /// the quantity the §5.1 program materializes.
  size_t total_facts = 0;
  /// Largest single subset state.
  size_t max_subset_size = 0;
};

/// Runs the determinized 3-colorability automaton over a normalization of
/// `td` and reports state usage.
StatusOr<AutomatonUsage> MeasureThreeColorAutomaton(const Graph& graph,
                                                    const TreeDecomposition& td);

}  // namespace treedl::fta

#endif  // TREEDL_FTA_TYPE_AUTOMATON_HPP_
