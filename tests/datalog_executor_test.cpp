// Differential test harness for the compiled datalog executors.
//
// The compiled semi-naive engine (columnar FactStore + JoinPlan executors)
// is pinned against two independent implementations of the same semantics:
// the interpreted naive oracle (tuple-at-a-time ApplyRule) and — on
// quasi-guarded programs — the Thm 4.4 grounded-LTUR backend. Randomized
// program/EDB instances are generated from TestSeed()-derived seeds, so
// every failure reproduces from the logged seed; models and all fixpoint
// counters must agree between thread counts 1 and 8, and the model must
// agree across engines. Adversarial bound patterns and parser-level garbage
// must compile or reject cleanly — never crash, never diverge.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "datalog/analysis.hpp"
#include "datalog/database.hpp"
#include "datalog/eval.hpp"
#include "datalog/grounder.hpp"
#include "datalog/parser.hpp"
#include "structure/structure.hpp"

#include "test_util.hpp"

namespace treedl::datalog {
namespace {

// --- Columnar FactStore unit coverage ---------------------------------------

Signature TwoPredSignature() {
  auto sig = Signature::Make({{"e", 2}, {"flag", 0}});
  EXPECT_TRUE(sig.ok());
  return *sig;
}

TEST(FactStoreTest, AddDeduplicatesAndCounts) {
  FactStore store(TwoPredSignature());
  EXPECT_TRUE(store.Add(0, {1, 2}));
  EXPECT_FALSE(store.Add(0, {1, 2}));
  EXPECT_TRUE(store.Add(0, {2, 1}));
  EXPECT_EQ(store.NumTuples(0), 2u);
  EXPECT_EQ(store.TotalFacts(), 2u);
  EXPECT_TRUE(store.Contains(0, {1, 2}));
  EXPECT_FALSE(store.Contains(0, {3, 3}));
  EXPECT_EQ(store.Row(0, 1), (Tuple{2, 1}));
}

TEST(FactStoreTest, NullaryRelationEdgeCase) {
  FactStore store(TwoPredSignature());
  EXPECT_FALSE(store.Contains(1, {}));
  EXPECT_TRUE(store.Add(1, {}));
  EXPECT_FALSE(store.Add(1, {}));
  EXPECT_TRUE(store.Contains(1, {}));
  EXPECT_EQ(store.NumTuples(1), 1u);
  EXPECT_EQ(store.FindRow(1, {}), 0u);
}

TEST(FactStoreTest, ProbeChainsPreserveInsertionOrder) {
  // Many rows share the first-column key; the probed chain must enumerate
  // them in exactly row-insertion order — the invariant the compiled
  // executors' determinism rests on.
  FactStore store(TwoPredSignature());
  Rng rng(TestSeed());
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < 200; ++i) {
    ElementId first = static_cast<ElementId>(rng.UniformInt(0, 3));
    if (store.Add(0, {first, i})) {
      if (first == 2) expected.push_back(store.NumTuples(0) - 1);
    }
  }
  store.EnsureIndex(0, 0b01);
  ElementId key[] = {2};
  std::vector<uint32_t> chained;
  for (uint32_t row = store.Probe(0, 0b01, key); row != FactStore::kNoRow;
       row = store.NextRow(0, 0b01, row)) {
    chained.push_back(row);
  }
  EXPECT_EQ(chained, expected);
  // An index built after the fact (lazily, by Probe) sees the same chain.
  ElementId key2[] = {2};
  std::vector<uint32_t> lazy;
  for (uint32_t row = store.Probe(0, 0b10, &key2[0]);
       row != FactStore::kNoRow; row = store.NextRow(0, 0b10, row)) {
    lazy.push_back(row);
  }
  EXPECT_LE(lazy.size(), 1u);  // second column holds distinct values
}

TEST(FactStoreTest, MultiColumnProbeMatchesFilteredScan) {
  auto sig = Signature::Make({{"t", 3}});
  ASSERT_TRUE(sig.ok());
  FactStore store(*sig);
  Rng rng(TestSeed());
  for (int i = 0; i < 300; ++i) {
    store.Add(0, {static_cast<ElementId>(rng.UniformInt(0, 4)),
                  static_cast<ElementId>(rng.UniformInt(0, 4)),
                  static_cast<ElementId>(rng.UniformInt(0, 4))});
  }
  for (ElementId a = 0; a <= 4; ++a) {
    for (ElementId c = 0; c <= 4; ++c) {
      std::vector<uint32_t> scanned;
      for (uint32_t row = 0; row < store.NumTuples(0); ++row) {
        if (store.At(0, 0, row) == a && store.At(0, 2, row) == c) {
          scanned.push_back(row);
        }
      }
      ElementId key[] = {a, c};
      std::vector<uint32_t> probed;
      for (uint32_t row = store.Probe(0, 0b101, key);
           row != FactStore::kNoRow; row = store.NextRow(0, 0b101, row)) {
        probed.push_back(row);
      }
      EXPECT_EQ(probed, scanned) << "key (" << a << ", " << c << ")";
    }
  }
}

// --- Randomized differential harness -----------------------------------------

struct Instance {
  std::string program_text;
  Structure edb{Signature()};
};

/// One randomized program + EDB. The general family mixes the adversarial
/// shapes: all-free atoms, repeated variables, constants in any (or every)
/// position, nullary predicates, extensional negation, ground facts. The
/// quasi-guarded family puts every rule variable into one extensional guard
/// atom so the grounded backend is applicable.
Instance RandomInstance(Rng* rng, bool quasi_guarded) {
  const size_t num_elements = 3 + rng->UniformIndex(5);
  std::vector<std::string> elements;
  for (size_t i = 0; i < num_elements; ++i) {
    elements.push_back("n" + std::to_string(i));
  }

  // Extensional predicate table (name, arity).
  std::vector<std::pair<std::string, int>> edb_preds;
  const size_t num_edb = 1 + rng->UniformIndex(3);
  for (size_t i = 0; i < num_edb; ++i) {
    int arity = quasi_guarded ? 3 : static_cast<int>(rng->UniformIndex(4));
    edb_preds.emplace_back("e" + std::to_string(i), arity);
  }

  // Intensional predicate table.
  std::vector<std::pair<std::string, int>> idb_preds;
  const size_t num_idb = 1 + rng->UniformIndex(3);
  for (size_t i = 0; i < num_idb; ++i) {
    idb_preds.emplace_back("i" + std::to_string(i),
                           static_cast<int>(rng->UniformIndex(3)));
  }

  const size_t num_vars = 2 + rng->UniformIndex(3);
  auto var = [&](size_t v) { return "X" + std::to_string(v); };
  auto constant = [&](Rng* r) { return elements[r->UniformIndex(elements.size())]; };

  std::string text;
  const size_t num_rules = num_idb + rng->UniformIndex(4);
  for (size_t r = 0; r < num_rules; ++r) {
    const auto& head = idb_preds[r % num_idb];
    // Occasionally a ground fact.
    if (!quasi_guarded && rng->Bernoulli(0.1)) {
      text += head.first;
      if (head.second > 0) {
        text += "(";
        for (int i = 0; i < head.second; ++i) {
          text += (i > 0 ? ", " : "") + constant(rng);
        }
        text += ")";
      }
      text += ".\n";
      continue;
    }

    std::set<size_t> positive_vars;
    std::vector<std::string> body;
    if (quasi_guarded) {
      // Guard: one extensional atom holding every rule variable (arity 3
      // caps the variable budget for this family).
      const auto& guard = edb_preds[rng->UniformIndex(edb_preds.size())];
      std::string atom = guard.first + "(";
      for (int i = 0; i < guard.second; ++i) {
        size_t v = static_cast<size_t>(i);
        positive_vars.insert(v);
        atom += (i > 0 ? ", " : "") + var(v);
      }
      body.push_back(atom + ")");
    }
    const size_t extra = (quasi_guarded ? 0 : 1) + rng->UniformIndex(3);
    for (size_t b = 0; b < extra; ++b) {
      bool use_idb = rng->Bernoulli(0.4);
      const auto& pred = use_idb
                             ? idb_preds[rng->UniformIndex(idb_preds.size())]
                             : edb_preds[rng->UniformIndex(edb_preds.size())];
      std::string atom = pred.first;
      if (pred.second > 0) {
        atom += "(";
        for (int i = 0; i < pred.second; ++i) {
          if (i > 0) atom += ", ";
          // In the guarded family every variable must come from the guard.
          if (rng->Bernoulli(quasi_guarded ? 0.15 : 0.25)) {
            atom += constant(rng);
          } else {
            size_t v = quasi_guarded && !positive_vars.empty()
                           ? *std::next(positive_vars.begin(),
                                        static_cast<long>(rng->UniformIndex(
                                            positive_vars.size())))
                           : rng->UniformIndex(num_vars);
            if (!use_idb || quasi_guarded) positive_vars.insert(v);
            atom += var(v);
          }
        }
        atom += ")";
      }
      body.push_back(atom);
    }
    // In the general family, IDB body literals may have introduced
    // variables too; they count as positively bound.
    // Optional extensional negative filter over already-bound variables.
    if (!positive_vars.empty() && rng->Bernoulli(0.3)) {
      const auto& pred = edb_preds[rng->UniformIndex(edb_preds.size())];
      std::string atom = "not " + pred.first;
      if (pred.second > 0) {
        atom += "(";
        for (int i = 0; i < pred.second; ++i) {
          if (i > 0) atom += ", ";
          if (rng->Bernoulli(0.3)) {
            atom += constant(rng);
          } else {
            atom += var(*std::next(
                positive_vars.begin(),
                static_cast<long>(rng->UniformIndex(positive_vars.size()))));
          }
        }
        atom += ")";
      }
      body.push_back(atom);
    }

    // Head arguments: bound variables or constants.
    text += head.first;
    if (head.second > 0) {
      text += "(";
      for (int i = 0; i < head.second; ++i) {
        if (i > 0) text += ", ";
        if (positive_vars.empty() || rng->Bernoulli(0.2)) {
          text += constant(rng);
        } else {
          text += var(*std::next(
              positive_vars.begin(),
              static_cast<long>(rng->UniformIndex(positive_vars.size()))));
        }
      }
      text += ")";
    }
    text += " :- ";
    for (size_t b = 0; b < body.size(); ++b) {
      text += (b > 0 ? ", " : "") + body[b];
    }
    text += ".\n";
  }

  // The EDB over the same extensional predicate table.
  Instance inst;
  inst.program_text = text;
  auto sig = Signature::Make(edb_preds);
  EXPECT_TRUE(sig.ok());
  inst.edb = Structure(*sig);
  for (const std::string& name : elements) inst.edb.AddElement(name);
  for (PredicateId p = 0; p < inst.edb.signature().size(); ++p) {
    int arity = inst.edb.signature().arity(p);
    size_t facts = rng->UniformIndex(arity == 0 ? 2 : 12);
    for (size_t f = 0; f < facts; ++f) {
      Tuple t(static_cast<size_t>(arity));
      for (auto& value : t) {
        value = static_cast<ElementId>(rng->UniformIndex(num_elements));
      }
      if (!inst.edb.HasFact(p, t)) {
        EXPECT_TRUE(inst.edb.AddFact(p, t).ok());
      }
    }
  }
  return inst;
}

/// Evaluates one instance on every engine and pins models + counters.
/// Returns false when the program was (consistently) rejected.
void CheckInstance(const Instance& inst, bool try_grounded,
                   size_t* accepted) {
  auto program = ParseProgram(inst.program_text);
  ASSERT_TRUE(program.ok()) << program.status() << "\n" << inst.program_text;

  RunStats naive_run;
  auto naive = NaiveEvaluate(*program, inst.edb, &naive_run);

  RunStats seq_run;
  auto seq = SemiNaiveEvaluate(*program, inst.edb, &seq_run);

  ThreadPool pool(8);
  EvalExec par_exec;
  par_exec.pool = &pool;
  RunStats par_run;
  auto par = SemiNaiveEvaluate(*program, inst.edb, par_exec, &par_run);

  // Accept/reject must agree across engines (and never crash).
  ASSERT_EQ(naive.ok(), seq.ok()) << inst.program_text;
  ASSERT_EQ(naive.ok(), par.ok()) << inst.program_text;
  if (!naive.ok()) return;
  ++*accepted;

  // Model: compiled engine == interpreted oracle, at both thread counts.
  EXPECT_TRUE(*naive == *seq) << inst.program_text;
  EXPECT_TRUE(*seq == *par) << inst.program_text;

  // Counters: bit-identical across thread counts; dispatch accounting
  // matches the interpreted work measure; plans compiled once per variant.
  EXPECT_EQ(seq_run.eval_iterations, par_run.eval_iterations);
  EXPECT_EQ(seq_run.derived_facts, par_run.derived_facts);
  EXPECT_EQ(seq_run.rule_applications, par_run.rule_applications);
  EXPECT_EQ(seq_run.fixpoint_rounds, par_run.fixpoint_rounds);
  EXPECT_EQ(seq_run.fixpoint_rule_tasks, par_run.fixpoint_rule_tasks);
  EXPECT_EQ(seq_run.plan_compiles, par_run.plan_compiles);
  EXPECT_EQ(seq_run.executor_dispatches, par_run.executor_dispatches);
  EXPECT_EQ(seq_run.executor_dispatches, seq_run.rule_applications);
  EXPECT_EQ(seq_run.derived_facts, naive_run.derived_facts);

  if (try_grounded && CheckQuasiGuarded(*program).ok()) {
    auto grounded = GroundedEvaluate(*program, inst.edb);
    ASSERT_TRUE(grounded.ok()) << grounded.status() << inst.program_text;
    EXPECT_TRUE(*grounded == *naive) << inst.program_text;
  }
}

TEST(DatalogExecutorTest, DifferentialGeneralPrograms) {
  size_t accepted = 0;
  for (uint64_t trial = 0; trial < 60; ++trial) {
    Rng rng(TestSeed(trial));
    Instance inst = RandomInstance(&rng, /*quasi_guarded=*/false);
    CheckInstance(inst, /*try_grounded=*/false, &accepted);
  }
  // The generator builds range-restricted, safely-negated programs; most
  // must be accepted or the harness is vacuous.
  EXPECT_GE(accepted, 50u);
}

TEST(DatalogExecutorTest, DifferentialQuasiGuardedPrograms) {
  size_t accepted = 0;
  for (uint64_t trial = 0; trial < 40; ++trial) {
    Rng rng(TestSeed(trial));
    Instance inst = RandomInstance(&rng, /*quasi_guarded=*/true);
    CheckInstance(inst, /*try_grounded=*/true, &accepted);
  }
  EXPECT_GE(accepted, 35u);
}

// --- Adversarial bound patterns ----------------------------------------------

TEST(DatalogExecutorTest, AdversarialBoundPatterns) {
  // All-free atoms (full scans), repeated variables (in-atom equality),
  // constants in every position, nullary predicates, and negation — each
  // shape through both engines at both thread counts.
  const char* programs[] = {
      // All-free cross product + repeated variable head join.
      "pair(X, Y) :- e0(X), e1(Y).\n"
      "diag(X) :- pair(X, X).\n",
      // Constants in every position of a body atom and of a head.
      "hit :- e2(n0, n1).\n"
      "fixed(n2) :- hit, e0(n2).\n",
      // Repeated variables inside one atom, twice.
      "loop(X) :- e2(X, X), not e1(X).\n"
      "two(X, Y) :- e2(X, Y), e2(Y, X), pairvia(Y).\n"
      "pairvia(Y) :- e1(Y).\n",
      // Nullary chain: nullary IDB feeding a nullary IDB.
      "a :- e0(X).\n"
      "b :- a, e1(X).\n"
      "c :- b, a.\n",
      // Recursion with a constant anchor and a repeated-variable filter.
      "r(X) :- e2(n0, X).\n"
      "r(Y) :- r(X), e2(X, Y), not e2(Y, Y).\n",
  };
  for (uint64_t p = 0; p < sizeof(programs) / sizeof(programs[0]); ++p) {
    Rng rng(TestSeed(p));
    for (int trial = 0; trial < 5; ++trial) {
      auto sig = Signature::Make({{"e0", 1}, {"e1", 1}, {"e2", 2}});
      ASSERT_TRUE(sig.ok());
      Instance inst;
      inst.program_text = programs[p];
      inst.edb = Structure(*sig);
      const size_t n = 4;
      for (size_t i = 0; i < n; ++i) {
        inst.edb.AddElement("n" + std::to_string(i));
      }
      for (PredicateId pred = 0; pred < 3; ++pred) {
        int arity = inst.edb.signature().arity(pred);
        for (int f = 0; f < 6; ++f) {
          Tuple t(static_cast<size_t>(arity));
          for (auto& value : t) {
            value = static_cast<ElementId>(rng.UniformIndex(n));
          }
          if (!inst.edb.HasFact(pred, t)) {
            ASSERT_TRUE(inst.edb.AddFact(pred, t).ok());
          }
        }
      }
      size_t accepted = 0;
      CheckInstance(inst, /*try_grounded=*/false, &accepted);
      EXPECT_EQ(accepted, 1u) << programs[p];
    }
  }
}

// --- Parser-level garbage ----------------------------------------------------

TEST(DatalogExecutorTest, ParserGarbageCompilesOrRejectsCleanly) {
  // Random token soup: ParseProgram either rejects with a Status or yields
  // a program that both engines evaluate to the same model. Never a crash.
  const char* alphabet = "abcXYZ01(),.:-_ \n\t\\+ないnot";
  const size_t alpha_len = std::string(alphabet).size();
  size_t parsed = 0;
  for (uint64_t trial = 0; trial < 200; ++trial) {
    Rng rng(TestSeed(trial));
    std::string text;
    size_t len = rng.UniformIndex(120);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.UniformIndex(alpha_len)];
    }
    auto program = ParseProgram(text);
    if (!program.ok()) continue;
    ++parsed;
    Structure edb{Signature()};  // empty EDB: domain comes from constants
    auto naive = NaiveEvaluate(*program, edb);
    auto semi = SemiNaiveEvaluate(*program, edb);
    ASSERT_EQ(naive.ok(), semi.ok()) << text;
    if (naive.ok()) {
      EXPECT_TRUE(*naive == *semi) << text;
    }
  }
  // Mutated valid programs: splice random damage into a known-good text.
  const std::string base =
      "path(X, Y) :- e(X, Y).\npath(X, Z) :- e(X, Y), path(Y, Z).\n";
  for (uint64_t trial = 0; trial < 100; ++trial) {
    Rng rng(TestSeed(1000 + trial));
    std::string text = base;
    size_t edits = 1 + rng.UniformIndex(4);
    for (size_t e = 0; e < edits; ++e) {
      size_t at = rng.UniformIndex(text.size());
      if (rng.Bernoulli(0.5)) {
        text[at] = alphabet[rng.UniformIndex(alpha_len)];
      } else {
        text.erase(at, 1);
      }
    }
    auto program = ParseProgram(text);
    if (!program.ok()) continue;
    Structure edb{Signature()};
    auto naive = NaiveEvaluate(*program, edb);
    auto semi = SemiNaiveEvaluate(*program, edb);
    ASSERT_EQ(naive.ok(), semi.ok()) << text;
    if (naive.ok()) {
      EXPECT_TRUE(*naive == *semi) << text;
    }
  }
  (void)parsed;  // any parse rate is fine; the property is "no crash"
}

// --- Delta batching fires on reordered recursive rules -----------------------

TEST(DatalogExecutorTest, DeltaBatchingFiresOnEdbFirstRecursiveRule) {
  // The recursive rule is *written* EDB-first. The analyzer's
  // intensional-first plan ordering must put path(Y, Z) at plan position 0,
  // where the engine can split wide deltas into range batches — visible as
  // strictly more rule tasks at a small batch grain than with batching
  // disabled, with identical models and work counters throughout.
  auto program = ParseProgram(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Z) :- e(X, Y), path(Y, Z).\n");
  ASSERT_TRUE(program.ok());
  auto sig = Signature::Make({{"e", 2}});
  ASSERT_TRUE(sig.ok());
  Structure edb(*sig);
  const size_t n = 40;  // chain: deltas grow to hundreds of facts
  for (size_t i = 0; i < n; ++i) edb.AddElement("v" + std::to_string(i));
  for (size_t i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(edb.AddFact(0, {static_cast<ElementId>(i),
                                static_cast<ElementId>(i + 1)})
                    .ok());
  }

  EvalExec unbatched;
  unbatched.delta_batch_grain = 0;
  RunStats unbatched_run;
  auto plain = SemiNaiveEvaluate(*program, edb, unbatched, &unbatched_run);
  ASSERT_TRUE(plain.ok());

  EvalExec batched;
  batched.delta_batch_grain = 8;
  RunStats batched_run;
  auto split = SemiNaiveEvaluate(*program, edb, batched, &batched_run);
  ASSERT_TRUE(split.ok());

  EXPECT_TRUE(*plain == *split);
  EXPECT_EQ(unbatched_run.fixpoint_rounds, batched_run.fixpoint_rounds);
  EXPECT_EQ(unbatched_run.derived_facts, batched_run.derived_facts);
  // (rule_applications differs across grains by design: every batch task
  // enters the plan's first step once. It is pinned across *thread counts*
  // below, which is the determinism that matters.)
  // The reorder is what makes this inequality possible: batching only
  // applies to a delta literal at plan position 0.
  EXPECT_GT(batched_run.fixpoint_rule_tasks,
            unbatched_run.fixpoint_rule_tasks);

  // And the batched decomposition is still thread-count-invariant.
  ThreadPool pool(8);
  EvalExec par = batched;
  par.pool = &pool;
  RunStats par_run;
  auto par_result = SemiNaiveEvaluate(*program, edb, par, &par_run);
  ASSERT_TRUE(par_result.ok());
  EXPECT_TRUE(*split == *par_result);
  EXPECT_EQ(batched_run.fixpoint_rule_tasks, par_run.fixpoint_rule_tasks);
  EXPECT_EQ(batched_run.executor_dispatches, par_run.executor_dispatches);
}

}  // namespace
}  // namespace treedl::datalog
