#include "mso/ast.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl::mso {

namespace {

FormulaPtr Node(FormulaKind kind) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  return f;
}

FormulaPtr Unary(FormulaKind kind, FormulaPtr child) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  f->left = std::move(child);
  return f;
}

FormulaPtr Binary(FormulaKind kind, FormulaPtr a, FormulaPtr b) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  f->left = std::move(a);
  f->right = std::move(b);
  return f;
}

FormulaPtr Quantifier(FormulaKind kind, std::string var, FormulaPtr child) {
  auto f = std::make_shared<Formula>();
  f->kind = kind;
  f->bound = std::move(var);
  f->left = std::move(child);
  return f;
}

}  // namespace

FormulaPtr MakeAtom(std::string predicate, std::vector<std::string> args) {
  auto f = Node(FormulaKind::kAtom);
  auto* m = const_cast<Formula*>(f.get());
  m->predicate = std::move(predicate);
  m->args = std::move(args);
  return f;
}

FormulaPtr MakeEqual(std::string x, std::string y) {
  auto f = Node(FormulaKind::kEqual);
  const_cast<Formula*>(f.get())->args = {std::move(x), std::move(y)};
  return f;
}

FormulaPtr MakeIn(std::string x, std::string big_x) {
  auto f = Node(FormulaKind::kIn);
  const_cast<Formula*>(f.get())->args = {std::move(x), std::move(big_x)};
  return f;
}

FormulaPtr MakeSubseteq(std::string big_x, std::string big_y) {
  auto f = Node(FormulaKind::kSubseteq);
  const_cast<Formula*>(f.get())->args = {std::move(big_x), std::move(big_y)};
  return f;
}

FormulaPtr MakeNot(FormulaPtr f) { return Unary(FormulaKind::kNot, std::move(f)); }
FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b) {
  return Binary(FormulaKind::kAnd, std::move(a), std::move(b));
}
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b) {
  return Binary(FormulaKind::kOr, std::move(a), std::move(b));
}
FormulaPtr MakeImplies(FormulaPtr a, FormulaPtr b) {
  return Binary(FormulaKind::kImplies, std::move(a), std::move(b));
}
FormulaPtr MakeIff(FormulaPtr a, FormulaPtr b) {
  return Binary(FormulaKind::kIff, std::move(a), std::move(b));
}
FormulaPtr MakeExistsFo(std::string var, FormulaPtr f) {
  return Quantifier(FormulaKind::kExistsFo, std::move(var), std::move(f));
}
FormulaPtr MakeForallFo(std::string var, FormulaPtr f) {
  return Quantifier(FormulaKind::kForallFo, std::move(var), std::move(f));
}
FormulaPtr MakeExistsSo(std::string var, FormulaPtr f) {
  return Quantifier(FormulaKind::kExistsSo, std::move(var), std::move(f));
}
FormulaPtr MakeForallSo(std::string var, FormulaPtr f) {
  return Quantifier(FormulaKind::kForallSo, std::move(var), std::move(f));
}

FormulaPtr MakeAndAll(std::vector<FormulaPtr> fs) {
  TREEDL_CHECK(!fs.empty());
  FormulaPtr acc = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) acc = MakeAnd(acc, fs[i]);
  return acc;
}

FormulaPtr MakeOrAll(std::vector<FormulaPtr> fs) {
  TREEDL_CHECK(!fs.empty());
  FormulaPtr acc = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) acc = MakeOr(acc, fs[i]);
  return acc;
}

int QuantifierDepth(const Formula& f) {
  int left = f.left ? QuantifierDepth(*f.left) : 0;
  int right = f.right ? QuantifierDepth(*f.right) : 0;
  int depth = std::max(left, right);
  switch (f.kind) {
    case FormulaKind::kExistsFo:
    case FormulaKind::kForallFo:
    case FormulaKind::kExistsSo:
    case FormulaKind::kForallSo:
      return depth + 1;
    default:
      return depth;
  }
}

namespace {

void CollectFree(const Formula& f, FreeVariables* out,
                 std::set<std::string>* bound) {
  switch (f.kind) {
    case FormulaKind::kAtom:
      for (const std::string& v : f.args) {
        if (!bound->count(v)) out->fo.insert(v);
      }
      return;
    case FormulaKind::kEqual:
      for (const std::string& v : f.args) {
        if (!bound->count(v)) out->fo.insert(v);
      }
      return;
    case FormulaKind::kIn:
      if (!bound->count(f.args[0])) out->fo.insert(f.args[0]);
      if (!bound->count(f.args[1])) out->so.insert(f.args[1]);
      return;
    case FormulaKind::kSubseteq:
      for (const std::string& v : f.args) {
        if (!bound->count(v)) out->so.insert(v);
      }
      return;
    case FormulaKind::kNot:
      CollectFree(*f.left, out, bound);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      CollectFree(*f.left, out, bound);
      CollectFree(*f.right, out, bound);
      return;
    case FormulaKind::kExistsFo:
    case FormulaKind::kForallFo:
    case FormulaKind::kExistsSo:
    case FormulaKind::kForallSo: {
      bool was_bound = bound->count(f.bound) > 0;
      bound->insert(f.bound);
      CollectFree(*f.left, out, bound);
      if (!was_bound) bound->erase(f.bound);
      return;
    }
  }
}

}  // namespace

FreeVariables ComputeFreeVariables(const Formula& f) {
  FreeVariables out;
  std::set<std::string> bound;
  CollectFree(f, &out, &bound);
  return out;
}

Status CheckAgainstSignature(const Formula& f, const Signature& sig) {
  if (f.kind == FormulaKind::kAtom) {
    auto pid = sig.PredicateIdOf(f.predicate);
    if (!pid.ok()) return pid.status();
    if (sig.arity(*pid) != static_cast<int>(f.args.size())) {
      return Status::InvalidArgument(
          "atom " + f.predicate + " has " + std::to_string(f.args.size()) +
          " arguments, signature says " + std::to_string(sig.arity(*pid)));
    }
  }
  if (f.left) TREEDL_RETURN_IF_ERROR(CheckAgainstSignature(*f.left, sig));
  if (f.right) TREEDL_RETURN_IF_ERROR(CheckAgainstSignature(*f.right, sig));
  return Status::OK();
}

std::string ToString(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kAtom: {
      std::string out = f.predicate + "(";
      for (size_t i = 0; i < f.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += f.args[i];
      }
      return out + ")";
    }
    case FormulaKind::kEqual:
      return "(" + f.args[0] + " = " + f.args[1] + ")";
    case FormulaKind::kIn:
      return "(" + f.args[0] + " in " + f.args[1] + ")";
    case FormulaKind::kSubseteq:
      return "(" + f.args[0] + " sub " + f.args[1] + ")";
    // Both operands are parenthesized: a quantifier in the left operand would
    // otherwise swallow the right operand on reparse (maximal-scope rule).
    case FormulaKind::kNot:
      return "~(" + ToString(*f.left) + ")";
    case FormulaKind::kAnd:
      return "((" + ToString(*f.left) + ") & (" + ToString(*f.right) + "))";
    case FormulaKind::kOr:
      return "((" + ToString(*f.left) + ") | (" + ToString(*f.right) + "))";
    case FormulaKind::kImplies:
      return "((" + ToString(*f.left) + ") -> (" + ToString(*f.right) + "))";
    case FormulaKind::kIff:
      return "((" + ToString(*f.left) + ") <-> (" + ToString(*f.right) + "))";
    // Quantifier bodies are parenthesized so that printing round-trips under
    // the parser's maximal-scope rule.
    case FormulaKind::kExistsFo:
      return "ex1 " + f.bound + ": (" + ToString(*f.left) + ")";
    case FormulaKind::kForallFo:
      return "all1 " + f.bound + ": (" + ToString(*f.left) + ")";
    case FormulaKind::kExistsSo:
      return "ex2 " + f.bound + ": (" + ToString(*f.left) + ")";
    case FormulaKind::kForallSo:
      return "all2 " + f.bound + ": (" + ToString(*f.left) + ")";
  }
  return "?";
}

}  // namespace treedl::mso
