// The SolveAll fusion win: five independent Solve traversals vs one fused
// MultiDp traversal over the same cached normal form, sequential and
// sharded-parallel, plus the SaveSession/LoadSession cost next to the
// artifact-build cost it amortizes away, and the table-memory ceiling a
// budgeted session holds (peak table bytes with vs without eviction).
//
// Caches are warmed before timing, so the Solve-vs-SolveAll rows compare
// pure traversal work. The per-bag transition work is identical either way;
// the fused walk saves the per-traversal overhead (post-order walk, shard
// scheduling, table allocation churn) and, more importantly for the serving
// story, turns five queue round-trips into one.
//
// Flags: --quick shrinks the instance for CI; --json <path> additionally
// writes the deterministic counters (states, traversals, table bytes,
// evictions — no wall-clock, so a 1-CPU runner produces meaningful,
// comparable artifacts).
#include <cstdio>
#include <cstring>
#include <string>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  size_t vertices = 2000;
  int treewidth = 5;
  double keep_probability = 0.55;
  uint64_t seed = 20260727;
  int repeats = 5;
  const char* json_path = nullptr;
};

constexpr Engine::Problem kAllProblems[] = {
    Engine::Problem::kThreeColor,      Engine::Problem::kThreeColorCount,
    Engine::Problem::kVertexCover,     Engine::Problem::kIndependentSet,
    Engine::Problem::kDominatingSet,
};

RunStats BenchOneThreadCount(const BenchConfig& config, const Graph& graph,
                             size_t num_threads) {
  EngineOptions options;
  options.num_threads = num_threads;
  options.extract_witness = false;  // time the DPs, not witness walks
  Engine engine = Engine::FromGraph(graph, options);
  TREEDL_CHECK(engine.Width().ok());  // warm: build TD + normal form once

  double solve_millis = 0;
  double solve_all_millis = 0;
  size_t solve_traversals = 0;
  size_t fused_traversals = 0;
  RunStats last_fused;
  for (int repeat = 0; repeat < config.repeats; ++repeat) {
    {
      Timer timer;
      for (Engine::Problem problem : kAllProblems) {
        RunStats run;
        auto result = engine.Solve(problem, &run);
        TREEDL_CHECK(result.ok()) << result.status();
        solve_traversals += run.dp_traversals;
      }
      solve_millis += timer.ElapsedMillis();
    }
    {
      Timer timer;
      RunStats run;
      auto result = engine.SolveAll(&run);
      TREEDL_CHECK(result.ok()) << result.status();
      fused_traversals += run.dp_traversals;
      solve_all_millis += timer.ElapsedMillis();
      last_fused = run;
    }
  }
  std::printf(
      "  threads=%zu  5xSolve: %8.2f ms (%zu traversals)   SolveAll: %8.2f "
      "ms (%zu traversals)   ratio %.2fx   table_peak=%zuB\n",
      num_threads, solve_millis / config.repeats,
      solve_traversals / static_cast<size_t>(config.repeats),
      solve_all_millis / config.repeats,
      fused_traversals / static_cast<size_t>(config.repeats),
      solve_millis / solve_all_millis, last_fused.dp_peak_table_bytes);
  return last_fused;
}

/// One budgeted SolveAll: same answers, bounded live-table memory.
RunStats BenchEviction(const Graph& graph) {
  EngineOptions options;
  options.num_threads = 1;
  options.extract_witness = false;
  options.table_memory_budget = 64 * 1024;
  Engine engine = Engine::FromGraph(graph, options);
  RunStats run;
  auto result = engine.SolveAll(&run);
  TREEDL_CHECK(result.ok()) << result.status();
  std::printf(
      "  eviction (budget 64KiB): table_peak=%zuB  tables_evicted=%zu\n",
      run.dp_peak_table_bytes, run.dp_tables_evicted);
  return run;
}

void BenchSessionIo(const Graph& graph) {
  EngineOptions options;
  options.num_threads = 1;
  const std::string path = "bench_solve_all_session.tdls";

  Engine warm = Engine::FromGraph(graph, options);
  Timer build_timer;
  TREEDL_CHECK(warm.Solve(Engine::Problem::kVertexCover).ok());
  double build_millis = build_timer.ElapsedMillis();

  Timer save_timer;
  RunStats save_run;
  TREEDL_CHECK(warm.SaveSession(path, &save_run).ok());
  double save_millis = save_timer.ElapsedMillis();

  Engine cold = Engine::FromGraph(graph, options);
  Timer load_timer;
  RunStats load_run;
  TREEDL_CHECK(cold.LoadSession(path, &load_run).ok());
  double load_millis = load_timer.ElapsedMillis();
  std::remove(path.c_str());

  std::printf(
      "  session IO: first-query build %.2f ms | save %zu artifacts %.2f ms "
      "| load+validate %.2f ms (amortizes the build on every restart)\n",
      build_millis, save_run.artifact_saves, save_millis, load_millis);
}

void WriteJson(const BenchConfig& config, const RunStats& sequential,
               const RunStats& parallel, const RunStats& evicted) {
  FILE* out = std::fopen(config.json_path, "w");
  TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"solve_all\",\n"
               "  \"vertices\": %zu,\n"
               "  \"treewidth\": %d,\n"
               "  \"seed\": %llu,\n"
               "  \"dp_states\": %zu,\n"
               "  \"dp_traversals\": %zu,\n"
               "  \"dp_passes\": %zu,\n"
               "  \"dp_shards_parallel\": %zu,\n"
               "  \"peak_table_bytes\": %zu,\n"
               "  \"peak_table_bytes_budgeted\": %zu,\n"
               "  \"tables_evicted_budgeted\": %zu\n"
               "}\n",
               config.vertices, config.treewidth,
               static_cast<unsigned long long>(config.seed),
               sequential.dp_states, sequential.dp_traversals,
               sequential.dp_passes, parallel.dp_shards,
               sequential.dp_peak_table_bytes, evicted.dp_peak_table_bytes,
               evicted.dp_tables_evicted);
  std::fclose(out);
  std::printf("  wrote %s\n", config.json_path);
}

void RunSolveAllBench(const BenchConfig& config) {
  Rng rng(config.seed);
  Graph graph = RandomPartialKTree(config.vertices, config.treewidth,
                                   config.keep_probability, &rng);
  std::printf(
      "SolveAll fusion: partial %d-tree, n=%zu, keep=%.2f, %d repeats\n",
      config.treewidth, config.vertices, config.keep_probability,
      config.repeats);
  RunStats sequential = BenchOneThreadCount(config, graph, 1);
  RunStats parallel = BenchOneThreadCount(config, graph, 4);
  RunStats evicted = BenchEviction(graph);
  BenchSessionIo(graph);
  if (config.json_path != nullptr) {
    WriteJson(config, sequential, parallel, evicted);
  }
}

}  // namespace
}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.vertices = 400;
      config.repeats = 2;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunSolveAllBench(config);
  return 0;
}
