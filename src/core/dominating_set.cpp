#include <algorithm>

#include "common/byte_vec.hpp"
#include "core/extensions.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"

namespace treedl::core {

namespace {

// Per bag vertex: in the dominating set, already dominated, or still waiting.
enum : uint8_t { kInSet = 0, kDominated = 1, kWaiting = 2 };

struct DomState {
  ByteVec status;

  bool operator==(const DomState&) const = default;
  size_t hash() const { return status.hash(); }
};

// Join key: the in-set pattern (domination flags may differ between sides).
struct DomKey {
  ByteVec in_set;

  bool operator==(const DomKey&) const = default;
  size_t hash() const { return in_set.hash(); }
};

size_t PositionInBag(const std::vector<ElementId>& bag, ElementId e) {
  return static_cast<size_t>(
      std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
}

class DominatingProblem {
 public:
  using State = DomState;
  using Value = size_t;
  using Emit = std::function<void(State, Value)>;

  explicit DominatingProblem(const Graph& graph) : graph_(graph) {}

  void Leaf(const std::vector<ElementId>& bag, const Emit& emit) const {
    size_t n = bag.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      State s;
      s.status.resize(n);
      size_t size = 0;
      for (size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          s.status[i] = kInSet;
          ++size;
        } else {
          s.status[i] = kWaiting;
        }
      }
      // Bag-internal domination.
      for (size_t i = 0; i < n; ++i) {
        if (s.status[i] != kWaiting) continue;
        for (size_t j = 0; j < n; ++j) {
          if (s.status[j] == kInSet && graph_.HasEdge(bag[i], bag[j])) {
            s.status[i] = kDominated;
            break;
          }
        }
      }
      emit(std::move(s), size);
    }
  }

  void Introduce(const std::vector<ElementId>& bag, ElementId v,
                 const State& child, const Value& value,
                 const Emit& emit) const {
    size_t pos = PositionInBag(bag, v);
    // Choice 1: v joins the dominating set — it may dominate waiting bag
    // neighbors.
    {
      State s = child;
      s.status.insert(s.status.begin() + static_cast<long>(pos), kInSet);
      for (size_t i = 0; i < bag.size(); ++i) {
        if (s.status[i] == kWaiting && graph_.HasEdge(bag[i], v)) {
          s.status[i] = kDominated;
        }
      }
      emit(std::move(s), value + 1);
    }
    // Choice 2: v stays out; it is dominated iff some bag neighbor is in the
    // set (v cannot have neighbors in the already-forgotten part).
    {
      uint8_t status = kWaiting;
      for (size_t i = 0; i < bag.size(); ++i) {
        if (bag[i] == v) continue;
        size_t child_pos = i < pos ? i : i - 1;
        if (child.status[child_pos] == kInSet && graph_.HasEdge(bag[i], v)) {
          status = kDominated;
          break;
        }
      }
      State s = child;
      s.status.insert(s.status.begin() + static_cast<long>(pos), status);
      emit(std::move(s), value);
    }
  }

  void Forget(const std::vector<ElementId>& bag, ElementId v,
              const State& child, const Value& value, const Emit& emit) const {
    size_t pos = PositionInBag(bag, v);
    // A forgotten vertex can never be dominated later.
    if (child.status[pos] == kWaiting) return;
    State s = child;
    s.status.erase(s.status.begin() + static_cast<long>(pos));
    emit(std::move(s), value);
  }

  DomKey KeyOf(const State& s) const {
    DomKey key;
    key.in_set.reserve(s.status.size());
    for (uint8_t st : s.status) key.in_set.push_back(st == kInSet ? 1 : 0);
    return key;
  }

  void Join(const std::vector<ElementId>& /*bag*/, const State& a,
            const Value& va, const State& b, const Value& vb,
            const Emit& emit) const {
    State s = a;
    size_t shared = 0;
    for (size_t i = 0; i < s.status.size(); ++i) {
      if (s.status[i] == kInSet) {
        ++shared;
      } else if (a.status[i] == kDominated || b.status[i] == kDominated) {
        s.status[i] = kDominated;
      }
    }
    emit(std::move(s), va + vb - shared);
  }

  Value Merge(const Value& a, const Value& b) const { return std::min(a, b); }

 private:
  const Graph& graph_;
};

// Root scan shared by the standalone solver and the fused-pass finalizer.
StatusOr<size_t> FinalizeDominating(const Graph& graph,
                                    const NormalizedTreeDecomposition& ntd,
                                    const DpTable<DomState, size_t>& table) {
  size_t best = graph.NumVertices() + 1;
  for (const auto& [state, value] : table.at(ntd.root())) {
    bool complete = true;
    for (uint8_t st : state.status) {
      if (st == kWaiting) complete = false;
    }
    if (complete) best = std::min(best, value);
  }
  if (best > graph.NumVertices()) {
    // Every graph has a dominating set (all vertices); reaching this means
    // an internal inconsistency.
    return Status::Internal("no dominating-set state survived to the root");
  }
  return best;
}

}  // namespace

StatusOr<size_t> MinDominatingSetNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats, const DpExec& exec) {
  DominatingProblem problem(graph);
  auto table = RunTreeDpAuto(ntd, &problem, exec, stats);
  if (exec.budget != nullptr && exec.budget->Aborted()) {
    return exec.budget->AbortStatus();
  }
  return FinalizeDominating(graph, ntd, table);
}

std::function<StatusOr<size_t>()> AddDominatingSetPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd) {
  const auto* table = multi->Add(DominatingProblem(graph),
                                 /*retain_tables=*/false);
  return [table, &graph, &ntd]() -> StatusOr<size_t> {
    return FinalizeDominating(graph, ntd, *table);
  };
}

StatusOr<size_t> MinDominatingSetTd(const Graph& graph,
                                    const TreeDecomposition& td,
                                    DpStats* stats) {
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd,
                          engine::PrepareForGraph(graph, td));
  return MinDominatingSetNormalized(graph, ntd, stats);
}

}  // namespace treedl::core
