#include "server/session_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace treedl::server {

namespace {

bool FileExists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

std::string HexFingerprint(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buffer);
}

}  // namespace

SessionPool::SessionPool(SessionPoolOptions options)
    : options_(std::move(options)) {
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  if (options_.table_memory_budget > 0) {
    options_.engine_options.table_memory_budget = options_.table_memory_budget;
  }
}

StatusOr<SessionPool::Lease> SessionPool::Acquire(const Structure& structure) {
  uint64_t fingerprint = Engine::FingerprintOf(structure);
  std::lock_guard<std::mutex> lock(mu_);

  auto it = sessions_.find(fingerprint);
  if (it != sessions_.end()) {
    ++counters_.hits;
    it->second.last_used = ++clock_;
    return Lease{it->second.engine, fingerprint, /*hit=*/true,
                 /*warm_loaded=*/false, /*artifact_loads=*/0};
  }

  ++counters_.misses;
  size_t estimate = Engine::EstimateStructureBytes(structure);
  if (options_.table_memory_budget > 0 &&
      estimate > options_.table_memory_budget) {
    ++counters_.rejections;
    return Status::ResourceExhausted(
        "structure estimate " + std::to_string(estimate) +
        "B exceeds the shared table_memory_budget " +
        std::to_string(options_.table_memory_budget) + "B");
  }
  while (sessions_.size() >= options_.max_sessions ||
         (options_.table_memory_budget > 0 &&
          ChargedBytesLocked() + estimate > options_.table_memory_budget)) {
    if (!EvictOneLocked()) {
      ++counters_.rejections;
      return Status::ResourceExhausted(
          "session pool: every resident session is in use (" +
          std::to_string(sessions_.size()) + " resident, " +
          std::to_string(ChargedBytesLocked()) + "B charged)");
    }
  }

  auto engine = std::make_shared<Engine>(structure, options_.engine_options);
  Lease lease{engine, fingerprint, /*hit=*/false, /*warm_loaded=*/false,
              /*artifact_loads=*/0};
  if (!options_.session_dir.empty()) {
    std::string path = SessionFilePath(fingerprint);
    if (FileExists(path)) {
      RunStats load_stats;
      // A corrupt or mismatched file must not fail the request: the session
      // simply starts cold and rebuilds.
      if (engine->LoadSession(path, &load_stats).ok()) {
        ++counters_.warm_loads;
        lease.warm_loaded = true;
        lease.artifact_loads = load_stats.artifact_loads;
      }
    }
  }
  Entry entry;
  entry.engine = engine;
  entry.charge = std::max(estimate, engine->ResidentArtifactBytes());
  entry.last_used = ++clock_;
  sessions_.emplace(fingerprint, std::move(entry));
  return lease;
}

void SessionPool::RefreshCharge(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(fingerprint);
  if (it == sessions_.end()) return;
  it->second.charge =
      std::max(it->second.charge, it->second.engine->ResidentArtifactBytes());
}

Status SessionPool::Save(uint64_t fingerprint, RunStats* stats) {
  std::shared_ptr<Engine> engine;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(fingerprint);
    if (it != sessions_.end()) engine = it->second.engine;
  }
  if (engine == nullptr) {
    return Status::NotFound("no resident session for fingerprint " +
                            HexFingerprint(fingerprint));
  }
  if (options_.session_dir.empty()) {
    return Status::InvalidArgument(
        "SAVE requires the server to run with a session directory");
  }
  return engine->SaveSession(SessionFilePath(fingerprint), stats);
}

std::shared_ptr<Engine> SessionPool::Peek(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(fingerprint);
  return it == sessions_.end() ? nullptr : it->second.engine;
}

std::string SessionPool::SessionFilePath(uint64_t fingerprint) const {
  if (options_.session_dir.empty()) return "";
  return options_.session_dir + "/" + HexFingerprint(fingerprint) + ".tdls";
}

SessionPoolCounters SessionPool::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t SessionPool::NumResident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

size_t SessionPool::ChargedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ChargedBytesLocked();
}

std::vector<uint64_t> SessionPool::LruFingerprints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, uint64_t>> order;  // {last_used, fp}
  order.reserve(sessions_.size());
  for (const auto& [fingerprint, entry] : sessions_) {
    order.emplace_back(entry.last_used, fingerprint);
  }
  std::sort(order.begin(), order.end());
  std::vector<uint64_t> fingerprints;
  fingerprints.reserve(order.size());
  for (const auto& [used, fingerprint] : order) {
    fingerprints.push_back(fingerprint);
  }
  return fingerprints;
}

size_t SessionPool::ChargedBytesLocked() const {
  size_t total = 0;
  for (const auto& [fingerprint, entry] : sessions_) total += entry.charge;
  return total;
}

bool SessionPool::EvictOneLocked() {
  auto victim = sessions_.end();
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    // use_count == 1 means the pool holds the only reference — the session
    // is idle. Leased sessions are never evicted mid-request.
    if (it->second.engine.use_count() > 1) continue;
    if (victim == sessions_.end() ||
        it->second.last_used < victim->second.last_used) {
      victim = it;
    }
  }
  if (victim == sessions_.end()) return false;
  sessions_.erase(victim);
  ++counters_.evictions;
  return true;
}

}  // namespace treedl::server
