// Deterministic bottom-up finite tree automata (FTA) over labeled binary
// trees — the machinery behind the classical MSO-on-trees route ([29, 6],
// §1) that the paper's datalog approach replaces.
#ifndef TREEDL_FTA_TREE_AUTOMATON_HPP_
#define TREEDL_FTA_TREE_AUTOMATON_HPP_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace treedl::fta {

using StateId = int;
using LabelId = int;

/// A labeled tree with at most binary branching, stored as a node pool;
/// node 0 need not be the root.
struct LabeledTree {
  struct Node {
    LabelId label = 0;
    std::vector<int> children;  // 0, 1 or 2 entries
  };
  std::vector<Node> nodes;
  int root = 0;

  int AddNode(LabelId label, std::vector<int> children = {});
};

/// Deterministic bottom-up tree automaton: transitions map
/// (label, child-state tuple) -> state. Missing transitions reject.
class TreeAutomaton {
 public:
  TreeAutomaton(int num_states, int num_labels)
      : num_states_(num_states), num_labels_(num_labels) {}

  int num_states() const { return num_states_; }
  int num_labels() const { return num_labels_; }

  Status AddTransition(LabelId label, std::vector<StateId> child_states,
                       StateId target);
  void SetAccepting(StateId state, bool accepting = true);
  bool IsAccepting(StateId state) const {
    return accepting_.count(state) > 0;
  }

  /// Bottom-up run; NotFound if some transition is missing.
  StatusOr<StateId> Run(const LabeledTree& tree) const;
  /// Run + acceptance test.
  StatusOr<bool> Accepts(const LabeledTree& tree) const;

  /// Product automaton recognizing the intersection (conjunction = true) or
  /// union (false) of the two languages. Both must share the label alphabet
  /// and be *complete* for union to be correct under missing-transition
  /// rejection; Complete() first if needed.
  static StatusOr<TreeAutomaton> Product(const TreeAutomaton& a,
                                         const TreeAutomaton& b,
                                         bool conjunction);

  /// Complement (flips acceptance). Requires a complete automaton.
  StatusOr<TreeAutomaton> Complement() const;

  /// Adds a non-accepting sink state and routes all missing transitions over
  /// child arities 0..2 to it, making the automaton complete.
  TreeAutomaton Complete() const;

  bool IsComplete() const;

  /// States reachable by some tree (least fixpoint over transitions).
  std::set<StateId> ReachableStates() const;

  /// Language emptiness: no accepting state is reachable.
  bool IsLanguageEmpty() const;

  size_t NumTransitions() const { return transitions_.size(); }

 private:
  int num_states_;
  int num_labels_;
  std::map<std::pair<LabelId, std::vector<StateId>>, StateId> transitions_;
  std::set<StateId> accepting_;
};

}  // namespace treedl::fta

#endif  // TREEDL_FTA_TREE_AUTOMATON_HPP_
