#include "td/preprocess.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace treedl {

namespace {

/// Degeneracy of the graph: repeatedly delete a minimum-degree vertex and
/// report the largest minimum degree seen. Degeneracy <= treewidth, so this
/// seeds the tracked lower bound.
int Degeneracy(const Graph& graph) {
  size_t n = graph.NumVertices();
  std::vector<size_t> degree(n);
  std::vector<bool> removed(n, false);
  for (VertexId v = 0; v < n; ++v) degree[v] = graph.Degree(v);
  int best = 0;
  for (size_t step = 0; step < n; ++step) {
    VertexId pick = 0;
    size_t min_degree = std::numeric_limits<size_t>::max();
    for (VertexId v = 0; v < n; ++v) {
      if (!removed[v] && degree[v] < min_degree) {
        min_degree = degree[v];
        pick = v;
      }
    }
    best = std::max(best, static_cast<int>(min_degree));
    removed[pick] = true;
    for (VertexId u : graph.Neighbors(pick)) {
      if (!removed[u]) --degree[u];
    }
  }
  return best;
}

bool IsClique(const std::vector<std::set<VertexId>>& adj,
              const std::vector<VertexId>& vertices) {
  for (size_t a = 0; a < vertices.size(); ++a) {
    for (size_t b = a + 1; b < vertices.size(); ++b) {
      if (!adj[vertices[a]].count(vertices[b])) return false;
    }
  }
  return true;
}

/// True when N(v) minus one of its members is a clique (v itself excluded).
bool IsAlmostSimplicial(const std::vector<std::set<VertexId>>& adj,
                        VertexId v) {
  std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
  for (size_t skip = 0; skip < nbrs.size(); ++skip) {
    std::vector<VertexId> rest;
    rest.reserve(nbrs.size() - 1);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (i != skip) rest.push_back(nbrs[i]);
    }
    if (IsClique(adj, rest)) return true;
  }
  return false;
}

}  // namespace

PreprocessResult Preprocess(const Graph& graph) {
  size_t n = graph.NumVertices();
  PreprocessResult result;
  result.lower_bound = Degeneracy(graph);

  std::vector<std::set<VertexId>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<bool> alive(n, true);

  auto eliminate = [&](VertexId v) {
    std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
    result.eliminated.push_back({v, nbrs});
    // Clique-ify the neighborhood (a no-op for already-clique rules): the
    // reduced graph must force N(v) into one bag so SpliceBack has an anchor.
    for (size_t a = 0; a < nbrs.size(); ++a) {
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    for (VertexId u : nbrs) adj[u].erase(v);
    adj[v].clear();
    alive[v] = false;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    // Cheap degree rules first, lowest vertex id first within each rule.
    for (VertexId v = 0; v < n && !progress; ++v) {
      if (!alive[v]) continue;
      size_t d = adj[v].size();
      if (d == 0) {
        ++result.counters.isolated;
        eliminate(v);
        progress = true;
      } else if (d == 1) {
        result.lower_bound = std::max(result.lower_bound, 1);
        ++result.counters.pendant;
        eliminate(v);
        progress = true;
      } else if (d == 2 && result.lower_bound >= 2) {
        ++result.counters.series;
        eliminate(v);
        progress = true;
      }
    }
    if (progress) continue;
    for (VertexId v = 0; v < n && !progress; ++v) {
      if (!alive[v]) continue;
      std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
      if (IsClique(adj, nbrs)) {
        result.lower_bound =
            std::max(result.lower_bound, static_cast<int>(nbrs.size()));
        ++result.counters.simplicial;
        eliminate(v);
        progress = true;
      }
    }
    if (progress) continue;
    for (VertexId v = 0; v < n && !progress; ++v) {
      if (!alive[v]) continue;
      size_t d = adj[v].size();
      // d <= 2 is already covered by the degree rules above; the guard
      // d <= lower_bound is what makes this rule width-safe.
      if (d >= 3 && d <= static_cast<size_t>(result.lower_bound) &&
          IsAlmostSimplicial(adj, v)) {
        ++result.counters.almost_simplicial;
        eliminate(v);
        progress = true;
      }
    }
  }

  std::vector<VertexId> to_reduced(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    to_reduced[v] = static_cast<VertexId>(result.to_original.size());
    result.to_original.push_back(v);
  }
  result.reduced = Graph(result.to_original.size());
  for (VertexId v : result.to_original) {
    for (VertexId u : adj[v]) {
      if (u > v) result.reduced.AddEdge(to_reduced[v], to_reduced[u]);
    }
  }
  return result;
}

StatusOr<TreeDecomposition> SpliceBack(const PreprocessResult& result,
                                       const TreeDecomposition& reduced_td) {
  if (reduced_td.Empty() && !result.to_original.empty()) {
    return Status::InvalidArgument(
        "splice: the reduced graph is nonempty but its decomposition is "
        "empty");
  }
  TreeDecomposition td;
  // Copy the reduced decomposition, bags translated to original vertex ids.
  if (!reduced_td.Empty()) {
    std::vector<TdNodeId> mapped(reduced_td.NumNodes(), kNoTdNode);
    for (TdNodeId id : reduced_td.PreOrder()) {
      std::vector<ElementId> bag;
      bag.reserve(reduced_td.Bag(id).size());
      for (ElementId e : reduced_td.Bag(id)) {
        if (e >= result.to_original.size()) {
          return Status::InvalidArgument(
              "splice: reduced bag element outside the reduced graph");
        }
        bag.push_back(result.to_original[e]);
      }
      TdNodeId parent = reduced_td.node(id).parent;
      mapped[static_cast<size_t>(id)] = td.AddNode(
          std::move(bag),
          parent == kNoTdNode ? kNoTdNode : mapped[static_cast<size_t>(parent)]);
    }
  }
  // Re-attach eliminated vertices in reverse elimination order: when v comes
  // back, every vertex of its elimination-time neighborhood is already in the
  // tree and forms a clique there, so some bag contains all of N(v).
  for (auto it = result.eliminated.rbegin(); it != result.eliminated.rend();
       ++it) {
    if (td.Empty()) {
      if (!it->neighbors.empty()) {
        return Status::InvalidArgument(
            "splice: eliminated vertex has neighbors but the tree is empty");
      }
      td.AddNode({it->vertex});
      continue;
    }
    TdNodeId anchor = kNoTdNode;
    if (it->neighbors.empty()) {
      anchor = td.root();
    } else {
      for (size_t id = 0; id < td.NumNodes() && anchor == kNoTdNode; ++id) {
        bool all = true;
        for (VertexId u : it->neighbors) {
          if (!td.BagContains(static_cast<TdNodeId>(id), u)) {
            all = false;
            break;
          }
        }
        if (all) anchor = static_cast<TdNodeId>(id);
      }
      if (anchor == kNoTdNode) {
        return Status::Internal(
            "splice: no bag contains the eliminated vertex's clique "
            "neighborhood");
      }
    }
    std::vector<ElementId> bag = it->neighbors;
    bag.push_back(it->vertex);
    td.AddNode(std::move(bag), anchor);
  }
  return td;
}

}  // namespace treedl
