// Hash combinators for composite DP states and interned keys.
#ifndef TREEDL_COMMON_HASH_HPP_
#define TREEDL_COMMON_HASH_HPP_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace treedl {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t* seed, const T& value) {
  size_t h = std::hash<T>{}(value);
  *seed ^= h + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hash for a vector of hashable elements (order-sensitive).
template <typename T>
size_t HashRange(const std::vector<T>& values, size_t seed = 0xcbf29ce484222325ULL) {
  for (const T& v : values) HashCombine(&seed, v);
  HashCombine(&seed, values.size());
  return seed;
}

}  // namespace treedl

#endif  // TREEDL_COMMON_HASH_HPP_
