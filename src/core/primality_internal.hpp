// Shared machinery of the §5.2 decision and §5.3 enumeration algorithms
// (internal header).
//
// The DP state is the solve(s, Y, FY, Co, ΔC, FC) tuple of Fig. 6:
//   Y  — bag attributes inside the candidate closed set Y (sorted),
//   Co — bag attributes outside Y, *ordered* by the derivation sequence,
//   FY — bag FDs already witnessed not to contradict closedness of Y,
//   ΔC — bag attributes whose deriving FD has been found (sorted),
//   FC — bag FDs used in the derivation sequence (sorted).
// All members hold element ids of the encoded τ-structure.
//
// Transition preconditions (checked with DCHECKs) rely on two invariants
// established by the preprocessing pipeline in primality.cpp:
//   * every bag containing an FD element also contains its rhs attribute
//     (rhs-closure pass + FD-first forget priority during normalization);
//   * bags shrink/grow by one element per normalized-TD edge.
#ifndef TREEDL_CORE_PRIMALITY_INTERNAL_HPP_
#define TREEDL_CORE_PRIMALITY_INTERNAL_HPP_

#include <functional>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "core/tree_dp.hpp"
#include "engine/run_stats.hpp"
#include "schema/encode.hpp"
#include "td/normalize.hpp"

namespace treedl::core::internal {

struct PrimState {
  std::vector<ElementId> y;   // sorted
  std::vector<ElementId> co;  // derivation order
  std::vector<ElementId> fy;  // sorted
  std::vector<ElementId> dc;  // sorted
  std::vector<ElementId> fc;  // sorted

  bool operator==(const PrimState&) const = default;
  size_t hash() const {
    size_t seed = HashRange(y);
    HashCombine(&seed, HashRange(co));
    HashCombine(&seed, HashRange(fy));
    HashCombine(&seed, HashRange(dc));
    HashCombine(&seed, HashRange(fc));
    return seed;
  }
};

/// Branch-compatibility key: states join iff (Y, Co, FC) coincide.
struct PrimJoinKey {
  std::vector<ElementId> y;
  std::vector<ElementId> co;
  std::vector<ElementId> fc;

  bool operator==(const PrimJoinKey&) const = default;
  size_t hash() const {
    size_t seed = HashRange(y);
    HashCombine(&seed, HashRange(co));
    HashCombine(&seed, HashRange(fc));
    return seed;
  }
};

class PrimalityContext {
 public:
  PrimalityContext(const Schema& schema, const SchemaEncoding& encoding);

  using EmitState = std::function<void(PrimState)>;

  bool IsAttr(ElementId e) const { return encoding_.IsAttrElement(e); }
  bool IsFd(ElementId e) const { return encoding_.IsFdElement(e); }
  ElementId RhsElem(ElementId fd_elem) const {
    return rhs_elem_[static_cast<size_t>(encoding_.FdOf(fd_elem))];
  }
  const std::vector<ElementId>& LhsElems(ElementId fd_elem) const {
    return lhs_elems_[static_cast<size_t>(encoding_.FdOf(fd_elem))];
  }

  /// Leaf rule of Fig. 6: all partitions (Y, ordered Co) of the bag's
  /// attributes, all consistent used-FD subsets FC with pairwise distinct
  /// rhs, ΔC = rhs(FC), FY = outside(Y, bag).
  void LeafStates(const std::vector<ElementId>& bag,
                  const EmitState& emit) const;

  /// Attribute introduction rules (b joins Y, or is inserted anywhere into
  /// Co subject to consistent(FC, Co ⊎ {b})).
  void IntroduceAttr(const std::vector<ElementId>& bag, ElementId b,
                     const PrimState& s, const EmitState& emit) const;

  /// FD introduction rules (rhs ∈ Y: no-op; rhs ∈ Co: used / not used).
  void IntroduceFd(const std::vector<ElementId>& bag, ElementId f,
                   const PrimState& s, const EmitState& emit) const;

  /// Attribute removal rules; `bag` is the bag *without* b.
  void ForgetAttr(const std::vector<ElementId>& bag, ElementId b,
                  const PrimState& s, const EmitState& emit) const;

  /// FD removal rules; `bag` is the bag *without* f.
  void ForgetFd(const std::vector<ElementId>& bag, ElementId f,
                const PrimState& s, const EmitState& emit) const;

  PrimJoinKey KeyOf(const PrimState& s) const {
    return PrimJoinKey{s.y, s.co, s.fc};
  }

  /// Branch rule: requires equal keys; checks unique(ΔC1, ΔC2, FC) and emits
  /// the union state.
  void Join(const PrimState& a, const PrimState& b, const EmitState& emit) const;

  /// Success condition at a node whose (subtree/envelope) covers everything:
  /// a ∉ Y, FY = {f ∈ bag | rhs(f) ∉ Y}, ΔC = Co \ {a}.
  bool Accepts(const std::vector<ElementId>& bag, const PrimState& s,
               ElementId query_attr) const;

  /// FDs of the bag with rhs outside y and some bag lhs-attribute outside y —
  /// the outside(FY, Y, At, Fd) predicate.
  std::vector<ElementId> Outside(const std::vector<ElementId>& bag,
                                 const std::vector<ElementId>& y) const;

 private:
  const SchemaEncoding& encoding_;
  std::vector<ElementId> rhs_elem_;               // per FdId
  std::vector<std::vector<ElementId>> lhs_elems_; // per FdId, sorted
};

/// Extends every bag containing an FD element with that FD's rhs attribute
/// (connectedness is preserved; width may grow — §5.2's "may double the
/// width" remark).
TreeDecomposition CloseBagsForRhs(const TreeDecomposition& td,
                                  const SchemaEncoding& encoding,
                                  const PrimalityContext& context);

/// Normalization options for primality: FD elements are forgotten before
/// attributes and introduced after them, preserving the rhs-closure invariant
/// along every chain.
NormalizeOptions PrimalityNormalizeOptions(const SchemaEncoding& encoding,
                                           bool for_enumeration);

/// Fig. 6 bottom-up DP over a *prepared* decomposition — already validated,
/// rhs-closed, re-rooted at a bag containing `a_elem`, and normalized with
/// PrimalityNormalizeOptions(·, false). Used by IsPrimeViaTd after its pass
/// pipeline, and by the Engine with its cached artifacts.
bool DecidePrimePrepared(const PrimalityContext& context,
                         const NormalizedTreeDecomposition& ntd,
                         ElementId a_elem, RunStats* stats);

/// §5.3 two-pass enumeration over a prepared decomposition — validated,
/// rhs-closed, normalized with PrimalityNormalizeOptions(·, true). When
/// `exec` carries a sharding and pool, both passes run shard-parallel on it
/// (bottom-up solve, then the inverted top-down solve↓ schedule); with
/// exec.table_memory_budget > 0 dead state tables are evicted as the passes
/// consume them. Results are bit-identical at any thread count.
std::vector<bool> EnumeratePrimesPrepared(const PrimalityContext& context,
                                          const SchemaEncoding& encoding,
                                          int num_attributes,
                                          const NormalizedTreeDecomposition& ntd,
                                          RunStats* stats,
                                          const DpExec& exec = {});

}  // namespace treedl::core::internal

#endif  // TREEDL_CORE_PRIMALITY_INTERNAL_HPP_
