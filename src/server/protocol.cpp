#include "server/protocol.hpp"

#include <cctype>
#include <cstdint>

#include "common/string_util.hpp"

namespace treedl::server {

namespace {

// Consumes and returns the next whitespace-delimited token of `*rest`
// (empty when exhausted).
std::string_view TakeToken(std::string_view* rest) {
  size_t start = 0;
  while (start < rest->size() &&
         std::isspace(static_cast<unsigned char>((*rest)[start]))) {
    ++start;
  }
  size_t end = start;
  while (end < rest->size() &&
         !std::isspace(static_cast<unsigned char>((*rest)[end]))) {
    ++end;
  }
  std::string_view token = rest->substr(start, end - start);
  rest->remove_prefix(end);
  return token;
}

StatusOr<std::string> TakeTenant(std::string_view* rest,
                                 std::string_view command) {
  std::string_view token = TakeToken(rest);
  if (token.empty()) {
    return Status::ParseError(std::string(command) + ": missing tenant name");
  }
  if (!IsIdentifier(token)) {
    return Status::ParseError(std::string(command) + ": tenant '" +
                              std::string(token) + "' is not an identifier");
  }
  return std::string(token);
}

// The rest-of-line payload of ASSERT/QUERY/MSO and the FACTS clause.
StatusOr<std::string> TakePayload(std::string_view* rest,
                                  std::string_view command,
                                  std::string_view what) {
  std::string_view payload = Trim(*rest);
  *rest = {};
  if (payload.empty()) {
    return Status::ParseError(std::string(command) + ": missing " +
                              std::string(what));
  }
  return std::string(payload);
}

Status ExpectEnd(std::string_view* rest, std::string_view command) {
  if (!Trim(*rest).empty()) {
    return Status::ParseError(std::string(command) +
                              ": unexpected trailing arguments '" +
                              std::string(Trim(*rest)) + "'");
  }
  return Status::OK();
}

StatusOr<Request> ParseLoad(std::string_view rest) {
  TREEDL_ASSIGN_OR_RETURN(std::string tenant, TakeTenant(&rest, "LOAD"));
  std::string_view keyword = TakeToken(&rest);
  if (keyword != "SIG") {
    return Status::ParseError("LOAD: expected SIG, got '" +
                              std::string(keyword) + "'");
  }
  LoadRequest load;
  load.tenant = std::move(tenant);
  while (true) {
    std::string_view token = TakeToken(&rest);
    if (token.empty() || token == "FACTS") {
      if (token == "FACTS") {
        TREEDL_ASSIGN_OR_RETURN(load.facts,
                                TakePayload(&rest, "LOAD", "FACTS payload"));
      }
      break;
    }
    size_t slash = token.rfind('/');
    if (slash == std::string_view::npos || slash == 0 ||
        slash + 1 == token.size()) {
      return Status::ParseError("LOAD: predicate '" + std::string(token) +
                                "' is not name/arity");
    }
    std::string_view name = token.substr(0, slash);
    std::string_view arity_text = token.substr(slash + 1);
    if (!IsIdentifier(name)) {
      return Status::ParseError("LOAD: predicate name '" + std::string(name) +
                                "' is not an identifier");
    }
    int arity = 0;
    for (char c : arity_text) {
      if (!std::isdigit(static_cast<unsigned char>(c)) || arity > 99) {
        return Status::ParseError("LOAD: bad arity in '" + std::string(token) +
                                  "'");
      }
      arity = arity * 10 + (c - '0');
    }
    load.predicates.emplace_back(std::string(name), arity);
  }
  if (load.predicates.empty()) {
    return Status::ParseError("LOAD: SIG needs at least one name/arity");
  }
  return Request(std::move(load));
}

StatusOr<Request> ParseSolve(std::string_view rest) {
  TREEDL_ASSIGN_OR_RETURN(std::string tenant, TakeTenant(&rest, "SOLVE"));
  std::string_view token = TakeToken(&rest);
  if (token.empty()) return Status::ParseError("SOLVE: missing problem name");
  TREEDL_ASSIGN_OR_RETURN(Engine::Problem problem, ProblemFromName(token));
  TREEDL_RETURN_IF_ERROR(ExpectEnd(&rest, "SOLVE"));
  return Request(SolveRequest{std::move(tenant), problem});
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse:
      return "E_PARSE";
    case ErrorCode::kUnknownCommand:
      return "E_CMD";
    case ErrorCode::kNoTenant:
      return "E_TENANT";
    case ErrorCode::kBadArgument:
      return "E_ARG";
    case ErrorCode::kAdmission:
      return "E_ADMISSION";
    case ErrorCode::kEval:
      return "E_EVAL";
    case ErrorCode::kIo:
      return "E_IO";
    case ErrorCode::kDeadline:
      return "E_DEADLINE";
  }
  return "E_EVAL";
}

const char* RequestName(const Request& request) {
  struct Visitor {
    const char* operator()(const LoadRequest&) const { return "LOAD"; }
    const char* operator()(const AssertRequest&) const { return "ASSERT"; }
    const char* operator()(const QueryRequest&) const { return "QUERY"; }
    const char* operator()(const SolveRequest&) const { return "SOLVE"; }
    const char* operator()(const SolveAllRequest&) const { return "SOLVEALL"; }
    const char* operator()(const MsoRequest&) const { return "MSO"; }
    const char* operator()(const SaveRequest&) const { return "SAVE"; }
    const char* operator()(const OpenRequest&) const { return "OPEN"; }
    const char* operator()(const StatsRequest&) const { return "STATS"; }
    const char* operator()(const DeadlineRequest&) const { return "DEADLINE"; }
    const char* operator()(const ReoptRequest&) const { return "REOPT"; }
    const char* operator()(const CloseRequest&) const { return "CLOSE"; }
    const char* operator()(const QuitRequest&) const { return "QUIT"; }
  };
  return std::visit(Visitor{}, request);
}

StatusOr<std::optional<Request>> ParseRequest(std::string_view line) {
  std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed.front() == '%') {
    return std::optional<Request>();
  }
  std::string_view rest = trimmed;
  std::string_view command = TakeToken(&rest);

  auto tenant_only =
      [&](auto make) -> StatusOr<std::optional<Request>> {
    TREEDL_ASSIGN_OR_RETURN(std::string tenant, TakeTenant(&rest, command));
    TREEDL_RETURN_IF_ERROR(ExpectEnd(&rest, command));
    return std::optional<Request>(make(std::move(tenant)));
  };
  auto tenant_payload =
      [&](std::string_view what,
          auto make) -> StatusOr<std::optional<Request>> {
    TREEDL_ASSIGN_OR_RETURN(std::string tenant, TakeTenant(&rest, command));
    TREEDL_ASSIGN_OR_RETURN(std::string payload,
                            TakePayload(&rest, command, what));
    return std::optional<Request>(make(std::move(tenant), std::move(payload)));
  };

  if (command == "LOAD") {
    TREEDL_ASSIGN_OR_RETURN(Request request, ParseLoad(rest));
    return std::optional<Request>(std::move(request));
  }
  if (command == "ASSERT") {
    return tenant_payload("facts", [](std::string t, std::string p) {
      return Request(AssertRequest{std::move(t), std::move(p)});
    });
  }
  if (command == "QUERY") {
    return tenant_payload("datalog program", [](std::string t, std::string p) {
      return Request(QueryRequest{std::move(t), std::move(p)});
    });
  }
  if (command == "SOLVE") {
    TREEDL_ASSIGN_OR_RETURN(Request request, ParseSolve(rest));
    return std::optional<Request>(std::move(request));
  }
  if (command == "SOLVEALL") {
    return tenant_only(
        [](std::string t) { return Request(SolveAllRequest{std::move(t)}); });
  }
  if (command == "MSO") {
    return tenant_payload("formula", [](std::string t, std::string p) {
      return Request(MsoRequest{std::move(t), std::move(p)});
    });
  }
  if (command == "SAVE") {
    return tenant_only(
        [](std::string t) { return Request(SaveRequest{std::move(t)}); });
  }
  if (command == "OPEN") {
    return tenant_only(
        [](std::string t) { return Request(OpenRequest{std::move(t)}); });
  }
  if (command == "STATS") {
    StatsRequest stats;
    std::string_view token = TakeToken(&rest);
    if (!token.empty()) {
      if (!IsIdentifier(token)) {
        return Status::ParseError("STATS: tenant '" + std::string(token) +
                                  "' is not an identifier");
      }
      stats.tenant = std::string(token);
    }
    TREEDL_RETURN_IF_ERROR(ExpectEnd(&rest, "STATS"));
    return std::optional<Request>(Request(std::move(stats)));
  }
  if (command == "DEADLINE") {
    std::string_view token = TakeToken(&rest);
    if (token.empty()) {
      return Status::ParseError("DEADLINE: expected a unit count or OFF");
    }
    TREEDL_RETURN_IF_ERROR(ExpectEnd(&rest, "DEADLINE"));
    DeadlineRequest deadline;
    if (token != "OFF") {
      uint64_t units = 0;
      for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::ParseError("DEADLINE: '" + std::string(token) +
                                    "' is not a unit count or OFF");
        }
        if (units > (UINT64_MAX - 9) / 10) {
          return Status::ParseError("DEADLINE: unit count overflows");
        }
        units = units * 10 + static_cast<uint64_t>(c - '0');
      }
      deadline.units = units;
    }
    return std::optional<Request>(Request(deadline));
  }
  if (command == "REOPT") {
    TREEDL_ASSIGN_OR_RETURN(std::string tenant, TakeTenant(&rest, "REOPT"));
    std::string_view token = TakeToken(&rest);
    if (token.empty()) {
      return Status::ParseError("REOPT: expected a unit count");
    }
    TREEDL_RETURN_IF_ERROR(ExpectEnd(&rest, "REOPT"));
    uint64_t units = 0;
    for (char c : token) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Status::ParseError("REOPT: '" + std::string(token) +
                                  "' is not a unit count");
      }
      if (units > (UINT64_MAX - 9) / 10) {
        return Status::ParseError("REOPT: unit count overflows");
      }
      units = units * 10 + static_cast<uint64_t>(c - '0');
    }
    return std::optional<Request>(Request(ReoptRequest{std::move(tenant), units}));
  }
  if (command == "CLOSE") {
    return tenant_only(
        [](std::string t) { return Request(CloseRequest{std::move(t)}); });
  }
  if (command == "QUIT") {
    TREEDL_RETURN_IF_ERROR(ExpectEnd(&rest, "QUIT"));
    return std::optional<Request>(Request(QuitRequest{}));
  }
  return Status::NotFound("unknown command '" + std::string(command) + "'");
}

ErrorCode ErrorCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kParseError:
      return ErrorCode::kParse;
    case StatusCode::kNotFound:
      return ErrorCode::kUnknownCommand;
    case StatusCode::kInvalidArgument:
      return ErrorCode::kBadArgument;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kAdmission;
    case StatusCode::kDeadlineExceeded:
      return ErrorCode::kDeadline;
    default:
      return ErrorCode::kEval;
  }
}

const char* ProblemName(Engine::Problem problem) {
  switch (problem) {
    case Engine::Problem::kThreeColor:
      return "3COL";
    case Engine::Problem::kThreeColorCount:
      return "#3COL";
    case Engine::Problem::kVertexCover:
      return "VC";
    case Engine::Problem::kIndependentSet:
      return "IS";
    case Engine::Problem::kDominatingSet:
      return "DS";
  }
  return "3COL";
}

StatusOr<Engine::Problem> ProblemFromName(std::string_view name) {
  if (name == "3COL") return Engine::Problem::kThreeColor;
  if (name == "#3COL") return Engine::Problem::kThreeColorCount;
  if (name == "VC") return Engine::Problem::kVertexCover;
  if (name == "IS") return Engine::Problem::kIndependentSet;
  if (name == "DS") return Engine::Problem::kDominatingSet;
  return Status::InvalidArgument("SOLVE: unknown problem '" +
                                 std::string(name) +
                                 "' (expected 3COL, #3COL, VC, IS or DS)");
}

std::string OkReply(std::string_view command, std::string_view details) {
  std::string reply = "OK ";
  reply += command;
  if (!details.empty()) {
    reply += ' ';
    reply += details;
  }
  return reply;
}

std::string DataReply(std::string_view payload) {
  std::string reply = "DATA ";
  reply += payload;
  return reply;
}

std::string ErrorReply(ErrorCode code, std::string_view message) {
  std::string reply = "ERR ";
  reply += ErrorCodeName(code);
  reply += ' ';
  // Replies are line-framed: a multi-line engine message must not smuggle
  // extra lines into the transcript.
  for (char c : message) reply += (c == '\n' || c == '\r') ? ' ' : c;
  return reply;
}

}  // namespace treedl::server
