#include "fta/type_automaton.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "common/hash.hpp"
#include "td/normalize.hpp"
#include "td/validate.hpp"

namespace treedl::fta {

namespace {

// A bag coloring aligned with the node's sorted bag (cf. §5.1's solve states).
using Coloring = std::vector<uint8_t>;

size_t PositionInBag(const std::vector<ElementId>& bag, ElementId e) {
  return static_cast<size_t>(
      std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
}

bool ProperOnBag(const Graph& g, const std::vector<ElementId>& bag,
                 const Coloring& c) {
  for (size_t i = 0; i < bag.size(); ++i) {
    for (size_t j = i + 1; j < bag.size(); ++j) {
      if (c[i] == c[j] && g.HasEdge(bag[i], bag[j])) return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<AutomatonUsage> MeasureThreeColorAutomaton(
    const Graph& graph, const TreeDecomposition& td) {
  TREEDL_RETURN_IF_ERROR(ValidateForGraph(graph, td));
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd, Normalize(td));

  // Determinized automaton: the state at a node is the *set* of feasible bag
  // colorings of its subtree. We hash each set to count distinct states.
  std::vector<std::set<Coloring>> table(ntd.NumNodes());
  std::set<size_t> distinct_states;
  AutomatonUsage usage;

  for (TdNodeId id : ntd.PostOrder()) {
    const NormNode& node = ntd.node(id);
    std::set<Coloring>& states = table[static_cast<size_t>(id)];
    switch (node.kind) {
      case NormNodeKind::kLeaf: {
        Coloring c(node.bag.size(), 0);
        while (true) {
          if (ProperOnBag(graph, node.bag, c)) states.insert(c);
          size_t pos = 0;
          while (pos < c.size() && ++c[pos] == 3) {
            c[pos] = 0;
            ++pos;
          }
          if (pos == c.size()) break;
        }
        break;
      }
      case NormNodeKind::kIntroduce: {
        size_t pos = PositionInBag(node.bag, node.element);
        for (const Coloring& child :
             table[static_cast<size_t>(node.children[0])]) {
          for (uint8_t color = 0; color < 3; ++color) {
            Coloring c = child;
            c.insert(c.begin() + static_cast<long>(pos), color);
            if (ProperOnBag(graph, node.bag, c)) states.insert(std::move(c));
          }
        }
        break;
      }
      case NormNodeKind::kForget: {
        size_t pos = PositionInBag(node.bag, node.element);
        for (const Coloring& child :
             table[static_cast<size_t>(node.children[0])]) {
          Coloring c = child;
          c.erase(c.begin() + static_cast<long>(pos));
          states.insert(std::move(c));
        }
        break;
      }
      case NormNodeKind::kCopy:
        states = table[static_cast<size_t>(node.children[0])];
        break;
      case NormNodeKind::kBranch: {
        const auto& left = table[static_cast<size_t>(node.children[0])];
        const auto& right = table[static_cast<size_t>(node.children[1])];
        for (const Coloring& c : left) {
          if (right.count(c)) states.insert(c);
        }
        break;
      }
    }
    // One determinized automaton state = the whole set.
    size_t state_hash = 0xcbf29ce484222325ULL;
    for (const Coloring& c : states) HashCombine(&state_hash, HashRange(c));
    distinct_states.insert(state_hash);
    usage.total_facts += states.size();
    usage.max_subset_size = std::max(usage.max_subset_size, states.size());
  }
  usage.distinct_subset_states = distinct_states.size();
  return usage;
}

}  // namespace treedl::fta
