// Semi-naive fixpoint over compiled join plans (datalog/executor.hpp).
//
// Rounds decompose into rule x delta-position x delta-batch task units, each
// running one compiled JoinPlan against the shared columnar store; units
// merge in task order, so the derived model and every fact-insertion
// sequence are bit-identical to a sequential run at any thread count.
#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "datalog/eval.hpp"
#include "datalog/eval_internal.hpp"

namespace treedl::datalog {

namespace {

constexpr size_t kMaxDeltaBatches = 8;

/// One rule-evaluation unit of a fixpoint round: rule x delta variant x
/// contiguous delta batch. Round 0 units carry variant = -1 (the full plan)
/// and a full-relation range. The decomposition of a round into units
/// depends only on the program and the delta sizes — never on the thread
/// count — so the fixpoint_rule_tasks counter (and every derived-work
/// counter) is identical between sequential and parallel runs.
struct RuleTask {
  size_t rule = 0;
  int variant = -1;  // index into CompiledRule::delta_variants, -1 = full
  internal::DeltaRange range;
};

struct TaskResult {
  /// Derived head tuples, flat in the task's own arena.
  PendingSet pending;
  ExecCounters counters;
};

/// Pre-builds every (predicate, bound-pattern) index the compiled plans
/// will probe against `store`. Plan compilation already fixed each step's
/// probe mask from the statically-bound variable set — at plan position k
/// exactly the variables of positive steps 0..k-1 are bound, regardless of
/// which position is the delta — so the full plans' step masks cover every
/// store probe any delta variant makes. With the probed indexes frozen, a
/// parallel round's Probe calls are pure reads (Add keeps built indexes
/// maintained between rounds as the merge step inserts derived facts).
///
/// `delta_positions_only` freezes instead the masks the delta steps probe —
/// applied to each round's fresh delta store.
void FreezeIndexes(const internal::PreparedProgram& prep, FactStore* store,
                   bool delta_positions_only) {
  for (const CompiledRule& compiled : prep.compiled) {
    if (!delta_positions_only) {
      for (const CompiledStep& step : compiled.full.steps) {
        store->EnsureIndex(step.spec.predicate, step.spec.probe_mask);
      }
      continue;
    }
    for (const JoinPlan& variant : compiled.delta_variants) {
      const CompiledStep& step =
          variant.steps[static_cast<size_t>(variant.delta_position)];
      store->EnsureIndex(step.spec.predicate, step.spec.probe_mask);
    }
  }
}

/// Executes `tasks` — on exec.pool when it is usable, inline otherwise — and
/// returns the per-task results in task order. Tasks only read `prep.store`
/// and `delta`; the caller replays the pending facts in task order, so the
/// store's insertion sequence is bit-identical to the sequential engine's.
std::vector<TaskResult> RunRuleTasks(const internal::PreparedProgram& prep,
                                     FactStore* store, FactStore* delta,
                                     const std::vector<RuleTask>& tasks,
                                     const EvalExec& exec) {
  std::vector<TaskResult> results(tasks.size());
  auto run_one = [&](size_t i) {
    const RuleTask& task = tasks[i];
    const CompiledRule& compiled = prep.compiled[task.rule];
    const JoinPlan& plan =
        task.variant < 0
            ? compiled.full
            : compiled.delta_variants[static_cast<size_t>(task.variant)];
    TaskResult& out = results[i];
    ExecutePlan(plan, store, delta, task.range.begin, task.range.end,
                &out.pending, &out.counters);
  };
  if (!exec.Parallel() || tasks.size() <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) run_one(i);
    return results;
  }
  WaitGroup done;
  done.Add(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    exec.pool->Submit([&run_one, &done, i] {
      run_one(i);
      done.Done();
    });
  }
  // Help drain the pool instead of idling (also makes progress when several
  // concurrent queries share one pool).
  while (exec.pool->RunOneTask()) {
  }
  done.Wait();
  return results;
}

/// Batch count for one (rule, delta variant) unit: 1 unless the delta
/// literal is the plan's first step (no prefix join to re-run per batch) and
/// its delta relation is wide enough to be worth splitting. A pure function
/// of the data and exec.delta_batch_grain.
size_t NumDeltaBatches(int delta_position, size_t delta_size,
                       const EvalExec& exec) {
  if (delta_position != 0 || exec.delta_batch_grain == 0) return 1;
  if (delta_size < 2 * exec.delta_batch_grain) return 1;
  return std::min(kMaxDeltaBatches, delta_size / exec.delta_batch_grain);
}

void AppendBatchedTasks(std::vector<RuleTask>* tasks, size_t rule_index,
                        int variant, size_t delta_size, size_t batches) {
  for (size_t b = 0; b < batches; ++b) {
    RuleTask task;
    task.rule = rule_index;
    task.variant = variant;
    task.range.begin = delta_size * b / batches;
    task.range.end = delta_size * (b + 1) / batches;
    tasks->push_back(task);
  }
}

}  // namespace

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb,
                                      const EvalExec& exec, RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  TREEDL_ASSIGN_OR_RETURN(internal::PreparedProgram prep,
                          internal::Prepare(program, edb));
  EvalStats local;
  ExecCounters exec_counters;
  size_t rule_tasks = 0;
  const bool parallel = exec.Parallel();
  // The store is shared read-only by the tasks of a round; freeze its
  // indexes up front so no task triggers a lazy index build mid-round (Add
  // maintains them as the merge step inserts derived facts).
  if (parallel) FreezeIndexes(prep, &prep.store, /*delta_positions_only=*/false);

  // Round 0: full evaluation against the EDB (+ ground facts); all derived
  // facts form the first delta.
  FactStore delta(prep.result.signature());
  auto derive_into = [&](FactStore* next_delta, PredicateId pred,
                         const Tuple& tuple) {
    if (prep.store.Add(pred, tuple)) {
      ++local.derived_facts;
      next_delta->Add(pred, tuple);
      Status st = prep.result.AddFact(pred, tuple);
      TREEDL_CHECK(st.ok()) << st.ToString();
    }
  };
  auto merge_results = [&](const std::vector<TaskResult>& results,
                           FactStore* next_delta) {
    for (const TaskResult& result : results) {
      exec_counters.work += result.counters.work;
      exec_counters.dispatches += result.counters.dispatches;
      for (size_t i = 0; i < result.pending.size(); ++i) {
        const ElementId* args = result.pending.args(i);
        derive_into(next_delta, result.pending.predicate(i),
                    Tuple(args, args + result.pending.arity(i)));
      }
    }
  };

  // Deadline accounting: one work unit per rule task, charged at the round
  // boundary on the evaluating thread. The round/task decomposition is a
  // pure function of the program and the delta sizes, so a deadline trips
  // before the same round at every thread count.
  auto charge_round = [&](size_t num_tasks) -> bool {
    if (exec.budget == nullptr) return true;
    bool ok = true;
    for (size_t i = 0; i < num_tasks; ++i) {
      if (!exec.budget->ConsumeUnit()) ok = false;
    }
    return ok;
  };

  {
    ++local.iterations;
    std::vector<RuleTask> tasks;
    tasks.reserve(prep.rules.size());
    for (size_t r = 0; r < prep.rules.size(); ++r) {
      tasks.push_back(RuleTask{r, -1, {}});
    }
    rule_tasks += tasks.size();
    if (!charge_round(tasks.size())) return exec.budget->AbortStatus();
    merge_results(RunRuleTasks(prep, &prep.store, nullptr, tasks, exec),
                  &delta);
  }

  // Delta rounds: for every rule and every delta variant (one per positive
  // intensional body position, ascending), run the variant's plan with its
  // delta step against the previous delta and the rest against the full
  // store; wide position-0 deltas split into contiguous batches. Duplicate
  // derivations are absorbed by the store.
  while (delta.TotalFacts() > 0) {
    ++local.iterations;
    if (parallel) FreezeIndexes(prep, &delta, /*delta_positions_only=*/true);
    FactStore next_delta(prep.result.signature());
    std::vector<RuleTask> tasks;
    for (size_t r = 0; r < prep.rules.size(); ++r) {
      const CompiledRule& compiled = prep.compiled[r];
      for (size_t v = 0; v < compiled.delta_variants.size(); ++v) {
        const JoinPlan& variant = compiled.delta_variants[v];
        size_t delta_size = delta.NumTuples(
            variant.steps[static_cast<size_t>(variant.delta_position)]
                .spec.predicate);
        AppendBatchedTasks(
            &tasks, r, static_cast<int>(v), delta_size,
            NumDeltaBatches(variant.delta_position, delta_size, exec));
      }
    }
    rule_tasks += tasks.size();
    if (!charge_round(tasks.size())) return exec.budget->AbortStatus();
    merge_results(RunRuleTasks(prep, &prep.store, &delta, tasks, exec),
                  &next_delta);
    delta = std::move(next_delta);
  }

  local.rule_applications = exec_counters.work;
  if (stats != nullptr) {
    stats->eval_iterations += local.iterations;
    stats->derived_facts += local.derived_facts;
    stats->rule_applications += local.rule_applications;
    stats->fixpoint_rounds += local.iterations;
    stats->fixpoint_rule_tasks += rule_tasks;
    stats->plan_compiles += prep.plan_compiles;
    stats->executor_dispatches += exec_counters.dispatches;
  }
  return std::move(prep.result);
}

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, RunStats* stats) {
  return SemiNaiveEvaluate(program, edb, EvalExec{}, stats);
}

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, EvalStats* stats) {
  RunStats run;
  auto result = SemiNaiveEvaluate(program, edb, &run);
  if (stats != nullptr) {
    stats->iterations = run.eval_iterations;
    stats->derived_facts = run.derived_facts;
    stats->rule_applications = run.rule_applications;
  }
  return result;
}

}  // namespace treedl::datalog
