#include "mso/formulas.hpp"

#include "common/logging.hpp"
#include "mso/parser.hpp"

namespace treedl::mso {

namespace {

FormulaPtr MustParse(const std::string& text) {
  auto parsed = ParseFormula(text);
  TREEDL_CHECK(parsed.ok()) << parsed.status().ToString() << " in: " << text;
  return *parsed;
}

}  // namespace

FormulaPtr ThreeColorabilitySentence() {
  return MustParse(
      "ex2 R, G, B: "
      "  (all1 v: ((v in R | v in G | v in B)"
      "     & ~(v in R & v in G) & ~(v in R & v in B) & ~(v in G & v in B)))"
      "  & (all1 v, w: (e(v, w) -> "
      "      (~(v in R & w in R) & ~(v in G & w in G) & ~(v in B & w in B))))");
}

FormulaPtr PrimalityFormula(const std::string& free_var) {
  const std::string x = free_var;
  // Closed(S) ≡ ∀f (fd(f) → ∃b ((rh(b,f) ∧ b ∈ S) ∨ (lh(b,f) ∧ b ∉ S))).
  auto closed = [](const std::string& set) {
    return "(all1 f: (fd(f) -> ex1 b: ((rh(b, f) & b in " + set +
           ") | (lh(b, f) & b notin " + set + "))))";
  };
  auto subset_of_r = [](const std::string& set) {
    return "(all1 b: (b in " + set + " -> att(b)))";
  };
  // (Y ∪ {x})⁺ = R  ⇔  no closed Z ⊆ R with Y ∪ {x} ⊆ Z misses an attribute
  // (the closure is the least closed superset, and R itself is closed).
  return MustParse(
      "ex2 Y: " + subset_of_r("Y") + " & " + closed("Y") + " & " + x +
      " notin Y"
      " & ~(ex2 Z: " + subset_of_r("Z") + " & " + closed("Z") +
      " & Y sub Z & " + x + " in Z & (ex1 b: (att(b) & b notin Z)))");
}

FormulaPtr ConnectednessSentence() {
  return MustParse(
      "all2 X: (((ex1 u: u in X) & (all1 u, v: ((u in X & e(u, v)) -> v in X)))"
      " -> (all1 v: v in X))");
}

FormulaPtr HasNeighborQuery(const std::string& free_var) {
  return MustParse("ex1 y: e(" + free_var + ", y)");
}

FormulaPtr IsolatedQuery(const std::string& free_var) {
  return MustParse("~(ex1 y: (e(" + free_var + ", y) | e(y, " + free_var +
                   ")))");
}

FormulaPtr TwoCycleQuery(const std::string& free_var) {
  return MustParse("ex1 y: (e(" + free_var + ", y) & e(y, " + free_var + "))");
}

}  // namespace treedl::mso
