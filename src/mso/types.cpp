#include "mso/types.hpp"

#include <set>

#include "common/logging.hpp"

namespace treedl::mso {

namespace {

// Appends single bits to a packed u64 vector.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint64_t>* out) : out_(out) {}
  void Push(bool bit) {
    if (used_ == 0) {
      out_->push_back(0);
      used_ = 64;
    }
    --used_;
    if (bit) out_->back() |= uint64_t{1} << used_;
  }

 private:
  std::vector<uint64_t>* out_;
  int used_ = 0;
};

// Enumerates all tuples over {0..m-1}^arity in lexicographic order, invoking
// the callback with each.
template <typename Fn>
void ForEachIndexTuple(size_t m, int arity, Fn fn) {
  std::vector<size_t> tuple(static_cast<size_t>(arity), 0);
  if (arity == 0) {
    fn(tuple);
    return;
  }
  while (true) {
    fn(tuple);
    int pos = arity - 1;
    while (pos >= 0 && ++tuple[static_cast<size_t>(pos)] == m) {
      tuple[static_cast<size_t>(pos)] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
}

}  // namespace

TypeId TypeComputer::Intern(std::vector<uint64_t> key) {
  auto it = interned_.find(key);
  if (it != interned_.end()) return it->second;
  TypeId id = next_id_++;
  interned_.emplace(std::move(key), id);
  return id;
}

TypeId TypeComputer::AtomicType(const Structure& a,
                                const std::vector<ElementId>& elems,
                                const std::vector<SmallBitset>& sets) {
  std::vector<uint64_t> key;
  key.push_back(0);  // tag: atomic
  key.push_back(elems.size());
  key.push_back(sets.size());
  // Include the signature shape so types from different signatures never
  // collide.
  key.push_back(static_cast<uint64_t>(a.signature().size()));
  for (PredicateId p = 0; p < a.signature().size(); ++p) {
    key.push_back(static_cast<uint64_t>(a.signature().arity(p)));
  }
  BitWriter bits(&key);
  size_t m = elems.size();
  // Equalities among distinguished elements.
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      bits.Push(elems[i] == elems[j]);
    }
  }
  // Atomic facts over distinguished elements.
  for (PredicateId p = 0; p < a.signature().size(); ++p) {
    int arity = a.signature().arity(p);
    if (m == 0 && arity > 0) continue;
    ForEachIndexTuple(m, arity, [&](const std::vector<size_t>& idx) {
      Tuple tuple;
      tuple.reserve(idx.size());
      for (size_t i : idx) tuple.push_back(elems[i]);
      bits.Push(a.HasFact(p, tuple));
    });
  }
  // Set memberships.
  for (const SmallBitset& set : sets) {
    for (size_t i = 0; i < m; ++i) {
      bits.Push(set.Test(static_cast<int>(elems[i])));
    }
  }
  return Intern(std::move(key));
}

StatusOr<TypeId> TypeComputer::Compute(const Structure& a,
                                       std::vector<ElementId>* elems,
                                       std::vector<SmallBitset>* sets, int k) {
  ++work_;
  if (options_.work_budget != 0 && work_ > options_.work_budget) {
    return Status::ResourceExhausted(
        "type computation exceeded its work budget of " +
        std::to_string(options_.work_budget));
  }
  if (k == 0) return AtomicType(a, *elems, *sets);

  size_t n = a.NumElements();
  if (n >= 25) {
    return Status::OutOfRange(
        "rank-k type computation requires < 25 elements (set moves enumerate "
        "2^n subsets); got " +
        std::to_string(n));
  }
  std::set<TypeId> point_types;
  for (ElementId c = 0; c < n; ++c) {
    elems->push_back(c);
    auto t = Compute(a, elems, sets, k - 1);
    elems->pop_back();
    if (!t.ok()) return t.status();
    point_types.insert(*t);
  }
  std::set<TypeId> set_types;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    sets->push_back(SmallBitset(mask));
    auto t = Compute(a, elems, sets, k - 1);
    sets->pop_back();
    if (!t.ok()) return t.status();
    set_types.insert(*t);
  }

  std::vector<uint64_t> key;
  key.push_back(1);  // tag: composite
  key.push_back(static_cast<uint64_t>(k));
  key.push_back(elems->size());
  key.push_back(sets->size());
  key.push_back(point_types.size());
  for (TypeId t : point_types) key.push_back(static_cast<uint64_t>(t));
  key.push_back(set_types.size());
  for (TypeId t : set_types) key.push_back(static_cast<uint64_t>(t));
  return Intern(std::move(key));
}

StatusOr<TypeId> TypeComputer::ComputeType(const Structure& a,
                                           const std::vector<ElementId>& elems,
                                           int k,
                                           const std::vector<SmallBitset>& sets) {
  if (k < 0) return Status::InvalidArgument("negative quantifier rank");
  for (ElementId e : elems) {
    if (e >= a.NumElements()) {
      return Status::InvalidArgument("distinguished element out of range");
    }
  }
  std::vector<ElementId> mutable_elems = elems;
  std::vector<SmallBitset> mutable_sets = sets;
  return Compute(a, &mutable_elems, &mutable_sets, k);
}

StatusOr<bool> KEquivalent(TypeComputer* computer, const Structure& a,
                           const std::vector<ElementId>& ea, const Structure& b,
                           const std::vector<ElementId>& eb, int k) {
  if (ea.size() != eb.size()) {
    return Status::InvalidArgument(
        "distinguished tuples must have equal length");
  }
  TREEDL_ASSIGN_OR_RETURN(TypeId ta, computer->ComputeType(a, ea, k));
  TREEDL_ASSIGN_OR_RETURN(TypeId tb, computer->ComputeType(b, eb, k));
  return ta == tb;
}

}  // namespace treedl::mso
