// MSO pipeline demo (Thm 4.5 end to end):
//   1. evaluate stock MSO formulas directly on small structures;
//   2. compile a rank-1 unary query over a unary signature into a
//      quasi-guarded monadic datalog program over τ_td;
//   3. run the program on A_td and compare against direct evaluation.
#include <iostream>

#include "datalog/analysis.hpp"
#include "engine/engine.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "mso/evaluator.hpp"
#include "mso/formulas.hpp"
#include "mso/parser.hpp"
#include "mso2dl/mso_to_datalog.hpp"

int main() {
  using namespace treedl;

  // 1. Direct evaluation: 3-colorability as an MSO sentence.
  mso::FormulaPtr three_col = mso::ThreeColorabilitySentence();
  std::cout << "3COL sentence (quantifier depth "
            << mso::QuantifierDepth(*three_col) << "):\n  "
            << mso::ToString(*three_col) << "\n\n";
  for (auto [name, graph] :
       {std::pair<std::string, Graph>{"K3", CompleteGraph(3)},
        {"K4", CompleteGraph(4)},
        {"C5", CycleGraph(5)}}) {
    auto verdict = mso::EvaluateSentence(GraphToStructure(graph), *three_col);
    std::cout << "  " << name << " |= 3COL: "
              << (verdict.ok() ? (*verdict ? "yes" : "no")
                               : verdict.status().ToString())
              << "\n";
  }

  // 2. Generic MSO -> monadic datalog (Thm 4.5) for a rank-1 query over the
  // unary signature {p/1}: "x is marked, and it is not the only mark".
  Signature unary = Signature::Make({{"p", 1}}).value();
  auto phi = mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))");
  mso2dl::Mso2DlOptions options;
  options.width = 1;
  auto compiled = mso2dl::MsoToDatalog(unary, *phi, "x", options);
  if (!compiled.ok()) {
    std::cerr << "construction failed: " << compiled.status() << "\n";
    return 1;
  }
  std::cout << "\nThm 4.5 construction: rank " << compiled->rank << ", "
            << compiled->num_up_types << " bottom-up types, "
            << compiled->num_down_types << " top-down types, "
            << compiled->program.NumRules() << " rules; quasi-guarded: "
            << (datalog::CheckQuasiGuarded(compiled->program).ok() ? "yes"
                                                                   : "no")
            << "\n";

  // 3. Run the same query through an Engine session on a small
  // {p}-structure: the engine compiles via Thm 4.5, builds the τ_td
  // structure from the session decomposition, and evaluates with the
  // configured datalog backend.
  Structure a(unary);
  for (int i = 0; i < 6; ++i) a.AddElement("u" + std::to_string(i));
  (void)a.AddFact(0, {1});
  (void)a.AddFact(0, {4});
  TreeDecomposition td;
  TdNodeId prev = td.AddNode({0, 1});
  for (ElementId e = 1; e + 1 < 6; ++e) prev = td.AddNode({e, e + 1}, prev);

  EngineOptions session_options;
  // Unary structures have an edgeless Gaifman graph, so supply the path
  // decomposition explicitly.
  session_options.decomposition = td;
  Engine session{Structure(a), session_options};
  auto via_engine = session.EvaluateMsoUnary(*phi, "x");
  if (!via_engine.ok()) {
    std::cerr << "engine evaluation failed: " << via_engine.status() << "\n";
    return 1;
  }
  std::cout << "\nφ(x) = p(x) & ∃y (y≠x & p(y)) on {u1, u4 marked}:\n";
  for (ElementId e = 0; e < a.NumElements(); ++e) {
    bool via_datalog = (*via_engine)[e];
    bool direct = mso::EvaluateUnary(a, **phi, "x", e).value_or(false);
    std::cout << "  " << a.ElementName(e) << ": datalog=" << via_datalog
              << " direct=" << direct
              << (via_datalog == direct ? "" : "  MISMATCH!") << "\n";
  }

  // 4. The paper's motivation, demonstrated: the same construction over the
  // binary signature {e/2} state-explodes (budget guards report it).
  mso2dl::Mso2DlOptions tight = options;
  tight.max_types = 256;
  auto exploded = mso2dl::MsoToDatalog(Signature::GraphSignature(),
                                       mso::HasNeighborQuery("x"), "x", tight);
  std::cout << "\nSame construction over τ = {e/2}: "
            << exploded.status().ToString()
            << "\n(this is the state explosion of §1 — the reason §5 uses "
               "hand-crafted programs)\n";
  return 0;
}
