// Static analysis of datalog programs: safety, classification (§2.4),
// monadicity (Def 4.1) and quasi-guardedness (Def 4.3).
#ifndef TREEDL_DATALOG_ANALYSIS_HPP_
#define TREEDL_DATALOG_ANALYSIS_HPP_

#include <vector>

#include "common/status.hpp"
#include "datalog/ast.hpp"

namespace treedl::datalog {

struct ProgramInfo {
  /// Per program-predicate: occurs in some rule head.
  std::vector<bool> intensional;
  /// Every intensional predicate is unary (or zero-ary) — Def 4.1 extended by
  /// the 0-ary decision predicates of §4's discussion.
  bool is_monadic = false;
  /// Per rule: body literal indices in evaluation order. Positive
  /// intensional literals schedule first (so the semi-naive engine's delta
  /// literal lands at plan position 0, where delta batching applies), then
  /// positives greedily by bound-argument count; negatives once fully bound.
  std::vector<std::vector<size_t>> plans;
};

/// Validates safety: ground facts, range-restricted heads, negation applied
/// only to extensional predicates, and a safe evaluation order for every
/// rule. Returns the analysis on success.
StatusOr<ProgramInfo> AnalyzeProgram(const Program& program);

/// Determines, for each rule, a quasi-guard: a positive extensional body atom
/// B such that every variable of the rule occurs in B or is functionally
/// dependent on B (Def 4.3). Functional dependencies follow the τ_td
/// discussion in the proof of Thm 4.5: child1/child2 atoms link their two
/// arguments one-to-one (first/second child and parent determine each other),
/// and a bag atom's node argument determines its element arguments. Returns
/// the guard's body index per rule, or InvalidArgument naming the first rule
/// that has no quasi-guard.
StatusOr<std::vector<size_t>> FindQuasiGuards(const Program& program);

/// Convenience: OK iff FindQuasiGuards succeeds.
Status CheckQuasiGuarded(const Program& program);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_ANALYSIS_HPP_
