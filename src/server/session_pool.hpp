// SessionPool: the fingerprint-keyed Engine cache of treedl::Server.
//
// The paper's amortization story (§5.3: one decomposition, many linear-time
// queries) only pays off when requests for the same structure land on the
// same warm Engine. The pool makes that happen across tenants and requests:
//
//   Acquire(structure) — fingerprint the structure (Engine::FingerprintOf,
//   the same hash that stamps session files), return the resident Engine on
//   a hit, or construct one on a miss. Misses pass admission control first:
//   a max-sessions cap and a global table_memory_budget shared by every
//   resident session (each session is charged its deterministic
//   ResidentArtifactBytes estimate, floored by the structure estimate). When
//   full, idle least-recently-used sessions are evicted; if every resident
//   session is leased out, the request is rejected with kResourceExhausted —
//   the server's E_ADMISSION.
//
//   Warm start — on a miss, if `session_dir` holds a session file for the
//   fingerprint, it is loaded into the fresh Engine before the lease is
//   returned (zero encode/TD/normalize builds on the first query).
//
// Concurrency: all methods are thread-safe, and the slow work of a miss —
// Engine construction plus the warm-start disk read — runs OUTSIDE the pool
// mutex, behind a per-fingerprint build latch: one cold tenant never
// head-of-line-blocks other tenants' acquires, and concurrent acquires of
// the SAME fingerprint build the session exactly once (the waiters are
// served the built session as hits; counters().build_waits counts them).
// Admission reserves the builder's slot and byte estimate up front, so
// concurrent misses cannot overshoot the budget while a build is in flight.
//
// A Lease pins its session with an explicit per-entry lease count (NOT
// shared_ptr::use_count, which also counts Peek copies and is unreliable
// under concurrent lease copies): the count is incremented under the pool
// lock in Acquire and decremented exactly once when the last copy of the
// lease is destroyed (or Release()d). Only sessions with a zero lease count
// are evicted — a leased Engine is never destroyed mid-request.
#ifndef TREEDL_SERVER_SESSION_POOL_HPP_
#define TREEDL_SERVER_SESSION_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "engine/engine.hpp"
#include "engine/options.hpp"

namespace treedl::server {

struct SessionPoolOptions {
  /// Most sessions resident at once (clamped to >= 1); sessions still being
  /// built count against the cap.
  size_t max_sessions = 8;
  /// Global byte budget shared by all resident sessions (0 = unlimited).
  /// Each session is charged max(structure estimate, resident artifacts);
  /// the same value becomes each Engine's per-query table_memory_budget, so
  /// live DP tables obey the ceiling too.
  size_t table_memory_budget = 0;
  /// Directory of session files ("<16-hex-fingerprint>.tdls"). Empty
  /// disables warm start and Save.
  std::string session_dir;
  /// Template for pooled engines (the server fills shared_pool and, when a
  /// global budget is set, table_memory_budget).
  EngineOptions engine_options;
};

struct SessionPoolCounters {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t warm_loads = 0;
  size_t rejections = 0;
  /// Acquires that waited for another thread's in-flight build of the same
  /// fingerprint instead of building a second copy.
  size_t build_waits = 0;
  /// Session files that failed to load (corrupt, truncated, or
  /// fault-injected) and were renamed to "<path>.corrupt"; each quarantined
  /// acquire fell back to a cold build.
  size_t quarantines = 0;
};

class SessionPool {
 public:
  /// What Acquire returns: a shared lease on a resident Engine plus how the
  /// pool satisfied it. Copies share one lease pin; the pool's per-entry
  /// lease count drops when the last copy dies.
  struct Lease {
    std::shared_ptr<Engine> engine;
    uint64_t fingerprint = 0;
    bool hit = false;          // the session was already resident
    bool warm_loaded = false;  // a miss restored from a session file
    size_t artifact_loads = 0;  // artifacts the warm start restored
    /// Drops the lease early: the engine reference and the pool's lease pin
    /// both go, so the session becomes evictable before the Lease object
    /// itself dies.
    void Release() {
      engine.reset();
      pin.reset();
    }
    /// Decrements the entry's lease count when the last copy is destroyed.
    std::shared_ptr<void> pin;
  };

  explicit SessionPool(SessionPoolOptions options);

  /// Hit, warm start, or cold construction — or kResourceExhausted when
  /// admission control cannot make room. Construction and warm-start I/O of
  /// a miss run outside the pool lock (see the header comment).
  StatusOr<Lease> Acquire(const Structure& structure);

  /// Re-measures the budget charge of a resident session against its
  /// engine's ResidentArtifactBytes (call after running requests, which may
  /// have built artifacts). The charge is recomputed, not ratcheted: a
  /// session whose artifacts shrank gives the budget back, with the
  /// admission-time structure estimate as a permanent floor.
  void RefreshCharge(uint64_t fingerprint);

  /// Writes the resident session's artifacts to SessionFilePath(fingerprint).
  Status Save(uint64_t fingerprint, RunStats* stats = nullptr);

  /// The resident engine for `fingerprint`, or null. Does not touch LRU
  /// order, counters, or the lease count (STATS must not perturb eviction).
  std::shared_ptr<Engine> Peek(uint64_t fingerprint) const;

  /// True when `fingerprint` is resident right now — an immediate Acquire of
  /// the same structure would hit without evicting. Side-effect free.
  bool IsResident(uint64_t fingerprint) const;

  /// Outstanding leases on a resident session (0 when idle or not resident).
  size_t ActiveLeases(uint64_t fingerprint) const;

  /// "<session_dir>/<16-hex-fingerprint>.tdls" ("" without a session_dir).
  std::string SessionFilePath(uint64_t fingerprint) const;

  SessionPoolCounters counters() const;
  size_t NumResident() const;
  /// Sum of resident session charges against the global budget.
  size_t ChargedBytes() const;
  /// Resident fingerprints, least recently used first.
  std::vector<uint64_t> LruFingerprints() const;

  const SessionPoolOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<Engine> engine;
    /// Outstanding leases; shared with every Lease pin so the count survives
    /// pool-side eviction races without back-pointers into the pool.
    std::shared_ptr<std::atomic<size_t>> leases;
    size_t estimate = 0;     // admission-time structure estimate (charge floor)
    size_t charge = 0;       // max(estimate, last measured resident bytes)
    uint64_t last_used = 0;  // logical clock tick of the last Acquire
  };

  /// Builds a pinned lease for `entry` (caller holds mu_).
  Lease MakeLeaseLocked(Entry& entry, uint64_t fingerprint, bool hit,
                        bool warm_loaded, size_t artifact_loads);
  size_t ChargedBytesLocked() const;
  /// Evicts the least-recently-used idle session; false when every resident
  /// session is leased out.
  bool EvictOneLocked();

  /// One in-flight cold build. An entry holds a session slot and its byte
  /// estimate against the budget while the builder runs unlocked; `waiters`
  /// counts the distinct acquires blocked on this build so a failure can be
  /// delivered to exactly that many threads.
  struct BuildState {
    size_t estimate = 0;
    size_t waiters = 0;
  };
  /// A failed build's status, owed to the `remaining` threads that were
  /// waiting when it failed. Waiters consume one share each and return the
  /// failure; acquires that never waited skip the record entirely — so a
  /// fresh request retries the build exactly once, and nobody hangs or
  /// retry-storms.
  struct BuildFailure {
    Status status = Status::OK();
    size_t remaining = 0;
  };

  SessionPoolOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> sessions_;
  std::unordered_map<uint64_t, BuildState> builds_;
  std::unordered_map<uint64_t, BuildFailure> build_failures_;
  std::condition_variable build_cv_;
  uint64_t clock_ = 0;
  SessionPoolCounters counters_;
};

}  // namespace treedl::server

#endif  // TREEDL_SERVER_SESSION_POOL_HPP_
