#include "td/td_io.hpp"

#include <algorithm>
#include <sstream>

namespace treedl {

ElementNamer DefaultNamer() {
  return [](ElementId e) { return "e" + std::to_string(e); };
}

ElementNamer NamerFor(const Structure& structure) {
  // Capture names by value so the namer outlives the structure.
  std::vector<std::string> names;
  names.reserve(structure.NumElements());
  for (ElementId e = 0; e < structure.NumElements(); ++e) {
    names.push_back(structure.ElementName(e));
  }
  return [names = std::move(names)](ElementId e) {
    return e < names.size() ? names[e] : ("e" + std::to_string(e));
  };
}

namespace {

std::string BagToString(const std::vector<ElementId>& bag,
                        const ElementNamer& namer) {
  std::string out = "{";
  for (size_t i = 0; i < bag.size(); ++i) {
    if (i > 0) out += ", ";
    out += namer(bag[i]);
  }
  out += "}";
  return out;
}

std::string TupleToString(const std::vector<ElementId>& bag,
                          const ElementNamer& namer) {
  std::string out = "(";
  for (size_t i = 0; i < bag.size(); ++i) {
    if (i > 0) out += ", ";
    out += namer(bag[i]);
  }
  out += ")";
  return out;
}

// Generic indented tree renderer over (root, children(id), label(id)).
template <typename Children, typename Label>
std::string RenderGeneric(TdNodeId root, Children children, Label label) {
  std::ostringstream out;
  // Stack of (node, depth); children pushed in reverse for natural order.
  std::vector<std::pair<TdNodeId, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) out << "  ";
    out << label(id) << "\n";
    const auto& kids = children(id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out.str();
}

}  // namespace

std::string RenderTree(const TreeDecomposition& td, const ElementNamer& namer) {
  if (td.Empty()) return "(empty)\n";
  return RenderGeneric(
      td.root(),
      [&](TdNodeId id) -> const std::vector<TdNodeId>& {
        return td.node(id).children;
      },
      [&](TdNodeId id) {
        return "n" + std::to_string(id) + " " + BagToString(td.Bag(id), namer);
      });
}

std::string RenderTree(const NormalizedTreeDecomposition& ntd,
                       const ElementNamer& namer) {
  if (ntd.NumNodes() == 0) return "(empty)\n";
  return RenderGeneric(
      ntd.root(),
      [&](TdNodeId id) -> const std::vector<TdNodeId>& {
        return ntd.node(id).children;
      },
      [&](TdNodeId id) {
        const NormNode& n = ntd.node(id);
        std::string label = "n" + std::to_string(id) + " [" +
                            NormNodeKindName(n.kind);
        if (n.kind == NormNodeKind::kIntroduce ||
            n.kind == NormNodeKind::kForget) {
          label += " " + namer(n.element);
        }
        label += "] " + BagToString(n.bag, namer);
        return label;
      });
}

std::string RenderTree(const TupleNormalizedTd& ntd, const ElementNamer& namer) {
  if (ntd.NumNodes() == 0) return "(empty)\n";
  return RenderGeneric(
      ntd.root(),
      [&](TdNodeId id) -> const std::vector<TdNodeId>& {
        return ntd.node(id).children;
      },
      [&](TdNodeId id) {
        const TupleNode& n = ntd.node(id);
        return "n" + std::to_string(id) + " [" +
               std::string(TupleNodeKindName(n.kind)) + "] " +
               TupleToString(n.bag, namer);
      });
}

std::string ToDot(const TreeDecomposition& td, const ElementNamer& namer) {
  std::ostringstream out;
  out << "graph td {\n  node [shape=box];\n";
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    out << "  n" << id << " [label=\"" << BagToString(td.Bag(id), namer)
        << "\"];\n";
  }
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    for (TdNodeId c : td.node(id).children) {
      out << "  n" << id << " -- n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

// --- Binary serialization ---------------------------------------------------

void SerializeTreeDecomposition(const TreeDecomposition& td,
                                BinaryWriter* writer) {
  std::vector<TdNodeId> order = td.PreOrder();
  std::vector<int32_t> new_id(td.NumNodes(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    new_id[static_cast<size_t>(order[i])] = static_cast<int32_t>(i);
  }
  writer->U64(order.size());
  for (TdNodeId id : order) {
    const TdNode& node = td.node(id);
    writer->I32(node.parent == kNoTdNode
                    ? -1
                    : new_id[static_cast<size_t>(node.parent)]);
    writer->Vec32(node.bag);
  }
}

StatusOr<TreeDecomposition> DeserializeTreeDecomposition(BinaryReader* reader) {
  size_t num_nodes = 0;
  TREEDL_RETURN_IF_ERROR(reader->Length(&num_nodes, 4 + 8));
  TreeDecomposition td;
  for (size_t i = 0; i < num_nodes; ++i) {
    int32_t parent = 0;
    std::vector<ElementId> bag;
    TREEDL_RETURN_IF_ERROR(reader->I32(&parent));
    TREEDL_RETURN_IF_ERROR(reader->Vec32(&bag));
    // Pre-order: the root comes first, every other parent earlier in the
    // stream. Anything else is corruption (and would trip AddNode's CHECKs).
    if (i == 0 ? parent != -1
               : (parent < 0 || static_cast<size_t>(parent) >= i)) {
      return Status::ParseError("tree decomposition: invalid parent id " +
                                std::to_string(parent) + " at node " +
                                std::to_string(i));
    }
    td.AddNode(std::move(bag), i == 0 ? kNoTdNode : parent);
  }
  return td;
}

void SerializeNormalizedTd(const NormalizedTreeDecomposition& ntd,
                           BinaryWriter* writer) {
  std::vector<TdNodeId> order = ntd.PostOrder();
  std::vector<int32_t> new_id(ntd.NumNodes(), -1);
  for (size_t i = 0; i < order.size(); ++i) {
    new_id[static_cast<size_t>(order[i])] = static_cast<int32_t>(i);
  }
  writer->U64(order.size());
  for (TdNodeId id : order) {
    const NormNode& node = ntd.node(id);
    writer->U8(static_cast<uint8_t>(node.kind));
    writer->U32(static_cast<uint32_t>(node.element));
    writer->Vec32(node.bag);
    std::vector<int32_t> children;
    children.reserve(node.children.size());
    for (TdNodeId c : node.children) {
      children.push_back(new_id[static_cast<size_t>(c)]);
    }
    writer->Vec32(children);
  }
}

StatusOr<NormalizedTreeDecomposition> DeserializeNormalizedTd(
    BinaryReader* reader) {
  size_t num_nodes = 0;
  TREEDL_RETURN_IF_ERROR(reader->Length(&num_nodes, 1 + 4 + 8 + 8));
  NormalizedTreeDecomposition ntd;
  std::vector<bool> has_parent(num_nodes, false);
  for (size_t i = 0; i < num_nodes; ++i) {
    uint8_t kind = 0;
    NormNode node;
    TREEDL_RETURN_IF_ERROR(reader->U8(&kind));
    if (kind > static_cast<uint8_t>(NormNodeKind::kCopy)) {
      return Status::ParseError("normalized td: unknown node kind " +
                                std::to_string(kind));
    }
    node.kind = static_cast<NormNodeKind>(kind);
    uint32_t element = 0;
    TREEDL_RETURN_IF_ERROR(reader->U32(&element));
    node.element = static_cast<ElementId>(element);
    TREEDL_RETURN_IF_ERROR(reader->Vec32(&node.bag));
    // Bags are sorted sets; the DP transitions binary-search them.
    if (!std::is_sorted(node.bag.begin(), node.bag.end()) ||
        std::adjacent_find(node.bag.begin(), node.bag.end()) !=
            node.bag.end()) {
      return Status::ParseError("normalized td: bag of node " +
                                std::to_string(i) + " is not a sorted set");
    }
    std::vector<int32_t> children;
    TREEDL_RETURN_IF_ERROR(reader->Vec32(&children));
    node.children.reserve(children.size());
    for (int32_t c : children) {
      // Post-order: children precede their parent, each claimed once.
      if (c < 0 || static_cast<size_t>(c) >= i || has_parent[static_cast<size_t>(c)]) {
        return Status::ParseError("normalized td: invalid child id " +
                                  std::to_string(c) + " at node " +
                                  std::to_string(i));
      }
      has_parent[static_cast<size_t>(c)] = true;
      node.children.push_back(static_cast<TdNodeId>(c));
    }
    ntd.AddNode(std::move(node));
  }
  // Every node but the last must have been claimed as a child — otherwise
  // the stream encodes a forest, which PreOrder/ValidateNormalized CHECK
  // against rather than reporting.
  for (size_t i = 0; i + 1 < num_nodes; ++i) {
    if (!has_parent[i]) {
      return Status::ParseError("normalized td: node " + std::to_string(i) +
                                " is disconnected from the root");
    }
  }
  if (num_nodes > 0) {
    ntd.SetRoot(static_cast<TdNodeId>(num_nodes - 1));
  }
  TREEDL_RETURN_IF_ERROR(ValidateNormalized(ntd));
  return ntd;
}

}  // namespace treedl
