// Concrete pipeline passes for the §5 preparation flows.
//
//   ValidateStructurePass  — §2.2 conditions against a τ-structure
//   ValidateGraphPass      — §2.2 conditions against a graph
//   RhsClosurePass         — §5.2 bag closure: add rhs(f) to every bag with f
//   ReRootAtElementPass    — re-root at a bag containing the query element
//   NormalizePass          — modified normal form (Fig. 4) per state options
//
// Inline so that core/ can assemble pipelines without linking the engine
// library; the heavy lifting stays in the td/ and core/ functions each pass
// delegates to.
#ifndef TREEDL_ENGINE_PASSES_HPP_
#define TREEDL_ENGINE_PASSES_HPP_

#include <string>
#include <utility>

#include "core/primality_internal.hpp"
#include "engine/pipeline.hpp"
#include "graph/graph.hpp"
#include "td/improve.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"
#include "td/validate.hpp"

namespace treedl::engine {

/// Checks the three tree-decomposition conditions against state.structure.
class ValidateStructurePass final : public Pass {
 public:
  std::string name() const override { return "validate-structure"; }
  Status apply(PipelineState& state) const override {
    if (state.structure == nullptr) {
      return Status::InvalidArgument("no structure to validate against");
    }
    return ValidateForStructure(*state.structure, state.td);
  }
};

/// Graph flavor of validation (edges instead of facts).
class ValidateGraphPass final : public Pass {
 public:
  explicit ValidateGraphPass(const Graph* graph) : graph_(graph) {}
  std::string name() const override { return "validate-graph"; }
  Status apply(PipelineState& state) const override {
    return ValidateForGraph(*graph_, state.td);
  }

 private:
  const Graph* graph_;
};

/// §5.2 preprocessing: extends every bag containing an FD element with that
/// FD's rhs attribute, establishing the "f in bag ⇒ rhs(f) in bag" invariant
/// the Fig. 6 transitions rely on.
class RhsClosurePass final : public Pass {
 public:
  RhsClosurePass(const SchemaEncoding* encoding,
                 const core::internal::PrimalityContext* context)
      : encoding_(encoding), context_(context) {}
  std::string name() const override { return "rhs-closure"; }
  Status apply(PipelineState& state) const override {
    state.td = core::internal::CloseBagsForRhs(state.td, *encoding_, *context_);
    return Status::OK();
  }

 private:
  const SchemaEncoding* encoding_;
  const core::internal::PrimalityContext* context_;
};

/// Re-roots the working decomposition at a bag containing `element` (the §5.2
/// decision algorithm reads off success at such a root).
class ReRootAtElementPass final : public Pass {
 public:
  explicit ReRootAtElementPass(ElementId element) : element_(element) {}
  std::string name() const override { return "re-root"; }
  Status apply(PipelineState& state) const override {
    TdNodeId target = state.td.FindNodeContaining(element_);
    if (target == kNoTdNode) {
      return Status::InvalidArgument(
          "query element not covered by the decomposition");
    }
    return state.td.ReRoot(target);
  }

 private:
  ElementId element_;
};

/// The decomposition-quality width-reduction pass (td/improve.hpp): greedily
/// contracts tree edges with nested endpoint bags before normalization,
/// guarded by the (width, NormalizedDpCost) objective — the merges are kept
/// only when the normal form built downstream gets no wider and no more
/// expensive, and reverted otherwise. Preserves validity and the rhs-closure
/// invariant (the merged bag is always one of the original bags).
class WidthReducePass final : public Pass {
 public:
  std::string name() const override { return "width-reduce"; }
  Status apply(PipelineState& state) const override {
    return CostGuardedWidthReduce(&state.td).status();
  }
};

/// Transforms the working decomposition into modified normal form (Fig. 4),
/// honoring state.normalize_options (leaf coverage, branch copies, forget
/// priority).
class NormalizePass final : public Pass {
 public:
  std::string name() const override { return "normalize"; }
  Status apply(PipelineState& state) const override {
    auto normalized = Normalize(state.td, state.normalize_options);
    if (!normalized.ok()) return normalized.status();
    state.normalized = std::move(normalized).value();
    return Status::OK();
  }
};

/// Partitions the normalized decomposition into independent subtree shards
/// for the parallel DP driver (core::RunTreeDpSharded). Cost-aware: shards
/// are balanced by the EstimateNodeCost state-count model, not node count,
/// so wide-bag regions near the root no longer dominate the critical path.
/// Runs after NormalizePass; deposits the sharding in state.sharding.
class ShardBagsPass final : public Pass {
 public:
  explicit ShardBagsPass(size_t target_shards) : target_(target_shards) {}
  std::string name() const override { return "shard-bags"; }
  Status apply(PipelineState& state) const override {
    if (!state.normalized.has_value()) {
      return Status::InvalidArgument(
          "shard-bags requires a normalized decomposition");
    }
    state.sharding = ComputeBagShardingByCost(*state.normalized, target_);
    return Status::OK();
  }

 private:
  size_t target_;
};

/// Validate-against-graph + normalize as one pipeline — the shared
/// preparation of the graph DPs (3-coloring, vertex cover, independent set,
/// dominating set).
inline StatusOr<NormalizedTreeDecomposition> PrepareForGraph(
    const Graph& graph, const TreeDecomposition& td,
    RunStats* stats = nullptr) {
  PipelineState state;
  state.td = td;
  PassPipeline pipeline;
  pipeline.Emplace<ValidateGraphPass>(&graph).Emplace<NormalizePass>();
  TREEDL_RETURN_IF_ERROR(pipeline.Run(state, stats));
  return *std::move(state.normalized);
}

}  // namespace treedl::engine

#endif  // TREEDL_ENGINE_PASSES_HPP_
