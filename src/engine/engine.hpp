// treedl::Engine — the session API of the library.
//
// The paper's headline result (§5.3) is that *one* tree decomposition of the
// encoded input supports many queries in linear time each. The Engine makes
// that concrete: constructed from a Schema or a τ-structure plus
// EngineOptions, it lazily computes and caches the schema encoding, Gaifman
// graph, tree decomposition, rhs-closed decomposition, normalized forms, and
// the τ_td structure, then serves batched queries through one surface:
//
//   Engine engine(Schema::PaperExampleSchema());
//   engine.IsPrime(a);                       // §5.2 decision
//   engine.AllPrimes();                      // §5.3 enumeration (memoized)
//   engine.EvaluateMso(sentence);            // Thm 4.5 route or direct
//   engine.EvaluateDatalog(program);         // naive/seminaive/grounded
//   engine.Solve(Engine::Problem::kThreeColor);  // §5.1 and friends
//
// Every query reports a RunStats (build/cache counters, DP and fixpoint
// work, optional per-pass timings); CumulativeStats() aggregates the session.
// The deprecated free functions (core::IsPrimeViaTd(schema, a), ...) forward
// into a one-shot Engine, so they pay encoding + decomposition on every call
// — the quadratic pattern §5.3 argues against.
#ifndef TREEDL_ENGINE_ENGINE_HPP_
#define TREEDL_ENGINE_ENGINE_HPP_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/primality_internal.hpp"
#include "datalog/ast.hpp"
#include "datalog/tau_td.hpp"
#include "engine/options.hpp"
#include "engine/run_stats.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "structure/structure.hpp"
#include "td/normalize.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

class Engine {
 public:
  /// Graph problems served by Solve() on the session's Gaifman graph (for a
  /// {e/2} session built with FromGraph, that *is* the input graph).
  enum class Problem {
    kThreeColor,       // §5.1 decision (+ witness when extract_witness)
    kThreeColorCount,  // counting-semiring extension
    kVertexCover,      // minimum vertex cover size
    kIndependentSet,   // maximum independent set size
    kDominatingSet,    // minimum dominating set size
  };

  struct SolveResult {
    /// kThreeColor: whether 3-colorable. Optimization problems: always true.
    bool feasible = false;
    /// kVertexCover / kIndependentSet / kDominatingSet: the optimal size.
    size_t optimum = 0;
    /// kThreeColorCount: number of proper 3-colorings.
    uint64_t count = 0;
    /// kThreeColor: a proper coloring when feasible and extract_witness.
    std::optional<std::vector<int>> witness;
  };

  /// Schema session: primality queries (plus datalog/MSO over the encoding).
  explicit Engine(Schema schema, EngineOptions options = {});
  /// Structure session: MSO/datalog/graph queries over an arbitrary
  /// τ-structure.
  explicit Engine(Structure structure, EngineOptions options = {});
  /// Graph session: stores the {e/2} encoding of `graph`.
  static Engine FromGraph(const Graph& graph, EngineOptions options = {});

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Primality (schema sessions only) -----------------------------------

  /// §5.2 decision: is attribute `a` prime? Reuses the cached encoding and
  /// decomposition; re-roots and normalizes per query (linear). After
  /// AllPrimes() has run, answers O(1) from the memoized enumeration.
  StatusOr<bool> IsPrime(AttributeId a, RunStats* stats = nullptr);

  /// §5.3 enumeration: all prime attributes in one two-pass run. The result
  /// is memoized; subsequent calls are cache hits.
  StatusOr<std::vector<bool>> AllPrimes(RunStats* stats = nullptr);

  // --- MSO -----------------------------------------------------------------

  /// Evaluates an MSO sentence on the session structure. Route per
  /// EngineOptions::mso_strategy: compile through Thm 4.5 into the selected
  /// datalog backend over the cached τ_td structure, or evaluate directly.
  StatusOr<bool> EvaluateMso(const mso::FormulaPtr& sentence,
                             RunStats* stats = nullptr);

  /// Unary MSO query φ(x): membership vector over the session structure's
  /// elements.
  StatusOr<std::vector<bool>> EvaluateMsoUnary(const mso::FormulaPtr& phi,
                                               const std::string& free_var,
                                               RunStats* stats = nullptr);

  // --- Datalog -------------------------------------------------------------

  /// Evaluates `program` with the session structure as EDB, via the selected
  /// backend (EngineOptions::backend, overridable per call).
  StatusOr<Structure> EvaluateDatalog(const datalog::Program& program,
                                      RunStats* stats = nullptr);
  StatusOr<Structure> EvaluateDatalog(const datalog::Program& program,
                                      DatalogBackend backend,
                                      RunStats* stats = nullptr);

  // --- Graph DPs -----------------------------------------------------------

  StatusOr<SolveResult> Solve(Problem problem, RunStats* stats = nullptr);

  // --- Session artifacts ---------------------------------------------------

  /// The session schema, or null for structure sessions.
  const Schema* schema() const { return schema_.get(); }
  const EngineOptions& options() const { return options_; }

  /// The session τ-structure (encodes the schema lazily on first use).
  StatusOr<const Structure*> structure(RunStats* stats = nullptr);
  /// The cached raw decomposition (built and validated on first use).
  StatusOr<const TreeDecomposition*> Decomposition(RunStats* stats = nullptr);
  /// Width of the session decomposition.
  StatusOr<int> Width(RunStats* stats = nullptr);

  /// Aggregate of every RunStats this engine produced.
  const RunStats& CumulativeStats() const { return cumulative_; }
  void ResetCumulativeStats() { cumulative_ = RunStats{}; }

 private:
  StatusOr<const SchemaEncoding*> EnsureEncoding(RunStats* stats);
  StatusOr<const Structure*> EnsureStructure(RunStats* stats);
  StatusOr<const Graph*> EnsureGaifman(RunStats* stats);
  StatusOr<const TreeDecomposition*> EnsureTd(RunStats* stats);
  StatusOr<const core::internal::PrimalityContext*> EnsurePrimality(
      RunStats* stats);
  StatusOr<const TreeDecomposition*> EnsureClosedTd(RunStats* stats);
  StatusOr<const NormalizedTreeDecomposition*> EnsureEnumNtd(RunStats* stats);
  StatusOr<const NormalizedTreeDecomposition*> EnsurePlainNtd(RunStats* stats);
  StatusOr<const datalog::TauTdEncoding*> EnsureTauTd(RunStats* stats);
  /// True when the MSO query must be answered by direct quantifier
  /// expansion: the kDirect strategy, or a session width < 1 (Thm 4.5 needs
  /// width >= 1).
  StatusOr<bool> UseDirectMso(RunStats* stats);
  /// Thm 4.5 route: compile (sentence form when free_var is null), build the
  /// τ_td structure, evaluate with the configured backend. Returns the
  /// derived structure with the "phi" predicate populated.
  StatusOr<Structure> RunCompiledMso(const mso::FormulaPtr& phi,
                                     const std::string* free_var,
                                     RunStats* stats);
  void Record(const RunStats& stats) { cumulative_.Accumulate(stats); }

  EngineOptions options_;
  // Owned inputs (unique_ptr keeps references inside cached artifacts stable
  // across moves).
  std::unique_ptr<Schema> schema_;
  std::unique_ptr<Structure> owned_structure_;
  // Cached artifacts, built lazily.
  std::unique_ptr<SchemaEncoding> encoding_;
  std::unique_ptr<core::internal::PrimalityContext> primality_;
  std::optional<Graph> gaifman_;
  std::optional<TreeDecomposition> td_;
  std::optional<TreeDecomposition> closed_td_;
  std::optional<NormalizedTreeDecomposition> enum_ntd_;
  std::optional<NormalizedTreeDecomposition> plain_ntd_;
  std::optional<datalog::TauTdEncoding> tau_td_;
  std::optional<std::vector<bool>> primes_;
  RunStats cumulative_;
};

}  // namespace treedl

#endif  // TREEDL_ENGINE_ENGINE_HPP_
