// Elimination orders and their induced tree decompositions.
//
// Any permutation π of the vertices yields a tree decomposition: eliminate
// vertices in order, each elimination forms the bag {v} ∪ N_current(v) and
// turns the neighborhood into a clique. The width of the best order equals the
// treewidth. This is the engine under the min-degree / min-fill heuristics.
#ifndef TREEDL_TD_ELIMINATION_ORDER_HPP_
#define TREEDL_TD_ELIMINATION_ORDER_HPP_

#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

/// Builds the tree decomposition induced by eliminating `order` (a permutation
/// of all vertices of `graph`). The result is valid for `graph` and its width
/// is the order's induced width.
StatusOr<TreeDecomposition> DecompositionFromOrder(
    const Graph& graph, const std::vector<VertexId>& order);

/// The induced width of an elimination order (without building the TD).
StatusOr<int> OrderWidth(const Graph& graph, const std::vector<VertexId>& order);

}  // namespace treedl

#endif  // TREEDL_TD_ELIMINATION_ORDER_HPP_
