#include <gtest/gtest.h>

#include <variant>

#include "core/program_listings.hpp"
#include "core/tree_dp.hpp"
#include "graph/generators.hpp"
#include "td/heuristics.hpp"

#include "test_util.hpp"

namespace treedl::core {
namespace {

// Toy problem exercising every hook: a single "unit" state whose value counts
// the vertices of the subtree (each vertex counted once, at leaves and
// introduces). Copy keeps counts, join adds and subtracts the shared bag.
struct UnitState {
  size_t bag_size = 0;
  bool operator==(const UnitState&) const = default;
  size_t hash() const { return bag_size; }
};

struct CountProblem {
  using State = UnitState;
  using Value = size_t;
  using Emit = std::function<void(State, Value)>;

  void Leaf(const std::vector<ElementId>& bag, const Emit& emit) const {
    emit(UnitState{bag.size()}, bag.size());
  }
  void Introduce(const std::vector<ElementId>& bag, ElementId, const State&,
                 const Value& value, const Emit& emit) const {
    emit(UnitState{bag.size()}, value + 1);
  }
  void Forget(const std::vector<ElementId>& bag, ElementId, const State&,
              const Value& value, const Emit& emit) const {
    emit(UnitState{bag.size()}, value);
  }
  UnitState KeyOf(const State& s) const { return s; }
  void Join(const std::vector<ElementId>& bag, const State&, const Value& va,
            const State&, const Value& vb, const Emit& emit) const {
    emit(UnitState{bag.size()}, va + vb - bag.size());
  }
  Value Merge(const Value& a, const Value& b) const {
    // Both derivations must agree for this deterministic problem.
    EXPECT_EQ(a, b);
    return a;
  }
};

TEST(TreeDpTest, CountsVerticesOnRandomDecompositions) {
  Rng rng(TestSeed());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomPartialKTree(6 + trial, 2, 0.7, &rng);
    auto td = Decompose(g);
    ASSERT_TRUE(td.ok());
    NormalizeOptions options;
    options.ensure_leaf_coverage = trial % 2 == 0;
    options.copy_above_branches = trial % 3 == 0;
    auto ntd = Normalize(*td, options);
    ASSERT_TRUE(ntd.ok());
    CountProblem problem;
    DpStats stats;
    auto table = RunTreeDp(*ntd, &problem, &stats);
    const auto& root = table.at(ntd->root());
    ASSERT_EQ(root.size(), 1u);
    EXPECT_EQ(root.begin()->second, g.NumVertices());
    EXPECT_GT(stats.total_states, 0u);
    EXPECT_GE(stats.max_states_per_node, 1u);
  }
}

TEST(TreeDpTest, SingleNodeDecomposition) {
  TreeDecomposition td;
  td.AddNode({0, 1, 2});
  auto ntd = Normalize(td);
  ASSERT_TRUE(ntd.ok());
  CountProblem problem;
  auto table = RunTreeDp(*ntd, &problem);
  EXPECT_EQ(table.at(ntd->root()).begin()->second, 3u);
}

TEST(ProgramListingsTest, ListingsPresent) {
  // The listings are documentation artifacts; sanity-check the key rules.
  const std::string& fig5 = ThreeColorabilityProgramListing();
  EXPECT_NE(fig5.find("solve(s, R, G, B)"), std::string::npos);
  EXPECT_NE(fig5.find("branch node"), std::string::npos);
  EXPECT_NE(fig5.find("success <- root(s)"), std::string::npos);
  const std::string& fig6 = PrimalityProgramListing();
  EXPECT_NE(fig6.find("solve(s, Y, FY, Co, DC, FC)"), std::string::npos);
  EXPECT_NE(fig6.find("unique(DC1, DC2, FC)"), std::string::npos);
  const std::string& enum_listing = MonadicPrimalityProgramListing();
  EXPECT_NE(enum_listing.find("prime(a)"), std::string::npos);
  EXPECT_NE(enum_listing.find("solveDown"), std::string::npos);
}

}  // namespace
}  // namespace treedl::core
