#include "graph/generators.hpp"

#include "common/logging.hpp"

namespace treedl {

Graph PathGraph(size_t n) {
  Graph g(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

Graph CycleGraph(size_t n) {
  Graph g = PathGraph(n);
  if (n >= 3) g.AddEdge(static_cast<VertexId>(n - 1), 0);
  return g;
}

Graph CompleteGraph(size_t n) {
  Graph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  return g;
}

Graph GridGraph(size_t rows, size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](size_t r, size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph PetersenGraph() {
  Graph g(10);
  // Outer 5-cycle 0..4, inner 5-cycle (pentagram) 5..9, spokes i -- i+5.
  for (VertexId i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5);
    g.AddEdge(i + 5, ((i + 2) % 5) + 5);
    g.AddEdge(i, i + 5);
  }
  return g;
}

Graph RandomKTree(size_t n, int k, Rng* rng) {
  TREEDL_CHECK(k >= 1);
  TREEDL_CHECK(n >= static_cast<size_t>(k) + 1)
      << "k-tree needs at least k+1 vertices";
  Graph g(n);
  // Seed clique K_{k+1}.
  for (int i = 0; i <= k; ++i) {
    for (int j = i + 1; j <= k; ++j) {
      g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  // Track the k-cliques available for attachment. Each new vertex v attached
  // to clique C spawns k+1 new k-cliques (C - {c} + {v} for c in C, plus C
  // stays available); keeping all of them gives the uniform-ish shape used in
  // the literature.
  std::vector<std::vector<VertexId>> cliques;
  std::vector<VertexId> seed;
  for (int i = 0; i <= k; ++i) seed.push_back(static_cast<VertexId>(i));
  for (int omit = 0; omit <= k; ++omit) {
    std::vector<VertexId> c;
    for (int i = 0; i <= k; ++i) {
      if (i != omit) c.push_back(seed[static_cast<size_t>(i)]);
    }
    cliques.push_back(std::move(c));
  }
  for (size_t v = static_cast<size_t>(k) + 1; v < n; ++v) {
    const std::vector<VertexId>& attach = cliques[rng->UniformIndex(cliques.size())];
    std::vector<VertexId> chosen = attach;  // copy before cliques reallocates
    for (VertexId u : chosen) g.AddEdge(static_cast<VertexId>(v), u);
    for (size_t omit = 0; omit < chosen.size(); ++omit) {
      std::vector<VertexId> c;
      for (size_t i = 0; i < chosen.size(); ++i) {
        if (i != omit) c.push_back(chosen[i]);
      }
      c.push_back(static_cast<VertexId>(v));
      cliques.push_back(std::move(c));
    }
  }
  return g;
}

Graph RandomPartialKTree(size_t n, int k, double keep_probability, Rng* rng) {
  Graph full = RandomKTree(n, k, rng);
  Graph g(n);
  for (auto [u, v] : full.Edges()) {
    if (rng->Bernoulli(keep_probability)) g.AddEdge(u, v);
  }
  return g;
}

Graph RandomGnp(size_t n, double p, Rng* rng) {
  Graph g(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(p)) {
        g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
      }
    }
  }
  return g;
}

}  // namespace treedl
