// FactStore: the columnar working database of datalog evaluation.
//
// Each relation stores one column vector per argument position (ElementId
// values in row-insertion order), a full-tuple dedup index, and a set of
// pow2 open-addressing hash indexes keyed by *bound pattern* — the bitmask
// of argument positions a join step has bound when it probes the relation.
// Every array lives in the relation's own bump arena (common/arena.hpp via
// common/arena_vec.hpp), following the FlatTable layout of the DP side:
// dense records plus a power-of-two slot array, one arena block per growth
// step, whole-relation release in O(1).
//
// Index buckets chain matching rows in insertion order (head/tail plus a
// per-row `next` link), so every enumeration — indexed or full scan — yields
// rows in exactly the relation's insertion order. That property is what
// keeps the compiled executors bit-identical to the interpreted oracle and
// to themselves at any thread count: a stronger index only skips
// non-matching rows, it never reorders the matches.
//
// Freeze protocol (unchanged from the single-column predecessor): the
// parallel fixpoint pre-builds, via EnsureIndex, every (predicate, pattern)
// index its compiled plans can probe before a round starts, so Probe is a
// pure read while tasks share the store across threads; Add maintains all
// built indexes between rounds.
#ifndef TREEDL_DATALOG_DATABASE_HPP_
#define TREEDL_DATALOG_DATABASE_HPP_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/arena.hpp"
#include "common/arena_vec.hpp"
#include "datalog/ast.hpp"
#include "structure/structure.hpp"

namespace treedl::datalog {

inline constexpr ElementId kUnbound = std::numeric_limits<ElementId>::max();

/// A partial assignment of program variables to element ids.
using Binding = std::vector<ElementId>;

class FactStore {
 public:
  /// Row chain terminator / "no match" sentinel.
  static constexpr uint32_t kNoRow = std::numeric_limits<uint32_t>::max();

  FactStore() = default;
  /// One columnar relation per predicate of `sig`, with matching arities.
  explicit FactStore(const Signature& sig);

  FactStore(FactStore&&) = default;
  FactStore& operator=(FactStore&&) = default;
  FactStore(const FactStore&) = delete;
  FactStore& operator=(const FactStore&) = delete;

  /// Adds a tuple; returns true iff it was new. Maintains every built index.
  bool Add(PredicateId p, const Tuple& t);

  bool Contains(PredicateId p, const Tuple& t) const;

  size_t NumTuples(PredicateId p) const {
    return relations_[static_cast<size_t>(p)].num_rows;
  }
  int Arity(PredicateId p) const {
    return relations_[static_cast<size_t>(p)].arity;
  }
  size_t TotalFacts() const { return total_; }

  /// The `pos`-th argument of row `row` of relation `p` (columnar access).
  ElementId At(PredicateId p, int pos, uint32_t row) const {
    return relations_[static_cast<size_t>(p)]
        .columns[static_cast<size_t>(pos)][row];
  }

  /// Materializes one row (used when a caller needs an owning Tuple).
  Tuple Row(PredicateId p, uint32_t row) const;

  /// Row id of the (unique) tuple equal to `t`, or kNoRow. The ranged
  /// containment primitive of fully-bound delta steps.
  uint32_t FindRow(PredicateId p, const Tuple& t) const;

  /// Builds the (p, mask) bound-pattern index now if absent. `mask` bit i
  /// set = argument position i is part of the probe key. mask 0 (full scan)
  /// and fully-bound masks need no index and are ignored. The parallel
  /// fixpoint pre-builds every index its compiled plans could probe, so
  /// Probe is a pure read while rounds share the store across threads.
  void EnsureIndex(PredicateId p, uint32_t mask);

  /// First row whose mask-positions equal `key` (the bound values in
  /// ascending position order), or kNoRow. The (p, mask) index is built on
  /// first use; walk the chain with NextRow. Rows arrive in insertion order.
  uint32_t Probe(PredicateId p, uint32_t mask, const ElementId* key);

  /// Successor of `row` in the probed chain of the (p, mask) index.
  uint32_t NextRow(PredicateId p, uint32_t mask, uint32_t row) const;

  /// Arena bytes backing relation `p` (columns + indexes).
  size_t MemoryBytes(PredicateId p) const {
    return relations_[static_cast<size_t>(p)].arena.TotalBytes();
  }

 private:
  struct Bucket {
    size_t hash = 0;
    uint32_t head = kNoRow;
    uint32_t tail = kNoRow;
  };
  /// One bound-pattern hash index: pow2 slot array over buckets, buckets
  /// chain rows in insertion order through `next`.
  struct PatternIndex {
    uint32_t mask = 0;
    ArenaVec<uint32_t> slots;  // bucket id + 1; 0 = empty
    ArenaVec<Bucket> buckets;
    ArenaVec<uint32_t> next;  // per covered row
  };
  struct Relation {
    int arity = 0;
    uint32_t num_rows = 0;
    uint32_t full_mask = 0;
    Arena arena;
    std::vector<ArenaVec<ElementId>> columns;
    PatternIndex dedup;                 // full-tuple index (mask = full_mask)
    std::vector<PatternIndex> indexes;  // one per built bound pattern
  };

  size_t KeyHashAt(const Relation& rel, uint32_t mask, uint32_t row) const;
  static size_t KeyHash(uint32_t mask, const ElementId* key);
  bool KeyEqualsAt(const Relation& rel, uint32_t mask, uint32_t row,
                   const ElementId* key) const;
  bool RowsKeyEqual(const Relation& rel, uint32_t mask, uint32_t a,
                    uint32_t b) const;
  /// Bucket of `hash`/`key` in `index`, or kNoRow-equivalent (returns bucket
  /// id or UINT32_MAX).
  uint32_t FindBucket(const Relation& rel, const PatternIndex& index,
                      size_t hash, const ElementId* key) const;
  void InsertRow(Relation* rel, PatternIndex* index, uint32_t row,
                 size_t hash);
  void RehashSlots(Relation* rel, PatternIndex* index, size_t slot_count);
  void BuildIndex(Relation* rel, PatternIndex* index, uint32_t mask);

  std::vector<Relation> relations_;
  size_t total_ = 0;
};

/// An atom with constants pre-resolved to element ids (kUnbound marks
/// variable positions; `vars` holds the variable id per position, -1 for
/// constants).
struct ResolvedAtom {
  PredicateId predicate = 0;
  std::vector<ElementId> const_args;  // kUnbound at variable positions
  std::vector<VariableId> vars;       // -1 at constant positions
};

ResolvedAtom ResolveAtom(const Atom& atom, Structure* domain);

/// Calls `yield` once per tuple of `store` matching `atom` under `binding`,
/// with the binding temporarily extended by the tuple's assignments. `yield`
/// returns false to stop early. Returns the number of matches visited.
///
/// This is the *interpreted* matching kernel: it decides the probe column at
/// runtime, tuple by tuple. The naive evaluator and the grounder keep using
/// it as the reference oracle the compiled executors
/// (datalog/executor.hpp) are differentially tested against.
size_t MatchAtom(FactStore* store, const ResolvedAtom& atom, Binding* binding,
                 const std::function<bool(void)>& yield);

/// MatchAtom restricted to tuples whose row in relation `atom.predicate`
/// lies in [begin, end) — the delta-batch primitive: batches over contiguous
/// slices of the delta relation concatenate to exactly the unrestricted
/// enumeration order.
size_t MatchAtomInRange(FactStore* store, const ResolvedAtom& atom,
                        Binding* binding, size_t begin, size_t end,
                        const std::function<bool(void)>& yield);

/// The argument position the interpreted MatchAtom probes an index on: the
/// first position that is a constant or whose variable satisfies `is_bound`;
/// -1 when every position is unbound (full scan).
int ProbePosition(const ResolvedAtom& atom,
                  const std::function<bool(VariableId)>& is_bound);

/// True iff `atom` is fully bound under `binding` (no unbound variables).
bool FullyBound(const ResolvedAtom& atom, const Binding& binding);

/// Ground tuple of `atom` under `binding`; requires FullyBound.
Tuple GroundArgs(const ResolvedAtom& atom, const Binding& binding);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_DATABASE_HPP_
