// §5.3: the two-pass PRIMALITY enumeration is linear in the input, while
// re-running the §5.2 decision per attribute is quadratic. Prints a table of
// both times and their ratio over growing balanced instances, then the
// parallel/budgeted profile of the largest instance: the sharded two-pass
// run (threads = 8) and the eviction run must reproduce the sequential prime
// bits exactly.
//
// Flags: --quick shrinks the instance ladder for CI; --json <path> writes
// the deterministic counters (states, shard counts, table bytes, evictions —
// no wall-clock, so a 1-CPU runner produces meaningful, comparable
// artifacts).
#include <cstdio>
#include <cstring>
#include <functional>

#include "common/timer.hpp"
#include "core/primality_enum.hpp"
#include "engine/engine.hpp"
#include "schema/generators.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  int max_fds = 64;
  const char* json_path = nullptr;
};

double Once(const std::function<void()>& run) {
  Timer timer;
  run();
  return timer.ElapsedMillis();
}

RunStats RunOnce(const BalancedInstance& inst, size_t num_threads,
                 size_t budget, const std::vector<bool>& expected) {
  EngineOptions options;
  options.decomposition = inst.td;
  options.num_threads = num_threads;
  options.table_memory_budget = budget;
  Engine engine(inst.schema, options);
  RunStats run;
  auto primes = engine.AllPrimes(&run);
  TREEDL_CHECK(primes.ok()) << primes.status();
  TREEDL_CHECK(*primes == expected)
      << "threads=" << num_threads << " budget=" << budget
      << ": prime bits diverged from the sequential run";
  return run;
}

}  // namespace

void RunEnumerationBench(const BenchConfig& config) {
  std::printf("PRIMALITY enumeration: linear two-pass vs quadratic re-rooting\n");
  std::printf("%6s %5s %12s %14s %8s\n", "#Att", "#FD", "two-pass ms",
              "per-attr ms", "ratio");
  for (int g = 2; g <= config.max_fds; g *= 2) {
    BalancedInstance inst = GenerateBalancedInstance(g);
    std::vector<bool> linear_result, quadratic_result;
    EngineOptions options;
    options.decomposition = inst.td;
    Engine engine(inst.schema, options);
    // Warm the encoding so both arms start from the same prebuilt state
    // (the quadratic baseline receives inst.encoding ready-made).
    TREEDL_CHECK(engine.structure().ok());
    double linear_ms = Once([&] {
      auto r = engine.AllPrimes();
      TREEDL_CHECK(r.ok()) << r.status();
      linear_result = std::move(*r);
    });
    double quadratic_ms = Once([&] {
      auto r = core::EnumeratePrimesQuadratic(inst.schema, inst.encoding,
                                              inst.td);
      TREEDL_CHECK(r.ok()) << r.status();
      quadratic_result = std::move(*r);
    });
    TREEDL_CHECK(linear_result == quadratic_result)
        << "enumeration engines disagree";
    std::printf("%6d %5d %12.2f %14.2f %7.1fx\n",
                inst.schema.NumAttributes(), inst.schema.NumFds(), linear_ms,
                quadratic_ms, quadratic_ms / std::max(linear_ms, 1e-3));
  }
  std::printf("\n(the ratio should grow roughly linearly with the instance "
              "size)\n");

  // Parallel + eviction profile on the largest instance: bit-identical prime
  // vectors at every configuration, deterministic counters for the artifact.
  BalancedInstance inst = GenerateBalancedInstance(config.max_fds);
  RunStats sequential;
  std::vector<bool> expected;
  {
    EngineOptions options;
    options.decomposition = inst.td;
    options.num_threads = 1;
    Engine engine(inst.schema, options);
    auto primes = engine.AllPrimes(&sequential);
    TREEDL_CHECK(primes.ok()) << primes.status();
    expected = std::move(*primes);
  }
  RunStats parallel = RunOnce(inst, 8, 0, expected);
  RunStats budgeted = RunOnce(inst, 1, 16 * 1024, expected);
  std::printf(
      "\nlargest instance (#FD=%d): states=%zu  sharded walks (threads=8): "
      "%zu shard tasks  eviction (budget 16KiB): table_peak %zuB -> %zuB, "
      "%zu tables evicted\n",
      config.max_fds, sequential.dp_states, parallel.primality_shards,
      sequential.dp_peak_table_bytes, budgeted.dp_peak_table_bytes,
      budgeted.dp_tables_evicted);

  if (config.json_path != nullptr) {
    FILE* out = std::fopen(config.json_path, "w");
    TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"enumeration\",\n"
                 "  \"num_fds\": %d,\n"
                 "  \"num_attributes\": %d,\n"
                 "  \"dp_states\": %zu,\n"
                 "  \"primality_shards_parallel\": %zu,\n"
                 "  \"peak_table_bytes\": %zu,\n"
                 "  \"peak_table_bytes_budgeted\": %zu,\n"
                 "  \"tables_evicted_budgeted\": %zu\n"
                 "}\n",
                 config.max_fds, inst.schema.NumAttributes(),
                 sequential.dp_states, parallel.primality_shards,
                 sequential.dp_peak_table_bytes,
                 budgeted.dp_peak_table_bytes, budgeted.dp_tables_evicted);
    std::fclose(out);
    std::printf("  wrote %s\n", config.json_path);
  }
}

}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.max_fds = 16;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunEnumerationBench(config);
  return 0;
}
