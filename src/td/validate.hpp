// Validation of the three tree-decomposition conditions of §2.2.
#ifndef TREEDL_TD_VALIDATE_HPP_
#define TREEDL_TD_VALIDATE_HPP_

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "structure/structure.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

/// Checks, for a τ-structure A:
///   (1) every element of dom(A) occurs in some bag,
///   (2) for every fact R(a1..ak) some bag contains {a1..ak},
///   (3) for every element, the nodes whose bags contain it induce a subtree.
/// Returns InvalidArgument with a description of the first violation.
Status ValidateForStructure(const Structure& structure,
                            const TreeDecomposition& td);

/// Graph version: condition (2) ranges over edges.
Status ValidateForGraph(const Graph& graph, const TreeDecomposition& td);

/// Connectedness (condition 3) plus tree-shape sanity alone; element universe
/// is whatever occurs in bags. Used by normalization tests.
Status ValidateConnectedness(const TreeDecomposition& td);

}  // namespace treedl

#endif  // TREEDL_TD_VALIDATE_HPP_
