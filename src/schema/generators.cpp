#include "schema/generators.hpp"

#include "common/logging.hpp"

namespace treedl {

BalancedInstance GenerateBalancedInstance(int num_fds) {
  TREEDL_CHECK(num_fds >= 1);
  Schema schema;
  int g = num_fds;
  std::vector<AttributeId> x(static_cast<size_t>(g) + 1);
  std::vector<AttributeId> y(static_cast<size_t>(g) + 1);
  std::vector<AttributeId> z(static_cast<size_t>(g) + 1);
  for (int i = 1; i <= g; ++i) {
    x[static_cast<size_t>(i)] = schema.AddAttribute("x" + std::to_string(i));
    y[static_cast<size_t>(i)] = schema.AddAttribute("y" + std::to_string(i));
    z[static_cast<size_t>(i)] = schema.AddAttribute("z" + std::to_string(i));
  }
  std::vector<FdId> fd(static_cast<size_t>(g) + 1);
  fd[1] = schema.AddFd({x[1], y[1]}, z[1]).value();
  for (int i = 2; i <= g; ++i) {
    int p = i / 2;
    fd[static_cast<size_t>(i)] =
        schema
            .AddFd({z[static_cast<size_t>(p)], x[static_cast<size_t>(i)]},
                   z[static_cast<size_t>(i)])
            .value();
  }

  SchemaEncoding encoding = EncodeSchema(schema);
  auto attr_elem = [&](AttributeId a) { return encoding.AttrElement(a); };
  auto fd_elem = [&](FdId f) { return encoding.FdElement(f); };

  TreeDecomposition td;
  std::vector<TdNodeId> group_node(static_cast<size_t>(g) + 1, kNoTdNode);
  group_node[1] = td.AddNode(
      {fd_elem(fd[1]), attr_elem(x[1]), attr_elem(y[1]), attr_elem(z[1])});
  for (int i = 2; i <= g; ++i) {
    int p = i / 2;
    group_node[static_cast<size_t>(i)] =
        td.AddNode({fd_elem(fd[static_cast<size_t>(i)]),
                    attr_elem(z[static_cast<size_t>(p)]),
                    attr_elem(x[static_cast<size_t>(i)]),
                    attr_elem(z[static_cast<size_t>(i)])},
                   group_node[static_cast<size_t>(p)]);
    // The isolated attribute y_i lives in its own leaf bag under the group
    // node, keeping all node kinds represented after normalization.
    td.AddNode({attr_elem(y[static_cast<size_t>(i)])},
               group_node[static_cast<size_t>(i)]);
  }

  BalancedInstance out{std::move(schema), std::move(encoding), std::move(td),
                       x[1], z[1]};
  return out;
}

Schema RandomWindowSchema(int num_attributes, int num_fds, int window,
                          Rng* rng) {
  TREEDL_CHECK(num_attributes >= 2);
  TREEDL_CHECK(window >= 2 && window <= num_attributes);
  Schema schema;
  for (int a = 0; a < num_attributes; ++a) {
    schema.AddAttribute("a" + std::to_string(a));
  }
  for (int f = 0; f < num_fds; ++f) {
    int start =
        static_cast<int>(rng->UniformInt(0, num_attributes - window));
    int lhs_size = static_cast<int>(
        rng->UniformInt(1, std::min(window - 1, 3)));
    std::vector<size_t> picks =
        rng->SampleIndices(static_cast<size_t>(window),
                           static_cast<size_t>(lhs_size) + 1);
    std::vector<AttributeId> lhs;
    for (int i = 0; i < lhs_size; ++i) {
      lhs.push_back(start + static_cast<AttributeId>(picks[static_cast<size_t>(i)]));
    }
    AttributeId rhs =
        start + static_cast<AttributeId>(picks[static_cast<size_t>(lhs_size)]);
    TREEDL_CHECK(schema.AddFd(std::move(lhs), rhs).ok());
  }
  return schema;
}

}  // namespace treedl
