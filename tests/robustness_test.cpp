// Edge cases and stress shapes across modules: degenerate inputs, recursive
// datalog beyond transitive closure, deep/unbalanced decompositions, and
// adversarial schemas for the PRIMALITY pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/primality.hpp"
#include "core/primality_enum.hpp"
#include "core/three_color.hpp"
#include "datalog/eval.hpp"
#include "datalog/parser.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "schema/closure.hpp"
#include "schema/encode.hpp"
#include "schema/primality_bruteforce.hpp"
#include "server/server.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"
#include "td/validate.hpp"

namespace treedl {
namespace {

// --- Datalog: classic non-linear / mutually recursive programs ---------------

TEST(DatalogRobustnessTest, SameGeneration) {
  auto program = datalog::ParseProgram(
      "sg(X, X) :- node(X).\n"
      "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n");
  ASSERT_TRUE(program.ok());
  // Perfect binary tree of depth 3: 1; 2,3; 4..7.
  Signature sig = Signature::Make({{"node", 1}, {"par", 2}}).value();
  Structure edb(sig);
  for (int i = 1; i <= 7; ++i) edb.AddElement("n" + std::to_string(i));
  PredicateId node = 0, par = 1;
  for (ElementId i = 0; i < 7; ++i) ASSERT_TRUE(edb.AddFact(node, {i}).ok());
  // par(child, parent); ids are value-1.
  for (int c = 2; c <= 7; ++c) {
    ASSERT_TRUE(edb.AddFact(par, {static_cast<ElementId>(c - 1),
                                  static_cast<ElementId>(c / 2 - 1)})
                    .ok());
  }
  auto result = datalog::SemiNaiveEvaluate(*program, edb);
  ASSERT_TRUE(result.ok()) << result.status();
  PredicateId sg = result->signature().PredicateIdOf("sg").value();
  // Same generation: {1}, {2,3}, {4,5,6,7} → 1 + 4 + 16 ordered pairs.
  EXPECT_EQ(result->Relation(sg).size(), 1u + 4u + 16u);
  EXPECT_TRUE(result->HasFact(sg, {3, 6}));   // n4 and n7
  EXPECT_FALSE(result->HasFact(sg, {0, 3}));  // n1 and n4
}

TEST(DatalogRobustnessTest, NonLinearRecursionMatchesLinear) {
  Structure edb = GraphToStructure(PathGraph(12));
  auto linear = datalog::ParseProgram(
      "path(X, Y) :- e(X, Y).\npath(X, Y) :- e(X, Z), path(Z, Y).\n");
  auto nonlinear = datalog::ParseProgram(
      "path(X, Y) :- e(X, Y).\npath(X, Y) :- path(X, Z), path(Z, Y).\n");
  auto r1 = datalog::SemiNaiveEvaluate(*linear, edb);
  auto r2 = datalog::SemiNaiveEvaluate(*nonlinear, edb);
  ASSERT_TRUE(r1.ok() && r2.ok());
  PredicateId p1 = r1->signature().PredicateIdOf("path").value();
  PredicateId p2 = r2->signature().PredicateIdOf("path").value();
  EXPECT_EQ(r1->Relation(p1).size(), r2->Relation(p2).size());
}

TEST(DatalogRobustnessTest, EmptyEdbAndNoRules) {
  Structure empty_edb(Signature::GraphSignature());
  auto program = datalog::ParseProgram("p(X) :- e(X, X).");
  auto result = datalog::SemiNaiveEvaluate(*program, empty_edb);
  ASSERT_TRUE(result.ok());
  PredicateId p = result->signature().PredicateIdOf("p").value();
  EXPECT_TRUE(result->Relation(p).empty());

  auto no_rules = datalog::ParseProgram("");
  ASSERT_TRUE(no_rules.ok());
  auto result2 = datalog::SemiNaiveEvaluate(*no_rules, empty_edb);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->NumFacts(), 0u);
}

// --- Decompositions: degenerate and deep shapes --------------------------------

TEST(TdRobustnessTest, LongPathNormalizationIsIterative) {
  // A 3000-node chain must not blow the stack anywhere in the pipeline.
  Graph g = PathGraph(3000);
  auto td = Decompose(g);
  ASSERT_TRUE(td.ok());
  auto norm = Normalize(*td);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(ValidateForGraph(g, norm->ToRaw()).ok());
  auto result = core::SolveThreeColor(g, *td, /*extract_coloring=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->colorable);
}

TEST(TdRobustnessTest, StarGraphDecomposition) {
  Graph star(20);
  for (VertexId v = 1; v < 20; ++v) star.AddEdge(0, v);
  auto td = Decompose(star);
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(td->Width(), 1);
  // Center gets one of 3 colors, each leaf one of the remaining 2.
  EXPECT_EQ(core::CountThreeColorings(star, *td).value(),
            3u * (uint64_t{1} << 19));
}

TEST(TdRobustnessTest, SingleVertexAndSingleEdge) {
  Graph one(1);
  auto r1 = core::SolveThreeColor(one);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->colorable);
  EXPECT_EQ(core::CountThreeColorings(one).value(), 3u);
  Graph two(2);
  two.AddEdge(0, 1);
  EXPECT_EQ(core::CountThreeColorings(two).value(), 6u);
}

// --- PRIMALITY: adversarial schema shapes ---------------------------------------

TEST(PrimalityRobustnessTest, MultipleFdsSameRhs) {
  // Two FDs deriving the same attribute: the ΔC-uniqueness machinery must
  // still find derivations that use exactly one of them per attribute.
  Schema s;
  AttributeId a = s.AddAttribute("a");
  AttributeId b = s.AddAttribute("b");
  AttributeId c = s.AddAttribute("c");
  ASSERT_TRUE(s.AddFd({a}, c).ok());
  ASSERT_TRUE(s.AddFd({b}, c).ok());
  auto primes = core::EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok());
  EXPECT_EQ(*primes, AllPrimesBruteForce(s));
}

TEST(PrimalityRobustnessTest, CyclicDerivations) {
  // a -> b, b -> c, c -> a: every attribute is a key on its own.
  Schema s;
  AttributeId a = s.AddAttribute("a");
  AttributeId b = s.AddAttribute("b");
  AttributeId c = s.AddAttribute("c");
  ASSERT_TRUE(s.AddFd({a}, b).ok());
  ASSERT_TRUE(s.AddFd({b}, c).ok());
  ASSERT_TRUE(s.AddFd({c}, a).ok());
  auto primes = core::EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok());
  EXPECT_EQ(*primes, (std::vector<bool>{true, true, true}));
}

TEST(PrimalityRobustnessTest, LongDerivationChain) {
  // a0 -> a1 -> ... -> a19: only a0 is prime.
  Schema s;
  std::vector<AttributeId> attrs;
  for (int i = 0; i < 20; ++i) {
    attrs.push_back(s.AddAttribute("a" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < 20; ++i) {
    ASSERT_TRUE(s.AddFd({attrs[static_cast<size_t>(i)]},
                        attrs[static_cast<size_t>(i + 1)])
                    .ok());
  }
  auto primes = core::EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ((*primes)[static_cast<size_t>(i)], i == 0) << i;
  }
}

TEST(PrimalityRobustnessTest, WideLhsFd) {
  // One FD with a 5-attribute lhs: the rhs-closure pass and window bags must
  // cope with the larger incidence bag.
  Schema s;
  std::vector<AttributeId> attrs;
  for (int i = 0; i < 6; ++i) {
    attrs.push_back(s.AddAttribute("a" + std::to_string(i)));
  }
  ASSERT_TRUE(
      s.AddFd({attrs[0], attrs[1], attrs[2], attrs[3], attrs[4]}, attrs[5])
          .ok());
  auto primes = core::EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok());
  EXPECT_EQ(*primes, AllPrimesBruteForce(s));
}

TEST(PrimalityRobustnessTest, AllAttributesIsolated) {
  // No FDs at all: the only key is R itself; every attribute is prime.
  Schema s;
  for (int i = 0; i < 5; ++i) s.AddAttribute("a" + std::to_string(i));
  auto primes = core::EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok());
  EXPECT_EQ(*primes, std::vector<bool>(5, true));
}

TEST(ClosureRobustnessTest, EmptyLhsFd) {
  // An FD with empty lhs ({} -> a) makes a derivable from anything.
  Schema s;
  AttributeId a = s.AddAttribute("a");
  AttributeId b = s.AddAttribute("b");
  ASSERT_TRUE(s.AddFd({}, a).ok());
  AttrSet empty = EmptyAttrSet(s);
  AttrSet closure = Closure(s, empty);
  EXPECT_TRUE(closure[static_cast<size_t>(a)]);
  EXPECT_FALSE(closure[static_cast<size_t>(b)]);
  EXPECT_FALSE(IsPrimeBruteForce(s, a));  // derivable from {} — never needed
  EXPECT_TRUE(IsPrimeBruteForce(s, b));
  // The DP agrees: every closed set contains a, so a is in no key.
  auto primes = core::EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok()) << primes.status();
  EXPECT_EQ(*primes, AllPrimesBruteForce(s));
}

// --- Serving stack: deadlines, budgets, oversized input ----------------------

/// A one-line LOAD of a path graph v0 - v1 - ... with `n` vertices.
std::string PathLoadLine(const std::string& tenant, size_t n) {
  std::string line = "LOAD " + tenant + " SIG e/2 FACTS";
  for (size_t i = 0; i + 1 < n; ++i) {
    line += " e(v" + std::to_string(i) + ", v" + std::to_string(i + 1) + ").";
  }
  return line;
}

std::string Reply(server::Server* s, const std::string& line) {
  std::string out;
  s->HandleLine(line, &out);
  return out;
}

server::ServerOptions QuietServer() {
  server::ServerOptions options;
  options.echo_stats = false;
  return options;
}

TEST(ServerRobustnessTest, OversizedLineYieldsOneFramedErrorAndDriverSurvives) {
  server::Server s(QuietServer());
  ASSERT_EQ(Reply(&s, PathLoadLine("g", 4)).rfind("OK LOAD", 0), 0u);

  // 2 MB of garbage payload: the reply must be a single framed ERR line and
  // the driver must keep serving afterwards.
  std::string huge = "QUERY g ";
  huge.append(size_t{2} << 20, 'x');
  std::string out = Reply(&s, huge);
  EXPECT_EQ(out.rfind("ERR E_PARSE", 0), 0u) << out.substr(0, 80);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
  EXPECT_EQ(Reply(&s, "SOLVE g 3COL").rfind("OK SOLVE", 0), 0u);
}

TEST(ServerRobustnessTest, DeadlineZeroShedsEveryComputeRequest) {
  server::Server s(QuietServer());
  ASSERT_EQ(Reply(&s, PathLoadLine("g", 6)).rfind("OK LOAD", 0), 0u);
  EXPECT_EQ(Reply(&s, "DEADLINE 0"), "OK DEADLINE units=0\n");

  // Every compute family sheds at the very first work unit, with the
  // schedule-invariant message (no thread- or progress-dependent text).
  const std::string shed = "ERR E_DEADLINE deadline of 0 work units exceeded\n";
  EXPECT_EQ(Reply(&s, "SOLVE g 3COL"), shed);
  EXPECT_EQ(Reply(&s, "QUERY g path(X, Y) :- e(X, Y)."), shed);
  EXPECT_EQ(Reply(&s, "SOLVEALL g"), shed);

  // Disarming recovers the same tenant immediately — a shed request leaves
  // no partial state behind.
  EXPECT_EQ(Reply(&s, "DEADLINE OFF"), "OK DEADLINE off\n");
  EXPECT_EQ(Reply(&s, "SOLVE g 3COL").rfind("OK SOLVE", 0), 0u);
}

TEST(ServerRobustnessTest, DeadlineAtExactlyTheLastWorkUnitCompletes) {
  // Work units are deterministic, so there is a sharp threshold T: every
  // deadline < T sheds and every deadline >= T completes. Find T by scanning
  // fresh servers (results are memoized within one engine, so each probe
  // needs its own).
  auto runs_ok = [](uint64_t units) {
    server::Server s(QuietServer());
    EXPECT_EQ(Reply(&s, PathLoadLine("g", 6)).rfind("OK LOAD", 0), 0u);
    EXPECT_EQ(Reply(&s, "DEADLINE " + std::to_string(units))
                  .rfind("OK DEADLINE", 0),
              0u);
    return Reply(&s, "SOLVE g VC").rfind("OK SOLVE", 0) == 0;
  };
  uint64_t threshold = 0;
  while (!runs_ok(threshold)) {
    ++threshold;
    ASSERT_LE(threshold, 10000u) << "no completion threshold found";
  }
  ASSERT_GT(threshold, 0u) << "a path DP must consume at least one unit";
  // The boundary is exact: one unit less sheds, the threshold completes.
  EXPECT_FALSE(runs_ok(threshold - 1));
  EXPECT_TRUE(runs_ok(threshold));
}

TEST(ServerRobustnessTest, TableBudgetAbortsWitnessExtractionButNotEviction) {
  // extract_witness pins every DP table (eviction off), so a long path blows
  // through the hard live-table cap: the request must shed with E_ADMISSION,
  // not OOM. Evictable solves on the very same tenant stay under the cap and
  // succeed — graceful degradation, not a poisoned session.
  server::ServerOptions options = QuietServer();
  options.engine_options.extract_witness = true;
  options.table_memory_budget = 17000;  // above the structure estimate
  server::Server s(options);
  ASSERT_EQ(Reply(&s, PathLoadLine("g", 200)).rfind("OK LOAD", 0), 0u);

  std::string shed = Reply(&s, "SOLVE g 3COL");
  EXPECT_EQ(shed.rfind("ERR E_ADMISSION", 0), 0u) << shed;
  EXPECT_NE(shed.find("live DP tables exceed the table_memory_budget"),
            std::string::npos)
      << shed;
  // VC runs with eviction enabled: live tables stay bounded, so the same
  // tenant answers correctly right after the abort.
  std::string ok = Reply(&s, "SOLVE g VC");
  EXPECT_EQ(ok.rfind("OK SOLVE", 0), 0u) << ok;
  EXPECT_NE(ok.find("optimum=100"), std::string::npos) << ok;
}

TEST(ServerRobustnessTest, DeadlineAbortDoesNotPoisonCoTenant) {
  server::Server s(QuietServer());
  // Two tenants, identical facts: one fingerprint, one pooled engine.
  ASSERT_EQ(Reply(&s, PathLoadLine("a", 12)).rfind("OK LOAD", 0), 0u);
  ASSERT_EQ(Reply(&s, PathLoadLine("b", 12)).rfind("OK LOAD", 0), 0u);

  EXPECT_EQ(Reply(&s, "DEADLINE 1"), "OK DEADLINE units=1\n");
  EXPECT_EQ(Reply(&s, "SOLVE a VC"),
            "ERR E_DEADLINE deadline of 1 work units exceeded\n");
  EXPECT_EQ(Reply(&s, "DEADLINE OFF"), "OK DEADLINE off\n");

  // The co-tenant sharing the aborted engine gets the right answer, and so
  // does the aborted tenant itself.
  std::string b = Reply(&s, "SOLVE b VC");
  EXPECT_NE(b.find("optimum=6"), std::string::npos) << b;
  std::string a = Reply(&s, "SOLVE a VC");
  EXPECT_NE(a.find("optimum=6"), std::string::npos) << a;
}

}  // namespace
}  // namespace treedl
