#include "server/server.hpp"

#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/string_util.hpp"
#include "common/work_budget.hpp"
#include "datalog/analysis.hpp"
#include "datalog/parser.hpp"
#include "mso/parser.hpp"
#include "structure/structure_io.hpp"

namespace treedl::server {

namespace {

std::string KeyValue(std::string_view key, size_t value) {
  std::string out(key);
  out += '=';
  out += std::to_string(value);
  return out;
}

const char* PoolLabel(const SessionPool::Lease& lease) {
  if (lease.hit) return "hit";
  return lease.warm_loaded ? "warm" : "cold";
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  size_t threads = options_.num_threads == 0 ? ThreadPool::DefaultNumThreads()
                                             : options_.num_threads;
  EngineOptions engine_options = options_.engine_options;
  if (threads > 1) {
    shared_pool_ = std::make_unique<ThreadPool>(threads);
    engine_options.shared_pool = shared_pool_.get();
  } else {
    engine_options.num_threads = 1;
  }
  SessionPoolOptions pool_options;
  pool_options.max_sessions = options_.max_sessions;
  pool_options.table_memory_budget = options_.table_memory_budget;
  pool_options.session_dir = options_.session_dir;
  pool_options.engine_options = engine_options;
  pool_ = std::make_unique<SessionPool>(std::move(pool_options));
}

Server::~Server() = default;

bool Server::HandleLine(std::string_view line, std::string* out) {
  StatusOr<std::optional<Request>> parsed = ParseRequest(line);
  if (!parsed.ok()) {
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    EmitError(ErrorCodeFor(parsed.status()), parsed.status().message(), out);
    return true;
  }
  if (!parsed.value().has_value()) return true;  // comment / blank line
  return HandleRequest(*parsed.value(), out);
}

bool Server::HandleRequest(const Request& request, std::string* out) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  if (std::holds_alternative<QuitRequest>(request)) {
    EmitOk("QUIT", "", out);
    return false;
  }
  if (IsComputeRequest(request)) {
    // The single-threaded driver runs the exact two stages the concurrent
    // front-end runs, back to back — the transcript cannot depend on which
    // driver produced it.
    std::optional<ComputeWork> work = PrepareCompute(request, out);
    if (work.has_value()) ExecuteCompute(*work, out);
    return true;
  }
  std::visit(
      [&](const auto& typed) {
        using T = std::decay_t<decltype(typed)>;
        if constexpr (std::is_same_v<T, LoadRequest>) {
          HandleLoad(typed, out);
        } else if constexpr (std::is_same_v<T, AssertRequest>) {
          HandleAssert(typed, out);
        } else if constexpr (std::is_same_v<T, SaveRequest>) {
          HandleSave(typed, out);
        } else if constexpr (std::is_same_v<T, OpenRequest>) {
          HandleOpen(typed, out);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          HandleStats(typed, out);
        } else if constexpr (std::is_same_v<T, DeadlineRequest>) {
          HandleDeadline(typed, out);
        } else if constexpr (std::is_same_v<T, ReoptRequest>) {
          HandleReopt(typed, out);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          HandleClose(typed, out);
        }
      },
      request);
  return true;
}

size_t Server::Serve(std::istream& in, std::ostream& out) {
  std::string line;
  size_t before = stats_.requests.load(std::memory_order_relaxed);
  bool keep_going = true;
  while (keep_going && std::getline(in, line)) {
    std::string replies;
    keep_going = HandleLine(line, &replies);
    out << replies;
    out.flush();
  }
  return stats_.requests.load(std::memory_order_relaxed) - before;
}

bool Server::IsComputeRequest(const Request& request) {
  return std::holds_alternative<QueryRequest>(request) ||
         std::holds_alternative<SolveRequest>(request) ||
         std::holds_alternative<SolveAllRequest>(request) ||
         std::holds_alternative<MsoRequest>(request);
}

std::optional<uint64_t> Server::ComputeFingerprint(
    const Request& request) const {
  const std::string* tenant_name = nullptr;
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    tenant_name = &query->tenant;
  } else if (const auto* solve = std::get_if<SolveRequest>(&request)) {
    tenant_name = &solve->tenant;
  } else if (const auto* all = std::get_if<SolveAllRequest>(&request)) {
    tenant_name = &all->tenant;
  } else if (const auto* mso = std::get_if<MsoRequest>(&request)) {
    tenant_name = &mso->tenant;
  }
  if (tenant_name == nullptr) return std::nullopt;
  auto it = tenants_.find(*tenant_name);
  if (it == tenants_.end()) return std::nullopt;
  return it->second.fingerprint;
}

std::optional<Server::ComputeWork> Server::PrepareCompute(
    const Request& request, std::string* out) {
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    StatusOr<Tenant*> found = FindTenant(query->tenant);
    if (!found.ok()) {
      EmitError(ErrorCode::kNoTenant, found.status().message(), out);
      return std::nullopt;
    }
    StatusOr<datalog::Program> program =
        datalog::ParseProgram(query->program, found.value()->signature);
    if (!program.ok()) {
      EmitError(ErrorCode::kParse, program.status().message(), out);
      return std::nullopt;
    }
    StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
    if (!lease.ok()) {
      EmitStatus(lease.status(), out);
      return std::nullopt;
    }
    ComputeWork work;
    work.request = request;
    work.lease = std::move(lease).value();
    work.program = std::move(program).value();
    work.deadline = deadline_units_;
    return work;
  }
  if (const auto* mso = std::get_if<MsoRequest>(&request)) {
    StatusOr<Tenant*> found = FindTenant(mso->tenant);
    if (!found.ok()) {
      EmitError(ErrorCode::kNoTenant, found.status().message(), out);
      return std::nullopt;
    }
    StatusOr<mso::FormulaPtr> formula = mso::ParseFormula(mso->formula);
    if (!formula.ok()) {
      EmitError(ErrorCode::kParse, formula.status().message(), out);
      return std::nullopt;
    }
    StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
    if (!lease.ok()) {
      EmitStatus(lease.status(), out);
      return std::nullopt;
    }
    ComputeWork work;
    work.request = request;
    work.lease = std::move(lease).value();
    work.formula = std::move(formula).value();
    work.deadline = deadline_units_;
    return work;
  }
  const std::string* tenant_name = nullptr;
  if (const auto* solve = std::get_if<SolveRequest>(&request)) {
    tenant_name = &solve->tenant;
  } else if (const auto* all = std::get_if<SolveAllRequest>(&request)) {
    tenant_name = &all->tenant;
  }
  if (tenant_name == nullptr) return std::nullopt;  // not a compute request
  StatusOr<Tenant*> found = FindTenant(*tenant_name);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return std::nullopt;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return std::nullopt;
  }
  ComputeWork work;
  work.request = request;
  work.lease = std::move(lease).value();
  work.deadline = deadline_units_;
  return work;
}

void Server::ExecuteCompute(ComputeWork& work, std::string* out) {
  if (std::holds_alternative<QueryRequest>(work.request)) {
    ExecuteQuery(work, out);
  } else if (std::holds_alternative<SolveRequest>(work.request)) {
    ExecuteSolve(work, out);
  } else if (std::holds_alternative<SolveAllRequest>(work.request)) {
    ExecuteSolveAll(work, out);
  } else if (std::holds_alternative<MsoRequest>(work.request)) {
    ExecuteMso(work, out);
  }
}

WorkBudget* Server::ArmBudget(const ComputeWork& work,
                              WorkBudget* budget) const {
  bool armed = false;
  if (work.deadline.has_value()) {
    budget->SetDeadline(*work.deadline);
    armed = true;
  }
  if (options_.table_memory_budget > 0) {
    budget->SetTableBytesLimit(options_.table_memory_budget);
    armed = true;
  }
  return armed ? budget : nullptr;
}

StatusOr<Server::Tenant*> Server::FindTenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + name + "' has no loaded structure");
  }
  return &it->second;
}

StatusOr<SessionPool::Lease> Server::AcquireFor(const Tenant& tenant) {
  return pool_->Acquire(tenant.structure);
}

std::string Server::FinishRun(uint64_t fingerprint, const RunStats& run) {
  pool_->RefreshCharge(fingerprint);
  size_t peak = stats_.peak_table_bytes.load(std::memory_order_relaxed);
  while (run.dp_peak_table_bytes > peak &&
         !stats_.peak_table_bytes.compare_exchange_weak(
             peak, run.dp_peak_table_bytes, std::memory_order_relaxed)) {
  }
  if (!options_.echo_stats) return "";
  std::string echo = " ";
  echo += KeyValue("encode", run.encode_builds);
  echo += ' ';
  echo += KeyValue("td", run.td_builds);
  echo += ' ';
  echo += KeyValue("normalize", run.normalize_builds);
  echo += ' ';
  echo += KeyValue("cache_hits", run.cache_hits);
  return echo;
}

void Server::HandleLoad(const LoadRequest& request, std::string* out) {
  StatusOr<Signature> signature = Signature::Make(request.predicates);
  if (!signature.ok()) {
    EmitError(ErrorCode::kBadArgument, signature.status().message(), out);
    return;
  }
  StatusOr<Structure> structure =
      ParseStructure(signature.value(), request.facts);
  if (!structure.ok()) {
    EmitError(ErrorCode::kParse, structure.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = pool_->Acquire(structure.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  Tenant tenant{std::move(signature).value(), request.facts,
                std::move(structure).value(), lease.value().fingerprint};
  size_t elements = tenant.structure.NumElements();
  size_t facts = tenant.structure.NumFacts();
  tenants_.insert_or_assign(request.tenant, std::move(tenant));
  std::string details = "tenant=" + request.tenant +
                        " fingerprint=" + Hex16(lease.value().fingerprint) +
                        " " + KeyValue("elements", elements) + " " +
                        KeyValue("facts", facts) +
                        " pool=" + PoolLabel(lease.value());
  if (lease.value().warm_loaded) {
    details += " " + KeyValue("loads", lease.value().artifact_loads);
  }
  pool_->RefreshCharge(lease.value().fingerprint);
  EmitOk("LOAD", details, out);
}

void Server::HandleAssert(const AssertRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  std::string combined = tenant->facts_text;
  if (!combined.empty()) combined += '\n';
  combined += request.facts;
  StatusOr<Structure> structure = ParseStructure(tenant->signature, combined);
  if (!structure.ok()) {
    EmitError(ErrorCode::kParse, structure.status().message(), out);
    return;
  }
  tenant->facts_text = std::move(combined);
  tenant->structure = std::move(structure).value();
  tenant->fingerprint = Engine::FingerprintOf(tenant->structure);
  EmitOk("ASSERT",
         "tenant=" + request.tenant + " " +
             KeyValue("facts", tenant->structure.NumFacts()) +
             " fingerprint=" + Hex16(tenant->fingerprint),
         out);
}

void Server::ExecuteQuery(ComputeWork& work, std::string* out) {
  const QueryRequest& request = std::get<QueryRequest>(work.request);
  RunStats run;
  WorkBudget budget;
  StatusOr<Structure> result = work.lease.engine->EvaluateDatalog(
      work.program, &run, ArmBudget(work, &budget));
  if (!result.ok()) {
    EmitStatus(result.status(), out);
    return;
  }
  // Render the derived (intensional) facts, predicate-major in signature
  // order, tuples in derivation order — deterministic.
  StatusOr<datalog::ProgramInfo> info = datalog::AnalyzeProgram(work.program);
  std::vector<std::string> rows;
  if (info.ok()) {
    const Signature& signature = result.value().signature();
    for (PredicateId p = 0; p < static_cast<PredicateId>(signature.size());
         ++p) {
      if (static_cast<size_t>(p) >= info.value().intensional.size() ||
          !info.value().intensional[static_cast<size_t>(p)]) {
        continue;
      }
      for (const Tuple& tuple : result.value().Relation(p)) {
        std::string row = signature.name(p) + "(";
        for (size_t i = 0; i < tuple.size(); ++i) {
          if (i > 0) row += ", ";
          row += result.value().ElementName(tuple[i]);
        }
        row += ").";
        rows.push_back(std::move(row));
      }
    }
  }
  std::string details = "tenant=" + request.tenant + " " +
                        KeyValue("data", rows.size()) + " " +
                        KeyValue("derived", run.derived_facts) +
                        " pool=" + std::string(PoolLabel(work.lease)) +
                        FinishRun(work.lease.fingerprint, run);
  EmitOk("QUERY", details, out);
  for (const std::string& row : rows) EmitData(row, out);
}

void Server::ExecuteSolve(ComputeWork& work, std::string* out) {
  const SolveRequest& request = std::get<SolveRequest>(work.request);
  RunStats run;
  WorkBudget budget;
  StatusOr<Engine::SolveResult> result = work.lease.engine->Solve(
      request.problem, &run, ArmBudget(work, &budget));
  if (!result.ok()) {
    EmitStatus(result.status(), out);
    return;
  }
  std::string details = "tenant=" + request.tenant +
                        " problem=" + ProblemName(request.problem);
  switch (request.problem) {
    case Engine::Problem::kThreeColor:
      details += " " + KeyValue("feasible", result.value().feasible ? 1 : 0);
      break;
    case Engine::Problem::kThreeColorCount:
      details +=
          " " + KeyValue("count", static_cast<size_t>(result.value().count));
      break;
    default:
      details += " " + KeyValue("optimum", result.value().optimum);
      break;
  }
  details += " pool=" + std::string(PoolLabel(work.lease)) +
             FinishRun(work.lease.fingerprint, run);
  EmitOk("SOLVE", details, out);
}

void Server::ExecuteSolveAll(ComputeWork& work, std::string* out) {
  const SolveAllRequest& request = std::get<SolveAllRequest>(work.request);
  RunStats run;
  WorkBudget budget;
  StatusOr<Engine::SolveAllResult> result =
      work.lease.engine->SolveAll(&run, ArmBudget(work, &budget));
  if (!result.ok()) {
    EmitStatus(result.status(), out);
    return;
  }
  const Engine::SolveAllResult& all = result.value();
  std::string details =
      "tenant=" + request.tenant + " " +
      KeyValue("three_colorable", all.three_colorable ? 1 : 0) + " " +
      KeyValue("colorings", static_cast<size_t>(all.three_colorings)) + " " +
      KeyValue("vc", all.min_vertex_cover) + " " +
      KeyValue("is", all.max_independent_set) + " " +
      KeyValue("ds", all.min_dominating_set) +
      " pool=" + std::string(PoolLabel(work.lease)) +
      FinishRun(work.lease.fingerprint, run);
  EmitOk("SOLVEALL", details, out);
}

void Server::ExecuteMso(ComputeWork& work, std::string* out) {
  const MsoRequest& request = std::get<MsoRequest>(work.request);
  RunStats run;
  WorkBudget budget;
  StatusOr<bool> holds = work.lease.engine->EvaluateMso(
      work.formula, &run, ArmBudget(work, &budget));
  if (!holds.ok()) {
    EmitStatus(holds.status(), out);
    return;
  }
  std::string details = "tenant=" + request.tenant + " " +
                        KeyValue("holds", holds.value() ? 1 : 0) +
                        " pool=" + std::string(PoolLabel(work.lease)) +
                        FinishRun(work.lease.fingerprint, run);
  EmitOk("MSO", details, out);
}

void Server::HandleSave(const SaveRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  // Make sure the session is resident (SAVE after eviction re-admits it).
  StatusOr<SessionPool::Lease> lease = AcquireFor(*tenant);
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  RunStats run;
  Status saved = TREEDL_FAULT_POINT("server.save");
  if (saved.ok()) saved = pool_->Save(lease.value().fingerprint, &run);
  if (!saved.ok()) {
    EmitError(ErrorCode::kIo, saved.message(), out);
    return;
  }
  EmitOk("SAVE",
         "tenant=" + request.tenant + " " +
             KeyValue("artifacts", run.artifact_saves) +
             " fingerprint=" + Hex16(lease.value().fingerprint),
         out);
}

void Server::HandleOpen(const OpenRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  if (options_.session_dir.empty()) {
    EmitError(ErrorCode::kIo,
              "OPEN requires the server to run with a session directory", out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  size_t loads = lease.value().artifact_loads;
  RunStats run;
  if (!lease.value().warm_loaded) {
    // Explicit warm start of an already-resident (or cold-constructed)
    // session; already-built slots keep their in-memory artifacts.
    std::string path = pool_->SessionFilePath(lease.value().fingerprint);
    Status loaded = lease.value().engine->LoadSession(path, &run);
    if (!loaded.ok()) {
      EmitError(ErrorCode::kIo, loaded.message(), out);
      return;
    }
    loads = run.artifact_loads;
  }
  pool_->RefreshCharge(lease.value().fingerprint);
  EmitOk("OPEN",
         "tenant=" + request.tenant + " " + KeyValue("loads", loads) +
             " pool=" + PoolLabel(lease.value()),
         out);
}

void Server::HandleStats(const StatsRequest& request, std::string* out) {
  if (!request.tenant.has_value()) {
    SessionPoolCounters pool_counters = pool_->counters();
    ServerStats snapshot = stats();
    std::string details =
        KeyValue("requests", snapshot.requests) + " " +
        KeyValue("ok", snapshot.replies_ok) + " " +
        KeyValue("err", snapshot.replies_error) + " " +
        KeyValue("data", snapshot.data_lines) + " " +
        KeyValue("tenants", tenants_.size()) + " " +
        KeyValue("resident", pool_->NumResident()) + " " +
        KeyValue("hits", pool_counters.hits) + " " +
        KeyValue("misses", pool_counters.misses) + " " +
        KeyValue("evictions", pool_counters.evictions) + " " +
        KeyValue("warm_loads", pool_counters.warm_loads) + " " +
        KeyValue("quarantines", pool_counters.quarantines) + " " +
        KeyValue("rejections", pool_counters.rejections) + " " +
        KeyValue("charged_bytes", pool_->ChargedBytes()) + " " +
        KeyValue("peak_table_bytes", snapshot.peak_table_bytes) + " " +
        KeyValue("budget", options_.table_memory_budget);
    EmitOk("STATS", details, out);
    return;
  }
  StatusOr<Tenant*> found = FindTenant(*request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  Tenant* tenant = found.value();
  std::string details = "tenant=" + *request.tenant +
                        " fingerprint=" + Hex16(tenant->fingerprint);
  std::shared_ptr<Engine> engine = pool_->Peek(tenant->fingerprint);
  details += " " + KeyValue("resident", engine != nullptr ? 1 : 0);
  if (engine != nullptr) {
    RunStats cumulative = engine->CumulativeStats();
    details += " " + KeyValue("encode_builds", cumulative.encode_builds) +
               " " + KeyValue("td_builds", cumulative.td_builds) + " " +
               KeyValue("normalize_builds", cumulative.normalize_builds) +
               " " + KeyValue("cache_hits", cumulative.cache_hits) + " " +
               KeyValue("artifact_loads", cumulative.artifact_loads) + " " +
               KeyValue("dp_states", cumulative.dp_states) + " " +
               KeyValue("resident_bytes", engine->ResidentArtifactBytes());
  }
  EmitOk("STATS", details, out);
}

void Server::HandleDeadline(const DeadlineRequest& request, std::string* out) {
  deadline_units_ = request.units;
  if (deadline_units_.has_value()) {
    EmitOk("DEADLINE", "units=" + std::to_string(*deadline_units_), out);
  } else {
    EmitOk("DEADLINE", "off", out);
  }
}

void Server::HandleReopt(const ReoptRequest& request, std::string* out) {
  StatusOr<Tenant*> found = FindTenant(request.tenant);
  if (!found.ok()) {
    EmitError(ErrorCode::kNoTenant, found.status().message(), out);
    return;
  }
  StatusOr<SessionPool::Lease> lease = AcquireFor(*found.value());
  if (!lease.ok()) {
    EmitStatus(lease.status(), out);
    return;
  }
  // A fresh per-request budget, one unit per local-search round; exhaustion
  // is the normal stop, never an error reply. REOPT deliberately does not
  // touch the connection's DEADLINE state or the session's own budget. As a
  // non-compute request this always runs on the dispatch thread with the
  // pipeline drained — exactly the quiescence Engine::ImproveDecomposition
  // requires for the one artifact-mutating operation.
  WorkBudget budget;
  budget.SetDeadline(request.units);
  RunStats run;
  StatusOr<Engine::ImproveResult> improved =
      lease.value().engine->ImproveDecomposition(&run, &budget);
  if (!improved.ok()) {
    EmitStatus(improved.status(), out);
    return;
  }
  const Engine::ImproveResult& r = improved.value();
  std::string details =
      "tenant=" + request.tenant +
      " fingerprint=" + Hex16(lease.value().fingerprint) + " " +
      KeyValue("improved", r.improved ? 1 : 0) + " " +
      KeyValue("width_before", static_cast<size_t>(r.width_before)) + " " +
      KeyValue("width_after", static_cast<size_t>(r.width_after)) + " " +
      KeyValue("cost_before", r.cost_before) + " " +
      KeyValue("cost_after", r.cost_after) + " " +
      KeyValue("rounds", r.rounds) + " pool=" + PoolLabel(lease.value()) +
      FinishRun(lease.value().fingerprint, run);
  EmitOk("REOPT", details, out);
}

void Server::HandleClose(const CloseRequest& request, std::string* out) {
  auto it = tenants_.find(request.tenant);
  if (it == tenants_.end()) {
    EmitError(ErrorCode::kNoTenant,
              "tenant '" + request.tenant + "' has no loaded structure", out);
    return;
  }
  // The pooled session (if any) stays resident for other tenants with the
  // same structure; LRU eviction reclaims it naturally.
  tenants_.erase(it);
  EmitOk("CLOSE", "tenant=" + request.tenant, out);
}

ServerStats Server::stats() const {
  ServerStats snapshot;
  snapshot.requests = stats_.requests.load(std::memory_order_relaxed);
  snapshot.replies_ok = stats_.replies_ok.load(std::memory_order_relaxed);
  snapshot.replies_error = stats_.replies_error.load(std::memory_order_relaxed);
  snapshot.data_lines = stats_.data_lines.load(std::memory_order_relaxed);
  snapshot.peak_table_bytes =
      stats_.peak_table_bytes.load(std::memory_order_relaxed);
  return snapshot;
}

void Server::EmitOk(std::string_view command, std::string_view details,
                    std::string* out) {
  stats_.replies_ok.fetch_add(1, std::memory_order_relaxed);
  *out += OkReply(command, details);
  *out += '\n';
}

void Server::EmitData(std::string_view payload, std::string* out) {
  stats_.data_lines.fetch_add(1, std::memory_order_relaxed);
  *out += DataReply(payload);
  *out += '\n';
}

void Server::EmitError(ErrorCode code, std::string_view message,
                       std::string* out) {
  stats_.replies_error.fetch_add(1, std::memory_order_relaxed);
  *out += ErrorReply(code, message);
  *out += '\n';
}

void Server::EmitStatus(const Status& status, std::string* out) {
  EmitError(ErrorCodeFor(status), status.message(), out);
}

}  // namespace treedl::server
