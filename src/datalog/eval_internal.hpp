// Shared preparation for the datalog evaluators (internal header).
#ifndef TREEDL_DATALOG_EVAL_INTERNAL_HPP_
#define TREEDL_DATALOG_EVAL_INTERNAL_HPP_

#include <vector>

#include "datalog/analysis.hpp"
#include "datalog/ast.hpp"
#include "datalog/database.hpp"
#include "datalog/executor.hpp"

namespace treedl::datalog::internal {

struct PreparedRule {
  ResolvedAtom head;
  std::vector<ResolvedAtom> body;      // in plan order
  std::vector<bool> positive;          // aligned with body
  std::vector<bool> body_intensional;  // aligned with body
};

struct PreparedProgram {
  /// Union signature and domain: EDB predicates/elements first.
  Structure result;
  /// Program predicate id -> result predicate id.
  std::vector<PredicateId> predicate_map;
  std::vector<PreparedRule> rules;
  /// Compiled join plans, aligned with `rules` — the full (round 0) plan
  /// plus one variant per positive intensional body position. The
  /// semi-naive engine runs these; the naive evaluator keeps the
  /// interpreted ApplyRule below as the differential oracle.
  std::vector<CompiledRule> compiled;
  /// Total JoinPlans compiled (full + delta variants over all rules).
  size_t plan_compiles = 0;
  /// Per result-predicate intensional flag.
  std::vector<bool> intensional;
  size_t num_variables = 0;
  /// EDB facts plus ground program facts, in result-predicate ids.
  FactStore store;

  PreparedProgram() : result(Signature()) {}
};

/// Builds the union signature, copies the EDB, resolves all rules into plan
/// order, compiles their join plans, and seeds the fact store (EDB facts +
/// ground program facts).
StatusOr<PreparedProgram> Prepare(const Program& program, const Structure& edb);

/// Restriction of the delta literal to a contiguous slice of its relation —
/// how the parallel semi-naive engine splits one wide (rule, delta position)
/// unit into batches. The default covers the whole relation.
struct DeltaRange {
  size_t begin = 0;
  size_t end = static_cast<size_t>(-1);
};

/// Evaluates one rule against `store` (with an optional delta store replacing
/// `store` for the body literal at plan position `delta_position`, optionally
/// restricted to `delta_range`); derived head tuples are passed to `derive`.
/// Returns the number of body matches attempted (work measure).
///
/// This is the tuple-at-a-time *interpreted* evaluation the compiled
/// executors replaced in the semi-naive engine. The naive evaluator keeps it
/// as the reference oracle; the differential harness pins the two engines'
/// models and work counters against each other.
size_t ApplyRule(const PreparedRule& rule, FactStore* store, FactStore* delta,
                 int delta_position, size_t num_variables,
                 const std::function<void(const Tuple&)>& derive,
                 DeltaRange delta_range = {});

}  // namespace treedl::datalog::internal

#endif  // TREEDL_DATALOG_EVAL_INTERNAL_HPP_
