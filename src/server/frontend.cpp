#include "server/frontend.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "common/thread_pool.hpp"

namespace treedl::server {

namespace {

const std::string* TenantNameOf(const Request& request) {
  if (const auto* query = std::get_if<QueryRequest>(&request)) {
    return &query->tenant;
  }
  if (const auto* solve = std::get_if<SolveRequest>(&request)) {
    return &solve->tenant;
  }
  if (const auto* all = std::get_if<SolveAllRequest>(&request)) {
    return &all->tenant;
  }
  if (const auto* mso = std::get_if<MsoRequest>(&request)) {
    return &mso->tenant;
  }
  return nullptr;
}

}  // namespace

Frontend::Frontend(Server* server, FrontendOptions options)
    : server_(server), options_(options) {
  if (options_.num_threads == 0) {
    options_.num_threads = ThreadPool::DefaultNumThreads();
  }
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  hold_ = options_.hold_workers;
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Frontend::~Frontend() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t Frontend::Serve(std::istream& in, std::ostream& out) {
  // The sink runs under the sequencer lock, so stream writes are totally
  // ordered; flushing per reply matches the single-threaded driver.
  Sequencer sequencer([&out](std::string&& payload) {
    if (payload.empty()) return;
    out << payload;
    out.flush();
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    sequencer_ = &sequencer;
  }

  size_t handled = 0;
  std::string line;
  bool keep_going = true;
  while (keep_going && std::getline(in, line)) {
    StatusOr<std::optional<Request>> parsed = ParseRequest(line);
    if (!parsed.ok()) {
      ++handled;
      server_->stats_.requests.fetch_add(1, std::memory_order_relaxed);
      std::string reply;
      server_->EmitError(ErrorCodeFor(parsed.status()),
                         parsed.status().message(), &reply);
      sequencer.Push(sequencer.Allocate(), std::move(reply));
      continue;
    }
    if (!parsed.value().has_value()) continue;  // comment / blank line
    const Request& request = *parsed.value();
    ++handled;

    if (!Server::IsComputeRequest(request)) {
      // Cross-session request (LOAD/ASSERT/SAVE/OPEN/STATS/CLOSE/QUIT):
      // drain the pipeline, then run inline — counters, pool labels, and
      // tenant state are only ever observed at quiescent points.
      {
        std::unique_lock<std::mutex> lock(mu_);
        ++counters_.barriers;
        Drain(lock);
      }
      std::string reply;
      keep_going = server_->HandleRequest(request, &reply);
      sequencer.Push(sequencer.Allocate(), std::move(reply));
      continue;
    }

    std::optional<uint64_t> fingerprint = server_->ComputeFingerprint(request);
    if (fingerprint.has_value() &&
        !server_->pool().IsResident(*fingerprint)) {
      // The acquire will miss: cold construction, eviction, and admission
      // all read charges that in-flight requests are still writing. Quiesce
      // so the miss sees the same pool the single-threaded driver would.
      std::unique_lock<std::mutex> lock(mu_);
      ++counters_.barriers;
      Drain(lock);
    }

    if (fingerprint.has_value() && options_.reject_when_full) {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = queues_.find(*fingerprint);
      size_t depth = it == queues_.end()
                         ? 0
                         : it->second.items.size() +
                               (it->second.running ? 1 : 0);
      if (depth >= options_.queue_capacity) {
        ++counters_.queue_full_rejections;
        lock.unlock();
        server_->stats_.requests.fetch_add(1, std::memory_order_relaxed);
        const std::string* tenant = TenantNameOf(request);
        std::string reply;
        server_->EmitError(ErrorCode::kAdmission,
                           "session queue for tenant '" +
                               (tenant != nullptr ? *tenant : std::string()) +
                               "' is full (" +
                               std::to_string(options_.queue_capacity) +
                               " queued); retry later",
                           &reply);
        sequencer.Push(sequencer.Allocate(), std::move(reply));
        continue;
      }
    }

    server_->stats_.requests.fetch_add(1, std::memory_order_relaxed);
    std::string reply;
    std::optional<Server::ComputeWork> work =
        server_->PrepareCompute(request, &reply);
    uint64_t seq = sequencer.Allocate();
    if (!work.has_value()) {
      sequencer.Push(seq, std::move(reply));
      continue;
    }
    WorkItem item;
    item.seq = seq;
    item.work = std::move(work).value();
    uint64_t session = item.work.lease.fingerprint;
    std::unique_lock<std::mutex> lock(mu_);
    Enqueue(session, std::move(item), lock);
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    Drain(lock);
    sequencer_ = nullptr;
  }
  return handled;
}

void Frontend::ReleaseWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    hold_ = false;
  }
  work_cv_.notify_all();
}

FrontendCounters Frontend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Frontend::Drain(std::unique_lock<std::mutex>& lock) {
  done_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void Frontend::Enqueue(uint64_t fingerprint, WorkItem item,
                       std::unique_lock<std::mutex>& lock) {
  // Queue entries are never erased and only the (blocked) dispatch thread
  // inserts, so this reference stays valid across the wait below.
  SessionQueue& queue = queues_[fingerprint];
  if (!options_.reject_when_full) {
    // Bounded queue, blocking policy: dispatch stalls until the session
    // drains a slot. (With reject_when_full the caller already shed.)
    done_cv_.wait(lock, [&] {
      return queue.items.size() + (queue.running ? 1 : 0) <
             options_.queue_capacity;
    });
  }
  queue.items.push_back(std::move(item));
  ++in_flight_;
  ++counters_.dispatched_compute;
  size_t depth = queue.items.size() + (queue.running ? 1 : 0);
  if (depth > counters_.max_queue_depth) counters_.max_queue_depth = depth;
  if (!queue.running && queue.items.size() == 1) {
    // First pending item of an idle session: hand it to a worker. In every
    // other case the session is already in ready_ or its worker requeues it.
    ready_.push_back(fingerprint);
    work_cv_.notify_one();
  }
}

void Frontend::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || (!hold_ && !ready_.empty()); });
    if (stop_) return;
    uint64_t fingerprint = ready_.front();
    ready_.pop_front();
    auto it = queues_.find(fingerprint);
    WorkItem item = std::move(it->second.items.front());
    it->second.items.pop_front();
    it->second.running = true;  // still occupies a capacity slot
    Sequencer* sequencer = sequencer_;
    lock.unlock();

    std::string reply;
    server_->ExecuteCompute(item.work, &reply);
    sequencer->Push(item.seq, std::move(reply));
    // Drop the lease (and everything else the work holds) BEFORE reporting
    // done: after a drain the pool must see zero leases from finished
    // requests, or eviction decisions would depend on worker timing.
    item.work = Server::ComputeWork{};

    lock.lock();
    it = queues_.find(fingerprint);
    if (!it->second.items.empty()) {
      ready_.push_back(fingerprint);
      work_cv_.notify_one();
    }
    it->second.running = false;
    --in_flight_;
    done_cv_.notify_all();
  }
}

}  // namespace treedl::server
