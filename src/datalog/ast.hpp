// Datalog abstract syntax (§2.4).
//
// A program is a set of function-free Horn rules over a signature of
// predicates. Negation is permitted syntactically and restricted semantically
// to extensional predicates (semipositive datalog) — exactly what the
// MSO-to-datalog construction of Thm 4.5 emits (negated Ri-atoms in bodies).
//
// Databases are plain τ-structures (structure/structure.hpp): the EDB E(A) of
// §2.4 *is* the structure, and evaluation returns a structure extended with
// the derived intensional facts.
#ifndef TREEDL_DATALOG_AST_HPP_
#define TREEDL_DATALOG_AST_HPP_

#include <string>
#include <vector>

#include "common/status.hpp"
#include "structure/signature.hpp"
#include "structure/structure.hpp"

namespace treedl::datalog {

using VariableId = int;

/// A term is either a variable (program-scoped id) or a constant (name kept
/// symbolic until evaluation binds it to a structure element).
struct Term {
  enum class Kind { kVariable, kConstant };
  Kind kind = Kind::kVariable;
  VariableId variable = 0;   // valid iff kind == kVariable
  std::string constant;      // valid iff kind == kConstant

  static Term Var(VariableId v) { return Term{Kind::kVariable, v, {}}; }
  static Term Const(std::string name) {
    return Term{Kind::kConstant, 0, std::move(name)};
  }
  bool IsVar() const { return kind == Kind::kVariable; }
  bool operator==(const Term&) const = default;
};

struct Atom {
  PredicateId predicate = 0;
  std::vector<Term> args;
  bool operator==(const Atom&) const = default;
};

struct Literal {
  Atom atom;
  bool positive = true;
  bool operator==(const Literal&) const = default;
};

struct Rule {
  Atom head;
  std::vector<Literal> body;  // empty body = ground fact (head must be ground)
};

class Program {
 public:
  Program() = default;
  explicit Program(Signature signature) : signature_(std::move(signature)) {}

  const Signature& signature() const { return signature_; }
  Signature* mutable_signature() { return &signature_; }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<Rule>& rules() const { return rules_; }
  size_t NumRules() const { return rules_.size(); }

  /// Interns a variable name (program-scoped; names are only for printing).
  VariableId InternVariable(const std::string& name);
  const std::string& VariableName(VariableId v) const {
    return variable_names_[static_cast<size_t>(v)];
  }
  size_t NumVariables() const { return variable_names_.size(); }

  /// Total number of literals over all rules — the |P| of Thm 4.4.
  size_t SizeInLiterals() const;

  std::string ToString() const;
  std::string RuleToString(const Rule& rule) const;

 private:
  Signature signature_;
  std::vector<Rule> rules_;
  std::vector<std::string> variable_names_;
  std::unordered_map<std::string, VariableId> variable_ids_;
};

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_AST_HPP_
