// Attribute-set closure, superkeys, keys (§2.1).
#ifndef TREEDL_SCHEMA_CLOSURE_HPP_
#define TREEDL_SCHEMA_CLOSURE_HPP_

#include <vector>

#include "schema/schema.hpp"

namespace treedl {

/// Attribute sets are membership vectors of length NumAttributes().
using AttrSet = std::vector<bool>;

AttrSet EmptyAttrSet(const Schema& schema);
AttrSet FullAttrSet(const Schema& schema);
AttrSet MakeAttrSet(const Schema& schema, const std::vector<AttributeId>& attrs);

/// X⁺: all attributes derivable from X via F. Linear in the total size of F
/// (counter-based unit propagation, cf. Dowling–Gallier).
AttrSet Closure(const Schema& schema, const AttrSet& x);

/// X⁺ = X.
bool IsClosed(const Schema& schema, const AttrSet& x);

/// X⁺ = R.
bool IsSuperkey(const Schema& schema, const AttrSet& x);

/// Superkey and minimal (no proper subset is a superkey).
bool IsKey(const Schema& schema, const AttrSet& x);

/// All (minimal) keys, by exhaustive subset search. Requires <= 20 attributes.
std::vector<AttrSet> AllKeysBruteForce(const Schema& schema);

}  // namespace treedl

#endif  // TREEDL_SCHEMA_CLOSURE_HPP_
