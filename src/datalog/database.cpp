#include "datalog/database.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl::datalog {

const std::vector<size_t> FactStore::kEmptyMatch;

bool FactStore::Add(PredicateId p, const Tuple& t) {
  auto& set = sets_[static_cast<size_t>(p)];
  if (!set.insert(t).second) return false;
  auto& rel = relations_[static_cast<size_t>(p)];
  rel.push_back(t);
  ++total_;
  // Maintain any already-built column indexes.
  for (auto& [pos, index] : indexes_[static_cast<size_t>(p)]) {
    index[t[static_cast<size_t>(pos)]].push_back(rel.size() - 1);
  }
  return true;
}

const std::vector<size_t>& FactStore::MatchByColumn(PredicateId p, int pos,
                                                    ElementId value) {
  EnsureColumnIndex(p, pos);
  const auto& index = indexes_[static_cast<size_t>(p)].find(pos)->second;
  auto hit = index.find(value);
  if (hit == index.end()) return kEmptyMatch;
  return hit->second;
}

void FactStore::EnsureColumnIndex(PredicateId p, int pos) {
  auto& pred_indexes = indexes_[static_cast<size_t>(p)];
  if (pred_indexes.count(pos) > 0) return;
  ColumnIndex index;
  const auto& rel = relations_[static_cast<size_t>(p)];
  for (size_t i = 0; i < rel.size(); ++i) {
    index[rel[i][static_cast<size_t>(pos)]].push_back(i);
  }
  pred_indexes.emplace(pos, std::move(index));
}

ResolvedAtom ResolveAtom(const Atom& atom, Structure* domain) {
  ResolvedAtom out;
  out.predicate = atom.predicate;
  out.const_args.reserve(atom.args.size());
  out.vars.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    if (t.IsVar()) {
      out.const_args.push_back(kUnbound);
      out.vars.push_back(t.variable);
    } else {
      // Constants mentioned only in the program are interned into the domain
      // (they simply never match EDB facts unless the EDB also uses them).
      out.const_args.push_back(domain->AddElement(t.constant));
      out.vars.push_back(-1);
    }
  }
  return out;
}

bool FullyBound(const ResolvedAtom& atom, const Binding& binding) {
  for (size_t i = 0; i < atom.vars.size(); ++i) {
    if (atom.vars[i] >= 0 &&
        binding[static_cast<size_t>(atom.vars[i])] == kUnbound) {
      return false;
    }
  }
  return true;
}

Tuple GroundArgs(const ResolvedAtom& atom, const Binding& binding) {
  Tuple out(atom.const_args.size());
  for (size_t i = 0; i < atom.const_args.size(); ++i) {
    if (atom.vars[i] >= 0) {
      out[i] = binding[static_cast<size_t>(atom.vars[i])];
      TREEDL_DCHECK(out[i] != kUnbound);
    } else {
      out[i] = atom.const_args[i];
    }
  }
  return out;
}

size_t MatchAtom(FactStore* store, const ResolvedAtom& atom, Binding* binding,
                 const std::function<bool(void)>& yield) {
  return MatchAtomInRange(store, atom, binding, 0,
                          std::numeric_limits<size_t>::max(), yield);
}

int ProbePosition(const ResolvedAtom& atom,
                  const std::function<bool(VariableId)>& is_bound) {
  for (size_t i = 0; i < atom.const_args.size(); ++i) {
    if (atom.vars[i] < 0 || is_bound(atom.vars[i])) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t MatchAtomInRange(FactStore* store, const ResolvedAtom& atom,
                        Binding* binding, size_t begin, size_t end,
                        const std::function<bool(void)>& yield) {
  // Pick a bound column for index access, if any.
  int index_pos = ProbePosition(atom, [&](VariableId var) {
    return (*binding)[static_cast<size_t>(var)] != kUnbound;
  });

  // Candidate tuples (by index, or the relation's [begin, end) slice).
  const std::vector<Tuple>& rel = store->Tuples(atom.predicate);
  const std::vector<size_t>* candidates = nullptr;
  std::vector<size_t> all;
  if (index_pos >= 0) {
    ElementId index_value = atom.const_args[static_cast<size_t>(index_pos)];
    if (atom.vars[static_cast<size_t>(index_pos)] >= 0) {
      index_value = (*binding)[static_cast<size_t>(
          atom.vars[static_cast<size_t>(index_pos)])];
    }
    candidates = &store->MatchByColumn(atom.predicate, index_pos, index_value);
  } else {
    size_t lo = std::min(begin, rel.size());
    size_t hi = std::min(end, rel.size());
    all.resize(hi > lo ? hi - lo : 0);
    for (size_t i = 0; i < all.size(); ++i) all[i] = lo + i;
    candidates = &all;
  }

  size_t matches = 0;
  for (size_t idx : *candidates) {
    if (idx < begin || idx >= end) continue;
    const Tuple& tuple = rel[idx];
    // Attempt unification, remembering which variables this tuple binds.
    std::vector<VariableId> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < tuple.size() && ok; ++i) {
      VariableId var = atom.vars[i];
      if (var < 0) {
        ok = atom.const_args[i] == tuple[i];
        continue;
      }
      ElementId& slot = (*binding)[static_cast<size_t>(var)];
      if (slot == kUnbound) {
        slot = tuple[i];
        newly_bound.push_back(var);
      } else {
        ok = slot == tuple[i];
      }
    }
    bool keep_going = true;
    if (ok) {
      ++matches;
      keep_going = yield();
    }
    for (VariableId var : newly_bound) {
      (*binding)[static_cast<size_t>(var)] = kUnbound;
    }
    if (ok && !keep_going) break;
  }
  return matches;
}

}  // namespace treedl::datalog
