#include <gtest/gtest.h>

#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "structure/structure_io.hpp"
#include "td/elimination_order.hpp"
#include "td/heuristics.hpp"
#include "td/td_io.hpp"
#include "td/tree_decomposition.hpp"
#include "td/validate.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

Structure PaperStructure() {
  auto parsed = ParseStructure(Signature::SchemaSignature(),
                               "att(a). att(b). att(c). att(d). att(e). att(g).\n"
                               "fd(f1). fd(f2). fd(f3). fd(f4). fd(f5).\n"
                               "lh(a, f1). lh(b, f1). lh(c, f2). lh(c, f3).\n"
                               "lh(d, f3). lh(d, f4). lh(e, f4). lh(g, f5).\n"
                               "rh(c, f1). rh(b, f2). rh(e, f3). rh(g, f4).\n"
                               "rh(e, f5).\n");
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

// Figure 1's tree decomposition of the running example, width 2.
TreeDecomposition PaperFigure1Td(const Structure& s) {
  auto el = [&](const char* name) { return s.ElementByName(name).value(); };
  TreeDecomposition td;
  TdNodeId root = td.AddNode({el("f3"), el("d"), el("e")});
  TdNodeId n_f4 = td.AddNode({el("d"), el("e"), el("f4")}, root);
  TdNodeId n_f5 = td.AddNode({el("e"), el("f4"), el("f5")}, n_f4);
  td.AddNode({el("f4"), el("f5"), el("g")}, n_f5);
  TdNodeId n_c = td.AddNode({el("c"), el("f3")}, root);
  TdNodeId n_cf1 = td.AddNode({el("c"), el("f1"), el("f2")}, n_c);
  TdNodeId n_bf1 = td.AddNode({el("b"), el("f1"), el("f2")}, n_cf1);
  td.AddNode({el("a"), el("b"), el("f1")}, n_bf1);
  return td;
}

TEST(TreeDecompositionTest, WidthAndAccessors) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  EXPECT_EQ(td.NumNodes(), 8u);
  EXPECT_EQ(td.Width(), 2);  // the paper's Fig. 1 decomposition is optimal
  EXPECT_TRUE(td.BagContains(td.root(), s.ElementByName("d").value()));
}

TEST(TreeDecompositionTest, PaperFigure1IsValid) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  EXPECT_TRUE(ValidateForStructure(s, td).ok());
}

TEST(TreeDecompositionTest, PreAndPostOrderAreConsistent) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  auto pre = td.PreOrder();
  ASSERT_EQ(pre.size(), td.NumNodes());
  EXPECT_EQ(pre.front(), td.root());
  std::vector<bool> seen(td.NumNodes(), false);
  for (TdNodeId id : pre) {
    TdNodeId p = td.node(id).parent;
    if (p != kNoTdNode) {
      EXPECT_TRUE(seen[static_cast<size_t>(p)]);
    }
    seen[static_cast<size_t>(id)] = true;
  }
  auto post = td.PostOrder();
  EXPECT_EQ(post.back(), td.root());
}

TEST(TreeDecompositionTest, ReRootPreservesValidity) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TreeDecomposition copy = PaperFigure1Td(s);
    ASSERT_TRUE(copy.ReRoot(static_cast<TdNodeId>(i)).ok());
    EXPECT_EQ(copy.root(), static_cast<TdNodeId>(i));
    EXPECT_TRUE(ValidateForStructure(s, copy).ok()) << "rooted at " << i;
    EXPECT_EQ(copy.Width(), 2);
  }
}

TEST(TreeDecompositionTest, ReRootRejectsBadId) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  EXPECT_FALSE(td.ReRoot(99).ok());
}

TEST(ValidateTest, DetectsMissingElement) {
  Structure s = PaperStructure();
  TreeDecomposition td;
  td.AddNode({0, 1});  // covers almost nothing
  Status st = ValidateForStructure(s, td);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, DetectsUncoveredFact) {
  // Elements all covered, but lh(a, f1) has no common bag.
  auto parsed = ParseStructure(Signature::SchemaSignature(),
                               "att(a). fd(f1). lh(a, f1). rh(a, f1).");
  ASSERT_TRUE(parsed.ok());
  TreeDecomposition td;
  TdNodeId r = td.AddNode({parsed->ElementByName("a").value()});
  td.AddNode({parsed->ElementByName("f1").value()}, r);
  Status st = ValidateForStructure(*parsed, td);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("fact"), std::string::npos);
}

TEST(ValidateTest, DetectsConnectednessViolation) {
  // Element 0 occurs in two bags separated by a bag without it.
  Graph g = PathGraph(3);
  TreeDecomposition td;
  TdNodeId a = td.AddNode({0, 1});
  TdNodeId b = td.AddNode({1, 2}, a);
  td.AddNode({0, 2}, b);  // 0 reappears: not a subtree
  Status st = ValidateForGraph(g, td);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("connectedness"), std::string::npos);
}

TEST(SubtreeTest, SubtreeAndEnvelopePartitionNodes) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId t = static_cast<TdNodeId>(i);
    auto sub = SubtreeNodes(td, t);
    auto env = EnvelopeNodes(td, t);
    // |T_t| + |T̄_t| = |T| + 1 (t counted in both).
    EXPECT_EQ(sub.size() + env.size(), td.NumNodes() + 1);
  }
}

TEST(SubtreeTest, InducedStructuresMatchFigure3) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  // Node with bag {c, f3}: subtree holds the a/b/c/f1/f2 part, the envelope
  // holds the d/e/g/f3/f4/f5 part (plus c, f3 in both).
  TdNodeId n_c = kNoTdNode;
  ElementId c = s.ElementByName("c").value();
  ElementId f3 = s.ElementByName("f3").value();
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    if (td.Bag(static_cast<TdNodeId>(i)) ==
        std::vector<ElementId>{std::min(c, f3), std::max(c, f3)}) {
      n_c = static_cast<TdNodeId>(i);
    }
  }
  ASSERT_NE(n_c, kNoTdNode);
  std::vector<ElementId> bag;
  Structure down = InducedStructure(s, td, n_c, /*envelope=*/false, &bag);
  EXPECT_EQ(down.NumElements(), 6u);  // a, b, c, f1, f2, f3
  EXPECT_TRUE(down.HasElementNamed("a"));
  EXPECT_FALSE(down.HasElementNamed("g"));
  EXPECT_EQ(bag.size(), 2u);
  Structure up = InducedStructure(s, td, n_c, /*envelope=*/true, &bag);
  EXPECT_EQ(up.NumElements(), 7u);  // c, d, e, g, f3, f4, f5
  EXPECT_TRUE(up.HasElementNamed("g"));
  EXPECT_FALSE(up.HasElementNamed("a"));
}

TEST(EliminationTest, OrderWidthMatchesDecomposition) {
  Rng rng(TestSeed());
  Graph g = RandomPartialKTree(14, 3, 0.7, &rng);
  std::vector<VertexId> order = HeuristicOrder(g, TdHeuristic::kMinFill);
  auto width = OrderWidth(g, order);
  ASSERT_TRUE(width.ok());
  auto td = DecompositionFromOrder(g, order);
  ASSERT_TRUE(td.ok());
  EXPECT_EQ(td->Width(), *width);
  EXPECT_TRUE(ValidateForGraph(g, *td).ok());
}

TEST(EliminationTest, RejectsNonPermutations) {
  Graph g = PathGraph(3);
  EXPECT_FALSE(DecompositionFromOrder(g, {0, 1}).ok());
  EXPECT_FALSE(DecompositionFromOrder(g, {0, 1, 1}).ok());
  EXPECT_FALSE(DecompositionFromOrder(g, {0, 1, 7}).ok());
}

TEST(HeuristicsTest, KnownWidths) {
  // Heuristics are exact on these families.
  EXPECT_EQ(Decompose(PathGraph(10))->Width(), 1);
  EXPECT_EQ(Decompose(CycleGraph(8))->Width(), 2);
  EXPECT_EQ(Decompose(CompleteGraph(5))->Width(), 4);
  EXPECT_EQ(Decompose(Graph(3))->Width(), 0);  // edgeless
}

TEST(HeuristicsTest, AllHeuristicsProduceValidDecompositions) {
  Rng rng(TestSeed());
  for (TdHeuristic h :
       {TdHeuristic::kMinDegree, TdHeuristic::kMinFill, TdHeuristic::kMcs}) {
    Graph g = RandomPartialKTree(20, 3, 0.6, &rng);
    auto td = Decompose(g, h);
    ASSERT_TRUE(td.ok());
    EXPECT_TRUE(ValidateForGraph(g, *td).ok());
    EXPECT_GE(td->Width(), 0);
  }
}

TEST(HeuristicsTest, PartialKTreeWidthBounded) {
  Rng rng(TestSeed());
  // Min-fill on a full k-tree recovers width k exactly; partial stays <= k
  // most of the time (guaranteed: treewidth <= k, heuristic may overshoot on
  // the partial graph, so only assert on the full k-tree).
  for (int k : {1, 2, 3, 4}) {
    Graph g = RandomKTree(18, k, &rng);
    auto td = Decompose(g, TdHeuristic::kMinFill);
    ASSERT_TRUE(td.ok());
    EXPECT_EQ(td->Width(), k);
  }
}

TEST(HeuristicsTest, StructureDecompositionPaperExampleWidthTwo) {
  Structure s = PaperStructure();
  auto td = DecomposeStructure(s);
  ASSERT_TRUE(td.ok());
  EXPECT_TRUE(ValidateForStructure(s, *td).ok());
  // Ex 2.2 proves tw = 2 for this structure; min-fill finds it.
  EXPECT_EQ(td->Width(), 2);
}

TEST(ExactTreewidthTest, KnownValues) {
  EXPECT_EQ(ExactTreewidth(PathGraph(6)).value(), 1);
  EXPECT_EQ(ExactTreewidth(CycleGraph(6)).value(), 2);
  EXPECT_EQ(ExactTreewidth(CompleteGraph(5)).value(), 4);
  EXPECT_EQ(ExactTreewidth(GridGraph(3, 3)).value(), 3);
  EXPECT_EQ(ExactTreewidth(PetersenGraph()).value(), 4);
  EXPECT_EQ(ExactTreewidth(Graph(4)).value(), 0);
}

TEST(ExactTreewidthTest, HeuristicNeverBeatsExact) {
  Rng rng(TestSeed());
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGnp(9, 0.4, &rng);
    int exact = ExactTreewidth(g).value();
    for (TdHeuristic h :
         {TdHeuristic::kMinDegree, TdHeuristic::kMinFill, TdHeuristic::kMcs}) {
      EXPECT_GE(Decompose(g, h)->Width(), exact);
    }
  }
}

TEST(ExactTreewidthTest, RejectsLargeGraphs) {
  EXPECT_EQ(ExactTreewidth(Graph(25)).status().code(), StatusCode::kOutOfRange);
}

TEST(TdIoTest, RenderContainsAllNodes) {
  Structure s = PaperStructure();
  TreeDecomposition td = PaperFigure1Td(s);
  std::string text = RenderTree(td, NamerFor(s));
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    EXPECT_NE(text.find("n" + std::to_string(i) + " "), std::string::npos);
  }
  EXPECT_NE(text.find("f3"), std::string::npos);
  std::string dot = ToDot(td, NamerFor(s));
  EXPECT_NE(dot.find("graph td"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace treedl
