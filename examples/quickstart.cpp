// Quickstart: the paper's running example, end to end.
//
// Builds the schema of Ex 2.1, encodes it as a τ-structure (Ex 2.2), finds a
// tree decomposition, and runs both PRIMALITY algorithms (§5.2 decision,
// §5.3 enumeration).
#include <iostream>

#include "core/primality.hpp"
#include "core/primality_enum.hpp"
#include "graph/gaifman.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "td/heuristics.hpp"
#include "td/td_io.hpp"

int main() {
  using namespace treedl;

  // (R, F) with R = abcdeg and F = {ab->c, c->b, cd->e, de->g, g->e}.
  Schema schema = Schema::PaperExampleSchema();
  std::cout << "Schema (Ex 2.1): " << schema.ToString() << "\n\n";

  // Encode as τ-structure over {fd, att, lh, rh} and decompose.
  SchemaEncoding encoding = EncodeSchema(schema);
  auto td = DecomposeStructure(encoding.structure);
  if (!td.ok()) {
    std::cerr << "decomposition failed: " << td.status() << "\n";
    return 1;
  }
  std::cout << "Tree decomposition (min-fill, width " << td->Width()
            << "):\n"
            << RenderTree(*td, NamerFor(encoding.structure)) << "\n";

  // §5.2 decision, per attribute.
  std::cout << "PRIMALITY decision (Fig. 6 program):\n";
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    auto prime = core::IsPrimeViaTd(schema, encoding, *td, a);
    if (!prime.ok()) {
      std::cerr << "solver failed: " << prime.status() << "\n";
      return 1;
    }
    std::cout << "  " << schema.AttributeName(a) << ": "
              << (*prime ? "prime" : "not prime") << "\n";
  }

  // §5.3 enumeration: one linear two-pass run for all attributes.
  auto primes = core::EnumeratePrimes(schema, encoding, *td);
  if (!primes.ok()) {
    std::cerr << "enumeration failed: " << primes.status() << "\n";
    return 1;
  }
  std::cout << "\nPRIMALITY enumeration (§5.3, one bottom-up + one top-down "
               "pass):\n  primes = {";
  bool first = true;
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    if (!(*primes)[static_cast<size_t>(a)]) continue;
    if (!first) std::cout << ", ";
    first = false;
    std::cout << schema.AttributeName(a);
  }
  std::cout << "}\n";
  std::cout << "\nExpected from the paper: keys {a,b,d} and {a,c,d}; primes "
               "a, b, c, d.\n";
  return 0;
}
