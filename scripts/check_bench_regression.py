#!/usr/bin/env python3
"""Gate the bench trajectory: compare a fresh quick-bench JSON to a baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.10]

Both files hold the merged quick-bench counters (see the quick-bench CI job:
{"solve_all": {...}, "parallel_dp": {...}, "enumeration": {...}}). All
counters are deterministic — state counts, shard counts and balance ratios,
table bytes, evictions — never wall-clock, so the comparison is meaningful on
any runner. A gated key whose relative change exceeds the threshold in either
direction fails the gate: these numbers only move when the algorithms change,
and such a change must be explained by re-baselining, not slip through.

Keys present in only one file (e.g. a bench added after the baseline) are
reported but by default never fail the gate, so the trajectory can grow.
--forbid-missing tightens that for same-generation comparisons (committed
BENCH_prN.json vs the BENCH_prN.json this run produced): there the key sets
must match exactly, so a silently dropped or renamed counter fails too.
"""

import argparse
import json
import sys

# Configuration echoes (instance shape, seeds) — identity, not performance.
METADATA_KEYS = {"bench", "vertices", "treewidth", "seed", "num_fds",
                 "num_attributes"}


def flatten(prefix, node, out):
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = node


def fail_usage(message):
    """Input problems (missing/malformed files) exit 2 — distinct from the
    gate's exit 1 — so CI logs separate 'your invocation is broken' from
    'your counters regressed'."""
    print(f"check_bench_regression: error: {message}", file=sys.stderr)
    sys.exit(2)


def load_counters(path, role):
    """Reads and flattens one counters file, exiting with an actionable
    message (not a traceback) when it is missing or malformed."""
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as error:
        fail_usage(f"cannot read {role} {path!r}: {error.strerror or error}. "
                   f"Run the quick benches with --json (see the quick-bench "
                   f"CI job) to produce it, or fix the path.")
    except json.JSONDecodeError as error:
        fail_usage(f"{role} {path!r} is not valid JSON: {error}. Regenerate "
                   f"it with the quick benches' --json flag; do not edit the "
                   f"counters by hand.")
    if not isinstance(data, dict):
        fail_usage(f"{role} {path!r} must hold a JSON object of merged bench "
                   f"sections, got {type(data).__name__}.")
    out = {}
    flatten("", data, out)
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed relative change (default 0.10)")
    parser.add_argument("--forbid-missing", action="store_true",
                        help="fail on keys present in only one file")
    args = parser.parse_args()

    baseline = load_counters(args.baseline, "baseline")
    current = load_counters(args.current, "current")

    failures = []
    print(f"{'counter':<48} {'baseline':>14} {'current':>14} {'change':>9}")
    for key in sorted(baseline.keys() | current.keys()):
        if key.rsplit(".", 1)[-1] in METADATA_KEYS:
            continue
        if key not in baseline or key not in current:
            where = "baseline" if key in baseline else "current"
            marker = ""
            if args.forbid_missing:
                failures.append(key)
                marker = "  << FAIL"
            print(f"{key:<48} {'(only in ' + where + ')':>39}{marker}")
            continue
        old, new = baseline[key], current[key]
        if old == new:
            change = 0.0
        elif old == 0:
            change = float("inf")
        else:
            change = abs(new - old) / abs(old)
        marker = ""
        if change > args.threshold:
            failures.append(key)
            marker = "  << FAIL"
        shown = "inf" if change == float("inf") else f"{change:+8.1%}"
        print(f"{key:<48} {old:>14} {new:>14} {shown:>9}{marker}")

    if failures:
        print(f"\nFAIL: {len(failures)} counter(s) moved more than "
              f"{args.threshold:.0%} vs {args.baseline}: {', '.join(failures)}")
        print("If the change is intentional, regenerate the committed "
              "baseline JSON in the same PR and explain the delta.")
        return 1
    print(f"\nOK: all shared counters within {args.threshold:.0%} of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
