#include "datalog/ast.hpp"

namespace treedl::datalog {

VariableId Program::InternVariable(const std::string& name) {
  auto it = variable_ids_.find(name);
  if (it != variable_ids_.end()) return it->second;
  VariableId id = static_cast<VariableId>(variable_names_.size());
  variable_names_.push_back(name);
  variable_ids_.emplace(name, id);
  return id;
}

size_t Program::SizeInLiterals() const {
  size_t size = 0;
  for (const Rule& rule : rules_) size += 1 + rule.body.size();
  return size;
}

namespace {

std::string TermToString(const Program& program, const Term& term) {
  if (term.IsVar()) return program.VariableName(term.variable);
  return term.constant;
}

std::string AtomToString(const Program& program, const Atom& atom) {
  std::string out = program.signature().name(atom.predicate);
  if (!atom.args.empty()) {
    out += "(";
    for (size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += TermToString(program, atom.args[i]);
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string Program::RuleToString(const Rule& rule) const {
  std::string out = AtomToString(*this, rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      if (!rule.body[i].positive) out += "not ";
      out += AtomToString(*this, rule.body[i].atom);
    }
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules_) {
    out += RuleToString(rule);
    out += "\n";
  }
  return out;
}

}  // namespace treedl::datalog
