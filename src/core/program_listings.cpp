#include "core/program_listings.hpp"

namespace treedl::core {

const std::string& ThreeColorabilityProgramListing() {
  static const std::string kListing = R"(% Program 3-Colorability (Figure 5)
% leaf node.
solve(s, R, G, B) <- leaf(s), bag(s, X), partition(s, R, G, B),
                     allowed(s, R), allowed(s, G), allowed(s, B).
% element introduction node.
solve(s, R + {v}, G, B) <- bag(s, X + {v}), child1(s1, s), bag(s1, X),
                           solve(s1, R, G, B), allowed(s, R + {v}).
solve(s, R, G + {v}, B) <- bag(s, X + {v}), child1(s1, s), bag(s1, X),
                           solve(s1, R, G, B), allowed(s, G + {v}).
solve(s, R, G, B + {v}) <- bag(s, X + {v}), child1(s1, s), bag(s1, X),
                           solve(s1, R, G, B), allowed(s, B + {v}).
% element removal node.
solve(s, R, G, B) <- bag(s, X), child1(s1, s), bag(s1, X + {v}),
                     solve(s1, R + {v}, G, B).
solve(s, R, G, B) <- bag(s, X), child1(s1, s), bag(s1, X + {v}),
                     solve(s1, R, G + {v}, B).
solve(s, R, G, B) <- bag(s, X), child1(s1, s), bag(s1, X + {v}),
                     solve(s1, R, G, B + {v}).
% branch node.
solve(s, R, G, B) <- bag(s, X), child1(s1, s), child2(s2, s),
                     bag(s1, X), bag(s2, X),
                     solve(s1, R, G, B), solve(s2, R, G, B).
% result (at the root node).
success <- root(s), solve(s, R, G, B).
)";
  return kListing;
}

const std::string& PrimalityProgramListing() {
  static const std::string kListing = R"(% Program PRIMALITY (Figure 6)
% leaf node.
solve(s, Y, FY, Co, DC, FC) <- leaf(s), bag(s, At, Fd), Y u Co = At,
    Y n Co = {}, outside(FY, Y, At, Fd), FC sub Fd, consistent(FC, Co),
    DC = {rhs(f) | f in FC}, DC sub Co.
% attribute introduction node.
solve(s, Y + {b}, FY, Co, DC, FC) <- bag(s, At + {b}, Fd), child1(s1, s),
    bag(s1, At, Fd), solve(s1, Y, FY, Co, DC, FC).
solve(s, Y, FY, Co + {b}, DC, FC) <- bag(s, At + {b}, Fd), child1(s1, s),
    bag(s1, At, Fd), consistent(FC, Co + {b}), solve(s1, Y, FY1, Co, DC, FC),
    outside(FY2, Y, At, Fd), FY = FY1 u FY2.
% FD introduction node.
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd + {f}), child1(s1, s),
    bag(s1, At, Fd), rh(b, f), b in Y, solve(s1, Y, FY, Co, DC, FC).
solve(s, Y, FY, Co, DC + {b}, FC + {f}) <- bag(s, At, Fd + {f}),
    child1(s1, s), bag(s1, At, Fd), rh(b, f), b in Co,
    solve(s1, Y, FY1, Co, DC, FC), consistent({f}, Co),
    outside(FY2, Y, At, {f}), FY = FY1 u FY2.
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd + {f}), child1(s1, s),
    bag(s1, At, Fd), rh(b, f), b in Co, solve(s1, Y, FY1, Co, DC, FC),
    outside(FY2, Y, At, {f}), FY = FY1 u FY2.
% attribute removal node.
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd), child1(s1, s),
    bag(s1, At + {b}, Fd), solve(s1, Y + {b}, FY, Co, DC, FC).
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd), child1(s1, s),
    bag(s1, At + {b}, Fd), solve(s1, Y, FY, Co + {b}, DC + {b}, FC).
% FD removal node.
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd), child1(s1, s),
    bag(s1, At, Fd + {f}), rh(b, f), b in Y, solve(s1, Y, FY, Co, DC, FC).
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd), child1(s1, s),
    bag(s1, At, Fd + {f}), rh(b, f), b in Co,
    solve(s1, Y, FY + {f}, Co, DC, FC + {f}).
solve(s, Y, FY, Co, DC, FC) <- bag(s, At, Fd), child1(s1, s),
    bag(s1, At, Fd + {f}), rh(b, f), b in Co,
    solve(s1, Y, FY + {f}, Co, DC, FC), f notin FC.
% branch node.
solve(s, Y, FY1 u FY2, Co, DC1 u DC2, FC) <- bag(s, At, Fd), child1(s1, s),
    bag(s1, At, Fd), child2(s2, s), bag(s2, At, Fd),
    solve(s1, Y, FY1, Co, DC1, FC), solve(s2, Y, FY2, Co, DC2, FC),
    unique(DC1, DC2, FC).
% result (at the root node).
success <- root(s), bag(s, At, Fd), a in At, solve(s, Y, FY, Co, DC, FC),
    a notin Y, FY = {f in Fd | rhs(f) notin Y}, DC = Co \ {a}.
)";
  return kListing;
}

const std::string& MonadicPrimalityProgramListing() {
  static const std::string kListing = R"(% Program Monadic-Primality (Section 5.3)
prime(a) <- leaf(s), bag(s, At, Fd), a in At,
    solveDown(s, Y, FY, Co, DC, FC), a notin Y,
    FY = {f in Fd | rhs(f) notin Y}, DC = Co \ {a}.
)";
  return kListing;
}

}  // namespace treedl::core
