#include "engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/binary_io.hpp"
#include "common/timer.hpp"
#include "common/work_budget.hpp"
#include "core/extensions.hpp"
#include "core/three_color.hpp"
#include "datalog/eval.hpp"
#include "datalog/grounder.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"
#include "engine/session_io.hpp"
#include "graph/gaifman.hpp"
#include "mso/evaluator.hpp"
#include "mso2dl/mso_to_datalog.hpp"
#include "structure/structure_io.hpp"
#include "td/elimination_order.hpp"
#include "td/heuristics.hpp"
#include "td/improve.hpp"

namespace treedl {

namespace {

StatusOr<Structure> RunBackend(const datalog::Program& program,
                               const Structure& edb, DatalogBackend backend,
                               const datalog::EvalExec& exec, RunStats* stats) {
  // Evaluate into a local record and fold it in: the public evaluate
  // functions reset their stats argument at entry, which must not wipe the
  // counters the engine already recorded for this query. Only the semi-naive
  // engine is parallel; naive stays the sequential reference oracle and the
  // grounded pipeline is dominated by its grounding phase.
  RunStats eval_run;
  StatusOr<Structure> result = [&]() -> StatusOr<Structure> {
    switch (backend) {
      case DatalogBackend::kNaive:
        return datalog::NaiveEvaluate(program, edb, &eval_run);
      case DatalogBackend::kSemiNaive:
        return datalog::SemiNaiveEvaluate(program, edb, exec, &eval_run);
      case DatalogBackend::kGrounded:
        return datalog::GroundedEvaluate(program, edb, &eval_run);
    }
    return Status::Internal("unknown datalog backend");
  }();
  stats->Accumulate(eval_run);
  return result;
}

void MergeDp(const core::DpStats& dp, RunStats* stats) {
  stats->dp_states += dp.total_states;
  stats->dp_max_states_per_node =
      std::max(stats->dp_max_states_per_node, dp.max_states_per_node);
  stats->dp_shards += dp.shards;
  stats->dp_shard_millis.insert(stats->dp_shard_millis.end(),
                                dp.shard_millis.begin(),
                                dp.shard_millis.end());
  stats->dp_traversals += dp.traversals;
  stats->dp_passes += dp.passes;
  stats->dp_peak_table_bytes =
      std::max(stats->dp_peak_table_bytes, dp.peak_table_bytes);
  stats->dp_tables_evicted += dp.tables_evicted;
}

}  // namespace

const char* DatalogBackendName(DatalogBackend backend) {
  switch (backend) {
    case DatalogBackend::kNaive: return "naive";
    case DatalogBackend::kSemiNaive: return "seminaive";
    case DatalogBackend::kGrounded: return "grounded";
  }
  return "?";
}

Engine::Engine(Schema schema, EngineOptions options)
    : options_(std::move(options)),
      schema_(std::make_unique<Schema>(std::move(schema))),
      sync_(std::make_unique<Sync>()) {}

Engine::Engine(Structure structure, EngineOptions options)
    : options_(std::move(options)),
      owned_structure_(std::make_unique<Structure>(std::move(structure))),
      sync_(std::make_unique<Sync>()) {}

Engine Engine::FromGraph(const Graph& graph, EngineOptions options) {
  return Engine(GraphToStructure(graph), std::move(options));
}

void Engine::Record(const RunStats& stats) {
  std::lock_guard<std::mutex> lock(sync_->stats_mu);
  cumulative_.Accumulate(stats);
}

RunStats Engine::CumulativeStats() const {
  std::lock_guard<std::mutex> lock(sync_->stats_mu);
  return cumulative_;
}

void Engine::ResetCumulativeStats() {
  std::lock_guard<std::mutex> lock(sync_->stats_mu);
  cumulative_ = RunStats{};
}

size_t Engine::ResolvedNumThreads() const {
  if (options_.shared_pool != nullptr) return options_.shared_pool->NumThreads();
  return options_.num_threads == 0 ? ThreadPool::DefaultNumThreads()
                                   : options_.num_threads;
}

// --- Cached artifacts (sync_->cache_mu held throughout) ---------------------

StatusOr<const SchemaEncoding*> Engine::EnsureEncoding(RunStats* stats) {
  if (schema_ == nullptr) {
    return Status::InvalidArgument("not a schema session");
  }
  if (encoding_ == nullptr) {
    encoding_ = std::make_unique<SchemaEncoding>(EncodeSchema(*schema_));
    ++stats->encode_builds;
    ++GlobalEngineCounters().encode_builds;
  } else {
    ++stats->cache_hits;
  }
  return encoding_.get();
}

StatusOr<const Structure*> Engine::EnsureStructure(RunStats* stats) {
  if (owned_structure_ != nullptr) return owned_structure_.get();
  TREEDL_ASSIGN_OR_RETURN(const SchemaEncoding* encoding,
                          EnsureEncoding(stats));
  return &encoding->structure;
}

StatusOr<const Graph*> Engine::EnsureGaifman(RunStats* stats) {
  if (!gaifman_.has_value()) {
    TREEDL_ASSIGN_OR_RETURN(const Structure* structure,
                            EnsureStructure(stats));
    gaifman_ = GaifmanGraph(*structure);
  }
  return &*gaifman_;
}

StatusOr<const TreeDecomposition*> Engine::EnsureTd(RunStats* stats) {
  if (td_.has_value()) {
    ++stats->cache_hits;
    return &*td_;
  }
  TREEDL_ASSIGN_OR_RETURN(const Structure* structure, EnsureStructure(stats));
  StatusOr<TreeDecomposition> td = [&]() -> StatusOr<TreeDecomposition> {
    if (options_.decomposition.has_value()) return *options_.decomposition;
    TREEDL_ASSIGN_OR_RETURN(const Graph* gaifman, EnsureGaifman(stats));
    if (options_.elimination_order.has_value()) {
      return DecompositionFromOrder(*gaifman, *options_.elimination_order);
    }
    if (options_.td_pipeline) {
      PipelineOptions popts;
      popts.starts = options_.td_pipeline_starts;
      popts.seed = SessionFingerprint();
      return DecomposePipeline(*gaifman, popts);
    }
    return Decompose(*gaifman, options_.heuristic);
  }();
  TREEDL_RETURN_IF_ERROR(td.status());
  if (options_.validate) {
    engine::PipelineState state;
    state.structure = structure;
    state.td = *td;
    engine::PassPipeline pipeline;
    pipeline.Emplace<engine::ValidateStructurePass>();
    TREEDL_RETURN_IF_ERROR(
        pipeline.Run(state, options_.collect_pass_timings ? stats : nullptr));
  }
  td_ = std::move(td).value();
  ++stats->td_builds;
  ++GlobalEngineCounters().td_builds;
  return &*td_;
}

StatusOr<const core::internal::PrimalityContext*> Engine::EnsurePrimality(
    RunStats* stats) {
  TREEDL_ASSIGN_OR_RETURN(const SchemaEncoding* encoding,
                          EnsureEncoding(stats));
  if (primality_ == nullptr) {
    primality_ = std::make_unique<core::internal::PrimalityContext>(*schema_,
                                                                    *encoding);
  }
  return primality_.get();
}

StatusOr<const TreeDecomposition*> Engine::EnsureClosedTd(RunStats* stats) {
  if (closed_td_.has_value()) {
    ++stats->cache_hits;
    return &*closed_td_;
  }
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, EnsureTd(stats));
  TREEDL_ASSIGN_OR_RETURN(const core::internal::PrimalityContext* context,
                          EnsurePrimality(stats));
  engine::PipelineState state;
  state.td = *td;
  engine::PassPipeline pipeline;
  pipeline.Emplace<engine::RhsClosurePass>(encoding_.get(), context);
  TREEDL_RETURN_IF_ERROR(
      pipeline.Run(state, options_.collect_pass_timings ? stats : nullptr));
  closed_td_ = std::move(state.td);
  return &*closed_td_;
}

StatusOr<const NormalizedTreeDecomposition*> Engine::EnsureEnumNtd(
    RunStats* stats) {
  if (enum_ntd_.has_value()) {
    ++stats->cache_hits;
    return &*enum_ntd_;
  }
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* closed,
                          EnsureClosedTd(stats));
  engine::PipelineState state;
  state.td = *closed;
  state.normalize_options = core::internal::PrimalityNormalizeOptions(
      *encoding_, /*for_enumeration=*/true);
  engine::PassPipeline pipeline;
  if (options_.td_pipeline) pipeline.Emplace<engine::WidthReducePass>();
  pipeline.Emplace<engine::NormalizePass>();
  // Parallel sessions shard the enumeration normal form too, on the same
  // cost model as the graph-DP sharding (3^|bag| fits the Fig. 6 state
  // explosion just as well).
  size_t threads = ResolvedNumThreads();
  if (threads > 1) {
    pipeline.Emplace<engine::ShardBagsPass>(threads *
                                            options_.shards_per_thread);
  }
  TREEDL_RETURN_IF_ERROR(
      pipeline.Run(state, options_.collect_pass_timings ? stats : nullptr));
  enum_ntd_ = *std::move(state.normalized);
  if (state.sharding.has_value()) {
    enum_sharding_ = *std::move(state.sharding);
  }
  ++stats->normalize_builds;
  ++GlobalEngineCounters().normalize_builds;
  return &*enum_ntd_;
}

StatusOr<const NormalizedTreeDecomposition*> Engine::EnsurePlainNtd(
    RunStats* stats) {
  if (plain_ntd_.has_value()) {
    ++stats->cache_hits;
    return &*plain_ntd_;
  }
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, EnsureTd(stats));
  engine::PipelineState state;
  state.td = *td;
  engine::PassPipeline pipeline;
  if (options_.td_pipeline) pipeline.Emplace<engine::WidthReducePass>();
  pipeline.Emplace<engine::NormalizePass>();
  // Parallel sessions shard right after normalization, on the same spine.
  size_t threads = ResolvedNumThreads();
  if (threads > 1) {
    pipeline.Emplace<engine::ShardBagsPass>(threads *
                                            options_.shards_per_thread);
  }
  TREEDL_RETURN_IF_ERROR(
      pipeline.Run(state, options_.collect_pass_timings ? stats : nullptr));
  plain_ntd_ = *std::move(state.normalized);
  if (state.sharding.has_value()) {
    sharding_ = *std::move(state.sharding);
  }
  ++stats->normalize_builds;
  ++GlobalEngineCounters().normalize_builds;
  return &*plain_ntd_;
}

StatusOr<const datalog::TauTdEncoding*> Engine::EnsureTauTd(RunStats* stats) {
  if (tau_td_.has_value()) {
    ++stats->cache_hits;
    return &*tau_td_;
  }
  TREEDL_ASSIGN_OR_RETURN(const Structure* structure, EnsureStructure(stats));
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, EnsureTd(stats));
  TREEDL_ASSIGN_OR_RETURN(TupleNormalizedTd tuple, NormalizeTuple(*td));
  TREEDL_ASSIGN_OR_RETURN(datalog::TauTdEncoding encoding,
                          datalog::BuildTauTd(*structure, tuple));
  tau_td_ = std::move(encoding);
  ++stats->normalize_builds;
  ++GlobalEngineCounters().normalize_builds;
  return &*tau_td_;
}

StatusOr<const mso2dl::Mso2DlResult*> Engine::EnsureMsoProgram(
    const mso::FormulaPtr& phi, const std::string* free_var, RunStats* stats) {
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, EnsureTd(stats));
  TREEDL_ASSIGN_OR_RETURN(const Structure* a, EnsureStructure(stats));
  std::string key = free_var != nullptr ? "unary:" + *free_var + ":"
                                        : "sentence:";
  key += mso::ToString(*phi);
  auto it = mso_programs_.find(key);
  if (it != mso_programs_.end()) {
    ++stats->cache_hits;
    return &it->second;
  }
  mso2dl::Mso2DlOptions mopts = options_.mso_options;
  mopts.width = td->Width();
  StatusOr<mso2dl::Mso2DlResult> compiled =
      free_var != nullptr
          ? mso2dl::MsoToDatalog(a->signature(), phi, *free_var, mopts)
          : mso2dl::MsoToDatalogSentence(a->signature(), phi, mopts);
  TREEDL_RETURN_IF_ERROR(compiled.status());
  ++stats->mso_compile_builds;
  auto [inserted, _] =
      mso_programs_.emplace(std::move(key), std::move(compiled).value());
  return &inserted->second;
}

ThreadPool* Engine::EnsurePool() {
  size_t threads = ResolvedNumThreads();
  if (threads <= 1) return nullptr;
  if (options_.shared_pool != nullptr) return options_.shared_pool;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads);
  return pool_.get();
}

// --- Primality ---------------------------------------------------------------

StatusOr<bool> Engine::IsPrime(AttributeId a, RunStats* stats) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<bool> result = [&]() -> StatusOr<bool> {
    if (schema_ == nullptr) {
      return Status::InvalidArgument("IsPrime requires a schema session");
    }
    if (a < 0 || a >= schema_->NumAttributes()) {
      return Status::InvalidArgument("attribute id out of range");
    }
    const TreeDecomposition* closed = nullptr;
    const core::internal::PrimalityContext* context = nullptr;
    const SchemaEncoding* encoding = nullptr;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      // O(1) from the memoized §5.3 enumeration, if it already ran.
      if (primes_.has_value()) {
        ++s->cache_hits;
        return static_cast<bool>((*primes_)[static_cast<size_t>(a)]);
      }
      TREEDL_ASSIGN_OR_RETURN(closed, EnsureClosedTd(s));
      TREEDL_ASSIGN_OR_RETURN(context, EnsurePrimality(s));
      encoding = encoding_.get();
    }
    // Per-query work on the immutable artifacts, outside the lock.
    ElementId a_elem = encoding->AttrElement(a);
    engine::PipelineState state;
    state.td = *closed;
    state.normalize_options = core::internal::PrimalityNormalizeOptions(
        *encoding, /*for_enumeration=*/false);
    engine::PassPipeline pipeline;
    pipeline.Emplace<engine::ReRootAtElementPass>(a_elem)
        .Emplace<engine::NormalizePass>();
    TREEDL_RETURN_IF_ERROR(
        pipeline.Run(state, options_.collect_pass_timings ? s : nullptr));
    ++s->normalize_builds;
    ++GlobalEngineCounters().normalize_builds;
    return core::internal::DecidePrimePrepared(*context, *state.normalized,
                                               a_elem, s);
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

StatusOr<std::vector<bool>> Engine::AllPrimes(RunStats* stats,
                                              WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<std::vector<bool>> result = [&]() -> StatusOr<std::vector<bool>> {
    if (schema_ == nullptr) {
      return Status::InvalidArgument("AllPrimes requires a schema session");
    }
    const NormalizedTreeDecomposition* ntd = nullptr;
    const core::internal::PrimalityContext* context = nullptr;
    const SchemaEncoding* encoding = nullptr;
    core::DpExec exec;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      if (primes_.has_value()) {
        ++s->cache_hits;
        return *primes_;
      }
      TREEDL_ASSIGN_OR_RETURN(ntd, EnsureEnumNtd(s));
      TREEDL_ASSIGN_OR_RETURN(context, EnsurePrimality(s));
      encoding = encoding_.get();
      exec.pool = EnsurePool();
      exec.sharding = enum_sharding_.has_value() ? &*enum_sharding_ : nullptr;
      exec.table_memory_budget = options_.table_memory_budget;
      exec.budget = budget != nullptr ? budget : options_.work_budget;
    }
    // The two-pass enumeration runs outside the lock (sharded on the pool
    // when the session is parallel); concurrent first callers may duplicate
    // the work, but the memo is written once.
    std::vector<bool> primes = core::internal::EnumeratePrimesPrepared(
        *context, *encoding, schema_->NumAttributes(), *ntd, s, exec);
    // An aborted run produced a partial bit vector — never memoize it, so
    // the next AllPrimes call recomputes from the cached decomposition.
    if (exec.budget != nullptr && exec.budget->Aborted()) {
      return exec.budget->AbortStatus();
    }
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    if (!primes_.has_value()) primes_ = std::move(primes);
    return *primes_;
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

// --- Datalog -----------------------------------------------------------------

StatusOr<Structure> Engine::EvaluateDatalog(const datalog::Program& program,
                                            RunStats* stats,
                                            WorkBudget* budget) {
  return EvaluateDatalog(program, options_.backend, stats, budget);
}

StatusOr<Structure> Engine::EvaluateDatalog(const datalog::Program& program,
                                            DatalogBackend backend,
                                            RunStats* stats,
                                            WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<Structure> result = [&]() -> StatusOr<Structure> {
    const Structure* edb = nullptr;
    datalog::EvalExec exec;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      TREEDL_ASSIGN_OR_RETURN(edb, EnsureStructure(s));
      // Only the semi-naive backend consumes the pool — don't spin up
      // workers for the sequential naive/grounded backends.
      if (backend == DatalogBackend::kSemiNaive) exec.pool = EnsurePool();
      exec.budget = budget != nullptr ? budget : options_.work_budget;
    }
    return RunBackend(program, *edb, backend, exec, s);
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

// --- MSO ----------------------------------------------------------------------

StatusOr<bool> Engine::UseDirectMso(RunStats* stats) {
  if (options_.mso_strategy == MsoStrategy::kDirect) return true;
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, EnsureTd(stats));
  return td->Width() < 1;  // Thm 4.5 needs width >= 1
}

StatusOr<bool> Engine::EvaluateMso(const mso::FormulaPtr& sentence,
                                   RunStats* stats, WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<bool> result = [&]() -> StatusOr<bool> {
    const Structure* a = nullptr;
    bool direct = false;
    const datalog::Program* program = nullptr;
    const Structure* tau_edb = nullptr;
    datalog::EvalExec exec;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      TREEDL_ASSIGN_OR_RETURN(a, EnsureStructure(s));
      TREEDL_ASSIGN_OR_RETURN(direct, UseDirectMso(s));
      if (!direct) {
        TREEDL_ASSIGN_OR_RETURN(const mso2dl::Mso2DlResult* compiled,
                                EnsureMsoProgram(sentence, nullptr, s));
        program = &compiled->program;
        TREEDL_ASSIGN_OR_RETURN(const datalog::TauTdEncoding* atd,
                                EnsureTauTd(s));
        tau_edb = &atd->structure;
        if (options_.backend == DatalogBackend::kSemiNaive) {
          exec.pool = EnsurePool();
        }
      }
      exec.budget = budget != nullptr ? budget : options_.work_budget;
    }
    if (direct) {
      mso::EvalOptions eopts;
      eopts.work_budget = options_.mso_direct_work_budget;
      return mso::EvaluateSentence(*a, *sentence, eopts);
    }
    TREEDL_ASSIGN_OR_RETURN(
        Structure derived,
        RunBackend(*program, *tau_edb, options_.backend, exec, s));
    TREEDL_ASSIGN_OR_RETURN(PredicateId phi,
                            derived.signature().PredicateIdOf("phi"));
    return derived.HasFact(phi, {});
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

StatusOr<std::vector<bool>> Engine::EvaluateMsoUnary(
    const mso::FormulaPtr& phi, const std::string& free_var, RunStats* stats,
    WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<std::vector<bool>> result = [&]() -> StatusOr<std::vector<bool>> {
    const Structure* a = nullptr;
    bool direct = false;
    const datalog::Program* program = nullptr;
    const Structure* tau_edb = nullptr;
    datalog::EvalExec exec;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      TREEDL_ASSIGN_OR_RETURN(a, EnsureStructure(s));
      TREEDL_ASSIGN_OR_RETURN(direct, UseDirectMso(s));
      if (!direct) {
        TREEDL_ASSIGN_OR_RETURN(const mso2dl::Mso2DlResult* compiled,
                                EnsureMsoProgram(phi, &free_var, s));
        program = &compiled->program;
        TREEDL_ASSIGN_OR_RETURN(const datalog::TauTdEncoding* atd,
                                EnsureTauTd(s));
        tau_edb = &atd->structure;
        if (options_.backend == DatalogBackend::kSemiNaive) {
          exec.pool = EnsurePool();
        }
      }
      exec.budget = budget != nullptr ? budget : options_.work_budget;
    }
    std::vector<bool> selected(a->NumElements(), false);
    if (direct) {
      mso::EvalOptions eopts;
      eopts.work_budget = options_.mso_direct_work_budget;
      for (ElementId e = 0; e < a->NumElements(); ++e) {
        TREEDL_ASSIGN_OR_RETURN(
            bool holds, mso::EvaluateUnary(*a, *phi, free_var, e, eopts));
        selected[e] = holds;
      }
      return selected;
    }
    TREEDL_ASSIGN_OR_RETURN(
        Structure derived,
        RunBackend(*program, *tau_edb, options_.backend, exec, s));
    TREEDL_ASSIGN_OR_RETURN(PredicateId phi_pred,
                            derived.signature().PredicateIdOf("phi"));
    for (ElementId e = 0; e < a->NumElements(); ++e) {
      selected[e] = derived.HasFact(phi_pred, {e});
    }
    return selected;
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

// --- Graph DPs ----------------------------------------------------------------

StatusOr<Engine::SolveResult> Engine::Solve(Problem problem, RunStats* stats,
                                            WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<SolveResult> result = [&]() -> StatusOr<SolveResult> {
    const Graph* graph = nullptr;
    const NormalizedTreeDecomposition* ntd = nullptr;
    core::DpExec exec;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      TREEDL_ASSIGN_OR_RETURN(graph, EnsureGaifman(s));
      TREEDL_ASSIGN_OR_RETURN(ntd, EnsurePlainNtd(s));
      exec.pool = EnsurePool();
      exec.sharding = sharding_.has_value() ? &*sharding_ : nullptr;
      exec.table_memory_budget = options_.table_memory_budget;
      exec.budget = budget != nullptr ? budget : options_.work_budget;
    }
    // The DP itself runs outside the lock — concurrent Solve calls share the
    // pool, and with num_threads > 1 each traversal is itself sharded.
    SolveResult out;
    core::DpStats dp;
    switch (problem) {
      case Problem::kThreeColor: {
        TREEDL_ASSIGN_OR_RETURN(
            core::ThreeColorResult r,
            core::SolveThreeColorNormalized(*graph, *ntd,
                                            options_.extract_witness, exec));
        out.feasible = r.colorable;
        out.witness = std::move(r.coloring);
        dp = r.stats;
        break;
      }
      case Problem::kThreeColorCount: {
        TREEDL_ASSIGN_OR_RETURN(
            uint64_t count,
            core::CountThreeColoringsNormalized(*graph, *ntd, &dp, exec));
        out.feasible = count > 0;
        out.count = count;
        break;
      }
      case Problem::kVertexCover: {
        TREEDL_ASSIGN_OR_RETURN(
            size_t best,
            core::MinVertexCoverNormalized(*graph, *ntd, &dp, exec));
        out.feasible = true;
        out.optimum = best;
        break;
      }
      case Problem::kIndependentSet: {
        TREEDL_ASSIGN_OR_RETURN(
            size_t best,
            core::MaxIndependentSetNormalized(*graph, *ntd, &dp, exec));
        out.feasible = true;
        out.optimum = best;
        break;
      }
      case Problem::kDominatingSet: {
        TREEDL_ASSIGN_OR_RETURN(
            size_t best,
            core::MinDominatingSetNormalized(*graph, *ntd, &dp, exec));
        out.feasible = true;
        out.optimum = best;
        break;
      }
    }
    MergeDp(dp, s);
    return out;
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

Engine::SolveResult Engine::SolveAllResult::Result(Problem problem) const {
  SolveResult out;
  switch (problem) {
    case Problem::kThreeColor:
      out.feasible = three_colorable;
      out.witness = coloring;
      break;
    case Problem::kThreeColorCount:
      out.feasible = three_colorings > 0;
      out.count = three_colorings;
      break;
    case Problem::kVertexCover:
      out.feasible = true;
      out.optimum = min_vertex_cover;
      break;
    case Problem::kIndependentSet:
      out.feasible = true;
      out.optimum = max_independent_set;
      break;
    case Problem::kDominatingSet:
      out.feasible = true;
      out.optimum = min_dominating_set;
      break;
  }
  return out;
}

StatusOr<Engine::SolveAllResult> Engine::SolveAll(RunStats* stats,
                                                  WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<SolveAllResult> result = [&]() -> StatusOr<SolveAllResult> {
    const Graph* graph = nullptr;
    const NormalizedTreeDecomposition* ntd = nullptr;
    core::DpExec exec;
    {
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      TREEDL_ASSIGN_OR_RETURN(graph, EnsureGaifman(s));
      TREEDL_ASSIGN_OR_RETURN(ntd, EnsurePlainNtd(s));
      exec.pool = EnsurePool();
      exec.sharding = sharding_.has_value() ? &*sharding_ : nullptr;
      exec.table_memory_budget = options_.table_memory_budget;
      exec.budget = budget != nullptr ? budget : options_.work_budget;
    }
    // One fused traversal outside the lock: five state tables, each bag of
    // the normal form visited exactly once (sharded when exec.Parallel()).
    core::MultiDp multi;
    auto three_color = core::AddThreeColorPass(&multi, *graph, *ntd,
                                               options_.extract_witness);
    auto count = core::AddThreeColorCountPass(&multi, *graph, *ntd);
    auto vertex_cover = core::AddVertexCoverPass(&multi, *graph, *ntd);
    auto independent = core::AddIndependentSetPass(&multi, *graph, *ntd);
    auto dominating = core::AddDominatingSetPass(&multi, *graph, *ntd);
    core::DpStats dp;
    core::RunMultiTreeDpAuto(*ntd, &multi, exec, &dp);
    // The finalizers below re-read root (and, for witness extraction,
    // interior) tables; on an aborted budget those are partial — surface the
    // abort before any finalizer can trip over them.
    if (exec.budget != nullptr && exec.budget->Aborted()) {
      MergeDp(dp, s);
      return exec.budget->AbortStatus();
    }

    SolveAllResult out;
    TREEDL_ASSIGN_OR_RETURN(core::ThreeColorResult tc, three_color());
    out.three_colorable = tc.colorable;
    out.coloring = std::move(tc.coloring);
    TREEDL_ASSIGN_OR_RETURN(out.three_colorings, count());
    TREEDL_ASSIGN_OR_RETURN(out.min_vertex_cover, vertex_cover());
    TREEDL_ASSIGN_OR_RETURN(out.max_independent_set, independent());
    TREEDL_ASSIGN_OR_RETURN(out.min_dominating_set, dominating());
    MergeDp(dp, s);
    return out;
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

// --- Anytime decomposition improvement ---------------------------------------

StatusOr<Engine::ImproveResult> Engine::ImproveDecomposition(
    RunStats* stats, WorkBudget* budget) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  StatusOr<ImproveResult> result = [&]() -> StatusOr<ImproveResult> {
    // The one mutating operation: the whole call runs under the cache lock
    // and relies on the external-quiescence contract documented in the
    // header — no concurrent query, no outstanding artifact pointers.
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    TREEDL_ASSIGN_OR_RETURN(const Structure* structure, EnsureStructure(s));
    TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, EnsureTd(s));
    TREEDL_ASSIGN_OR_RETURN(const Graph* gaifman, EnsureGaifman(s));
    ImproveOptions iopts;
    iopts.seed = SessionFingerprint();
    // No fallback to options_.work_budget here: a tripped session budget is
    // sticky and would poison every query after the reopt.
    TREEDL_ASSIGN_OR_RETURN(ImproveOutcome outcome,
                            ImproveTd(*gaifman, *td, iopts, budget));
    ImproveResult out;
    out.width_before = outcome.width_before;
    out.width_after = outcome.width_after;
    out.cost_before = outcome.cost_before;
    out.cost_after = outcome.cost_after;
    out.rounds = outcome.rounds;
    out.improved = outcome.improved;
    s->improve_rounds += outcome.rounds;
    if (!outcome.improved) return out;
    if (options_.validate) {
      engine::PipelineState state;
      state.structure = structure;
      state.td = outcome.td;
      engine::PassPipeline pipeline;
      pipeline.Emplace<engine::ValidateStructurePass>();
      TREEDL_RETURN_IF_ERROR(
          pipeline.Run(state, options_.collect_pass_timings ? s : nullptr));
    }
    // Swap in the better decomposition and invalidate everything derived
    // from the old one; the next query lazily re-normalizes and re-shards.
    // The memoized primes survive (answers are decomposition-independent),
    // and so do the structure, encoding, and Gaifman graph.
    td_ = std::move(outcome.td);
    closed_td_.reset();
    plain_ntd_.reset();
    enum_ntd_.reset();
    sharding_.reset();
    enum_sharding_.reset();
    tau_td_.reset();
    // Compiled MSO programs are width-parameterized; the width changed (or
    // at least may have), so recompile on demand.
    mso_programs_.clear();
    ++s->td_builds;
    ++GlobalEngineCounters().td_builds;
    return out;
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

// --- Persistent sessions ------------------------------------------------------

uint64_t Engine::FingerprintOf(const Structure& structure) {
  return Fnv1a64("structure:" + FormatStructure(structure));
}

uint64_t Engine::FingerprintOf(const Schema& schema) {
  return Fnv1a64("schema:" + schema.ToString());
}

uint64_t Engine::SessionFingerprint() const {
  // Stable across processes: hash a canonical text rendering of the session
  // input, tagged by session kind. Computable without building any artifact
  // (a load into a cold engine must not count as a build).
  if (schema_ != nullptr) return FingerprintOf(*schema_);
  return FingerprintOf(*owned_structure_);
}

// --- Accounting ---------------------------------------------------------------

namespace {

// Fixed per-item charges. Deliberately not sizeof-derived: the serving
// layer's admission budget compares these numbers across compilers and
// standard libraries, so they must be plain arithmetic over artifact shapes.
constexpr size_t kBytesPerElement = 48;    // interned name + id slot
constexpr size_t kBytesPerTuple = 24;      // tuple header + relation index
constexpr size_t kBytesPerSlot = 4;        // one ElementId
constexpr size_t kBytesPerTdNode = 64;     // node record + child links

size_t StructureCharge(const Structure& structure) {
  size_t bytes = structure.NumElements() * kBytesPerElement;
  const Signature& signature = structure.signature();
  for (PredicateId p = 0; p < static_cast<PredicateId>(signature.size()); ++p) {
    bytes += structure.Relation(p).size() *
             (kBytesPerTuple +
              static_cast<size_t>(signature.arity(p)) * kBytesPerSlot);
  }
  return bytes;
}

size_t TdCharge(const TreeDecomposition& td) {
  size_t bytes = td.NumNodes() * kBytesPerTdNode;
  for (size_t id = 0; id < td.NumNodes(); ++id) {
    bytes += td.Bag(static_cast<TdNodeId>(id)).size() * kBytesPerSlot;
  }
  return bytes;
}

size_t NtdCharge(const NormalizedTreeDecomposition& ntd) {
  size_t bytes = ntd.NumNodes() * kBytesPerTdNode;
  for (size_t id = 0; id < ntd.NumNodes(); ++id) {
    bytes += ntd.Bag(static_cast<TdNodeId>(id)).size() * kBytesPerSlot;
  }
  return bytes;
}

}  // namespace

size_t Engine::EstimateStructureBytes(const Structure& structure) {
  return StructureCharge(structure);
}

size_t Engine::ResidentArtifactBytes() const {
  std::lock_guard<std::mutex> lock(sync_->cache_mu);
  size_t bytes = 0;
  if (owned_structure_ != nullptr) bytes += StructureCharge(*owned_structure_);
  if (encoding_ != nullptr) bytes += StructureCharge(encoding_->structure);
  if (gaifman_.has_value()) {
    bytes += gaifman_->NumVertices() * kBytesPerSlot +
             gaifman_->NumEdges() * 2 * kBytesPerSlot;
  }
  if (td_.has_value()) bytes += TdCharge(*td_);
  if (closed_td_.has_value()) bytes += TdCharge(*closed_td_);
  if (plain_ntd_.has_value()) bytes += NtdCharge(*plain_ntd_);
  if (enum_ntd_.has_value()) bytes += NtdCharge(*enum_ntd_);
  if (tau_td_.has_value()) bytes += StructureCharge(tau_td_->structure);
  return bytes;
}

Status Engine::SaveSession(const std::string& path, RunStats* stats) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  Status result = [&]() -> Status {
    engine::SessionArtifactRefs artifacts;
    {
      // Snapshot pointers under the lock: every cache slot is set-once and
      // address-stable for the engine's lifetime, so serialization runs
      // outside the lock with no copies and no stalled queries.
      std::lock_guard<std::mutex> lock(sync_->cache_mu);
      if (td_.has_value()) artifacts.td = &*td_;
      if (closed_td_.has_value()) artifacts.closed_td = &*closed_td_;
      if (plain_ntd_.has_value()) artifacts.plain_ntd = &*plain_ntd_;
      if (enum_ntd_.has_value()) artifacts.enum_ntd = &*enum_ntd_;
      if (tau_td_.has_value()) artifacts.tau_td = &*tau_td_;
      if (encoding_ != nullptr) artifacts.encoding = encoding_.get();
      if (primes_.has_value()) artifacts.primes = &*primes_;
    }
    s->artifact_saves += artifacts.Count();
    return engine::WriteSessionFile(path, SessionFingerprint(), artifacts);
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

Status Engine::LoadSession(const std::string& path, RunStats* stats) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  Timer timer;
  Status result = [&]() -> Status {
    TREEDL_ASSIGN_OR_RETURN(
        engine::SessionArtifacts artifacts,
        engine::ReadSessionFile(path, SessionFingerprint()));
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    // Phase 1 — validate everything, mutate nothing: a file that fails any
    // check below must leave the session exactly as it was.
    const Structure* structure = nullptr;
    if (artifacts.td.has_value() || artifacts.closed_td.has_value() ||
        artifacts.plain_ntd.has_value() || artifacts.enum_ntd.has_value()) {
      if (schema_ != nullptr && encoding_ == nullptr &&
          artifacts.encoding.has_value()) {
        // Cold schema session with the encoding in the file: validate the
        // decompositions against the file's own structure (it is the one
        // they were built from) instead of paying an encode build here.
        structure = &artifacts.encoding->structure;
      } else {
        TREEDL_ASSIGN_OR_RETURN(structure, EnsureStructure(s));
      }
    }
    // Every restored bag must stay inside the session domain — the DPs
    // index bag elements into domain-sized arrays, so an out-of-range id
    // from a damaged file must be rejected here, not crash a query later.
    // (ValidateNormalized constrains internal bags relative to each other
    // but leaves leaf bags free.)
    size_t domain = structure != nullptr ? structure->NumElements() : 0;
    auto check_bag = [&](const std::vector<ElementId>& bag) -> Status {
      for (ElementId e : bag) {
        if (e >= domain) {
          return Status::ParseError(
              "session: bag element " + std::to_string(e) +
              " outside the session domain of " + std::to_string(domain));
        }
      }
      return Status::OK();
    };
    for (const auto* td : {&artifacts.td, &artifacts.closed_td}) {
      if (!td->has_value()) continue;
      for (size_t i = 0; i < (*td)->NumNodes(); ++i) {
        TREEDL_RETURN_IF_ERROR(check_bag((*td)->Bag(static_cast<TdNodeId>(i))));
      }
    }
    for (const auto* ntd : {&artifacts.plain_ntd, &artifacts.enum_ntd}) {
      if (!ntd->has_value()) continue;
      for (size_t i = 0; i < (*ntd)->NumNodes(); ++i) {
        TREEDL_RETURN_IF_ERROR(
            check_bag((*ntd)->Bag(static_cast<TdNodeId>(i))));
      }
    }
    if (artifacts.td.has_value() && !td_.has_value() && options_.validate) {
      engine::PipelineState state;
      state.structure = structure;
      state.td = *artifacts.td;
      engine::PassPipeline pipeline;
      pipeline.Emplace<engine::ValidateStructurePass>();
      TREEDL_RETURN_IF_ERROR(
          pipeline.Run(state, options_.collect_pass_timings ? s : nullptr));
    }
    // Phase 2 — commit; nothing below can fail.
    if (artifacts.encoding.has_value() && schema_ != nullptr &&
        encoding_ == nullptr) {
      encoding_ =
          std::make_unique<SchemaEncoding>(*std::move(artifacts.encoding));
      ++s->artifact_loads;
    }
    if (artifacts.td.has_value() && !td_.has_value()) {
      td_ = *std::move(artifacts.td);
      ++s->artifact_loads;
    }
    if (artifacts.closed_td.has_value() && !closed_td_.has_value()) {
      closed_td_ = *std::move(artifacts.closed_td);
      ++s->artifact_loads;
    }
    if (artifacts.plain_ntd.has_value() && !plain_ntd_.has_value()) {
      plain_ntd_ = *std::move(artifacts.plain_ntd);
      ++s->artifact_loads;
      // The sharding is thread-count dependent and cheap; recompute it
      // rather than persisting it (EnsurePlainNtd will now short-circuit and
      // never run the shard-bags pass).
      size_t threads = ResolvedNumThreads();
      if (threads > 1 && !sharding_.has_value()) {
        sharding_ = ComputeBagShardingByCost(
            *plain_ntd_, threads * options_.shards_per_thread);
      }
    }
    if (artifacts.enum_ntd.has_value() && !enum_ntd_.has_value()) {
      enum_ntd_ = *std::move(artifacts.enum_ntd);
      ++s->artifact_loads;
      // Like the plain-NTD sharding above: thread-count dependent and cheap,
      // so recompute instead of persisting.
      size_t threads = ResolvedNumThreads();
      if (threads > 1 && !enum_sharding_.has_value()) {
        enum_sharding_ = ComputeBagShardingByCost(
            *enum_ntd_, threads * options_.shards_per_thread);
      }
    }
    if (artifacts.tau_td.has_value() && !tau_td_.has_value()) {
      tau_td_ = *std::move(artifacts.tau_td);
      ++s->artifact_loads;
    }
    if (artifacts.primes.has_value() && !primes_.has_value() &&
        schema_ != nullptr) {
      primes_ = *std::move(artifacts.primes);
      ++s->artifact_loads;
    }
    return Status::OK();
  }();
  s->total_millis = timer.ElapsedMillis();
  Record(*s);
  return result;
}

// --- Session artifacts --------------------------------------------------------

StatusOr<const Structure*> Engine::structure(RunStats* stats) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  StatusOr<const Structure*> result = [&]() -> StatusOr<const Structure*> {
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    return EnsureStructure(s);
  }();
  Record(*s);
  return result;
}

StatusOr<const TreeDecomposition*> Engine::Decomposition(RunStats* stats) {
  RunStats local;
  RunStats* s = stats != nullptr ? (*stats = RunStats{}, stats) : &local;
  StatusOr<const TreeDecomposition*> result =
      [&]() -> StatusOr<const TreeDecomposition*> {
    std::lock_guard<std::mutex> lock(sync_->cache_mu);
    return EnsureTd(s);
  }();
  Record(*s);
  return result;
}

StatusOr<int> Engine::Width(RunStats* stats) {
  TREEDL_ASSIGN_OR_RETURN(const TreeDecomposition* td, Decomposition(stats));
  return td->Width();
}

}  // namespace treedl
