// Graph families and random bounded-treewidth instance generators.
//
// Random partial k-trees are the standard way to obtain graphs whose treewidth
// is at most k by construction; they drive the property tests and the scaling
// benchmarks (the paper's experiments likewise fix tw = 3 and grow the size).
#ifndef TREEDL_GRAPH_GENERATORS_HPP_
#define TREEDL_GRAPH_GENERATORS_HPP_

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace treedl {

Graph PathGraph(size_t n);
Graph CycleGraph(size_t n);
Graph CompleteGraph(size_t n);
/// The n x m grid; treewidth min(n, m).
Graph GridGraph(size_t rows, size_t cols);
/// The Petersen graph (10 vertices, 3-regular, 3-chromatic, treewidth 4).
Graph PetersenGraph();

/// A random k-tree on n >= k+1 vertices: start from K_{k+1}, then repeatedly
/// attach a fresh vertex to a random existing k-clique. Treewidth exactly k
/// (for n > k). If `clique_out` is non-null it receives, for each vertex, one
/// witnessing bag (the clique it was attached to, plus itself).
Graph RandomKTree(size_t n, int k, Rng* rng);

/// A random partial k-tree: a random k-tree with each edge kept independently
/// with probability `keep_probability`. Treewidth <= k by construction.
Graph RandomPartialKTree(size_t n, int k, double keep_probability, Rng* rng);

/// Erdős–Rényi G(n, p) (no treewidth guarantee; used for negative tests).
Graph RandomGnp(size_t n, double p, Rng* rng);

}  // namespace treedl

#endif  // TREEDL_GRAPH_GENERATORS_HPP_
