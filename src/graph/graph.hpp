// Simple undirected graphs over dense vertex ids [0, n).
//
// Used as (a) input for the 3-Colorability solver (§5.1), (b) the Gaifman /
// incidence graph of a structure for treewidth heuristics, and (c) the
// substrate for random bounded-treewidth instance generators.
#ifndef TREEDL_GRAPH_GRAPH_HPP_
#define TREEDL_GRAPH_GRAPH_HPP_

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace treedl {

using VertexId = uint32_t;

class Graph {
 public:
  Graph() = default;
  explicit Graph(size_t num_vertices) : adjacency_(num_vertices) {}

  size_t NumVertices() const { return adjacency_.size(); }
  size_t NumEdges() const { return num_edges_; }

  /// Appends a fresh isolated vertex and returns its id.
  VertexId AddVertex();

  /// Adds the undirected edge {u, v}. Self-loops and duplicates are ignored
  /// (set semantics); returns true iff a new edge was inserted.
  bool AddEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;

  /// Neighbors of v in insertion order (no duplicates, no self).
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[v];
  }
  size_t Degree(VertexId v) const { return adjacency_[v].size(); }

  /// All edges as (u, v) pairs with u < v.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

 private:
  std::vector<std::vector<VertexId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace treedl

#endif  // TREEDL_GRAPH_GRAPH_HPP_
