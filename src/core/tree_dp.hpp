// Generic dynamic programming over modified-normalized tree decompositions.
//
// This captures the execution model of the paper's §5 programs: a succinct
// (non-monadic) datalog program whose solve(...) facts are computed by a
// bottom-up traversal, materializing only *reachable* states (the paper's
// optimization (2), "lazy grounding"). Problems plug in transition hooks:
//
//   struct Problem {
//     using State = ...;   // provides hash() and operator==
//     using Value = ...;   // e.g. std::monostate (decision), uint64_t (count)
//     void Leaf(bag, emit);
//     void Introduce(bag, element, state, value, emit);
//     void Forget(bag, element, state, value, emit);
//     JoinKey KeyOf(state);                     // JoinKey provides hash()/==
//     void Join(bag, s1, v1, s2, v2, emit);     // called per key-equal pair
//     Value Merge(v1, v2);                      // same state reached twice
//   };
//
// `emit(state, value)` may be called any number of times per transition.
//
// Two drivers share the per-node transition logic:
//   RunTreeDp         — sequential post-order traversal;
//   RunTreeDpSharded  — bag-sharded parallel traversal: independent subtree
//                       shards (td/shard.hpp) execute concurrently on a
//                       ThreadPool, a shard becoming runnable when all of its
//                       child shards have completed. Problem hooks must be
//                       const and stateless (all in-tree problems are); the
//                       resulting table is bit-identical to the sequential
//                       one, because every node still sees fully-built child
//                       tables and processes them in the same order.
//
// MultiDp fuses several problems into ONE traversal: each registered problem
// keeps its own state table, but the tree (and, in the parallel case, the
// shard schedule) is walked once, with every bag visited a single time
// driving all tables. This is what Engine::SolveAll runs — N problems cost
// one traversal family instead of N.
#ifndef TREEDL_CORE_TREE_DP_HPP_
#define TREEDL_CORE_TREE_DP_HPP_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"

namespace treedl::core {

template <typename T>
struct MemberHash {
  size_t operator()(const T& t) const { return t.hash(); }
};

template <typename State, typename Value>
using StateMap = std::unordered_map<State, Value, MemberHash<State>>;

template <typename State, typename Value>
struct DpTable {
  /// Indexed by normalized-TD node id.
  std::vector<StateMap<State, Value>> nodes;

  const StateMap<State, Value>& at(TdNodeId id) const {
    return nodes[static_cast<size_t>(id)];
  }
};

struct DpStats {
  size_t total_states = 0;
  size_t max_states_per_node = 0;
  /// Shard tasks executed (0 when the traversal ran sequentially).
  size_t shards = 0;
  /// Wall-clock per shard task, indexed by shard id (parallel runs only).
  std::vector<double> shard_millis;
  /// Bottom-up walks of the decomposition executed by this run.
  size_t traversals = 0;
  /// DP state-table passes driven by those walks; a MultiDp traversal drives
  /// several passes per walk (passes > traversals is the fusion win).
  size_t passes = 0;
};

/// Execution context for the parallel driver. Default-constructed (or with
/// either pointer null, or a single shard) every driver below degrades to the
/// sequential traversal.
struct DpExec {
  const BagSharding* sharding = nullptr;
  ThreadPool* pool = nullptr;

  bool Parallel() const {
    return sharding != nullptr && pool != nullptr && sharding->NumShards() > 1;
  }
};

namespace internal {

/// Computes one node's state map from its children's completed maps — the
/// single source of the transition semantics for both drivers.
template <typename Problem>
void DpProcessNode(const NormalizedTreeDecomposition& ntd, TdNodeId id,
                   Problem* problem,
                   DpTable<typename Problem::State,
                           typename Problem::Value>* table) {
  using State = typename Problem::State;
  using Value = typename Problem::Value;
  const NormNode& node = ntd.node(id);
  auto& states = table->nodes[static_cast<size_t>(id)];
  auto emit = [&](State state, Value value) {
    auto [it, inserted] = states.emplace(std::move(state), value);
    if (!inserted) it->second = problem->Merge(it->second, value);
  };
  switch (node.kind) {
    case NormNodeKind::kLeaf:
      problem->Leaf(node.bag, emit);
      break;
    case NormNodeKind::kIntroduce: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) {
        problem->Introduce(node.bag, node.element, state, value, emit);
      }
      break;
    }
    case NormNodeKind::kForget: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) {
        problem->Forget(node.bag, node.element, state, value, emit);
      }
      break;
    }
    case NormNodeKind::kCopy: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) emit(state, value);
      break;
    }
    case NormNodeKind::kBranch: {
      const auto& left = table->nodes[static_cast<size_t>(node.children[0])];
      const auto& right = table->nodes[static_cast<size_t>(node.children[1])];
      // Bucket the right child's states by join key, then pair.
      using JoinKey =
          std::decay_t<decltype(problem->KeyOf(left.begin()->first))>;
      std::unordered_map<JoinKey, std::vector<const State*>,
                         MemberHash<JoinKey>>
          buckets;
      for (const auto& [state, value] : right) {
        buckets[problem->KeyOf(state)].push_back(&state);
      }
      for (const auto& [state, value] : left) {
        auto it = buckets.find(problem->KeyOf(state));
        if (it == buckets.end()) continue;
        for (const State* rstate : it->second) {
          problem->Join(node.bag, state, value, *rstate, right.at(*rstate),
                        emit);
        }
      }
      break;
    }
  }
}

}  // namespace internal

/// Runs several fused per-node processors (one per sub-problem) over nodes
/// delivered by one traversal. Holds type-erased (problem, table) pairs;
/// Add() copies the problem in and returns a stable pointer to its table,
/// valid for the MultiDp's lifetime — callers read their results out of it
/// after the traversal ran (see RunMultiTreeDpAuto).
class MultiDp {
 public:
  template <typename Problem>
  const DpTable<typename Problem::State, typename Problem::Value>* Add(
      Problem problem) {
    auto pass = std::make_unique<Pass<Problem>>(std::move(problem));
    auto* table = &pass->table;
    passes_.push_back(std::move(pass));
    return table;
  }

  size_t NumPasses() const { return passes_.size(); }

  // --- Driver interface (not for end users) -------------------------------

  void Prepare(size_t num_nodes) {
    for (auto& pass : passes_) pass->Prepare(num_nodes);
  }

  /// Runs every registered pass's transition for `id`. Safe to call
  /// concurrently for distinct nodes (each pass writes only node `id`'s
  /// slot), which is exactly the sharded driver's access pattern.
  void ProcessNode(const NormalizedTreeDecomposition& ntd, TdNodeId id) {
    for (auto& pass : passes_) pass->ProcessNode(ntd, id);
  }

  /// Folds node `id`'s table sizes (per pass) into `stats`.
  void AccumulateNodeStats(TdNodeId id, DpStats* stats) const {
    for (const auto& pass : passes_) {
      size_t size = pass->StatesAt(id);
      stats->total_states += size;
      stats->max_states_per_node = std::max(stats->max_states_per_node, size);
    }
  }

 private:
  struct PassBase {
    virtual ~PassBase() = default;
    virtual void Prepare(size_t num_nodes) = 0;
    virtual void ProcessNode(const NormalizedTreeDecomposition& ntd,
                             TdNodeId id) = 0;
    virtual size_t StatesAt(TdNodeId id) const = 0;
  };

  template <typename Problem>
  struct Pass : PassBase {
    explicit Pass(Problem p) : problem(std::move(p)) {}

    void Prepare(size_t num_nodes) override {
      table.nodes.assign(num_nodes, {});
    }
    void ProcessNode(const NormalizedTreeDecomposition& ntd,
                     TdNodeId id) override {
      internal::DpProcessNode(ntd, id, &problem, &table);
    }
    size_t StatesAt(TdNodeId id) const override {
      return table.nodes[static_cast<size_t>(id)].size();
    }

    Problem problem;
    DpTable<typename Problem::State, typename Problem::Value> table;
  };

  std::vector<std::unique_ptr<PassBase>> passes_;
};

namespace internal {

/// The shard schedule shared by every parallel driver: executes
/// `process_node(id, &local_stats)` for each node, shard-by-shard on the
/// pool; a shard is submitted once all of its child shards are done, and the
/// calling thread helps drain the pool while waiting. `process_node` is
/// invoked concurrently from multiple threads for nodes of distinct shards.
template <typename ProcessNode>
void RunShardedWalk(const DpExec& exec, ProcessNode&& process_node,
                    DpStats* stats) {
  TREEDL_CHECK(exec.Parallel());
  const BagSharding& sharding = *exec.sharding;
  size_t num_shards = sharding.NumShards();

  // Per-shard bookkeeping: dependency counters, isolated stats slots (merged
  // at the end — no contention), and the completion group.
  std::vector<std::atomic<size_t>> pending(num_shards);
  std::vector<DpStats> shard_stats(num_shards);
  std::vector<double> shard_millis(num_shards, 0.0);
  WaitGroup done;
  done.Add(num_shards);

  // The task runner; owns no state, everything lives on this frame, which
  // outlives all tasks because Wait() returns only after the last Done().
  std::function<void(size_t)> run_shard = [&](size_t s) {
    Timer timer;
    DpStats& local = shard_stats[s];
    for (TdNodeId id : sharding.shards[s].nodes) {
      process_node(id, &local);
    }
    shard_millis[s] = timer.ElapsedMillis();
    int parent = sharding.shards[s].parent;
    if (parent >= 0 &&
        pending[static_cast<size_t>(parent)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      exec.pool->Submit([&run_shard, parent] {
        run_shard(static_cast<size_t>(parent));
      });
    }
    done.Done();
  };

  for (size_t s = 0; s < num_shards; ++s) {
    pending[s].store(sharding.shards[s].children.size(),
                     std::memory_order_relaxed);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (sharding.shards[s].children.empty()) {
      exec.pool->Submit([&run_shard, s] { run_shard(s); });
    }
  }
  // Help drain the pool instead of idling (also makes progress on a
  // single-worker pool shared by several concurrent queries).
  while (exec.pool->RunOneTask()) {
  }
  done.Wait();

  if (stats != nullptr) {
    for (const DpStats& local : shard_stats) {
      stats->total_states += local.total_states;
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, local.max_states_per_node);
    }
    stats->shards += num_shards;
    stats->shard_millis.insert(stats->shard_millis.end(),
                               shard_millis.begin(), shard_millis.end());
  }
}

}  // namespace internal

/// Runs the bottom-up pass of `problem` over `ntd` sequentially and returns
/// the full table. The table at the root characterizes the whole structure.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDp(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    DpStats* stats = nullptr) {
  DpTable<typename Problem::State, typename Problem::Value> table;
  table.nodes.resize(ntd.NumNodes());
  for (TdNodeId id : ntd.PostOrder()) {
    internal::DpProcessNode(ntd, id, problem, &table);
    if (stats != nullptr) {
      size_t size = table.nodes[static_cast<size_t>(id)].size();
      stats->total_states += size;
      stats->max_states_per_node = std::max(stats->max_states_per_node, size);
    }
  }
  if (stats != nullptr) {
    ++stats->traversals;
    ++stats->passes;
  }
  return table;
}

/// Parallel driver: one shard-scheduled walk (internal::RunShardedWalk) of
/// `problem`'s transitions. Requires exec.Parallel(); the problem's hooks are
/// invoked concurrently from multiple threads and must be const/stateless.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDpSharded(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    const DpExec& exec, DpStats* stats = nullptr) {
  DpTable<typename Problem::State, typename Problem::Value> table;
  table.nodes.resize(ntd.NumNodes());
  internal::RunShardedWalk(
      exec,
      [&](TdNodeId id, DpStats* local) {
        internal::DpProcessNode(ntd, id, problem, &table);
        size_t size = table.nodes[static_cast<size_t>(id)].size();
        local->total_states += size;
        local->max_states_per_node =
            std::max(local->max_states_per_node, size);
      },
      stats);
  if (stats != nullptr) {
    ++stats->traversals;
    ++stats->passes;
  }
  return table;
}

/// Fused sequential driver: one post-order walk feeding every pass of
/// `multi`. Results are read out of the table pointers Add() returned.
inline void RunMultiTreeDp(const NormalizedTreeDecomposition& ntd,
                           MultiDp* multi, DpStats* stats = nullptr) {
  multi->Prepare(ntd.NumNodes());
  for (TdNodeId id : ntd.PostOrder()) {
    multi->ProcessNode(ntd, id);
    if (stats != nullptr) multi->AccumulateNodeStats(id, stats);
  }
  if (stats != nullptr) {
    ++stats->traversals;
    stats->passes += multi->NumPasses();
  }
}

/// Fused parallel driver: ONE shard-scheduled walk drives every pass of
/// `multi` — each bag is visited once, `stats->shards` grows by the shard
/// count of a single traversal (not one per pass). Requires exec.Parallel().
inline void RunMultiTreeDpSharded(const NormalizedTreeDecomposition& ntd,
                                  MultiDp* multi, const DpExec& exec,
                                  DpStats* stats = nullptr) {
  multi->Prepare(ntd.NumNodes());
  internal::RunShardedWalk(
      exec,
      [&](TdNodeId id, DpStats* local) {
        multi->ProcessNode(ntd, id);
        multi->AccumulateNodeStats(id, local);
      },
      stats);
  if (stats != nullptr) {
    ++stats->traversals;
    stats->passes += multi->NumPasses();
  }
}

/// Dispatches the fused traversal to the sharded driver when `exec` carries a
/// usable sharding and pool, else to the sequential one.
inline void RunMultiTreeDpAuto(const NormalizedTreeDecomposition& ntd,
                               MultiDp* multi, const DpExec& exec,
                               DpStats* stats = nullptr) {
  if (exec.Parallel()) return RunMultiTreeDpSharded(ntd, multi, exec, stats);
  return RunMultiTreeDp(ntd, multi, stats);
}

/// Dispatches to the sharded driver when `exec` carries a usable sharding and
/// pool, else to the sequential one.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDpAuto(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    const DpExec& exec, DpStats* stats = nullptr) {
  if (exec.Parallel()) return RunTreeDpSharded(ntd, problem, exec, stats);
  return RunTreeDp(ntd, problem, stats);
}

}  // namespace treedl::core

#endif  // TREEDL_CORE_TREE_DP_HPP_
