// 3-Colorability (§5.1) on a few graph families, with witness extraction,
// counting, and the further DP problems (vertex cover, independent set,
// dominating set) on the same decompositions.
#include <iostream>

#include "core/extensions.hpp"
#include "core/three_color.hpp"
#include "graph/generators.hpp"
#include "td/heuristics.hpp"

namespace {

void Report(const std::string& name, const treedl::Graph& g) {
  using namespace treedl;
  auto td = Decompose(g);
  if (!td.ok()) {
    std::cerr << name << ": " << td.status() << "\n";
    return;
  }
  auto result = core::SolveThreeColor(g, *td);
  if (!result.ok()) {
    std::cerr << name << ": " << result.status() << "\n";
    return;
  }
  std::cout << name << ": n=" << g.NumVertices() << " m=" << g.NumEdges()
            << " width=" << td->Width() << " -> "
            << (result->colorable ? "3-colorable" : "NOT 3-colorable");
  if (result->coloring.has_value()) {
    std::cout << "  coloring:";
    for (size_t v = 0; v < result->coloring->size(); ++v) {
      std::cout << " " << "rgb"[static_cast<size_t>((*result->coloring)[v])];
    }
  }
  std::cout << "\n";
  if (result->colorable) {
    auto count = core::CountThreeColorings(g, *td);
    if (count.ok()) std::cout << "  #3-colorings = " << *count << "\n";
  }
  auto vc = core::MinVertexCoverTd(g, *td);
  auto is = core::MaxIndependentSetTd(g, *td);
  auto ds = core::MinDominatingSetTd(g, *td);
  if (vc.ok() && is.ok() && ds.ok()) {
    std::cout << "  min vertex cover = " << *vc
              << ", max independent set = " << *is
              << ", min dominating set = " << *ds << "\n";
  }
}

}  // namespace

int main() {
  using namespace treedl;
  Report("C5 (odd cycle)", CycleGraph(5));
  Report("K4 (clique)", CompleteGraph(4));
  Report("Petersen", PetersenGraph());
  Report("5x5 grid", GridGraph(5, 5));
  Rng rng(2026);
  Report("random partial 3-tree (n=40)", RandomPartialKTree(40, 3, 0.8, &rng));
  return 0;
}
