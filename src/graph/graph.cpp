#include "graph/graph.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl {

VertexId Graph::AddVertex() {
  adjacency_.emplace_back();
  return static_cast<VertexId>(adjacency_.size() - 1);
}

bool Graph::AddEdge(VertexId u, VertexId v) {
  TREEDL_CHECK(u < NumVertices() && v < NumVertices())
      << "edge endpoint out of range";
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  // Scan the smaller adjacency list; graphs here are small and sparse.
  const auto& list =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  VertexId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(list.begin(), list.end(), target) != list.end();
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : adjacency_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace treedl
