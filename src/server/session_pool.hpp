// SessionPool: the fingerprint-keyed Engine cache of treedl::Server.
//
// The paper's amortization story (§5.3: one decomposition, many linear-time
// queries) only pays off when requests for the same structure land on the
// same warm Engine. The pool makes that happen across tenants and requests:
//
//   Acquire(structure) — fingerprint the structure (Engine::FingerprintOf,
//   the same hash that stamps session files), return the resident Engine on
//   a hit, or construct one on a miss. Misses pass admission control first:
//   a max-sessions cap and a global table_memory_budget shared by every
//   resident session (each session is charged its deterministic
//   ResidentArtifactBytes estimate). When full, idle least-recently-used
//   sessions are evicted; if every resident session is leased out, the
//   request is rejected with kResourceExhausted — the server's E_ADMISSION.
//
//   Warm start — on a miss, if `session_dir` holds a session file for the
//   fingerprint, it is loaded into the fresh Engine before the lease is
//   returned (zero encode/TD/normalize builds on the first query).
//
// Leases are shared_ptr copies: a session is "in use" while any lease is
// alive, and only idle sessions are evicted — a leased Engine is never
// destroyed mid-request. All methods are thread-safe; the engines themselves
// are thread-safe by design.
#ifndef TREEDL_SERVER_SESSION_POOL_HPP_
#define TREEDL_SERVER_SESSION_POOL_HPP_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "engine/engine.hpp"
#include "engine/options.hpp"

namespace treedl::server {

struct SessionPoolOptions {
  /// Most sessions resident at once (clamped to >= 1).
  size_t max_sessions = 8;
  /// Global byte budget shared by all resident sessions (0 = unlimited).
  /// Each session is charged max(structure estimate, resident artifacts);
  /// the same value becomes each Engine's per-query table_memory_budget, so
  /// live DP tables obey the ceiling too.
  size_t table_memory_budget = 0;
  /// Directory of session files ("<16-hex-fingerprint>.tdls"). Empty
  /// disables warm start and Save.
  std::string session_dir;
  /// Template for pooled engines (the server fills shared_pool and, when a
  /// global budget is set, table_memory_budget).
  EngineOptions engine_options;
};

struct SessionPoolCounters {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  size_t warm_loads = 0;
  size_t rejections = 0;
};

class SessionPool {
 public:
  /// What Acquire returns: a shared lease on a resident Engine plus how the
  /// pool satisfied it.
  struct Lease {
    std::shared_ptr<Engine> engine;
    uint64_t fingerprint = 0;
    bool hit = false;          // the session was already resident
    bool warm_loaded = false;  // a miss restored from a session file
    size_t artifact_loads = 0;  // artifacts the warm start restored
  };

  explicit SessionPool(SessionPoolOptions options);

  /// Hit, warm start, or cold construction — or kResourceExhausted when
  /// admission control cannot make room.
  StatusOr<Lease> Acquire(const Structure& structure);

  /// Re-measures the budget charge of a resident session against its
  /// engine's ResidentArtifactBytes (call after running requests, which may
  /// have built artifacts).
  void RefreshCharge(uint64_t fingerprint);

  /// Writes the resident session's artifacts to SessionFilePath(fingerprint).
  Status Save(uint64_t fingerprint, RunStats* stats = nullptr);

  /// The resident engine for `fingerprint`, or null. Does not touch LRU
  /// order or counters (STATS must not perturb eviction).
  std::shared_ptr<Engine> Peek(uint64_t fingerprint) const;

  /// "<session_dir>/<16-hex-fingerprint>.tdls" ("" without a session_dir).
  std::string SessionFilePath(uint64_t fingerprint) const;

  SessionPoolCounters counters() const;
  size_t NumResident() const;
  /// Sum of resident session charges against the global budget.
  size_t ChargedBytes() const;
  /// Resident fingerprints, least recently used first.
  std::vector<uint64_t> LruFingerprints() const;

  const SessionPoolOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<Engine> engine;
    size_t charge = 0;
    uint64_t last_used = 0;  // logical clock tick of the last Acquire
  };

  size_t ChargedBytesLocked() const;
  /// Evicts the least-recently-used idle session; false when every resident
  /// session is leased out.
  bool EvictOneLocked();

  SessionPoolOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> sessions_;
  uint64_t clock_ = 0;
  SessionPoolCounters counters_;
};

}  // namespace treedl::server

#endif  // TREEDL_SERVER_SESSION_POOL_HPP_
