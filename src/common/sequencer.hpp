// Sequencer: re-orders numbered payloads produced by concurrent workers back
// into their input order (multi-producer, single logical consumer).
//
// The concurrent serving front-end executes requests out of order but must
// write replies in exactly the order the requests were read, so a scripted
// transcript stays byte-for-byte identical at any thread count. The dispatch
// thread assigns each request a dense sequence number with Allocate();
// whichever thread finishes a request Push()es its (possibly empty) reply
// text under that number, and the sequencer hands every maximal ready run
// 0, 1, 2, ... to the sink exactly once, in order. The sink runs under the
// sequencer lock, so its invocations are totally ordered — an ostream write
// needs no further synchronization.
//
// Every allocated number must be pushed exactly once, or the stream stalls
// at the gap. Header-only, like thread_pool.hpp, so any layer can
// re-sequence without a new library.
#ifndef TREEDL_COMMON_SEQUENCER_HPP_
#define TREEDL_COMMON_SEQUENCER_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>

namespace treedl {

class Sequencer {
 public:
  using Sink = std::function<void(std::string&&)>;

  explicit Sequencer(Sink sink) : sink_(std::move(sink)) {}

  Sequencer(const Sequencer&) = delete;
  Sequencer& operator=(const Sequencer&) = delete;

  /// Next sequence number. Call only from the single dispatch thread (the
  /// allocation order IS the emission order).
  uint64_t Allocate() { return next_alloc_++; }

  /// Hands in the payload for `seq` and emits every payload that is now
  /// contiguous with the emission frontier. Any thread.
  void Push(uint64_t seq, std::string payload) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.emplace(seq, std::move(payload));
    for (auto it = pending_.find(next_emit_); it != pending_.end();
         it = pending_.find(next_emit_)) {
      std::string out = std::move(it->second);
      pending_.erase(it);
      ++next_emit_;
      sink_(std::move(out));
    }
  }

  /// Numbers emitted so far (== Allocate() calls once every payload landed).
  uint64_t NumEmitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_emit_;
  }

 private:
  Sink sink_;
  mutable std::mutex mu_;
  std::map<uint64_t, std::string> pending_;  // out-of-order payloads
  uint64_t next_alloc_ = 0;  // dispatch thread only
  uint64_t next_emit_ = 0;   // guarded by mu_
};

}  // namespace treedl

#endif  // TREEDL_COMMON_SEQUENCER_HPP_
