// The flat-table == hash-map property at the container level: FlatTable is
// the DP's replacement for std::unordered_map<State, Value>, so a randomized
// operation stream applied to both must produce identical contents, and the
// flat table's extra contracts (insertion-order iteration, arena accounting,
// eviction via Release) must hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/flat_table.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

// A DP-shaped state: small byte vector keyed by content, like the bag
// colorings / membership flags of the real problems.
struct VecState {
  std::vector<uint8_t> bytes;

  bool operator==(const VecState&) const = default;
  size_t hash() const { return HashRange(bytes); }
};

struct VecStateHash {
  size_t operator()(const VecState& s) const { return s.hash(); }
};

VecState RandomState(Rng* rng, size_t max_len) {
  VecState s;
  size_t len = static_cast<size_t>(rng->UniformInt(0, static_cast<int>(max_len)));
  for (size_t i = 0; i < len; ++i) {
    s.bytes.push_back(static_cast<uint8_t>(rng->UniformInt(0, 3)));
  }
  return s;
}

TEST(FlatTableTest, MatchesHashMapReferenceOnRandomMergeStreams) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(TestSeed(trial));
    FlatTable<VecState, uint64_t> flat;
    std::unordered_map<VecState, uint64_t, VecStateHash> reference;
    auto merge = [](const uint64_t& a, const uint64_t& b) { return a + b; };

    size_t ops = 200 + 400 * static_cast<size_t>(trial);
    for (size_t op = 0; op < ops; ++op) {
      VecState state = RandomState(&rng, 6);
      uint64_t value = static_cast<uint64_t>(rng.UniformInt(1, 100));
      flat.Emplace(state, value, merge);
      auto [it, inserted] = reference.emplace(state, value);
      if (!inserted) it->second = merge(it->second, value);

      // Point lookups agree mid-stream too.
      VecState probe = RandomState(&rng, 6);
      auto ref_it = reference.find(probe);
      const uint64_t* found = flat.Find(probe);
      ASSERT_EQ(found != nullptr, ref_it != reference.end()) << "trial " << trial;
      if (found != nullptr) EXPECT_EQ(*found, ref_it->second);
    }

    ASSERT_EQ(flat.size(), reference.size()) << "trial " << trial;
    size_t seen = 0;
    for (const auto& [state, value] : flat) {
      auto it = reference.find(state);
      ASSERT_NE(it, reference.end()) << "trial " << trial;
      EXPECT_EQ(value, it->second) << "trial " << trial;
      EXPECT_EQ(flat.count(state), 1u);
      EXPECT_EQ(flat.at(state), it->second);
      ++seen;
    }
    EXPECT_EQ(seen, reference.size());
    EXPECT_GT(flat.MemoryBytes(), 0u);
  }
}

TEST(FlatTableTest, IterationIsInsertionOrdered) {
  FlatTable<VecState, int> table;
  auto keep_first = [](const int& a, const int&) { return a; };
  std::vector<VecState> inserted;
  for (uint8_t i = 0; i < 50; ++i) {
    VecState s;
    s.bytes = {i, static_cast<uint8_t>(i / 3)};
    table.Emplace(s, i, keep_first);
    inserted.push_back(s);
    // Duplicate emplacements must not reorder or duplicate.
    table.Emplace(s, 99, keep_first);
  }
  ASSERT_EQ(table.size(), inserted.size());
  size_t i = 0;
  for (const auto& [state, value] : table) {
    EXPECT_EQ(state, inserted[i]) << "position " << i;
    EXPECT_EQ(value, static_cast<int>(i));
    ++i;
  }
}

TEST(FlatTableTest, ReleaseFreesEverythingAndTableStaysUsable) {
  Rng rng(TestSeed());
  FlatTable<VecState, uint64_t> table;
  auto merge = [](const uint64_t& a, const uint64_t& b) { return a + b; };
  for (int i = 0; i < 300; ++i) {
    table.Emplace(RandomState(&rng, 5), 1, merge);
  }
  EXPECT_GT(table.size(), 0u);
  EXPECT_GT(table.MemoryBytes(), 0u);
  table.Release();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.MemoryBytes(), 0u);
  EXPECT_EQ(table.Find(VecState{}), nullptr);
  // Reuse after eviction: a released table accepts new states.
  table.Emplace(VecState{{1, 2}}, 7, merge);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.at(VecState{{1, 2}}), 7u);
}

TEST(FlatTableTest, MoveTransfersContentsAndZeroesTheSource) {
  FlatTable<VecState, int> a;
  auto keep_first = [](const int& x, const int&) { return x; };
  a.Emplace(VecState{{1}}, 1, keep_first);
  a.Emplace(VecState{{2}}, 2, keep_first);
  FlatTable<VecState, int> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.at(VecState{{2}}), 2);
  // The moved-from table reports no phantom memory and stays usable — the
  // eviction accounting subtracts MemoryBytes(), so a stale footprint would
  // corrupt the tracker.
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.MemoryBytes(), 0u);
  a.Emplace(VecState{{9}}, 9, keep_first);
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.at(VecState{{9}}), 9);
  FlatTable<VecState, int> c;
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.at(VecState{{1}}), 1);
  EXPECT_EQ(b.MemoryBytes(), 0u);
}

TEST(ArenaTest, AllocationsAreAlignedAndAccounted) {
  Arena arena;
  EXPECT_EQ(arena.TotalBytes(), 0u);
  for (size_t align : {size_t{1}, size_t{2}, size_t{8}, size_t{64}}) {
    for (int i = 0; i < 20; ++i) {
      void* p = arena.Allocate(static_cast<size_t>(i) * 3 + 1, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
          << "align " << align;
    }
  }
  EXPECT_GT(arena.TotalBytes(), 0u);
  // Earlier allocations stay valid while later ones grow new blocks.
  auto* first = arena.AllocateArray<uint64_t>(4);
  first[0] = 0xfeedULL;
  for (int i = 0; i < 8; ++i) arena.AllocateArray<uint64_t>(1 << i);
  EXPECT_EQ(first[0], 0xfeedULL);
  arena.Reset();
  EXPECT_EQ(arena.TotalBytes(), 0u);
}

}  // namespace
}  // namespace treedl
