// The pass pipeline: the validate → closure → re-root → normalize
// preparation flow of the §5 algorithms, restructured as named pass objects
// (the MIGraphX `struct pass { name(); apply(state); }` idiom).
//
// A PipelineState carries a working raw decomposition (plus the structure it
// must cover) through the passes; the final NormalizePass deposits the
// modified-normal-form decomposition the DP kernels traverse. Instrumentation
// (per-pass wall-clock into RunStats), pass reordering, and future passes
// (sharding, parallel DP preparation) all hang off this one spine.
//
// Header-only so that core/ can run pipelines without linking the engine
// library (the engine sits above core in the target DAG).
#ifndef TREEDL_ENGINE_PIPELINE_HPP_
#define TREEDL_ENGINE_PIPELINE_HPP_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/timer.hpp"
#include "engine/run_stats.hpp"
#include "structure/structure.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl::engine {

/// State threaded through a preparation pipeline.
struct PipelineState {
  /// The τ-structure the decomposition must cover (validation target); may be
  /// null when a pipeline contains no validation pass.
  const Structure* structure = nullptr;
  /// Working raw decomposition; passes mutate it in place.
  TreeDecomposition td;
  /// Options consumed by NormalizePass.
  NormalizeOptions normalize_options;
  /// Result slot filled by NormalizePass.
  std::optional<NormalizedTreeDecomposition> normalized;
  /// Result slot filled by ShardBagsPass (requires `normalized`).
  std::optional<BagSharding> sharding;
};

/// One named transformation of the pipeline state.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual Status apply(PipelineState& state) const = 0;
};

/// An ordered sequence of passes. Run() times each pass into
/// `stats->passes` and stops at the first failure, prefixing the error with
/// the failing pass's name.
class PassPipeline {
 public:
  PassPipeline& Add(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
    return *this;
  }

  template <typename P, typename... Args>
  PassPipeline& Emplace(Args&&... args) {
    passes_.push_back(std::make_unique<P>(std::forward<Args>(args)...));
    return *this;
  }

  size_t size() const { return passes_.size(); }

  Status Run(PipelineState& state, RunStats* stats = nullptr) const {
    for (const auto& pass : passes_) {
      Timer timer;
      Status status = pass->apply(state);
      if (!status.ok()) {
        return Status(status.code(),
                      "pass '" + pass->name() + "': " + status.message());
      }
      if (stats != nullptr) {
        stats->passes.push_back(PassTiming{pass->name(), timer.ElapsedMillis()});
      }
    }
    return Status::OK();
  }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace treedl::engine

#endif  // TREEDL_ENGINE_PIPELINE_HPP_
