// MSO formula parser (MONA-flavoured concrete syntax).
//
// Grammar (lowest to highest precedence):
//   iff:     imp ('<->' imp)*
//   imp:     or ('->' imp)?          (right associative)
//   or:      and ('|' and)*
//   and:     unary ('&' unary)*
//   unary:   '~' unary | quantifier | primary
//   quant:   ('ex1'|'all1'|'ex2'|'all2') var (',' var)* ':' iff
//   primary: '(' iff ')' | atom
//   atom:    pred '(' var, ... ')' | var '=' var | var '!=' var
//          | var 'in' SetVar | var 'notin' SetVar | SetVar 'sub' SetVar
// FO variables start lower-case, SO variables upper-case.
#ifndef TREEDL_MSO_PARSER_HPP_
#define TREEDL_MSO_PARSER_HPP_

#include <string>

#include "common/status.hpp"
#include "mso/ast.hpp"

namespace treedl::mso {

StatusOr<FormulaPtr> ParseFormula(const std::string& text);

}  // namespace treedl::mso

#endif  // TREEDL_MSO_PARSER_HPP_
