#include "datalog/database.hpp"

#include "common/logging.hpp"

namespace treedl::datalog {

const std::vector<size_t> FactStore::kEmptyMatch;

bool FactStore::Add(PredicateId p, const Tuple& t) {
  auto& set = sets_[static_cast<size_t>(p)];
  if (!set.insert(t).second) return false;
  auto& rel = relations_[static_cast<size_t>(p)];
  rel.push_back(t);
  ++total_;
  // Maintain any already-built column indexes.
  for (auto& [pos, index] : indexes_[static_cast<size_t>(p)]) {
    index[t[static_cast<size_t>(pos)]].push_back(rel.size() - 1);
  }
  return true;
}

const std::vector<size_t>& FactStore::MatchByColumn(PredicateId p, int pos,
                                                    ElementId value) {
  auto& pred_indexes = indexes_[static_cast<size_t>(p)];
  auto it = pred_indexes.find(pos);
  if (it == pred_indexes.end()) {
    ColumnIndex index;
    const auto& rel = relations_[static_cast<size_t>(p)];
    for (size_t i = 0; i < rel.size(); ++i) {
      index[rel[i][static_cast<size_t>(pos)]].push_back(i);
    }
    it = pred_indexes.emplace(pos, std::move(index)).first;
  }
  auto hit = it->second.find(value);
  if (hit == it->second.end()) return kEmptyMatch;
  return hit->second;
}

ResolvedAtom ResolveAtom(const Atom& atom, Structure* domain) {
  ResolvedAtom out;
  out.predicate = atom.predicate;
  out.const_args.reserve(atom.args.size());
  out.vars.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    if (t.IsVar()) {
      out.const_args.push_back(kUnbound);
      out.vars.push_back(t.variable);
    } else {
      // Constants mentioned only in the program are interned into the domain
      // (they simply never match EDB facts unless the EDB also uses them).
      out.const_args.push_back(domain->AddElement(t.constant));
      out.vars.push_back(-1);
    }
  }
  return out;
}

bool FullyBound(const ResolvedAtom& atom, const Binding& binding) {
  for (size_t i = 0; i < atom.vars.size(); ++i) {
    if (atom.vars[i] >= 0 &&
        binding[static_cast<size_t>(atom.vars[i])] == kUnbound) {
      return false;
    }
  }
  return true;
}

Tuple GroundArgs(const ResolvedAtom& atom, const Binding& binding) {
  Tuple out(atom.const_args.size());
  for (size_t i = 0; i < atom.const_args.size(); ++i) {
    if (atom.vars[i] >= 0) {
      out[i] = binding[static_cast<size_t>(atom.vars[i])];
      TREEDL_DCHECK(out[i] != kUnbound);
    } else {
      out[i] = atom.const_args[i];
    }
  }
  return out;
}

size_t MatchAtom(FactStore* store, const ResolvedAtom& atom, Binding* binding,
                 const std::function<bool(void)>& yield) {
  // Pick a bound column for index access, if any.
  int index_pos = -1;
  ElementId index_value = kUnbound;
  for (size_t i = 0; i < atom.const_args.size(); ++i) {
    ElementId v = atom.const_args[i];
    if (atom.vars[i] >= 0) v = (*binding)[static_cast<size_t>(atom.vars[i])];
    if (v != kUnbound) {
      index_pos = static_cast<int>(i);
      index_value = v;
      break;
    }
  }

  // Candidate tuples (by index or full relation).
  const std::vector<Tuple>& rel = store->Tuples(atom.predicate);
  const std::vector<size_t>* candidates = nullptr;
  std::vector<size_t> all;
  if (index_pos >= 0) {
    candidates = &store->MatchByColumn(atom.predicate, index_pos, index_value);
  } else {
    all.resize(rel.size());
    for (size_t i = 0; i < rel.size(); ++i) all[i] = i;
    candidates = &all;
  }

  size_t matches = 0;
  for (size_t idx : *candidates) {
    const Tuple& tuple = rel[idx];
    // Attempt unification, remembering which variables this tuple binds.
    std::vector<VariableId> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < tuple.size() && ok; ++i) {
      VariableId var = atom.vars[i];
      if (var < 0) {
        ok = atom.const_args[i] == tuple[i];
        continue;
      }
      ElementId& slot = (*binding)[static_cast<size_t>(var)];
      if (slot == kUnbound) {
        slot = tuple[i];
        newly_bound.push_back(var);
      } else {
        ok = slot == tuple[i];
      }
    }
    bool keep_going = true;
    if (ok) {
      ++matches;
      keep_going = yield();
    }
    for (VariableId var : newly_bound) {
      (*binding)[static_cast<size_t>(var)] = kUnbound;
    }
    if (ok && !keep_going) break;
  }
  return matches;
}

}  // namespace treedl::datalog
