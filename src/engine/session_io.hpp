// Persistent Engine sessions: the versioned binary file format that lets a
// warm artifact cache survive process restarts.
//
// A session file is a fingerprinted container of independently decodable
// sections, one per cached artifact (raw/closed decompositions, modified
// normal forms, the τ_td structure, the schema encoding, the memoized primes
// vector). The byte layout is specified in docs/SESSION_FORMAT.md; the
// per-artifact encodings live with their owning layers
// (structure/structure_io, td/td_io, datalog/tau_td) — this file only frames
// them. Engine::SaveSession / Engine::LoadSession are the public entry
// points.
#ifndef TREEDL_ENGINE_SESSION_IO_HPP_
#define TREEDL_ENGINE_SESSION_IO_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "datalog/tau_td.hpp"
#include "schema/encode.hpp"
#include "td/normalize.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl::engine {

/// First 4 bytes of every session file: "TDLS" (read as a little-endian u32).
inline constexpr uint32_t kSessionMagic = 0x534C4454u;
/// Highest format version this build reads and the one it writes.
inline constexpr uint32_t kSessionVersion = 1;

/// Section tags (docs/SESSION_FORMAT.md). Values are part of the format —
/// append new tags, never renumber.
enum class SessionSection : uint32_t {
  kTreeDecomposition = 1,
  kClosedTreeDecomposition = 2,
  kPlainNormalizedTd = 3,
  kEnumNormalizedTd = 4,
  kTauTd = 5,
  kSchemaEncoding = 6,
  kPrimes = 7,
};

/// The serializable slice of an Engine's lazy cache (owned values — what
/// DecodeSessionFile returns). Every field mirrors one cache slot; absent
/// fields simply were not cached when the file was saved.
struct SessionArtifacts {
  std::optional<TreeDecomposition> td;
  std::optional<TreeDecomposition> closed_td;
  std::optional<NormalizedTreeDecomposition> plain_ntd;
  std::optional<NormalizedTreeDecomposition> enum_ntd;
  std::optional<datalog::TauTdEncoding> tau_td;
  std::optional<SchemaEncoding> encoding;
  std::optional<std::vector<bool>> primes;

  /// Number of present artifacts.
  size_t Count() const;
};

/// Borrowed view of the same slice, for the save path: the Engine's cached
/// artifacts are set-once and address-stable, so SaveSession snapshots
/// pointers under its lock and serializes outside it — no deep copies, no
/// queries blocked behind an O(cache size) copy.
struct SessionArtifactRefs {
  const TreeDecomposition* td = nullptr;
  const TreeDecomposition* closed_td = nullptr;
  const NormalizedTreeDecomposition* plain_ntd = nullptr;
  const NormalizedTreeDecomposition* enum_ntd = nullptr;
  const datalog::TauTdEncoding* tau_td = nullptr;
  const SchemaEncoding* encoding = nullptr;
  const std::vector<bool>* primes = nullptr;

  /// Number of present artifacts.
  size_t Count() const;
};

/// Serializes `artifacts` into the session byte format, stamped with
/// `fingerprint` (a stable hash of the session's input — see
/// Engine::SaveSession).
std::string EncodeSessionFile(uint64_t fingerprint,
                              const SessionArtifactRefs& artifacts);

/// Parses a session byte string. Returns a clean error Status on bad magic,
/// a version newer than kSessionVersion, a fingerprint that does not match
/// `expected_fingerprint`, or any corrupted section — never crashes.
/// Sections with unknown tags are skipped (a same-version reader stays
/// compatible with files that carry artifacts it does not know).
StatusOr<SessionArtifacts> DecodeSessionFile(std::string_view data,
                                             uint64_t expected_fingerprint);

/// EncodeSessionFile + atomic-ish write to `path` (write then rename is not
/// attempted; partial writes surface as decode errors on the next load).
Status WriteSessionFile(const std::string& path, uint64_t fingerprint,
                        const SessionArtifactRefs& artifacts);

/// Reads `path` and decodes it.
StatusOr<SessionArtifacts> ReadSessionFile(const std::string& path,
                                           uint64_t expected_fingerprint);

}  // namespace treedl::engine

#endif  // TREEDL_ENGINE_SESSION_IO_HPP_
