#include "datalog/eval_internal.hpp"

#include "common/logging.hpp"

namespace treedl::datalog::internal {

StatusOr<PreparedProgram> Prepare(const Program& program,
                                  const Structure& edb) {
  TREEDL_ASSIGN_OR_RETURN(ProgramInfo info, AnalyzeProgram(program));

  // Union signature: EDB predicates keep their ids; new program predicates
  // are appended.
  Signature combined = edb.signature();
  std::vector<PredicateId> predicate_map(
      static_cast<size_t>(program.signature().size()));
  for (PredicateId p = 0; p < program.signature().size(); ++p) {
    const PredicateInfo& pi = program.signature().predicate(p);
    if (combined.HasPredicate(pi.name)) {
      PredicateId existing = combined.PredicateIdOf(pi.name).value();
      if (combined.arity(existing) != pi.arity) {
        return Status::InvalidArgument(
            "predicate " + pi.name + " has arity " +
            std::to_string(combined.arity(existing)) + " in the EDB but " +
            std::to_string(pi.arity) + " in the program");
      }
      predicate_map[static_cast<size_t>(p)] = existing;
    } else {
      TREEDL_ASSIGN_OR_RETURN(predicate_map[static_cast<size_t>(p)],
                              combined.AddPredicate(pi.name, pi.arity));
    }
  }

  PreparedProgram prep;
  prep.result = Structure(combined);
  prep.predicate_map = predicate_map;
  prep.num_variables = program.NumVariables();
  prep.intensional.assign(static_cast<size_t>(combined.size()), false);
  for (PredicateId p = 0; p < program.signature().size(); ++p) {
    if (info.intensional[static_cast<size_t>(p)]) {
      prep.intensional[static_cast<size_t>(predicate_map[static_cast<size_t>(p)])] =
          true;
    }
  }

  // Copy the EDB domain and facts.
  for (ElementId e = 0; e < edb.NumElements(); ++e) {
    ElementId copied = prep.result.AddElement(edb.ElementName(e));
    TREEDL_CHECK(copied == e);
  }
  prep.store = FactStore(combined);
  for (const Fact& fact : edb.AllFacts()) {
    // EDB predicate ids coincide with combined ids by construction.
    prep.store.Add(fact.predicate, fact.args);
    Status st = prep.result.AddFact(fact.predicate, fact.args);
    TREEDL_CHECK(st.ok()) << st.ToString();
  }

  // Resolve rules (translating predicate ids and interning constants); ground
  // program facts seed the store directly.
  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    Atom head_translated = rule.head;
    head_translated.predicate =
        predicate_map[static_cast<size_t>(rule.head.predicate)];
    ResolvedAtom head = ResolveAtom(head_translated, &prep.result);
    if (rule.body.empty()) {
      Tuple ground = head.const_args;  // fully constant by analysis
      prep.store.Add(head.predicate, ground);
      Status st = prep.result.AddFact(head.predicate, ground);
      TREEDL_CHECK(st.ok()) << st.ToString();
      continue;
    }
    PreparedRule prepared;
    prepared.head = std::move(head);
    for (size_t i : info.plans[r]) {
      const Literal& lit = rule.body[i];
      Atom translated = lit.atom;
      translated.predicate =
          predicate_map[static_cast<size_t>(lit.atom.predicate)];
      prepared.body.push_back(ResolveAtom(translated, &prep.result));
      prepared.positive.push_back(lit.positive);
      prepared.body_intensional.push_back(
          prep.intensional[static_cast<size_t>(translated.predicate)]);
    }
    // Compile the rule's join plans once, here: the full plan plus one
    // delta variant per positive intensional body position.
    prep.compiled.push_back(CompileRule(prepared.head, prepared.body,
                                        prepared.positive,
                                        prepared.body_intensional,
                                        prep.num_variables));
    prep.plan_compiles += 1 + prep.compiled.back().delta_variants.size();
    prep.rules.push_back(std::move(prepared));
  }
  return prep;
}

namespace {

size_t ApplyFrom(const PreparedRule& rule, FactStore* store, FactStore* delta,
                 int delta_position, DeltaRange delta_range, size_t position,
                 Binding* binding,
                 const std::function<void(const Tuple&)>& derive) {
  if (position == rule.body.size()) {
    derive(GroundArgs(rule.head, *binding));
    return 0;
  }
  const ResolvedAtom& atom = rule.body[position];
  size_t work = 1;
  if (!rule.positive[position]) {
    // Negative literals are fully bound at this point (plan ordering).
    TREEDL_DCHECK(FullyBound(atom, *binding));
    if (!store->Contains(atom.predicate, GroundArgs(atom, *binding))) {
      work += ApplyFrom(rule, store, delta, delta_position, delta_range,
                        position + 1, binding, derive);
    }
    return work;
  }
  bool at_delta = static_cast<int>(position) == delta_position;
  FactStore* source = at_delta ? delta : store;
  size_t begin = at_delta ? delta_range.begin : 0;
  size_t end = at_delta ? delta_range.end : static_cast<size_t>(-1);
  MatchAtomInRange(source, atom, binding, begin, end, [&]() {
    work += ApplyFrom(rule, store, delta, delta_position, delta_range,
                      position + 1, binding, derive);
    return true;
  });
  return work;
}

}  // namespace

size_t ApplyRule(const PreparedRule& rule, FactStore* store, FactStore* delta,
                 int delta_position, size_t num_variables,
                 const std::function<void(const Tuple&)>& derive,
                 DeltaRange delta_range) {
  Binding binding(num_variables, kUnbound);
  return ApplyFrom(rule, store, delta, delta_position, delta_range, 0,
                   &binding, derive);
}

}  // namespace treedl::datalog::internal
