// §5.3: the two-pass PRIMALITY enumeration is linear in the input, while
// re-running the §5.2 decision per attribute is quadratic. Prints a table of
// both times and their ratio over growing balanced instances.
#include <cstdio>
#include <functional>

#include "common/timer.hpp"
#include "core/primality_enum.hpp"
#include "engine/engine.hpp"
#include "schema/generators.hpp"

namespace treedl {
namespace {

double Once(const std::function<void()>& run) {
  Timer timer;
  run();
  return timer.ElapsedMillis();
}

}  // namespace

void RunEnumerationBench() {
  std::printf("PRIMALITY enumeration: linear two-pass vs quadratic re-rooting\n");
  std::printf("%6s %5s %12s %14s %8s\n", "#Att", "#FD", "two-pass ms",
              "per-attr ms", "ratio");
  for (int g : {2, 4, 8, 16, 32, 64}) {
    BalancedInstance inst = GenerateBalancedInstance(g);
    std::vector<bool> linear_result, quadratic_result;
    EngineOptions options;
    options.decomposition = inst.td;
    Engine engine(inst.schema, options);
    // Warm the encoding so both arms start from the same prebuilt state
    // (the quadratic baseline receives inst.encoding ready-made).
    TREEDL_CHECK(engine.structure().ok());
    double linear_ms = Once([&] {
      auto r = engine.AllPrimes();
      TREEDL_CHECK(r.ok()) << r.status();
      linear_result = std::move(*r);
    });
    double quadratic_ms = Once([&] {
      auto r = core::EnumeratePrimesQuadratic(inst.schema, inst.encoding,
                                              inst.td);
      TREEDL_CHECK(r.ok()) << r.status();
      quadratic_result = std::move(*r);
    });
    TREEDL_CHECK(linear_result == quadratic_result)
        << "enumeration engines disagree";
    std::printf("%6d %5d %12.2f %14.2f %7.1fx\n",
                inst.schema.NumAttributes(), inst.schema.NumFds(), linear_ms,
                quadratic_ms, quadratic_ms / std::max(linear_ms, 1e-3));
  }
  std::printf("\n(the ratio should grow roughly linearly with the instance "
              "size)\n");
}

}  // namespace treedl

int main() {
  treedl::RunEnumerationBench();
  return 0;
}
