// Verbatim listings of the paper's datalog programs (Figures 5 and 6).
//
// These are the succinct *non-monadic* programs of §5; their set-valued
// arguments (R, G, B, Y, FY, Co, ΔC, FC over bag elements) make them
// "succinct representations of quasi-guarded monadic programs" (proofs of
// Thms 5.1/5.3), which is why this library executes them natively as dynamic
// programs (core/three_color.*, core/primality*.*) exactly as the authors'
// C++ implementation did. The listings are exposed for documentation,
// examples and the paper_figures binary.
#ifndef TREEDL_CORE_PROGRAM_LISTINGS_HPP_
#define TREEDL_CORE_PROGRAM_LISTINGS_HPP_

#include <string>

namespace treedl::core {

/// Figure 5: the 3-Colorability program.
const std::string& ThreeColorabilityProgramListing();

/// Figure 6: the PRIMALITY decision program.
const std::string& PrimalityProgramListing();

/// §5.3: the Monadic-Primality enumeration rule (prime/1 at the leaves).
const std::string& MonadicPrimalityProgramListing();

}  // namespace treedl::core

#endif  // TREEDL_CORE_PROGRAM_LISTINGS_HPP_
