// Text serialization for structures.
//
// Format (one item per line; '%' starts a comment):
//   pred(arg1, arg2).     — a ground fact; elements are interned on sight
//   element(name).        — declares an isolated element (no facts needed)
// The signature must be supplied by the caller; facts referencing unknown
// predicates are parse errors.
#ifndef TREEDL_STRUCTURE_STRUCTURE_IO_HPP_
#define TREEDL_STRUCTURE_STRUCTURE_IO_HPP_

#include <string>

#include "common/status.hpp"
#include "structure/structure.hpp"

namespace treedl {

/// Parses `text` into a structure over `signature`.
StatusOr<Structure> ParseStructure(const Signature& signature,
                                   const std::string& text);

/// Renders all facts (and isolated elements) in the parse format above.
std::string FormatStructure(const Structure& structure);

}  // namespace treedl

#endif  // TREEDL_STRUCTURE_STRUCTURE_IO_HPP_
