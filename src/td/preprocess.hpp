// Safe preprocessing reductions for treewidth (the standard rule set of
// Bodlaender–Koster-style preprocessing, as used by htd and friends).
//
// Each rule eliminates a vertex whose optimal bag is forced, shrinking the
// graph the ordering heuristics have to work on without ever hurting the
// achievable width:
//
//   isolated   (degree 0)  bag {v}; always safe.
//   pendant    (degree 1)  bag {v, u}; safe once the graph has an edge
//                          (tw >= 1).
//   series     (degree 2)  bag {v, u, w}, edge {u, w} added; safe when the
//                          tracked lower bound is >= 2.
//   simplicial             N(v) is a clique, so {v} ∪ N(v) is a clique and
//                          tw >= deg(v): eliminating v is exact and raises
//                          the lower bound to deg(v).
//   almost-simplicial      N(v) minus one vertex is a clique; safe when
//                          deg(v) <= the tracked lower bound (the forced bag
//                          cannot exceed a width we must pay anyway).
//
// The tracked lower bound starts at the degeneracy of the input (removing a
// minimum-degree vertex repeatedly; degeneracy <= treewidth) and only grows
// via simplicial witnesses, so the invariant
//
//   tw(original) = max(tw(reduced), lower_bound)
//
// holds after every rule application — that is what "width-safe" means here.
// SpliceBack rebuilds a decomposition of the original graph from any valid
// decomposition of the reduced graph by re-attaching the eliminated vertices
// in reverse elimination order; the splice bags have size deg(v) + 1 <=
// max(lower_bound, width(reduced)) + 1, so the width never regresses past
// the guarantee above.
#ifndef TREEDL_TD_PREPROCESS_HPP_
#define TREEDL_TD_PREPROCESS_HPP_

#include <cstddef>
#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

/// How often each reduction rule fired during one Preprocess run.
struct ReductionCounters {
  size_t isolated = 0;
  size_t pendant = 0;
  size_t series = 0;
  size_t simplicial = 0;
  size_t almost_simplicial = 0;

  size_t Total() const {
    return isolated + pendant + series + simplicial + almost_simplicial;
  }
};

/// One eliminated vertex with its neighborhood at elimination time (original
/// vertex ids; the neighborhood was turned into a clique of the reduced
/// graph, so it is fully contained in some bag of any decomposition built
/// later — the anchor SpliceBack attaches to).
struct EliminatedVertex {
  VertexId vertex = 0;
  std::vector<VertexId> neighbors;
};

struct PreprocessResult {
  /// The reduced graph over surviving vertices, reindexed densely.
  Graph reduced;
  /// Reduced vertex id -> original vertex id (sorted ascending).
  std::vector<VertexId> to_original;
  /// Eliminated vertices in elimination order.
  std::vector<EliminatedVertex> eliminated;
  /// Proven treewidth lower bound of the ORIGINAL graph (degeneracy plus
  /// simplicial-clique witnesses).
  int lower_bound = 0;
  ReductionCounters counters;
};

/// Exhaustively applies the safe reduction rules (lowest-eligible-vertex-id
/// first per rule, rules in the order listed above) until none fires.
/// Deterministic; linear memory, small-polynomial time.
PreprocessResult Preprocess(const Graph& graph);

/// Rebuilds a decomposition of the original graph from a decomposition of
/// `result.reduced` (in reduced vertex ids): translates the reduced bags back
/// to original ids, then re-attaches every eliminated vertex v, in reverse
/// elimination order, as a fresh child bag {v} ∪ N(v) under a bag containing
/// N(v). `reduced_td` may be empty iff the reduction consumed the whole
/// graph. The result is a valid decomposition of the original graph with
/// width max(reduced_td.Width(), max eliminated degree).
StatusOr<TreeDecomposition> SpliceBack(const PreprocessResult& result,
                                       const TreeDecomposition& reduced_td);

}  // namespace treedl

#endif  // TREEDL_TD_PREPROCESS_HPP_
