// SessionPool: fingerprint-keyed reuse, LRU eviction order, warm start from
// session files, and shared-budget admission control.
#include "server/session_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "engine/engine.hpp"
#include "structure/structure_io.hpp"
#include "test_util.hpp"

namespace treedl::server {
namespace {

/// A path graph a -> b -> c -> ... with `n` vertices over the e/2 signature.
Structure PathStructure(size_t n) {
  auto signature = Signature::Make({{"e", 2}});
  EXPECT_TRUE(signature.ok());
  std::string text;
  for (size_t i = 0; i + 1 < n; ++i) {
    text += "e(v" + std::to_string(i) + ", v" + std::to_string(i + 1) + ").\n";
  }
  if (n == 1) text = "element(v0).\n";
  auto structure = ParseStructure(*signature, text);
  EXPECT_TRUE(structure.ok()) << structure.status();
  return *std::move(structure);
}

TEST(SessionPoolTest, HitIsKeyedByFingerprintNotIdentity) {
  SessionPool pool(SessionPoolOptions{});
  Structure first = PathStructure(4);
  Structure second = PathStructure(4);  // equal content, distinct object

  auto miss = pool.Acquire(first);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().hit);
  auto hit = pool.Acquire(second);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().hit);
  EXPECT_EQ(hit.value().engine.get(), miss.value().engine.get());
  EXPECT_EQ(hit.value().fingerprint, Engine::FingerprintOf(first));

  SessionPoolCounters counters = pool.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(pool.NumResident(), 1u);
}

TEST(SessionPoolTest, LruEvictionOrder) {
  SessionPoolOptions options;
  options.max_sessions = 2;
  SessionPool pool(options);
  Structure s1 = PathStructure(3);
  Structure s2 = PathStructure(4);
  Structure s3 = PathStructure(5);
  uint64_t fp1 = Engine::FingerprintOf(s1);
  uint64_t fp2 = Engine::FingerprintOf(s2);
  uint64_t fp3 = Engine::FingerprintOf(s3);

  ASSERT_TRUE(pool.Acquire(s1).ok());
  ASSERT_TRUE(pool.Acquire(s2).ok());
  EXPECT_EQ(pool.LruFingerprints(), (std::vector<uint64_t>{fp1, fp2}));

  // Touch s1: s2 becomes the eviction victim.
  ASSERT_TRUE(pool.Acquire(s1).ok());
  EXPECT_EQ(pool.LruFingerprints(), (std::vector<uint64_t>{fp2, fp1}));

  ASSERT_TRUE(pool.Acquire(s3).ok());
  EXPECT_EQ(pool.NumResident(), 2u);
  EXPECT_EQ(pool.Peek(fp2), nullptr);
  EXPECT_NE(pool.Peek(fp1), nullptr);
  EXPECT_EQ(pool.LruFingerprints(), (std::vector<uint64_t>{fp1, fp3}));
  EXPECT_EQ(pool.counters().evictions, 1u);
}

TEST(SessionPoolTest, SecondAcquireReusesArtifactsWithZeroBuilds) {
  SessionPool pool(SessionPoolOptions{});
  Structure structure = PathStructure(6);

  {
    auto lease = pool.Acquire(structure);
    ASSERT_TRUE(lease.ok());
    RunStats cold;
    ASSERT_TRUE(lease.value().engine->SolveAll(&cold).ok());
    EXPECT_GT(cold.td_builds, 0u);
  }
  auto lease = pool.Acquire(structure);
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease.value().hit);
  RunStats warm;
  ASSERT_TRUE(lease.value().engine->SolveAll(&warm).ok());
  EXPECT_EQ(warm.encode_builds, 0u);
  EXPECT_EQ(warm.td_builds, 0u);
  EXPECT_EQ(warm.normalize_builds, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
}

TEST(SessionPoolTest, WarmStartFromSavedSessionFile) {
  const std::string dir =
      "session_pool_test_" + std::to_string(TestSeed() % 100000);
  std::filesystem::create_directories(dir);
  Structure structure = PathStructure(6);
  uint64_t fingerprint = Engine::FingerprintOf(structure);

  SessionPoolOptions options;
  options.session_dir = dir;
  {
    SessionPool pool(options);
    auto lease = pool.Acquire(structure);
    ASSERT_TRUE(lease.ok());
    EXPECT_FALSE(lease.value().warm_loaded);  // nothing saved yet
    ASSERT_TRUE(lease.value().engine->SolveAll(nullptr).ok());
    RunStats saved;
    ASSERT_TRUE(pool.Save(fingerprint, &saved).ok());
    EXPECT_GT(saved.artifact_saves, 0u);
  }

  SessionPool fresh(options);
  auto lease = fresh.Acquire(structure);
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease.value().hit);
  EXPECT_TRUE(lease.value().warm_loaded);
  EXPECT_GT(lease.value().artifact_loads, 0u);
  EXPECT_EQ(fresh.counters().warm_loads, 1u);

  RunStats warm;
  ASSERT_TRUE(lease.value().engine->SolveAll(&warm).ok());
  EXPECT_EQ(warm.encode_builds, 0u);
  EXPECT_EQ(warm.td_builds, 0u);
  EXPECT_EQ(warm.normalize_builds, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SessionPoolTest, BudgetRejectsOversizedStructure) {
  SessionPoolOptions options;
  options.table_memory_budget = 64;  // below any structure estimate
  SessionPool pool(options);
  auto lease = pool.Acquire(PathStructure(8));
  EXPECT_FALSE(lease.ok());
  EXPECT_EQ(lease.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.counters().rejections, 1u);
  EXPECT_EQ(pool.NumResident(), 0u);
}

TEST(SessionPoolTest, BudgetRejectsWhenEveryResidentSessionIsLeased) {
  Structure s1 = PathStructure(4);
  Structure s2 = PathStructure(5);
  // Room for one structure charge but not two (4 elements * 48 + 3 tuples *
  // (24 + 2 * 4) = 288 bytes for s1; s2 is bigger).
  SessionPoolOptions options;
  options.table_memory_budget = 400;
  SessionPool pool(options);

  auto held = pool.Acquire(s1);
  ASSERT_TRUE(held.ok()) << held.status();
  auto rejected = pool.Acquire(s2);  // s1 is leased: nothing to evict
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.counters().rejections, 1u);

  held.value().Release();  // release the lease; s1 becomes evictable
  auto admitted = pool.Acquire(s2);
  EXPECT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_EQ(pool.counters().evictions, 1u);
  EXPECT_EQ(pool.Peek(Engine::FingerprintOf(s1)), nullptr);
}

TEST(SessionPoolTest, LeaseCountBlocksEvictionUntilLastCopyDies) {
  SessionPoolOptions options;
  options.max_sessions = 1;
  SessionPool pool(options);
  Structure s1 = PathStructure(3);
  Structure s2 = PathStructure(4);
  uint64_t fp1 = Engine::FingerprintOf(s1);

  auto lease = pool.Acquire(s1);
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(pool.ActiveLeases(fp1), 1u);

  // A copy shares the pin: the count stays 1 and drops only when BOTH die.
  SessionPool::Lease copy = lease.value();
  EXPECT_EQ(pool.ActiveLeases(fp1), 1u);

  // While any copy is alive the session cannot be evicted, so a second
  // structure finds no room in the 1-slot pool.
  EXPECT_FALSE(pool.Acquire(s2).ok());
  lease.value().Release();
  EXPECT_EQ(pool.ActiveLeases(fp1), 1u);  // copy still pins it
  EXPECT_FALSE(pool.Acquire(s2).ok());
  copy.Release();
  EXPECT_EQ(pool.ActiveLeases(fp1), 0u);
  EXPECT_TRUE(pool.Acquire(s2).ok());
  EXPECT_FALSE(pool.IsResident(fp1));
}

TEST(SessionPoolTest, ConcurrentAcquiresOfOneFingerprintBuildOnce) {
  SessionPool pool(SessionPoolOptions{});
  Structure structure = PathStructure(6);

  constexpr size_t kThreads = 8;
  std::vector<std::shared_ptr<Engine>> engines(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &structure, &engines, t] {
      auto lease = pool.Acquire(structure);
      ASSERT_TRUE(lease.ok());
      engines[t] = lease.value().engine;
    });
  }
  for (std::thread& thread : threads) thread.join();

  SessionPoolCounters counters = pool.counters();
  EXPECT_EQ(counters.misses, 1u);  // the build latch admits ONE builder
  EXPECT_EQ(counters.hits, kThreads - 1);  // everyone else is served the build
  EXPECT_LE(counters.build_waits, kThreads - 1);
  EXPECT_EQ(pool.NumResident(), 1u);
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(engines[t].get(), engines[0].get()) << t;
  }
}

TEST(SessionPoolTest, RefreshChargeRecomputesInsteadOfRatcheting) {
  SessionPoolOptions options;
  options.table_memory_budget = 1 << 20;
  SessionPool pool(options);
  Structure structure = PathStructure(6);
  uint64_t fingerprint = Engine::FingerprintOf(structure);
  size_t estimate = Engine::EstimateStructureBytes(structure);

  auto lease = pool.Acquire(structure);
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(pool.ChargedBytes(), estimate);  // nothing built yet

  ASSERT_TRUE(lease.value().engine->SolveAll(nullptr).ok());
  pool.RefreshCharge(fingerprint);
  size_t resident = lease.value().engine->ResidentArtifactBytes();
  // Exact recomputation, not a high-water mark: the charge IS the formula.
  EXPECT_EQ(pool.ChargedBytes(), std::max(estimate, resident));

  // Refreshing again without new work must not drift the charge upward.
  pool.RefreshCharge(fingerprint);
  pool.RefreshCharge(fingerprint);
  EXPECT_EQ(pool.ChargedBytes(), std::max(estimate, resident));
}

TEST(SessionPoolTest, ContendedAcquireReleaseEvictStress) {
  SessionPoolOptions options;
  options.max_sessions = 2;  // forces constant eviction pressure
  SessionPool pool(options);
  std::vector<Structure> structures;
  for (size_t n = 3; n < 7; ++n) structures.push_back(PathStructure(n));

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 25;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        const Structure& structure = structures[(t + round) % structures.size()];
        auto lease = pool.Acquire(structure);
        if (!lease.ok()) {
          // Transient: every slot leased by the other threads.
          ++failures;
          continue;
        }
        EXPECT_GE(pool.ActiveLeases(lease.value().fingerprint), 1u);
        ASSERT_TRUE(lease.value().engine->SolveAll(nullptr).ok());
        pool.RefreshCharge(lease.value().fingerprint);
        lease.value().Release();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Idle pool: no lease leaked a pin, every entry is evictable again.
  for (uint64_t fingerprint : pool.LruFingerprints()) {
    EXPECT_EQ(pool.ActiveLeases(fingerprint), 0u);
  }
  SessionPoolCounters counters = pool.counters();
  // Every attempt is classified exactly once (a rejected acquire counts as a
  // miss first), so the ledger must balance.
  EXPECT_EQ(counters.hits + counters.misses, kThreads * kRounds);
  EXPECT_EQ(counters.rejections, failures.load());
  EXPECT_LE(pool.NumResident(), 2u);
}

TEST(SessionPoolTest, FailedBuildReportsOnceAndRetriesOnce) {
  ASSERT_TRUE(
      FaultInjector::Global().SetSchedule("session_pool.build@0").ok());
  SessionPool pool(SessionPoolOptions{});
  Structure structure = PathStructure(5);

  auto failed = pool.Acquire(structure);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find("session_pool.build"),
            std::string::npos);
  EXPECT_EQ(pool.NumResident(), 0u);

  // A fresh Acquire retries the build exactly once — and succeeds, because
  // only hit 0 of the site is scheduled to fail.
  auto retried = pool.Acquire(structure);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_FALSE(retried.value().hit);
  EXPECT_EQ(pool.counters().misses, 2u);
  EXPECT_EQ(FaultInjector::Global().FaultsInjected(), 1u);
  FaultInjector::Global().Disable();
}

TEST(SessionPoolTest, FailedBuildUnderContentionNeverHangsOrStorms) {
  ASSERT_TRUE(
      FaultInjector::Global().SetSchedule("session_pool.build@0").ok());
  SessionPool pool(SessionPoolOptions{});
  Structure structure = PathStructure(6);

  constexpr size_t kThreads = 8;
  std::vector<Status> failures(kThreads, Status::OK());
  std::vector<std::shared_ptr<Engine>> engines(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &structure, &failures, &engines, t] {
      auto lease = pool.Acquire(structure);
      if (lease.ok()) {
        engines[t] = lease.value().engine;
      } else {
        failures[t] = lease.status();
      }
    });
  }
  // The join IS the no-hang assertion: the failed build must wake every
  // waiter with the failure (or let it retry), never strand it on the latch.
  for (std::thread& thread : threads) thread.join();

  size_t failed = 0;
  std::shared_ptr<Engine> survivor;
  for (size_t t = 0; t < kThreads; ++t) {
    if (engines[t] != nullptr) {
      if (survivor == nullptr) survivor = engines[t];
      EXPECT_EQ(engines[t].get(), survivor.get()) << t;
      continue;
    }
    ++failed;
    EXPECT_EQ(failures[t].code(), StatusCode::kInternal) << t;
    EXPECT_NE(failures[t].message().find("injected fault at"),
              std::string::npos)
        << t;
  }
  // The builder fails; every thread that waited on that build shares the
  // failure. The rest retry through the latch: ONE rebuilds (hit 1 is not
  // scheduled, so it succeeds) and the others are served that session.
  EXPECT_GE(failed, 1u);
  EXPECT_LT(failed, kThreads);  // somebody retried and succeeded
  EXPECT_EQ(FaultInjector::Global().FaultsInjected(), 1u);  // no retry storm
  EXPECT_EQ(pool.counters().misses, 2u);  // failed build + exactly one retry
  EXPECT_EQ(pool.NumResident(), 1u);
  FaultInjector::Global().Disable();
}

TEST(SessionPoolTest, CorruptSessionFileIsQuarantinedAndRebuiltCold) {
  const std::string dir =
      "session_pool_quarantine_" + std::to_string(TestSeed() % 100000);
  std::filesystem::create_directories(dir);
  Structure structure = PathStructure(6);
  uint64_t fingerprint = Engine::FingerprintOf(structure);

  SessionPoolOptions options;
  options.session_dir = dir;
  {
    SessionPool pool(options);
    ASSERT_TRUE(pool.Acquire(structure).ok());
    ASSERT_TRUE(pool.Acquire(structure).value().engine->SolveAll(nullptr).ok());
    ASSERT_TRUE(pool.Save(fingerprint).ok());
  }
  // Truncate the session file to garbage.
  SessionPool probe(options);
  std::string path = probe.SessionFilePath(fingerprint);
  {
    std::ofstream corrupt(path, std::ios::trunc | std::ios::binary);
    corrupt << "not a session file";
  }

  SessionPool fresh(options);
  auto lease = fresh.Acquire(structure);
  ASSERT_TRUE(lease.ok()) << lease.status();  // degraded, not failed
  EXPECT_FALSE(lease.value().warm_loaded);
  SessionPoolCounters counters = fresh.counters();
  EXPECT_EQ(counters.warm_loads, 0u);
  EXPECT_EQ(counters.quarantines, 1u);
  // The damage is preserved for inspection and out of the warm-start path.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  // The degraded session still answers correctly.
  auto result = lease.value().engine->SolveAll(nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().three_colorable);
  std::filesystem::remove_all(dir);
}

TEST(SessionPoolTest, SaveRequiresResidencyAndSessionDir) {
  SessionPool pool(SessionPoolOptions{});
  EXPECT_EQ(pool.Save(0x1234).code(), StatusCode::kNotFound);

  Structure structure = PathStructure(3);
  ASSERT_TRUE(pool.Acquire(structure).ok());
  Status no_dir = pool.Save(Engine::FingerprintOf(structure));
  EXPECT_EQ(no_dir.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace treedl::server
