// Grounding-based evaluation of quasi-guarded programs (Thm 4.4).
//
// Phase 1 (grounding): for every rule, enumerate the quasi-guard atom over
// the EDB; all remaining variables are functionally determined through the
// other extensional atoms (child1/child2/bag lookups resolve them in O(1)
// via column indexes). Extensional literals — positive and negative — are
// decided at grounding time; what remains is a ground propositional Horn
// clause over intensional atoms. The number of ground instances per rule is
// O(|A|), so the ground program has size O(|P| · |A|).
//
// Phase 2 (solving): LTUR unit propagation over the ground Horn program,
// linear in its size.
#ifndef TREEDL_DATALOG_GROUNDER_HPP_
#define TREEDL_DATALOG_GROUNDER_HPP_

#include "common/status.hpp"
#include "datalog/ast.hpp"
#include "datalog/ltur.hpp"
#include "structure/structure.hpp"

namespace treedl::datalog {

struct GroundingStats {
  size_t ground_clauses = 0;
  size_t ground_atoms = 0;
  size_t guard_instantiations = 0;
};

/// Semantics identical to SemiNaiveEvaluate, restricted to quasi-guarded
/// programs (fails with InvalidArgument otherwise).
StatusOr<Structure> GroundedEvaluate(const Program& program,
                                     const Structure& edb,
                                     GroundingStats* stats = nullptr);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_GROUNDER_HPP_
