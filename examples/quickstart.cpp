// Quickstart: the paper's running example through the treedl::Engine
// session API.
//
// One Engine holds the schema of Ex 2.1; the encoding (Ex 2.2), Gaifman
// graph, and tree decomposition are built once, lazily, and amortized across
// every query — the §5.3 linearity argument made concrete. Each query
// returns its own RunStats; CumulativeStats() shows that the session paid
// for exactly one encoding and one decomposition.
#include <iostream>

#include "engine/engine.hpp"
#include "td/td_io.hpp"

int main() {
  using namespace treedl;

  // (R, F) with R = abcdeg and F = {ab->c, c->b, cd->e, de->g, g->e}.
  Schema schema = Schema::PaperExampleSchema();
  std::cout << "Schema (Ex 2.1): " << schema.ToString() << "\n\n";

  // One session: encoding + decomposition are built once and cached.
  Engine engine(schema);
  auto td = engine.Decomposition();
  if (!td.ok()) {
    std::cerr << "decomposition failed: " << td.status() << "\n";
    return 1;
  }
  auto structure = engine.structure();
  std::cout << "Tree decomposition (min-fill, width " << (*td)->Width()
            << "):\n"
            << RenderTree(**td, NamerFor(**structure)) << "\n";

  // §5.2 decision, per attribute — every query after the first is a cache
  // hit on the encoding and decomposition (watch RunStats).
  std::cout << "PRIMALITY decision (Fig. 6 program, one engine session):\n";
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    RunStats run;
    auto prime = engine.IsPrime(a, &run);
    if (!prime.ok()) {
      std::cerr << "solver failed: " << prime.status() << "\n";
      return 1;
    }
    std::cout << "  " << schema.AttributeName(a) << ": "
              << (*prime ? "prime" : "not prime") << "  (rebuilt "
              << run.td_builds << " decompositions, " << run.cache_hits
              << " cache hits)\n";
  }

  // §5.3 enumeration: one linear two-pass run for all attributes, memoized
  // by the session.
  auto primes = engine.AllPrimes();
  if (!primes.ok()) {
    std::cerr << "enumeration failed: " << primes.status() << "\n";
    return 1;
  }
  std::cout << "\nPRIMALITY enumeration (§5.3, one bottom-up + one top-down "
               "pass):\n  primes = {";
  bool first = true;
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    if (!(*primes)[static_cast<size_t>(a)]) continue;
    if (!first) std::cout << ", ";
    first = false;
    std::cout << schema.AttributeName(a);
  }
  std::cout << "}\n";

  const RunStats& total = engine.CumulativeStats();
  std::cout << "\nSession totals: " << total.ToString() << "\n";
  std::cout << "(one encoding + one decomposition served every query above)\n";
  std::cout << "\nExpected from the paper: keys {a,b,d} and {a,c,d}; primes "
               "a, b, c, d.\n";
  return 0;
}
