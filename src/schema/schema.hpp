// Relational schemas (R, F) — §2.1.
//
// R is a set of attributes, F a set of functional dependencies f: Y -> A with
// a single right-hand-side attribute (w.l.o.g., as in the paper). The running
// example of the paper (Ex 2.1) is provided as PaperExampleSchema().
#ifndef TREEDL_SCHEMA_SCHEMA_HPP_
#define TREEDL_SCHEMA_SCHEMA_HPP_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace treedl {

using AttributeId = int;
using FdId = int;

struct FunctionalDependency {
  /// Sorted, duplicate-free left-hand side.
  std::vector<AttributeId> lhs;
  AttributeId rhs = 0;
};

class Schema {
 public:
  Schema() = default;

  /// Interns an attribute name (idempotent).
  AttributeId AddAttribute(const std::string& name);

  /// Adds the FD lhs -> rhs (by attribute id). The lhs is sorted and
  /// deduplicated; rhs may also occur in lhs (trivial but legal).
  StatusOr<FdId> AddFd(std::vector<AttributeId> lhs, AttributeId rhs);

  /// Adds an FD by attribute names, interning them as needed.
  StatusOr<FdId> AddFdNamed(const std::vector<std::string>& lhs,
                            const std::string& rhs);

  int NumAttributes() const { return static_cast<int>(attribute_names_.size()); }
  int NumFds() const { return static_cast<int>(fds_.size()); }
  const std::string& AttributeName(AttributeId a) const {
    return attribute_names_[static_cast<size_t>(a)];
  }
  StatusOr<AttributeId> AttributeByName(const std::string& name) const;
  const FunctionalDependency& Fd(FdId f) const {
    return fds_[static_cast<size_t>(f)];
  }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  /// Renders as "R = {a, b, ...};  F = {a b -> c, ...}".
  std::string ToString() const;

  /// Parses a schema from text. Grammar (whitespace-insensitive):
  ///   attributes: a, b, c, d        — optional explicit attribute list
  ///   a b -> c                      — one FD per line ('%' starts a comment)
  static StatusOr<Schema> Parse(const std::string& text);

  /// Ex 2.1: R = {a, b, c, d, e, g}, F = {ab -> c, c -> b, cd -> e, de -> g,
  /// g -> e}. Keys: {a, b, d} and {a, c, d}; primes: a, b, c, d.
  static Schema PaperExampleSchema();

 private:
  std::vector<std::string> attribute_names_;
  std::unordered_map<std::string, AttributeId> attribute_ids_;
  std::vector<FunctionalDependency> fds_;
};

}  // namespace treedl

#endif  // TREEDL_SCHEMA_SCHEMA_HPP_
