// Stock MSO formulas used throughout the paper.
#ifndef TREEDL_MSO_FORMULAS_HPP_
#define TREEDL_MSO_FORMULAS_HPP_

#include <string>

#include "mso/ast.hpp"

namespace treedl::mso {

/// §5.1's 3-Colorability sentence over τ = {e/2} (graphs stored with both
/// edge directions): ∃R,G,B partition of V with no monochromatic edge.
FormulaPtr ThreeColorabilitySentence();

/// Ex 2.6's primality query φ(x) over τ = {fd, att, lh, rh}: x is prime iff
/// ∃Y closed with x ∉ Y and (Y ∪ {x})⁺ = R. `free_var` is the free individual
/// variable (default "x"). Quantifier depth 4.
FormulaPtr PrimalityFormula(const std::string& free_var = "x");

/// Graph connectivity sentence over τ = {e/2} (symmetric edges): every
/// non-empty edge-closed set contains all vertices.
FormulaPtr ConnectednessSentence();

/// φ(x): x has an outgoing e-edge. Quantifier depth 1 — small enough for the
/// generic Thm 4.5 construction.
FormulaPtr HasNeighborQuery(const std::string& free_var = "x");

/// φ(x): x is isolated (no e-edge in either direction). Quantifier depth 1.
FormulaPtr IsolatedQuery(const std::string& free_var = "x");

/// φ(x): x lies on some e-cycle of length 2 (x → y → x). Quantifier depth 1.
FormulaPtr TwoCycleQuery(const std::string& free_var = "x");

}  // namespace treedl::mso

#endif  // TREEDL_MSO_FORMULAS_HPP_
