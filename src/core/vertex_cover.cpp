#include <algorithm>

#include "common/byte_vec.hpp"
#include "core/extensions.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"

namespace treedl::core {

namespace {

// Membership flags aligned with the node's sorted bag; the value is the
// number of cover/independent vertices committed in the subtree. Covers both
// vertex cover (minimize) and independent set (maximize) — the transitions
// differ only in the local feasibility predicate and the optimization sense.
struct SubsetState {
  ByteVec in_set;

  bool operator==(const SubsetState&) const = default;
  size_t hash() const { return in_set.hash(); }
};

size_t PositionInBag(const std::vector<ElementId>& bag, ElementId e) {
  return static_cast<size_t>(
      std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
}

template <bool kCover>  // true: vertex cover (min), false: independent (max)
class SubsetProblem {
 public:
  using State = SubsetState;
  using Value = size_t;
  using Emit = std::function<void(State, Value)>;

  explicit SubsetProblem(const Graph& graph) : graph_(graph) {}

  // Vertex cover: every bag-internal edge needs a covered endpoint.
  // Independent set: no bag-internal edge inside the set.
  bool Feasible(const std::vector<ElementId>& bag, const State& s) const {
    for (size_t i = 0; i < bag.size(); ++i) {
      for (size_t j = i + 1; j < bag.size(); ++j) {
        if (!graph_.HasEdge(bag[i], bag[j])) continue;
        if constexpr (kCover) {
          if (!s.in_set[i] && !s.in_set[j]) return false;
        } else {
          if (s.in_set[i] && s.in_set[j]) return false;
        }
      }
    }
    return true;
  }

  void Leaf(const std::vector<ElementId>& bag, const Emit& emit) const {
    size_t n = bag.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      State s;
      s.in_set.resize(n);
      size_t size = 0;
      for (size_t i = 0; i < n; ++i) {
        s.in_set[i] = (mask >> i) & 1;
        size += s.in_set[i];
      }
      if (Feasible(bag, s)) emit(std::move(s), size);
    }
  }

  void Introduce(const std::vector<ElementId>& bag, ElementId v,
                 const State& child, const Value& value,
                 const Emit& emit) const {
    size_t pos = PositionInBag(bag, v);
    for (uint8_t chosen : {uint8_t{0}, uint8_t{1}}) {
      State s = child;
      s.in_set.insert(s.in_set.begin() + static_cast<long>(pos), chosen);
      if (Feasible(bag, s)) emit(std::move(s), value + chosen);
    }
  }

  void Forget(const std::vector<ElementId>& bag, ElementId v,
              const State& child, const Value& value, const Emit& emit) const {
    size_t pos = PositionInBag(bag, v);
    State s = child;
    s.in_set.erase(s.in_set.begin() + static_cast<long>(pos));
    emit(std::move(s), value);
  }

  const State& KeyOf(const State& s) const { return s; }

  void Join(const std::vector<ElementId>& /*bag*/, const State& a,
            const Value& va, const State& b, const Value& vb,
            const Emit& emit) const {
    // Bag members are counted in both children; subtract one copy.
    size_t shared = 0;
    for (uint8_t f : a.in_set) shared += f;
    emit(a, va + vb - shared);
    (void)b;
  }

  Value Merge(const Value& a, const Value& b) const {
    return kCover ? std::min(a, b) : std::max(a, b);
  }

 private:
  const Graph& graph_;
};

// Root scans shared by the standalone solvers and the fused-pass finalizers.
size_t FinalizeCover(const Graph& graph,
                     const NormalizedTreeDecomposition& ntd,
                     const DpTable<SubsetState, size_t>& table) {
  size_t best = graph.NumVertices();
  for (const auto& [state, value] : table.at(ntd.root())) {
    best = std::min(best, value);
  }
  return best;
}

size_t FinalizeIndependent(const NormalizedTreeDecomposition& ntd,
                           const DpTable<SubsetState, size_t>& table) {
  size_t best = 0;
  for (const auto& [state, value] : table.at(ntd.root())) {
    best = std::max(best, value);
  }
  return best;
}

}  // namespace

StatusOr<size_t> MinVertexCoverNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats, const DpExec& exec) {
  SubsetProblem<true> problem(graph);
  auto table = RunTreeDpAuto(ntd, &problem, exec, stats);
  if (exec.budget != nullptr && exec.budget->Aborted()) {
    return exec.budget->AbortStatus();
  }
  return FinalizeCover(graph, ntd, table);
}

std::function<StatusOr<size_t>()> AddVertexCoverPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd) {
  const auto* table = multi->Add(SubsetProblem<true>(graph),
                                 /*retain_tables=*/false);
  return [table, &graph, &ntd]() -> StatusOr<size_t> {
    return FinalizeCover(graph, ntd, *table);
  };
}

std::function<StatusOr<size_t>()> AddIndependentSetPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd) {
  const auto* table = multi->Add(SubsetProblem<false>(graph),
                                 /*retain_tables=*/false);
  return [table, &ntd]() -> StatusOr<size_t> {
    return FinalizeIndependent(ntd, *table);
  };
}

StatusOr<size_t> MinVertexCoverTd(const Graph& graph,
                                  const TreeDecomposition& td, DpStats* stats) {
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd,
                          engine::PrepareForGraph(graph, td));
  return MinVertexCoverNormalized(graph, ntd, stats);
}

StatusOr<size_t> MaxIndependentSetNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats, const DpExec& exec) {
  SubsetProblem<false> problem(graph);
  auto table = RunTreeDpAuto(ntd, &problem, exec, stats);
  if (exec.budget != nullptr && exec.budget->Aborted()) {
    return exec.budget->AbortStatus();
  }
  return FinalizeIndependent(ntd, table);
}

StatusOr<size_t> MaxIndependentSetTd(const Graph& graph,
                                     const TreeDecomposition& td,
                                     DpStats* stats) {
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd,
                          engine::PrepareForGraph(graph, td));
  return MaxIndependentSetNormalized(graph, ntd, stats);
}

}  // namespace treedl::core
