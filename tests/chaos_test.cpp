// Chaos harness for the serving stack: scripted fault schedules replayed
// through the full server, asserting the three degradation invariants of the
// robustness layer —
//
//   typed      every injected fault surfaces as a framed ERR E_* reply with
//              the schedule-deterministic "injected fault at <site> (hit N)"
//              message, never a crash or a silent wrong answer;
//   recovered  the very next request on the same tenant succeeds (failed
//              builds retry once, failed writes rewrite, corrupt session
//              files quarantine to <name>.corrupt and rebuild cold);
//   replayable the same schedule produces the byte-identical transcript at
//              every front-end thread count.
//
// The global FaultInjector is process-wide state, so every test installs its
// schedule up front and Disable()s on the way out.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault_injection.hpp"
#include "server/frontend.hpp"
#include "server/server.hpp"
#include "test_util.hpp"

namespace treedl::server {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().Disable();
    if (!session_dir_.empty()) std::filesystem::remove_all(session_dir_);
  }

  /// A fresh per-test session directory (created lazily).
  const std::string& SessionDir() {
    if (session_dir_.empty()) {
      session_dir_ = "chaos_test_" + std::to_string(TestSeed() % 100000);
      std::filesystem::create_directories(session_dir_);
    }
    return session_dir_;
  }

  std::string session_dir_;
};

std::string Reply(Server* server, const std::string& line) {
  std::string out;
  server->HandleLine(line, &out);
  return out;
}

ServerOptions QuietOptions() {
  ServerOptions options;
  options.echo_stats = false;
  return options;
}

/// Replays `script` through a fresh server under `schedule`, using the
/// single-threaded driver (threads == 1) or the concurrent front-end.
std::string Replay(const std::string& script, const std::string& schedule,
                   ServerOptions options, size_t threads) {
  Status installed = FaultInjector::Global().SetSchedule(schedule);
  EXPECT_TRUE(installed.ok()) << installed;
  Server server(options);
  std::istringstream in(script);
  std::ostringstream out;
  if (threads == 1) {
    server.Serve(in, out);
  } else {
    FrontendOptions frontend_options;
    frontend_options.num_threads = threads;
    Frontend frontend(&server, frontend_options);
    frontend.Serve(in, out);
  }
  return out.str();
}

constexpr const char* kLoadLine =
    "LOAD g SIG e/2 FACTS e(a, b). e(b, c). e(c, d). e(d, a).";

TEST_F(ChaosTest, InjectedWriteFaultYieldsEIoThenNextSaveSucceeds) {
  ASSERT_TRUE(
      FaultInjector::Global().SetSchedule("session_io.write@0").ok());
  ServerOptions options = QuietOptions();
  options.session_dir = SessionDir();
  Server server(options);

  ASSERT_EQ(Reply(&server, kLoadLine).rfind("OK LOAD", 0), 0u);
  std::string failed = Reply(&server, "SAVE g");
  EXPECT_EQ(failed.rfind("ERR E_IO", 0), 0u) << failed;
  EXPECT_NE(failed.find("injected fault at session_io.write (hit 0)"),
            std::string::npos)
      << failed;
  // Recovery: the write path is intact, the very next SAVE lands on disk.
  EXPECT_EQ(Reply(&server, "SAVE g").rfind("OK SAVE", 0), 0u);
  EXPECT_EQ(FaultInjector::Global().FaultsInjected(), 1u);
}

TEST_F(ChaosTest, InjectedBuildFaultFailsOneLoadThenRetriesCold) {
  ASSERT_TRUE(
      FaultInjector::Global().SetSchedule("session_pool.build@0").ok());
  Server server(QuietOptions());

  std::string failed = Reply(&server, kLoadLine);
  EXPECT_EQ(failed.rfind("ERR E_EVAL", 0), 0u) << failed;
  EXPECT_NE(failed.find("injected fault at session_pool.build (hit 0)"),
            std::string::npos)
      << failed;
  EXPECT_EQ(server.pool().NumResident(), 0u);
  // Exactly-once retry: the next LOAD rebuilds and the tenant works.
  EXPECT_EQ(Reply(&server, kLoadLine).rfind("OK LOAD", 0), 0u);
  EXPECT_EQ(Reply(&server, "SOLVE g 3COL").rfind("OK SOLVE", 0), 0u);
  EXPECT_EQ(FaultInjector::Global().FaultsInjected(), 1u);
}

TEST_F(ChaosTest, InjectedReadFaultQuarantinesSessionFileAndRebuildsCold) {
  ServerOptions options = QuietOptions();
  options.session_dir = SessionDir();
  uint64_t fingerprint = 0;
  {
    // Seed a healthy session file.
    Server server(options);
    ASSERT_EQ(Reply(&server, kLoadLine).rfind("OK LOAD", 0), 0u);
    ASSERT_EQ(Reply(&server, "SOLVE g VC").rfind("OK SOLVE", 0), 0u);
    ASSERT_EQ(Reply(&server, "SAVE g").rfind("OK SAVE", 0), 0u);
    fingerprint = server.pool().LruFingerprints().back();
  }
  std::string path;
  {
    SessionPoolOptions probe_options;
    probe_options.session_dir = options.session_dir;
    path = SessionPool(probe_options).SessionFilePath(fingerprint);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // The warm start's read fails by injection: the file is quarantined, the
  // session rebuilds cold, and the tenant still answers correctly.
  ASSERT_TRUE(FaultInjector::Global().SetSchedule("session_io.read@0").ok());
  Server degraded(options);
  std::string load = Reply(&degraded, kLoadLine);
  EXPECT_EQ(load.rfind("OK LOAD", 0), 0u) << load;
  EXPECT_NE(load.find("pool=cold"), std::string::npos) << load;
  SessionPoolCounters counters = degraded.pool().counters();
  EXPECT_EQ(counters.warm_loads, 0u);
  EXPECT_EQ(counters.quarantines, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::string solve = Reply(&degraded, "SOLVE g VC");
  EXPECT_NE(solve.find("optimum=2"), std::string::npos) << solve;
  // A later SAVE writes a fresh healthy file at the original path.
  EXPECT_EQ(Reply(&degraded, "SAVE g").rfind("OK SAVE", 0), 0u);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST_F(ChaosTest, DeadlineShedsThenSameTenantAnswers) {
  Server server(QuietOptions());
  ASSERT_EQ(Reply(&server, kLoadLine).rfind("OK LOAD", 0), 0u);
  ASSERT_EQ(Reply(&server, "DEADLINE 1").rfind("OK DEADLINE", 0), 0u);
  EXPECT_EQ(Reply(&server, "SOLVE g VC"),
            "ERR E_DEADLINE deadline of 1 work units exceeded\n");
  ASSERT_EQ(Reply(&server, "DEADLINE OFF").rfind("OK DEADLINE", 0), 0u);
  std::string solve = Reply(&server, "SOLVE g VC");
  EXPECT_NE(solve.find("optimum=2"), std::string::npos) << solve;
}

TEST_F(ChaosTest, FaultScheduleReplaysByteIdenticallyAtEveryThreadCount) {
  // A script that exercises every chaos path at once: an injected SAVE
  // failure, a deadline shed sandwiched between real computes on two
  // sessions, and a final STATS at a quiescent point.
  const std::string script =
      "LOAD g SIG e/2 FACTS e(a, b). e(b, c). e(c, a).\n"
      "LOAD h SIG e/2 FACTS e(x, y). e(y, z).\n"
      "SOLVE g 3COL\n"
      "SAVE g\n"
      "DEADLINE 1\n"
      "SOLVE h VC\n"
      "DEADLINE OFF\n"
      "SOLVE h VC\n"
      "QUERY g path(X, Y) :- e(X, Y).\n"
      "SAVE g\n"
      "STATS\n"
      "QUIT\n";
  const std::string schedule = "session_io.write@0";

  ServerOptions options = QuietOptions();
  options.session_dir = SessionDir();
  std::string baseline = Replay(script, schedule, options, /*threads=*/1);
  // The injected failures are at fixed protocol positions.
  EXPECT_NE(baseline.find("injected fault at session_io.write (hit 0)"),
            std::string::npos)
      << baseline;
  EXPECT_NE(baseline.find("ERR E_DEADLINE"), std::string::npos) << baseline;
  EXPECT_NE(baseline.find("OK SAVE"), std::string::npos) << baseline;

  for (size_t threads : {2u, 4u}) {
    // Each replay starts from the same disk state: drop session files the
    // previous replay's successful SAVE left behind.
    std::filesystem::remove_all(SessionDir());
    std::filesystem::create_directories(SessionDir());
    EXPECT_EQ(Replay(script, schedule, options, threads), baseline)
        << "threads=" << threads;
  }
}

TEST_F(ChaosTest, SeededInjectionIsScheduleDeterministic) {
  // The seeded mode must be a pure function of (seed, site, hit): two runs
  // with the same seed inject the same faults at the same positions.
  const std::string script = std::string(kLoadLine) + "\nSAVE g\nSAVE g\n" +
                             "SOLVE g VC\nSAVE g\nQUIT\n";
  ServerOptions options = QuietOptions();
  options.session_dir = SessionDir();

  auto run_seeded = [&]() {
    FaultInjector::Global().Seed(0x5eed, /*permille=*/500);
    Server server(options);
    std::istringstream in(script);
    std::ostringstream out;
    server.Serve(in, out);
    return out.str();
  };
  std::string first = run_seeded();
  std::filesystem::remove_all(SessionDir());
  std::filesystem::create_directories(SessionDir());
  std::string second = run_seeded();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace treedl::server
