#include <gtest/gtest.h>

#include "structure/signature.hpp"
#include "structure/structure.hpp"
#include "structure/structure_io.hpp"

namespace treedl {
namespace {

TEST(SignatureTest, MakeAndLookup) {
  auto sig = Signature::Make({{"e", 2}, {"color", 1}});
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(sig->size(), 2);
  EXPECT_EQ(sig->PredicateIdOf("e").value(), 0);
  EXPECT_EQ(sig->arity(sig->PredicateIdOf("color").value()), 1);
  EXPECT_FALSE(sig->PredicateIdOf("missing").ok());
}

TEST(SignatureTest, RejectsDuplicatesAndBadArity) {
  Signature sig;
  ASSERT_TRUE(sig.AddPredicate("p", 1).ok());
  EXPECT_EQ(sig.AddPredicate("p", 2).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(sig.AddPredicate("q", -1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sig.AddPredicate("", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SignatureTest, BuiltinSignatures) {
  Signature schema = Signature::SchemaSignature();
  EXPECT_EQ(schema.size(), 4);
  EXPECT_EQ(schema.arity(schema.PredicateIdOf("lh").value()), 2);
  Signature graph = Signature::GraphSignature();
  EXPECT_EQ(graph.size(), 1);
  EXPECT_EQ(graph.arity(0), 2);
}

Structure PaperStructure() {
  // Ex 2.2: the τ-structure of the running-example schema.
  auto parsed = ParseStructure(Signature::SchemaSignature(),
                               "att(a). att(b). att(c). att(d). att(e). att(g).\n"
                               "fd(f1). fd(f2). fd(f3). fd(f4). fd(f5).\n"
                               "lh(a, f1). lh(b, f1). lh(c, f2). lh(c, f3).\n"
                               "lh(d, f3). lh(d, f4). lh(e, f4). lh(g, f5).\n"
                               "rh(c, f1). rh(b, f2). rh(e, f3). rh(g, f4).\n"
                               "rh(e, f5).\n");
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

TEST(StructureTest, PaperExampleCounts) {
  Structure s = PaperStructure();
  EXPECT_EQ(s.NumElements(), 11u);  // 6 attributes + 5 FDs
  PredicateId lh = s.signature().PredicateIdOf("lh").value();
  PredicateId rh = s.signature().PredicateIdOf("rh").value();
  EXPECT_EQ(s.Relation(lh).size(), 8u);
  EXPECT_EQ(s.Relation(rh).size(), 5u);
  EXPECT_EQ(s.NumFacts(), 6u + 5u + 8u + 5u);
}

TEST(StructureTest, FactDeduplicationAndMembership) {
  Structure s(Signature::GraphSignature());
  ElementId a = s.AddElement("a");
  ElementId b = s.AddElement("b");
  PredicateId e = 0;
  ASSERT_TRUE(s.AddFact(e, {a, b}).ok());
  ASSERT_TRUE(s.AddFact(e, {a, b}).ok());  // duplicate ignored
  EXPECT_EQ(s.NumFacts(), 1u);
  EXPECT_TRUE(s.HasFact(e, {a, b}));
  EXPECT_FALSE(s.HasFact(e, {b, a}));
}

TEST(StructureTest, ArityAndRangeChecks) {
  Structure s(Signature::GraphSignature());
  ElementId a = s.AddElement("a");
  EXPECT_EQ(s.AddFact(0, {a}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddFact(0, {a, 99}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddFact(5, {a, a}).code(), StatusCode::kInvalidArgument);
}

TEST(StructureTest, ElementInterningIsIdempotent) {
  Structure s(Signature::GraphSignature());
  EXPECT_EQ(s.AddElement("x"), s.AddElement("x"));
  EXPECT_EQ(s.NumElements(), 1u);
  EXPECT_TRUE(s.HasElementNamed("x"));
  EXPECT_FALSE(s.ElementByName("y").ok());
}

TEST(StructureTest, InducedSubstructureKeepsOnlyInternalFacts) {
  Structure s = PaperStructure();
  // Keep {b, c, f1, f2}: the cycle from Ex 2.2's width argument.
  std::vector<ElementId> keep;
  for (const char* name : {"b", "c", "f1", "f2"}) {
    keep.push_back(s.ElementByName(name).value());
  }
  std::unordered_map<ElementId, ElementId> translation;
  Structure sub = s.InducedSubstructure(keep, &translation);
  EXPECT_EQ(sub.NumElements(), 4u);
  PredicateId lh = sub.signature().PredicateIdOf("lh").value();
  PredicateId rh = sub.signature().PredicateIdOf("rh").value();
  // lh: (b,f1), (c,f2); rh: (c,f1), (b,f2). lh(a,f1) dropped since a is gone.
  EXPECT_EQ(sub.Relation(lh).size(), 2u);
  EXPECT_EQ(sub.Relation(rh).size(), 2u);
  ElementId b_new = translation.at(s.ElementByName("b").value());
  EXPECT_EQ(sub.ElementName(b_new), "b");
}

TEST(StructureTest, EqualityIsOrderInsensitiveOnFacts) {
  Structure s1(Signature::GraphSignature());
  Structure s2(Signature::GraphSignature());
  ElementId a1 = s1.AddElement("a"), b1 = s1.AddElement("b");
  ElementId a2 = s2.AddElement("a"), b2 = s2.AddElement("b");
  ASSERT_TRUE(s1.AddFact(0, {a1, b1}).ok());
  ASSERT_TRUE(s1.AddFact(0, {b1, a1}).ok());
  ASSERT_TRUE(s2.AddFact(0, {b2, a2}).ok());
  ASSERT_TRUE(s2.AddFact(0, {a2, b2}).ok());
  EXPECT_TRUE(s1 == s2);
}

TEST(StructureIoTest, RoundTrip) {
  Structure s = PaperStructure();
  std::string text = FormatStructure(s);
  auto reparsed = ParseStructure(Signature::SchemaSignature(), text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(s == *reparsed);
}

TEST(StructureIoTest, RoundTripIsolatedElement) {
  Structure s(Signature::GraphSignature());
  s.AddElement("lonely");
  std::string text = FormatStructure(s);
  auto reparsed = ParseStructure(Signature::GraphSignature(), text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->NumElements(), 1u);
  EXPECT_TRUE(reparsed->HasElementNamed("lonely"));
}

TEST(StructureIoTest, ParseErrors) {
  Signature sig = Signature::GraphSignature();
  EXPECT_EQ(ParseStructure(sig, "e(a, b)\n").status().code(),
            StatusCode::kParseError);  // missing dot
  EXPECT_EQ(ParseStructure(sig, "e(a.\n").status().code(),
            StatusCode::kParseError);  // unbalanced parens
  EXPECT_EQ(ParseStructure(sig, "unknown(a, b).\n").status().code(),
            StatusCode::kParseError);  // unknown predicate
  EXPECT_EQ(ParseStructure(sig, "e(a).\n").status().code(),
            StatusCode::kParseError);  // arity
}

TEST(StructureIoTest, CommentsAndBlanksIgnored) {
  auto parsed = ParseStructure(Signature::GraphSignature(),
                               "% a comment\n\n  e(a, b). % trailing\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumFacts(), 1u);
}

}  // namespace
}  // namespace treedl
