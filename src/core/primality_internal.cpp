#include "core/primality_internal.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl::core::internal {

namespace {

bool SortedContains(const std::vector<ElementId>& v, ElementId e) {
  return std::binary_search(v.begin(), v.end(), e);
}

std::vector<ElementId> SortedInsert(std::vector<ElementId> v, ElementId e) {
  v.insert(std::lower_bound(v.begin(), v.end(), e), e);
  return v;
}

std::vector<ElementId> SortedRemove(std::vector<ElementId> v, ElementId e) {
  auto it = std::lower_bound(v.begin(), v.end(), e);
  TREEDL_DCHECK(it != v.end() && *it == e);
  v.erase(it);
  return v;
}

// Position of e in the ordered sequence co; -1 if absent.
int CoPosition(const std::vector<ElementId>& co, ElementId e) {
  for (size_t i = 0; i < co.size(); ++i) {
    if (co[i] == e) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

PrimalityContext::PrimalityContext(const Schema& schema,
                                   const SchemaEncoding& encoding)
    : encoding_(encoding) {
  rhs_elem_.reserve(static_cast<size_t>(schema.NumFds()));
  lhs_elems_.reserve(static_cast<size_t>(schema.NumFds()));
  for (FdId f = 0; f < schema.NumFds(); ++f) {
    rhs_elem_.push_back(encoding.AttrElement(schema.Fd(f).rhs));
    std::vector<ElementId> lhs;
    for (AttributeId b : schema.Fd(f).lhs) {
      lhs.push_back(encoding.AttrElement(b));
    }
    std::sort(lhs.begin(), lhs.end());
    lhs_elems_.push_back(std::move(lhs));
  }
}

std::vector<ElementId> PrimalityContext::Outside(
    const std::vector<ElementId>& bag, const std::vector<ElementId>& y) const {
  std::vector<ElementId> out;
  for (ElementId e : bag) {
    if (!IsFd(e)) continue;
    if (SortedContains(y, RhsElem(e))) continue;  // rhs ∈ Y
    bool witnessed = false;
    for (ElementId b : LhsElems(e)) {
      if (SortedContains(bag, b) && !SortedContains(y, b)) {
        witnessed = true;
        break;
      }
    }
    if (witnessed) out.push_back(e);
  }
  return out;  // sorted: bag iteration order is sorted
}

void PrimalityContext::LeafStates(const std::vector<ElementId>& bag,
                                  const EmitState& emit) const {
  std::vector<ElementId> attrs, fds;
  for (ElementId e : bag) {
    (IsAttr(e) ? attrs : fds).push_back(e);
  }
  size_t na = attrs.size();
  TREEDL_CHECK(na <= 10) << "bag too large for leaf enumeration";
  for (uint64_t ymask = 0; ymask < (uint64_t{1} << na); ++ymask) {
    std::vector<ElementId> y, rest;
    for (size_t i = 0; i < na; ++i) {
      ((ymask >> i) & 1 ? y : rest).push_back(attrs[i]);
    }
    // All derivation orders of the non-Y attributes.
    std::sort(rest.begin(), rest.end());
    std::vector<ElementId> co = rest;
    do {
      // Candidate used-FDs: bag FDs whose rhs lies in Co.
      std::vector<ElementId> candidates;
      for (ElementId f : fds) {
        if (CoPosition(co, RhsElem(f)) >= 0) candidates.push_back(f);
      }
      for (uint64_t fcmask = 0; fcmask < (uint64_t{1} << candidates.size());
           ++fcmask) {
        std::vector<ElementId> fc, dc;
        bool ok = true;
        for (size_t j = 0; j < candidates.size() && ok; ++j) {
          if (!((fcmask >> j) & 1)) continue;
          ElementId f = candidates[j];
          ElementId rhs = RhsElem(f);
          // Pairwise distinct rhs (ΔC is a disjoint union of rhs's).
          if (SortedContains(dc, rhs)) {
            ok = false;
            break;
          }
          // consistent(FC, Co): lhs attributes in Co precede the rhs.
          int rhs_pos = CoPosition(co, rhs);
          for (ElementId b : LhsElems(f)) {
            int b_pos = CoPosition(co, b);
            if (b_pos >= 0 && b_pos >= rhs_pos) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
          fc = SortedInsert(std::move(fc), f);
          dc = SortedInsert(std::move(dc), rhs);
        }
        if (!ok) continue;
        PrimState s;
        s.y = y;
        s.co = co;
        s.fy = Outside(bag, y);
        s.dc = std::move(dc);
        s.fc = std::move(fc);
        emit(std::move(s));
      }
    } while (std::next_permutation(co.begin(), co.end()));
  }
}

void PrimalityContext::IntroduceAttr(const std::vector<ElementId>& bag,
                                     ElementId b, const PrimState& s,
                                     const EmitState& emit) const {
  TREEDL_DCHECK(IsAttr(b));
  // Rule 1: b joins Y.
  {
    PrimState next = s;
    next.y = SortedInsert(next.y, b);
    emit(std::move(next));
  }
  // Rule 2: b is inserted at every position of Co; the used FDs must stay
  // consistent with the extended order, and the outside-witnesses are
  // refreshed (b ∉ Y may witness additional FDs).
  for (size_t pos = 0; pos <= s.co.size(); ++pos) {
    PrimState next = s;
    next.co.insert(next.co.begin() + static_cast<long>(pos), b);
    bool ok = true;
    for (ElementId f : next.fc) {
      if (!SortedContains(LhsElems(f), b)) continue;
      int rhs_pos = CoPosition(next.co, RhsElem(f));
      TREEDL_DCHECK(rhs_pos >= 0);
      if (static_cast<int>(pos) >= rhs_pos) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    std::vector<ElementId> outside = Outside(bag, next.y);
    std::vector<ElementId> fy;
    std::set_union(next.fy.begin(), next.fy.end(), outside.begin(),
                   outside.end(), std::back_inserter(fy));
    next.fy = std::move(fy);
    emit(std::move(next));
  }
}

void PrimalityContext::IntroduceFd(const std::vector<ElementId>& bag,
                                   ElementId f, const PrimState& s,
                                   const EmitState& emit) const {
  TREEDL_DCHECK(IsFd(f));
  ElementId rhs = RhsElem(f);
  TREEDL_DCHECK(SortedContains(bag, rhs))
      << "rhs-closure invariant violated at FD introduction";
  if (SortedContains(s.y, rhs)) {
    // Rule 1: rhs ∈ Y — nothing to track.
    emit(s);
    return;
  }
  int rhs_pos = CoPosition(s.co, rhs);
  TREEDL_DCHECK(rhs_pos >= 0);
  // Is f locally witnessed not to contradict closedness (some bag lhs-attr
  // outside Y)?
  bool witnessed = false;
  for (ElementId b : LhsElems(f)) {
    if (SortedContains(bag, b) && !SortedContains(s.y, b)) {
      witnessed = true;
      break;
    }
  }
  // Rule 3: f is not used in the derivation.
  {
    PrimState next = s;
    if (witnessed) next.fy = SortedInsert(next.fy, f);
    emit(std::move(next));
  }
  // Rule 2: f derives rhs — requires a fresh ΔC slot and order consistency.
  if (!SortedContains(s.dc, rhs)) {
    bool consistent = true;
    for (ElementId b : LhsElems(f)) {
      int b_pos = CoPosition(s.co, b);
      if (b_pos >= 0 && b_pos >= rhs_pos) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      PrimState next = s;
      next.fc = SortedInsert(next.fc, f);
      next.dc = SortedInsert(next.dc, rhs);
      if (witnessed) next.fy = SortedInsert(next.fy, f);
      emit(std::move(next));
    }
  }
}

void PrimalityContext::ForgetAttr(const std::vector<ElementId>& /*bag*/,
                                  ElementId b, const PrimState& s,
                                  const EmitState& emit) const {
  TREEDL_DCHECK(IsAttr(b));
  if (SortedContains(s.y, b)) {
    PrimState next = s;
    next.y = SortedRemove(next.y, b);
    emit(std::move(next));
    return;
  }
  // b ∈ Co: its derivation must have been established (b ∈ ΔC).
  if (!SortedContains(s.dc, b)) return;
  PrimState next = s;
  next.dc = SortedRemove(next.dc, b);
  int pos = CoPosition(next.co, b);
  TREEDL_DCHECK(pos >= 0);
  next.co.erase(next.co.begin() + pos);
  emit(std::move(next));
}

void PrimalityContext::ForgetFd(const std::vector<ElementId>& /*bag*/,
                                ElementId f, const PrimState& s,
                                const EmitState& emit) const {
  TREEDL_DCHECK(IsFd(f));
  ElementId rhs = RhsElem(f);
  if (SortedContains(s.y, rhs)) {
    TREEDL_DCHECK(!SortedContains(s.fy, f));
    TREEDL_DCHECK(!SortedContains(s.fc, f));
    emit(s);
    return;
  }
  // rhs ∈ Co: f must have been witnessed (f ∈ FY) — otherwise it would
  // contradict the closedness of Y.
  if (!SortedContains(s.fy, f)) return;
  PrimState next = s;
  next.fy = SortedRemove(next.fy, f);
  if (SortedContains(next.fc, f)) next.fc = SortedRemove(next.fc, f);
  emit(std::move(next));
}

void PrimalityContext::Join(const PrimState& a, const PrimState& b,
                            const EmitState& emit) const {
  TREEDL_DCHECK(a.y == b.y && a.co == b.co && a.fc == b.fc);
  // unique(ΔC1, ΔC2, FC): an attribute derived in both subtrees must owe its
  // derivation to a shared (bag) FD.
  std::vector<ElementId> shared;
  std::set_intersection(a.dc.begin(), a.dc.end(), b.dc.begin(), b.dc.end(),
                        std::back_inserter(shared));
  std::vector<ElementId> fc_rhs;
  for (ElementId f : a.fc) fc_rhs.push_back(RhsElem(f));
  std::sort(fc_rhs.begin(), fc_rhs.end());
  if (shared != fc_rhs) return;
  PrimState next;
  next.y = a.y;
  next.co = a.co;
  next.fc = a.fc;
  std::set_union(a.fy.begin(), a.fy.end(), b.fy.begin(), b.fy.end(),
                 std::back_inserter(next.fy));
  std::set_union(a.dc.begin(), a.dc.end(), b.dc.begin(), b.dc.end(),
                 std::back_inserter(next.dc));
  emit(std::move(next));
}

bool PrimalityContext::Accepts(const std::vector<ElementId>& bag,
                               const PrimState& s, ElementId query_attr) const {
  if (SortedContains(s.y, query_attr)) return false;
  if (CoPosition(s.co, query_attr) < 0) return false;  // not even in the bag
  // FY must contain *every* bag FD with rhs outside Y.
  std::vector<ElementId> required;
  for (ElementId e : bag) {
    if (IsFd(e) && !SortedContains(s.y, RhsElem(e))) required.push_back(e);
  }
  if (s.fy != required) return false;
  // ΔC = Co \ {query_attr}.
  std::vector<ElementId> co_sorted = s.co;
  std::sort(co_sorted.begin(), co_sorted.end());
  co_sorted = SortedRemove(std::move(co_sorted), query_attr);
  return s.dc == co_sorted;
}

TreeDecomposition CloseBagsForRhs(const TreeDecomposition& td,
                                  const SchemaEncoding& encoding,
                                  const PrimalityContext& context) {
  TreeDecomposition out;
  std::unordered_map<TdNodeId, TdNodeId> translate;
  for (TdNodeId id : td.PreOrder()) {
    std::vector<ElementId> bag = td.Bag(id);
    std::vector<ElementId> extra;
    for (ElementId e : bag) {
      if (encoding.IsFdElement(e)) extra.push_back(context.RhsElem(e));
    }
    bag.insert(bag.end(), extra.begin(), extra.end());
    TdNodeId parent = td.node(id).parent;
    TdNodeId new_parent = parent == kNoTdNode ? kNoTdNode : translate.at(parent);
    translate[id] = out.AddNode(std::move(bag), new_parent);
  }
  return out;
}

NormalizeOptions PrimalityNormalizeOptions(const SchemaEncoding& encoding,
                                           bool for_enumeration) {
  NormalizeOptions options;
  options.ensure_leaf_coverage = for_enumeration;
  options.copy_above_branches = for_enumeration;
  int num_attributes = encoding.num_attributes;
  options.forget_priority = [num_attributes](ElementId e) {
    // FDs (ids >= num_attributes) are forgotten first / introduced last.
    return e >= static_cast<ElementId>(num_attributes) ? 1 : 0;
  };
  return options;
}

}  // namespace treedl::core::internal
