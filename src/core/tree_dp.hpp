// Generic dynamic programming over modified-normalized tree decompositions.
//
// This captures the execution model of the paper's §5 programs: a succinct
// (non-monadic) datalog program whose solve(...) facts are computed by a
// bottom-up traversal, materializing only *reachable* states (the paper's
// optimization (2), "lazy grounding"). Problems plug in transition hooks:
//
//   struct Problem {
//     using State = ...;   // provides hash() and operator==
//     using Value = ...;   // e.g. std::monostate (decision), uint64_t (count)
//     void Leaf(bag, emit);
//     void Introduce(bag, element, state, value, emit);
//     void Forget(bag, element, state, value, emit);
//     JoinKey KeyOf(state);                     // JoinKey provides hash()/==
//     void Join(bag, s1, v1, s2, v2, emit);     // called per key-equal pair
//     Value Merge(v1, v2);                      // same state reached twice
//   };
//
// `emit(state, value)` may be called any number of times per transition.
//
// Two drivers share the per-node transition logic:
//   RunTreeDp         — sequential post-order traversal;
//   RunTreeDpSharded  — bag-sharded parallel traversal: independent subtree
//                       shards (td/shard.hpp) execute concurrently on a
//                       ThreadPool, a shard becoming runnable when all of its
//                       child shards have completed. Problem hooks must be
//                       const and stateless (all in-tree problems are); the
//                       resulting table is bit-identical to the sequential
//                       one, because every node still sees fully-built child
//                       tables and processes them in the same order.
#ifndef TREEDL_CORE_TREE_DP_HPP_
#define TREEDL_CORE_TREE_DP_HPP_

#include <atomic>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"

namespace treedl::core {

template <typename T>
struct MemberHash {
  size_t operator()(const T& t) const { return t.hash(); }
};

template <typename State, typename Value>
using StateMap = std::unordered_map<State, Value, MemberHash<State>>;

template <typename State, typename Value>
struct DpTable {
  /// Indexed by normalized-TD node id.
  std::vector<StateMap<State, Value>> nodes;

  const StateMap<State, Value>& at(TdNodeId id) const {
    return nodes[static_cast<size_t>(id)];
  }
};

struct DpStats {
  size_t total_states = 0;
  size_t max_states_per_node = 0;
  /// Shard tasks executed (0 when the traversal ran sequentially).
  size_t shards = 0;
  /// Wall-clock per shard task, indexed by shard id (parallel runs only).
  std::vector<double> shard_millis;
};

/// Execution context for the parallel driver. Default-constructed (or with
/// either pointer null, or a single shard) every driver below degrades to the
/// sequential traversal.
struct DpExec {
  const BagSharding* sharding = nullptr;
  ThreadPool* pool = nullptr;

  bool Parallel() const {
    return sharding != nullptr && pool != nullptr && sharding->NumShards() > 1;
  }
};

namespace internal {

/// Computes one node's state map from its children's completed maps — the
/// single source of the transition semantics for both drivers.
template <typename Problem>
void DpProcessNode(const NormalizedTreeDecomposition& ntd, TdNodeId id,
                   Problem* problem,
                   DpTable<typename Problem::State,
                           typename Problem::Value>* table) {
  using State = typename Problem::State;
  using Value = typename Problem::Value;
  const NormNode& node = ntd.node(id);
  auto& states = table->nodes[static_cast<size_t>(id)];
  auto emit = [&](State state, Value value) {
    auto [it, inserted] = states.emplace(std::move(state), value);
    if (!inserted) it->second = problem->Merge(it->second, value);
  };
  switch (node.kind) {
    case NormNodeKind::kLeaf:
      problem->Leaf(node.bag, emit);
      break;
    case NormNodeKind::kIntroduce: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) {
        problem->Introduce(node.bag, node.element, state, value, emit);
      }
      break;
    }
    case NormNodeKind::kForget: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) {
        problem->Forget(node.bag, node.element, state, value, emit);
      }
      break;
    }
    case NormNodeKind::kCopy: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) emit(state, value);
      break;
    }
    case NormNodeKind::kBranch: {
      const auto& left = table->nodes[static_cast<size_t>(node.children[0])];
      const auto& right = table->nodes[static_cast<size_t>(node.children[1])];
      // Bucket the right child's states by join key, then pair.
      using JoinKey =
          std::decay_t<decltype(problem->KeyOf(left.begin()->first))>;
      std::unordered_map<JoinKey, std::vector<const State*>,
                         MemberHash<JoinKey>>
          buckets;
      for (const auto& [state, value] : right) {
        buckets[problem->KeyOf(state)].push_back(&state);
      }
      for (const auto& [state, value] : left) {
        auto it = buckets.find(problem->KeyOf(state));
        if (it == buckets.end()) continue;
        for (const State* rstate : it->second) {
          problem->Join(node.bag, state, value, *rstate, right.at(*rstate),
                        emit);
        }
      }
      break;
    }
  }
}

}  // namespace internal

/// Runs the bottom-up pass of `problem` over `ntd` sequentially and returns
/// the full table. The table at the root characterizes the whole structure.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDp(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    DpStats* stats = nullptr) {
  DpTable<typename Problem::State, typename Problem::Value> table;
  table.nodes.resize(ntd.NumNodes());
  for (TdNodeId id : ntd.PostOrder()) {
    internal::DpProcessNode(ntd, id, problem, &table);
    if (stats != nullptr) {
      size_t size = table.nodes[static_cast<size_t>(id)].size();
      stats->total_states += size;
      stats->max_states_per_node = std::max(stats->max_states_per_node, size);
    }
  }
  return table;
}

/// Parallel driver: executes each shard's nodes in post-order as one pool
/// task; a shard is submitted once all of its child shards are done, and the
/// calling thread helps drain the pool while waiting. Requires
/// exec.Parallel(); the problem's hooks are invoked concurrently from
/// multiple threads and must be const/stateless.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDpSharded(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    const DpExec& exec, DpStats* stats = nullptr) {
  TREEDL_CHECK(exec.Parallel());
  const BagSharding& sharding = *exec.sharding;
  size_t num_shards = sharding.NumShards();

  DpTable<typename Problem::State, typename Problem::Value> table;
  table.nodes.resize(ntd.NumNodes());

  // Per-shard bookkeeping: dependency counters, isolated stats slots (merged
  // at the end — no contention), and the completion group.
  std::vector<std::atomic<size_t>> pending(num_shards);
  std::vector<DpStats> shard_stats(num_shards);
  std::vector<double> shard_millis(num_shards, 0.0);
  WaitGroup done;
  done.Add(num_shards);

  // The task runner; owns no state, everything lives on this frame, which
  // outlives all tasks because Wait() returns only after the last Done().
  std::function<void(size_t)> run_shard = [&](size_t s) {
    Timer timer;
    DpStats& local = shard_stats[s];
    for (TdNodeId id : sharding.shards[s].nodes) {
      internal::DpProcessNode(ntd, id, problem, &table);
      size_t size = table.nodes[static_cast<size_t>(id)].size();
      local.total_states += size;
      local.max_states_per_node = std::max(local.max_states_per_node, size);
    }
    shard_millis[s] = timer.ElapsedMillis();
    int parent = sharding.shards[s].parent;
    if (parent >= 0 &&
        pending[static_cast<size_t>(parent)].fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      exec.pool->Submit([&run_shard, parent] {
        run_shard(static_cast<size_t>(parent));
      });
    }
    done.Done();
  };

  for (size_t s = 0; s < num_shards; ++s) {
    pending[s].store(sharding.shards[s].children.size(),
                     std::memory_order_relaxed);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (sharding.shards[s].children.empty()) {
      exec.pool->Submit([&run_shard, s] { run_shard(s); });
    }
  }
  // Help drain the pool instead of idling (also makes progress on a
  // single-worker pool shared by several concurrent queries).
  while (exec.pool->RunOneTask()) {
  }
  done.Wait();

  if (stats != nullptr) {
    for (const DpStats& local : shard_stats) {
      stats->total_states += local.total_states;
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, local.max_states_per_node);
    }
    stats->shards += num_shards;
    stats->shard_millis.insert(stats->shard_millis.end(),
                               shard_millis.begin(), shard_millis.end());
  }
  return table;
}

/// Dispatches to the sharded driver when `exec` carries a usable sharding and
/// pool, else to the sequential one.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDpAuto(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    const DpExec& exec, DpStats* stats = nullptr) {
  if (exec.Parallel()) return RunTreeDpSharded(ntd, problem, exec, stats);
  return RunTreeDp(ntd, problem, stats);
}

}  // namespace treedl::core

#endif  // TREEDL_CORE_TREE_DP_HPP_
