#include "schema/schema.hpp"

#include <algorithm>

#include "common/string_util.hpp"

namespace treedl {

AttributeId Schema::AddAttribute(const std::string& name) {
  auto it = attribute_ids_.find(name);
  if (it != attribute_ids_.end()) return it->second;
  AttributeId id = static_cast<AttributeId>(attribute_names_.size());
  attribute_names_.push_back(name);
  attribute_ids_.emplace(name, id);
  return id;
}

StatusOr<FdId> Schema::AddFd(std::vector<AttributeId> lhs, AttributeId rhs) {
  for (AttributeId a : lhs) {
    if (a < 0 || a >= NumAttributes()) {
      return Status::InvalidArgument("FD lhs attribute id out of range");
    }
  }
  if (rhs < 0 || rhs >= NumAttributes()) {
    return Status::InvalidArgument("FD rhs attribute id out of range");
  }
  std::sort(lhs.begin(), lhs.end());
  lhs.erase(std::unique(lhs.begin(), lhs.end()), lhs.end());
  FdId id = static_cast<FdId>(fds_.size());
  fds_.push_back(FunctionalDependency{std::move(lhs), rhs});
  return id;
}

StatusOr<FdId> Schema::AddFdNamed(const std::vector<std::string>& lhs,
                                  const std::string& rhs) {
  std::vector<AttributeId> lhs_ids;
  lhs_ids.reserve(lhs.size());
  for (const std::string& name : lhs) lhs_ids.push_back(AddAttribute(name));
  return AddFd(std::move(lhs_ids), AddAttribute(rhs));
}

StatusOr<AttributeId> Schema::AttributeByName(const std::string& name) const {
  auto it = attribute_ids_.find(name);
  if (it == attribute_ids_.end()) {
    return Status::NotFound("unknown attribute: " + name);
  }
  return it->second;
}

std::string Schema::ToString() const {
  std::string out = "R = {";
  for (AttributeId a = 0; a < NumAttributes(); ++a) {
    if (a > 0) out += ", ";
    out += AttributeName(a);
  }
  out += "};  F = {";
  for (FdId f = 0; f < NumFds(); ++f) {
    if (f > 0) out += ", ";
    const auto& fd = Fd(f);
    for (size_t i = 0; i < fd.lhs.size(); ++i) {
      if (i > 0) out += " ";
      out += AttributeName(fd.lhs[i]);
    }
    out += " -> " + AttributeName(fd.rhs);
  }
  out += "}";
  return out;
}

StatusOr<Schema> Schema::Parse(const std::string& text) {
  Schema schema;
  int line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string_view line = Trim(raw_line);
    size_t comment = line.find('%');
    if (comment != std::string_view::npos) line = Trim(line.substr(0, comment));
    if (line.empty()) continue;
    if (StartsWith(line, "attributes:")) {
      for (const std::string& piece : Split(line.substr(11), ',')) {
        std::string_view name = Trim(piece);
        if (name.empty()) continue;
        if (!IsIdentifier(name)) {
          return Status::ParseError("line " + std::to_string(line_no) +
                                    ": bad attribute name '" +
                                    std::string(name) + "'");
        }
        schema.AddAttribute(std::string(name));
      }
      continue;
    }
    size_t arrow = line.find("->");
    if (arrow == std::string_view::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 'lhs -> rhs'");
    }
    std::vector<std::string> lhs;
    for (const std::string& piece : Split(std::string(line.substr(0, arrow)), ' ')) {
      std::string_view name = Trim(piece);
      if (name.empty()) continue;
      if (!IsIdentifier(name)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad lhs attribute '" + std::string(name) +
                                  "'");
      }
      lhs.emplace_back(name);
    }
    std::string_view rhs = Trim(line.substr(arrow + 2));
    if (lhs.empty() || !IsIdentifier(rhs)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": malformed FD");
    }
    TREEDL_ASSIGN_OR_RETURN([[maybe_unused]] FdId id,
                            schema.AddFdNamed(lhs, std::string(rhs)));
  }
  return schema;
}

Schema Schema::PaperExampleSchema() {
  auto parsed = Parse(
      "attributes: a, b, c, d, e, g\n"
      "a b -> c\n"
      "c -> b\n"
      "c d -> e\n"
      "d e -> g\n"
      "g -> e\n");
  return std::move(parsed).value();
}

}  // namespace treedl
