// Status / StatusOr: error handling without exceptions on core paths.
//
// Modeled on the Arrow/RocksDB idiom: fallible operations return a Status (or
// a StatusOr<T> when they produce a value). Callers must check `ok()` before
// using the value. Statuses carry a code and a human-readable message.
#ifndef TREEDL_COMMON_STATUS_HPP_
#define TREEDL_COMMON_STATUS_HPP_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace treedl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // A configured work/memory budget was exhausted (used by the MSO evaluator
  // to emulate MONA-style out-of-memory failures; see DESIGN.md).
  kResourceExhausted,
  // Input text could not be parsed.
  kParseError,
  // A cooperative deadline (WorkBudget deadline units) expired before the
  // computation finished.
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result. Copyable and cheap when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Never both.
template <typename T>
class StatusOr {
 public:
  /// Implicit-from-value so `return value;` works in functions returning
  /// StatusOr<T>.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit-from-status so `return Status::...;` works. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller (function must return Status or StatusOr).
#define TREEDL_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::treedl::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Evaluates a StatusOr expression, propagating errors; on success assigns the
// value to `lhs`. `lhs` may be a declaration, e.g.
//   TREEDL_ASSIGN_OR_RETURN(auto td, BuildDecomposition(g));
#define TREEDL_ASSIGN_OR_RETURN(lhs, expr)                    \
  TREEDL_ASSIGN_OR_RETURN_IMPL_(                              \
      TREEDL_STATUS_CONCAT_(_statusor, __LINE__), lhs, expr)
#define TREEDL_STATUS_CONCAT_INNER_(a, b) a##b
#define TREEDL_STATUS_CONCAT_(a, b) TREEDL_STATUS_CONCAT_INNER_(a, b)
#define TREEDL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace treedl

#endif  // TREEDL_COMMON_STATUS_HPP_
