// treedl::Engine — the session API of the library.
//
// The paper's headline result (§5.3) is that *one* tree decomposition of the
// encoded input supports many queries in linear time each. The Engine makes
// that concrete: constructed from a Schema or a τ-structure plus
// EngineOptions, it lazily computes and caches the schema encoding, Gaifman
// graph, tree decomposition, rhs-closed decomposition, normalized forms, the
// τ_td structure, the bag sharding, and compiled Thm 4.5 MSO programs, then
// serves batched queries through one surface:
//
//   Engine engine(Schema::PaperExampleSchema());
//   engine.IsPrime(a);                       // §5.2 decision
//   engine.AllPrimes();                      // §5.3 enumeration (memoized)
//   engine.EvaluateMso(sentence);            // Thm 4.5 route or direct
//   engine.EvaluateDatalog(program);         // naive/seminaive/grounded
//   engine.Solve(Engine::Problem::kThreeColor);  // §5.1 and friends
//   engine.SolveAll();                       // all five problems, ONE traversal
//   engine.SaveSession("warm.tdls");         // persist the cached artifacts
//   engine.LoadSession("warm.tdls");         // ... and restore them on restart
//
// Concurrency: one Engine may be shared by any number of threads. The lazy
// caches are guarded by a session mutex, so N concurrent first queries still
// trigger exactly one encoding/decomposition/normalization build; the heavy
// per-query work (tree DPs, datalog fixpoints, direct MSO evaluation) runs
// outside the lock against the immutable cached artifacts. With
// EngineOptions::num_threads > 1 the per-query engines themselves are
// parallel on one shared work-stealing pool: the Solve/SolveAll tree DP runs
// bag-sharded (core::RunTreeDpSharded), the AllPrimes enumeration runs both
// of its passes shard-scheduled on the same pool (bottom-up, then the
// inverted top-down schedule), and the semi-naive datalog fixpoint evaluates
// each round's rules (and wide delta batches) as pool tasks with a
// deterministic merge — every answer is bit-identical to num_threads = 1.
// Pointers returned by the artifact accessors stay valid for the Engine's
// lifetime; moving an Engine while another thread uses it is undefined.
//
// Every query reports a RunStats (build/cache counters, DP and fixpoint
// work, shard counts/timings, optional per-pass timings); CumulativeStats()
// aggregates the session. The deprecated free functions
// (core::IsPrimeViaTd(schema, a), ...) forward into a one-shot Engine, so
// they pay encoding + decomposition on every call — the quadratic pattern
// §5.3 argues against.
#ifndef TREEDL_ENGINE_ENGINE_HPP_
#define TREEDL_ENGINE_ENGINE_HPP_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/primality_internal.hpp"
#include "datalog/ast.hpp"
#include "datalog/tau_td.hpp"
#include "engine/options.hpp"
#include "engine/run_stats.hpp"
#include "graph/graph.hpp"
#include "mso/ast.hpp"
#include "mso2dl/mso_to_datalog.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "structure/structure.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

class Engine {
 public:
  /// Graph problems served by Solve() on the session's Gaifman graph (for a
  /// {e/2} session built with FromGraph, that *is* the input graph).
  enum class Problem {
    kThreeColor,       // §5.1 decision (+ witness when extract_witness)
    kThreeColorCount,  // counting-semiring extension
    kVertexCover,      // minimum vertex cover size
    kIndependentSet,   // maximum independent set size
    kDominatingSet,    // minimum dominating set size
  };

  struct SolveResult {
    /// kThreeColor: whether 3-colorable. Optimization problems: always true.
    bool feasible = false;
    /// kVertexCover / kIndependentSet / kDominatingSet: the optimal size.
    size_t optimum = 0;
    /// kThreeColorCount: number of proper 3-colorings.
    uint64_t count = 0;
    /// kThreeColor: a proper coloring when feasible and extract_witness.
    std::optional<std::vector<int>> witness;
  };

  /// Batched answers of every Problem, produced by SolveAll's single fused
  /// traversal.
  struct SolveAllResult {
    bool three_colorable = false;
    /// A proper coloring when three_colorable and extract_witness.
    std::optional<std::vector<int>> coloring;
    uint64_t three_colorings = 0;
    size_t min_vertex_cover = 0;
    size_t max_independent_set = 0;
    size_t min_dominating_set = 0;

    /// The per-problem view, field-for-field what Solve(problem) returns.
    SolveResult Result(Problem problem) const;
  };

  /// Schema session: primality queries (plus datalog/MSO over the encoding).
  explicit Engine(Schema schema, EngineOptions options = {});
  /// Structure session: MSO/datalog/graph queries over an arbitrary
  /// τ-structure.
  explicit Engine(Structure structure, EngineOptions options = {});
  /// Graph session: stores the {e/2} encoding of `graph`.
  static Engine FromGraph(const Graph& graph, EngineOptions options = {});

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Primality (schema sessions only) -----------------------------------

  /// §5.2 decision: is attribute `a` prime? Reuses the cached encoding and
  /// decomposition; re-roots and normalizes per query (linear). After
  /// AllPrimes() has run, answers O(1) from the memoized enumeration.
  StatusOr<bool> IsPrime(AttributeId a, RunStats* stats = nullptr);

  /// §5.3 enumeration: all prime attributes in one two-pass run. The result
  /// is memoized; subsequent calls are cache hits. A tripped `budget`
  /// (per-call, overriding EngineOptions::work_budget) aborts the run with
  /// DeadlineExceeded/ResourceExhausted and leaves the memo unwritten, so
  /// the next call recomputes cleanly.
  StatusOr<std::vector<bool>> AllPrimes(RunStats* stats = nullptr,
                                        WorkBudget* budget = nullptr);

  // --- MSO -----------------------------------------------------------------

  /// Evaluates an MSO sentence on the session structure. Route per
  /// EngineOptions::mso_strategy: compile through Thm 4.5 into the selected
  /// datalog backend over the cached τ_td structure, or evaluate directly.
  /// Compiled programs are cached per formula — repeated evaluation of the
  /// same sentence skips the Thm 4.5 construction.
  StatusOr<bool> EvaluateMso(const mso::FormulaPtr& sentence,
                             RunStats* stats = nullptr,
                             WorkBudget* budget = nullptr);

  /// Unary MSO query φ(x): membership vector over the session structure's
  /// elements.
  StatusOr<std::vector<bool>> EvaluateMsoUnary(const mso::FormulaPtr& phi,
                                               const std::string& free_var,
                                               RunStats* stats = nullptr,
                                               WorkBudget* budget = nullptr);

  // --- Datalog -------------------------------------------------------------

  /// Evaluates `program` with the session structure as EDB, via the selected
  /// backend (EngineOptions::backend, overridable per call).
  StatusOr<Structure> EvaluateDatalog(const datalog::Program& program,
                                      RunStats* stats = nullptr,
                                      WorkBudget* budget = nullptr);
  StatusOr<Structure> EvaluateDatalog(const datalog::Program& program,
                                      DatalogBackend backend,
                                      RunStats* stats = nullptr,
                                      WorkBudget* budget = nullptr);

  // --- Graph DPs -----------------------------------------------------------

  /// A tripped `budget` (per-call, overriding EngineOptions::work_budget)
  /// aborts the traversal and returns its DeadlineExceeded /
  /// ResourceExhausted status; no partial result escapes and the session's
  /// cached artifacts are untouched, so the next query answers normally.
  StatusOr<SolveResult> Solve(Problem problem, RunStats* stats = nullptr,
                              WorkBudget* budget = nullptr);

  /// Evaluates all five Problems in ONE bottom-up traversal of the cached
  /// normal form (a core::MultiDp fusing the five state tables; with
  /// num_threads > 1 the single traversal is bag-sharded exactly like
  /// Solve's). Five answers cost one walk: RunStats reports dp_traversals ==
  /// 1, dp_passes == 5, and a parallel session's dp_shards equals one
  /// traversal's shard count, not five.
  StatusOr<SolveAllResult> SolveAll(RunStats* stats = nullptr,
                                    WorkBudget* budget = nullptr);

  // --- Anytime decomposition improvement -----------------------------------

  /// Outcome of one ImproveDecomposition call. Costs are the modeled cost of
  /// the normal form the DPs traverse (td::NormalizedDpCost).
  struct ImproveResult {
    int width_before = 0;
    int width_after = 0;
    uint64_t cost_before = 0;
    uint64_t cost_after = 0;
    /// Local-search rounds run (== budget units consumed when budgeted).
    size_t rounds = 0;
    /// True when the session decomposition was replaced: width dropped, or
    /// width held and modeled cost strictly dropped.
    bool improved = false;
  };

  /// Anytime improvement of the cached session decomposition: width-reduce
  /// it, then run bounded local search over elimination orders (td/improve.hpp
  /// ImproveTd, seeded by the session fingerprint so the result is a pure
  /// function of the session input and the budget). On strict improvement the
  /// session decomposition is swapped and every artifact derived from the old
  /// one (closed/normalized forms, shardings, τ_td, compiled MSO programs) is
  /// invalidated for lazy rebuild; the memoized primes survive (answers are
  /// decomposition-independent). `budget` bounds the search at one unit per
  /// round and exhaustion is a graceful stop, never an error; it deliberately
  /// does NOT fall back to EngineOptions::work_budget — a tripped session
  /// budget is sticky and would poison every query after the reopt. With no
  /// budget the search caps at a fixed round count.
  ///
  /// EXCEPTION to the immutable-artifact contract above the Ensure* methods:
  /// this is the one operation that replaces cached artifacts, so it requires
  /// external quiescence — no query may run concurrently or hold artifact
  /// pointers across the call. The serving layer guarantees this by treating
  /// REOPT as a non-compute request: the frontend drains every in-flight
  /// query, then runs this inline on the dispatch thread.
  StatusOr<ImproveResult> ImproveDecomposition(RunStats* stats = nullptr,
                                               WorkBudget* budget = nullptr);

  // --- Persistent sessions -------------------------------------------------

  /// Writes every currently cached decomposition artifact (raw/closed
  /// decompositions, normal forms, τ_td, schema encoding, memoized primes)
  /// to `path` in the versioned format of docs/SESSION_FORMAT.md. Builds
  /// nothing: warm the cache with the queries you intend to serve, then
  /// save. The file is stamped with a fingerprint of the session input, so
  /// it can only be loaded into an Engine over the same schema/structure.
  Status SaveSession(const std::string& path, RunStats* stats = nullptr);

  /// Restores artifacts from `path` into this session's cache (slots that
  /// are already built keep the in-memory artifact). Subsequent queries hit
  /// the cache instead of rebuilding: after a load into a cold engine,
  /// RunStats shows zero encode/td/normalize builds. Corrupted,
  /// wrong-fingerprint, or newer-versioned files fail with a clean error
  /// Status and leave the session unchanged.
  Status LoadSession(const std::string& path, RunStats* stats = nullptr);

  // --- Identity and accounting ---------------------------------------------

  /// Stable hash of the session input (schema or structure): the value that
  /// stamps and verifies session files, and the key of the serving layer's
  /// session pool. Computable without building any artifact.
  uint64_t Fingerprint() const { return SessionFingerprint(); }
  /// The fingerprint an Engine constructed from the same input would report
  /// — lets a pool key a lookup before paying for Engine construction.
  static uint64_t FingerprintOf(const Structure& structure);
  static uint64_t FingerprintOf(const Schema& schema);

  /// Deterministic estimate, in bytes, of the cached artifacts currently
  /// resident in this session (structure, encoding, decompositions, normal
  /// forms, τ_td). Fixed per-item charges, no sizeof — the same session
  /// state yields the same number on every platform, which is what the
  /// serving layer's shared admission budget compares.
  size_t ResidentArtifactBytes() const;
  /// The charge ResidentArtifactBytes assigns to a bare structure — the
  /// admission floor of a session before any artifact is built.
  static size_t EstimateStructureBytes(const Structure& structure);

  // --- Session artifacts ---------------------------------------------------

  /// The session schema, or null for structure sessions.
  const Schema* schema() const { return schema_.get(); }
  const EngineOptions& options() const { return options_; }

  /// The session τ-structure (encodes the schema lazily on first use).
  StatusOr<const Structure*> structure(RunStats* stats = nullptr);
  /// The cached raw decomposition (built and validated on first use).
  StatusOr<const TreeDecomposition*> Decomposition(RunStats* stats = nullptr);
  /// Width of the session decomposition.
  StatusOr<int> Width(RunStats* stats = nullptr);

  /// Aggregate of every RunStats this engine produced.
  RunStats CumulativeStats() const;
  void ResetCumulativeStats();

 private:
  // Mutexes live behind a unique_ptr so the Engine stays movable. cache_mu
  // serializes every lazy-cache check/build (the Ensure* methods below must
  // be called with it held); stats_mu guards cumulative_ only.
  struct Sync {
    std::mutex cache_mu;
    std::mutex stats_mu;
  };

  // All Ensure* methods require sync_->cache_mu to be held by the caller.
  // The artifacts they return are immutable once built and their addresses
  // are stable, so callers may keep using the pointers after releasing the
  // lock.
  StatusOr<const SchemaEncoding*> EnsureEncoding(RunStats* stats);
  StatusOr<const Structure*> EnsureStructure(RunStats* stats);
  StatusOr<const Graph*> EnsureGaifman(RunStats* stats);
  StatusOr<const TreeDecomposition*> EnsureTd(RunStats* stats);
  StatusOr<const core::internal::PrimalityContext*> EnsurePrimality(
      RunStats* stats);
  StatusOr<const TreeDecomposition*> EnsureClosedTd(RunStats* stats);
  StatusOr<const NormalizedTreeDecomposition*> EnsureEnumNtd(RunStats* stats);
  StatusOr<const NormalizedTreeDecomposition*> EnsurePlainNtd(RunStats* stats);
  StatusOr<const datalog::TauTdEncoding*> EnsureTauTd(RunStats* stats);
  /// Compiled Thm 4.5 program for `phi` (sentence form when free_var is
  /// null), from the per-formula cache or freshly constructed.
  StatusOr<const mso2dl::Mso2DlResult*> EnsureMsoProgram(
      const mso::FormulaPtr& phi, const std::string* free_var,
      RunStats* stats);
  /// The lazily created DP thread pool, or null when the session is
  /// configured sequential (resolved num_threads <= 1).
  ThreadPool* EnsurePool();
  /// Stable hash of the session input (schema or structure) used to stamp
  /// and verify session files.
  uint64_t SessionFingerprint() const;
  /// EngineOptions::num_threads with 0 resolved to hardware concurrency.
  size_t ResolvedNumThreads() const;
  /// True when the MSO query must be answered by direct quantifier
  /// expansion: the kDirect strategy, or a session width < 1 (Thm 4.5 needs
  /// width >= 1).
  StatusOr<bool> UseDirectMso(RunStats* stats);
  void Record(const RunStats& stats);

  EngineOptions options_;
  // Owned inputs (unique_ptr keeps references inside cached artifacts stable
  // across moves).
  std::unique_ptr<Schema> schema_;
  std::unique_ptr<Structure> owned_structure_;
  // Cached artifacts, built lazily under sync_->cache_mu and immutable
  // afterwards.
  std::unique_ptr<SchemaEncoding> encoding_;
  std::unique_ptr<core::internal::PrimalityContext> primality_;
  std::optional<Graph> gaifman_;
  std::optional<TreeDecomposition> td_;
  std::optional<TreeDecomposition> closed_td_;
  std::optional<NormalizedTreeDecomposition> enum_ntd_;
  std::optional<NormalizedTreeDecomposition> plain_ntd_;
  std::optional<BagSharding> sharding_;
  /// Sharding of enum_ntd_ for the parallel §5.3 enumeration (parallel
  /// schema sessions only).
  std::optional<BagSharding> enum_sharding_;
  std::optional<datalog::TauTdEncoding> tau_td_;
  std::optional<std::vector<bool>> primes_;
  /// Per-formula cache of compiled Thm 4.5 programs, keyed by query form +
  /// free variable + formula rendering (node-based map: value addresses are
  /// stable across inserts).
  std::unordered_map<std::string, mso2dl::Mso2DlResult> mso_programs_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Sync> sync_;
  RunStats cumulative_;
};

}  // namespace treedl

#endif  // TREEDL_ENGINE_ENGINE_HPP_
