// Finite τ-structures (§2.2): a finite domain plus one relation per predicate.
//
// Elements are interned to dense ids (ElementId). Relations are stored as
// deduplicated tuple lists with a hash index for O(1) membership tests — the
// structure doubles as the extensional database E(A) of §2.4.
#ifndef TREEDL_STRUCTURE_STRUCTURE_HPP_
#define TREEDL_STRUCTURE_STRUCTURE_HPP_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"
#include "structure/signature.hpp"

namespace treedl {

using ElementId = uint32_t;
using Tuple = std::vector<ElementId>;

struct Fact {
  PredicateId predicate;
  Tuple args;

  bool operator==(const Fact&) const = default;
};

class Structure {
 public:
  explicit Structure(Signature signature) : signature_(std::move(signature)) {
    relations_.resize(static_cast<size_t>(signature_.size()));
    indexes_.resize(static_cast<size_t>(signature_.size()));
  }

  const Signature& signature() const { return signature_; }

  // --- Domain -------------------------------------------------------------

  /// Interns `name`, returning its id (existing id if already present).
  ElementId AddElement(const std::string& name);

  StatusOr<ElementId> ElementByName(const std::string& name) const;
  bool HasElementNamed(const std::string& name) const {
    return element_ids_.count(name) > 0;
  }
  const std::string& ElementName(ElementId id) const {
    return element_names_[id];
  }
  size_t NumElements() const { return element_names_.size(); }

  // --- Facts ---------------------------------------------------------------

  /// Adds a ground atom. Duplicate facts are ignored (set semantics).
  /// Fails if the arity mismatches or any argument id is out of range.
  Status AddFact(PredicateId predicate, Tuple args);

  /// Convenience: interns the named elements and adds the fact.
  Status AddFactNamed(const std::string& predicate,
                      const std::vector<std::string>& args);

  bool HasFact(PredicateId predicate, const Tuple& args) const;

  /// All tuples of one relation, in insertion order.
  const std::vector<Tuple>& Relation(PredicateId predicate) const {
    return relations_[static_cast<size_t>(predicate)];
  }

  size_t NumFacts() const { return num_facts_; }

  /// All facts of all relations (materialized; intended for small structures).
  std::vector<Fact> AllFacts() const;

  // --- Derived structures ----------------------------------------------------

  /// The substructure induced by `keep` (Def 3.2): same signature, domain
  /// restricted to `keep`, and exactly the facts all of whose arguments lie in
  /// `keep`. Element names are preserved. `old_to_new`, if non-null, receives
  /// the id translation (entries for dropped elements are absent).
  Structure InducedSubstructure(
      const std::vector<ElementId>& keep,
      std::unordered_map<ElementId, ElementId>* old_to_new = nullptr) const;

  /// Structural equality: same signature, same element names (by id), same
  /// fact sets.
  bool operator==(const Structure& other) const;

 private:
  struct TupleHash {
    size_t operator()(const Tuple& t) const { return HashRange(t); }
  };

  Signature signature_;
  std::vector<std::string> element_names_;
  std::unordered_map<std::string, ElementId> element_ids_;
  std::vector<std::vector<Tuple>> relations_;
  std::vector<std::unordered_set<Tuple, TupleHash>> indexes_;
  size_t num_facts_ = 0;
};

}  // namespace treedl

#endif  // TREEDL_STRUCTURE_STRUCTURE_HPP_
