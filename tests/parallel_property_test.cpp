// Property-based cross-checks for the parallel engines: random partial
// k-trees evaluated with num_threads = 1 and num_threads = 8 must agree on
// all five Solve problems (and on the sharding invariants), the parallel
// semi-naive fixpoint and the sharded PRIMALITY enumeration must be
// bit-identical to their sequential runs, and a quasi-guarded datalog
// program must produce identical models under the naive, seminaive, and
// grounded backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datalog/parser.hpp"
#include "engine/engine.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "schema/generators.hpp"
#include "schema/primality_bruteforce.hpp"
#include "td/shard.hpp"
#include "test_util.hpp"

namespace treedl {
namespace {

constexpr Engine::Problem kAllProblems[] = {
    Engine::Problem::kThreeColor,      Engine::Problem::kThreeColorCount,
    Engine::Problem::kVertexCover,     Engine::Problem::kIndependentSet,
    Engine::Problem::kDominatingSet,
};

void ExpectProperColoring(const Graph& graph, const std::vector<int>& colors) {
  for (VertexId u = 0; u < static_cast<VertexId>(graph.NumVertices()); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      EXPECT_NE(colors[static_cast<size_t>(u)], colors[static_cast<size_t>(v)])
          << "edge " << u << "-" << v << " monochromatic";
    }
  }
}

TEST(ParallelPropertyTest, ThreadCountsAgreeOnAllFiveProblems) {
  for (uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 30 + 15 * static_cast<size_t>(trial);
    int k = 2 + static_cast<int>(trial % 3);
    Graph graph = RandomPartialKTree(n, k, 0.7, &rng);

    EngineOptions sequential;
    sequential.num_threads = 1;
    EngineOptions parallel;
    parallel.num_threads = 8;
    Engine seq_engine = Engine::FromGraph(graph, sequential);
    Engine par_engine = Engine::FromGraph(graph, parallel);

    for (Engine::Problem problem : kAllProblems) {
      auto seq = seq_engine.Solve(problem);
      RunStats par_run;
      auto par = par_engine.Solve(problem, &par_run);
      ASSERT_TRUE(seq.ok()) << seq.status();
      ASSERT_TRUE(par.ok()) << par.status();
      EXPECT_EQ(seq->feasible, par->feasible) << "trial " << trial;
      EXPECT_EQ(seq->optimum, par->optimum) << "trial " << trial;
      EXPECT_EQ(seq->count, par->count) << "trial " << trial;
      EXPECT_EQ(seq->witness.has_value(), par->witness.has_value());
      if (par->witness.has_value()) {
        ExpectProperColoring(graph, *par->witness);
      }
      if (problem == Engine::Problem::kThreeColor) {
        // The parallel session really sharded (instances are large enough).
        EXPECT_GT(par_run.dp_shards, 1u) << "trial " << trial;
        EXPECT_EQ(par_run.dp_shard_millis.size(), par_run.dp_shards);
      }
    }
    // Identical DP work on both sides: same reachable-state tables.
    EXPECT_EQ(seq_engine.CumulativeStats().dp_states,
              par_engine.CumulativeStats().dp_states)
        << "trial " << trial;
  }
}

TEST(ParallelPropertyTest, SolveAllEqualsFiveSolvesAcrossThreadCounts) {
  for (uint64_t trial = 0; trial < 5; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 30 + 15 * static_cast<size_t>(trial);
    int k = 2 + static_cast<int>(trial % 3);
    Graph graph = RandomPartialKTree(n, k, 0.7, &rng);

    EngineOptions sequential;
    sequential.num_threads = 1;
    EngineOptions parallel;
    parallel.num_threads = 8;
    Engine seq_engine = Engine::FromGraph(graph, sequential);
    Engine par_engine = Engine::FromGraph(graph, parallel);
    // A reference engine answers the five problems one at a time.
    Engine ref_engine = Engine::FromGraph(graph, sequential);

    RunStats seq_run;
    RunStats par_run;
    auto seq_all = seq_engine.SolveAll(&seq_run);
    auto par_all = par_engine.SolveAll(&par_run);
    ASSERT_TRUE(seq_all.ok()) << seq_all.status();
    ASSERT_TRUE(par_all.ok()) << par_all.status();

    for (Engine::Problem problem : kAllProblems) {
      auto ref = ref_engine.Solve(problem);
      ASSERT_TRUE(ref.ok()) << ref.status();
      for (const auto* batch : {&seq_all, &par_all}) {
        Engine::SolveResult fused = (*batch)->Result(problem);
        EXPECT_EQ(fused.feasible, ref->feasible) << "trial " << trial;
        EXPECT_EQ(fused.optimum, ref->optimum) << "trial " << trial;
        EXPECT_EQ(fused.count, ref->count) << "trial " << trial;
        EXPECT_EQ(fused.witness.has_value(), ref->witness.has_value());
      }
    }
    if (par_all->coloring.has_value()) {
      ExpectProperColoring(graph, *par_all->coloring);
    }

    // One traversal family on both sides, five passes deep; the parallel
    // side sharded that single traversal (not five).
    EXPECT_EQ(seq_run.dp_traversals, 1u) << "trial " << trial;
    EXPECT_EQ(seq_run.dp_passes, 5u) << "trial " << trial;
    EXPECT_EQ(par_run.dp_traversals, 1u) << "trial " << trial;
    EXPECT_EQ(par_run.dp_passes, 5u) << "trial " << trial;
    EXPECT_GT(par_run.dp_shards, 1u) << "trial " << trial;
    EXPECT_EQ(par_run.dp_shard_millis.size(), par_run.dp_shards);
    // Identical reachable-state tables: fused == five independent runs.
    EXPECT_EQ(seq_run.dp_states, par_run.dp_states) << "trial " << trial;
    EXPECT_EQ(ref_engine.CumulativeStats().dp_states, seq_run.dp_states)
        << "trial " << trial;
  }
}

// The eviction acceptance property: with a table_memory_budget, every answer
// (including the retained-pass witness) stays bit-identical to the
// unbudgeted flat-table run at threads 1 and 8, while RunStats proves tables
// were evicted and the live-table peak dropped.
TEST(ParallelPropertyTest, EvictionPreservesAnswersAndBoundsTableMemory) {
  for (uint64_t trial = 0; trial < 3; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 120 + 60 * static_cast<size_t>(trial);
    Graph graph = RandomPartialKTree(n, 3 + static_cast<int>(trial % 2), 0.7,
                                     &rng);

    struct Config {
      size_t threads;
      size_t budget;
    };
    const Config configs[] = {
        {1, 0}, {8, 0}, {1, 64 * 1024}, {8, 64 * 1024}};

    std::vector<Engine::SolveAllResult> results;
    std::vector<RunStats> runs;
    for (const Config& config : configs) {
      EngineOptions options;
      options.num_threads = config.threads;
      options.table_memory_budget = config.budget;
      Engine engine = Engine::FromGraph(graph, options);
      RunStats run;
      auto all = engine.SolveAll(&run);
      ASSERT_TRUE(all.ok()) << all.status();
      results.push_back(*all);
      runs.push_back(run);

      // The per-problem driver agrees under the same budget, witness included.
      for (Engine::Problem problem : kAllProblems) {
        auto solo = engine.Solve(problem);
        ASSERT_TRUE(solo.ok()) << solo.status();
        Engine::SolveResult fused = all->Result(problem);
        EXPECT_EQ(solo->feasible, fused.feasible) << "trial " << trial;
        EXPECT_EQ(solo->optimum, fused.optimum) << "trial " << trial;
        EXPECT_EQ(solo->count, fused.count) << "trial " << trial;
        EXPECT_EQ(solo->witness, fused.witness) << "trial " << trial;
      }
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].three_colorable, results[0].three_colorable);
      EXPECT_EQ(results[i].coloring, results[0].coloring) << "config " << i;
      EXPECT_EQ(results[i].three_colorings, results[0].three_colorings);
      EXPECT_EQ(results[i].min_vertex_cover, results[0].min_vertex_cover);
      EXPECT_EQ(results[i].max_independent_set, results[0].max_independent_set);
      EXPECT_EQ(results[i].min_dominating_set, results[0].min_dominating_set);
      EXPECT_EQ(runs[i].dp_states, runs[0].dp_states) << "config " << i;
    }
    // Budgeted runs evicted dead tables and peaked strictly below the
    // unbudgeted peak; unbudgeted runs evicted nothing.
    EXPECT_EQ(runs[0].dp_tables_evicted, 0u);
    EXPECT_EQ(runs[1].dp_tables_evicted, 0u);
    EXPECT_GT(runs[0].dp_peak_table_bytes, 0u);
    for (size_t i : {size_t{2}, size_t{3}}) {
      EXPECT_GT(runs[i].dp_tables_evicted, 0u) << "config " << i;
      EXPECT_LT(runs[i].dp_peak_table_bytes, runs[i - 2].dp_peak_table_bytes)
          << "config " << i;
    }
  }
}

TEST(ParallelPropertyTest, CostModelOrdersNodesByBagSizeAndKind) {
  NormNode narrow;
  narrow.bag = {0, 1};
  NormNode wide;
  wide.bag = {0, 1, 2, 3, 4};
  EXPECT_LT(EstimateNodeCost(narrow), EstimateNodeCost(wide));
  NormNode branch = wide;
  branch.kind = NormNodeKind::kBranch;
  EXPECT_EQ(EstimateNodeCost(branch), 2 * EstimateNodeCost(wide));
  // The cap keeps degenerate bags finite.
  NormNode huge;
  huge.bag.resize(64);
  for (size_t i = 0; i < huge.bag.size(); ++i) {
    huge.bag[i] = static_cast<ElementId>(i);
  }
  EXPECT_GT(EstimateNodeCost(huge), 0u);
}

// Cost-aware sharding balance: the slowest shard's modeled cost stays within
// 2x of the mean shard cost, so no shard (the root shard, under node-count
// sharding) dominates the parallel critical path.
TEST(ParallelPropertyTest, CostAwareShardingBalancesEstimatedWork) {
  for (uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 150 + 60 * static_cast<size_t>(trial);
    Graph graph = RandomPartialKTree(n, 2 + static_cast<int>(trial % 3), 0.6,
                                     &rng);
    Engine engine = Engine::FromGraph(graph);
    auto td = engine.Decomposition();
    ASSERT_TRUE(td.ok()) << td.status();
    auto ntd = Normalize(**td);
    ASSERT_TRUE(ntd.ok()) << ntd.status();

    for (size_t target : {4u, 8u, 16u}) {
      BagSharding sharding = ComputeBagShardingByCost(*ntd, target);
      Status valid = ValidateSharding(*ntd, sharding);
      ASSERT_TRUE(valid.ok()) << valid.message();
      if (sharding.NumShards() < 2) continue;

      uint64_t total = 0;
      uint64_t slowest = 0;
      for (const BagShard& shard : sharding.shards) {
        // BagShard::cost is the sum of its nodes' modeled costs.
        uint64_t recomputed = 0;
        for (TdNodeId id : shard.nodes) {
          recomputed += EstimateNodeCost(ntd->node(id));
        }
        EXPECT_EQ(shard.cost, recomputed);
        total += shard.cost;
        slowest = std::max(slowest, shard.cost);
      }
      double mean = static_cast<double>(total) /
                    static_cast<double>(sharding.NumShards());
      EXPECT_LE(static_cast<double>(slowest), 2.0 * mean)
          << "trial " << trial << " target " << target << " shards "
          << sharding.NumShards();
    }
  }
}

TEST(ParallelPropertyTest, ShardingInvariantsHoldOnRandomInstances) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 20 + 20 * static_cast<size_t>(trial);
    Graph graph = RandomPartialKTree(n, 3, 0.6, &rng);
    Engine engine = Engine::FromGraph(graph);
    auto td = engine.Decomposition();
    ASSERT_TRUE(td.ok()) << td.status();
    auto ntd = Normalize(**td);
    ASSERT_TRUE(ntd.ok()) << ntd.status();
    for (size_t target : {1u, 2u, 7u, 32u, 1000u}) {
      BagSharding sharding = ComputeBagSharding(*ntd, target);
      EXPECT_GE(sharding.NumShards(), 1u);
      Status valid = ValidateSharding(*ntd, sharding);
      EXPECT_TRUE(valid.ok())
          << "trial " << trial << " target " << target << ": "
          << valid.message();
    }
  }
}

// The parallel fixpoint acceptance property: with num_threads = 8 the
// semi-naive engine evaluates each round's rules as pool tasks, and the
// derived model — plus every deterministic work counter — is bit-identical
// to num_threads = 1, across all three backends.
TEST(ParallelPropertyTest, DatalogFixpointAgreesAcrossThreadCounts) {
  // Transitive closure derives O(n^2) facts over several delta rounds, so
  // the parallel engine has real per-round work to decompose.
  auto program = datalog::ParseProgram(R"(
    closure(X, Y) :- e(X, Y).
    closure(X, Z) :- closure(X, Y), e(Y, Z).
    touched(X) :- e(X, Y).
    mutual(X, Y) :- e(X, Y), e(Y, X).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  for (uint64_t trial = 0; trial < 4; ++trial) {
    Rng rng(TestSeed(trial));
    Graph graph = RandomPartialKTree(40 + 20 * static_cast<size_t>(trial), 3,
                                     0.6, &rng);
    EngineOptions sequential;
    sequential.num_threads = 1;
    EngineOptions parallel;
    parallel.num_threads = 8;
    Engine seq_engine = Engine::FromGraph(graph, sequential);
    Engine par_engine = Engine::FromGraph(graph, parallel);

    RunStats seq_run;
    RunStats par_run;
    auto seq = seq_engine.EvaluateDatalog(*program, DatalogBackend::kSemiNaive,
                                          &seq_run);
    auto par = par_engine.EvaluateDatalog(*program, DatalogBackend::kSemiNaive,
                                          &par_run);
    ASSERT_TRUE(seq.ok()) << seq.status();
    ASSERT_TRUE(par.ok()) << par.status();
    EXPECT_TRUE(*seq == *par) << "trial " << trial;

    // The round/task decomposition is a function of the program and the
    // data, never of the thread count: every fixpoint counter matches.
    EXPECT_GT(par_run.fixpoint_rounds, 1u) << "trial " << trial;
    EXPECT_GT(par_run.fixpoint_rule_tasks, 1u) << "trial " << trial;
    EXPECT_EQ(seq_run.fixpoint_rounds, par_run.fixpoint_rounds);
    EXPECT_EQ(seq_run.fixpoint_rule_tasks, par_run.fixpoint_rule_tasks);
    EXPECT_EQ(seq_run.derived_facts, par_run.derived_facts);
    EXPECT_EQ(seq_run.rule_applications, par_run.rule_applications);
    EXPECT_EQ(seq_run.eval_iterations, par_run.eval_iterations);

    // Compiled-executor counters: plan compilation is a pure function of
    // the program, dispatch counts of program + data — neither sees the
    // thread count, and a fully compiled run dispatches exactly once per
    // unit of rule-application work.
    EXPECT_GT(par_run.plan_compiles, 0u) << "trial " << trial;
    EXPECT_GT(par_run.executor_dispatches, 0u) << "trial " << trial;
    EXPECT_EQ(seq_run.plan_compiles, par_run.plan_compiles);
    EXPECT_EQ(seq_run.executor_dispatches, par_run.executor_dispatches);
    EXPECT_EQ(par_run.executor_dispatches, par_run.rule_applications);

    // And the parallel model still matches the naive reference oracle.
    auto naive = seq_engine.EvaluateDatalog(*program, DatalogBackend::kNaive);
    ASSERT_TRUE(naive.ok()) << naive.status();
    EXPECT_TRUE(*naive == *par) << "trial " << trial;
  }
}

// The parallel PRIMALITY enumeration acceptance property: AllPrimes at
// num_threads = 8 runs both passes shard-scheduled on the pool and returns
// exactly the num_threads = 1 bits (checked against the brute-force oracle
// on the generated family, whose ground truth is known).
TEST(ParallelPropertyTest, PrimalityEnumerationAgreesAcrossThreadCounts) {
  for (int num_fds : {4, 32}) {
    BalancedInstance inst = GenerateBalancedInstance(num_fds);
    EngineOptions sequential;
    sequential.num_threads = 1;
    sequential.decomposition = inst.td;
    EngineOptions parallel = sequential;
    parallel.num_threads = 8;
    Engine seq_engine(inst.schema, sequential);
    Engine par_engine(inst.schema, parallel);

    RunStats seq_run;
    RunStats par_run;
    auto seq = seq_engine.AllPrimes(&seq_run);
    auto par = par_engine.AllPrimes(&par_run);
    ASSERT_TRUE(seq.ok()) << seq.status();
    ASSERT_TRUE(par.ok()) << par.status();
    EXPECT_EQ(*seq, *par) << "num_fds " << num_fds;
    // Generator ground truth: every x_i / y_i is prime (on no rhs, hence in
    // every key) and every z_i (the rhs chain) is non-prime. The brute-force
    // oracle confirms it where its 24-attribute limit allows.
    for (AttributeId a = 0; a < inst.schema.NumAttributes(); ++a) {
      bool expect_prime = inst.schema.AttributeName(a)[0] != 'z';
      EXPECT_EQ((*par)[static_cast<size_t>(a)], expect_prime)
          << "num_fds " << num_fds << " attr " << inst.schema.AttributeName(a);
    }
    if (inst.schema.NumAttributes() <= 24) {
      EXPECT_EQ(*par, AllPrimesBruteForce(inst.schema))
          << "num_fds " << num_fds;
    }

    // Same reachable state sets on both sides; the parallel session really
    // sharded both walks of the two-pass enumeration.
    EXPECT_EQ(seq_run.dp_states, par_run.dp_states) << "num_fds " << num_fds;
    EXPECT_EQ(seq_run.primality_shards, 0u);
    if (num_fds >= 32) {
      EXPECT_GT(par_run.primality_shards, 1u) << "num_fds " << num_fds;
      EXPECT_EQ(par_run.primality_shards % 2, 0u)
          << "two walks over the same shard count";
    }
  }
}

// Eviction under the enumeration: a table_memory_budget releases dead solve /
// solve↓ tables mid-run (siblings release each other's bottom-up tables at
// the top-down joins) without changing a single prime bit, at both thread
// counts.
TEST(ParallelPropertyTest, PrimalityEnumerationEvictionPreservesAnswers) {
  BalancedInstance inst = GenerateBalancedInstance(24);
  std::vector<bool> reference;
  std::vector<RunStats> runs;
  struct Config {
    size_t threads;
    size_t budget;
  };
  const Config configs[] = {{1, 0}, {8, 0}, {1, 16 * 1024}, {8, 16 * 1024}};
  for (const Config& config : configs) {
    EngineOptions options;
    options.num_threads = config.threads;
    options.table_memory_budget = config.budget;
    options.decomposition = inst.td;
    Engine engine(inst.schema, options);
    RunStats run;
    auto primes = engine.AllPrimes(&run);
    ASSERT_TRUE(primes.ok()) << primes.status();
    if (reference.empty()) reference = *primes;
    EXPECT_EQ(*primes, reference);
    runs.push_back(run);
  }
  EXPECT_EQ(runs[0].dp_tables_evicted, 0u);
  EXPECT_EQ(runs[1].dp_tables_evicted, 0u);
  EXPECT_GT(runs[0].dp_peak_table_bytes, 0u);
  for (size_t i : {size_t{2}, size_t{3}}) {
    EXPECT_GT(runs[i].dp_tables_evicted, 0u) << "config " << i;
    EXPECT_LT(runs[i].dp_peak_table_bytes, runs[i - 2].dp_peak_table_bytes)
        << "config " << i;
  }
}

TEST(ParallelPropertyTest, DatalogBackendsAgreeOnRandomPartialKTrees) {
  // Every rule carries a positive extensional e-atom over all of its
  // variables, so the program is quasi-guarded and the grounded Thm 4.4
  // backend applies alongside naive and seminaive.
  auto program = datalog::ParseProgram(R"(
    touched(X) :- e(X, Y).
    mutual(X, Y) :- e(X, Y), e(Y, X).
    reach(Y) :- mutual(X, Y), e(X, Y).
    reach(Y) :- reach(X), e(X, Y).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  for (uint64_t trial = 0; trial < 5; ++trial) {
    Rng rng(TestSeed(trial));
    Graph graph = RandomPartialKTree(25 + 10 * static_cast<size_t>(trial), 3,
                                     0.5, &rng);
    Engine engine = Engine::FromGraph(graph);
    auto naive = engine.EvaluateDatalog(*program, DatalogBackend::kNaive);
    auto semi = engine.EvaluateDatalog(*program, DatalogBackend::kSemiNaive);
    auto grounded = engine.EvaluateDatalog(*program, DatalogBackend::kGrounded);
    ASSERT_TRUE(naive.ok()) << naive.status();
    ASSERT_TRUE(semi.ok()) << semi.status();
    ASSERT_TRUE(grounded.ok()) << grounded.status();
    EXPECT_TRUE(*naive == *semi) << "trial " << trial;
    EXPECT_TRUE(*naive == *grounded) << "trial " << trial;
  }
}

}  // namespace
}  // namespace treedl
