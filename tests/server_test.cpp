// treedl::server — protocol parsing, end-to-end request handling, tenant
// errors, admission via the protocol, and a garbage-line fuzz pass that must
// never crash the driver.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "server/protocol.hpp"
#include "test_util.hpp"

namespace treedl::server {
namespace {

constexpr const char* kTriangleLoad =
    "LOAD g SIG e/2 FACTS e(a, b). e(b, c). e(c, a).";

/// Runs one line through a stats-free server and returns the raw reply text.
std::string Reply(Server* server, std::string_view line) {
  std::string out;
  server->HandleLine(line, &out);
  return out;
}

ServerOptions QuietOptions() {
  ServerOptions options;
  options.echo_stats = false;
  return options;
}

TEST(ProtocolTest, BlankAndCommentLinesParseToNothing) {
  for (const char* line : {"", "   ", "% a comment", "  % indented comment"}) {
    auto request = ParseRequest(line);
    ASSERT_TRUE(request.ok()) << line;
    EXPECT_FALSE(request.value().has_value()) << line;
  }
}

TEST(ProtocolTest, ParsesTypedRequests) {
  auto load = ParseRequest("LOAD t SIG e/2 p/1 FACTS e(a, b). p(a).");
  ASSERT_TRUE(load.ok());
  const auto* load_request = std::get_if<LoadRequest>(&load.value().value());
  ASSERT_NE(load_request, nullptr);
  EXPECT_EQ(load_request->tenant, "t");
  ASSERT_EQ(load_request->predicates.size(), 2u);
  EXPECT_EQ(load_request->predicates[0], (std::pair<std::string, int>{"e", 2}));
  EXPECT_EQ(load_request->predicates[1], (std::pair<std::string, int>{"p", 1}));
  EXPECT_EQ(load_request->facts, "e(a, b). p(a).");

  auto solve = ParseRequest("SOLVE t #3COL");
  ASSERT_TRUE(solve.ok());
  const auto* solve_request = std::get_if<SolveRequest>(&solve.value().value());
  ASSERT_NE(solve_request, nullptr);
  EXPECT_EQ(solve_request->problem, Engine::Problem::kThreeColorCount);

  auto stats = ParseRequest("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(std::get<StatsRequest>(stats.value().value()).tenant);
  auto tenant_stats = ParseRequest("STATS t");
  ASSERT_TRUE(tenant_stats.ok());
  EXPECT_EQ(std::get<StatsRequest>(tenant_stats.value().value()).tenant, "t");
}

TEST(ProtocolTest, ParseFailuresMapToTypedErrorCodes) {
  auto unknown = ParseRequest("FROB t");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(ErrorCodeFor(unknown.status()), ErrorCode::kUnknownCommand);

  auto bad_problem = ParseRequest("SOLVE t XYZ");
  ASSERT_FALSE(bad_problem.ok());
  EXPECT_EQ(ErrorCodeFor(bad_problem.status()), ErrorCode::kBadArgument);

  for (const char* line : {"LOAD t", "LOAD t SIG", "LOAD t SIG e", "QUERY t",
                           "SOLVE t", "QUIT extra"}) {
    EXPECT_FALSE(ParseRequest(line).ok()) << line;
  }
}

TEST(ProtocolTest, ReplyRenderersAreSingleLine) {
  EXPECT_EQ(OkReply("LOAD", "tenant=t"), "OK LOAD tenant=t");
  EXPECT_EQ(DataReply("e(a, b)."), "DATA e(a, b).");
  std::string err = ErrorReply(ErrorCode::kParse, "multi\nline\rmessage");
  EXPECT_EQ(err.find('\n'), std::string::npos);
  EXPECT_EQ(err.find('\r'), std::string::npos);
  EXPECT_EQ(err.rfind("ERR E_PARSE ", 0), 0u);
}

TEST(ServerTest, TriangleEndToEnd) {
  Server server(QuietOptions());
  std::string load = Reply(&server, kTriangleLoad);
  EXPECT_NE(load.find("OK LOAD tenant=g"), std::string::npos) << load;
  EXPECT_NE(load.find("elements=3 facts=3 pool=cold"), std::string::npos)
      << load;

  EXPECT_NE(Reply(&server, "SOLVE g 3COL").find("feasible=1"),
            std::string::npos);
  EXPECT_NE(Reply(&server, "SOLVE g #3COL").find("count=6"),
            std::string::npos);
  EXPECT_NE(Reply(&server, "SOLVE g VC").find("optimum=2"), std::string::npos);
  std::string all = Reply(&server, "SOLVEALL g");
  EXPECT_NE(all.find("three_colorable=1"), std::string::npos) << all;
  EXPECT_NE(all.find("vc=2"), std::string::npos) << all;
  EXPECT_NE(all.find("pool=hit"), std::string::npos) << all;

  // MSO over a width-0 tenant takes the direct evaluation route (the Thm 4.5
  // compile needs width >= 1 and saturates on binary-atom formulas).
  ASSERT_NE(Reply(&server, "LOAD m SIG p/1 FACTS p(a). p(b).").find("OK LOAD"),
            std::string::npos);
  std::string mso = Reply(&server, "MSO m ex1 x: p(x)");
  EXPECT_NE(mso.find("holds=1"), std::string::npos) << mso;
  std::string refuted = Reply(&server, "MSO m all1 x: ~p(x)");
  EXPECT_NE(refuted.find("holds=0"), std::string::npos) << refuted;

  std::string query =
      Reply(&server, "QUERY g reach(X, Y) :- e(X, Y). "
                     "reach(X, Y) :- e(X, Z), reach(Z, Y).");
  EXPECT_NE(query.find("OK QUERY tenant=g data=9 derived=9"),
            std::string::npos)
      << query;
  // 9 DATA rows: reach is the full 3x3 relation on a directed triangle.
  size_t data_rows = 0;
  for (size_t pos = 0; (pos = query.find("DATA reach(", pos)) !=
                       std::string::npos;
       ++pos) {
    ++data_rows;
  }
  EXPECT_EQ(data_rows, 9u);

  EXPECT_EQ(server.stats().replies_error, 0u);
}

TEST(ServerTest, SecondTenantWithEqualStructureSharesTheSession) {
  Server server(QuietOptions());
  EXPECT_NE(Reply(&server, kTriangleLoad).find("pool=cold"),
            std::string::npos);
  std::string second = Reply(
      &server, "LOAD h SIG e/2 FACTS e(a, b). e(b, c). e(c, a).");
  EXPECT_NE(second.find("pool=hit"), std::string::npos) << second;
  EXPECT_EQ(server.pool().counters().hits, 1u);
  EXPECT_EQ(server.pool().NumResident(), 1u);
}

TEST(ServerTest, TenantAndArgumentErrors) {
  Server server(QuietOptions());
  EXPECT_EQ(Reply(&server, "SOLVE nope VC").rfind("ERR E_TENANT ", 0), 0u);
  EXPECT_EQ(Reply(&server, "FROB x").rfind("ERR E_CMD ", 0), 0u);
  EXPECT_EQ(Reply(&server, "LOAD t SIG e/2 FACTS e(a").rfind("ERR E_PARSE", 0),
            0u);
  EXPECT_EQ(Reply(&server, "SAVE t").rfind("ERR E_TENANT ", 0), 0u);

  ASSERT_NE(Reply(&server, kTriangleLoad).find("OK LOAD"), std::string::npos);
  EXPECT_EQ(Reply(&server, "MSO g not a formula").rfind("ERR E_PARSE", 0), 0u);
  // SAVE without a session directory is an IO error, not a crash.
  EXPECT_EQ(Reply(&server, "SAVE g").rfind("ERR ", 0), 0u);
  EXPECT_NE(Reply(&server, "CLOSE g").find("OK CLOSE"), std::string::npos);
  EXPECT_EQ(Reply(&server, "SOLVE g VC").rfind("ERR E_TENANT ", 0), 0u);
  EXPECT_GT(server.stats().replies_error, 0u);
}

TEST(ServerTest, TinyBudgetRejectsLoadViaProtocol) {
  ServerOptions options = QuietOptions();
  options.table_memory_budget = 32;  // below the triangle's estimate
  Server server(options);
  std::string reply = Reply(&server, kTriangleLoad);
  EXPECT_EQ(reply.rfind("ERR E_ADMISSION ", 0), 0u) << reply;
  EXPECT_EQ(server.pool().counters().rejections, 1u);
}

TEST(ServerTest, ServeCountsRequestsAndStopsAtQuit) {
  Server server(QuietOptions());
  std::istringstream in(
      "% transcript\n\n" + std::string(kTriangleLoad) +
      "\nSOLVE g VC\nQUIT\nSOLVE g VC\n");  // after QUIT: never handled
  std::ostringstream out;
  EXPECT_EQ(server.Serve(in, out), 3u);  // LOAD, SOLVE, QUIT
  EXPECT_NE(out.str().find("OK QUIT"), std::string::npos);
  EXPECT_EQ(server.stats().requests, 3u);
}

TEST(ServerTest, GarbageLinesNeverCrashAndAlwaysReplyOkOrErr) {
  Server server(QuietOptions());
  ASSERT_NE(Reply(&server, kTriangleLoad).find("OK LOAD"), std::string::npos);

  // Structured near-misses first: prefixes, truncations, wrong arities.
  const std::vector<std::string> corpus = {
      "LOAD", "LOAD g", "LOAD g SIG", "LOAD g SIG e/", "LOAD g SIG e/2x",
      "LOAD g SIG /2", "LOAD g SIG e/99999", "LOAD ~!bad SIG e/2",
      "ASSERT g", "ASSERT nope e(a, b).", "QUERY g :-", "QUERY g p(X)",
      "SOLVE g", "SOLVE g vc", "SOLVE g VC extra", "SOLVEALL", "MSO g",
      "MSO g ex9 x: e(x, x)", "SAVE", "OPEN g", "STATS g extra", "CLOSE",
      "QUIT now", "load g SIG e/2", "  LOAD  x  SIG  e/2  ", "DATA x",
      "OK LOAD", "ERR E_PARSE x", std::string(4096, 'A'),
      std::string("LOAD g SIG e/2 FACTS ") + std::string(512, '('),
  };
  for (const std::string& line : corpus) {
    std::string out;
    EXPECT_TRUE(server.HandleLine(line, &out)) << line;
    if (!out.empty()) {
      EXPECT_TRUE(out.rfind("OK ", 0) == 0 || out.rfind("ERR ", 0) == 0)
          << line << " -> " << out;
    }
  }

  // Then raw fuzz: deterministic random byte soup (no '\n', no leading '%').
  Rng rng(TestSeed());
  for (int i = 0; i < 300; ++i) {
    std::string line;
    size_t length = rng.UniformIndex(64);
    for (size_t j = 0; j < length; ++j) {
      line.push_back(static_cast<char>(rng.UniformInt(1, 126)));
    }
    std::string out;
    bool keep_going = server.HandleLine(line, &out);
    if (!keep_going) continue;  // a lucky "QUIT" draw is still a valid reply
    if (!out.empty()) {
      EXPECT_TRUE(out.rfind("OK ", 0) == 0 || out.rfind("ERR ", 0) == 0)
          << "line " << i << " -> " << out;
    }
  }

  // The driver is still coherent after the fuzz pass.
  EXPECT_NE(Reply(&server, "SOLVE g VC").find("optimum=2"), std::string::npos);
  EXPECT_NE(Reply(&server, "STATS").find("OK STATS"), std::string::npos);
}

TEST(ProtocolTest, ParsesReoptAndRejectsBadUnits) {
  auto reopt = ParseRequest("REOPT g 64");
  ASSERT_TRUE(reopt.ok()) << reopt.status();
  const auto* request = std::get_if<ReoptRequest>(&reopt.value().value());
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->tenant, "g");
  EXPECT_EQ(request->units, 64u);

  for (const char* line : {"REOPT", "REOPT g", "REOPT g ten", "REOPT g -5",
                           "REOPT g 64 extra", "REOPT g 99999999999999999999",
                           "REOPT g 64.5"}) {
    auto bad = ParseRequest(line);
    EXPECT_FALSE(bad.ok()) << line;
  }
}

TEST(ServerTest, ReoptImprovesSessionAndPreservesAnswers) {
  Server server(QuietOptions());
  // A 4x4 grid tenant: enough structure for the local search to have room.
  std::string facts;
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (c + 1 < 4) {
        facts += "e(v" + std::to_string(r) + std::to_string(c) + ", v" +
                 std::to_string(r) + std::to_string(c + 1) + "). ";
      }
      if (r + 1 < 4) {
        facts += "e(v" + std::to_string(r) + std::to_string(c) + ", v" +
                 std::to_string(r + 1) + std::to_string(c) + "). ";
      }
    }
  }
  ASSERT_NE(Reply(&server, "LOAD grid SIG e/2 FACTS " + facts).find("OK LOAD"),
            std::string::npos);
  std::string before = Reply(&server, "SOLVEALL grid");

  EXPECT_EQ(Reply(&server, "REOPT nope 8").rfind("ERR E_TENANT ", 0), 0u);
  std::string reopt = Reply(&server, "REOPT grid 32");
  EXPECT_EQ(reopt.rfind("OK REOPT tenant=grid", 0), 0u) << reopt;
  EXPECT_NE(reopt.find("width_before="), std::string::npos) << reopt;
  EXPECT_NE(reopt.find("rounds="), std::string::npos) << reopt;

  // Budget exhaustion is the normal stop, never an error, and the swap (if
  // any) must not change a single answer.
  std::string after = Reply(&server, "SOLVEALL grid");
  EXPECT_EQ(before, after);

  // The whole exchange is deterministic: a fresh server reproduces the REOPT
  // reply byte for byte.
  Server replay(QuietOptions());
  ASSERT_NE(Reply(&replay, "LOAD grid SIG e/2 FACTS " + facts).find("OK LOAD"),
            std::string::npos);
  ASSERT_NE(Reply(&replay, "SOLVEALL grid").find("OK SOLVEALL"),
            std::string::npos);
  EXPECT_EQ(Reply(&replay, "REOPT nope 8"), Reply(&server, "REOPT nope 8"));
  EXPECT_EQ(Reply(&replay, "REOPT grid 32"), reopt);
}

TEST(ServerTest, ReoptZeroUnitsIsANoOp) {
  Server server(QuietOptions());
  ASSERT_NE(Reply(&server, kTriangleLoad).find("OK LOAD"), std::string::npos);
  std::string reopt = Reply(&server, "REOPT g 0");
  EXPECT_EQ(reopt.rfind("OK REOPT tenant=g", 0), 0u) << reopt;
  EXPECT_NE(reopt.find("rounds=0"), std::string::npos) << reopt;
  EXPECT_NE(Reply(&server, "SOLVE g VC").find("optimum=2"), std::string::npos);
}

}  // namespace
}  // namespace treedl::server
