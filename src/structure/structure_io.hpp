// Text and binary serialization for structures.
//
// Text format (one item per line; '%' starts a comment):
//   pred(arg1, arg2).     — a ground fact; elements are interned on sight
//   element(name).        — declares an isolated element (no facts needed)
// The signature must be supplied by the caller; facts referencing unknown
// predicates are parse errors.
//
// The binary form is self-contained (signature, element names, relations) and
// preserves element/predicate ids exactly; it is the leaf encoding of the
// engine's session files (docs/SESSION_FORMAT.md).
#ifndef TREEDL_STRUCTURE_STRUCTURE_IO_HPP_
#define TREEDL_STRUCTURE_STRUCTURE_IO_HPP_

#include <string>

#include "common/binary_io.hpp"
#include "common/status.hpp"
#include "structure/structure.hpp"

namespace treedl {

/// Parses `text` into a structure over `signature`.
StatusOr<Structure> ParseStructure(const Signature& signature,
                                   const std::string& text);

/// Renders all facts (and isolated elements) in the parse format above.
std::string FormatStructure(const Structure& structure);

/// Appends the binary encoding of `structure` (signature + domain +
/// relations, ids preserved) to `writer`.
void SerializeStructure(const Structure& structure, BinaryWriter* writer);

/// Inverse of SerializeStructure. Every length and id is bounds-checked; a
/// corrupted input yields an error Status, never a crash.
StatusOr<Structure> DeserializeStructure(BinaryReader* reader);

}  // namespace treedl

#endif  // TREEDL_STRUCTURE_STRUCTURE_IO_HPP_
