// Datalog runner: evaluate a program against a fact base with any of the
// three engines and print the derived facts.
//
// Usage: datalog_repl [program.dl facts.txt [naive|seminaive|grounded]]
// Without arguments, runs a built-in transitive-closure demo.
//
// A thin client of the serving layer: the program and facts become LOAD +
// QUERY lines of the server protocol (server/protocol.hpp), executed by an
// in-process treedl::server::Server — what this prints is exactly what a
// treedl_server transcript would contain, plus a human-readable program
// summary.
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/status.hpp"
#include "common/string_util.hpp"
#include "datalog/analysis.hpp"
#include "datalog/parser.hpp"
#include "server/server.hpp"

namespace {

constexpr const char* kDemoProgram = R"(
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
cyclic(X) :- path(X, X).
)";

constexpr const char* kDemoFacts = R"(
edge(a, b). edge(b, c). edge(c, d). edge(d, b).
)";

treedl::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return treedl::Status::NotFound("cannot read file '" + path + "'");
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Protocol requests are one line each: strip '%' comments (which run to end
// of line and would swallow the rest of a flattened payload), then join the
// remaining lines with spaces.
std::string FlattenPayload(const std::string& text) {
  std::string flat;
  for (const std::string& line : treedl::Split(text, '\n')) {
    std::string_view piece(line);
    size_t comment = piece.find('%');
    if (comment != std::string_view::npos) piece = piece.substr(0, comment);
    piece = treedl::Trim(piece);
    if (piece.empty()) continue;
    if (!flat.empty()) flat += ' ';
    flat += piece;
  }
  return flat;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace treedl;
  using namespace treedl::datalog;

  std::string program_text = kDemoProgram;
  std::string facts_text = kDemoFacts;
  std::string engine = "seminaive";
  if (argc == 2) {
    std::cerr << "usage: datalog_repl [program.dl facts.txt "
                 "[naive|seminaive|grounded]]\n";
    return 1;
  }
  if (argc >= 3) {
    auto program_file = ReadFile(argv[1]);
    if (!program_file.ok()) {
      std::cerr << "datalog_repl: " << program_file.status() << "\n";
      return 1;
    }
    auto facts_file = ReadFile(argv[2]);
    if (!facts_file.ok()) {
      std::cerr << "datalog_repl: " << facts_file.status() << "\n";
      return 1;
    }
    program_text = std::move(program_file).value();
    facts_text = std::move(facts_file).value();
  }
  if (argc >= 4) engine = argv[3];

  // Client-side parse: print the program summary and derive the EDB
  // signature (extensional predicates) for the LOAD request.
  auto program = ParseProgram(program_text);
  if (!program.ok()) {
    std::cerr << "program parse error: " << program.status() << "\n";
    return 1;
  }
  auto info = AnalyzeProgram(*program);
  if (!info.ok()) {
    std::cerr << "program analysis error: " << info.status() << "\n";
    return 1;
  }
  std::string load_line = "LOAD repl SIG";
  size_t edb_predicates = 0;
  for (PredicateId p = 0; p < program->signature().size(); ++p) {
    if (info->intensional[static_cast<size_t>(p)]) continue;
    load_line += " " + program->signature().name(p) + "/" +
                 std::to_string(program->signature().arity(p));
    ++edb_predicates;
  }
  if (edb_predicates == 0) {
    std::cerr << "datalog_repl: program has no extensional predicates\n";
    return 1;
  }
  std::string facts_flat = FlattenPayload(facts_text);
  if (!facts_flat.empty()) load_line += " FACTS " + facts_flat;

  std::cout << "Program (" << program->NumRules() << " rules, "
            << (info->is_monadic ? "monadic" : "non-monadic") << ", "
            << (CheckQuasiGuarded(*program).ok() ? "quasi-guarded"
                                                 : "not quasi-guarded")
            << "):\n"
            << program->ToString() << "\n";

  // The server executes the transcript; the backend is an option, not a
  // different API.
  server::ServerOptions options;
  options.engine_options.backend =
      engine == "naive"      ? DatalogBackend::kNaive
      : engine == "grounded" ? DatalogBackend::kGrounded
                             : DatalogBackend::kSemiNaive;
  server::Server session(options);
  std::istringstream requests(load_line + "\nQUERY repl " +
                              FlattenPayload(program_text) + "\nQUIT\n");
  std::cout << "Transcript (" << engine << "):\n";
  session.Serve(requests, std::cout);
  return session.stats().replies_error == 0 ? 0 : 1;
}
