// The PRIMALITY enumeration algorithm of §5.3: compute *all* prime attributes
// in linear time via one bottom-up pass (solve) and one top-down pass
// (solve↓), reading prime(a) off at the leaves. The naive alternative — one
// §5.2 decision run per attribute with the decomposition re-rooted each time
// — is quadratic and provided as the baseline the section argues against.
#ifndef TREEDL_CORE_PRIMALITY_ENUM_HPP_
#define TREEDL_CORE_PRIMALITY_ENUM_HPP_

#include <vector>

#include "common/status.hpp"
#include "core/tree_dp.hpp"
#include "engine/run_stats.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl::core {

/// Membership vector of prime attributes, two-pass linear algorithm. The
/// preparation flow runs as a named pass pipeline: validate → rhs-closure →
/// normalize (enumeration form: leaf coverage + branch copies).
StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            const SchemaEncoding& encoding,
                                            const TreeDecomposition& td,
                                            RunStats* stats = nullptr);

/// Deprecated shim: forwards into the RunStats form.
StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            const SchemaEncoding& encoding,
                                            const TreeDecomposition& td,
                                            DpStats* stats);

/// Deprecated convenience: re-encodes and re-decomposes per call (one-shot
/// treedl::Engine); batch callers should hold an Engine instead.
StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            RunStats* stats = nullptr);
StatusOr<std::vector<bool>> EnumeratePrimes(const Schema& schema,
                                            DpStats* stats);

/// The quadratic baseline: one decision run per attribute ("obviously, this
/// method has quadratic time complexity" — §5.3).
StatusOr<std::vector<bool>> EnumeratePrimesQuadratic(
    const Schema& schema, const SchemaEncoding& encoding,
    const TreeDecomposition& td);

}  // namespace treedl::core

#endif  // TREEDL_CORE_PRIMALITY_ENUM_HPP_
