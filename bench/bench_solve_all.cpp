// The SolveAll fusion win: five independent Solve traversals vs one fused
// MultiDp traversal over the same cached normal form, sequential and
// sharded-parallel, plus the SaveSession/LoadSession cost next to the
// artifact-build cost it amortizes away.
//
// Caches are warmed before timing, so the Solve-vs-SolveAll rows compare
// pure traversal work. The per-bag transition work is identical either way;
// the fused walk saves the per-traversal overhead (post-order walk, shard
// scheduling, table allocation churn) and, more importantly for the serving
// story, turns five queue round-trips into one.
#include <cstdio>
#include <string>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"

namespace treedl {
namespace {

constexpr size_t kVertices = 2000;
constexpr int kTreewidth = 5;
constexpr double kKeepProbability = 0.55;
constexpr uint64_t kSeed = 20260727;
constexpr int kRepeats = 5;

constexpr Engine::Problem kAllProblems[] = {
    Engine::Problem::kThreeColor,      Engine::Problem::kThreeColorCount,
    Engine::Problem::kVertexCover,     Engine::Problem::kIndependentSet,
    Engine::Problem::kDominatingSet,
};

void BenchOneThreadCount(const Graph& graph, size_t num_threads) {
  EngineOptions options;
  options.num_threads = num_threads;
  options.extract_witness = false;  // time the DPs, not witness walks
  Engine engine = Engine::FromGraph(graph, options);
  TREEDL_CHECK(engine.Width().ok());  // warm: build TD + normal form once

  double solve_millis = 0;
  double solve_all_millis = 0;
  size_t solve_traversals = 0;
  size_t fused_traversals = 0;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    {
      Timer timer;
      for (Engine::Problem problem : kAllProblems) {
        RunStats run;
        auto result = engine.Solve(problem, &run);
        TREEDL_CHECK(result.ok()) << result.status();
        solve_traversals += run.dp_traversals;
      }
      solve_millis += timer.ElapsedMillis();
    }
    {
      Timer timer;
      RunStats run;
      auto result = engine.SolveAll(&run);
      TREEDL_CHECK(result.ok()) << result.status();
      fused_traversals += run.dp_traversals;
      solve_all_millis += timer.ElapsedMillis();
    }
  }
  std::printf(
      "  threads=%zu  5xSolve: %8.2f ms (%zu traversals)   SolveAll: %8.2f "
      "ms (%zu traversals)   ratio %.2fx\n",
      num_threads, solve_millis / kRepeats, solve_traversals / kRepeats,
      solve_all_millis / kRepeats, fused_traversals / kRepeats,
      solve_millis / solve_all_millis);
}

void BenchSessionIo(const Graph& graph) {
  EngineOptions options;
  options.num_threads = 1;
  const std::string path = "bench_solve_all_session.tdls";

  Engine warm = Engine::FromGraph(graph, options);
  Timer build_timer;
  TREEDL_CHECK(warm.Solve(Engine::Problem::kVertexCover).ok());
  double build_millis = build_timer.ElapsedMillis();

  Timer save_timer;
  RunStats save_run;
  TREEDL_CHECK(warm.SaveSession(path, &save_run).ok());
  double save_millis = save_timer.ElapsedMillis();

  Engine cold = Engine::FromGraph(graph, options);
  Timer load_timer;
  RunStats load_run;
  TREEDL_CHECK(cold.LoadSession(path, &load_run).ok());
  double load_millis = load_timer.ElapsedMillis();
  std::remove(path.c_str());

  std::printf(
      "  session IO: first-query build %.2f ms | save %zu artifacts %.2f ms "
      "| load+validate %.2f ms (amortizes the build on every restart)\n",
      build_millis, save_run.artifact_saves, save_millis, load_millis);
}

void RunSolveAllBench() {
  Rng rng(kSeed);
  Graph graph = RandomPartialKTree(kVertices, kTreewidth, kKeepProbability,
                                   &rng);
  std::printf(
      "SolveAll fusion: partial %d-tree, n=%zu, keep=%.2f, %d repeats\n",
      kTreewidth, kVertices, kKeepProbability, kRepeats);
  for (size_t threads : {size_t{1}, size_t{4}}) {
    BenchOneThreadCount(graph, threads);
  }
  BenchSessionIo(graph);
}

}  // namespace
}  // namespace treedl

int main() {
  treedl::RunSolveAllBench();
  return 0;
}
