// Wall-clock stopwatch used by the benchmark harnesses.
#ifndef TREEDL_COMMON_TIMER_HPP_
#define TREEDL_COMMON_TIMER_HPP_

#include <chrono>

namespace treedl {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace treedl

#endif  // TREEDL_COMMON_TIMER_HPP_
