// Configuration of a treedl::Engine session.
#ifndef TREEDL_ENGINE_OPTIONS_HPP_
#define TREEDL_ENGINE_OPTIONS_HPP_

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "mso2dl/mso_to_datalog.hpp"
#include "td/heuristics.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

class ThreadPool;
class WorkBudget;

/// Which datalog fixpoint engine serves EvaluateDatalog / EvaluateMso.
enum class DatalogBackend {
  kNaive,      // reference oracle: re-derives everything each round
  kSemiNaive,  // delta-driven (the general default)
  kGrounded,   // Thm 4.4 two-phase ground + LTUR (quasi-guarded programs only)
};

const char* DatalogBackendName(DatalogBackend backend);

/// How EvaluateMso answers: compile through Thm 4.5 into the datalog backend
/// (linear data complexity, exponential compile in rank/width), or evaluate
/// directly by quantifier expansion (exponential data complexity — the MONA
/// stand-in role).
enum class MsoStrategy {
  kCompileToDatalog,
  kDirect,
};

struct EngineOptions {
  /// Elimination heuristic for the session decomposition.
  TdHeuristic heuristic = TdHeuristic::kMinFill;
  /// Custom elimination order (a permutation of the Gaifman-graph vertices).
  /// When set, overrides `heuristic`.
  std::optional<std::vector<VertexId>> elimination_order;
  /// Caller-supplied decomposition of the session structure. When set,
  /// overrides both `heuristic` and `elimination_order` (validated on first
  /// use unless `validate` is off).
  std::optional<TreeDecomposition> decomposition;
  /// Build the session decomposition with the full quality pipeline
  /// (td/improve.hpp DecomposePipeline: safe preprocessing reductions →
  /// multi-start tie-broken min-fill → splice-back → width reduction,
  /// seeded by the session fingerprint) instead of the single `heuristic`
  /// order, and run the width-reduction pass ahead of normalization. The
  /// result's width is never worse than the plain kMinFill decomposition.
  /// Opt-in (default off) because the default decomposition — and every
  /// transcript and bench baseline pinned to it — must stay byte-identical.
  /// Ignored when `decomposition` or `elimination_order` is set.
  bool td_pipeline = false;
  /// Multi-start restarts the pipeline tries (td_pipeline only).
  size_t td_pipeline_starts = 8;
  /// Validate the decomposition once after construction (§2.2 conditions).
  /// Queries then reuse the validated decomposition without re-checking.
  bool validate = true;
  /// Datalog backend for EvaluateDatalog and compiled MSO queries.
  DatalogBackend backend = DatalogBackend::kSemiNaive;
  /// MSO evaluation route.
  MsoStrategy mso_strategy = MsoStrategy::kCompileToDatalog;
  /// Budgets for the Thm 4.5 MSO-to-datalog construction.
  mso2dl::Mso2DlOptions mso_options;
  /// Budget for MsoStrategy::kDirect (0 = unlimited).
  uint64_t mso_direct_work_budget = 0;
  /// Extract a witness (e.g. an actual coloring) from Solve when available.
  bool extract_witness = true;
  /// Record per-pass wall-clock timings into RunStats::passes.
  bool collect_pass_timings = false;
  /// Worker threads for the session's shared work-stealing pool: the
  /// bag-sharded tree DP behind Solve/SolveAll, the two sharded passes of
  /// the AllPrimes enumeration, and the rule-level parallel semi-naive
  /// datalog fixpoint. 0 = hardware concurrency (the default); 1 = the
  /// sequential behavior (no thread pool, no sharding pass). Answers are
  /// bit-identical at every setting.
  size_t num_threads = 0;
  /// Non-owning work-stealing pool shared with other sessions. When set, the
  /// session runs its parallel work on this pool instead of creating its own
  /// and the resolved thread count is the pool's (`num_threads` is ignored) —
  /// this is how the serving layer keeps N concurrent sessions on one pool.
  /// The pool must outlive the Engine.
  ThreadPool* shared_pool = nullptr;
  /// Shard tasks per worker thread the ShardBags pass aims for (more shards
  /// = better load balance, more scheduling overhead).
  size_t shards_per_thread = 4;
  /// Soft ceiling, in bytes, on live DP state-table memory for Solve /
  /// SolveAll. 0 (default) keeps every bag's table alive until the query
  /// ends — today's behavior. Any positive value enables dead-table
  /// eviction: a bag's table is released as soon as the traversal has
  /// consumed it, so peak table memory tracks the traversal frontier instead
  /// of the whole decomposition (RunStats::dp_peak_table_bytes /
  /// dp_tables_evicted report the effect). Answers are unaffected; passes
  /// that must re-read interior tables (witness extraction) are exempted
  /// automatically.
  size_t table_memory_budget = 0;
  /// Non-owning cooperative cancellation/deadline budget applied to every
  /// query this session runs (per-call budget arguments override it). The
  /// budget counts deterministic logical work units — DP nodes processed,
  /// fixpoint rule tasks — so a deadline trips at the same unit on every
  /// thread count; it can also carry a hard live-table byte cap
  /// (kResourceExhausted on overrun). Must outlive the Engine.
  WorkBudget* work_budget = nullptr;
};

}  // namespace treedl

#endif  // TREEDL_ENGINE_OPTIONS_HPP_
