// Ablation: the f(w) factor of Cor 4.6 / Thm 5.3. At fixed data size, the
// PRIMALITY DP's state count and runtime grow steeply with the width of the
// decomposition (FD-window schemas of increasing window).
//
// Flags: --quick replaces the PRIMALITY timing sweep with the deterministic
// decomposition-quality sweep alone (for CI); --json <path> writes the
// quality counters: plain min-fill vs the full pipeline on every instance's
// Gaifman graph — total widths, regressions (must be zero: the pipeline
// keeps the legacy candidate as a fallback), and how often the modeled DP
// cost (Normalize + EstimateNodeCost) strictly improved.
#include <cstdio>
#include <cstring>

#include "common/timer.hpp"
#include "engine/engine.hpp"
#include "graph/gaifman.hpp"
#include "schema/encode.hpp"
#include "schema/generators.hpp"
#include "td/heuristics.hpp"
#include "td/improve.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  bool quick = false;
  const char* json_path = nullptr;
};

constexpr int kWindows[] = {2, 3, 4, 5, 6};
constexpr int kVariants = 3;  // seed variants per window

/// Deterministic baseline-vs-pipeline totals over the instance family.
struct QualityTotals {
  size_t instances = 0;
  size_t baseline_width = 0;  // plain kMinFill, the PR 9 decomposition
  size_t pipeline_width = 0;
  size_t width_improved = 0;    // pipeline width strictly below baseline
  size_t width_regressions = 0; // pipeline width above baseline (must be 0)
  size_t cost_improved = 0;     // modeled DP cost strictly below baseline
  uint64_t baseline_cost = 0;   // Σ NormalizedDpCost
  uint64_t pipeline_cost = 0;
  size_t pipeline_wins = 0;     // instances where the pipeline candidate shipped
  size_t eliminated = 0;        // vertices removed by preprocessing
  size_t merges = 0;            // width-reduction bag merges
};

Graph InstanceGaifman(int window, int variant) {
  Rng rng(static_cast<uint64_t>(window) * 31 + 5 +
          static_cast<uint64_t>(variant) * 7919);
  Schema schema = RandomWindowSchema(36, 24, window, &rng);
  SchemaEncoding encoding = EncodeSchema(schema);
  return GaifmanGraph(encoding.structure);
}

QualityTotals CollectTotals() {
  QualityTotals totals;
  for (int window : kWindows) {
    for (int variant = 0; variant < kVariants; ++variant) {
      Graph graph = InstanceGaifman(window, variant);

      auto baseline = Decompose(graph, TdHeuristic::kMinFill);
      TREEDL_CHECK(baseline.ok()) << baseline.status();
      uint64_t baseline_cost = NormalizedDpCost(*baseline).value();

      PipelineOptions popts;
      popts.seed = static_cast<uint64_t>(window) * 1000 +
                   static_cast<uint64_t>(variant);
      PipelineStats stats;
      auto pipeline = DecomposePipeline(graph, popts, &stats);
      TREEDL_CHECK(pipeline.ok()) << pipeline.status();
      uint64_t pipeline_cost = NormalizedDpCost(*pipeline).value();

      ++totals.instances;
      totals.baseline_width += static_cast<size_t>(baseline->Width());
      totals.pipeline_width += static_cast<size_t>(pipeline->Width());
      if (pipeline->Width() < baseline->Width()) ++totals.width_improved;
      if (pipeline->Width() > baseline->Width()) ++totals.width_regressions;
      if (pipeline_cost < baseline_cost) ++totals.cost_improved;
      totals.baseline_cost += baseline_cost;
      totals.pipeline_cost += pipeline_cost;
      totals.pipeline_wins += stats.used_pipeline ? 1 : 0;
      totals.eliminated += stats.eliminated;
      totals.merges += stats.merges;
    }
  }
  // The acceptance bar of the decomposition-quality pipeline: width never
  // regresses on any instance, and the modeled DP cost strictly improves on
  // at least 30% of the family.
  TREEDL_CHECK(totals.width_regressions == 0);
  TREEDL_CHECK(totals.cost_improved * 10 >= totals.instances * 3);
  return totals;
}

void WriteJson(const BenchConfig& config, const QualityTotals& totals) {
  FILE* out = std::fopen(config.json_path, "w");
  TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"width_sweep\",\n"
               "  \"num_attributes\": 36,\n"
               "  \"num_fds\": 24,\n"
               "  \"instances\": %zu,\n"
               "  \"baseline_width_total\": %zu,\n"
               "  \"pipeline_width_total\": %zu,\n"
               "  \"width_improved\": %zu,\n"
               "  \"width_regressions\": %zu,\n"
               "  \"cost_improved\": %zu,\n"
               "  \"baseline_cost_total\": %llu,\n"
               "  \"pipeline_cost_total\": %llu,\n"
               "  \"pipeline_wins\": %zu,\n"
               "  \"eliminated_vertices\": %zu,\n"
               "  \"width_reduce_merges\": %zu\n"
               "}\n",
               totals.instances, totals.baseline_width, totals.pipeline_width,
               totals.width_improved, totals.width_regressions,
               totals.cost_improved,
               static_cast<unsigned long long>(totals.baseline_cost),
               static_cast<unsigned long long>(totals.pipeline_cost),
               totals.pipeline_wins, totals.eliminated, totals.merges);
  std::fclose(out);
  std::printf("  wrote %s\n", config.json_path);
}

void RunQualitySweep(const BenchConfig& config) {
  QualityTotals totals = CollectTotals();
  std::printf("Decomposition quality: min-fill baseline vs pipeline\n");
  std::printf("(%zu FD-window Gaifman graphs, 36 attrs, 24 FDs)\n",
              totals.instances);
  std::printf(
      "  width: baseline %zu -> pipeline %zu (improved on %zu, regressed on "
      "%zu)\n",
      totals.baseline_width, totals.pipeline_width, totals.width_improved,
      totals.width_regressions);
  std::printf(
      "  modeled DP cost: baseline %llu -> pipeline %llu (improved on "
      "%zu/%zu)\n",
      static_cast<unsigned long long>(totals.baseline_cost),
      static_cast<unsigned long long>(totals.pipeline_cost),
      totals.cost_improved, totals.instances);
  std::printf("  reductions: %zu vertices eliminated, %zu bag merges\n",
              totals.eliminated, totals.merges);
  if (config.json_path != nullptr) WriteJson(config, totals);
}

void RunWidthSweep() {
  std::printf("PRIMALITY DP cost vs decomposition width (fixed ~36 attrs)\n");
  std::printf("%7s %6s %10s %14s %14s\n", "window", "width", "time ms",
              "total states", "max/node");
  for (int window : {2, 3, 4, 5, 6}) {
    Rng rng(static_cast<uint64_t>(window) * 31 + 5);
    Schema schema = RandomWindowSchema(36, 24, window, &rng);
    Engine engine(schema);
    int width = engine.Width().value_or(-1);
    Timer timer;
    RunStats run;
    auto primes = engine.AllPrimes(&run);
    double ms = timer.ElapsedMillis();
    TREEDL_CHECK(primes.ok()) << primes.status();
    std::printf("%7d %6d %10.2f %14zu %14zu\n", window, width, ms,
                run.dp_states, run.dp_max_states_per_node);
  }
  std::printf("\n(time and states grow exponentially in the width — the f(w) "
              "of Cor 4.6 —\n while Table 1 shows linear growth in the data "
              "at fixed width)\n");
}

}  // namespace
}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  if (!config.quick) treedl::RunWidthSweep();
  if (config.quick || config.json_path != nullptr) {
    treedl::RunQualitySweep(config);
  }
  return 0;
}
