#include "schema/closure.hpp"

#include <deque>

#include "common/logging.hpp"

namespace treedl {

AttrSet EmptyAttrSet(const Schema& schema) {
  return AttrSet(static_cast<size_t>(schema.NumAttributes()), false);
}

AttrSet FullAttrSet(const Schema& schema) {
  return AttrSet(static_cast<size_t>(schema.NumAttributes()), true);
}

AttrSet MakeAttrSet(const Schema& schema,
                    const std::vector<AttributeId>& attrs) {
  AttrSet set = EmptyAttrSet(schema);
  for (AttributeId a : attrs) {
    TREEDL_CHECK(a >= 0 && a < schema.NumAttributes());
    set[static_cast<size_t>(a)] = true;
  }
  return set;
}

AttrSet Closure(const Schema& schema, const AttrSet& x) {
  TREEDL_CHECK(x.size() == static_cast<size_t>(schema.NumAttributes()));
  // missing[f] = number of lhs attributes of f not yet derived; when it hits
  // zero the rhs becomes derived. Each FD and attribute is touched O(1) times.
  std::vector<int> missing(static_cast<size_t>(schema.NumFds()));
  std::vector<std::vector<FdId>> watchers(
      static_cast<size_t>(schema.NumAttributes()));
  AttrSet derived = x;
  std::deque<AttributeId> queue;
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    if (derived[static_cast<size_t>(a)]) queue.push_back(a);
  }
  for (FdId f = 0; f < schema.NumFds(); ++f) {
    const auto& fd = schema.Fd(f);
    int need = 0;
    for (AttributeId a : fd.lhs) {
      if (!derived[static_cast<size_t>(a)]) {
        ++need;
        watchers[static_cast<size_t>(a)].push_back(f);
      }
    }
    missing[static_cast<size_t>(f)] = need;
    if (need == 0 && !derived[static_cast<size_t>(fd.rhs)]) {
      derived[static_cast<size_t>(fd.rhs)] = true;
      queue.push_back(fd.rhs);
    }
  }
  while (!queue.empty()) {
    AttributeId a = queue.front();
    queue.pop_front();
    for (FdId f : watchers[static_cast<size_t>(a)]) {
      if (--missing[static_cast<size_t>(f)] == 0) {
        AttributeId rhs = schema.Fd(f).rhs;
        if (!derived[static_cast<size_t>(rhs)]) {
          derived[static_cast<size_t>(rhs)] = true;
          queue.push_back(rhs);
        }
      }
    }
  }
  return derived;
}

bool IsClosed(const Schema& schema, const AttrSet& x) {
  return Closure(schema, x) == x;
}

bool IsSuperkey(const Schema& schema, const AttrSet& x) {
  AttrSet closure = Closure(schema, x);
  for (bool in : closure) {
    if (!in) return false;
  }
  return true;
}

bool IsKey(const Schema& schema, const AttrSet& x) {
  if (!IsSuperkey(schema, x)) return false;
  for (size_t a = 0; a < x.size(); ++a) {
    if (!x[a]) continue;
    AttrSet smaller = x;
    smaller[a] = false;
    if (IsSuperkey(schema, smaller)) return false;
  }
  return true;
}

std::vector<AttrSet> AllKeysBruteForce(const Schema& schema) {
  size_t n = static_cast<size_t>(schema.NumAttributes());
  TREEDL_CHECK(n <= 20) << "brute-force key enumeration limited to 20 attrs";
  std::vector<AttrSet> keys;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    AttrSet x(n, false);
    for (size_t a = 0; a < n; ++a) x[a] = (mask >> a) & 1;
    if (IsKey(schema, x)) keys.push_back(std::move(x));
  }
  return keys;
}

}  // namespace treedl
