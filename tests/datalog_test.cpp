#include <gtest/gtest.h>

#include "datalog/analysis.hpp"
#include "datalog/eval.hpp"
#include "datalog/grounder.hpp"
#include "datalog/ltur.hpp"
#include "datalog/parser.hpp"
#include "datalog/tau_td.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "structure/structure_io.hpp"
#include "td/heuristics.hpp"

#include "test_util.hpp"

namespace treedl::datalog {
namespace {

// --- Parser ------------------------------------------------------------------

TEST(ParserTest, BasicRulesAndFacts) {
  auto program = ParseProgram(
      "edge(a, b). edge(b, c).\n"
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->NumRules(), 4u);
  EXPECT_EQ(program->signature().size(), 2);
  EXPECT_EQ(program->signature().arity(
                program->signature().PredicateIdOf("path").value()),
            2);
}

TEST(ParserTest, VariablesVsConstants) {
  auto program = ParseProgram("p(X) :- q(X, abc), r(_y, X).");
  ASSERT_TRUE(program.ok());
  const Rule& rule = program->rules()[0];
  EXPECT_TRUE(rule.body[0].atom.args[0].IsVar());
  EXPECT_FALSE(rule.body[0].atom.args[1].IsVar());
  EXPECT_EQ(rule.body[0].atom.args[1].constant, "abc");
  EXPECT_TRUE(rule.body[1].atom.args[0].IsVar());  // _y is a variable
}

TEST(ParserTest, NegationForms) {
  auto program = ParseProgram("p(X) :- q(X), not r(X).\np(X) :- q(X), \\+ s(X).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->rules()[0].body[1].positive);
  EXPECT_FALSE(program->rules()[1].body[1].positive);
}

TEST(ParserTest, ZeroArityAtoms) {
  auto program = ParseProgram("success :- root(V), good(V).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules()[0].head.args.size(), 0u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)").ok());        // missing '.'
  EXPECT_FALSE(ParseProgram("p(X, Y) :- p(X).").ok());    // arity clash
  EXPECT_FALSE(ParseProgram("p(X).").ok());               // non-ground fact
  EXPECT_FALSE(ParseProgram("p(X) :- .").ok());           // empty body
  EXPECT_FALSE(ParseProgram("1p(a).").ok());              // bad name
}

TEST(ParserTest, RoundTripThroughToString) {
  std::string text =
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n"
      "bad(X) :- node(X), not path(a, X).\n";
  auto p1 = ParseProgram(text);
  ASSERT_TRUE(p1.ok());
  auto p2 = ParseProgram(p1->ToString());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->ToString(), p2->ToString());
}

// --- Analysis ----------------------------------------------------------------

TEST(AnalysisTest, IntensionalClassificationAndMonadicity) {
  auto program = ParseProgram(
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n");
  ASSERT_TRUE(program.ok());
  auto info = AnalyzeProgram(*program);
  ASSERT_TRUE(info.ok());
  PredicateId reach = program->signature().PredicateIdOf("reach").value();
  PredicateId edge = program->signature().PredicateIdOf("edge").value();
  EXPECT_TRUE(info->intensional[static_cast<size_t>(reach)]);
  EXPECT_FALSE(info->intensional[static_cast<size_t>(edge)]);
  EXPECT_TRUE(info->is_monadic);

  auto binary = ParseProgram("path(X, Y) :- edge(X, Y).");
  EXPECT_FALSE(AnalyzeProgram(*binary)->is_monadic);
}

TEST(AnalysisTest, PlansOrderIntensionalLiteralsFirst) {
  // The recursive rule is written EDB-first, but the plan must schedule the
  // intensional literal at position 0: that is where the semi-naive engine's
  // delta literal has to sit for delta batching to split it into range
  // tasks.
  auto program = ParseProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Z) :- edge(X, Y), path(Y, Z).\n");
  ASSERT_TRUE(program.ok());
  auto info = AnalyzeProgram(*program);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->plans[1].size(), 2u);
  EXPECT_EQ(info->plans[1][0], 1u);  // path(Y, Z) scheduled first
  EXPECT_EQ(info->plans[1][1], 0u);

  // Fully-bound negatives still schedule ahead of intensional positives.
  auto negated = ParseProgram(
      "odd(Y) :- even(X), succ(X, Y).\n"
      "even(Y) :- odd(X), succ(X, Y), not blocked(Y).\n");
  ASSERT_TRUE(negated.ok());
  auto neg_info = AnalyzeProgram(*negated);
  ASSERT_TRUE(neg_info.ok());
  ASSERT_EQ(neg_info->plans[1].size(), 3u);
  EXPECT_EQ(neg_info->plans[1][0], 0u);  // odd(X): intensional, first
  EXPECT_EQ(neg_info->plans[1][1], 1u);  // succ binds Y
  EXPECT_EQ(neg_info->plans[1][2], 2u);  // negative filter last
}

TEST(AnalysisTest, RejectsUnsafeRules) {
  // Head variable not range-restricted.
  auto p1 = ParseProgram("p(Y) :- q(X).");
  EXPECT_FALSE(AnalyzeProgram(*p1).ok());
  // Negation over a variable never bound positively.
  auto p2 = ParseProgram("p(X) :- q(X), not r(X, Z).");
  EXPECT_FALSE(AnalyzeProgram(*p2).ok());
  // Negation of an intensional predicate.
  auto p3 = ParseProgram("p(X) :- q(X), not p(X).");
  EXPECT_FALSE(AnalyzeProgram(*p3).ok());
}

TEST(AnalysisTest, QuasiGuardDetection) {
  // The Thm 4.5 rule shapes: bag guards everything through child1/child2.
  auto program = ParseProgram(
      "theta(V) :- bag(V, X0, X1), child1(V1, V), theta2(V1), "
      "bag(V1, X0, X1).\n"
      "phi(X0) :- theta(V), theta2(V), bag(V, X0, X1).\n"
      "success :- root(V), theta(V).\n");
  ASSERT_TRUE(program.ok());
  auto guards = FindQuasiGuards(*program);
  ASSERT_TRUE(guards.ok()) << guards.status();
  EXPECT_TRUE(CheckQuasiGuarded(*program).ok());
}

TEST(AnalysisTest, NonQuasiGuardedDetected) {
  // Transitive closure: no single extensional atom covers both X and Y of the
  // recursive rule, and edge atoms carry no functional dependencies.
  auto program = ParseProgram(
      "path(X, Y) :- edge(X, Y).\n"
      "path(X, Y) :- edge(X, Z), path(Z, Y).\n");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(CheckQuasiGuarded(*program).ok());
}

// --- Evaluation ---------------------------------------------------------------

Structure PathEdb(size_t n) {
  Structure edb(Signature::GraphSignature());
  for (size_t i = 0; i < n; ++i) edb.AddElement("v" + std::to_string(i));
  for (size_t i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(edb.AddFact(0, {static_cast<ElementId>(i),
                                static_cast<ElementId>(i + 1)})
                    .ok());
  }
  return edb;
}

TEST(EvalTest, TransitiveClosureNaive) {
  auto program = ParseProgram(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Y) :- e(X, Z), path(Z, Y).\n");
  ASSERT_TRUE(program.ok());
  Structure edb = PathEdb(5);
  auto result = NaiveEvaluate(*program, edb);
  ASSERT_TRUE(result.ok()) << result.status();
  PredicateId path = result->signature().PredicateIdOf("path").value();
  // Path on 5 vertices: C(5,2) = 10 ordered reachable pairs.
  EXPECT_EQ(result->Relation(path).size(), 10u);
  EXPECT_TRUE(result->HasFact(path, {0, 4}));
  EXPECT_FALSE(result->HasFact(path, {4, 0}));
}

TEST(EvalTest, SemiNaiveMatchesNaive) {
  auto program = ParseProgram(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Y) :- e(X, Z), path(Z, Y).\n"
      "sink(X) :- e(X, X).\n");
  ASSERT_TRUE(program.ok());
  Rng rng(TestSeed());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGnp(8, 0.3, &rng);
    Structure edb = GraphToStructure(g);
    EvalStats naive_stats, semi_stats;
    auto naive = NaiveEvaluate(*program, edb, &naive_stats);
    auto semi = SemiNaiveEvaluate(*program, edb, &semi_stats);
    ASSERT_TRUE(naive.ok() && semi.ok());
    EXPECT_TRUE(*naive == *semi) << "trial " << trial;
    EXPECT_EQ(naive_stats.derived_facts, semi_stats.derived_facts);
  }
}

TEST(EvalTest, SemiNaiveDoesLessWorkThanNaive) {
  auto program = ParseProgram(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Y) :- e(X, Z), path(Z, Y).\n");
  Structure edb = PathEdb(30);
  EvalStats naive_stats, semi_stats;
  ASSERT_TRUE(NaiveEvaluate(*program, edb, &naive_stats).ok());
  ASSERT_TRUE(SemiNaiveEvaluate(*program, edb, &semi_stats).ok());
  EXPECT_LT(semi_stats.rule_applications, naive_stats.rule_applications);
}

TEST(EvalTest, NegationSemipositive) {
  auto program = ParseProgram(
      "node(X) :- e(X, Y).\n"
      "node(Y) :- e(X, Y).\n"
      "nonsource(Y) :- e(X, Y).\n"
      "source(X) :- node(X), not nonsource(X).\n");
  // source uses negation of an *intensional* predicate -> rejected.
  ASSERT_TRUE(program.ok());
  Structure edb = PathEdb(3);
  EXPECT_FALSE(SemiNaiveEvaluate(*program, edb).ok());

  // Rewritten with extensional negation only.
  auto ok_program = ParseProgram(
      "twohop(X, Z) :- e(X, Y), e(Y, Z), not e(X, Z).\n");
  auto result = SemiNaiveEvaluate(*ok_program, edb);
  ASSERT_TRUE(result.ok());
  PredicateId twohop = result->signature().PredicateIdOf("twohop").value();
  EXPECT_EQ(result->Relation(twohop).size(), 1u);  // v0 -> v2 only
}

TEST(EvalTest, ConstantsInRules) {
  auto program = ParseProgram(
      "from_v0(Y) :- e(v0, Y).\n"
      "self :- e(v1, v2).\n");
  Structure edb = PathEdb(3);
  auto result = SemiNaiveEvaluate(*program, edb);
  ASSERT_TRUE(result.ok());
  PredicateId from = result->signature().PredicateIdOf("from_v0").value();
  ASSERT_EQ(result->Relation(from).size(), 1u);
  PredicateId self = result->signature().PredicateIdOf("self").value();
  EXPECT_TRUE(result->HasFact(self, {}));
}

TEST(EvalTest, ArityClashWithEdbRejected) {
  auto program = ParseProgram("p(X) :- e(X).");  // e is binary in the EDB
  Structure edb = PathEdb(3);
  EXPECT_FALSE(SemiNaiveEvaluate(*program, edb).ok());
}

TEST(EvalTest, RepeatedVariablesInAtom) {
  auto program = ParseProgram("loop(X) :- e(X, X).");
  Structure edb(Signature::GraphSignature());
  ElementId a = edb.AddElement("a"), b = edb.AddElement("b");
  ASSERT_TRUE(edb.AddFact(0, {a, a}).ok());
  ASSERT_TRUE(edb.AddFact(0, {a, b}).ok());
  auto result = SemiNaiveEvaluate(*program, edb);
  ASSERT_TRUE(result.ok());
  PredicateId loop = result->signature().PredicateIdOf("loop").value();
  EXPECT_EQ(result->Relation(loop).size(), 1u);
  EXPECT_TRUE(result->HasFact(loop, {a}));
}

// --- LTUR ---------------------------------------------------------------------

TEST(LturTest, ChainDerivation) {
  // 0 (fact) -> 1 -> 2 -> 3; 4 unreachable.
  std::vector<HornClause> clauses{
      {0, {}}, {1, {0}}, {2, {1}}, {3, {2}}, {4, {3, 5}}};
  auto truth = LturSolve(6, clauses);
  EXPECT_TRUE(truth[0] && truth[1] && truth[2] && truth[3]);
  EXPECT_FALSE(truth[4]);
  EXPECT_FALSE(truth[5]);
}

TEST(LturTest, ConjunctionNeedsAllBodyAtoms) {
  std::vector<HornClause> clauses{{0, {}}, {2, {0, 1}}};
  EXPECT_FALSE(LturSolve(3, clauses)[2]);
  clauses.push_back({1, {}});
  EXPECT_TRUE(LturSolve(3, clauses)[2]);
}

TEST(LturTest, DuplicateBodyAtoms) {
  std::vector<HornClause> clauses{{0, {}}, {1, {0, 0}}};
  EXPECT_TRUE(LturSolve(2, clauses)[1]);
}

TEST(LturTest, CyclesDoNotSelfSupport) {
  // 0 <- 1, 1 <- 0: neither derivable without a fact.
  std::vector<HornClause> clauses{{0, {1}}, {1, {0}}};
  auto truth = LturSolve(2, clauses);
  EXPECT_FALSE(truth[0]);
  EXPECT_FALSE(truth[1]);
}

// --- Grounded evaluation (Thm 4.4) --------------------------------------------

// A small quasi-guarded program over τ_td facts built by hand: propagate a
// "good" marker bottom-up through a chain of nodes.
TEST(GroundedTest, MatchesSemiNaiveOnTauTdProgram) {
  std::string program_text =
      "good(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).\n"
      "good(V) :- bag(V, X0, X1), child1(V1, V), good(V1), "
      "bag(V1, Y0, Y1).\n"
      "success :- root(V), good(V).\n";
  auto program = ParseProgram(program_text);
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(CheckQuasiGuarded(*program).ok());

  // τ_td structure of a path graph's decomposition.
  Graph g = PathGraph(6);
  Structure a = GraphToStructure(g);
  auto raw = DecomposeStructure(a);
  ASSERT_TRUE(raw.ok());
  auto tuple_td = NormalizeTuple(*raw);
  ASSERT_TRUE(tuple_td.ok());
  auto atd = BuildTauTd(a, *tuple_td);
  ASSERT_TRUE(atd.ok()) << atd.status();

  auto semi = SemiNaiveEvaluate(*program, atd->structure);
  GroundingStats stats;
  auto grounded = GroundedEvaluate(*program, atd->structure, &stats);
  ASSERT_TRUE(semi.ok()) << semi.status();
  ASSERT_TRUE(grounded.ok()) << grounded.status();
  EXPECT_TRUE(*semi == *grounded);
  EXPECT_GT(stats.ground_clauses, 0u);
}

TEST(GroundedTest, RejectsNonQuasiGuarded) {
  auto program = ParseProgram(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Y) :- e(X, Z), path(Z, Y).\n");
  Structure edb = PathEdb(4);
  EXPECT_FALSE(GroundedEvaluate(*program, edb).ok());
}

TEST(GroundedTest, GroundProgramSizeLinearInData) {
  // Thm 4.4: ground instances per rule bounded by guard instantiations.
  std::string program_text =
      "good(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).\n"
      "good(V) :- bag(V, X0, X1), child1(V1, V), good(V1), "
      "bag(V1, Y0, Y1).\n";
  auto program = ParseProgram(program_text);
  size_t previous_clauses = 0;
  for (size_t n : {8u, 16u, 32u}) {
    Graph g = PathGraph(n);
    Structure a = GraphToStructure(g);
    auto tuple_td = NormalizeTuple(*DecomposeStructure(a));
    ASSERT_TRUE(tuple_td.ok());
    auto atd = BuildTauTd(a, *tuple_td);
    ASSERT_TRUE(atd.ok());
    GroundingStats stats;
    ASSERT_TRUE(GroundedEvaluate(*program, atd->structure, &stats).ok());
    // Clause count grows with n but stays well below quadratic.
    EXPECT_LT(stats.ground_clauses, 20 * n);
    EXPECT_GT(stats.ground_clauses, previous_clauses);
    previous_clauses = stats.ground_clauses;
  }
}

// --- τ_td encoding -------------------------------------------------------------

TEST(TauTdTest, EncodingShape) {
  Graph g = CycleGraph(5);
  Structure a = GraphToStructure(g);
  auto tuple_td = NormalizeTuple(*DecomposeStructure(a));
  ASSERT_TRUE(tuple_td.ok());
  auto atd = BuildTauTd(a, *tuple_td);
  ASSERT_TRUE(atd.ok());
  const Structure& s = atd->structure;
  EXPECT_EQ(s.NumElements(), a.NumElements() + tuple_td->NumNodes());
  PredicateId root_p = s.signature().PredicateIdOf("root").value();
  PredicateId leaf_p = s.signature().PredicateIdOf("leaf").value();
  PredicateId bag_p = s.signature().PredicateIdOf("bag").value();
  PredicateId child1_p = s.signature().PredicateIdOf("child1").value();
  PredicateId child2_p = s.signature().PredicateIdOf("child2").value();
  EXPECT_EQ(s.Relation(root_p).size(), 1u);
  EXPECT_EQ(s.Relation(bag_p).size(), tuple_td->NumNodes());
  EXPECT_EQ(s.signature().arity(bag_p), tuple_td->width() + 2);
  // Every non-root node is someone's first or second child.
  EXPECT_EQ(s.Relation(child1_p).size() + s.Relation(child2_p).size(),
            tuple_td->NumNodes() - 1);
  EXPECT_GE(s.Relation(leaf_p).size(), 1u);
}

TEST(TauTdTest, RejectsSignatureCollision) {
  Signature sig = Signature::Make({{"bag", 1}}).value();
  Structure a(sig);
  a.AddElement("x");
  ASSERT_TRUE(a.AddFact(0, {0}).ok());
  TreeDecomposition raw;
  raw.AddNode({0});
  auto tuple_td = NormalizeTuple(raw);
  ASSERT_TRUE(tuple_td.ok());
  EXPECT_FALSE(BuildTauTd(a, *tuple_td).ok());
}

}  // namespace
}  // namespace treedl::datalog
