#include "structure/signature.hpp"

namespace treedl {

StatusOr<Signature> Signature::Make(
    std::vector<std::pair<std::string, int>> predicates) {
  Signature sig;
  for (auto& [name, arity] : predicates) {
    TREEDL_ASSIGN_OR_RETURN([[maybe_unused]] PredicateId id,
                            sig.AddPredicate(name, arity));
  }
  return sig;
}

StatusOr<PredicateId> Signature::AddPredicate(const std::string& name,
                                              int arity) {
  if (name.empty()) {
    return Status::InvalidArgument("predicate name must be non-empty");
  }
  if (arity < 0) {
    return Status::InvalidArgument("predicate arity must be >= 0: " + name);
  }
  if (by_name_.count(name)) {
    return Status::AlreadyExists("predicate already declared: " + name);
  }
  PredicateId id = static_cast<PredicateId>(predicates_.size());
  predicates_.push_back(PredicateInfo{name, arity});
  by_name_.emplace(name, id);
  return id;
}

StatusOr<PredicateId> Signature::PredicateIdOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("unknown predicate: " + name);
  }
  return it->second;
}

Signature Signature::SchemaSignature() {
  auto sig = Make({{"fd", 1}, {"att", 1}, {"lh", 2}, {"rh", 2}});
  return std::move(sig).value();
}

Signature Signature::GraphSignature() {
  auto sig = Make({{"e", 2}});
  return std::move(sig).value();
}

bool Signature::operator==(const Signature& other) const {
  if (predicates_.size() != other.predicates_.size()) return false;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (predicates_[i].name != other.predicates_[i].name ||
        predicates_[i].arity != other.predicates_[i].arity) {
      return false;
    }
  }
  return true;
}

}  // namespace treedl
