#include "schema/encode.hpp"

#include "common/logging.hpp"

namespace treedl {

SchemaEncoding EncodeSchema(const Schema& schema) {
  Structure s(Signature::SchemaSignature());
  PredicateId fd_pred = s.signature().PredicateIdOf("fd").value();
  PredicateId att_pred = s.signature().PredicateIdOf("att").value();
  PredicateId lh_pred = s.signature().PredicateIdOf("lh").value();
  PredicateId rh_pred = s.signature().PredicateIdOf("rh").value();

  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    ElementId e = s.AddElement(schema.AttributeName(a));
    TREEDL_CHECK(e == static_cast<ElementId>(a));
    Status st = s.AddFact(att_pred, {e});
    TREEDL_CHECK(st.ok()) << st.ToString();
  }
  for (FdId f = 0; f < schema.NumFds(); ++f) {
    std::string name = "f" + std::to_string(f + 1);
    if (s.HasElementNamed(name)) name = "fd_" + std::to_string(f + 1);
    ElementId fe = s.AddElement(name);
    TREEDL_CHECK(fe == static_cast<ElementId>(schema.NumAttributes() + f));
    Status st = s.AddFact(fd_pred, {fe});
    TREEDL_CHECK(st.ok()) << st.ToString();
    for (AttributeId b : schema.Fd(f).lhs) {
      st = s.AddFact(lh_pred, {static_cast<ElementId>(b), fe});
      TREEDL_CHECK(st.ok()) << st.ToString();
    }
    st = s.AddFact(rh_pred, {static_cast<ElementId>(schema.Fd(f).rhs), fe});
    TREEDL_CHECK(st.ok()) << st.ToString();
  }
  return SchemaEncoding{std::move(s), schema.NumAttributes(), schema.NumFds()};
}

StatusOr<Schema> DecodeSchema(const Structure& structure) {
  const Signature& sig = structure.signature();
  TREEDL_ASSIGN_OR_RETURN(PredicateId fd_pred, sig.PredicateIdOf("fd"));
  TREEDL_ASSIGN_OR_RETURN(PredicateId att_pred, sig.PredicateIdOf("att"));
  TREEDL_ASSIGN_OR_RETURN(PredicateId lh_pred, sig.PredicateIdOf("lh"));
  TREEDL_ASSIGN_OR_RETURN(PredicateId rh_pred, sig.PredicateIdOf("rh"));

  Schema schema;
  std::unordered_map<ElementId, AttributeId> attr_of;
  for (const Tuple& t : structure.Relation(att_pred)) {
    attr_of.emplace(t[0], schema.AddAttribute(structure.ElementName(t[0])));
  }
  // Group lh/rh facts by FD element.
  std::unordered_map<ElementId, std::vector<AttributeId>> lhs_of;
  std::unordered_map<ElementId, AttributeId> rhs_of;
  for (const Tuple& t : structure.Relation(lh_pred)) {
    auto it = attr_of.find(t[0]);
    if (it == attr_of.end()) {
      return Status::InvalidArgument("lh references a non-attribute element");
    }
    lhs_of[t[1]].push_back(it->second);
  }
  for (const Tuple& t : structure.Relation(rh_pred)) {
    auto it = attr_of.find(t[0]);
    if (it == attr_of.end()) {
      return Status::InvalidArgument("rh references a non-attribute element");
    }
    if (!rhs_of.emplace(t[1], it->second).second) {
      return Status::InvalidArgument("FD with multiple rh attributes");
    }
  }
  for (const Tuple& t : structure.Relation(fd_pred)) {
    ElementId fe = t[0];
    auto rhs_it = rhs_of.find(fe);
    if (rhs_it == rhs_of.end()) {
      return Status::InvalidArgument("FD element without rh fact: " +
                                     structure.ElementName(fe));
    }
    TREEDL_ASSIGN_OR_RETURN(
        [[maybe_unused]] FdId id,
        schema.AddFd(lhs_of[fe], rhs_it->second));
  }
  return schema;
}

}  // namespace treedl
