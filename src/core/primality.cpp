#include "core/primality.hpp"

#include <variant>

#include "common/logging.hpp"
#include "core/primality_internal.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"

namespace treedl::core {

namespace {

using internal::PrimalityContext;
using internal::PrimJoinKey;
using internal::PrimState;

// Adapter plugging PrimalityContext into the generic RunTreeDp driver.
struct PrimalityProblem {
  using State = PrimState;
  using Value = std::monostate;
  using Emit = std::function<void(State, Value)>;

  const PrimalityContext* context;

  void Leaf(const std::vector<ElementId>& bag, const Emit& emit) const {
    context->LeafStates(bag, [&](PrimState s) { emit(std::move(s), {}); });
  }
  void Introduce(const std::vector<ElementId>& bag, ElementId e,
                 const State& s, const Value&, const Emit& emit) const {
    auto forward = [&](PrimState next) { emit(std::move(next), {}); };
    if (context->IsAttr(e)) {
      context->IntroduceAttr(bag, e, s, forward);
    } else {
      context->IntroduceFd(bag, e, s, forward);
    }
  }
  void Forget(const std::vector<ElementId>& bag, ElementId e, const State& s,
              const Value&, const Emit& emit) const {
    auto forward = [&](PrimState next) { emit(std::move(next), {}); };
    if (context->IsAttr(e)) {
      context->ForgetAttr(bag, e, s, forward);
    } else {
      context->ForgetFd(bag, e, s, forward);
    }
  }
  PrimJoinKey KeyOf(const State& s) const { return context->KeyOf(s); }
  void Join(const std::vector<ElementId>& /*bag*/, const State& a,
            const Value&, const State& b, const Value&,
            const Emit& emit) const {
    context->Join(a, b, [&](PrimState next) { emit(std::move(next), {}); });
  }
  Value Merge(const Value& a, const Value&) const { return a; }
};

}  // namespace

namespace internal {

bool DecidePrimePrepared(const PrimalityContext& context,
                         const NormalizedTreeDecomposition& ntd,
                         ElementId a_elem, RunStats* stats) {
  PrimalityProblem problem{&context};
  DpStats dp;
  auto table = RunTreeDp(ntd, &problem, &dp);
  if (stats != nullptr) {
    stats->dp_states += dp.total_states;
    stats->dp_max_states_per_node =
        std::max(stats->dp_max_states_per_node, dp.max_states_per_node);
  }
  const auto& bag = ntd.Bag(ntd.root());
  for (const auto& [state, value] : table.at(ntd.root())) {
    if (context.Accepts(bag, state, a_elem)) return true;
  }
  return false;
}

}  // namespace internal

StatusOr<bool> IsPrimeViaTd(const Schema& schema, const SchemaEncoding& encoding,
                            const TreeDecomposition& td, AttributeId a,
                            RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  if (a < 0 || a >= schema.NumAttributes()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  PrimalityContext context(schema, encoding);
  ElementId a_elem = encoding.AttrElement(a);

  engine::PipelineState state;
  state.structure = &encoding.structure;
  state.td = td;
  state.normalize_options =
      internal::PrimalityNormalizeOptions(encoding, /*for_enumeration=*/false);
  engine::PassPipeline pipeline;
  pipeline.Emplace<engine::ValidateStructurePass>()
      .Emplace<engine::RhsClosurePass>(&encoding, &context)
      .Emplace<engine::ReRootAtElementPass>(a_elem)
      .Emplace<engine::NormalizePass>();
  TREEDL_RETURN_IF_ERROR(pipeline.Run(state, stats));
  if (stats != nullptr) ++stats->normalize_builds;

  return internal::DecidePrimePrepared(context, *state.normalized, a_elem,
                                       stats);
}

StatusOr<bool> IsPrimeViaTd(const Schema& schema, const SchemaEncoding& encoding,
                            const TreeDecomposition& td, AttributeId a,
                            DpStats* stats) {
  RunStats run;
  auto result = IsPrimeViaTd(schema, encoding, td, a, &run);
  if (stats != nullptr) {
    stats->total_states = run.dp_states;
    stats->max_states_per_node = run.dp_max_states_per_node;
  }
  return result;
}

}  // namespace treedl::core
