#include "datalog/grounder.hpp"

#include <map>
#include <set>

#include "common/logging.hpp"
#include "datalog/analysis.hpp"
#include "datalog/eval_internal.hpp"

namespace treedl::datalog {

namespace {

// Interns ground intensional atoms (pred, args) to dense propositional ids.
class AtomInterner {
 public:
  int Intern(PredicateId pred, const Tuple& args) {
    auto key = std::make_pair(pred, args);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(atoms_.size());
    atoms_.push_back(key);
    ids_.emplace(std::move(key), id);
    return id;
  }
  int Lookup(PredicateId pred, const Tuple& args) const {
    auto it = ids_.find(std::make_pair(pred, args));
    return it == ids_.end() ? -1 : it->second;
  }
  size_t size() const { return atoms_.size(); }
  const std::pair<PredicateId, Tuple>& atom(int id) const {
    return atoms_[static_cast<size_t>(id)];
  }

 private:
  std::vector<std::pair<PredicateId, Tuple>> atoms_;
  std::map<std::pair<PredicateId, Tuple>, int> ids_;
};

}  // namespace

StatusOr<Structure> GroundedEvaluate(const Program& program,
                                     const Structure& edb, RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  TREEDL_ASSIGN_OR_RETURN(std::vector<size_t> guards,
                          FindQuasiGuards(program));
  TREEDL_ASSIGN_OR_RETURN(ProgramInfo info, AnalyzeProgram(program));

  // Reuse Prepare for signature union, EDB copy and constant resolution —
  // but we re-resolve rule bodies in *grounding* order, not plan order.
  TREEDL_ASSIGN_OR_RETURN(internal::PreparedProgram prep,
                          internal::Prepare(program, edb));

  AtomInterner interner;
  std::vector<HornClause> clauses;
  GroundingStats local;

  // Ground program facts were already inserted into prep.store/prep.result by
  // Prepare; they must also seed the Horn program if their predicate is
  // intensional.
  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    if (!rule.body.empty()) continue;
    Atom head = rule.head;
    head.predicate = prep.predicate_map[static_cast<size_t>(head.predicate)];
    ResolvedAtom resolved = ResolveAtom(head, &prep.result);
    clauses.push_back(HornClause{
        interner.Intern(resolved.predicate, resolved.const_args), {}});
  }

  for (size_t r = 0; r < program.rules().size(); ++r) {
    const Rule& rule = program.rules()[r];
    if (rule.body.empty()) continue;

    // Partition and order the body for grounding.
    std::vector<ResolvedAtom> positives;  // extensional, enumeration order
    std::vector<ResolvedAtom> negatives;  // extensional filters
    std::vector<ResolvedAtom> idb_atoms;  // intensional (clause body)
    {
      std::vector<size_t> positive_indices;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Literal& lit = rule.body[i];
        bool intensional =
            info.intensional[static_cast<size_t>(lit.atom.predicate)];
        Atom translated = lit.atom;
        translated.predicate =
            prep.predicate_map[static_cast<size_t>(lit.atom.predicate)];
        if (intensional) {
          if (!lit.positive) {
            return Status::InvalidArgument("negated intensional literal");
          }
          idb_atoms.push_back(ResolveAtom(translated, &prep.result));
        } else if (lit.positive) {
          positive_indices.push_back(i);
          positives.push_back(ResolveAtom(translated, &prep.result));
        } else {
          negatives.push_back(ResolveAtom(translated, &prep.result));
        }
      }
      // Move the guard to the front, then order the rest greedily by how many
      // of their variables are already determined (one-pass approximation —
      // exactness is not needed for correctness, only for instance counts).
      size_t guard_body_index = guards[r];
      for (size_t i = 0; i < positive_indices.size(); ++i) {
        if (positive_indices[i] == guard_body_index) {
          std::swap(positives[0], positives[i]);
          break;
        }
      }
      std::set<VariableId> bound;
      for (VariableId v : positives[0].vars) {
        if (v >= 0) bound.insert(v);
      }
      for (size_t i = 1; i < positives.size(); ++i) {
        size_t best = i;
        size_t best_score = 0;
        for (size_t j = i; j < positives.size(); ++j) {
          size_t score = 0;
          for (VariableId v : positives[j].vars) {
            if (v < 0 || bound.count(v)) ++score;
          }
          if (j == i || score > best_score) {
            best = j;
            best_score = score;
          }
        }
        std::swap(positives[i], positives[best]);
        for (VariableId v : positives[i].vars) {
          if (v >= 0) bound.insert(v);
        }
      }
    }

    ResolvedAtom head = [&] {
      Atom translated = rule.head;
      translated.predicate =
          prep.predicate_map[static_cast<size_t>(rule.head.predicate)];
      return ResolveAtom(translated, &prep.result);
    }();

    // Enumerate all ground instances.
    Binding binding(prep.num_variables, kUnbound);
    std::function<void(size_t)> enumerate = [&](size_t pos) {
      if (pos < positives.size()) {
        MatchAtom(&prep.store, positives[pos], &binding, [&]() {
          if (pos == 0) ++local.guard_instantiations;
          enumerate(pos + 1);
          return true;
        });
        return;
      }
      // All positive extensional literals matched: every rule variable must
      // now be bound (guaranteed by quasi-guardedness for τ_td programs).
      for (const ResolvedAtom& neg : negatives) {
        if (!FullyBound(neg, binding)) {
          return;  // cannot decide the negative literal: drop this instance
        }
        if (prep.store.Contains(neg.predicate, GroundArgs(neg, binding))) {
          return;  // negative literal violated
        }
      }
      HornClause clause;
      for (const ResolvedAtom& idb : idb_atoms) {
        TREEDL_CHECK(FullyBound(idb, binding))
            << "intensional atom not bound after grounding";
        clause.body.push_back(
            interner.Intern(idb.predicate, GroundArgs(idb, binding)));
      }
      TREEDL_CHECK(FullyBound(head, binding)) << "head not bound";
      clause.head = interner.Intern(head.predicate, GroundArgs(head, binding));
      clauses.push_back(std::move(clause));
    };
    enumerate(0);
  }

  local.ground_clauses = clauses.size();
  local.ground_atoms = interner.size();

  std::vector<bool> truth =
      LturSolve(static_cast<int>(interner.size()), clauses);
  for (size_t id = 0; id < truth.size(); ++id) {
    if (!truth[id]) continue;
    const auto& [pred, args] = interner.atom(static_cast<int>(id));
    Status st = prep.result.AddFact(pred, args);
    TREEDL_CHECK(st.ok()) << st.ToString();
  }
  if (stats != nullptr) {
    stats->ground_clauses += local.ground_clauses;
    stats->ground_atoms += local.ground_atoms;
    stats->guard_instantiations += local.guard_instantiations;
  }
  return std::move(prep.result);
}

StatusOr<Structure> GroundedEvaluate(const Program& program,
                                     const Structure& edb,
                                     GroundingStats* stats) {
  RunStats run;
  auto result = GroundedEvaluate(program, edb, &run);
  if (stats != nullptr) {
    stats->ground_clauses = run.ground_clauses;
    stats->ground_atoms = run.ground_atoms;
    stats->guard_instantiations = run.guard_instantiations;
  }
  return result;
}

}  // namespace treedl::datalog
