// Gaifman (primal) graph of a τ-structure, plus graph <-> structure bridges.
//
// The Gaifman graph connects two domain elements iff they co-occur in some
// fact. A tree decomposition of the structure (Def. of §2.2) is exactly a tree
// decomposition of its Gaifman graph, which is how the heuristics in td/ are
// applied to arbitrary structures. For relational schemas this yields the
// incidence-graph view discussed in the Remark of §2.2.
#ifndef TREEDL_GRAPH_GAIFMAN_HPP_
#define TREEDL_GRAPH_GAIFMAN_HPP_

#include "graph/graph.hpp"
#include "structure/structure.hpp"

namespace treedl {

/// Vertex i of the result corresponds to domain element i of `structure`.
Graph GaifmanGraph(const Structure& structure);

/// Encodes a graph as a {e/2}-structure with elements "v0", "v1", ....
/// Each undirected edge {u, v} is stored as both e(u, v) and e(v, u).
Structure GraphToStructure(const Graph& graph);

/// Decodes a {e/2}-structure back to a graph (edge direction is ignored).
StatusOr<Graph> StructureToGraph(const Structure& structure);

}  // namespace treedl

#endif  // TREEDL_GRAPH_GAIFMAN_HPP_
