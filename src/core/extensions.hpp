// Further MSO-expressible problems on the §5 DP framework — the paper's
// conclusion announces "many more problems whose FPT was established via
// Courcelle's Theorem" as targets of the approach; these three classics are
// the standard first wave.
#ifndef TREEDL_CORE_EXTENSIONS_HPP_
#define TREEDL_CORE_EXTENSIONS_HPP_

#include <functional>

#include "common/status.hpp"
#include "core/tree_dp.hpp"
#include "graph/graph.hpp"

namespace treedl::core {

/// Size of a minimum vertex cover.
StatusOr<size_t> MinVertexCoverTd(const Graph& graph,
                                  const TreeDecomposition& td,
                                  DpStats* stats = nullptr);
StatusOr<size_t> MinVertexCoverNormalized(const Graph& graph,
                                          const NormalizedTreeDecomposition& ntd,
                                          DpStats* stats = nullptr,
                                          const DpExec& exec = {});
/// Deprecated convenience: rebuilds a decomposition per call (one-shot
/// treedl::Engine); batch callers should hold an Engine instead.
StatusOr<size_t> MinVertexCoverTd(const Graph& graph, DpStats* stats = nullptr);

/// Size of a maximum independent set.
StatusOr<size_t> MaxIndependentSetTd(const Graph& graph,
                                     const TreeDecomposition& td,
                                     DpStats* stats = nullptr);
StatusOr<size_t> MaxIndependentSetNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats = nullptr, const DpExec& exec = {});
/// Deprecated convenience (one-shot Engine).
StatusOr<size_t> MaxIndependentSetTd(const Graph& graph,
                                     DpStats* stats = nullptr);

/// Size of a minimum dominating set.
StatusOr<size_t> MinDominatingSetTd(const Graph& graph,
                                    const TreeDecomposition& td,
                                    DpStats* stats = nullptr);
StatusOr<size_t> MinDominatingSetNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats = nullptr, const DpExec& exec = {});
/// Deprecated convenience (one-shot Engine).
StatusOr<size_t> MinDominatingSetTd(const Graph& graph,
                                    DpStats* stats = nullptr);

// --- Fused-traversal registration (Engine::SolveAll) ------------------------
//
// Same contract as core::AddThreeColorPass (three_color.hpp): registers one
// pass of a MultiDp, returns a finalizer valid once the fused traversal ran;
// `graph` and `ntd` must outlive both.

std::function<StatusOr<size_t>()> AddVertexCoverPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd);

std::function<StatusOr<size_t>()> AddIndependentSetPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd);

std::function<StatusOr<size_t>()> AddDominatingSetPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd);

}  // namespace treedl::core

#endif  // TREEDL_CORE_EXTENSIONS_HPP_
