// Property-based cross-checks for the parallel DP and the datalog backends:
// random partial k-trees evaluated with num_threads = 1 and num_threads = 8
// must agree on all five Solve problems (and on the sharding invariants),
// and a quasi-guarded datalog program must produce identical models under
// the naive, seminaive, and grounded backends.
#include <gtest/gtest.h>

#include <vector>

#include "datalog/parser.hpp"
#include "engine/engine.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "td/shard.hpp"
#include "test_util.hpp"

namespace treedl {
namespace {

constexpr Engine::Problem kAllProblems[] = {
    Engine::Problem::kThreeColor,      Engine::Problem::kThreeColorCount,
    Engine::Problem::kVertexCover,     Engine::Problem::kIndependentSet,
    Engine::Problem::kDominatingSet,
};

void ExpectProperColoring(const Graph& graph, const std::vector<int>& colors) {
  for (VertexId u = 0; u < static_cast<VertexId>(graph.NumVertices()); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      EXPECT_NE(colors[static_cast<size_t>(u)], colors[static_cast<size_t>(v)])
          << "edge " << u << "-" << v << " monochromatic";
    }
  }
}

TEST(ParallelPropertyTest, ThreadCountsAgreeOnAllFiveProblems) {
  for (uint64_t trial = 0; trial < 6; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 30 + 15 * static_cast<size_t>(trial);
    int k = 2 + static_cast<int>(trial % 3);
    Graph graph = RandomPartialKTree(n, k, 0.7, &rng);

    EngineOptions sequential;
    sequential.num_threads = 1;
    EngineOptions parallel;
    parallel.num_threads = 8;
    Engine seq_engine = Engine::FromGraph(graph, sequential);
    Engine par_engine = Engine::FromGraph(graph, parallel);

    for (Engine::Problem problem : kAllProblems) {
      auto seq = seq_engine.Solve(problem);
      RunStats par_run;
      auto par = par_engine.Solve(problem, &par_run);
      ASSERT_TRUE(seq.ok()) << seq.status();
      ASSERT_TRUE(par.ok()) << par.status();
      EXPECT_EQ(seq->feasible, par->feasible) << "trial " << trial;
      EXPECT_EQ(seq->optimum, par->optimum) << "trial " << trial;
      EXPECT_EQ(seq->count, par->count) << "trial " << trial;
      EXPECT_EQ(seq->witness.has_value(), par->witness.has_value());
      if (par->witness.has_value()) {
        ExpectProperColoring(graph, *par->witness);
      }
      if (problem == Engine::Problem::kThreeColor) {
        // The parallel session really sharded (instances are large enough).
        EXPECT_GT(par_run.dp_shards, 1u) << "trial " << trial;
        EXPECT_EQ(par_run.dp_shard_millis.size(), par_run.dp_shards);
      }
    }
    // Identical DP work on both sides: same reachable-state tables.
    EXPECT_EQ(seq_engine.CumulativeStats().dp_states,
              par_engine.CumulativeStats().dp_states)
        << "trial " << trial;
  }
}

TEST(ParallelPropertyTest, SolveAllEqualsFiveSolvesAcrossThreadCounts) {
  for (uint64_t trial = 0; trial < 5; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 30 + 15 * static_cast<size_t>(trial);
    int k = 2 + static_cast<int>(trial % 3);
    Graph graph = RandomPartialKTree(n, k, 0.7, &rng);

    EngineOptions sequential;
    sequential.num_threads = 1;
    EngineOptions parallel;
    parallel.num_threads = 8;
    Engine seq_engine = Engine::FromGraph(graph, sequential);
    Engine par_engine = Engine::FromGraph(graph, parallel);
    // A reference engine answers the five problems one at a time.
    Engine ref_engine = Engine::FromGraph(graph, sequential);

    RunStats seq_run;
    RunStats par_run;
    auto seq_all = seq_engine.SolveAll(&seq_run);
    auto par_all = par_engine.SolveAll(&par_run);
    ASSERT_TRUE(seq_all.ok()) << seq_all.status();
    ASSERT_TRUE(par_all.ok()) << par_all.status();

    for (Engine::Problem problem : kAllProblems) {
      auto ref = ref_engine.Solve(problem);
      ASSERT_TRUE(ref.ok()) << ref.status();
      for (const auto* batch : {&seq_all, &par_all}) {
        Engine::SolveResult fused = (*batch)->Result(problem);
        EXPECT_EQ(fused.feasible, ref->feasible) << "trial " << trial;
        EXPECT_EQ(fused.optimum, ref->optimum) << "trial " << trial;
        EXPECT_EQ(fused.count, ref->count) << "trial " << trial;
        EXPECT_EQ(fused.witness.has_value(), ref->witness.has_value());
      }
    }
    if (par_all->coloring.has_value()) {
      ExpectProperColoring(graph, *par_all->coloring);
    }

    // One traversal family on both sides, five passes deep; the parallel
    // side sharded that single traversal (not five).
    EXPECT_EQ(seq_run.dp_traversals, 1u) << "trial " << trial;
    EXPECT_EQ(seq_run.dp_passes, 5u) << "trial " << trial;
    EXPECT_EQ(par_run.dp_traversals, 1u) << "trial " << trial;
    EXPECT_EQ(par_run.dp_passes, 5u) << "trial " << trial;
    EXPECT_GT(par_run.dp_shards, 1u) << "trial " << trial;
    EXPECT_EQ(par_run.dp_shard_millis.size(), par_run.dp_shards);
    // Identical reachable-state tables: fused == five independent runs.
    EXPECT_EQ(seq_run.dp_states, par_run.dp_states) << "trial " << trial;
    EXPECT_EQ(ref_engine.CumulativeStats().dp_states, seq_run.dp_states)
        << "trial " << trial;
  }
}

TEST(ParallelPropertyTest, ShardingInvariantsHoldOnRandomInstances) {
  for (uint64_t trial = 0; trial < 8; ++trial) {
    Rng rng(TestSeed(trial));
    size_t n = 20 + 20 * static_cast<size_t>(trial);
    Graph graph = RandomPartialKTree(n, 3, 0.6, &rng);
    Engine engine = Engine::FromGraph(graph);
    auto td = engine.Decomposition();
    ASSERT_TRUE(td.ok()) << td.status();
    auto ntd = Normalize(**td);
    ASSERT_TRUE(ntd.ok()) << ntd.status();
    for (size_t target : {1u, 2u, 7u, 32u, 1000u}) {
      BagSharding sharding = ComputeBagSharding(*ntd, target);
      EXPECT_GE(sharding.NumShards(), 1u);
      Status valid = ValidateSharding(*ntd, sharding);
      EXPECT_TRUE(valid.ok())
          << "trial " << trial << " target " << target << ": "
          << valid.message();
    }
  }
}

TEST(ParallelPropertyTest, DatalogBackendsAgreeOnRandomPartialKTrees) {
  // Every rule carries a positive extensional e-atom over all of its
  // variables, so the program is quasi-guarded and the grounded Thm 4.4
  // backend applies alongside naive and seminaive.
  auto program = datalog::ParseProgram(R"(
    touched(X) :- e(X, Y).
    mutual(X, Y) :- e(X, Y), e(Y, X).
    reach(Y) :- mutual(X, Y), e(X, Y).
    reach(Y) :- reach(X), e(X, Y).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  for (uint64_t trial = 0; trial < 5; ++trial) {
    Rng rng(TestSeed(trial));
    Graph graph = RandomPartialKTree(25 + 10 * static_cast<size_t>(trial), 3,
                                     0.5, &rng);
    Engine engine = Engine::FromGraph(graph);
    auto naive = engine.EvaluateDatalog(*program, DatalogBackend::kNaive);
    auto semi = engine.EvaluateDatalog(*program, DatalogBackend::kSemiNaive);
    auto grounded = engine.EvaluateDatalog(*program, DatalogBackend::kGrounded);
    ASSERT_TRUE(naive.ok()) << naive.status();
    ASSERT_TRUE(semi.ok()) << semi.status();
    ASSERT_TRUE(grounded.ok()) << grounded.status();
    EXPECT_TRUE(*naive == *semi) << "trial " << trial;
    EXPECT_TRUE(*naive == *grounded) << "trial " << trial;
  }
}

}  // namespace
}  // namespace treedl
