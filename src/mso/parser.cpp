#include "mso/parser.hpp"

#include <cctype>
#include <vector>

#include "common/string_util.hpp"

namespace treedl::mso {

namespace {

struct Token {
  enum class Kind {
    kIdent,   // identifiers and keywords
    kLParen,
    kRParen,
    kComma,
    kColon,
    kAnd,     // &
    kOr,      // |
    kNot,     // ~
    kImplies, // ->
    kIff,     // <->
    kEqual,   // =
    kNotEqual,// !=
    kEnd,
  };
  Kind kind;
  std::string text;
};

StatusOr<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_' || input[j] == '\'')) {
        ++j;
      }
      out.push_back({Token::Kind::kIdent, input.substr(i, j - i)});
      i = j;
      continue;
    }
    auto two = input.substr(i, 2);
    auto three = input.substr(i, 3);
    if (three == "<->") {
      out.push_back({Token::Kind::kIff, three});
      i += 3;
    } else if (two == "->") {
      out.push_back({Token::Kind::kImplies, two});
      i += 2;
    } else if (two == "!=") {
      out.push_back({Token::Kind::kNotEqual, two});
      i += 2;
    } else if (c == '(') {
      out.push_back({Token::Kind::kLParen, "("});
      ++i;
    } else if (c == ')') {
      out.push_back({Token::Kind::kRParen, ")"});
      ++i;
    } else if (c == ',') {
      out.push_back({Token::Kind::kComma, ","});
      ++i;
    } else if (c == ':') {
      out.push_back({Token::Kind::kColon, ":"});
      ++i;
    } else if (c == '&') {
      out.push_back({Token::Kind::kAnd, "&"});
      ++i;
    } else if (c == '|') {
      out.push_back({Token::Kind::kOr, "|"});
      ++i;
    } else if (c == '~') {
      out.push_back({Token::Kind::kNot, "~"});
      ++i;
    } else if (c == '=') {
      out.push_back({Token::Kind::kEqual, "="});
      ++i;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in formula");
    }
  }
  out.push_back({Token::Kind::kEnd, ""});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<FormulaPtr> Parse() {
    TREEDL_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::ParseError("trailing input after formula: '" +
                                Peek().text + "'");
    }
    return f;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool Accept(Token::Kind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<FormulaPtr> ParseIff() {
    TREEDL_ASSIGN_OR_RETURN(FormulaPtr left, ParseImplies());
    while (Accept(Token::Kind::kIff)) {
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr right, ParseImplies());
      left = MakeIff(left, right);
    }
    return left;
  }

  StatusOr<FormulaPtr> ParseImplies() {
    TREEDL_ASSIGN_OR_RETURN(FormulaPtr left, ParseOr());
    if (Accept(Token::Kind::kImplies)) {
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr right, ParseImplies());
      return MakeImplies(left, right);
    }
    return left;
  }

  StatusOr<FormulaPtr> ParseOr() {
    TREEDL_ASSIGN_OR_RETURN(FormulaPtr left, ParseAnd());
    while (Accept(Token::Kind::kOr)) {
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr right, ParseAnd());
      left = MakeOr(left, right);
    }
    return left;
  }

  StatusOr<FormulaPtr> ParseAnd() {
    TREEDL_ASSIGN_OR_RETURN(FormulaPtr left, ParseUnary());
    while (Accept(Token::Kind::kAnd)) {
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr right, ParseUnary());
      left = MakeAnd(left, right);
    }
    return left;
  }

  static bool IsQuantifierKeyword(const std::string& text) {
    return text == "ex1" || text == "all1" || text == "ex2" || text == "all2";
  }

  StatusOr<FormulaPtr> ParseUnary() {
    if (Accept(Token::Kind::kNot)) {
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return MakeNot(f);
    }
    if (Peek().kind == Token::Kind::kIdent && IsQuantifierKeyword(Peek().text)) {
      std::string quant = Take().text;
      std::vector<std::string> vars;
      while (true) {
        if (Peek().kind != Token::Kind::kIdent) {
          return Status::ParseError("expected variable after " + quant);
        }
        vars.push_back(Take().text);
        if (!Accept(Token::Kind::kComma)) break;
      }
      if (!Accept(Token::Kind::kColon)) {
        return Status::ParseError("expected ':' after quantified variables");
      }
      // Quantifier scope extends as far right as possible (MONA convention).
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
      // Innermost variable binds first.
      for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
        if (quant == "ex1") body = MakeExistsFo(*it, body);
        if (quant == "all1") body = MakeForallFo(*it, body);
        if (quant == "ex2") body = MakeExistsSo(*it, body);
        if (quant == "all2") body = MakeForallSo(*it, body);
      }
      return body;
    }
    return ParsePrimary();
  }

  StatusOr<FormulaPtr> ParsePrimary() {
    if (Accept(Token::Kind::kLParen)) {
      TREEDL_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
      if (!Accept(Token::Kind::kRParen)) {
        return Status::ParseError("expected ')'");
      }
      return f;
    }
    if (Peek().kind != Token::Kind::kIdent) {
      return Status::ParseError("expected atom, got '" + Peek().text + "'");
    }
    std::string first = Take().text;
    // pred(args)
    if (Accept(Token::Kind::kLParen)) {
      std::vector<std::string> args;
      if (!Accept(Token::Kind::kRParen)) {
        while (true) {
          if (Peek().kind != Token::Kind::kIdent) {
            return Status::ParseError("expected variable in atom " + first);
          }
          args.push_back(Take().text);
          if (Accept(Token::Kind::kRParen)) break;
          if (!Accept(Token::Kind::kComma)) {
            return Status::ParseError("expected ',' or ')' in atom " + first);
          }
        }
      }
      return MakeAtom(first, std::move(args));
    }
    // infix forms
    if (Accept(Token::Kind::kEqual)) {
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::ParseError("expected variable after '='");
      }
      return MakeEqual(first, Take().text);
    }
    if (Accept(Token::Kind::kNotEqual)) {
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::ParseError("expected variable after '!='");
      }
      return MakeNot(MakeEqual(first, Take().text));
    }
    if (Peek().kind == Token::Kind::kIdent && Peek().text == "in") {
      Take();
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::ParseError("expected set variable after 'in'");
      }
      return MakeIn(first, Take().text);
    }
    if (Peek().kind == Token::Kind::kIdent && Peek().text == "notin") {
      Take();
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::ParseError("expected set variable after 'notin'");
      }
      return MakeNot(MakeIn(first, Take().text));
    }
    if (Peek().kind == Token::Kind::kIdent && Peek().text == "sub") {
      Take();
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::ParseError("expected set variable after 'sub'");
      }
      return MakeSubseteq(first, Take().text);
    }
    return Status::ParseError("malformed atom near '" + first + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<FormulaPtr> ParseFormula(const std::string& text) {
  TREEDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace treedl::mso
