// FlatTable: the arena-backed open-addressing state table of the tree DPs.
//
// Replaces std::unordered_map<State, Value> as the per-bag table of
// core/tree_dp.hpp. Layout:
//
//   entries_  — dense array of {hash, {State, Value}} records in insertion
//               order; this is what iteration walks, so the transition loops
//               (introduce/forget/join) stream states contiguously instead of
//               pointer-chasing hash buckets.
//   slots_    — power-of-two open-addressing index (linear probing); each
//               slot holds 1 + entry index, 0 = empty. Rehashing on growth
//               touches only this small array — entries never move on rehash
//               (they move only on the geometric dense-array growth, by
//               move-construction).
//
// Both arrays live in the table's own bump Arena (common/arena.hpp): one
// malloc'd block per growth step instead of one heap node per state, and
// Release() frees the whole table at once — the primitive behind the DP's
// shard-table eviction. MemoryBytes() reports the arena footprint, which the
// drivers aggregate into DpStats::peak_table_bytes.
//
// Iteration order is insertion order — deterministic given a deterministic
// emission sequence, identical between the sequential and sharded drivers
// (each node's transitions run on exactly one thread, in post order within a
// shard). The table is not thread-safe; the DP guarantees a node's table is
// written by one thread and read by its parent only after completion.
#ifndef TREEDL_COMMON_FLAT_TABLE_HPP_
#define TREEDL_COMMON_FLAT_TABLE_HPP_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/arena.hpp"
#include "common/logging.hpp"

namespace treedl {

template <typename State, typename Value>
class FlatTable {
 public:
  /// Iteration yields `const std::pair<State, Value>&` — the structured
  /// binding shape of the std::unordered_map it replaces.
  using Entry = std::pair<State, Value>;

  FlatTable() = default;
  FlatTable(FlatTable&& other) noexcept { *this = std::move(other); }
  FlatTable& operator=(FlatTable&& other) noexcept {
    if (this != &other) {
      DestroyEntries();
      arena_ = std::move(other.arena_);
      records_ = std::exchange(other.records_, nullptr);
      slots_ = std::exchange(other.slots_, nullptr);
      size_ = std::exchange(other.size_, 0);
      entry_capacity_ = std::exchange(other.entry_capacity_, 0);
      slot_mask_ = std::exchange(other.slot_mask_, 0);
    }
    return *this;
  }
  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;
  ~FlatTable() { DestroyEntries(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  struct Record {
    size_t hash;
    Entry entry;
  };

  // Dense, insertion-ordered iteration over the records array.
  struct Iterator {
    const Record* record;
    const Entry& operator*() const { return record->entry; }
    const Entry* operator->() const { return &record->entry; }
    Iterator& operator++() {
      ++record;
      return *this;
    }
    bool operator==(const Iterator&) const = default;
  };
  Iterator begin() const { return Iterator{records_}; }
  Iterator end() const { return Iterator{records_ + size_}; }

  /// Pointer to the value of `state`, or null.
  const Value* Find(const State& state) const {
    if (size_ == 0) return nullptr;
    size_t hash = state.hash();
    for (size_t probe = hash & slot_mask_;; probe = (probe + 1) & slot_mask_) {
      uint32_t slot = slots_[probe];
      if (slot == 0) return nullptr;
      Record& record = records_[slot - 1];
      if (record.hash == hash && record.entry.first == state) {
        return &record.entry.second;
      }
    }
  }

  size_t count(const State& state) const { return Find(state) ? 1 : 0; }

  const Value& at(const State& state) const {
    const Value* value = Find(state);
    TREEDL_CHECK(value != nullptr) << "FlatTable::at: state not present";
    return *value;
  }

  /// The emit/merge primitive of the DP transition loops: inserts
  /// (state, value), or folds `value` into the existing value with
  /// `merge(old, value)` when `state` is already present.
  template <typename MergeFn>
  void Emplace(State state, Value value, MergeFn&& merge) {
    size_t hash = state.hash();
    // Probe for an existing entry BEFORE growing: a merge that lands exactly
    // at the capacity boundary must not trigger a pointless reallocation.
    size_t probe = 0;
    bool have_slot = false;
    if (slots_ != nullptr) {
      for (probe = hash & slot_mask_;; probe = (probe + 1) & slot_mask_) {
        uint32_t slot = slots_[probe];
        if (slot == 0) {
          have_slot = true;
          break;
        }
        Record& record = records_[slot - 1];
        if (record.hash == hash && record.entry.first == state) {
          record.entry.second = merge(record.entry.second, value);
          return;
        }
      }
    }
    if (size_ == entry_capacity_) {
      Grow();
      have_slot = false;  // the slot array was rebuilt
    }
    if (!have_slot) {
      for (probe = hash & slot_mask_; slots_[probe] != 0;
           probe = (probe + 1) & slot_mask_) {
      }
    }
    new (&records_[size_]) Record{hash, {std::move(state), std::move(value)}};
    // States that support it (ByteVec members) move any heap-spilled bytes
    // into the table arena, so a stored state never keeps a private heap
    // block: its storage is freed by Release() with everything else and is
    // counted by MemoryBytes().
    if constexpr (requires(State& s, Arena* a) { s.RelocateTo(a); }) {
      records_[size_].entry.first.RelocateTo(&arena_);
    }
    slots_[probe] = static_cast<uint32_t>(++size_);
  }

  /// The arena footprint in bytes — what this table charges against
  /// DpStats::peak_table_bytes / EngineOptions::table_memory_budget.
  /// Arena-relocatable states (see Emplace) keep their spilled bytes in this
  /// same arena, so their storage is included; only states that hold plain
  /// heap-owning members (e.g. std::vector) escape the count.
  size_t MemoryBytes() const { return arena_.TotalBytes(); }

  /// Eviction: destroys every entry and frees the arena, returning the table
  /// to the empty state. Safe to call on an empty table.
  void Release() {
    DestroyEntries();
    arena_.Reset();
    records_ = nullptr;
    slots_ = nullptr;
    size_ = 0;
    entry_capacity_ = 0;
    slot_mask_ = 0;
  }

 private:
  // Slot count stays >= 2x entry capacity, so the load factor never exceeds
  // 0.5 and linear probing stays short.
  void Grow() {
    size_t new_entry_capacity = entry_capacity_ == 0 ? 8 : entry_capacity_ * 2;
    size_t new_slot_count = new_entry_capacity * 2;
    Record* new_records = arena_.template AllocateArray<Record>(
        new_entry_capacity);
    for (size_t i = 0; i < size_; ++i) {
      new (&new_records[i]) Record{records_[i].hash,
                                   std::move(records_[i].entry)};
      records_[i].entry.~Entry();
    }
    uint32_t* new_slots = arena_.template AllocateArray<uint32_t>(
        new_slot_count);
    for (size_t i = 0; i < new_slot_count; ++i) new_slots[i] = 0;
    size_t mask = new_slot_count - 1;
    for (size_t i = 0; i < size_; ++i) {
      size_t probe = new_records[i].hash & mask;
      while (new_slots[probe] != 0) probe = (probe + 1) & mask;
      new_slots[probe] = static_cast<uint32_t>(i + 1);
    }
    records_ = new_records;
    slots_ = new_slots;
    entry_capacity_ = new_entry_capacity;
    slot_mask_ = mask;
  }

  void DestroyEntries() {
    for (size_t i = 0; i < size_; ++i) records_[i].entry.~Entry();
  }

  Arena arena_;
  Record* records_ = nullptr;
  uint32_t* slots_ = nullptr;
  size_t size_ = 0;
  size_t entry_capacity_ = 0;
  size_t slot_mask_ = 0;
};

}  // namespace treedl

#endif  // TREEDL_COMMON_FLAT_TABLE_HPP_
