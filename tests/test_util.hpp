// Shared test helpers: deterministic per-test RNG seeding.
//
// Every randomized test derives its seed from the test's own full name (an
// FNV-1a hash of "Suite.TestName", mixed with a per-draw salt) instead of an
// ad-hoc literal. The seed is deterministic across runs and machines — same
// test, same seed — and each call logs the value, so a failure in a ctest
// log can be reproduced by running that one test, or by plugging the logged
// seed into a local Rng.
#ifndef TREEDL_TESTS_TEST_UTIL_HPP_
#define TREEDL_TESTS_TEST_UTIL_HPP_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace treedl {

/// Deterministic seed for the currently running gtest test. `salt`
/// distinguishes multiple independent Rngs within one test (0, 1, 2, ...).
inline uint64_t TestSeed(uint64_t salt = 0) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name =
      info == nullptr
          ? std::string("unknown")
          : std::string(info->test_suite_name()) + "." + info->name();
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ULL;  // FNV-1a prime
  }
  hash += salt * 0x9E3779B97F4A7C15ULL;  // golden-ratio increment per salt
  std::printf("[   SEED   ] %s salt=%llu seed=%llu\n", name.c_str(),
              static_cast<unsigned long long>(salt),
              static_cast<unsigned long long>(hash));
  return hash;
}

}  // namespace treedl

#endif  // TREEDL_TESTS_TEST_UTIL_HPP_
