#include <gtest/gtest.h>

#include "core/primality.hpp"
#include "core/primality_enum.hpp"
#include "schema/generators.hpp"
#include "schema/primality_bruteforce.hpp"
#include "td/heuristics.hpp"

namespace treedl::core {
namespace {

TEST(PrimalityTest, PaperExampleDecision) {
  Schema schema = Schema::PaperExampleSchema();
  // Ex 2.1: primes are a, b, c, d; e and g are not prime.
  for (const char* name : {"a", "b", "c", "d"}) {
    AttributeId a = schema.AttributeByName(name).value();
    auto result = IsPrimeViaTd(schema, a);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(*result) << name;
  }
  for (const char* name : {"e", "g"}) {
    AttributeId a = schema.AttributeByName(name).value();
    auto result = IsPrimeViaTd(schema, a);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(*result) << name;
  }
}

TEST(PrimalityTest, PaperExampleEnumeration) {
  Schema schema = Schema::PaperExampleSchema();
  auto primes = EnumeratePrimes(schema);
  ASSERT_TRUE(primes.ok()) << primes.status();
  EXPECT_EQ(*primes, AllPrimesBruteForce(schema));
}

TEST(PrimalityTest, TrivialSchemas) {
  // Single attribute, no FDs: the attribute is the key, hence prime.
  Schema s1;
  s1.AddAttribute("a");
  EXPECT_TRUE(IsPrimeViaTd(s1, 0).value());
  // a -> b: key is {a}; b is not prime.
  Schema s2;
  AttributeId a = s2.AddAttribute("a");
  AttributeId b = s2.AddAttribute("b");
  ASSERT_TRUE(s2.AddFd({a}, b).ok());
  EXPECT_TRUE(IsPrimeViaTd(s2, a).value());
  EXPECT_FALSE(IsPrimeViaTd(s2, b).value());
  // a -> b, b -> a: both keys {a} and {b} exist; both prime.
  Schema s3;
  a = s3.AddAttribute("a");
  b = s3.AddAttribute("b");
  ASSERT_TRUE(s3.AddFd({a}, b).ok());
  ASSERT_TRUE(s3.AddFd({b}, a).ok());
  EXPECT_TRUE(IsPrimeViaTd(s3, a).value());
  EXPECT_TRUE(IsPrimeViaTd(s3, b).value());
}

TEST(PrimalityTest, SelfDependency) {
  // a a -> a style trivial FDs must not break anything: a -> a.
  Schema s;
  AttributeId a = s.AddAttribute("a");
  AttributeId b = s.AddAttribute("b");
  ASSERT_TRUE(s.AddFd({a}, a).ok());
  auto primes = EnumeratePrimes(s);
  ASSERT_TRUE(primes.ok()) << primes.status();
  EXPECT_EQ(*primes, AllPrimesBruteForce(s));
  (void)b;
}

TEST(PrimalityTest, BalancedInstanceGroundTruth) {
  for (int g : {1, 2, 3, 4}) {
    BalancedInstance inst = GenerateBalancedInstance(g);
    // x1 is prime, z1 is not — and the whole profile matches brute force.
    EXPECT_TRUE(IsPrimeViaTd(inst.schema, inst.encoding, inst.td,
                             inst.query_attribute)
                    .value());
    EXPECT_FALSE(IsPrimeViaTd(inst.schema, inst.encoding, inst.td,
                              inst.nonprime_attribute)
                     .value());
    auto primes = EnumeratePrimes(inst.schema, inst.encoding, inst.td);
    ASSERT_TRUE(primes.ok()) << primes.status();
    EXPECT_EQ(*primes, AllPrimesBruteForce(inst.schema)) << "g=" << g;
  }
}

TEST(PrimalityTest, LargeBalancedInstanceRuns) {
  // Far beyond brute-force reach: just verify the structural ground truth
  // (x*/y* prime, z* not) on the Table 1-sized instance.
  BalancedInstance inst = GenerateBalancedInstance(31);  // 93 attributes
  auto primes = EnumeratePrimes(inst.schema, inst.encoding, inst.td);
  ASSERT_TRUE(primes.ok()) << primes.status();
  for (AttributeId a = 0; a < inst.schema.NumAttributes(); ++a) {
    char kind = inst.schema.AttributeName(a)[0];
    EXPECT_EQ((*primes)[static_cast<size_t>(a)], kind == 'x' || kind == 'y')
        << inst.schema.AttributeName(a);
  }
}

class PrimalityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PrimalityPropertyTest, DecisionMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Schema schema = RandomWindowSchema(7, 5, 4, &rng);
  SchemaEncoding encoding = EncodeSchema(schema);
  auto td = DecomposeStructure(encoding.structure);
  ASSERT_TRUE(td.ok());
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    auto result = IsPrimeViaTd(schema, encoding, *td, a);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(*result, IsPrimeBruteForce(schema, a))
        << "seed " << GetParam() << " attr " << schema.AttributeName(a)
        << " schema " << schema.ToString();
  }
}

TEST_P(PrimalityPropertyTest, EnumerationMatchesBruteForceAndQuadratic) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  Schema schema = RandomWindowSchema(8, 5, 4, &rng);
  SchemaEncoding encoding = EncodeSchema(schema);
  auto td = DecomposeStructure(encoding.structure);
  ASSERT_TRUE(td.ok());
  auto linear = EnumeratePrimes(schema, encoding, *td);
  ASSERT_TRUE(linear.ok()) << linear.status();
  auto quadratic = EnumeratePrimesQuadratic(schema, encoding, *td);
  ASSERT_TRUE(quadratic.ok()) << quadratic.status();
  auto brute = AllPrimesBruteForce(schema);
  EXPECT_EQ(*linear, brute) << "seed " << GetParam() << " schema "
                            << schema.ToString();
  EXPECT_EQ(*quadratic, brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimalityPropertyTest, ::testing::Range(0, 25));

TEST(PrimalityTest, RejectsBadInputs) {
  Schema schema = Schema::PaperExampleSchema();
  SchemaEncoding encoding = EncodeSchema(schema);
  // Out-of-range attribute.
  auto td = DecomposeStructure(encoding.structure);
  ASSERT_TRUE(td.ok());
  EXPECT_FALSE(IsPrimeViaTd(schema, encoding, *td, 99).ok());
  // Invalid decomposition.
  TreeDecomposition bad;
  bad.AddNode({0});
  EXPECT_FALSE(IsPrimeViaTd(schema, encoding, bad, 0).ok());
  EXPECT_FALSE(EnumeratePrimes(schema, encoding, bad).ok());
}

}  // namespace
}  // namespace treedl::core
