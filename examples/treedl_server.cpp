// treedl_server: the protocol driver over treedl::server::Server.
//
// Reads one request per line from stdin (interactive use) or from a
// replayable script file, writes replies to stdout. No sockets: transcripts
// are deterministic, so the same binary serves interactive exploration, the
// CI smoke test (scripts/server_smoke.txt) and ad-hoc benchmarking.
//
// With --threads N > 1 requests are driven through the concurrent front-end
// (server/frontend.hpp): different sessions execute in parallel, each
// session stays strictly ordered, and replies are re-sequenced into input
// order — the transcript is byte-for-byte identical at every thread count.
//
//   ./treedl_server                          # interactive, from stdin
//   ./treedl_server --script requests.txt    # replay a request script
//   ./treedl_server --script requests.txt --threads 8   # same bytes, faster
//
// Flags:
//   --script FILE        read requests from FILE instead of stdin
//   --max-sessions N     session-pool capacity (default 8)
//   --budget BYTES       shared table_memory_budget in bytes (default 0 = off)
//   --session-dir DIR    enable SAVE/OPEN + warm start from DIR
//   --threads N          front-end worker threads (default 1 = the
//                        single-threaded driver; 0 = hardware concurrency)
//   --engine-threads N   shared engine pool size for intra-request
//                        parallelism (default 1 = sequential)
//   --queue-capacity N   per-session front-end queue bound (default 64)
//   --no-stats           omit per-request RunStats echoes (byte-stable replies)
//   --faults SCHEDULE    deterministic fault schedule ("site[@N],..."), e.g.
//                        --faults session_io.write@0,session_pool.build
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/fault_injection.hpp"
#include "server/frontend.hpp"
#include "server/server.hpp"

int main(int argc, char** argv) {
  treedl::server::ServerOptions options;
  treedl::server::FrontendOptions frontend_options;
  const char* script_path = nullptr;
  bool use_frontend = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--script") == 0 && i + 1 < argc) {
      script_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc) {
      options.max_sessions = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      options.table_memory_budget = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--session-dir") == 0 && i + 1 < argc) {
      options.session_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      frontend_options.num_threads = static_cast<size_t>(std::atol(argv[++i]));
      use_frontend = frontend_options.num_threads != 1;
    } else if (std::strcmp(argv[i], "--engine-threads") == 0 && i + 1 < argc) {
      options.num_threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0 && i + 1 < argc) {
      frontend_options.queue_capacity =
          static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-stats") == 0) {
      options.echo_stats = false;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      treedl::Status installed =
          treedl::FaultInjector::Global().SetSchedule(argv[++i]);
      if (!installed.ok()) {
        std::fprintf(stderr, "treedl_server: bad --faults schedule: %s\n",
                     std::string(installed.message()).c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: treedl_server [--script FILE] [--max-sessions N] "
                   "[--budget BYTES] [--session-dir DIR] [--threads N] "
                   "[--engine-threads N] [--queue-capacity N] [--no-stats] "
                   "[--faults SCHEDULE]\n");
      return 2;
    }
  }

  treedl::server::Server server(options);
  std::ifstream script;
  std::istream* in = &std::cin;
  if (script_path != nullptr) {
    script.open(script_path);
    if (!script) {
      std::fprintf(stderr, "treedl_server: cannot open script '%s'\n",
                   script_path);
      return 2;
    }
    in = &script;
  }
  if (use_frontend) {
    treedl::server::Frontend frontend(&server, frontend_options);
    frontend.Serve(*in, std::cout);
  } else {
    server.Serve(*in, std::cout);
  }
  return 0;
}
