#include "td/tree_decomposition.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl {

TdNodeId TreeDecomposition::AddNode(std::vector<ElementId> bag,
                                    TdNodeId parent) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  TdNodeId id = static_cast<TdNodeId>(nodes_.size());
  nodes_.push_back(TdNode{std::move(bag), parent, {}});
  if (parent == kNoTdNode) {
    TREEDL_CHECK(root_ == kNoTdNode) << "tree decomposition already has a root";
    root_ = id;
  } else {
    TREEDL_CHECK(parent >= 0 && static_cast<size_t>(parent) < nodes_.size() - 1)
        << "invalid parent id";
    nodes_[static_cast<size_t>(parent)].children.push_back(id);
  }
  return id;
}

bool TreeDecomposition::BagContains(TdNodeId id, ElementId e) const {
  const auto& bag = Bag(id);
  return std::binary_search(bag.begin(), bag.end(), e);
}

int TreeDecomposition::Width() const {
  int width = -1;
  for (const TdNode& n : nodes_) {
    width = std::max(width, static_cast<int>(n.bag.size()) - 1);
  }
  return width;
}

std::vector<TdNodeId> TreeDecomposition::PreOrder() const {
  std::vector<TdNodeId> order;
  if (root_ == kNoTdNode) return order;
  order.reserve(nodes_.size());
  std::vector<TdNodeId> stack{root_};
  while (!stack.empty()) {
    TdNodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (TdNodeId c : node(id).children) stack.push_back(c);
  }
  TREEDL_CHECK(order.size() == nodes_.size()) << "tree is not connected";
  return order;
}

std::vector<TdNodeId> TreeDecomposition::PostOrder() const {
  std::vector<TdNodeId> order = PreOrder();
  std::reverse(order.begin(), order.end());
  return order;
}

Status TreeDecomposition::ReRoot(TdNodeId new_root) {
  if (new_root < 0 || static_cast<size_t>(new_root) >= nodes_.size()) {
    return Status::InvalidArgument("ReRoot: node id out of range");
  }
  if (new_root == root_) return Status::OK();
  // Collect the path new_root -> old root, then reverse every parent edge on
  // it.
  std::vector<TdNodeId> path;
  for (TdNodeId cur = new_root; cur != kNoTdNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    path.push_back(cur);
  }
  TREEDL_CHECK(path.back() == root_) << "broken parent chain";
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    TdNodeId child = path[i];       // becomes the parent
    TdNodeId parent = path[i + 1];  // becomes the child
    auto& pc = nodes_[static_cast<size_t>(parent)].children;
    pc.erase(std::remove(pc.begin(), pc.end(), child), pc.end());
    nodes_[static_cast<size_t>(child)].children.push_back(parent);
    nodes_[static_cast<size_t>(parent)].parent = child;
  }
  nodes_[static_cast<size_t>(new_root)].parent = kNoTdNode;
  root_ = new_root;
  return Status::OK();
}

TdNodeId TreeDecomposition::FindNodeContaining(ElementId e) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (BagContains(static_cast<TdNodeId>(i), e)) {
      return static_cast<TdNodeId>(i);
    }
  }
  return kNoTdNode;
}

void TreeDecomposition::SetBag(TdNodeId id, std::vector<ElementId> bag) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  nodes_[static_cast<size_t>(id)].bag = std::move(bag);
}

std::vector<TdNodeId> SubtreeNodes(const TreeDecomposition& td, TdNodeId t) {
  std::vector<TdNodeId> out;
  std::vector<TdNodeId> stack{t};
  while (!stack.empty()) {
    TdNodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for (TdNodeId c : td.node(id).children) stack.push_back(c);
  }
  return out;
}

std::vector<TdNodeId> EnvelopeNodes(const TreeDecomposition& td, TdNodeId t) {
  std::vector<bool> in_subtree(td.NumNodes(), false);
  for (TdNodeId id : SubtreeNodes(td, t)) {
    in_subtree[static_cast<size_t>(id)] = true;
  }
  std::vector<TdNodeId> out;
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    if (!in_subtree[i] || static_cast<TdNodeId>(i) == t) {
      out.push_back(static_cast<TdNodeId>(i));
    }
  }
  return out;
}

std::vector<ElementId> ElementsInBags(const TreeDecomposition& td,
                                      const std::vector<TdNodeId>& nodes) {
  std::vector<ElementId> out;
  for (TdNodeId id : nodes) {
    const auto& bag = td.Bag(id);
    out.insert(out.end(), bag.begin(), bag.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Structure InducedStructure(const Structure& structure,
                           const TreeDecomposition& td, TdNodeId t,
                           bool envelope, std::vector<ElementId>* bag_out) {
  std::vector<TdNodeId> nodes =
      envelope ? EnvelopeNodes(td, t) : SubtreeNodes(td, t);
  std::vector<ElementId> elements = ElementsInBags(td, nodes);
  std::unordered_map<ElementId, ElementId> old_to_new;
  Structure sub = structure.InducedSubstructure(elements, &old_to_new);
  if (bag_out != nullptr) {
    bag_out->clear();
    for (ElementId e : td.Bag(t)) bag_out->push_back(old_to_new.at(e));
  }
  return sub;
}

}  // namespace treedl
