#include "fta/tree_automaton.hpp"

#include "common/logging.hpp"

namespace treedl::fta {

int LabeledTree::AddNode(LabelId label, std::vector<int> children) {
  nodes.push_back(Node{label, std::move(children)});
  return static_cast<int>(nodes.size()) - 1;
}

Status TreeAutomaton::AddTransition(LabelId label,
                                    std::vector<StateId> child_states,
                                    StateId target) {
  if (label < 0 || label >= num_labels_) {
    return Status::InvalidArgument("label out of range");
  }
  if (target < 0 || target >= num_states_) {
    return Status::InvalidArgument("target state out of range");
  }
  if (child_states.size() > 2) {
    return Status::InvalidArgument("only arities 0..2 are supported");
  }
  for (StateId s : child_states) {
    if (s < 0 || s >= num_states_) {
      return Status::InvalidArgument("child state out of range");
    }
  }
  auto key = std::make_pair(label, std::move(child_states));
  auto [it, inserted] = transitions_.emplace(std::move(key), target);
  if (!inserted && it->second != target) {
    return Status::AlreadyExists("conflicting transition (nondeterminism)");
  }
  return Status::OK();
}

void TreeAutomaton::SetAccepting(StateId state, bool accepting) {
  if (accepting) {
    accepting_.insert(state);
  } else {
    accepting_.erase(state);
  }
}

StatusOr<StateId> TreeAutomaton::Run(const LabeledTree& tree) const {
  if (tree.nodes.empty()) return Status::InvalidArgument("empty tree");
  // Iterative post-order evaluation.
  std::vector<StateId> state(tree.nodes.size(), -1);
  std::vector<std::pair<int, bool>> stack{{tree.root, false}};
  while (!stack.empty()) {
    auto [node, expanded] = stack.back();
    stack.pop_back();
    const auto& n = tree.nodes[static_cast<size_t>(node)];
    if (!expanded) {
      stack.emplace_back(node, true);
      for (int c : n.children) stack.emplace_back(c, false);
      continue;
    }
    std::vector<StateId> child_states;
    for (int c : n.children) {
      child_states.push_back(state[static_cast<size_t>(c)]);
    }
    auto it = transitions_.find(std::make_pair(n.label, child_states));
    if (it == transitions_.end()) {
      return Status::NotFound("missing transition for label " +
                              std::to_string(n.label));
    }
    state[static_cast<size_t>(node)] = it->second;
  }
  return state[static_cast<size_t>(tree.root)];
}

StatusOr<bool> TreeAutomaton::Accepts(const LabeledTree& tree) const {
  auto run = Run(tree);
  if (run.status().code() == StatusCode::kNotFound) return false;
  TREEDL_RETURN_IF_ERROR(run.status());
  return IsAccepting(*run);
}

StatusOr<TreeAutomaton> TreeAutomaton::Product(const TreeAutomaton& a,
                                               const TreeAutomaton& b,
                                               bool conjunction) {
  if (a.num_labels_ != b.num_labels_) {
    return Status::InvalidArgument("product requires equal label alphabets");
  }
  TreeAutomaton out(a.num_states_ * b.num_states_, a.num_labels_);
  auto pair_id = [&](StateId sa, StateId sb) {
    return sa * b.num_states_ + sb;
  };
  for (const auto& [ka, ta] : a.transitions_) {
    for (const auto& [kb, tb] : b.transitions_) {
      if (ka.first != kb.first) continue;
      if (ka.second.size() != kb.second.size()) continue;
      std::vector<StateId> children;
      for (size_t i = 0; i < ka.second.size(); ++i) {
        children.push_back(pair_id(ka.second[i], kb.second[i]));
      }
      TREEDL_RETURN_IF_ERROR(
          out.AddTransition(ka.first, std::move(children), pair_id(ta, tb)));
    }
  }
  for (StateId sa = 0; sa < a.num_states_; ++sa) {
    for (StateId sb = 0; sb < b.num_states_; ++sb) {
      bool acc = conjunction ? (a.IsAccepting(sa) && b.IsAccepting(sb))
                             : (a.IsAccepting(sa) || b.IsAccepting(sb));
      if (acc) out.SetAccepting(pair_id(sa, sb));
    }
  }
  return out;
}

bool TreeAutomaton::IsComplete() const {
  // Complete means: for every label and every arity-consistent child state
  // tuple there is a transition. We check all arities 0..2 uniformly (labels
  // are not arity-typed in this implementation).
  size_t expected = 0;
  size_t n = static_cast<size_t>(num_states_);
  expected = static_cast<size_t>(num_labels_) * (1 + n + n * n);
  return transitions_.size() == expected;
}

TreeAutomaton TreeAutomaton::Complete() const {
  TreeAutomaton out(num_states_ + 1, num_labels_);
  StateId sink = num_states_;
  out.transitions_ = transitions_;
  out.accepting_ = accepting_;
  for (LabelId label = 0; label < num_labels_; ++label) {
    // Arity 0.
    if (!out.transitions_.count({label, {}})) {
      out.transitions_[{label, {}}] = sink;
    }
    // Arities 1 and 2 over the extended state set.
    for (StateId s1 = 0; s1 <= num_states_; ++s1) {
      if (!out.transitions_.count({label, {s1}})) {
        out.transitions_[{label, {s1}}] = sink;
      }
      for (StateId s2 = 0; s2 <= num_states_; ++s2) {
        if (!out.transitions_.count({label, {s1, s2}})) {
          out.transitions_[{label, {s1, s2}}] = sink;
        }
      }
    }
  }
  return out;
}

StatusOr<TreeAutomaton> TreeAutomaton::Complement() const {
  if (!IsComplete()) {
    return Status::InvalidArgument(
        "complementation requires a complete automaton; call Complete()");
  }
  TreeAutomaton out = *this;
  out.accepting_.clear();
  for (StateId s = 0; s < num_states_; ++s) {
    if (!IsAccepting(s)) out.accepting_.insert(s);
  }
  return out;
}

std::set<StateId> TreeAutomaton::ReachableStates() const {
  std::set<StateId> reachable;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [key, target] : transitions_) {
      if (reachable.count(target)) continue;
      bool all_reachable = true;
      for (StateId c : key.second) {
        if (!reachable.count(c)) {
          all_reachable = false;
          break;
        }
      }
      if (all_reachable) {
        reachable.insert(target);
        changed = true;
      }
    }
  }
  return reachable;
}

bool TreeAutomaton::IsLanguageEmpty() const {
  for (StateId s : ReachableStates()) {
    if (IsAccepting(s)) return false;
  }
  return true;
}

}  // namespace treedl::fta
