// Generic dynamic programming over modified-normalized tree decompositions.
//
// This captures the execution model of the paper's §5 programs: a succinct
// (non-monadic) datalog program whose solve(...) facts are computed by a
// bottom-up traversal, materializing only *reachable* states (the paper's
// optimization (2), "lazy grounding"). Problems plug in transition hooks:
//
//   struct Problem {
//     using State = ...;   // provides hash() and operator==
//     using Value = ...;   // e.g. std::monostate (decision), uint64_t (count)
//     void Leaf(bag, emit);
//     void Introduce(bag, element, state, value, emit);
//     void Forget(bag, element, state, value, emit);
//     JoinKey KeyOf(state);                     // JoinKey provides hash()/==
//     void Join(bag, s1, v1, s2, v2, emit);     // called per key-equal pair
//     Value Merge(v1, v2);                      // same state reached twice
//   };
//
// `emit(state, value)` may be called any number of times per transition.
// Merge must be commutative and associative — the drivers rely on this for
// order-independence of the final tables.
//
// State tables are flat, arena-backed open-addressing tables (StateTable =
// FlatTable, common/flat_table.hpp): states live contiguously per bag in the
// node's own bump arena — one allocation per growth step instead of one heap
// node per state — and a whole table can be released at once, which is the
// primitive behind dead-table eviction (below).
//
// Two drivers share the per-node transition logic:
//   RunTreeDp         — sequential post-order traversal;
//   RunTreeDpSharded  — bag-sharded parallel traversal: independent subtree
//                       shards (td/shard.hpp) execute concurrently on a
//                       ThreadPool, a shard becoming runnable when all of its
//                       child shards have completed. Problem hooks must be
//                       const and stateless (all in-tree problems are); the
//                       resulting table is bit-identical to the sequential
//                       one, because every node still sees fully-built child
//                       tables and processes them in the same order.
//
// Dead-table eviction (DpExec::table_memory_budget > 0): a node's table is
// consumed exactly once — by its parent node (in the same shard, or as the
// boundary table of a child shard that the parent shard reads). The drivers
// therefore release every child table right after its parent node is
// processed, bounding peak table memory by the live frontier of the
// traversal instead of the whole decomposition. The root's table is never
// evicted (the finalizers read it), and problems that re-read interior
// tables after the run (witness extraction) opt out per pass/run.
// DpStats::peak_table_bytes / tables_evicted report the effect.
//
// MultiDp fuses several problems into ONE traversal: each registered problem
// keeps its own state table, but the tree (and, in the parallel case, the
// shard schedule) is walked once. Within a chunk of nodes (the whole
// post-order, or one shard's node list) execution is *pass-major*: pass 1
// processes every node of the chunk, then pass 2, and so on — one state
// table streams through the cache at a time, instead of five tables
// thrashing it per node. This is what Engine::SolveAll runs — N problems
// cost one traversal family instead of N.
#ifndef TREEDL_CORE_TREE_DP_HPP_
#define TREEDL_CORE_TREE_DP_HPP_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_table.hpp"
#include "common/logging.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "common/work_budget.hpp"
#include "td/normalize.hpp"
#include "td/shard.hpp"

namespace treedl::core {

template <typename T>
struct MemberHash {
  size_t operator()(const T& t) const { return t.hash(); }
};

/// One bag's state table: flat open addressing over an arena (see header
/// comment). Iteration order is insertion order — deterministic and identical
/// between the sequential and sharded drivers.
template <typename State, typename Value>
using StateTable = FlatTable<State, Value>;

template <typename State, typename Value>
struct DpTable {
  /// Indexed by normalized-TD node id. Evicted nodes read as empty tables.
  std::vector<StateTable<State, Value>> nodes;

  const StateTable<State, Value>& at(TdNodeId id) const {
    return nodes[static_cast<size_t>(id)];
  }
};

struct DpStats {
  size_t total_states = 0;
  size_t max_states_per_node = 0;
  /// Shard tasks executed (0 when the traversal ran sequentially).
  size_t shards = 0;
  /// Wall-clock per shard task, indexed by shard id (parallel runs only).
  std::vector<double> shard_millis;
  /// Bottom-up walks of the decomposition executed by this run.
  size_t traversals = 0;
  /// DP state-table passes driven by those walks; a MultiDp traversal drives
  /// several passes per walk (passes > traversals is the fusion win).
  size_t passes = 0;
  /// High-water mark of live state-table bytes (arena footprints, summed
  /// across all passes of the run).
  size_t peak_table_bytes = 0;
  /// Dead tables released before the end of the run (0 without a budget).
  size_t tables_evicted = 0;
};

/// Execution context for the drivers. Default-constructed (or with either
/// pointer null, or a single shard) every driver below degrades to the
/// sequential traversal.
struct DpExec {
  const BagSharding* sharding = nullptr;
  ThreadPool* pool = nullptr;
  /// > 0 enables dead-table eviction (header comment): a soft ceiling on
  /// live table bytes. Eviction frees tables as soon as the traversal proves
  /// them dead, so peak memory tracks the traversal frontier; a budget
  /// smaller than the frontier itself is exceeded, never enforced by
  /// aborting. 0 keeps every table alive until the run ends (required by
  /// callers that re-read interior tables, e.g. witness extraction).
  size_t table_memory_budget = 0;
  /// Optional cooperative cancellation: each node step of each pass claims
  /// one work unit, and live table bytes are checked against the budget's
  /// hard cap after every table lands. Once the budget aborts, remaining
  /// steps are skipped (scheduling epilogues still run) and the CALLER must
  /// surface budget->AbortStatus() instead of reading the tables — they are
  /// partial. Null disables both checks.
  WorkBudget* budget = nullptr;

  bool Parallel() const {
    return sharding != nullptr && pool != nullptr && sharding->NumShards() > 1;
  }
};

namespace internal {

/// Cross-shard accounting of live state-table bytes. Relaxed atomics: the
/// counters are statistics, not synchronization; table lifetime is ordered by
/// the shard schedule itself.
struct TableMemoryTracker {
  std::atomic<size_t> current{0};
  std::atomic<size_t> peak{0};
  std::atomic<size_t> evicted{0};

  void Add(size_t bytes) {
    if (bytes == 0) return;
    size_t now = current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }

  void Evict(size_t bytes) {
    current.fetch_sub(bytes, std::memory_order_relaxed);
    evicted.fetch_add(1, std::memory_order_relaxed);
  }

  void FoldInto(DpStats* stats) const {
    if (stats == nullptr) return;
    stats->peak_table_bytes =
        std::max(stats->peak_table_bytes, peak.load(std::memory_order_relaxed));
    stats->tables_evicted += evicted.load(std::memory_order_relaxed);
  }
};

/// Computes one node's state table from its children's completed tables — the
/// single source of the transition semantics for both drivers.
template <typename Problem>
void DpProcessNode(const NormalizedTreeDecomposition& ntd, TdNodeId id,
                   Problem* problem,
                   DpTable<typename Problem::State,
                           typename Problem::Value>* table) {
  using State = typename Problem::State;
  using Value = typename Problem::Value;
  const NormNode& node = ntd.node(id);
  auto& states = table->nodes[static_cast<size_t>(id)];
  auto emit = [&](State state, Value value) {
    states.Emplace(std::move(state), std::move(value),
                   [&](const Value& existing, const Value& incoming) {
                     return problem->Merge(existing, incoming);
                   });
  };
  switch (node.kind) {
    case NormNodeKind::kLeaf:
      problem->Leaf(node.bag, emit);
      break;
    case NormNodeKind::kIntroduce: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) {
        problem->Introduce(node.bag, node.element, state, value, emit);
      }
      break;
    }
    case NormNodeKind::kForget: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) {
        problem->Forget(node.bag, node.element, state, value, emit);
      }
      break;
    }
    case NormNodeKind::kCopy: {
      const auto& child = table->nodes[static_cast<size_t>(node.children[0])];
      for (const auto& [state, value] : child) emit(state, value);
      break;
    }
    case NormNodeKind::kBranch: {
      const auto& left = table->nodes[static_cast<size_t>(node.children[0])];
      const auto& right = table->nodes[static_cast<size_t>(node.children[1])];
      // Bucket the right child's entries by join key, then pair. Entry
      // pointers stay valid while the (completed) right table is alive.
      using Entry = typename StateTable<State, Value>::Entry;
      using JoinKey = std::decay_t<decltype(problem->KeyOf(
          std::declval<const State&>()))>;
      std::unordered_map<JoinKey, std::vector<const Entry*>,
                         MemberHash<JoinKey>>
          buckets;
      for (const auto& entry : right) {
        buckets[problem->KeyOf(entry.first)].push_back(&entry);
      }
      for (const auto& [state, value] : left) {
        auto it = buckets.find(problem->KeyOf(state));
        if (it == buckets.end()) continue;
        for (const Entry* rhs : it->second) {
          problem->Join(node.bag, state, value, rhs->first, rhs->second, emit);
        }
      }
      break;
    }
  }
}

/// Eviction step shared by every driver: after node `id` was processed, its
/// children's tables have been consumed for the last time — release them.
/// Exactly-once by construction (every node has one parent); the root is
/// never anyone's child, so the root table always survives the run.
template <typename State, typename Value>
void EvictChildTables(const NormalizedTreeDecomposition& ntd, TdNodeId id,
                      DpTable<State, Value>* table, TableMemoryTracker* memory) {
  for (TdNodeId child : ntd.node(id).children) {
    auto& dead = table->nodes[static_cast<size_t>(child)];
    size_t bytes = dead.MemoryBytes();
    if (bytes == 0) continue;
    dead.Release();
    memory->Evict(bytes);
  }
}

/// One pass's node step: transition + stats + memory accounting + optional
/// child eviction. Shared by the single-problem drivers and MultiDp.
///
/// Budgeted runs claim one work unit per step and verify the hard live-byte
/// cap after the node's table lands. An exhausted budget turns remaining
/// steps into no-ops — the walk completes (dependency countdowns intact) but
/// the tables are partial, so callers must check budget->Aborted() before any
/// finalizer.
template <typename Problem>
void DpStepNode(const NormalizedTreeDecomposition& ntd, TdNodeId id,
                Problem* problem,
                DpTable<typename Problem::State, typename Problem::Value>*
                    table,
                TableMemoryTracker* memory, bool evict, DpStats* stats,
                WorkBudget* budget = nullptr) {
  if (budget != nullptr && !budget->ConsumeUnit()) return;
  DpProcessNode(ntd, id, problem, table);
  const auto& states = table->nodes[static_cast<size_t>(id)];
  if (stats != nullptr) {
    stats->total_states += states.size();
    stats->max_states_per_node =
        std::max(stats->max_states_per_node, states.size());
  }
  memory->Add(states.MemoryBytes());
  if (budget != nullptr) {
    budget->CheckTableBytes(memory->current.load(std::memory_order_relaxed));
  }
  if (evict) EvictChildTables(ntd, id, table, memory);
}

}  // namespace internal

/// Runs several fused per-node processors (one per sub-problem) over node
/// chunks delivered by one traversal. Holds type-erased (problem, table)
/// pairs; Add() copies the problem in and returns a stable pointer to its
/// table, valid for the MultiDp's lifetime — callers read their results out
/// of it after the traversal ran (see RunMultiTreeDpAuto).
class MultiDp {
 public:
  /// Registers a pass. `retain_tables` = false declares that the pass's
  /// finalizer only reads the root table, making its interior tables
  /// evictable under a memory budget; passes that re-read the full table
  /// after the run (witness extraction) must keep the default.
  template <typename Problem>
  const DpTable<typename Problem::State, typename Problem::Value>* Add(
      Problem problem, bool retain_tables = true) {
    auto pass = std::make_unique<Pass<Problem>>(std::move(problem),
                                                retain_tables);
    auto* table = &pass->table;
    passes_.push_back(std::move(pass));
    return table;
  }

  size_t NumPasses() const { return passes_.size(); }

  // --- Driver interface (not for end users) -------------------------------

  void Prepare(size_t num_nodes) {
    for (auto& pass : passes_) pass->Prepare(num_nodes);
  }

  /// Runs every registered pass over `nodes` (a post-order-consistent chunk:
  /// the full post order, or one shard's node list), pass-major — each
  /// pass's table streams through the cache alone instead of interleaving
  /// all tables per node. Safe to call concurrently for the node lists of
  /// distinct shards (each pass writes only the chunk's slots, and the shard
  /// schedule orders child-table reads), which is exactly the sharded
  /// driver's access pattern.
  void ProcessChunk(const NormalizedTreeDecomposition& ntd,
                    const std::vector<TdNodeId>& nodes,
                    internal::TableMemoryTracker* memory,
                    size_t table_memory_budget, DpStats* stats,
                    WorkBudget* budget = nullptr) {
    for (auto& pass : passes_) {
      pass->ProcessChunk(ntd, nodes, memory, table_memory_budget, stats,
                         budget);
    }
  }

 private:
  struct PassBase {
    virtual ~PassBase() = default;
    virtual void Prepare(size_t num_nodes) = 0;
    virtual void ProcessChunk(const NormalizedTreeDecomposition& ntd,
                              const std::vector<TdNodeId>& nodes,
                              internal::TableMemoryTracker* memory,
                              size_t table_memory_budget, DpStats* stats,
                              WorkBudget* budget) = 0;
  };

  template <typename Problem>
  struct Pass : PassBase {
    Pass(Problem p, bool retain) : problem(std::move(p)), retain_tables(retain) {}

    void Prepare(size_t num_nodes) override {
      table.nodes.clear();
      table.nodes.resize(num_nodes);
    }
    void ProcessChunk(const NormalizedTreeDecomposition& ntd,
                      const std::vector<TdNodeId>& nodes,
                      internal::TableMemoryTracker* memory,
                      size_t table_memory_budget, DpStats* stats,
                      WorkBudget* budget) override {
      bool evict = table_memory_budget > 0 && !retain_tables;
      for (TdNodeId id : nodes) {
        internal::DpStepNode(ntd, id, &problem, &table, memory, evict, stats,
                             budget);
      }
    }

    Problem problem;
    bool retain_tables;
    DpTable<typename Problem::State, typename Problem::Value> table;
  };

  std::vector<std::unique_ptr<PassBase>> passes_;
};

namespace internal {

/// Direction of a sharded walk. kBottomUp is the DP default: a shard runs
/// once its child shards are done, nodes in post order. kTopDown inverts the
/// schedule for root-to-leaves passes (the §5.3 solve↓ tables): a shard runs
/// once its parent shard is done, nodes in reverse post order (parents
/// before children within the shard).
enum class WalkDirection { kBottomUp, kTopDown };

/// The shard schedule shared by every parallel driver: executes
/// `process_chunk(shard_nodes, &local_stats)` once per shard on the pool; a
/// shard is submitted once all of its dependencies (child shards bottom-up,
/// the parent shard top-down) are done, and the calling thread helps drain
/// the pool while waiting. `process_chunk` is invoked concurrently from
/// multiple threads for distinct shards.
template <typename ProcessChunk>
void RunShardedWalk(const DpExec& exec, ProcessChunk&& process_chunk,
                    DpStats* stats,
                    WalkDirection direction = WalkDirection::kBottomUp) {
  TREEDL_CHECK(exec.Parallel());
  const BagSharding& sharding = *exec.sharding;
  size_t num_shards = sharding.NumShards();
  const bool top_down = direction == WalkDirection::kTopDown;

  // Per-shard bookkeeping: dependency counters, isolated stats slots (merged
  // at the end — no contention), and the completion group.
  std::vector<std::atomic<size_t>> pending(num_shards);
  std::vector<DpStats> shard_stats(num_shards);
  std::vector<double> shard_millis(num_shards, 0.0);
  WaitGroup done;
  done.Add(num_shards);

  // The task runner; owns no state, everything lives on this frame, which
  // outlives all tasks because Wait() returns only after the last Done().
  std::function<void(size_t)> run_shard = [&](size_t s) {
    Timer timer;
    if (top_down) {
      std::vector<TdNodeId> reversed(sharding.shards[s].nodes.rbegin(),
                                     sharding.shards[s].nodes.rend());
      process_chunk(reversed, &shard_stats[s]);
    } else {
      process_chunk(sharding.shards[s].nodes, &shard_stats[s]);
    }
    shard_millis[s] = timer.ElapsedMillis();
    auto ready = [&](int next) {
      return pending[static_cast<size_t>(next)].fetch_sub(
                 1, std::memory_order_acq_rel) == 1;
    };
    if (top_down) {
      for (int child : sharding.shards[s].children) {
        if (ready(child)) {
          exec.pool->Submit([&run_shard, child] {
            run_shard(static_cast<size_t>(child));
          });
        }
      }
    } else {
      int parent = sharding.shards[s].parent;
      if (parent >= 0 && ready(parent)) {
        exec.pool->Submit([&run_shard, parent] {
          run_shard(static_cast<size_t>(parent));
        });
      }
    }
    done.Done();
  };

  for (size_t s = 0; s < num_shards; ++s) {
    size_t deps = top_down ? (sharding.shards[s].parent >= 0 ? 1 : 0)
                           : sharding.shards[s].children.size();
    pending[s].store(deps, std::memory_order_relaxed);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    bool source = top_down ? sharding.shards[s].parent < 0
                           : sharding.shards[s].children.empty();
    if (source) {
      exec.pool->Submit([&run_shard, s] { run_shard(s); });
    }
  }
  // Help drain the pool instead of idling (also makes progress on a
  // single-worker pool shared by several concurrent queries).
  while (exec.pool->RunOneTask()) {
  }
  done.Wait();

  if (stats != nullptr) {
    for (const DpStats& local : shard_stats) {
      stats->total_states += local.total_states;
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, local.max_states_per_node);
    }
    stats->shards += num_shards;
    stats->shard_millis.insert(stats->shard_millis.end(),
                               shard_millis.begin(), shard_millis.end());
  }
}

}  // namespace internal

/// Runs the bottom-up pass of `problem` over `ntd` sequentially and returns
/// the full table. The table at the root characterizes the whole structure.
/// table_memory_budget > 0 releases child tables as the walk consumes them
/// (see the eviction contract in the header comment) — only valid when the
/// caller reads nothing but the root table afterwards.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDp(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    DpStats* stats = nullptr, size_t table_memory_budget = 0,
    WorkBudget* budget = nullptr) {
  DpTable<typename Problem::State, typename Problem::Value> table;
  table.nodes.resize(ntd.NumNodes());
  internal::TableMemoryTracker memory;
  bool evict = table_memory_budget > 0;
  for (TdNodeId id : ntd.PostOrder()) {
    internal::DpStepNode(ntd, id, problem, &table, &memory, evict, stats,
                         budget);
  }
  memory.FoldInto(stats);
  if (stats != nullptr) {
    ++stats->traversals;
    ++stats->passes;
  }
  return table;
}

/// Parallel driver: one shard-scheduled walk (internal::RunShardedWalk) of
/// `problem`'s transitions. Requires exec.Parallel(); the problem's hooks are
/// invoked concurrently from multiple threads and must be const/stateless.
/// Honors exec.table_memory_budget (root-only readers only; see RunTreeDp).
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDpSharded(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    const DpExec& exec, DpStats* stats = nullptr) {
  DpTable<typename Problem::State, typename Problem::Value> table;
  table.nodes.resize(ntd.NumNodes());
  internal::TableMemoryTracker memory;
  bool evict = exec.table_memory_budget > 0;
  internal::RunShardedWalk(
      exec,
      [&](const std::vector<TdNodeId>& nodes, DpStats* local) {
        for (TdNodeId id : nodes) {
          internal::DpStepNode(ntd, id, problem, &table, &memory, evict,
                               local, exec.budget);
        }
      },
      stats);
  memory.FoldInto(stats);
  if (stats != nullptr) {
    ++stats->traversals;
    ++stats->passes;
  }
  return table;
}

/// Fused sequential driver: one pass-major walk of the post order feeding
/// every pass of `multi`. Results are read out of the table pointers Add()
/// returned. table_memory_budget applies per pass, honoring each pass's
/// retain_tables flag.
inline void RunMultiTreeDp(const NormalizedTreeDecomposition& ntd,
                           MultiDp* multi, DpStats* stats = nullptr,
                           size_t table_memory_budget = 0,
                           WorkBudget* budget = nullptr) {
  multi->Prepare(ntd.NumNodes());
  internal::TableMemoryTracker memory;
  std::vector<TdNodeId> post = ntd.PostOrder();
  multi->ProcessChunk(ntd, post, &memory, table_memory_budget, stats, budget);
  memory.FoldInto(stats);
  if (stats != nullptr) {
    ++stats->traversals;
    stats->passes += multi->NumPasses();
  }
}

/// Fused parallel driver: ONE shard-scheduled walk drives every pass of
/// `multi` — each bag is visited once, `stats->shards` grows by the shard
/// count of a single traversal (not one per pass). Within a shard the passes
/// run chunked pass-major (cache locality); across shards the schedule is
/// unchanged. Requires exec.Parallel().
inline void RunMultiTreeDpSharded(const NormalizedTreeDecomposition& ntd,
                                  MultiDp* multi, const DpExec& exec,
                                  DpStats* stats = nullptr) {
  multi->Prepare(ntd.NumNodes());
  internal::TableMemoryTracker memory;
  internal::RunShardedWalk(
      exec,
      [&](const std::vector<TdNodeId>& nodes, DpStats* local) {
        multi->ProcessChunk(ntd, nodes, &memory, exec.table_memory_budget,
                            local, exec.budget);
      },
      stats);
  memory.FoldInto(stats);
  if (stats != nullptr) {
    ++stats->traversals;
    stats->passes += multi->NumPasses();
  }
}

/// Dispatches the fused traversal to the sharded driver when `exec` carries a
/// usable sharding and pool, else to the sequential one.
inline void RunMultiTreeDpAuto(const NormalizedTreeDecomposition& ntd,
                               MultiDp* multi, const DpExec& exec,
                               DpStats* stats = nullptr) {
  if (exec.Parallel()) return RunMultiTreeDpSharded(ntd, multi, exec, stats);
  return RunMultiTreeDp(ntd, multi, stats, exec.table_memory_budget,
                        exec.budget);
}

/// Dispatches to the sharded driver when `exec` carries a usable sharding and
/// pool, else to the sequential one.
template <typename Problem>
DpTable<typename Problem::State, typename Problem::Value> RunTreeDpAuto(
    const NormalizedTreeDecomposition& ntd, Problem* problem,
    const DpExec& exec, DpStats* stats = nullptr) {
  if (exec.Parallel()) return RunTreeDpSharded(ntd, problem, exec, stats);
  return RunTreeDp(ntd, problem, stats, exec.table_memory_budget, exec.budget);
}

}  // namespace treedl::core

#endif  // TREEDL_CORE_TREE_DP_HPP_
