// A bump allocator backing the flat DP state tables (common/flat_table.hpp).
//
// The tree DPs allocate in a rigid pattern: a node's table grows while the
// node is processed, is then read by the node's parent, and finally dies as a
// whole — individual states are never freed. An Arena matches that lifetime:
// Allocate() bumps a pointer inside geometrically growing malloc'd blocks
// (one or two mallocs for a typical node table, instead of one per state in
// the old std::unordered_map representation), and Reset() returns everything
// at once. Nothing is destructed — callers own destruction of non-trivial
// objects placed in the arena (FlatTable does).
//
// Not thread-safe; the sharded DP driver gives every node table its own
// arena, and a node is only ever touched by one thread at a time.
#ifndef TREEDL_COMMON_ARENA_HPP_
#define TREEDL_COMMON_ARENA_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace treedl {

class Arena {
 public:
  Arena() = default;
  // Moves must zero the source's byte count along with its blocks, or a
  // moved-from arena would report a phantom footprint (and keep growing it).
  Arena(Arena&& other) noexcept
      : blocks_(std::move(other.blocks_)),
        total_bytes_(std::exchange(other.total_bytes_, 0)) {
    other.blocks_.clear();
  }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      blocks_ = std::move(other.blocks_);
      other.blocks_.clear();
      total_bytes_ = std::exchange(other.total_bytes_, 0);
    }
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two). The
  /// memory lives until Reset() or destruction; it is never reused before
  /// that, so pointers into earlier allocations stay valid across later ones.
  void* Allocate(size_t bytes, size_t align) {
    if (bytes == 0) bytes = 1;
    if (!blocks_.empty()) {
      Block& block = blocks_.back();
      // Align the absolute address, not the offset — the block base itself
      // is only aligned to the default new alignment.
      uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
      size_t aligned = static_cast<size_t>(
          ((base + block.used + align - 1) & ~uintptr_t{align - 1}) - base);
      if (aligned + bytes <= block.size) {
        block.used = aligned + bytes;
        return block.data.get() + aligned;
      }
    }
    // New block: geometric growth keeps the block count (and the bump-path
    // misses) logarithmic in the table size.
    size_t next = blocks_.empty() ? kMinBlockBytes : blocks_.back().size * 2;
    if (next < bytes + align) next = bytes + align;
    Block block;
    block.data = std::make_unique<std::byte[]>(next);
    block.size = next;
    total_bytes_ += next;
    uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
    size_t aligned = ((base + align - 1) & ~(align - 1)) - base;
    block.used = aligned + bytes;
    blocks_.push_back(std::move(block));
    return blocks_.back().data.get() + aligned;
  }

  /// Uninitialized storage for `n` objects of type T. The caller placement-
  /// constructs and (for non-trivial T) destroys them.
  template <typename T>
  T* AllocateArray(size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Total bytes of backing blocks (allocated capacity, the arena's actual
  /// memory footprint — what the DP memory accounting charges).
  size_t TotalBytes() const { return total_bytes_; }

  /// Frees every block. Outstanding pointers become dangling.
  void Reset() {
    blocks_.clear();
    total_bytes_ = 0;
  }

 private:
  static constexpr size_t kMinBlockBytes = 256;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
  size_t total_bytes_ = 0;
};

}  // namespace treedl

#endif  // TREEDL_COMMON_ARENA_HPP_
