// The decomposition-quality pipeline's property suite: soundness of every
// preprocessing reduction (against the exact treewidth and against the
// engine's five fused graph DPs), the no-regression guarantees of the
// width-reduce pass and the full pipeline, and determinism of the anytime
// improvement hook at every thread count.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/work_budget.hpp"
#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "td/elimination_order.hpp"
#include "td/heuristics.hpp"
#include "td/improve.hpp"
#include "td/preprocess.hpp"
#include "td/validate.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

/// A mixed bag of seeded instances: bounded-treewidth partial k-trees plus
/// G(n, p) graphs with no width guarantee (isolated vertices, pendants and
/// dense pockets alike), so every reduction rule gets exercised.
std::vector<Graph> RandomInstances(Rng* rng, size_t count, size_t n) {
  std::vector<Graph> graphs;
  for (size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      graphs.push_back(RandomPartialKTree(n, 3, 0.7, rng));
    } else {
      graphs.push_back(RandomGnp(n, 3.0 / static_cast<double>(n), rng));
    }
  }
  return graphs;
}

TEST(TdQualityTest, PreprocessSpliceBackIsValidAndWidthSafe) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 12, 40)) {
    PreprocessResult pre = Preprocess(graph);
    ASSERT_EQ(pre.reduced.NumVertices() + pre.eliminated.size(),
              graph.NumVertices());
    TreeDecomposition reduced_td;
    int reduced_width = -1;
    if (pre.reduced.NumVertices() > 0) {
      auto td = Decompose(pre.reduced, TdHeuristic::kMinFill);
      ASSERT_TRUE(td.ok()) << td.status();
      ASSERT_TRUE(ValidateForGraph(pre.reduced, *td).ok());
      reduced_width = td->Width();
      reduced_td = std::move(td).value();
    }
    auto spliced = SpliceBack(pre, reduced_td);
    ASSERT_TRUE(spliced.ok()) << spliced.status();
    EXPECT_TRUE(ValidateForGraph(graph, *spliced).ok());
    // Width safety: tw(G) = max(tw(reduced), lower_bound), and every splice
    // bag has size deg(v) + 1 <= max(lower_bound, reduced width) + 1.
    EXPECT_LE(spliced->Width(), std::max(reduced_width, pre.lower_bound));
  }
}

TEST(TdQualityTest, ReductionsPreserveExactTreewidthOnSmallGraphs) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 10, 16)) {
    PreprocessResult pre = Preprocess(graph);
    int exact = ExactTreewidth(graph).value();
    EXPECT_LE(pre.lower_bound, exact);
    // The invariant the rules maintain: tw(G) = max(tw(reduced), lb).
    int reduced_exact =
        pre.reduced.NumVertices() > 0 ? ExactTreewidth(pre.reduced).value() : 0;
    EXPECT_EQ(std::max(reduced_exact, pre.lower_bound), exact);
    // The pipeline can never beat the exact width, and never loses to the
    // plain min-fill order.
    PipelineOptions popts;
    popts.seed = TestSeed(1);
    auto pipeline = DecomposePipeline(graph, popts);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    EXPECT_TRUE(ValidateForGraph(graph, *pipeline).ok());
    EXPECT_GE(pipeline->Width(), exact);
    auto plain = Decompose(graph, TdHeuristic::kMinFill);
    ASSERT_TRUE(plain.ok());
    EXPECT_LE(pipeline->Width(), plain->Width());
  }
}

TEST(TdQualityTest, PipelineNeverRegressesWidthOrCost) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 10, 36)) {
    auto plain = Decompose(graph, TdHeuristic::kMinFill);
    ASSERT_TRUE(plain.ok());
    PipelineOptions popts;
    popts.seed = TestSeed(1);
    PipelineStats stats;
    auto pipeline = DecomposePipeline(graph, popts, &stats);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    EXPECT_TRUE(ValidateForGraph(graph, *pipeline).ok());
    EXPECT_LE(pipeline->Width(), plain->Width());
    EXPECT_LE(NormalizedDpCost(*pipeline).value(),
              NormalizedDpCost(*plain).value());
    EXPECT_EQ(stats.baseline_width, plain->Width());
  }
}

TEST(TdQualityTest, WidthReduceShrinksRawTreePreservingValidity) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 10, 36)) {
    auto td = Decompose(graph, TdHeuristic::kMinFill);
    ASSERT_TRUE(td.ok());
    uint64_t raw_cost = ModeledTdCost(*td);
    int width = td->Width();
    TreeDecomposition reduced = *td;
    size_t merges = WidthReduce(&reduced);
    EXPECT_TRUE(ValidateForGraph(graph, reduced).ok());
    EXPECT_LE(reduced.Width(), width);
    EXPECT_EQ(reduced.NumNodes() + merges, td->NumNodes());
    if (merges > 0) {
      EXPECT_LT(ModeledTdCost(reduced), raw_cost);
    }
    // The guarded variant additionally never lets the normal form get more
    // expensive — it reverts the merges when they would.
    TreeDecomposition guarded = *td;
    ASSERT_TRUE(CostGuardedWidthReduce(&guarded).ok());
    EXPECT_TRUE(ValidateForGraph(graph, guarded).ok());
    EXPECT_LE(guarded.Width(), width);
    EXPECT_LE(NormalizedDpCost(guarded).value(),
              NormalizedDpCost(*td).value());
  }
}

TEST(TdQualityTest, EliminationOrderFromTdKeepsWidth) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 10, 36)) {
    auto td = Decompose(graph, TdHeuristic::kMinFill);
    ASSERT_TRUE(td.ok());
    std::vector<VertexId> order = EliminationOrderFromTd(graph, *td);
    ASSERT_EQ(order.size(), graph.NumVertices());
    auto rebuilt = DecompositionFromOrder(graph, order);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    EXPECT_LE(rebuilt->Width(), td->Width());
  }
}

TEST(TdQualityTest, ImproveTdIsDeterministicAndMonotone) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 6, 36)) {
    auto td = Decompose(graph, TdHeuristic::kMinFill);
    ASSERT_TRUE(td.ok());
    ImproveOptions iopts;
    iopts.seed = TestSeed(1);
    iopts.max_rounds = 32;
    auto first = ImproveTd(graph, *td, iopts);
    ASSERT_TRUE(first.ok()) << first.status();
    // Never worse than the input, and the outcome fields agree with the
    // returned tree.
    EXPECT_LE(first->width_after, first->width_before);
    if (first->width_after == first->width_before) {
      EXPECT_LE(first->cost_after, first->cost_before);
    }
    EXPECT_TRUE(ValidateForGraph(graph, first->td).ok());
    EXPECT_EQ(first->td.Width(), first->width_after);
    EXPECT_EQ(NormalizedDpCost(first->td).value(), first->cost_after);
    // Same seed, same everything.
    auto second = ImproveTd(graph, *td, iopts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first->width_after, second->width_after);
    EXPECT_EQ(first->cost_after, second->cost_after);
    EXPECT_EQ(first->rounds, second->rounds);
    EXPECT_EQ(first->accepted, second->accepted);
    // A budget bounds the rounds exactly and exhaustion is not an error.
    WorkBudget budget;
    budget.SetDeadline(5);
    auto bounded = ImproveTd(graph, *td, iopts, &budget);
    ASSERT_TRUE(bounded.ok()) << bounded.status();
    EXPECT_LE(bounded->rounds, 5u);
  }
}

/// The satellite invariant: a pipeline session answers every one of the five
/// fused graph DPs bit-identically to a default session, at thread count 1
/// and 8 alike, and its decomposition is never wider.
TEST(TdQualityTest, PipelineEngineAnswersMatchDefaultAtAnyThreadCount) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 4, 32)) {
    std::optional<Engine::SolveAllResult> reference;
    std::optional<int> reference_width;
    for (bool pipeline : {false, true}) {
      std::optional<std::vector<int>> coloring_at_one;
      for (size_t threads : {size_t{1}, size_t{8}}) {
        EngineOptions options;
        options.num_threads = threads;
        options.td_pipeline = pipeline;
        Engine engine = Engine::FromGraph(graph, options);
        auto all = engine.SolveAll();
        ASSERT_TRUE(all.ok()) << all.status();
        if (!reference.has_value()) {
          reference = *all;
          reference_width = engine.Width().value();
        } else {
          EXPECT_EQ(all->three_colorable, reference->three_colorable);
          EXPECT_EQ(all->three_colorings, reference->three_colorings);
          EXPECT_EQ(all->min_vertex_cover, reference->min_vertex_cover);
          EXPECT_EQ(all->max_independent_set, reference->max_independent_set);
          EXPECT_EQ(all->min_dominating_set, reference->min_dominating_set);
        }
        if (pipeline) {
          // Reduced decomposition never wider than the default one.
          EXPECT_LE(engine.Width().value(), reference_width.value());
        }
        // Witnesses are decomposition-dependent, so they may differ between
        // the default and pipeline sessions — but within one configuration
        // they must be bit-identical at every thread count, and always a
        // proper coloring.
        if (!coloring_at_one.has_value()) {
          coloring_at_one = all->coloring;
        } else {
          EXPECT_EQ(all->coloring, coloring_at_one);
        }
        if (all->coloring.has_value()) {
          const std::vector<int>& colors = *all->coloring;
          ASSERT_EQ(colors.size(), graph.NumVertices());
          for (auto [u, v] : graph.Edges()) {
            EXPECT_NE(colors[u], colors[v]);
          }
        }
      }
    }
  }
}

TEST(TdQualityTest, ImproveDecompositionPreservesAnswersDeterministically) {
  Rng rng(TestSeed());
  for (const Graph& graph : RandomInstances(&rng, 3, 32)) {
    std::optional<Engine::ImproveResult> reference;
    for (size_t threads : {size_t{1}, size_t{8}}) {
      EngineOptions options;
      options.num_threads = threads;
      Engine engine = Engine::FromGraph(graph, options);
      auto before = engine.SolveAll();
      ASSERT_TRUE(before.ok()) << before.status();
      WorkBudget budget;
      budget.SetDeadline(24);
      RunStats run;
      auto improved = engine.ImproveDecomposition(&run, &budget);
      ASSERT_TRUE(improved.ok()) << improved.status();
      EXPECT_LE(improved->rounds, 24u);
      EXPECT_EQ(run.improve_rounds, improved->rounds);
      EXPECT_LE(improved->width_after, improved->width_before);
      // The improvement is a pure function of the session input: every
      // thread count sees the identical outcome.
      if (!reference.has_value()) {
        reference = *improved;
      } else {
        EXPECT_EQ(improved->improved, reference->improved);
        EXPECT_EQ(improved->width_after, reference->width_after);
        EXPECT_EQ(improved->cost_after, reference->cost_after);
        EXPECT_EQ(improved->rounds, reference->rounds);
      }
      // Swapping the decomposition must not change a single answer.
      auto after = engine.SolveAll();
      ASSERT_TRUE(after.ok()) << after.status();
      EXPECT_EQ(after->three_colorable, before->three_colorable);
      EXPECT_EQ(after->three_colorings, before->three_colorings);
      EXPECT_EQ(after->min_vertex_cover, before->min_vertex_cover);
      EXPECT_EQ(after->max_independent_set, before->max_independent_set);
      EXPECT_EQ(after->min_dominating_set, before->min_dominating_set);
    }
  }
}

}  // namespace
}  // namespace treedl
