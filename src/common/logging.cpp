#include "common/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace treedl {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(GetLogLevel())) {
    std::cerr << stream_.str() << "\n";
  }
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::cerr << "[FATAL " << file << ":" << line << "] Check failed: " << expr;
  if (!extra.empty()) std::cerr << " — " << extra;
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace treedl
