// The line-oriented text protocol of treedl::server.
//
// One request per line, one-or-more reply lines per request; blank lines and
// '%' comments are ignored. The same grammar serves interactive stdin, replay
// scripts (examples/treedl_server.cpp --script) and the multi-tenant bench —
// no sockets, so every transcript is deterministic and diffable.
//
// Requests (docs/SERVER_PROTOCOL.md has the full grammar):
//
//   LOAD <tenant> SIG <name/arity>... [FACTS <facts...>]   commit a structure
//   ASSERT <tenant> <facts...>                             append facts
//   QUERY <tenant> <datalog program>                       evaluate datalog
//   SOLVE <tenant> 3COL|#3COL|VC|IS|DS                     one graph problem
//   SOLVEALL <tenant>                                      all five, fused
//   MSO <tenant> <sentence>                                MSO evaluation
//   SAVE <tenant>                                          persist session
//   OPEN <tenant>                                          warm-start session
//   STATS [<tenant>]                                       counters
//   DEADLINE <units>|OFF                                   arm work budget
//   REOPT <tenant> <units>                                 improve the TD
//   CLOSE <tenant>                                         drop the tenant
//   QUIT                                                   stop the driver
//
// Replies:
//
//   OK <COMMAND> key=value ...      success, one line
//   DATA <payload>                  extra result rows (count framed by the
//                                   preceding OK line's data=N)
//   ERR <E_CODE> <message>          failure, one line
//
// This header is pure parsing and rendering: requests become typed objects,
// errors become typed codes. Execution lives in server/server.{hpp,cpp}.
#ifndef TREEDL_SERVER_PROTOCOL_HPP_
#define TREEDL_SERVER_PROTOCOL_HPP_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "engine/engine.hpp"

namespace treedl::server {

/// Typed error codes of ERR replies. The wire names (E_PARSE, ...) are part
/// of the protocol; see ErrorCodeName.
enum class ErrorCode {
  kParse,           // E_PARSE — malformed request or payload
  kUnknownCommand,  // E_CMD — first word is not a command
  kNoTenant,        // E_TENANT — tenant has no committed structure
  kBadArgument,     // E_ARG — well-formed line, invalid arguments
  kAdmission,       // E_ADMISSION — session pool/budget rejected the request
  kEval,            // E_EVAL — the engine failed to answer
  kIo,              // E_IO — session file or script IO failed
  kDeadline,        // E_DEADLINE — the request's work-unit deadline tripped
};

const char* ErrorCodeName(ErrorCode code);

struct LoadRequest {
  std::string tenant;
  /// Predicate signature, SIG order preserved: {name, arity} pairs.
  std::vector<std::pair<std::string, int>> predicates;
  /// Facts in the structure_io text format; may be empty.
  std::string facts;
};

struct AssertRequest {
  std::string tenant;
  std::string facts;
};

struct QueryRequest {
  std::string tenant;
  std::string program;  // datalog text, one line
};

struct SolveRequest {
  std::string tenant;
  Engine::Problem problem;
};

struct SolveAllRequest {
  std::string tenant;
};

struct MsoRequest {
  std::string tenant;
  std::string formula;
};

struct SaveRequest {
  std::string tenant;
};

struct OpenRequest {
  std::string tenant;
};

struct StatsRequest {
  std::optional<std::string> tenant;  // absent = server-wide counters
};

/// DEADLINE <units> arms a per-request work-unit budget for every subsequent
/// compute request on this connection; DEADLINE OFF disarms it. Units are
/// deterministic logical work (DP nodes processed, fixpoint rule tasks), so
/// "DEADLINE 100" sheds the same requests — with byte-identical E_DEADLINE
/// replies — at every thread count.
struct DeadlineRequest {
  std::optional<uint64_t> units;  // nullopt = OFF
};

/// REOPT <tenant> <units> runs the anytime decomposition-improvement hook
/// (Engine::ImproveDecomposition) for up to `units` local-search rounds —
/// one deterministic work unit per round, so the search stops at the same
/// round at every thread count. On strict width-or-cost improvement the
/// session swaps its decomposition and invalidates the derived artifacts;
/// subsequent queries lazily re-normalize and re-shard against the better
/// tree. Budget exhaustion is the normal stop, never an error.
struct ReoptRequest {
  std::string tenant;
  uint64_t units = 0;
};

struct CloseRequest {
  std::string tenant;
};

struct QuitRequest {};

using Request =
    std::variant<LoadRequest, AssertRequest, QueryRequest, SolveRequest,
                 SolveAllRequest, MsoRequest, SaveRequest, OpenRequest,
                 StatsRequest, DeadlineRequest, ReoptRequest, CloseRequest,
                 QuitRequest>;

/// The command keyword of a parsed request ("LOAD", "QUERY", ...).
const char* RequestName(const Request& request);

/// Parses one raw line. Blank lines and lines whose first non-space byte is
/// '%' yield an engaged-status std::nullopt: nothing to execute, nothing to
/// reply. Parse failures return Status (kParseError for malformed syntax,
/// kNotFound for an unknown command, kInvalidArgument for bad arguments);
/// the server maps those onto ErrorCode via ErrorCodeFor.
StatusOr<std::optional<Request>> ParseRequest(std::string_view line);

/// The ERR code a failed ParseRequest / engine Status maps to.
ErrorCode ErrorCodeFor(const Status& status);

/// Wire name of a Solve problem ("3COL", "#3COL", "VC", "IS", "DS").
const char* ProblemName(Engine::Problem problem);
StatusOr<Engine::Problem> ProblemFromName(std::string_view name);

/// Reply renderers — every server output line goes through one of these
/// (each returns the line WITHOUT a trailing newline).
std::string OkReply(std::string_view command, std::string_view details);
std::string DataReply(std::string_view payload);
std::string ErrorReply(ErrorCode code, std::string_view message);

}  // namespace treedl::server

#endif  // TREEDL_SERVER_PROTOCOL_HPP_
