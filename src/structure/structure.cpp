#include "structure/structure.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace treedl {

ElementId Structure::AddElement(const std::string& name) {
  auto it = element_ids_.find(name);
  if (it != element_ids_.end()) return it->second;
  ElementId id = static_cast<ElementId>(element_names_.size());
  element_names_.push_back(name);
  element_ids_.emplace(name, id);
  return id;
}

StatusOr<ElementId> Structure::ElementByName(const std::string& name) const {
  auto it = element_ids_.find(name);
  if (it == element_ids_.end()) {
    return Status::NotFound("unknown element: " + name);
  }
  return it->second;
}

Status Structure::AddFact(PredicateId predicate, Tuple args) {
  if (predicate < 0 || predicate >= signature_.size()) {
    return Status::InvalidArgument("predicate id out of range");
  }
  if (static_cast<int>(args.size()) != signature_.arity(predicate)) {
    return Status::InvalidArgument(
        "arity mismatch for " + signature_.name(predicate) + ": got " +
        std::to_string(args.size()) + ", want " +
        std::to_string(signature_.arity(predicate)));
  }
  for (ElementId a : args) {
    if (a >= element_names_.size()) {
      return Status::InvalidArgument("fact argument id out of range");
    }
  }
  auto& index = indexes_[static_cast<size_t>(predicate)];
  if (index.insert(args).second) {
    relations_[static_cast<size_t>(predicate)].push_back(std::move(args));
    ++num_facts_;
  }
  return Status::OK();
}

Status Structure::AddFactNamed(const std::string& predicate,
                               const std::vector<std::string>& args) {
  TREEDL_ASSIGN_OR_RETURN(PredicateId pid, signature_.PredicateIdOf(predicate));
  Tuple tuple;
  tuple.reserve(args.size());
  for (const std::string& a : args) tuple.push_back(AddElement(a));
  return AddFact(pid, std::move(tuple));
}

bool Structure::HasFact(PredicateId predicate, const Tuple& args) const {
  if (predicate < 0 || predicate >= signature_.size()) return false;
  return indexes_[static_cast<size_t>(predicate)].count(args) > 0;
}

std::vector<Fact> Structure::AllFacts() const {
  std::vector<Fact> out;
  out.reserve(num_facts_);
  for (PredicateId p = 0; p < signature_.size(); ++p) {
    for (const Tuple& t : relations_[static_cast<size_t>(p)]) {
      out.push_back(Fact{p, t});
    }
  }
  return out;
}

Structure Structure::InducedSubstructure(
    const std::vector<ElementId>& keep,
    std::unordered_map<ElementId, ElementId>* old_to_new) const {
  Structure sub(signature_);
  std::unordered_map<ElementId, ElementId> translation;
  translation.reserve(keep.size());
  for (ElementId old_id : keep) {
    TREEDL_CHECK(old_id < element_names_.size())
        << "induced substructure element out of range";
    if (translation.count(old_id)) continue;
    translation.emplace(old_id, sub.AddElement(element_names_[old_id]));
  }
  for (PredicateId p = 0; p < signature_.size(); ++p) {
    for (const Tuple& t : relations_[static_cast<size_t>(p)]) {
      Tuple mapped;
      mapped.reserve(t.size());
      bool all_kept = true;
      for (ElementId a : t) {
        auto it = translation.find(a);
        if (it == translation.end()) {
          all_kept = false;
          break;
        }
        mapped.push_back(it->second);
      }
      if (all_kept) {
        Status st = sub.AddFact(p, std::move(mapped));
        TREEDL_CHECK(st.ok()) << st.ToString();
      }
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(translation);
  return sub;
}

bool Structure::operator==(const Structure& other) const {
  if (!(signature_ == other.signature_)) return false;
  if (element_names_ != other.element_names_) return false;
  if (num_facts_ != other.num_facts_) return false;
  for (PredicateId p = 0; p < signature_.size(); ++p) {
    const auto& mine = relations_[static_cast<size_t>(p)];
    if (mine.size() != other.relations_[static_cast<size_t>(p)].size()) {
      return false;
    }
    for (const Tuple& t : mine) {
      if (!other.HasFact(p, t)) return false;
    }
  }
  return true;
}

}  // namespace treedl
