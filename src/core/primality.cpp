#include "core/primality.hpp"

#include <variant>

#include "common/logging.hpp"
#include "core/primality_internal.hpp"
#include "td/heuristics.hpp"
#include "td/validate.hpp"

namespace treedl::core {

namespace {

using internal::PrimalityContext;
using internal::PrimJoinKey;
using internal::PrimState;

// Adapter plugging PrimalityContext into the generic RunTreeDp driver.
struct PrimalityProblem {
  using State = PrimState;
  using Value = std::monostate;
  using Emit = std::function<void(State, Value)>;

  const PrimalityContext* context;

  void Leaf(const std::vector<ElementId>& bag, const Emit& emit) const {
    context->LeafStates(bag, [&](PrimState s) { emit(std::move(s), {}); });
  }
  void Introduce(const std::vector<ElementId>& bag, ElementId e,
                 const State& s, const Value&, const Emit& emit) const {
    auto forward = [&](PrimState next) { emit(std::move(next), {}); };
    if (context->IsAttr(e)) {
      context->IntroduceAttr(bag, e, s, forward);
    } else {
      context->IntroduceFd(bag, e, s, forward);
    }
  }
  void Forget(const std::vector<ElementId>& bag, ElementId e, const State& s,
              const Value&, const Emit& emit) const {
    auto forward = [&](PrimState next) { emit(std::move(next), {}); };
    if (context->IsAttr(e)) {
      context->ForgetAttr(bag, e, s, forward);
    } else {
      context->ForgetFd(bag, e, s, forward);
    }
  }
  PrimJoinKey KeyOf(const State& s) const { return context->KeyOf(s); }
  void Join(const std::vector<ElementId>& /*bag*/, const State& a,
            const Value&, const State& b, const Value&,
            const Emit& emit) const {
    context->Join(a, b, [&](PrimState next) { emit(std::move(next), {}); });
  }
  Value Merge(const Value& a, const Value&) const { return a; }
};

}  // namespace

StatusOr<bool> IsPrimeViaTd(const Schema& schema, const SchemaEncoding& encoding,
                            const TreeDecomposition& td, AttributeId a,
                            DpStats* stats) {
  if (a < 0 || a >= schema.NumAttributes()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  TREEDL_RETURN_IF_ERROR(ValidateForStructure(encoding.structure, td));
  PrimalityContext context(schema, encoding);
  TreeDecomposition closed = internal::CloseBagsForRhs(td, encoding, context);
  ElementId a_elem = encoding.AttrElement(a);
  TdNodeId root = closed.FindNodeContaining(a_elem);
  TREEDL_CHECK(root != kNoTdNode) << "attribute not covered by decomposition";
  TREEDL_RETURN_IF_ERROR(closed.ReRoot(root));
  TREEDL_ASSIGN_OR_RETURN(
      NormalizedTreeDecomposition ntd,
      Normalize(closed, internal::PrimalityNormalizeOptions(
                            encoding, /*for_enumeration=*/false)));

  PrimalityProblem problem{&context};
  auto table = RunTreeDp(ntd, &problem, stats);
  const auto& bag = ntd.Bag(ntd.root());
  for (const auto& [state, value] : table.at(ntd.root())) {
    if (context.Accepts(bag, state, a_elem)) return true;
  }
  return false;
}

StatusOr<bool> IsPrimeViaTd(const Schema& schema, AttributeId a,
                            DpStats* stats) {
  SchemaEncoding encoding = EncodeSchema(schema);
  TREEDL_ASSIGN_OR_RETURN(TreeDecomposition td,
                          DecomposeStructure(encoding.structure));
  return IsPrimeViaTd(schema, encoding, td, a, stats);
}

}  // namespace treedl::core
