#include "common/logging.hpp"
#include "datalog/eval.hpp"
#include "datalog/eval_internal.hpp"

namespace treedl::datalog {

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, RunStats* stats) {
  if (stats != nullptr) *stats = RunStats{};
  TREEDL_ASSIGN_OR_RETURN(internal::PreparedProgram prep,
                          internal::Prepare(program, edb));
  EvalStats local;
  int num_preds = prep.result.signature().size();

  // Round 0: full evaluation against the EDB (+ ground facts); all derived
  // facts form the first delta.
  FactStore delta(num_preds);
  auto derive_into = [&](FactStore* next_delta, PredicateId pred,
                         const Tuple& tuple) {
    if (prep.store.Add(pred, tuple)) {
      ++local.derived_facts;
      next_delta->Add(pred, tuple);
      Status st = prep.result.AddFact(pred, tuple);
      TREEDL_CHECK(st.ok()) << st.ToString();
    }
  };

  {
    ++local.iterations;
    std::vector<std::pair<PredicateId, Tuple>> pending;
    for (const internal::PreparedRule& rule : prep.rules) {
      local.rule_applications += internal::ApplyRule(
          rule, &prep.store, nullptr, -1, prep.num_variables,
          [&](const Tuple& tuple) {
            pending.emplace_back(rule.head.predicate, tuple);
          });
    }
    for (auto& [pred, tuple] : pending) derive_into(&delta, pred, tuple);
  }

  // Delta rounds: for every rule and every intensional body position, match
  // that position against the previous delta and the rest against the full
  // store. Duplicate derivations are absorbed by the store.
  while (delta.TotalFacts() > 0) {
    ++local.iterations;
    FactStore next_delta(num_preds);
    std::vector<std::pair<PredicateId, Tuple>> pending;
    for (const internal::PreparedRule& rule : prep.rules) {
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        if (!rule.body_intensional[pos] || !rule.positive[pos]) continue;
        local.rule_applications += internal::ApplyRule(
            rule, &prep.store, &delta, static_cast<int>(pos),
            prep.num_variables, [&](const Tuple& tuple) {
              pending.emplace_back(rule.head.predicate, tuple);
            });
      }
    }
    for (auto& [pred, tuple] : pending) derive_into(&next_delta, pred, tuple);
    delta = std::move(next_delta);
  }

  if (stats != nullptr) {
    stats->eval_iterations += local.iterations;
    stats->derived_facts += local.derived_facts;
    stats->rule_applications += local.rule_applications;
  }
  return std::move(prep.result);
}

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, EvalStats* stats) {
  RunStats run;
  auto result = SemiNaiveEvaluate(program, edb, &run);
  if (stats != nullptr) {
    stats->iterations = run.eval_iterations;
    stats->derived_facts = run.derived_facts;
    stats->rule_applications = run.rule_applications;
  }
  return result;
}

}  // namespace treedl::datalog
