#include <gtest/gtest.h>

#include "core/three_color.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"
#include "td/heuristics.hpp"

namespace treedl::core {
namespace {

void ExpectProper(const Graph& g, const std::vector<int>& coloring) {
  ASSERT_EQ(coloring.size(), g.NumVertices());
  for (auto [u, v] : g.Edges()) {
    EXPECT_NE(coloring[u], coloring[v]) << "edge {" << u << "," << v << "}";
  }
  for (int c : coloring) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

TEST(ThreeColorTest, KnownGraphs) {
  EXPECT_TRUE(SolveThreeColor(CompleteGraph(3))->colorable);
  EXPECT_FALSE(SolveThreeColor(CompleteGraph(4))->colorable);
  EXPECT_TRUE(SolveThreeColor(CycleGraph(5))->colorable);
  EXPECT_TRUE(SolveThreeColor(CycleGraph(6))->colorable);
  EXPECT_TRUE(SolveThreeColor(PetersenGraph())->colorable);
  EXPECT_TRUE(SolveThreeColor(GridGraph(3, 4))->colorable);
  EXPECT_TRUE(SolveThreeColor(PathGraph(1))->colorable);
  EXPECT_TRUE(SolveThreeColor(Graph(3))->colorable);  // edgeless
}

TEST(ThreeColorTest, ExtractedColoringsAreProper) {
  for (const Graph& g : {CycleGraph(7), PetersenGraph(), GridGraph(4, 4)}) {
    auto result = SolveThreeColor(g);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->colorable);
    ASSERT_TRUE(result->coloring.has_value());
    ExpectProper(g, *result->coloring);
  }
}

TEST(ThreeColorTest, NoWitnessWhenNotRequested) {
  auto result = SolveThreeColor(CycleGraph(5), /*extract_coloring=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->colorable);
  EXPECT_FALSE(result->coloring.has_value());
}

class ThreeColorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeColorPropertyTest, MatchesBruteForceOnPartialKTrees) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  // Partial 4-trees keep enough edges that both outcomes occur across seeds.
  Graph g = RandomPartialKTree(11, 4, 0.85, &rng);
  auto result = SolveThreeColor(g);
  ASSERT_TRUE(result.ok()) << result.status();
  bool expected = BruteForceColoring(g, 3).has_value();
  EXPECT_EQ(result->colorable, expected);
  if (result->colorable) {
    ASSERT_TRUE(result->coloring.has_value());
    ExpectProper(g, *result->coloring);
  }
}

TEST_P(ThreeColorPropertyTest, CountMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  Graph g = RandomPartialKTree(9, 3, 0.7, &rng);
  auto count = CountThreeColorings(g);
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(*count, CountColoringsBruteForce(g, 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeColorPropertyTest, ::testing::Range(0, 20));

TEST(ThreeColorTest, CountOnKnownGraphs) {
  EXPECT_EQ(CountThreeColorings(CompleteGraph(3)).value(), 6u);
  EXPECT_EQ(CountThreeColorings(CompleteGraph(4)).value(), 0u);
  EXPECT_EQ(CountThreeColorings(PathGraph(3)).value(), 12u);
  EXPECT_EQ(CountThreeColorings(CycleGraph(4)).value(), 18u);
  // Edgeless on n vertices: 3^n.
  EXPECT_EQ(CountThreeColorings(Graph(5)).value(), 243u);
}

TEST(ThreeColorTest, RejectsInvalidDecomposition) {
  Graph g = CycleGraph(4);
  TreeDecomposition bad;
  bad.AddNode({0, 1});  // does not cover all vertices/edges
  EXPECT_FALSE(SolveThreeColor(g, bad).ok());
}

TEST(ThreeColorTest, WorksWithProvidedDecomposition) {
  Graph g = CycleGraph(6);
  auto td = Decompose(g, TdHeuristic::kMinDegree);
  ASSERT_TRUE(td.ok());
  auto result = SolveThreeColor(g, *td);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->colorable);
  EXPECT_GT(result->stats.total_states, 0u);
}

TEST(ThreeColorTest, DisconnectedGraphs) {
  // Two triangles sharing nothing + an isolated vertex.
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(3, 5);
  auto result = SolveThreeColor(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->colorable);
  ExpectProper(g, *result->coloring);
  EXPECT_EQ(CountThreeColorings(g).value(), 6u * 6u * 3u);
}

}  // namespace
}  // namespace treedl::core
