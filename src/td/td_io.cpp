#include "td/td_io.hpp"

#include <sstream>

namespace treedl {

ElementNamer DefaultNamer() {
  return [](ElementId e) { return "e" + std::to_string(e); };
}

ElementNamer NamerFor(const Structure& structure) {
  // Capture names by value so the namer outlives the structure.
  std::vector<std::string> names;
  names.reserve(structure.NumElements());
  for (ElementId e = 0; e < structure.NumElements(); ++e) {
    names.push_back(structure.ElementName(e));
  }
  return [names = std::move(names)](ElementId e) {
    return e < names.size() ? names[e] : ("e" + std::to_string(e));
  };
}

namespace {

std::string BagToString(const std::vector<ElementId>& bag,
                        const ElementNamer& namer) {
  std::string out = "{";
  for (size_t i = 0; i < bag.size(); ++i) {
    if (i > 0) out += ", ";
    out += namer(bag[i]);
  }
  out += "}";
  return out;
}

std::string TupleToString(const std::vector<ElementId>& bag,
                          const ElementNamer& namer) {
  std::string out = "(";
  for (size_t i = 0; i < bag.size(); ++i) {
    if (i > 0) out += ", ";
    out += namer(bag[i]);
  }
  out += ")";
  return out;
}

// Generic indented tree renderer over (root, children(id), label(id)).
template <typename Children, typename Label>
std::string RenderGeneric(TdNodeId root, Children children, Label label) {
  std::ostringstream out;
  // Stack of (node, depth); children pushed in reverse for natural order.
  std::vector<std::pair<TdNodeId, int>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) out << "  ";
    out << label(id) << "\n";
    const auto& kids = children(id);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out.str();
}

}  // namespace

std::string RenderTree(const TreeDecomposition& td, const ElementNamer& namer) {
  if (td.Empty()) return "(empty)\n";
  return RenderGeneric(
      td.root(),
      [&](TdNodeId id) -> const std::vector<TdNodeId>& {
        return td.node(id).children;
      },
      [&](TdNodeId id) {
        return "n" + std::to_string(id) + " " + BagToString(td.Bag(id), namer);
      });
}

std::string RenderTree(const NormalizedTreeDecomposition& ntd,
                       const ElementNamer& namer) {
  if (ntd.NumNodes() == 0) return "(empty)\n";
  return RenderGeneric(
      ntd.root(),
      [&](TdNodeId id) -> const std::vector<TdNodeId>& {
        return ntd.node(id).children;
      },
      [&](TdNodeId id) {
        const NormNode& n = ntd.node(id);
        std::string label = "n" + std::to_string(id) + " [" +
                            NormNodeKindName(n.kind);
        if (n.kind == NormNodeKind::kIntroduce ||
            n.kind == NormNodeKind::kForget) {
          label += " " + namer(n.element);
        }
        label += "] " + BagToString(n.bag, namer);
        return label;
      });
}

std::string RenderTree(const TupleNormalizedTd& ntd, const ElementNamer& namer) {
  if (ntd.NumNodes() == 0) return "(empty)\n";
  return RenderGeneric(
      ntd.root(),
      [&](TdNodeId id) -> const std::vector<TdNodeId>& {
        return ntd.node(id).children;
      },
      [&](TdNodeId id) {
        const TupleNode& n = ntd.node(id);
        return "n" + std::to_string(id) + " [" +
               std::string(TupleNodeKindName(n.kind)) + "] " +
               TupleToString(n.bag, namer);
      });
}

std::string ToDot(const TreeDecomposition& td, const ElementNamer& namer) {
  std::ostringstream out;
  out << "graph td {\n  node [shape=box];\n";
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    out << "  n" << id << " [label=\"" << BagToString(td.Bag(id), namer)
        << "\"];\n";
  }
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    for (TdNodeId c : td.node(id).children) {
      out << "  n" << id << " -- n" << c << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace treedl
