#include "graph/graph_algorithms.hpp"

#include <deque>

#include "common/logging.hpp"

namespace treedl {

std::vector<int> ConnectedComponents(const Graph& graph) {
  std::vector<int> component(graph.NumVertices(), -1);
  int next = 0;
  for (VertexId start = 0; start < graph.NumVertices(); ++start) {
    if (component[start] != -1) continue;
    int id = next++;
    std::deque<VertexId> queue{start};
    component[start] = id;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      for (VertexId v : graph.Neighbors(u)) {
        if (component[v] == -1) {
          component[v] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return component;
}

bool IsConnected(const Graph& graph) {
  if (graph.NumVertices() <= 1) return true;
  std::vector<int> component = ConnectedComponents(graph);
  for (int c : component) {
    if (c != 0) return false;
  }
  return true;
}

bool SubsetHasInternalEdge(const Graph& graph, const std::vector<bool>& subset) {
  TREEDL_CHECK(subset.size() == graph.NumVertices());
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    if (!subset[u]) continue;
    for (VertexId v : graph.Neighbors(u)) {
      if (v > u && subset[v]) return true;
    }
  }
  return false;
}

namespace {

bool ColorBacktrack(const Graph& graph, int k, VertexId next,
                    std::vector<int>* colors) {
  if (next == graph.NumVertices()) return true;
  for (int c = 0; c < k; ++c) {
    bool clash = false;
    for (VertexId nb : graph.Neighbors(next)) {
      if (nb < next && (*colors)[nb] == c) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    (*colors)[next] = c;
    if (ColorBacktrack(graph, k, next + 1, colors)) return true;
  }
  (*colors)[next] = -1;
  return false;
}

}  // namespace

std::optional<std::vector<int>> BruteForceColoring(const Graph& graph, int k) {
  std::vector<int> colors(graph.NumVertices(), -1);
  if (ColorBacktrack(graph, k, 0, &colors)) return colors;
  return std::nullopt;
}

uint64_t CountColoringsBruteForce(const Graph& graph, int k) {
  size_t n = graph.NumVertices();
  TREEDL_CHECK(n <= 16) << "brute-force counting limited to 16 vertices";
  std::vector<int> colors(n, 0);
  uint64_t count = 0;
  while (true) {
    bool proper = true;
    for (VertexId u = 0; u < n && proper; ++u) {
      for (VertexId v : graph.Neighbors(u)) {
        if (v > u && colors[u] == colors[v]) {
          proper = false;
          break;
        }
      }
    }
    if (proper) ++count;
    // Odometer increment over k-ary strings of length n.
    size_t pos = 0;
    while (pos < n && ++colors[pos] == k) {
      colors[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return count;
}

namespace {

// Runs `accept` over all subsets of [0, n) as bitmasks; returns the smallest
// (or largest) accepted popcount depending on `minimize`.
template <typename Accept>
size_t ExtremalSubset(size_t n, bool minimize, Accept accept) {
  TREEDL_CHECK(n <= 20) << "brute-force subset search limited to 20 vertices";
  size_t best = minimize ? n + 1 : 0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (!accept(mask)) continue;
    size_t size = static_cast<size_t>(__builtin_popcountll(mask));
    best = minimize ? std::min(best, size) : std::max(best, size);
  }
  TREEDL_CHECK(!minimize || best <= n) << "no accepting subset found";
  return best;
}

}  // namespace

size_t MinVertexCoverBruteForce(const Graph& graph) {
  auto edges = graph.Edges();
  return ExtremalSubset(graph.NumVertices(), /*minimize=*/true,
                        [&](uint64_t mask) {
                          for (auto [u, v] : edges) {
                            if (!((mask >> u) & 1) && !((mask >> v) & 1)) {
                              return false;
                            }
                          }
                          return true;
                        });
}

size_t MaxIndependentSetBruteForce(const Graph& graph) {
  auto edges = graph.Edges();
  return ExtremalSubset(graph.NumVertices(), /*minimize=*/false,
                        [&](uint64_t mask) {
                          for (auto [u, v] : edges) {
                            if (((mask >> u) & 1) && ((mask >> v) & 1)) {
                              return false;
                            }
                          }
                          return true;
                        });
}

size_t MinDominatingSetBruteForce(const Graph& graph) {
  size_t n = graph.NumVertices();
  return ExtremalSubset(n, /*minimize=*/true, [&](uint64_t mask) {
    for (VertexId v = 0; v < n; ++v) {
      if ((mask >> v) & 1) continue;
      bool dominated = false;
      for (VertexId nb : graph.Neighbors(v)) {
        if ((mask >> nb) & 1) {
          dominated = true;
          break;
        }
      }
      if (!dominated) return false;
    }
    return true;
  });
}

}  // namespace treedl
