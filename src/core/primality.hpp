// The PRIMALITY decision algorithm of §5.2 (Fig. 6): given a relational
// schema (R, F) of bounded treewidth and an attribute a, decide whether a is
// prime (belongs to some key), in time f(w)·|(R, F)|.
#ifndef TREEDL_CORE_PRIMALITY_HPP_
#define TREEDL_CORE_PRIMALITY_HPP_

#include "common/status.hpp"
#include "core/tree_dp.hpp"
#include "engine/run_stats.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl::core {

/// Decides primality of `a` using the supplied raw decomposition of the
/// encoded structure. The preparation flow runs as a named pass pipeline
/// (engine/passes.hpp): validate → rhs-closure → re-root at a bag containing
/// a → normalize (modified form, FD-first forget order); then the bottom-up
/// solve() DP and the success test at the root.
StatusOr<bool> IsPrimeViaTd(const Schema& schema, const SchemaEncoding& encoding,
                            const TreeDecomposition& td, AttributeId a,
                            RunStats* stats = nullptr);

/// Deprecated shim: forwards into the RunStats form and copies the DP slice
/// back into the legacy struct.
StatusOr<bool> IsPrimeViaTd(const Schema& schema, const SchemaEncoding& encoding,
                            const TreeDecomposition& td, AttributeId a,
                            DpStats* stats);

/// Deprecated convenience: re-encodes the schema and rebuilds a min-fill
/// decomposition on every call (a one-shot treedl::Engine). Batch callers
/// should hold an Engine instead, which pays for the encoding and the
/// decomposition once across all queries (see engine/engine.hpp).
StatusOr<bool> IsPrimeViaTd(const Schema& schema, AttributeId a,
                            RunStats* stats = nullptr);
StatusOr<bool> IsPrimeViaTd(const Schema& schema, AttributeId a,
                            DpStats* stats);

}  // namespace treedl::core

#endif  // TREEDL_CORE_PRIMALITY_HPP_
