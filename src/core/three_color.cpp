#include "core/three_color.hpp"

#include <algorithm>

#include "common/byte_vec.hpp"
#include "engine/passes.hpp"
#include "engine/pipeline.hpp"

namespace treedl::core {

namespace {

// Bag coloring aligned with the node's sorted bag. ByteVec keeps the bytes
// inline for ordinary widths and relocates any spill into the state table's
// arena — no per-state heap allocation survives an insert.
struct ColorState {
  ByteVec colors;

  bool operator==(const ColorState&) const = default;
  size_t hash() const { return colors.hash(); }
};

size_t PositionInBag(const std::vector<ElementId>& bag, ElementId e) {
  return static_cast<size_t>(
      std::lower_bound(bag.begin(), bag.end(), e) - bag.begin());
}

// Shared transition logic, parameterized over the value semiring:
//   decision: Value = monostate, Merge = first;
//   counting: Value = uint64_t, Leaf seeds 1, Merge adds, Join multiplies.
template <bool kCounting>
class ColorProblem {
 public:
  using State = ColorState;
  using Value = std::conditional_t<kCounting, uint64_t, std::monostate>;
  using Emit = std::function<void(State, Value)>;

  explicit ColorProblem(const Graph& graph) : graph_(graph) {}

  void Leaf(const std::vector<ElementId>& bag, const Emit& emit) const {
    State state;
    state.colors.assign(bag.size(), 0);
    while (true) {
      if (ProperOnBag(bag, state)) emit(state, One());
      size_t pos = 0;
      while (pos < bag.size() && ++state.colors[pos] == 3) {
        state.colors[pos] = 0;
        ++pos;
      }
      if (pos == bag.size()) break;
    }
  }

  void Introduce(const std::vector<ElementId>& bag, ElementId v,
                 const State& child, const Value& value,
                 const Emit& emit) const {
    size_t pos = PositionInBag(bag, v);
    for (uint8_t c = 0; c < 3; ++c) {
      // allowed(s, ·): the new vertex must not clash with its bag neighbors.
      bool ok = true;
      for (size_t i = 0; i < bag.size() && ok; ++i) {
        if (bag[i] == v) continue;
        uint8_t other = child.colors[i < pos ? i : i - 1];
        if (other == c && graph_.HasEdge(v, bag[i])) ok = false;
      }
      if (!ok) continue;
      State state = child;
      state.colors.insert(state.colors.begin() + static_cast<long>(pos), c);
      emit(std::move(state), value);
    }
  }

  void Forget(const std::vector<ElementId>& bag, ElementId v,
              const State& child, const Value& value, const Emit& emit) const {
    // The child bag is this bag plus v.
    size_t pos = PositionInBag(bag, v);
    State state = child;
    state.colors.erase(state.colors.begin() + static_cast<long>(pos));
    emit(std::move(state), value);
  }

  const State& KeyOf(const State& state) const { return state; }

  void Join(const std::vector<ElementId>& /*bag*/, const State& a,
            const Value& va, const State& b, const Value& vb,
            const Emit& emit) const {
    TREEDL_DCHECK(a == b);
    (void)b;
    if constexpr (kCounting) {
      emit(a, va * vb);
    } else {
      (void)vb;
      emit(a, va);
    }
  }

  Value Merge(const Value& a, const Value& b) const {
    if constexpr (kCounting) {
      return a + b;
    } else {
      (void)b;
      return a;
    }
  }

 private:
  static Value One() {
    if constexpr (kCounting) {
      return 1;
    } else {
      return {};
    }
  }

  bool ProperOnBag(const std::vector<ElementId>& bag, const State& s) const {
    for (size_t i = 0; i < bag.size(); ++i) {
      for (size_t j = i + 1; j < bag.size(); ++j) {
        if (s.colors[i] == s.colors[j] && graph_.HasEdge(bag[i], bag[j])) {
          return false;
        }
      }
    }
    return true;
  }

  const Graph& graph_;
};

// Reconstructs one proper coloring by walking the table top-down from an
// accepting root state, re-deriving a consistent predecessor at each node.
std::vector<int> ExtractColoring(const Graph& graph,
                                 const NormalizedTreeDecomposition& ntd,
                                 const DpTable<ColorState, std::monostate>& table,
                                 const ColorState& root_state) {
  std::vector<int> colors(graph.NumVertices(), -1);
  // chosen[node] = the state selected for that node.
  std::vector<ColorState> chosen(ntd.NumNodes());
  std::vector<bool> has_chosen(ntd.NumNodes(), false);
  chosen[static_cast<size_t>(ntd.root())] = root_state;
  has_chosen[static_cast<size_t>(ntd.root())] = true;

  for (TdNodeId id : ntd.PreOrder()) {
    TREEDL_CHECK(has_chosen[static_cast<size_t>(id)]);
    const NormNode& node = ntd.node(id);
    const ColorState& state = chosen[static_cast<size_t>(id)];
    for (size_t i = 0; i < node.bag.size(); ++i) {
      colors[node.bag[i]] = state.colors[i];
    }
    auto set_child = [&](TdNodeId child, ColorState s) {
      chosen[static_cast<size_t>(child)] = std::move(s);
      has_chosen[static_cast<size_t>(child)] = true;
    };
    switch (node.kind) {
      case NormNodeKind::kLeaf:
        break;
      case NormNodeKind::kCopy:
      case NormNodeKind::kBranch:
        for (TdNodeId c : node.children) set_child(c, state);
        break;
      case NormNodeKind::kIntroduce: {
        size_t pos = PositionInBag(node.bag, node.element);
        ColorState child_state = state;
        child_state.colors.erase(child_state.colors.begin() +
                                 static_cast<long>(pos));
        TREEDL_CHECK(
            table.at(node.children[0]).count(child_state) > 0)
            << "introduce predecessor missing";
        set_child(node.children[0], std::move(child_state));
        break;
      }
      case NormNodeKind::kForget: {
        size_t pos = PositionInBag(node.bag, node.element);
        bool found = false;
        for (uint8_t c = 0; c < 3 && !found; ++c) {
          ColorState child_state = state;
          child_state.colors.insert(
              child_state.colors.begin() + static_cast<long>(pos), c);
          if (table.at(node.children[0]).count(child_state)) {
            set_child(node.children[0], std::move(child_state));
            found = true;
          }
        }
        TREEDL_CHECK(found) << "forget predecessor missing";
        break;
      }
    }
  }
  return colors;
}

// Reads the decision verdict (and optionally a coloring) off a completed
// table — shared by the standalone solver and the fused-pass finalizer.
ThreeColorResult FinalizeDecision(const Graph& graph,
                                  const NormalizedTreeDecomposition& ntd,
                                  const DpTable<ColorState, std::monostate>& table,
                                  bool extract_coloring) {
  ThreeColorResult result;
  const auto& root_states = table.at(ntd.root());
  result.colorable = !root_states.empty();
  if (result.colorable && extract_coloring) {
    result.coloring =
        ExtractColoring(graph, ntd, table, root_states.begin()->first);
  }
  return result;
}

uint64_t FinalizeCount(const NormalizedTreeDecomposition& ntd,
                       const DpTable<ColorState, uint64_t>& table) {
  uint64_t total = 0;
  for (const auto& [state, count] : table.at(ntd.root())) total += count;
  return total;
}

}  // namespace

StatusOr<ThreeColorResult> SolveThreeColorNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    bool extract_coloring, const DpExec& exec) {
  ColorProblem<false> problem(graph);
  ThreeColorResult result;
  // Witness extraction re-reads interior tables after the run, so it is
  // incompatible with dead-table eviction — drop any memory budget.
  DpExec run_exec = exec;
  if (extract_coloring) run_exec.table_memory_budget = 0;
  auto table = RunTreeDpAuto(ntd, &problem, run_exec, &result.stats);
  // An aborted budget leaves partial tables — the witness walk's predecessor
  // checks would fire on them, so surface the abort before finalizing.
  if (run_exec.budget != nullptr && run_exec.budget->Aborted()) {
    return run_exec.budget->AbortStatus();
  }
  ThreeColorResult finalized =
      FinalizeDecision(graph, ntd, table, extract_coloring);
  finalized.stats = result.stats;
  return finalized;
}

std::function<StatusOr<ThreeColorResult>()> AddThreeColorPass(
    MultiDp* multi, const Graph& graph, const NormalizedTreeDecomposition& ntd,
    bool extract_coloring) {
  // Only the witness walk needs interior tables after the traversal; a pure
  // decision pass reads the root alone and its tables may be evicted.
  const auto* table = multi->Add(ColorProblem<false>(graph),
                                 /*retain_tables=*/extract_coloring);
  return [table, &graph, &ntd,
          extract_coloring]() -> StatusOr<ThreeColorResult> {
    return FinalizeDecision(graph, ntd, *table, extract_coloring);
  };
}

std::function<StatusOr<uint64_t>()> AddThreeColorCountPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd) {
  const auto* table = multi->Add(ColorProblem<true>(graph),
                                 /*retain_tables=*/false);
  return [table, &ntd]() -> StatusOr<uint64_t> {
    return FinalizeCount(ntd, *table);
  };
}

StatusOr<ThreeColorResult> SolveThreeColor(const Graph& graph,
                                           const TreeDecomposition& td,
                                           bool extract_coloring) {
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd,
                          engine::PrepareForGraph(graph, td));
  return SolveThreeColorNormalized(graph, ntd, extract_coloring);
}

StatusOr<uint64_t> CountThreeColoringsNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats, const DpExec& exec) {
  ColorProblem<true> problem(graph);
  auto table = RunTreeDpAuto(ntd, &problem, exec, stats);
  if (exec.budget != nullptr && exec.budget->Aborted()) {
    return exec.budget->AbortStatus();
  }
  return FinalizeCount(ntd, table);
}

StatusOr<uint64_t> CountThreeColorings(const Graph& graph,
                                       const TreeDecomposition& td) {
  TREEDL_ASSIGN_OR_RETURN(NormalizedTreeDecomposition ntd,
                          engine::PrepareForGraph(graph, td));
  return CountThreeColoringsNormalized(graph, ntd);
}

}  // namespace treedl::core
