// Tree decompositions (§2.2): a rooted tree whose nodes carry bags of domain
// elements, satisfying (1) coverage of elements, (2) coverage of facts/edges,
// (3) connectedness. This class is the *raw* decomposition; the normalized
// forms used by the algorithms live in td/normalize.hpp.
#ifndef TREEDL_TD_TREE_DECOMPOSITION_HPP_
#define TREEDL_TD_TREE_DECOMPOSITION_HPP_

#include <vector>

#include "common/status.hpp"
#include "structure/structure.hpp"

namespace treedl {

using TdNodeId = int;
inline constexpr TdNodeId kNoTdNode = -1;

struct TdNode {
  /// Bag contents, kept sorted and duplicate-free.
  std::vector<ElementId> bag;
  TdNodeId parent = kNoTdNode;
  std::vector<TdNodeId> children;
};

class TreeDecomposition {
 public:
  TreeDecomposition() = default;

  /// Adds a node with the given bag under `parent` (kNoTdNode makes it the
  /// root; only one root is allowed). The bag is sorted and deduplicated.
  TdNodeId AddNode(std::vector<ElementId> bag, TdNodeId parent = kNoTdNode);

  size_t NumNodes() const { return nodes_.size(); }
  bool Empty() const { return nodes_.empty(); }
  TdNodeId root() const { return root_; }
  const TdNode& node(TdNodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<ElementId>& Bag(TdNodeId id) const { return node(id).bag; }
  bool BagContains(TdNodeId id, ElementId e) const;

  /// max |bag| - 1, or -1 for the empty decomposition.
  int Width() const;

  /// Node ids in an order where every node appears after its parent.
  std::vector<TdNodeId> PreOrder() const;
  /// Node ids in an order where every node appears before its parent.
  std::vector<TdNodeId> PostOrder() const;

  /// Re-roots the tree at `new_root` by reversing parent pointers along the
  /// root path. Bags are unchanged (validity of a tree decomposition does not
  /// depend on the choice of root).
  Status ReRoot(TdNodeId new_root);

  /// Any node whose bag contains `e`, or kNoTdNode.
  TdNodeId FindNodeContaining(ElementId e) const;

  /// Replaces the bag of `id` (sorted/deduplicated). Caller is responsible
  /// for re-validating afterwards.
  void SetBag(TdNodeId id, std::vector<ElementId> bag);

 private:
  std::vector<TdNode> nodes_;
  TdNodeId root_ = kNoTdNode;
};

/// Node ids of the subtree rooted at `t` (Def 3.1, T_t), including `t`.
std::vector<TdNodeId> SubtreeNodes(const TreeDecomposition& td, TdNodeId t);

/// Node ids of the envelope (Def 3.1, T̄_t): all of T minus T_t, plus t itself.
std::vector<TdNodeId> EnvelopeNodes(const TreeDecomposition& td, TdNodeId t);

/// Distinct elements occurring in the bags of `nodes`, sorted.
std::vector<ElementId> ElementsInBags(const TreeDecomposition& td,
                                      const std::vector<TdNodeId>& nodes);

/// The induced structure I(A, S, s) of Def 3.2 for S = the subtree rooted at
/// `t` (`envelope` = false) or the envelope of `t` (`envelope` = true):
/// substructure of `structure` induced by the elements in S's bags. The
/// distinguished tuple (the bag of `t`) is returned via `bag_out` translated
/// to the new ids.
Structure InducedStructure(const Structure& structure,
                           const TreeDecomposition& td, TdNodeId t,
                           bool envelope, std::vector<ElementId>* bag_out);

}  // namespace treedl

#endif  // TREEDL_TD_TREE_DECOMPOSITION_HPP_
