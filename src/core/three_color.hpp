// The 3-Colorability algorithm of §5.1 (Fig. 5).
//
// Executes the Fig. 5 datalog program natively: solve(s, R, G, B) facts are
// DP states (the bag coloring) computed by a bottom-up traversal of the
// modified-normalized tree decomposition; only reachable states are
// materialized. Extensions beyond the paper: witness extraction (an actual
// proper coloring) and coloring counting (same transitions over the counting
// semiring).
#ifndef TREEDL_CORE_THREE_COLOR_HPP_
#define TREEDL_CORE_THREE_COLOR_HPP_

#include <optional>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "core/tree_dp.hpp"
#include "graph/graph.hpp"

namespace treedl::core {

struct ThreeColorResult {
  bool colorable = false;
  /// A proper coloring (vertex -> {0,1,2}) when colorable and extraction was
  /// requested.
  std::optional<std::vector<int>> coloring;
  DpStats stats;
};

/// Decides 3-colorability using the supplied tree decomposition (validated
/// against `graph`, then normalized — both as named pipeline passes).
StatusOr<ThreeColorResult> SolveThreeColor(const Graph& graph,
                                           const TreeDecomposition& td,
                                           bool extract_coloring = true);

/// DP kernel over an already-normalized decomposition (no validation or
/// normalization; the Engine calls this with its cached normal form). `exec`
/// optionally carries a bag sharding and thread pool for the parallel driver.
StatusOr<ThreeColorResult> SolveThreeColorNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    bool extract_coloring = true, const DpExec& exec = {});

/// Deprecated convenience: rebuilds a min-fill decomposition per call (a
/// one-shot treedl::Engine); batch callers should hold an Engine instead.
StatusOr<ThreeColorResult> SolveThreeColor(const Graph& graph,
                                           bool extract_coloring = true);

/// Counts proper 3-colorings (extension: same DP over the counting
/// semiring). Exact for any graph the decomposition covers.
StatusOr<uint64_t> CountThreeColorings(const Graph& graph,
                                       const TreeDecomposition& td);
StatusOr<uint64_t> CountThreeColoringsNormalized(
    const Graph& graph, const NormalizedTreeDecomposition& ntd,
    DpStats* stats = nullptr, const DpExec& exec = {});
/// Deprecated convenience (one-shot Engine; see SolveThreeColor above).
StatusOr<uint64_t> CountThreeColorings(const Graph& graph);

// --- Fused-traversal registration (Engine::SolveAll) ------------------------
//
// Each Add*Pass registers the problem's transitions as one pass of a MultiDp
// and returns a finalizer that reads the answer out of the pass's table —
// call it only after RunMultiTreeDp[Sharded|Auto] ran the traversal.
// `graph` and `ntd` must outlive both the traversal and the finalizer call.

std::function<StatusOr<ThreeColorResult>()> AddThreeColorPass(
    MultiDp* multi, const Graph& graph, const NormalizedTreeDecomposition& ntd,
    bool extract_coloring = true);

std::function<StatusOr<uint64_t>()> AddThreeColorCountPass(
    MultiDp* multi, const Graph& graph,
    const NormalizedTreeDecomposition& ntd);

}  // namespace treedl::core

#endif  // TREEDL_CORE_THREE_COLOR_HPP_
