#include "datalog/ltur.hpp"

#include <deque>

#include "common/logging.hpp"

namespace treedl::datalog {

std::vector<bool> LturSolve(int num_atoms,
                            const std::vector<HornClause>& clauses) {
  std::vector<bool> truth(static_cast<size_t>(num_atoms), false);
  // missing[c] = number of body atoms of clause c not yet derived;
  // watchers[a] = clauses having a in their body.
  std::vector<size_t> missing(clauses.size());
  std::vector<std::vector<size_t>> watchers(static_cast<size_t>(num_atoms));
  std::deque<int> queue;

  auto derive = [&](int atom) {
    TREEDL_DCHECK(atom >= 0 && atom < num_atoms);
    if (!truth[static_cast<size_t>(atom)]) {
      truth[static_cast<size_t>(atom)] = true;
      queue.push_back(atom);
    }
  };

  for (size_t c = 0; c < clauses.size(); ++c) {
    missing[c] = clauses[c].body.size();
    for (int a : clauses[c].body) {
      watchers[static_cast<size_t>(a)].push_back(c);
    }
    if (clauses[c].body.empty()) derive(clauses[c].head);
  }
  while (!queue.empty()) {
    int atom = queue.front();
    queue.pop_front();
    for (size_t c : watchers[static_cast<size_t>(atom)]) {
      if (--missing[c] == 0) derive(clauses[c].head);
    }
  }
  return truth;
}

}  // namespace treedl::datalog
