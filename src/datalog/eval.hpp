// Datalog evaluation: least fixpoint of P ∪ E(A) (§2.4).
//
// Three engines with identical semantics on semipositive programs:
//  - NaiveEvaluate:     re-derives everything each round (reference oracle).
//  - SemiNaiveEvaluate: standard delta-driven evaluation (the general engine).
//  - GroundedEvaluate (grounder.hpp): Thm 4.4's two-phase O(|P|·|A|) pipeline
//    for quasi-guarded programs — ground via the guards, then LTUR unit
//    propagation.
#ifndef TREEDL_DATALOG_EVAL_HPP_
#define TREEDL_DATALOG_EVAL_HPP_

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "common/work_budget.hpp"
#include "datalog/ast.hpp"
#include "engine/run_stats.hpp"
#include "structure/structure.hpp"

namespace treedl::datalog {

/// Execution context for the semi-naive engine. Default-constructed (or with
/// a null/single-thread pool) the fixpoint runs sequentially, exactly as
/// before. With a pool, each round's rule-evaluation units run as tasks on
/// it; results are merged in unit order, so the derived model — and every
/// fact-insertion sequence behind it — is bit-identical to the sequential
/// run at any thread count.
struct EvalExec {
  ThreadPool* pool = nullptr;
  /// Delta facts per batch the engine aims for when it splits a wide
  /// (rule, delta position) unit; the batch count is a pure function of the
  /// delta size, never of the thread count, keeping work counters
  /// deterministic across configurations.
  size_t delta_batch_grain = 256;
  /// Optional deadline/memory budget. The fixpoint charges one work unit per
  /// rule task at each round boundary — the task decomposition is a pure
  /// function of the data, so a deadline trips at the same round on every
  /// thread count — and returns Status::DeadlineExceeded on a trip.
  WorkBudget* budget = nullptr;

  bool Parallel() const { return pool != nullptr && pool->NumThreads() > 1; }
};

/// Deprecated: retained for out-of-tree callers. New code receives the same
/// numbers through the unified RunStats (eval_iterations / derived_facts /
/// rule_applications); the EvalStats overloads below forward into RunStats.
struct EvalStats {
  size_t iterations = 0;
  size_t derived_facts = 0;     // IDB facts derived (beyond the EDB)
  size_t rule_applications = 0; // body matches attempted (work measure)
};

/// Evaluates `program` over the extensional database `edb`. The result
/// structure carries the union signature (EDB predicates first, then new
/// program predicates) and contains all EDB facts plus the derived IDB
/// facts. Fails if a program predicate clashes in arity with an EDB
/// predicate, or if the program is unsafe (see AnalyzeProgram).
StatusOr<Structure> NaiveEvaluate(const Program& program, const Structure& edb,
                                  RunStats* stats = nullptr);

StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb,
                                      RunStats* stats = nullptr);

/// Semi-naive evaluation with an execution context: rule-level (and, for
/// wide rules, delta-batch) parallelism within each fixpoint round on
/// exec.pool. RunStats::fixpoint_rounds / fixpoint_rule_tasks report the
/// round/task decomposition.
StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb,
                                      const EvalExec& exec, RunStats* stats);

/// Deprecated shims: forward into the RunStats forms and copy the fixpoint
/// slice back into the legacy struct.
StatusOr<Structure> NaiveEvaluate(const Program& program, const Structure& edb,
                                  EvalStats* stats);
StatusOr<Structure> SemiNaiveEvaluate(const Program& program,
                                      const Structure& edb, EvalStats* stats);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_EVAL_HPP_
