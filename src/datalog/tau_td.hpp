// The τ_td structure A_td (§4): the input structure A extended by its
// normalized tree decomposition.
//
//   τ_td = τ ∪ {root/1, leaf/1, child1/2, child2/2, bag/(w+2)}
//
// The domain of A_td is dom(A) plus one fresh element per tree node.
// child1(s1, s) holds iff s1 is the first or only child of s; child2(s2, s)
// iff s2 is the second child; bag(t, a0, …, aw) lists node t's tuple.
// Monadic datalog programs over τ-structures of treewidth w (Def 4.1) are
// evaluated against this structure.
#ifndef TREEDL_DATALOG_TAU_TD_HPP_
#define TREEDL_DATALOG_TAU_TD_HPP_

#include <vector>

#include "common/binary_io.hpp"
#include "common/status.hpp"
#include "structure/structure.hpp"
#include "td/normalize.hpp"

namespace treedl::datalog {

struct TauTdEncoding {
  Structure structure;
  /// Tuple-normalized node id -> element id of that node in `structure`.
  std::vector<ElementId> node_element;
};

/// Builds A_td from A and a tuple-normalized decomposition of A. Fails if the
/// base signature already uses one of the τ_td predicate names.
StatusOr<TauTdEncoding> BuildTauTd(const Structure& a,
                                   const TupleNormalizedTd& td);

/// Appends the binary encoding of an already-built A_td to `writer` — the
/// engine serializes it so a restored session skips the tuple-normalization
/// and τ_td construction entirely (docs/SESSION_FORMAT.md).
void SerializeTauTd(const TauTdEncoding& encoding, BinaryWriter* writer);

/// Inverse of SerializeTauTd; node-element references are validated against
/// the embedded structure's domain.
StatusOr<TauTdEncoding> DeserializeTauTd(BinaryReader* reader);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_TAU_TD_HPP_
