#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/small_bitset.hpp"
#include "common/status.hpp"
#include "common/string_util.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad bag");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad bag");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad bag");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kResourceExhausted, StatusCode::kParseError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> Doubled(int x) {
  TREEDL_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 21);
  EXPECT_EQ(good.value_or(-1), 21);

  StatusOr<int> bad = ParsePositive(-3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(SmallBitsetTest, BasicOps) {
  SmallBitset s;
  EXPECT_TRUE(s.Empty());
  s.Set(3);
  s.Set(10);
  EXPECT_TRUE(s.Test(3));
  EXPECT_FALSE(s.Test(4));
  EXPECT_EQ(s.Count(), 2);
  s.Reset(3);
  EXPECT_FALSE(s.Test(3));
  EXPECT_EQ(s.Count(), 1);
}

TEST(SmallBitsetTest, SetAlgebra) {
  SmallBitset a = SmallBitset::FromIndices({1, 2, 3});
  SmallBitset b = SmallBitset::FromIndices({3, 4});
  EXPECT_EQ((a | b).ToIndices(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).ToIndices(), (std::vector<int>{3}));
  EXPECT_EQ((a - b).ToIndices(), (std::vector<int>{1, 2}));
  EXPECT_TRUE((a & b).IsSubsetOf(a));
  EXPECT_TRUE((a & b).IsSubsetOf(b));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(SmallBitsetTest, FirstNBoundaries) {
  EXPECT_TRUE(SmallBitset::FirstN(0).Empty());
  EXPECT_EQ(SmallBitset::FirstN(5).Count(), 5);
  EXPECT_EQ(SmallBitset::FirstN(64).Count(), 64);
}

TEST(SmallBitsetTest, ToStringRendersSorted) {
  EXPECT_EQ(SmallBitset::FromIndices({5, 1}).ToString(), "{1,5}");
  EXPECT_EQ(SmallBitset().ToString(), "{}");
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(TestSeed());
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(TestSeed());
  auto sample = rng.SampleIndices(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::vector<bool> seen(50, false);
  for (size_t i : sample) {
    ASSERT_LT(i, 50u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(TestSeed());
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringUtilTest, SplitAndTrimAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
}

TEST(StringUtilTest, Identifiers) {
  EXPECT_TRUE(IsIdentifier("abc_1"));
  EXPECT_TRUE(IsIdentifier("_x"));
  EXPECT_TRUE(IsIdentifier("x'"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

TEST(HashTest, CombineIsOrderSensitive) {
  size_t s1 = 0, s2 = 0;
  HashCombine(&s1, 1);
  HashCombine(&s1, 2);
  HashCombine(&s2, 2);
  HashCombine(&s2, 1);
  EXPECT_NE(s1, s2);
}

TEST(HashTest, HashRangeDistinguishesLengths) {
  EXPECT_NE(HashRange<int>({1, 2}), HashRange<int>({1, 2, 0}));
}

}  // namespace
}  // namespace treedl
