#include <gtest/gtest.h>

#include "datalog/analysis.hpp"
#include "datalog/eval.hpp"
#include "datalog/grounder.hpp"
#include "datalog/tau_td.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "mso/evaluator.hpp"
#include "mso/formulas.hpp"
#include "mso/parser.hpp"
#include "mso2dl/mso_to_datalog.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"
#include "td/validate.hpp"

#include "test_util.hpp"

namespace treedl::mso2dl {
namespace {

// The end-to-end tests run over the unary signature τ = {p/1}: its type
// space saturates within dozens of types, so the faithful Thm 4.5
// construction completes and can be validated against direct MSO evaluation.
// Over τ = {e/2} the very same construction state-explodes already at rank 1
// — asserted in StateExplosionOnBinarySignature below, which is exactly the
// §1 motivation for the hand-crafted §5 programs.
Signature UnarySignature() {
  return Signature::Make({{"p", 1}}).value();
}

// A random {p}-structure with n elements, each marked with probability 1/2.
Structure RandomUnaryStructure(size_t n, Rng* rng) {
  Structure s(UnarySignature());
  for (size_t i = 0; i < n; ++i) {
    ElementId e = s.AddElement("u" + std::to_string(i));
    if (rng->Bernoulli(0.5)) {
      EXPECT_TRUE(s.AddFact(0, {e}).ok());
    }
  }
  return s;
}

// A width-1 tree decomposition with a branch at the root, covering elements
// 0..n-1 of an (edgeless) structure: root {0,1} with a chain {1,2},{2,3},…
// under child 1 and a chain {0,h},{h,h+1},… under child 2.
TreeDecomposition BranchyWidth1Td(size_t n) {
  TreeDecomposition td;
  EXPECT_GE(n, 4u);
  TdNodeId root = td.AddNode({0, 1});
  size_t h = n / 2 + 1;
  TdNodeId cur = td.AddNode({1, 2}, root);
  for (size_t i = 2; i + 1 < h; ++i) {
    cur = td.AddNode({static_cast<ElementId>(i), static_cast<ElementId>(i + 1)},
                     cur);
  }
  cur = td.AddNode({0, static_cast<ElementId>(h)}, root);
  for (size_t i = h; i + 1 < n; ++i) {
    cur = td.AddNode({static_cast<ElementId>(i), static_cast<ElementId>(i + 1)},
                     cur);
  }
  return td;
}

// Evaluates the generated unary-query program on A_td (built from the given
// raw TD) and returns the selected elements.
std::vector<bool> RunUnaryProgram(const Mso2DlResult& result, const Structure& a,
                                  const TreeDecomposition& raw) {
  EXPECT_TRUE(ValidateForStructure(a, raw).ok());
  auto tuple_td = NormalizeTuple(raw);
  EXPECT_TRUE(tuple_td.ok()) << tuple_td.status();
  auto atd = datalog::BuildTauTd(a, *tuple_td);
  EXPECT_TRUE(atd.ok());
  auto eval = datalog::SemiNaiveEvaluate(result.program, atd->structure);
  EXPECT_TRUE(eval.ok()) << eval.status();
  std::vector<bool> selected(a.NumElements(), false);
  PredicateId phi_p = eval->signature().PredicateIdOf("phi").value();
  for (const Tuple& t : eval->Relation(phi_p)) {
    if (t[0] < a.NumElements()) selected[t[0]] = true;
  }
  return selected;
}

TEST(Mso2DlTest, RankZeroQueryEndToEnd) {
  // φ(x) = p(x): rank 0 — types are plain atomic bag diagrams.
  auto phi = mso::ParseFormula("p(x)");
  ASSERT_TRUE(phi.ok());
  Mso2DlOptions options;
  options.width = 1;
  auto result = MsoToDatalog(UnarySignature(), *phi, "x", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rank, 0);

  Rng rng(TestSeed());
  for (int trial = 0; trial < 4; ++trial) {
    Structure a = RandomUnaryStructure(8, &rng);
    std::vector<bool> selected =
        RunUnaryProgram(*result, a, BranchyWidth1Td(8));
    for (ElementId e = 0; e < a.NumElements(); ++e) {
      EXPECT_EQ(selected[e], a.HasFact(0, {e})) << "element " << e;
    }
  }
}

TEST(Mso2DlTest, RankOneQueryEndToEnd) {
  // φ(x) = p(x) & ∃y (y ≠ x & p(y)): "x is marked but not the only mark" —
  // a genuinely global property that the types must carry across the tree.
  auto phi = mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))");
  ASSERT_TRUE(phi.ok());
  Mso2DlOptions options;
  options.width = 1;
  auto result = MsoToDatalog(UnarySignature(), *phi, "x", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rank, 1);
  EXPECT_GT(result->num_up_types, 0u);
  EXPECT_GT(result->num_down_types, 0u);

  // Thm 4.5 promises: monadic and quasi-guarded.
  auto info = datalog::AnalyzeProgram(result->program);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->is_monadic);
  EXPECT_TRUE(datalog::CheckQuasiGuarded(result->program).ok());

  Rng rng(TestSeed());
  for (int trial = 0; trial < 6; ++trial) {
    size_t n = 6 + static_cast<size_t>(trial);
    Structure a = RandomUnaryStructure(n, &rng);
    std::vector<bool> selected =
        RunUnaryProgram(*result, a, BranchyWidth1Td(n));
    for (ElementId e = 0; e < a.NumElements(); ++e) {
      bool direct = *mso::EvaluateUnary(a, **mso::ParseFormula(
                                               "p(x) & (ex1 y: (~(y = x) & "
                                               "p(y)))"),
                                        "x", e);
      EXPECT_EQ(selected[e], direct) << "trial " << trial << " element " << e;
    }
  }
}

TEST(Mso2DlTest, RankOneSentenceEndToEnd) {
  // ψ = ∃x p(x): only Θ↑ is constructed; "phi" is 0-ary at the root.
  auto phi = mso::ParseFormula("ex1 x: p(x)");
  ASSERT_TRUE(phi.ok());
  Mso2DlOptions options;
  options.width = 1;
  auto result = MsoToDatalogSentence(UnarySignature(), *phi, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_down_types, 0u);

  for (bool any_marked : {false, true}) {
    Structure a(UnarySignature());
    for (int i = 0; i < 6; ++i) a.AddElement("u" + std::to_string(i));
    if (any_marked) {
      ASSERT_TRUE(a.AddFact(0, {3}).ok());
    }
    auto tuple_td = NormalizeTuple(BranchyWidth1Td(6));
    ASSERT_TRUE(tuple_td.ok());
    auto atd = datalog::BuildTauTd(a, *tuple_td);
    ASSERT_TRUE(atd.ok());
    auto eval = datalog::SemiNaiveEvaluate(result->program, atd->structure);
    ASSERT_TRUE(eval.ok()) << eval.status();
    PredicateId phi_p = eval->signature().PredicateIdOf("phi").value();
    EXPECT_EQ(eval->HasFact(phi_p, {}), any_marked);
  }
}

TEST(Mso2DlTest, GroundedEvaluationAgreesOnGeneratedProgram) {
  // Thm 4.4 + Thm 4.5 together: the generated program runs through the
  // grounding + LTUR pipeline with identical results.
  auto phi = mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))");
  Mso2DlOptions options;
  options.width = 1;
  auto result = MsoToDatalog(UnarySignature(), *phi, "x", options);
  ASSERT_TRUE(result.ok()) << result.status();
  Rng rng(TestSeed());
  Structure a = RandomUnaryStructure(9, &rng);
  auto tuple_td = NormalizeTuple(BranchyWidth1Td(9));
  ASSERT_TRUE(tuple_td.ok());
  auto atd = datalog::BuildTauTd(a, *tuple_td);
  ASSERT_TRUE(atd.ok());
  auto semi = datalog::SemiNaiveEvaluate(result->program, atd->structure);
  auto grounded = datalog::GroundedEvaluate(result->program, atd->structure);
  ASSERT_TRUE(semi.ok()) << semi.status();
  ASSERT_TRUE(grounded.ok()) << grounded.status();
  EXPECT_TRUE(*semi == *grounded);
}

TEST(Mso2DlTest, ProgramSizeGrowsWithRank) {
  // §5 discussion: the generic program is exponential in the formula. Rank 1
  // must produce strictly more types and rules than rank 0.
  Mso2DlOptions options;
  options.width = 1;
  auto r0 = MsoToDatalog(UnarySignature(), *mso::ParseFormula("p(x)"), "x",
                         options);
  auto r1 = MsoToDatalog(UnarySignature(),
                         *mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))"),
                         "x", options);
  ASSERT_TRUE(r0.ok() && r1.ok());
  EXPECT_GT(r1->num_up_types, r0->num_up_types);
  EXPECT_GT(r1->program.NumRules(), r0->program.NumRules());
}

TEST(Mso2DlTest, StateExplosionOnBinarySignature) {
  // The faithful construction over τ = {e/2} explodes already at rank 1 —
  // the "state explosion" of §1/[26] that motivates the entire §5 approach.
  // The budget guards turn it into a reported error.
  Mso2DlOptions options;
  options.width = 1;
  options.max_types = 256;
  options.max_witness_elements = 18;
  auto result = MsoToDatalog(Signature::GraphSignature(),
                             mso::HasNeighborQuery("x"), "x", options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Mso2DlTest, RejectsBadInputs) {
  Mso2DlOptions options;
  options.width = 0;
  EXPECT_FALSE(
      MsoToDatalog(UnarySignature(), *mso::ParseFormula("p(x)"), "x", options)
          .ok());
  options.width = 1;
  // Sentence passed to the unary API.
  EXPECT_FALSE(MsoToDatalog(UnarySignature(), *mso::ParseFormula("ex1 x: p(x)"),
                            "x", options)
                   .ok());
  // Unary query passed to the sentence API.
  EXPECT_FALSE(
      MsoToDatalogSentence(UnarySignature(), *mso::ParseFormula("p(x)"), options)
          .ok());
  // Wrong free variable name.
  EXPECT_FALSE(
      MsoToDatalog(UnarySignature(), *mso::ParseFormula("p(y)"), "x", options)
          .ok());
  // Formula over predicates missing from the signature.
  EXPECT_FALSE(
      MsoToDatalog(UnarySignature(), *mso::ParseFormula("q(x)"), "x", options)
          .ok());
}

TEST(Mso2DlTest, BudgetExhaustionIsReported) {
  Mso2DlOptions options;
  options.width = 1;
  options.type_work_budget = 50;
  auto result =
      MsoToDatalog(UnarySignature(),
                   *mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))"), "x",
                   options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace treedl::mso2dl
