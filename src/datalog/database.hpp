// FactStore: the working database used by datalog evaluation.
//
// Holds per-predicate deduplicated tuple sets over structure element ids,
// with incrementally maintained single-column hash indexes created on first
// use. Also provides literal matching under partial variable bindings — the
// shared kernel of the naive and semi-naive evaluators.
#ifndef TREEDL_DATALOG_DATABASE_HPP_
#define TREEDL_DATALOG_DATABASE_HPP_

#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.hpp"
#include "datalog/ast.hpp"
#include "structure/structure.hpp"

namespace treedl::datalog {

inline constexpr ElementId kUnbound = std::numeric_limits<ElementId>::max();

/// A partial assignment of program variables to element ids.
using Binding = std::vector<ElementId>;

class FactStore {
 public:
  explicit FactStore(int num_predicates)
      : relations_(static_cast<size_t>(num_predicates)),
        sets_(static_cast<size_t>(num_predicates)),
        indexes_(static_cast<size_t>(num_predicates)) {}

  /// Adds a tuple; returns true iff it was new.
  bool Add(PredicateId p, const Tuple& t);

  bool Contains(PredicateId p, const Tuple& t) const {
    return sets_[static_cast<size_t>(p)].count(t) > 0;
  }

  const std::vector<Tuple>& Tuples(PredicateId p) const {
    return relations_[static_cast<size_t>(p)];
  }

  size_t TotalFacts() const { return total_; }

  /// Indices (into Tuples(p)) of tuples whose `pos`-th argument equals
  /// `value`. Builds the (p, pos) index on first use; maintained by Add.
  const std::vector<size_t>& MatchByColumn(PredicateId p, int pos,
                                           ElementId value);

  /// Builds the (p, pos) column index now if absent. The parallel fixpoint
  /// pre-builds every index its rule tasks could probe, so MatchByColumn is
  /// a pure read while tasks share the store across threads.
  void EnsureColumnIndex(PredicateId p, int pos);

 private:
  struct TupleHash {
    size_t operator()(const Tuple& t) const { return HashRange(t); }
  };
  using ColumnIndex = std::unordered_map<ElementId, std::vector<size_t>>;

  std::vector<std::vector<Tuple>> relations_;
  std::vector<std::unordered_set<Tuple, TupleHash>> sets_;
  // indexes_[p][pos] — present once built.
  std::vector<std::unordered_map<int, ColumnIndex>> indexes_;
  size_t total_ = 0;
  static const std::vector<size_t> kEmptyMatch;
};

/// An atom with constants pre-resolved to element ids (kUnbound marks
/// variable positions; `vars` holds the variable id per position, -1 for
/// constants).
struct ResolvedAtom {
  PredicateId predicate = 0;
  std::vector<ElementId> const_args;  // kUnbound at variable positions
  std::vector<VariableId> vars;       // -1 at constant positions
};

ResolvedAtom ResolveAtom(const Atom& atom, Structure* domain);

/// Calls `yield` once per tuple of `store` matching `atom` under `binding`,
/// with the binding temporarily extended by the tuple's assignments. `yield`
/// returns false to stop early. Returns the number of matches visited.
size_t MatchAtom(FactStore* store, const ResolvedAtom& atom, Binding* binding,
                 const std::function<bool(void)>& yield);

/// MatchAtom restricted to tuples whose index into Tuples(atom.predicate)
/// lies in [begin, end) — the delta-batch primitive of the parallel
/// semi-naive engine: batches over contiguous slices of the delta relation
/// concatenate to exactly the unrestricted enumeration order.
size_t MatchAtomInRange(FactStore* store, const ResolvedAtom& atom,
                        Binding* binding, size_t begin, size_t end,
                        const std::function<bool(void)>& yield);

/// The argument position MatchAtom probes an index on: the first position
/// that is a constant or whose variable satisfies `is_bound`; -1 when every
/// position is unbound (full scan). The single source of the probe choice —
/// MatchAtom applies it to the runtime binding, and the parallel fixpoint's
/// index freeze applies it to the statically-bound variable set, so the two
/// can never diverge (a divergence would reintroduce a lazy index build
/// under concurrent readers).
int ProbePosition(const ResolvedAtom& atom,
                  const std::function<bool(VariableId)>& is_bound);

/// True iff `atom` is fully bound under `binding` (no unbound variables).
bool FullyBound(const ResolvedAtom& atom, const Binding& binding);

/// Ground tuple of `atom` under `binding`; requires FullyBound.
Tuple GroundArgs(const ResolvedAtom& atom, const Binding& binding);

}  // namespace treedl::datalog

#endif  // TREEDL_DATALOG_DATABASE_HPP_
