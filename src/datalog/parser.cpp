#include "datalog/parser.hpp"

#include <cctype>

#include "common/string_util.hpp"

namespace treedl::datalog {

namespace {

bool IsVariableName(std::string_view name) {
  return !name.empty() &&
         (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_');
}

// Splits on `sep` at parenthesis depth 0.
std::vector<std::string> SplitTopLevel(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : text) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == sep && depth == 0) {
      out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(current);
  return out;
}

Status ParseAtom(Program* program, std::string_view text, Atom* atom) {
  text = Trim(text);
  size_t open = text.find('(');
  std::string_view name;
  std::vector<std::string> arg_texts;  // owned: SplitTopLevel is a temporary
  if (open == std::string_view::npos) {
    name = text;
  } else {
    if (text.back() != ')') {
      return Status::ParseError("unbalanced parentheses in atom: " +
                                std::string(text));
    }
    name = Trim(text.substr(0, open));
    std::string_view inner = text.substr(open + 1, text.size() - open - 2);
    if (!Trim(inner).empty()) {
      for (const std::string& piece : SplitTopLevel(inner, ',')) {
        arg_texts.emplace_back(Trim(piece));
      }
    }
  }
  if (!IsIdentifier(name)) {
    return Status::ParseError("bad predicate name in atom: " +
                              std::string(text));
  }
  Signature* sig = program->mutable_signature();
  PredicateId pid;
  if (sig->HasPredicate(std::string(name))) {
    pid = sig->PredicateIdOf(std::string(name)).value();
    if (sig->arity(pid) != static_cast<int>(arg_texts.size())) {
      return Status::ParseError(
          "predicate " + std::string(name) + " used with arity " +
          std::to_string(arg_texts.size()) + " but declared with arity " +
          std::to_string(sig->arity(pid)));
    }
  } else {
    TREEDL_ASSIGN_OR_RETURN(
        pid, sig->AddPredicate(std::string(name),
                               static_cast<int>(arg_texts.size())));
  }
  atom->predicate = pid;
  atom->args.clear();
  for (std::string_view arg : arg_texts) {
    // Store raw text; classify as variable or constant.
    if (!IsIdentifier(arg)) {
      return Status::ParseError("bad term '" + std::string(arg) +
                                "' in atom: " + std::string(text));
    }
    if (IsVariableName(arg)) {
      atom->args.push_back(
          Term::Var(program->InternVariable(std::string(arg))));
    } else {
      atom->args.push_back(Term::Const(std::string(arg)));
    }
  }
  return Status::OK();
}

Status ParseStatement(Program* program, std::string_view text) {
  size_t arrow = text.find(":-");
  Rule rule;
  std::string_view head_text = arrow == std::string_view::npos
                                   ? text
                                   : text.substr(0, arrow);
  TREEDL_RETURN_IF_ERROR(ParseAtom(program, head_text, &rule.head));
  if (arrow != std::string_view::npos) {
    std::string_view body_text = text.substr(arrow + 2);
    if (Trim(body_text).empty()) {
      return Status::ParseError("empty rule body after ':-'");
    }
    for (const std::string& piece : SplitTopLevel(body_text, ',')) {
      std::string_view lit_text = Trim(piece);
      Literal literal;
      if (StartsWith(lit_text, "not ") || StartsWith(lit_text, "not\t")) {
        literal.positive = false;
        lit_text = Trim(lit_text.substr(4));
      } else if (StartsWith(lit_text, "\\+")) {
        literal.positive = false;
        lit_text = Trim(lit_text.substr(2));
      }
      TREEDL_RETURN_IF_ERROR(ParseAtom(program, lit_text, &literal.atom));
      rule.body.push_back(std::move(literal));
    }
  } else {
    // Ground fact: no variables allowed.
    for (const Term& t : rule.head.args) {
      if (t.IsVar()) {
        return Status::ParseError("fact with variable: " + std::string(text));
      }
    }
  }
  program->AddRule(std::move(rule));
  return Status::OK();
}

}  // namespace

StatusOr<Program> ParseProgram(const std::string& text,
                               const Signature& base_signature) {
  Program program(base_signature);
  // Strip comments, then split statements on '.'.
  std::string clean;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view view = line;
    size_t comment = view.find('%');
    if (comment != std::string_view::npos) view = view.substr(0, comment);
    clean += std::string(view);
    clean += '\n';
  }
  std::string_view rest = clean;
  int statement_no = 0;
  while (true) {
    rest = Trim(rest);
    if (rest.empty()) break;
    size_t dot = std::string_view::npos;
    int depth = 0;
    for (size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] == '(') ++depth;
      if (rest[i] == ')') --depth;
      if (rest[i] == '.' && depth == 0) {
        dot = i;
        break;
      }
    }
    if (dot == std::string_view::npos) {
      return Status::ParseError("statement not terminated by '.': " +
                                std::string(rest.substr(0, 60)));
    }
    ++statement_no;
    Status st = ParseStatement(&program, rest.substr(0, dot));
    if (!st.ok()) {
      return Status::ParseError("statement " + std::to_string(statement_no) +
                                ": " + st.message());
    }
    rest = rest.substr(dot + 1);
  }
  return program;
}

}  // namespace treedl::datalog
