// Deterministic pseudo-random number generation for generators and tests.
//
// A thin wrapper over std::mt19937_64 with convenience draws. All randomized
// components in treedl (graph/schema generators, property tests) take an
// explicit Rng so that every run is reproducible from a seed.
#ifndef TREEDL_COMMON_RNG_HPP_
#define TREEDL_COMMON_RNG_HPP_

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.hpp"

namespace treedl {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TREEDL_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    TREEDL_DCHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformIndex(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Draws k distinct indices from [0, n), in random order. Requires k <= n.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace treedl

#endif  // TREEDL_COMMON_RNG_HPP_
