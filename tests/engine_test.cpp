#include <gtest/gtest.h>

#include "core/extensions.hpp"
#include "core/primality.hpp"
#include "core/primality_enum.hpp"
#include "core/three_color.hpp"
#include "datalog/parser.hpp"
#include "engine/engine.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "mso/evaluator.hpp"
#include "mso/formulas.hpp"
#include "mso/parser.hpp"
#include "schema/primality_bruteforce.hpp"

namespace treedl {
namespace {

// --- Amortization (the §5.3 linearity argument, acceptance criterion) -------

TEST(EngineTest, AmortizesEncodingAndDecompositionAcrossQueries) {
  Schema schema = Schema::PaperExampleSchema();
  const AttributeId n = schema.NumAttributes();
  EngineCounters& global = GlobalEngineCounters();

  // N primality queries on one Engine: exactly one encoding and one
  // decomposition build, session-wide.
  size_t encode_before = global.encode_builds;
  size_t td_before = global.td_builds;
  Engine engine(schema);
  for (AttributeId a = 0; a < n; ++a) {
    RunStats run;
    auto result = engine.IsPrime(a, &run);
    ASSERT_TRUE(result.ok()) << result.status();
    if (a > 0) {
      // Every query after the first reuses the cached artifacts.
      EXPECT_EQ(run.encode_builds, 0u) << "query " << a;
      EXPECT_EQ(run.td_builds, 0u) << "query " << a;
      EXPECT_GT(run.cache_hits, 0u) << "query " << a;
    }
  }
  EXPECT_EQ(engine.CumulativeStats().encode_builds, 1u);
  EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
  EXPECT_EQ(global.encode_builds - encode_before, 1u);
  EXPECT_EQ(global.td_builds - td_before, 1u);

  // N calls to the deprecated convenience overload: N encodings and N
  // decomposition builds (the quadratic pattern the paper argues against).
  encode_before = global.encode_builds;
  td_before = global.td_builds;
  for (AttributeId a = 0; a < n; ++a) {
    ASSERT_TRUE(core::IsPrimeViaTd(schema, a).ok());
  }
  EXPECT_EQ(global.encode_builds - encode_before, static_cast<size_t>(n));
  EXPECT_EQ(global.td_builds - td_before, static_cast<size_t>(n));
}

TEST(EngineTest, SecondQueryDoesNotRebuildDecomposition) {
  Engine engine(Schema::PaperExampleSchema());
  RunStats first;
  ASSERT_TRUE(engine.IsPrime(0, &first).ok());
  EXPECT_EQ(first.encode_builds, 1u);
  EXPECT_EQ(first.td_builds, 1u);

  RunStats second;
  ASSERT_TRUE(engine.IsPrime(1, &second).ok());
  EXPECT_EQ(second.encode_builds, 0u);
  EXPECT_EQ(second.td_builds, 0u);
  EXPECT_GT(second.cache_hits, 0u);
}

// --- Correctness against the legacy API and brute force ----------------------

TEST(EngineTest, PrimalityMatchesBruteForce) {
  Schema schema = Schema::PaperExampleSchema();
  Engine engine(schema);
  std::vector<bool> expected = AllPrimesBruteForce(schema);
  for (AttributeId a = 0; a < schema.NumAttributes(); ++a) {
    auto result = engine.IsPrime(a);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(*result, expected[static_cast<size_t>(a)])
        << schema.AttributeName(a);
  }
  auto primes = engine.AllPrimes();
  ASSERT_TRUE(primes.ok()) << primes.status();
  EXPECT_EQ(*primes, expected);
}

TEST(EngineTest, AllPrimesIsMemoized) {
  Engine engine(Schema::PaperExampleSchema());
  RunStats first;
  ASSERT_TRUE(engine.AllPrimes(&first).ok());
  EXPECT_GT(first.dp_states, 0u);

  RunStats second;
  ASSERT_TRUE(engine.AllPrimes(&second).ok());
  EXPECT_EQ(second.dp_states, 0u);
  EXPECT_EQ(second.normalize_builds, 0u);
  EXPECT_GT(second.cache_hits, 0u);

  // IsPrime after AllPrimes answers from the memoized enumeration.
  RunStats decide;
  auto result = engine.IsPrime(0, &decide);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(decide.dp_states, 0u);
  EXPECT_GT(decide.cache_hits, 0u);
}

TEST(EngineTest, RejectsBadQueries) {
  Engine engine(Schema::PaperExampleSchema());
  EXPECT_FALSE(engine.IsPrime(-1).ok());
  EXPECT_FALSE(engine.IsPrime(99).ok());

  // Structure sessions have no schema to ask primality questions about.
  Engine graph_engine = Engine::FromGraph(CycleGraph(4));
  EXPECT_FALSE(graph_engine.IsPrime(0).ok());
  EXPECT_FALSE(graph_engine.AllPrimes().ok());
}

// --- Graph DPs ----------------------------------------------------------------

TEST(EngineTest, SolvesGraphProblemsOnOneDecomposition) {
  Graph petersen = PetersenGraph();
  Engine engine = Engine::FromGraph(petersen);

  auto three_color = engine.Solve(Engine::Problem::kThreeColor);
  ASSERT_TRUE(three_color.ok()) << three_color.status();
  EXPECT_TRUE(three_color->feasible);
  ASSERT_TRUE(three_color->witness.has_value());
  // The witness must be a proper coloring.
  for (VertexId u = 0; u < static_cast<VertexId>(petersen.NumVertices()); ++u) {
    for (VertexId v : petersen.Neighbors(u)) {
      EXPECT_NE((*three_color->witness)[static_cast<size_t>(u)],
                (*three_color->witness)[static_cast<size_t>(v)]);
    }
  }

  auto count = engine.Solve(Engine::Problem::kThreeColorCount);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count->count, 0u);

  auto vc = engine.Solve(Engine::Problem::kVertexCover);
  auto is = engine.Solve(Engine::Problem::kIndependentSet);
  auto ds = engine.Solve(Engine::Problem::kDominatingSet);
  ASSERT_TRUE(vc.ok() && is.ok() && ds.ok());
  EXPECT_EQ(vc->optimum, 6u);  // Petersen: τ = 6
  EXPECT_EQ(is->optimum, 4u);  // Petersen: α = 4
  EXPECT_EQ(ds->optimum, 3u);  // Petersen: γ = 3
  // α + τ = n (Gallai).
  EXPECT_EQ(vc->optimum + is->optimum, petersen.NumVertices());

  // All five queries shared one decomposition build.
  EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
  // ... and one normalization.
  EXPECT_EQ(engine.CumulativeStats().normalize_builds, 1u);
  // ... but five separate traversals — the pattern SolveAll batches away.
  EXPECT_EQ(engine.CumulativeStats().dp_traversals, 5u);
  EXPECT_EQ(engine.CumulativeStats().dp_passes, 5u);
}

TEST(EngineTest, SolveAllBatchesFiveProblemsIntoOneTraversal) {
  Graph petersen = PetersenGraph();
  Engine engine = Engine::FromGraph(petersen);

  RunStats run;
  auto all = engine.SolveAll(&run);
  ASSERT_TRUE(all.ok()) << all.status();

  // Known Petersen facts, answered together.
  EXPECT_TRUE(all->three_colorable);
  ASSERT_TRUE(all->coloring.has_value());
  EXPECT_GT(all->three_colorings, 0u);
  EXPECT_EQ(all->min_vertex_cover, 6u);
  EXPECT_EQ(all->max_independent_set, 4u);
  EXPECT_EQ(all->min_dominating_set, 3u);
  EXPECT_EQ(all->Result(Engine::Problem::kVertexCover).optimum, 6u);
  EXPECT_TRUE(all->Result(Engine::Problem::kThreeColorCount).feasible);

  // The acceptance criterion: ONE traversal family drove all five state
  // tables.
  EXPECT_EQ(run.dp_traversals, 1u);
  EXPECT_EQ(run.dp_passes, 5u);
  EXPECT_EQ(run.td_builds, 1u);
  EXPECT_EQ(run.normalize_builds, 1u);

  // A second batch is pure cache + one more traversal.
  RunStats again;
  ASSERT_TRUE(engine.SolveAll(&again).ok());
  EXPECT_EQ(again.td_builds, 0u);
  EXPECT_EQ(again.normalize_builds, 0u);
  EXPECT_EQ(again.dp_traversals, 1u);
  EXPECT_GT(again.cache_hits, 0u);
}

TEST(EngineTest, DeprecatedGraphShimsForwardStats) {
  Graph g = CycleGraph(5);
  core::DpStats stats;
  auto vc = core::MinVertexCoverTd(g, &stats);
  ASSERT_TRUE(vc.ok());
  EXPECT_EQ(*vc, 3u);
  EXPECT_GT(stats.total_states, 0u);  // numbers flow through RunStats

  auto colored = core::SolveThreeColor(g);
  ASSERT_TRUE(colored.ok());
  EXPECT_TRUE(colored->colorable);
  EXPECT_GT(colored->stats.total_states, 0u);
}

// --- Datalog backends ---------------------------------------------------------

TEST(EngineTest, DatalogBackendsAgree) {
  Structure edb(Signature::GraphSignature());
  for (int i = 0; i < 5; ++i) edb.AddElement("n" + std::to_string(i));
  ASSERT_TRUE(edb.AddFactNamed("e", {"n0", "n1"}).ok());
  ASSERT_TRUE(edb.AddFactNamed("e", {"n1", "n2"}).ok());
  ASSERT_TRUE(edb.AddFactNamed("e", {"n2", "n3"}).ok());
  ASSERT_TRUE(edb.AddFactNamed("e", {"n3", "n1"}).ok());

  auto program = datalog::ParseProgram(R"(
    path(X, Y) :- e(X, Y).
    path(X, Y) :- e(X, Z), path(Z, Y).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  Engine engine(edb);
  RunStats naive_stats, semi_stats;
  auto naive =
      engine.EvaluateDatalog(*program, DatalogBackend::kNaive, &naive_stats);
  auto semi = engine.EvaluateDatalog(*program, DatalogBackend::kSemiNaive,
                                     &semi_stats);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(*naive == *semi);
  EXPECT_GT(naive_stats.derived_facts, 0u);
  EXPECT_EQ(naive_stats.derived_facts, semi_stats.derived_facts);
  // Semi-naive attempts no more rule applications than naive.
  EXPECT_LE(semi_stats.rule_applications, naive_stats.rule_applications);
}

// --- MSO routing and backend equivalence on quasi-guarded programs ------------

TEST(EngineTest, MsoUnaryAgreesAcrossBackendsAndWithDirectEvaluation) {
  // Rank-1 unary query over {p/1} — the regime where the Thm 4.5
  // construction is practical (over {e/2} it state-explodes by design).
  Signature unary = Signature::Make({{"p", 1}}).value();
  Structure a(unary);
  for (int i = 0; i < 6; ++i) a.AddElement("u" + std::to_string(i));
  ASSERT_TRUE(a.AddFactNamed("p", {"u1"}).ok());
  ASSERT_TRUE(a.AddFactNamed("p", {"u4"}).ok());
  auto query = mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))");
  ASSERT_TRUE(query.ok()) << query.status();

  // The Gaifman graph of a unary structure is edgeless, so supply a width-1
  // path decomposition for the τ_td encoding.
  TreeDecomposition path_td;
  TdNodeId prev = path_td.AddNode({0, 1});
  for (ElementId e = 1; e + 1 < 6; ++e) {
    prev = path_td.AddNode({e, e + 1}, prev);
  }

  // Direct evaluation as ground truth.
  EngineOptions direct_options;
  direct_options.mso_strategy = MsoStrategy::kDirect;
  Engine direct_engine{Structure(a), direct_options};
  auto expected = direct_engine.EvaluateMsoUnary(*query, "x");
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_EQ(*expected, (std::vector<bool>{false, true, false, false, true,
                                          false}));

  // Compiled route through each backend; the Thm 4.5 program is
  // quasi-guarded, so even the grounded-LTUR backend applies.
  for (DatalogBackend backend :
       {DatalogBackend::kNaive, DatalogBackend::kSemiNaive,
        DatalogBackend::kGrounded}) {
    EngineOptions options;
    options.backend = backend;
    options.decomposition = path_td;
    Engine engine{Structure(a), options};
    auto selected = engine.EvaluateMsoUnary(*query, "x");
    ASSERT_TRUE(selected.ok())
        << DatalogBackendName(backend) << ": " << selected.status();
    EXPECT_EQ(*selected, *expected) << DatalogBackendName(backend);
    // The compiled route reuses the session decomposition and τ_td encoding.
    EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
  }
}

TEST(EngineTest, MsoProgramCacheSkipsRepeatedThm45Construction) {
  // Same rank-1 unary setup as above; what's under test is the per-formula
  // program cache, via the mso_compile_builds counter.
  Signature unary = Signature::Make({{"p", 1}}).value();
  Structure a(unary);
  for (int i = 0; i < 6; ++i) a.AddElement("u" + std::to_string(i));
  ASSERT_TRUE(a.AddFactNamed("p", {"u1"}).ok());
  ASSERT_TRUE(a.AddFactNamed("p", {"u4"}).ok());
  TreeDecomposition path_td;
  TdNodeId prev = path_td.AddNode({0, 1});
  for (ElementId e = 1; e + 1 < 6; ++e) {
    prev = path_td.AddNode({e, e + 1}, prev);
  }
  auto query = mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))");
  ASSERT_TRUE(query.ok()) << query.status();

  EngineOptions options;
  options.decomposition = path_td;
  Engine engine{Structure(a), options};

  // First evaluation pays one Thm 4.5 construction...
  RunStats first;
  auto selected = engine.EvaluateMsoUnary(*query, "x", &first);
  ASSERT_TRUE(selected.ok()) << selected.status();
  EXPECT_EQ(first.mso_compile_builds, 1u);

  // ... repeating the same formula is a cache hit with identical results...
  RunStats second;
  auto again = engine.EvaluateMsoUnary(*query, "x", &second);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(second.mso_compile_builds, 0u);
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_EQ(*again, *selected);

  // ... and a different formula misses and compiles anew.
  auto other = mso::ParseFormula("~p(x)");
  ASSERT_TRUE(other.ok()) << other.status();
  RunStats third;
  auto negated = engine.EvaluateMsoUnary(*other, "x", &third);
  ASSERT_TRUE(negated.ok()) << negated.status();
  EXPECT_EQ(third.mso_compile_builds, 1u);

  // Session-wide: exactly two constructions for three evaluations.
  EXPECT_EQ(engine.CumulativeStats().mso_compile_builds, 2u);
}

TEST(EngineTest, MsoSentenceOnTrivialStructureFallsBackToDirect) {
  // A single marked element: width-0 decomposition, Thm 4.5 inapplicable —
  // the engine must still answer (directly).
  Signature unary = Signature::Make({{"p", 1}}).value();
  Structure a(unary);
  a.AddElement("u");
  ASSERT_TRUE(a.AddFactNamed("p", {"u"}).ok());

  Engine engine{Structure(a)};
  auto sentence = mso::ParseFormula("ex1 x: p(x)");
  ASSERT_TRUE(sentence.ok()) << sentence.status();
  auto result = engine.EvaluateMso(*sentence);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(*result);
}

// --- Options -----------------------------------------------------------------

TEST(EngineTest, CustomEliminationOrderIsUsed) {
  Schema schema = Schema::PaperExampleSchema();
  SchemaEncoding encoding = EncodeSchema(schema);
  Graph gaifman = GaifmanGraph(encoding.structure);

  // Identity order: valid, if not optimal.
  std::vector<VertexId> order(gaifman.NumVertices());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<VertexId>(i);
  }
  EngineOptions options;
  options.elimination_order = order;
  Engine engine(schema, options);
  auto width = engine.Width();
  ASSERT_TRUE(width.ok()) << width.status();
  EXPECT_GE(*width, 2);  // the paper's example has treewidth 2

  std::vector<bool> expected = AllPrimesBruteForce(schema);
  auto primes = engine.AllPrimes();
  ASSERT_TRUE(primes.ok()) << primes.status();
  EXPECT_EQ(*primes, expected);
}

TEST(EngineTest, PassTimingsAreCollectedWhenRequested) {
  EngineOptions options;
  options.collect_pass_timings = true;
  Engine engine(Schema::PaperExampleSchema(), options);
  RunStats run;
  ASSERT_TRUE(engine.IsPrime(0, &run).ok());
  ASSERT_FALSE(run.passes.empty());
  bool saw_normalize = false;
  for (const PassTiming& timing : run.passes) {
    if (timing.pass == "normalize") saw_normalize = true;
  }
  EXPECT_TRUE(saw_normalize);
  EXPECT_FALSE(run.ToString().empty());
}

// --- Deprecated primality shims ----------------------------------------------

TEST(EngineTest, DeprecatedPrimalityShimsForwardStats) {
  Schema schema = Schema::PaperExampleSchema();
  core::DpStats stats;
  auto result = core::IsPrimeViaTd(schema, 0, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(stats.total_states, 0u);

  core::DpStats enum_stats;
  auto primes = core::EnumeratePrimes(schema, &enum_stats);
  ASSERT_TRUE(primes.ok());
  EXPECT_GT(enum_stats.total_states, 0u);
  EXPECT_EQ(*primes, AllPrimesBruteForce(schema));
}

}  // namespace
}  // namespace treedl
