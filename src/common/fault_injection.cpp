#include "common/fault_injection.hpp"

#include <cctype>

namespace treedl {

namespace {

// splitmix64: a full-avalanche mixer, so per-(seed, site, hit) decisions are
// independent without any shared RNG stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(const char* site) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (const char* p = site; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::SetSchedule(const std::string& schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  seeded_ = false;
  faults_injected_.store(0, std::memory_order_relaxed);
  if (schedule.empty()) {
    enabled_.store(false, std::memory_order_relaxed);
    return Status::OK();
  }
  size_t start = 0;
  while (start <= schedule.size()) {
    size_t comma = schedule.find(',', start);
    if (comma == std::string::npos) comma = schedule.size();
    std::string token = schedule.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    uint64_t hit = 0;
    std::string site = token;
    size_t at = token.rfind('@');
    if (at != std::string::npos) {
      site = token.substr(0, at);
      std::string index = token.substr(at + 1);
      if (site.empty() || index.empty()) {
        return Status::InvalidArgument("fault schedule: bad token '" + token +
                                       "' (want site or site@N)");
      }
      for (char c : index) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Status::InvalidArgument("fault schedule: bad hit index in '" +
                                         token + "'");
        }
        hit = hit * 10 + static_cast<uint64_t>(c - '0');
      }
    }
    sites_[site].fail_hits.push_back(hit);
  }
  enabled_.store(!sites_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Seed(uint64_t seed, uint32_t permille) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  faults_injected_.store(0, std::memory_order_relaxed);
  seeded_ = true;
  seed_ = seed;
  permille_ = permille > 1000 ? 1000 : permille;
  enabled_.store(permille_ > 0, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  seeded_ = false;
  enabled_.store(false, std::memory_order_relaxed);
  faults_injected_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::Hit(const char* site) {
  uint64_t hit = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = sites_[site];
    hit = state.hits++;
    if (seeded_) {
      uint64_t h = Mix64(seed_ ^ Mix64(HashSite(site) ^ Mix64(hit)));
      fail = (h % 1000) < permille_;
    } else {
      for (uint64_t fail_hit : state.fail_hits) {
        if (fail_hit == hit) {
          fail = true;
          break;
        }
      }
    }
  }
  if (!fail) return Status::OK();
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal("injected fault at " + std::string(site) + " (hit " +
                          std::to_string(hit) + ")");
}

}  // namespace treedl
