#include "mso2dl/mso_to_datalog.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/logging.hpp"
#include "mso/evaluator.hpp"
#include "mso/types.hpp"

namespace treedl::mso2dl {

namespace {

using datalog::Atom;
using datalog::Literal;
using datalog::Program;
using datalog::Rule;
using datalog::Term;
using mso::TypeId;

/// A structure together with a distinguished (w+1)-tuple of pairwise distinct
/// elements — the bag of the decomposition node the structure hangs off. For
/// Θ↑ entries the bag is the root bag of a width-w decomposition of the
/// witness; for Θ↓ entries it sits at a leaf. Witnesses exist so that (i) new
/// structures can be built by the three extension operations and (ii) φ can
/// be model-checked during element selection.
struct Witness {
  Structure a;
  std::vector<ElementId> bag;

  explicit Witness(Signature sig) : a(std::move(sig)) {}
};

/// An atom schema over bag positions: predicate + positions in {0..w}.
struct PosAtom {
  PredicateId pred;
  std::vector<int> positions;
  bool involves_position0 = false;
};

class Builder {
 public:
  Builder(const Signature& tau, mso::FormulaPtr phi, std::string free_var,
          bool unary, const Mso2DlOptions& options)
      : tau_(tau),
        phi_(std::move(phi)),
        free_var_(std::move(free_var)),
        unary_(unary),
        options_(options),
        types_(mso::TypeOptions{options.type_work_budget}) {}

  StatusOr<Mso2DlResult> Build() {
    if (options_.width < 1) {
      return Status::InvalidArgument("width must be >= 1");
    }
    k_ = mso::QuantifierDepth(*phi_);
    TREEDL_RETURN_IF_ERROR(mso::CheckAgainstSignature(*phi_, tau_));
    TREEDL_RETURN_IF_ERROR(InitSignatureAndAtomSpace());

    TREEDL_RETURN_IF_ERROR(Saturate(/*up=*/true));
    if (unary_) {
      TREEDL_RETURN_IF_ERROR(Saturate(/*up=*/false));
      TREEDL_RETURN_IF_ERROR(EmitElementSelection());
    } else {
      TREEDL_RETURN_IF_ERROR(EmitSentenceSelection());
    }

    Mso2DlResult result;
    result.program = std::move(program_);
    result.num_up_types = up_.size();
    result.num_down_types = down_.size();
    result.rank = k_;
    return result;
  }

 private:
  struct Entry {
    TypeId type;
    Witness witness;
    uint64_t bag_pattern = 0;
    PredicateId predicate;  // "upN" / "downN" in program_'s signature
  };

  int W() const { return options_.width; }
  int BagSize() const { return options_.width + 1; }

  // --- setup -----------------------------------------------------------------

  Status InitSignatureAndAtomSpace() {
    // Program signature: τ, then τ_td, then "phi"; type predicates are added
    // as they are discovered.
    Signature sig = tau_;
    for (const char* name : {"root", "leaf"}) {
      TREEDL_ASSIGN_OR_RETURN([[maybe_unused]] PredicateId p,
                              sig.AddPredicate(name, 1));
    }
    for (const char* name : {"child1", "child2"}) {
      TREEDL_ASSIGN_OR_RETURN([[maybe_unused]] PredicateId p,
                              sig.AddPredicate(name, 2));
    }
    TREEDL_ASSIGN_OR_RETURN([[maybe_unused]] PredicateId bag_p,
                            sig.AddPredicate("bag", W() + 2));
    TREEDL_ASSIGN_OR_RETURN([[maybe_unused]] PredicateId phi_p,
                            sig.AddPredicate("phi", unary_ ? 1 : 0));
    program_ = Program(std::move(sig));

    // Variables.
    v_ = program_.InternVariable("V");
    v1_ = program_.InternVariable("V1");
    v2_ = program_.InternVariable("V2");
    for (int i = 0; i <= W(); ++i) {
      x_.push_back(program_.InternVariable("X" + std::to_string(i)));
    }
    xr_ = program_.InternVariable("XR");

    // Atom space R(ā): all τ-atoms over bag positions.
    for (PredicateId p = 0; p < tau_.size(); ++p) {
      int arity = tau_.arity(p);
      std::vector<int> tuple(static_cast<size_t>(arity), 0);
      while (true) {
        PosAtom atom;
        atom.pred = p;
        atom.positions = tuple;
        atom.involves_position0 =
            std::find(tuple.begin(), tuple.end(), 0) != tuple.end();
        atom_space_.push_back(atom);
        int pos = arity - 1;
        while (pos >= 0 && ++tuple[static_cast<size_t>(pos)] == BagSize()) {
          tuple[static_cast<size_t>(pos)] = 0;
          --pos;
        }
        if (pos < 0) break;
      }
    }
    if (atom_space_.size() > 63) {
      return Status::OutOfRange(
          "atom space over the bag exceeds 63 atoms; reduce signature arity "
          "or width");
    }
    return Status::OK();
  }

  // --- witness helpers ----------------------------------------------------------

  uint64_t ComputePattern(const Witness& w) const {
    uint64_t pattern = 0;
    for (size_t i = 0; i < atom_space_.size(); ++i) {
      Tuple args;
      for (int pos : atom_space_[i].positions) {
        args.push_back(w.bag[static_cast<size_t>(pos)]);
      }
      if (w.a.HasFact(atom_space_[i].pred, args)) pattern |= uint64_t{1} << i;
    }
    return pattern;
  }

  /// Fresh base witness: w+1 elements with the given bag-atom pattern.
  Witness BaseWitness(uint64_t pattern) const {
    Witness w(tau_);
    for (int i = 0; i <= W(); ++i) {
      w.bag.push_back(w.a.AddElement("b" + std::to_string(i)));
    }
    AddPatternFacts(&w, pattern, /*only_position0=*/false);
    return w;
  }

  void AddPatternFacts(Witness* w, uint64_t pattern, bool only_position0) const {
    for (size_t i = 0; i < atom_space_.size(); ++i) {
      if (!((pattern >> i) & 1)) continue;
      if (only_position0 && !atom_space_[i].involves_position0) continue;
      Tuple args;
      for (int pos : atom_space_[i].positions) {
        args.push_back(w->bag[static_cast<size_t>(pos)]);
      }
      Status st = w->a.AddFact(atom_space_[i].pred, std::move(args));
      TREEDL_CHECK(st.ok()) << st.ToString();
    }
  }

  Witness PermuteWitness(const Witness& base, const std::vector<int>& perm) const {
    Witness w(tau_);
    w.a = base.a;
    for (int i = 0; i < BagSize(); ++i) {
      w.bag.push_back(
          base.bag[static_cast<size_t>(perm[static_cast<size_t>(i)])]);
    }
    return w;
  }

  /// New witness from `base` by replacing bag position 0 with a fresh element
  /// whose bag-facts follow `pattern`'s position-0 atoms.
  StatusOr<Witness> ReplaceWitness(const Witness& base, uint64_t pattern) const {
    if (base.a.NumElements() + 1 > options_.max_witness_elements) {
      return Status::ResourceExhausted(
          "witness structure exceeded max_witness_elements (" +
          std::to_string(options_.max_witness_elements) +
          "); the generic construction hit its exponential wall");
    }
    Witness w(tau_);
    w.a = base.a;
    ElementId fresh = w.a.AddElement("n" + std::to_string(w.a.NumElements()));
    w.bag = base.bag;
    w.bag[0] = fresh;
    AddPatternFacts(&w, pattern, /*only_position0=*/true);
    return w;
  }

  /// Disjoint union of `left` and `right` glued along their bags (position-
  /// wise). Caller guarantees equal bag patterns.
  StatusOr<Witness> MergeWitnesses(const Witness& left,
                                   const Witness& right) const {
    size_t merged_size =
        left.a.NumElements() + right.a.NumElements() - left.bag.size();
    if (merged_size > options_.max_witness_elements) {
      return Status::ResourceExhausted(
          "witness structure exceeded max_witness_elements (" +
          std::to_string(options_.max_witness_elements) +
          "); the generic construction hit its exponential wall");
    }
    Witness w(tau_);
    w.a = left.a;
    w.bag = left.bag;
    // Translate right's elements: bag -> left's bag, others -> fresh.
    std::unordered_map<ElementId, ElementId> delta;
    for (size_t i = 0; i < right.bag.size(); ++i) {
      delta[right.bag[i]] = left.bag[i];
    }
    for (ElementId e = 0; e < right.a.NumElements(); ++e) {
      if (delta.count(e)) continue;
      delta[e] = w.a.AddElement("m" + std::to_string(w.a.NumElements()));
    }
    for (const Fact& fact : right.a.AllFacts()) {
      Tuple args;
      for (ElementId e : fact.args) args.push_back(delta.at(e));
      Status st = w.a.AddFact(fact.predicate, std::move(args));
      TREEDL_CHECK(st.ok()) << st.ToString();
    }
    return w;
  }

  StatusOr<TypeId> TypeOf(const Witness& w) {
    return types_.ComputeType(w.a, w.bag, k_);
  }

  // --- rule building blocks --------------------------------------------------------

  Term V(datalog::VariableId v) const { return Term::Var(v); }

  Atom MakeAtom(const char* name, std::vector<Term> args) const {
    PredicateId p = program_.signature().PredicateIdOf(name).value();
    return Atom{p, std::move(args)};
  }

  /// bag(node, X0..Xw), optionally permuting the element variables and/or
  /// substituting variable position 0.
  Atom BagAtom(datalog::VariableId node, const std::vector<int>* perm = nullptr,
               const datalog::VariableId* pos0_override = nullptr) const {
    std::vector<Term> args{V(node)};
    for (int i = 0; i <= W(); ++i) {
      int source = perm != nullptr ? (*perm)[static_cast<size_t>(i)] : i;
      datalog::VariableId var = x_[static_cast<size_t>(source)];
      if (i == 0 && pos0_override != nullptr) var = *pos0_override;
      args.push_back(V(var));
    }
    PredicateId p = program_.signature().PredicateIdOf("bag").value();
    return Atom{p, std::move(args)};
  }

  /// ± literals for every atom of the atom space according to `pattern`.
  void AppendPatternLiterals(uint64_t pattern, std::vector<Literal>* body) const {
    for (size_t i = 0; i < atom_space_.size(); ++i) {
      Literal lit;
      lit.positive = ((pattern >> i) & 1) != 0;
      lit.atom.predicate = atom_space_[i].pred;
      for (int pos : atom_space_[i].positions) {
        lit.atom.args.push_back(V(x_[static_cast<size_t>(pos)]));
      }
      body->push_back(std::move(lit));
    }
  }

  void AddRuleDeduped(Rule rule) {
    std::string repr = program_.RuleToString(rule);
    if (emitted_rules_.insert(std::move(repr)).second) {
      program_.AddRule(std::move(rule));
    }
  }

  // --- entry management -----------------------------------------------------------

  std::vector<Entry>& Entries(bool up) { return up ? up_ : down_; }
  std::map<TypeId, int>& Index(bool up) { return up ? up_index_ : down_index_; }

  /// Finds or creates the Θ-entry for `type`; returns (index, was_new).
  StatusOr<std::pair<int, bool>> InternEntry(bool up, TypeId type,
                                             Witness witness) {
    auto& entries = Entries(up);
    auto& index = Index(up);
    auto it = index.find(type);
    if (it != index.end()) return std::make_pair(it->second, false);
    if (entries.size() >= options_.max_types) {
      return Status::ResourceExhausted("type saturation exceeded max_types = " +
                                       std::to_string(options_.max_types));
    }
    std::string name = (up ? "up" : "down") + std::to_string(entries.size());
    TREEDL_ASSIGN_OR_RETURN(
        PredicateId pred, program_.mutable_signature()->AddPredicate(name, 1));
    uint64_t pattern = ComputePattern(witness);
    int id = static_cast<int>(entries.size());
    entries.push_back(Entry{type, std::move(witness), pattern, pred});
    index.emplace(type, id);
    return std::make_pair(id, true);
  }

  PredicateId EntryPred(bool up, int id) {
    return Entries(up)[static_cast<size_t>(id)].predicate;
  }

  // --- saturation (proof parts 1 and 2) ----------------------------------------------

  Status Saturate(bool up) {
    std::deque<int> queue;
    // BASE CASE: all EDBs over a single full bag. Θ↑ rules are guarded by
    // leaf(v) (the bag is the root of a one-node decomposition); Θ↓ rules by
    // root(v) (the envelope of the root is the root alone).
    for (uint64_t pattern = 0; pattern < (uint64_t{1} << atom_space_.size());
         ++pattern) {
      Witness w = BaseWitness(pattern);
      TREEDL_ASSIGN_OR_RETURN(TypeId t, TypeOf(w));
      TREEDL_ASSIGN_OR_RETURN(auto interned, InternEntry(up, t, std::move(w)));
      if (interned.second) queue.push_back(interned.first);
      Rule rule;
      rule.head = Atom{EntryPred(up, interned.first), {V(v_)}};
      rule.body.push_back(Literal{BagAtom(v_), true});
      rule.body.push_back(
          Literal{MakeAtom(up ? "leaf" : "root", {V(v_)}), true});
      AppendPatternLiterals(pattern, &rule.body);
      AddRuleDeduped(std::move(rule));
    }
    // INDUCTION: drain the worklist.
    while (!queue.empty()) {
      int id = queue.front();
      queue.pop_front();
      TREEDL_RETURN_IF_ERROR(ExtendPermutations(up, id, &queue));
      TREEDL_RETURN_IF_ERROR(ExtendReplacements(up, id, &queue));
      if (up) {
        TREEDL_RETURN_IF_ERROR(ExtendUpBranches(id, &queue));
      } else {
        TREEDL_RETURN_IF_ERROR(ExtendDownBranches(id, &queue));
      }
    }
    return Status::OK();
  }

  Status ExtendPermutations(bool up, int id, std::deque<int>* queue) {
    std::vector<int> perm(static_cast<size_t>(BagSize()));
    for (int i = 0; i < BagSize(); ++i) perm[static_cast<size_t>(i)] = i;
    do {
      TypeId old_type = Entries(up)[static_cast<size_t>(id)].type;
      TypeId t;
      auto cache_it = perm_cache_.find({old_type, perm});
      Witness w = PermuteWitness(Entries(up)[static_cast<size_t>(id)].witness,
                                 perm);
      if (cache_it != perm_cache_.end()) {
        t = cache_it->second;
      } else {
        TREEDL_ASSIGN_OR_RETURN(t, TypeOf(w));
        perm_cache_.emplace(std::make_pair(old_type, perm), t);
      }
      TREEDL_ASSIGN_OR_RETURN(auto interned, InternEntry(up, t, std::move(w)));
      if (interned.second) queue->push_back(interned.first);

      // Θ↑: the typed node v is the parent (child1(v1, v)).
      // Θ↓: the typed node v is the child (child1(v, v1)).
      Rule rule;
      rule.head = Atom{EntryPred(up, interned.first), {V(v_)}};
      rule.body.push_back(Literal{BagAtom(v_, &perm), true});
      rule.body.push_back(Literal{
          up ? MakeAtom("child1", {V(v1_), V(v_)})
             : MakeAtom("child1", {V(v_), V(v1_)}),
          true});
      rule.body.push_back(Literal{Atom{EntryPred(up, id), {V(v1_)}}, true});
      rule.body.push_back(Literal{BagAtom(v1_), true});
      AddRuleDeduped(std::move(rule));
    } while (std::next_permutation(perm.begin(), perm.end()));
    return Status::OK();
  }

  Status ExtendReplacements(bool up, int id, std::deque<int>* queue) {
    // Free choice over atoms involving position 0; atoms among positions 1..w
    // are inherited from the existing bag (same elements).
    uint64_t fixed = 0;
    std::vector<size_t> free_atoms;
    uint64_t base_pattern = Entries(up)[static_cast<size_t>(id)].bag_pattern;
    for (size_t i = 0; i < atom_space_.size(); ++i) {
      if (atom_space_[i].involves_position0) {
        free_atoms.push_back(i);
      } else if ((base_pattern >> i) & 1) {
        fixed |= uint64_t{1} << i;
      }
    }
    for (uint64_t choice = 0; choice < (uint64_t{1} << free_atoms.size());
         ++choice) {
      uint64_t pattern = fixed;
      for (size_t j = 0; j < free_atoms.size(); ++j) {
        if ((choice >> j) & 1) pattern |= uint64_t{1} << free_atoms[j];
      }
      TypeId old_type = Entries(up)[static_cast<size_t>(id)].type;
      TypeId t;
      auto cache_it = replace_cache_.find({old_type, pattern});
      if (cache_it != replace_cache_.end()) {
        t = cache_it->second;
        // The entry may still be missing in this direction; build the witness
        // only if needed.
        if (!Index(up).count(t)) {
          TREEDL_ASSIGN_OR_RETURN(
              Witness w,
              ReplaceWitness(Entries(up)[static_cast<size_t>(id)].witness,
                             pattern));
          TREEDL_ASSIGN_OR_RETURN(auto interned,
                                  InternEntry(up, t, std::move(w)));
          if (interned.second) queue->push_back(interned.first);
        }
      } else {
        TREEDL_ASSIGN_OR_RETURN(
            Witness w,
            ReplaceWitness(Entries(up)[static_cast<size_t>(id)].witness,
                           pattern));
        TREEDL_ASSIGN_OR_RETURN(t, TypeOf(w));
        replace_cache_.emplace(std::make_pair(old_type, pattern), t);
        TREEDL_ASSIGN_OR_RETURN(auto interned, InternEntry(up, t, std::move(w)));
        if (interned.second) queue->push_back(interned.first);
      }

      Rule rule;
      rule.head = Atom{EntryPred(up, Index(up).at(t)), {V(v_)}};
      rule.body.push_back(Literal{BagAtom(v_), true});
      rule.body.push_back(Literal{
          up ? MakeAtom("child1", {V(v1_), V(v_)})
             : MakeAtom("child1", {V(v_), V(v1_)}),
          true});
      rule.body.push_back(Literal{Atom{EntryPred(up, id), {V(v1_)}}, true});
      rule.body.push_back(Literal{BagAtom(v1_, nullptr, &xr_), true});
      AppendPatternLiterals(pattern, &rule.body);
      AddRuleDeduped(std::move(rule));
    }
    return Status::OK();
  }

  Status ExtendUpBranches(int id, std::deque<int>* queue) {
    // Pair the entry with every current entry (including itself), both child
    // orders. Only EDB-consistent pairs merge.
    size_t current = up_.size();
    for (size_t other = 0; other < current; ++other) {
      for (auto [left, right] :
           {std::make_pair(static_cast<size_t>(id), other),
            std::make_pair(other, static_cast<size_t>(id))}) {
        if (up_[left].bag_pattern != up_[right].bag_pattern) continue;
        TREEDL_ASSIGN_OR_RETURN(
            TypeId t, MergedType(up_[left].type, up_[right].type,
                                 up_[left].witness, up_[right].witness));
        if (!up_index_.count(t)) {
          TREEDL_ASSIGN_OR_RETURN(
              Witness w, MergeWitnesses(up_[left].witness, up_[right].witness));
          TREEDL_ASSIGN_OR_RETURN(auto interned,
                                  InternEntry(true, t, std::move(w)));
          if (interned.second) queue->push_back(interned.first);
        }

        Rule rule;
        rule.head = Atom{EntryPred(true, up_index_.at(t)), {V(v_)}};
        rule.body.push_back(Literal{BagAtom(v_), true});
        rule.body.push_back(Literal{MakeAtom("child1", {V(v1_), V(v_)}), true});
        rule.body.push_back(Literal{Atom{up_[left].predicate, {V(v1_)}}, true});
        rule.body.push_back(Literal{MakeAtom("child2", {V(v2_), V(v_)}), true});
        rule.body.push_back(Literal{Atom{up_[right].predicate, {V(v2_)}}, true});
        rule.body.push_back(Literal{BagAtom(v1_), true});
        rule.body.push_back(Literal{BagAtom(v2_), true});
        AddRuleDeduped(std::move(rule));
      }
    }
    return Status::OK();
  }

  Status ExtendDownBranches(int id, std::deque<int>* queue) {
    // Combine the Θ↓ entry (envelope of the branch node) with every Θ↑ entry
    // (the sibling's subtree); Θ↑ is fully saturated by now.
    for (size_t other = 0; other < up_.size(); ++other) {
      const Entry& up_entry = up_[other];
      if (down_[static_cast<size_t>(id)].bag_pattern != up_entry.bag_pattern) {
        continue;
      }
      TypeId td = down_[static_cast<size_t>(id)].type;
      TREEDL_ASSIGN_OR_RETURN(
          TypeId t,
          MergedType(td, up_entry.type,
                     down_[static_cast<size_t>(id)].witness, up_entry.witness));
      if (!down_index_.count(t)) {
        TREEDL_ASSIGN_OR_RETURN(
            Witness w, MergeWitnesses(down_[static_cast<size_t>(id)].witness,
                                      up_entry.witness));
        TREEDL_ASSIGN_OR_RETURN(auto interned,
                                InternEntry(false, t, std::move(w)));
        if (interned.second) queue->push_back(interned.first);
      }

      PredicateId new_pred = EntryPred(false, down_index_.at(t));
      PredicateId down_pred = down_[static_cast<size_t>(id)].predicate;
      // Two rules: the node being typed is the first or the second child.
      {
        Rule rule;
        rule.head = Atom{new_pred, {V(v1_)}};
        rule.body.push_back(Literal{BagAtom(v1_), true});
        rule.body.push_back(Literal{MakeAtom("child1", {V(v1_), V(v_)}), true});
        rule.body.push_back(Literal{MakeAtom("child2", {V(v2_), V(v_)}), true});
        rule.body.push_back(Literal{Atom{down_pred, {V(v_)}}, true});
        rule.body.push_back(Literal{Atom{up_entry.predicate, {V(v2_)}}, true});
        rule.body.push_back(Literal{BagAtom(v_), true});
        rule.body.push_back(Literal{BagAtom(v2_), true});
        AddRuleDeduped(std::move(rule));
      }
      {
        Rule rule;
        rule.head = Atom{new_pred, {V(v2_)}};
        rule.body.push_back(Literal{BagAtom(v2_), true});
        rule.body.push_back(Literal{MakeAtom("child1", {V(v1_), V(v_)}), true});
        rule.body.push_back(Literal{MakeAtom("child2", {V(v2_), V(v_)}), true});
        rule.body.push_back(Literal{Atom{down_pred, {V(v_)}}, true});
        rule.body.push_back(Literal{Atom{up_entry.predicate, {V(v1_)}}, true});
        rule.body.push_back(Literal{BagAtom(v_), true});
        rule.body.push_back(Literal{BagAtom(v1_), true});
        AddRuleDeduped(std::move(rule));
      }
    }
    return Status::OK();
  }

  /// Type of the glued structure, memoized on the pair of part types (sound
  /// by Lemma 3.5(3)/3.6(3): the parts' types determine the whole's type).
  StatusOr<TypeId> MergedType(TypeId left_type, TypeId right_type,
                              const Witness& left, const Witness& right) {
    auto it = merge_cache_.find({left_type, right_type});
    if (it != merge_cache_.end()) return it->second;
    TREEDL_ASSIGN_OR_RETURN(Witness w, MergeWitnesses(left, right));
    TREEDL_ASSIGN_OR_RETURN(TypeId t, TypeOf(w));
    merge_cache_.emplace(std::make_pair(left_type, right_type), t);
    return t;
  }

  // --- selection (proof part 3) ----------------------------------------------------

  Status EmitElementSelection() {
    PredicateId phi_p = program_.signature().PredicateIdOf("phi").value();
    for (const Entry& up_entry : up_) {
      for (const Entry& down_entry : down_) {
        if (up_entry.bag_pattern != down_entry.bag_pattern) continue;
        TREEDL_ASSIGN_OR_RETURN(
            Witness w, MergeWitnesses(up_entry.witness, down_entry.witness));
        for (int i = 0; i <= W(); ++i) {
          TREEDL_ASSIGN_OR_RETURN(
              bool sat, mso::EvaluateUnary(w.a, *phi_, free_var_,
                                           w.bag[static_cast<size_t>(i)]));
          if (!sat) continue;
          Rule rule;
          rule.head = Atom{phi_p, {V(x_[static_cast<size_t>(i)])}};
          rule.body.push_back(Literal{Atom{up_entry.predicate, {V(v_)}}, true});
          rule.body.push_back(Literal{Atom{down_entry.predicate, {V(v_)}}, true});
          rule.body.push_back(Literal{BagAtom(v_), true});
          AddRuleDeduped(std::move(rule));
        }
      }
    }
    return Status::OK();
  }

  Status EmitSentenceSelection() {
    PredicateId phi_p = program_.signature().PredicateIdOf("phi").value();
    for (const Entry& entry : up_) {
      TREEDL_ASSIGN_OR_RETURN(bool sat,
                              mso::EvaluateSentence(entry.witness.a, *phi_));
      if (!sat) continue;
      Rule rule;
      rule.head = Atom{phi_p, {}};
      rule.body.push_back(Literal{MakeAtom("root", {V(v_)}), true});
      rule.body.push_back(Literal{Atom{entry.predicate, {V(v_)}}, true});
      AddRuleDeduped(std::move(rule));
    }
    return Status::OK();
  }

  // --- state -----------------------------------------------------------------------

  Signature tau_;
  mso::FormulaPtr phi_;
  std::string free_var_;
  bool unary_;
  Mso2DlOptions options_;
  int k_ = 0;
  mso::TypeComputer types_;
  Program program_;

  datalog::VariableId v_ = 0, v1_ = 0, v2_ = 0, xr_ = 0;
  std::vector<datalog::VariableId> x_;
  std::vector<PosAtom> atom_space_;

  std::vector<Entry> up_, down_;
  std::map<TypeId, int> up_index_, down_index_;

  // Composition memo tables, shared between directions (the operations act on
  // (structure, tuple) pairs and are oblivious to the Θ↑/Θ↓ role).
  std::map<std::pair<TypeId, std::vector<int>>, TypeId> perm_cache_;
  std::map<std::pair<TypeId, uint64_t>, TypeId> replace_cache_;
  std::map<std::pair<TypeId, TypeId>, TypeId> merge_cache_;
  std::set<std::string> emitted_rules_;
};

}  // namespace

StatusOr<Mso2DlResult> MsoToDatalog(const Signature& tau,
                                    const mso::FormulaPtr& phi,
                                    const std::string& free_var,
                                    const Mso2DlOptions& options) {
  mso::FreeVariables free = mso::ComputeFreeVariables(*phi);
  if (free.fo != std::set<std::string>{free_var} || !free.so.empty()) {
    return Status::InvalidArgument(
        "formula must have exactly the free individual variable " + free_var);
  }
  Builder builder(tau, phi, free_var, /*unary=*/true, options);
  return builder.Build();
}

StatusOr<Mso2DlResult> MsoToDatalogSentence(const Signature& tau,
                                            const mso::FormulaPtr& phi,
                                            const Mso2DlOptions& options) {
  mso::FreeVariables free = mso::ComputeFreeVariables(*phi);
  if (!free.fo.empty() || !free.so.empty()) {
    return Status::InvalidArgument("formula must be a sentence");
  }
  Builder builder(tau, phi, "", /*unary=*/false, options);
  return builder.Build();
}

}  // namespace treedl::mso2dl
