// Relational signatures: named predicate symbols with fixed arities.
//
// A signature τ = {R1, ..., RK} determines which atomic facts a Structure may
// contain (§2.2 of the paper). Predicates are interned to dense integer ids.
#ifndef TREEDL_STRUCTURE_SIGNATURE_HPP_
#define TREEDL_STRUCTURE_SIGNATURE_HPP_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"

namespace treedl {

using PredicateId = int;

struct PredicateInfo {
  std::string name;
  int arity = 0;
};

class Signature {
 public:
  Signature() = default;

  /// Builds a signature from (name, arity) pairs. Names must be distinct.
  static StatusOr<Signature> Make(
      std::vector<std::pair<std::string, int>> predicates);

  /// Adds a predicate; fails on duplicate name or negative arity.
  StatusOr<PredicateId> AddPredicate(const std::string& name, int arity);

  /// Returns the id for `name`, or kNotFound.
  StatusOr<PredicateId> PredicateIdOf(const std::string& name) const;

  bool HasPredicate(const std::string& name) const {
    return by_name_.count(name) > 0;
  }

  const PredicateInfo& predicate(PredicateId id) const {
    return predicates_[static_cast<size_t>(id)];
  }
  int arity(PredicateId id) const { return predicate(id).arity; }
  const std::string& name(PredicateId id) const { return predicate(id).name; }
  int size() const { return static_cast<int>(predicates_.size()); }

  /// The signature τ = {fd/1, att/1, lh/2, rh/2} used for relational schemas
  /// (§2.2): fd(f), att(b), lh(b, f) — b in lhs(f) — and rh(b, f).
  static Signature SchemaSignature();

  /// The signature τ = {e/2} of graphs with binary edge relation e.
  static Signature GraphSignature();

  bool operator==(const Signature& other) const;

 private:
  std::vector<PredicateInfo> predicates_;
  std::unordered_map<std::string, PredicateId> by_name_;
};

}  // namespace treedl

#endif  // TREEDL_STRUCTURE_SIGNATURE_HPP_
