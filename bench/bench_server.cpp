// The multi-tenant serving bench: replay a deterministic workload (N random
// partial k-trees x M interleaved request rounds) through treedl::Server and
// measure what the session pool buys.
//
// Four phases, each its own Server:
//   cold     — LOAD every structure, then M rounds of SOLVEALL/SOLVE/#3COL
//              per tenant; after the first round every request is a pool hit,
//              so the hit rate converges to (requests - N) / requests. Ends
//              with SAVE per tenant into a session directory.
//   warm     — a fresh Server over the same session directory. LOAD+SOLVEALL
//              per tenant must do ZERO encode/TD/normalize builds (checked
//              via the GlobalEngineCounters delta): the amortization story of
//              the paper's §5.3, across process restarts.
//   churn    — max_sessions=2, tenants round-robin twice: deterministic LRU
//              eviction traffic.
//   admission— a 1KiB shared budget; the LOAD must be rejected (E_ADMISSION),
//              never crash.
//
// Flags: --quick shrinks the workload for CI; --json <path> writes the
// deterministic counters (requests, hits, evictions, warm builds, table
// bytes — no wall-clock) for the BENCH gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "common/timer.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "server/frontend.hpp"
#include "server/server.hpp"
#include "structure/structure_io.hpp"

namespace treedl {
namespace {

struct BenchConfig {
  size_t structures = 6;
  size_t vertices = 160;
  int treewidth = 4;
  double keep_probability = 0.6;
  size_t rounds = 4;
  size_t budget = 32 * 1024 * 1024;
  uint64_t seed = 20260808;
  const char* json_path = nullptr;
};

/// Protocol requests are one line each: drop '%' comments, join with spaces.
std::string Flatten(const std::string& text) {
  std::string flat;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view piece(line);
    size_t comment = piece.find('%');
    if (comment != std::string_view::npos) piece = piece.substr(0, comment);
    piece = Trim(piece);
    if (piece.empty()) continue;
    if (!flat.empty()) flat += ' ';
    flat += piece;
  }
  return flat;
}

std::vector<std::string> MakeLoadLines(const BenchConfig& config) {
  Rng rng(config.seed);
  std::vector<std::string> lines;
  for (size_t i = 0; i < config.structures; ++i) {
    Graph graph = RandomPartialKTree(config.vertices, config.treewidth,
                                     config.keep_probability, &rng);
    Structure structure = GraphToStructure(graph);
    lines.push_back("LOAD g" + std::to_string(i) + " SIG e/2 FACTS " +
                    Flatten(FormatStructure(structure)));
  }
  return lines;
}

size_t RunScript(server::Server* server, const std::string& script,
                 std::string* transcript) {
  std::istringstream in(script);
  std::ostringstream out;
  size_t requests = server->Serve(in, out);
  if (transcript != nullptr) *transcript = out.str();
  return requests;
}

struct ColdResult {
  size_t requests = 0;
  server::SessionPoolCounters pool;
  size_t peak_table_bytes = 0;
  size_t charged_bytes = 0;
  size_t errors = 0;
  double millis = 0;
};

ColdResult RunColdPhase(const BenchConfig& config,
                        const std::vector<std::string>& loads,
                        const std::string& session_dir) {
  server::ServerOptions options;
  options.max_sessions = config.structures;
  options.table_memory_budget = config.budget;
  options.session_dir = session_dir;
  options.echo_stats = false;
  server::Server server(options);

  std::string script;
  for (const std::string& load : loads) script += load + "\n";
  for (size_t round = 0; round < config.rounds; ++round) {
    for (size_t i = 0; i < config.structures; ++i) {
      const std::string tenant = "g" + std::to_string(i);
      script += "SOLVEALL " + tenant + "\n";
      script += "SOLVE " + tenant + " VC\n";
      script += "SOLVE " + tenant + " #3COL\n";
    }
  }
  for (size_t i = 0; i < config.structures; ++i) {
    script += "SAVE g" + std::to_string(i) + "\n";
  }
  script += "STATS\nQUIT\n";

  Timer timer;
  ColdResult result;
  result.requests = RunScript(&server, script, nullptr);
  result.millis = timer.ElapsedMillis();
  result.pool = server.pool().counters();
  result.peak_table_bytes = server.stats().peak_table_bytes;
  result.charged_bytes = server.pool().ChargedBytes();
  result.errors = server.stats().replies_error;
  return result;
}

struct WarmResult {
  size_t warm_loads = 0;
  size_t encode_builds = 0;
  size_t td_builds = 0;
  size_t normalize_builds = 0;
  size_t errors = 0;
};

WarmResult RunWarmPhase(const BenchConfig& config,
                        const std::vector<std::string>& loads,
                        const std::string& session_dir) {
  server::ServerOptions options;
  options.max_sessions = config.structures;
  options.table_memory_budget = config.budget;
  options.session_dir = session_dir;
  options.echo_stats = false;
  server::Server server(options);

  std::string script;
  for (size_t i = 0; i < config.structures; ++i) {
    script += loads[i] + "\n";
    script += "SOLVEALL g" + std::to_string(i) + "\n";
  }
  script += "QUIT\n";

  EngineCounters& global = GlobalEngineCounters();
  size_t encode_before = global.encode_builds.load();
  size_t td_before = global.td_builds.load();
  size_t normalize_before = global.normalize_builds.load();
  RunScript(&server, script, nullptr);

  WarmResult result;
  result.warm_loads = server.pool().counters().warm_loads;
  result.encode_builds = global.encode_builds.load() - encode_before;
  result.td_builds = global.td_builds.load() - td_before;
  result.normalize_builds = global.normalize_builds.load() - normalize_before;
  result.errors = server.stats().replies_error;
  return result;
}

server::SessionPoolCounters RunChurnPhase(const BenchConfig& config,
                                  const std::vector<std::string>& loads) {
  server::ServerOptions options;
  options.max_sessions = 2;
  options.echo_stats = false;
  server::Server server(options);

  std::string script;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < config.structures; ++i) {
      script += loads[i] + "\n";
    }
  }
  script += "QUIT\n";
  RunScript(&server, script, nullptr);
  TREEDL_CHECK(server.stats().replies_error == 0);
  return server.pool().counters();
}

size_t RunAdmissionPhase(const std::vector<std::string>& loads) {
  server::ServerOptions options;
  options.table_memory_budget = 1024;  // far below any structure estimate
  options.echo_stats = false;
  server::Server server(options);
  std::string transcript;
  RunScript(&server, loads[0] + "\nQUIT\n", &transcript);
  TREEDL_CHECK(transcript.find("ERR E_ADMISSION") != std::string::npos)
      << "expected an admission rejection, got: " << transcript;
  return server.pool().counters().rejections;
}

struct ContendedResult {
  size_t requests = 0;       // requests per driver run
  size_t dispatched = 0;     // compute requests executed on workers (4t run)
  size_t barriers = 0;       // pipeline drains (4t run)
  bool identical = false;    // 1t / frontend-2t / frontend-4t transcripts
  double millis_plain = 0;
  double millis_4t = 0;
};

/// The contended phase: the cold workload again, driven through the
/// concurrent front-end at several thread counts. The payoff being measured
/// is correctness under contention — every driver must produce the same
/// transcript byte for byte — plus the deterministic pipeline counters.
ContendedResult RunContendedPhase(const BenchConfig& config,
                                  const std::vector<std::string>& loads) {
  std::string script;
  for (const std::string& load : loads) script += load + "\n";
  for (size_t round = 0; round < config.rounds; ++round) {
    for (size_t i = 0; i < config.structures; ++i) {
      const std::string tenant = "g" + std::to_string(i);
      script += "SOLVEALL " + tenant + "\n";
      script += "SOLVE " + tenant + " VC\n";
      script += "SOLVE " + tenant + " #3COL\n";
    }
  }
  script += "STATS\nQUIT\n";

  server::ServerOptions options;
  options.max_sessions = config.structures;
  options.table_memory_budget = config.budget;
  options.echo_stats = false;

  ContendedResult result;
  std::string reference;
  {
    server::Server server(options);
    Timer timer;
    result.requests = RunScript(&server, script, &reference);
    result.millis_plain = timer.ElapsedMillis();
  }

  auto run_frontend = [&](size_t threads, std::string* transcript,
                          double* millis) {
    server::Server server(options);
    server::FrontendOptions frontend_options;
    frontend_options.num_threads = threads;
    server::Frontend frontend(&server, frontend_options);
    std::istringstream in(script);
    std::ostringstream out;
    Timer timer;
    frontend.Serve(in, out);
    if (millis != nullptr) *millis = timer.ElapsedMillis();
    *transcript = out.str();
    return frontend.counters();
  };

  std::string two_threads;
  run_frontend(2, &two_threads, nullptr);
  std::string four_threads;
  server::FrontendCounters counters =
      run_frontend(4, &four_threads, &result.millis_4t);
  result.dispatched = counters.dispatched_compute;
  result.barriers = counters.barriers;
  result.identical = two_threads == reference && four_threads == reference;
  return result;
}

struct ShedResult {
  size_t dispatched = 0;
  size_t rejections = 0;
  size_t max_queue_depth = 0;
};

/// Deterministic back-pressure: workers gated, one session, a burst beyond
/// queue_capacity with reject_when_full — the shed set is exact, not a
/// timing artifact.
ShedResult RunShedPhase(const std::vector<std::string>& loads) {
  constexpr size_t kBurst = 8;
  constexpr size_t kCapacity = 2;
  server::ServerOptions options;
  options.echo_stats = false;
  server::Server server(options);
  server::FrontendOptions frontend_options;
  frontend_options.num_threads = 2;
  frontend_options.queue_capacity = kCapacity;
  frontend_options.reject_when_full = true;
  frontend_options.hold_workers = true;
  server::Frontend frontend(&server, frontend_options);

  std::string script = loads[0] + "\n";
  for (size_t i = 0; i < kBurst; ++i) script += "SOLVE g0 VC\n";
  std::istringstream in(script);
  std::ostringstream out;
  std::thread driver([&] { frontend.Serve(in, out); });
  while (frontend.counters().queue_full_rejections < kBurst - kCapacity) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  frontend.ReleaseWorkers();
  driver.join();

  TREEDL_CHECK(out.str().find("ERR E_ADMISSION") != std::string::npos);
  server::FrontendCounters counters = frontend.counters();
  ShedResult result;
  result.dispatched = counters.dispatched_compute;
  result.rejections = counters.queue_full_rejections;
  result.max_queue_depth = counters.max_queue_depth;
  return result;
}

struct ChaosResult {
  size_t faults_injected = 0;  // across both chaos servers
  size_t deadline_sheds = 0;   // ERR E_DEADLINE replies
  size_t quarantines = 0;      // session files renamed to .corrupt
  size_t errors = 0;           // total ERR replies (every one fault-typed)
  bool recovered = false;      // every tenant answered after its fault
};

/// The chaos phase: a fixed fault schedule (failed session-file write,
/// failed cold build), deadline shedding, and a quarantined warm start —
/// every injected fault must surface as a typed ERR reply, every tenant must
/// answer correctly on its next request, and the counters are deterministic.
ChaosResult RunChaosPhase(const std::vector<std::string>& loads) {
  const std::string dir = "bench_server_chaos_sessions";
  std::filesystem::create_directories(dir);
  server::ServerOptions options;
  options.echo_stats = false;
  options.session_dir = dir;

  ChaosResult result;
  std::string transcript;
  {
    TREEDL_CHECK(FaultInjector::Global()
                     .SetSchedule("session_io.write@0,session_pool.build@1")
                     .ok());
    server::Server server(options);
    std::string script = loads[0] + "\n" +
                         "SAVE g0\n"    // write hit 0: injected E_IO
                         "SAVE g0\n" +  // recovery write lands on disk
                         loads[1] + "\n" +  // build hit 1: injected failure
                         loads[1] + "\n" +  // exactly-once retry builds
                         "DEADLINE 1\n"
                         "SOLVE g0 VC\n"  // shed
                         "SOLVE g1 VC\n"  // shed
                         "DEADLINE OFF\n"
                         "SOLVE g0 VC\n"  // recovered compute
                         "SOLVE g1 VC\n"
                         "QUIT\n";
    RunScript(&server, script, &transcript);
    result.faults_injected += FaultInjector::Global().FaultsInjected();
    result.errors += server.stats().replies_error;
  }
  for (size_t pos = transcript.find("ERR E_DEADLINE");
       pos != std::string::npos;
       pos = transcript.find("ERR E_DEADLINE", pos + 1)) {
    ++result.deadline_sheds;
  }
  size_t solves = 0;
  for (size_t pos = transcript.find("OK SOLVE"); pos != std::string::npos;
       pos = transcript.find("OK SOLVE", pos + 1)) {
    ++solves;
  }
  result.recovered = solves == 2 &&
                     transcript.find("OK SAVE") != std::string::npos;

  {
    // A fresh server over the same session directory, with the warm-start
    // read scheduled to fail: the file is quarantined, the session rebuilds
    // cold, and the tenant still answers — degradation, not an error.
    TREEDL_CHECK(
        FaultInjector::Global().SetSchedule("session_io.read@0").ok());
    server::Server degraded(options);
    std::string script = loads[0] + "\nSOLVE g0 VC\nQUIT\n";
    std::string degraded_transcript;
    RunScript(&degraded, script, &degraded_transcript);
    result.faults_injected += FaultInjector::Global().FaultsInjected();
    result.quarantines = degraded.pool().counters().quarantines;
    result.errors += degraded.stats().replies_error;
    result.recovered = result.recovered &&
                       degraded_transcript.find("OK SOLVE") !=
                           std::string::npos;
  }
  FaultInjector::Global().Disable();
  std::filesystem::remove_all(dir);
  return result;
}

void RunServerBench(const BenchConfig& config) {
  const std::string session_dir = "bench_server_sessions";
  std::filesystem::create_directories(session_dir);
  std::vector<std::string> loads = MakeLoadLines(config);

  std::printf(
      "Server workload: %zu partial %d-trees, n=%zu, %zu rounds x 3 requests "
      "per tenant, budget %zuMiB\n",
      config.structures, config.treewidth, config.vertices, config.rounds,
      config.budget >> 20);

  ColdResult cold = RunColdPhase(config, loads, session_dir);
  size_t lookups = cold.pool.hits + cold.pool.misses;
  std::printf(
      "  cold: %zu requests in %.2f ms (%.0f req/s)  pool %zu/%zu hits "
      "(%.1f%%)  peak_tables=%zuB  charged=%zuB  errors=%zu\n",
      cold.requests, cold.millis, 1000.0 * cold.requests / cold.millis,
      cold.pool.hits, lookups, 100.0 * cold.pool.hits / lookups,
      cold.peak_table_bytes, cold.charged_bytes, cold.errors);
  TREEDL_CHECK(cold.errors == 0);
  TREEDL_CHECK(cold.peak_table_bytes < config.budget)
      << cold.peak_table_bytes << " >= " << config.budget;
  TREEDL_CHECK(cold.charged_bytes < config.budget);

  WarmResult warm = RunWarmPhase(config, loads, session_dir);
  std::printf(
      "  warm restart: %zu/%zu sessions warm-loaded, encode/td/normalize "
      "builds = %zu/%zu/%zu (all must be 0)\n",
      warm.warm_loads, config.structures, warm.encode_builds, warm.td_builds,
      warm.normalize_builds);
  TREEDL_CHECK(warm.errors == 0);
  TREEDL_CHECK(warm.warm_loads == config.structures);
  TREEDL_CHECK(warm.encode_builds == 0);
  TREEDL_CHECK(warm.td_builds == 0);
  TREEDL_CHECK(warm.normalize_builds == 0);

  server::SessionPoolCounters churn = RunChurnPhase(config, loads);
  std::printf("  churn (max_sessions=2): %zu misses, %zu evictions\n",
              churn.misses, churn.evictions);

  size_t rejections = RunAdmissionPhase(loads);
  std::printf("  admission (budget 1KiB): %zu rejection(s), no crash\n",
              rejections);
  TREEDL_CHECK(rejections == 1);

  ContendedResult contended = RunContendedPhase(config, loads);
  std::printf(
      "  contended: %zu requests, plain %.2f ms vs frontend(4) %.2f ms, "
      "%zu dispatched, %zu barriers, transcripts identical=%d\n",
      contended.requests, contended.millis_plain, contended.millis_4t,
      contended.dispatched, contended.barriers, contended.identical ? 1 : 0);
  TREEDL_CHECK(contended.identical)
      << "front-end transcript diverged from the single-threaded driver";
  TREEDL_CHECK(contended.dispatched ==
               config.rounds * config.structures * 3);

  ShedResult shed = RunShedPhase(loads);
  std::printf(
      "  shed (capacity 2, workers held): %zu dispatched, %zu rejected, "
      "max depth %zu\n",
      shed.dispatched, shed.rejections, shed.max_queue_depth);
  TREEDL_CHECK(shed.dispatched == 2 && shed.rejections == 6);

  ChaosResult chaos = RunChaosPhase(loads);
  std::printf(
      "  chaos: %zu faults injected, %zu deadline sheds, %zu quarantine(s), "
      "%zu typed errors, recovered=%d\n",
      chaos.faults_injected, chaos.deadline_sheds, chaos.quarantines,
      chaos.errors, chaos.recovered ? 1 : 0);
  TREEDL_CHECK(chaos.faults_injected == 3);
  TREEDL_CHECK(chaos.deadline_sheds == 2);
  TREEDL_CHECK(chaos.quarantines == 1);
  // Every ERR reply is accounted for: two injected faults surfaced on the
  // first server, two deadline sheds; the quarantined warm start degrades
  // without erroring.
  TREEDL_CHECK(chaos.errors == 4) << chaos.errors;
  TREEDL_CHECK(chaos.recovered);

  std::filesystem::remove_all(session_dir);

  if (config.json_path != nullptr) {
    FILE* out = std::fopen(config.json_path, "w");
    TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"server\",\n"
                 "  \"structures\": %zu,\n"
                 "  \"vertices\": %zu,\n"
                 "  \"treewidth\": %d,\n"
                 "  \"seed\": %llu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"pool_hits\": %zu,\n"
                 "  \"pool_misses\": %zu,\n"
                 "  \"hit_rate_permille\": %zu,\n"
                 "  \"peak_table_bytes\": %zu,\n"
                 "  \"charged_bytes\": %zu,\n"
                 "  \"warm_loads\": %zu,\n"
                 "  \"warm_encode_builds\": %zu,\n"
                 "  \"warm_td_builds\": %zu,\n"
                 "  \"warm_normalize_builds\": %zu,\n"
                 "  \"churn_evictions\": %zu,\n"
                 "  \"admission_rejections\": %zu,\n"
                 "  \"contended_requests\": %zu,\n"
                 "  \"contended_dispatched\": %zu,\n"
                 "  \"contended_barriers\": %zu,\n"
                 "  \"contended_transcripts_identical\": %d,\n"
                 "  \"shed_dispatched\": %zu,\n"
                 "  \"shed_rejections\": %zu,\n"
                 "  \"chaos_faults_injected\": %zu,\n"
                 "  \"chaos_deadline_sheds\": %zu,\n"
                 "  \"chaos_quarantines\": %zu,\n"
                 "  \"chaos_typed_errors\": %zu,\n"
                 "  \"chaos_recovered\": %d\n"
                 "}\n",
                 config.structures, config.vertices, config.treewidth,
                 static_cast<unsigned long long>(config.seed), cold.requests,
                 cold.pool.hits, cold.pool.misses,
                 1000 * cold.pool.hits / lookups, cold.peak_table_bytes,
                 cold.charged_bytes, warm.warm_loads, warm.encode_builds,
                 warm.td_builds, warm.normalize_builds, churn.evictions,
                 rejections, contended.requests, contended.dispatched,
                 contended.barriers, contended.identical ? 1 : 0,
                 shed.dispatched, shed.rejections, chaos.faults_injected,
                 chaos.deadline_sheds, chaos.quarantines, chaos.errors,
                 chaos.recovered ? 1 : 0);
    std::fclose(out);
    std::printf("  wrote %s\n", config.json_path);
  }
}

}  // namespace
}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.structures = 4;
      config.vertices = 60;
      config.rounds = 3;
      config.budget = 8 * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunServerBench(config);
  return 0;
}
