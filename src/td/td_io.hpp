// Rendering of tree decompositions (raw and normalized) as ASCII trees and
// Graphviz DOT — used by examples/paper_figures to reproduce Figures 1, 2,
// 4 — plus their binary serialization for the engine's persistent sessions
// (docs/SESSION_FORMAT.md).
#ifndef TREEDL_TD_TD_IO_HPP_
#define TREEDL_TD_TD_IO_HPP_

#include <functional>
#include <string>

#include "common/binary_io.hpp"
#include "structure/structure.hpp"
#include "td/normalize.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

/// Maps an element id to a display name. Default: "e<id>".
using ElementNamer = std::function<std::string(ElementId)>;

ElementNamer DefaultNamer();
/// Names elements after `structure`'s interned names.
ElementNamer NamerFor(const Structure& structure);

/// ASCII tree, one node per line, children indented, bags in braces.
std::string RenderTree(const TreeDecomposition& td,
                       const ElementNamer& namer = DefaultNamer());
std::string RenderTree(const NormalizedTreeDecomposition& ntd,
                       const ElementNamer& namer = DefaultNamer());
std::string RenderTree(const TupleNormalizedTd& ntd,
                       const ElementNamer& namer = DefaultNamer());

/// Graphviz DOT rendering of a raw decomposition.
std::string ToDot(const TreeDecomposition& td,
                  const ElementNamer& namer = DefaultNamer());

// --- Binary serialization (session persistence) ----------------------------
//
// Nodes are written in traversal order (pre-order for the raw form, the
// bottom-up construction order for the modified normal form) with remapped
// ids, so deserialization replays the public AddNode construction path. The
// tree shape, bags, and node kinds — everything the DP answers depend on —
// survive the round trip exactly; raw node ids may be renumbered.

/// Appends the binary encoding of `td` to `writer`.
void SerializeTreeDecomposition(const TreeDecomposition& td,
                                BinaryWriter* writer);

/// Inverse of SerializeTreeDecomposition; corrupted input yields an error
/// Status (every parent reference and length is validated before use).
StatusOr<TreeDecomposition> DeserializeTreeDecomposition(BinaryReader* reader);

/// Appends the binary encoding of the modified-normal-form `ntd`.
void SerializeNormalizedTd(const NormalizedTreeDecomposition& ntd,
                           BinaryWriter* writer);

/// Inverse of SerializeNormalizedTd; the result additionally passes
/// ValidateNormalized before it is returned.
StatusOr<NormalizedTreeDecomposition> DeserializeNormalizedTd(
    BinaryReader* reader);

}  // namespace treedl

#endif  // TREEDL_TD_TD_IO_HPP_
