#include "common/string_util.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace treedl {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string Hex16(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer);
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  unsigned char first = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(first) && first != '_') return false;
  for (char c : text.substr(1)) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && uc != '_' && uc != '\'') return false;
  }
  return true;
}

}  // namespace treedl
