// Decomposition quality: width reduction, anytime improvement, and the full
// pipeline combining them with the preprocessing reductions.
//
// Everything here is deterministic given its inputs (and seed) and measured
// against the same 3^|bag| state-count model as td::EstimateNodeCost — DP
// cost is exponential in bag size, so one merged bag or one width unit saved
// beats any constant-factor tuning downstream.
#ifndef TREEDL_TD_IMPROVE_HPP_
#define TREEDL_TD_IMPROVE_HPP_

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "graph/graph.hpp"
#include "td/preprocess.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

class WorkBudget;

/// Σ over raw bags of 3^min(|bag|, 20): the EstimateNodeCost state-count
/// model aggregated over a raw decomposition. Cheap (no normalization); a
/// rough ranking only — NormalizedDpCost below is the faithful model.
uint64_t ModeledTdCost(const TreeDecomposition& td);

/// Normalize + Σ EstimateNodeCost over the normal form — the modeled cost of
/// the tree the DPs actually traverse. This is THE quality objective of the
/// pipeline, the local search, and the benches: raw bag counts mispredict
/// the normal form (contracting nested bags, for instance, concentrates join
/// nodes at the merged bag and can make the normalized tree strictly more
/// expensive even as the raw tree shrinks).
StatusOr<uint64_t> NormalizedDpCost(const TreeDecomposition& td);

/// The raw width-reduction primitive: greedily contracts tree edges whose
/// endpoint bags are nested (the merged bag is the larger of the two) until
/// no such edge remains. Each merge removes one node without touching any
/// other bag, so the width provably never increases and ModeledTdCost
/// strictly drops by 3^min(|smaller bag|, 20) per merge. Note this shrinks
/// the RAW tree; the normalized DP cost can go either way (see
/// NormalizedDpCost), which is why the pipeline applies it through the
/// cost guard below. Returns the number of merges. Deterministic; validity
/// is preserved.
size_t WidthReduce(TreeDecomposition* td);

/// WidthReduce guarded by the real objective: applies the merges only when
/// the resulting (width, NormalizedDpCost) is no worse than the input's, and
/// reverts them otherwise. The engine's pre-normalization width-reduce pass
/// and the pipeline both use this, so a "reduction" can never make the DP
/// slower. Returns the number of merges kept (0 when reverted).
StatusOr<size_t> CostGuardedWidthReduce(TreeDecomposition* td);

/// An elimination order compatible with `td`: vertices ordered by the
/// post-order position of the highest bag containing them (children before
/// parents), whose induced width is at most td.Width(). Vertices of `graph`
/// missing from every bag (only possible for an invalid decomposition) are
/// prepended. The seed order of the local search below.
std::vector<VertexId> EliminationOrderFromTd(const Graph& graph,
                                             const TreeDecomposition& td);

struct ImproveOptions {
  /// Seed of the local-move stream. The engine passes the session
  /// fingerprint, so improvement is a pure function of the session input.
  uint64_t seed = 0;
  /// Round cap when no WorkBudget bounds the search.
  size_t max_rounds = 64;
};

struct ImproveOutcome {
  int width_before = 0;
  int width_after = 0;
  uint64_t cost_before = 0;  // NormalizedDpCost of the input
  uint64_t cost_after = 0;   // ... and of `td`
  /// Local-search rounds evaluated (== budget units consumed when a budget
  /// stopped the search).
  size_t rounds = 0;
  /// Rounds whose candidate strictly improved (width, cost).
  size_t accepted = 0;
  /// Strict improvement: width dropped, or width held and cost dropped.
  bool improved = false;
  /// The best decomposition found; equals the input when !improved. Always a
  /// valid decomposition of the graph.
  TreeDecomposition td;
};

/// Anytime improvement: cost-guarded width reduction of the current
/// decomposition, then bounded local search over elimination orders (seeded
/// position moves: swaps, relocations, segment reversals), accepting
/// candidates that strictly improve (width, NormalizedDpCost). One budget
/// unit is consumed per round via WorkBudget::ConsumeUnit; exhaustion stops the
/// search gracefully with the best result so far — it is never an error, so
/// the serving layer's REOPT <units> sheds deterministically at any thread
/// count. `budget` == nullptr caps at options.max_rounds instead.
StatusOr<ImproveOutcome> ImproveTd(const Graph& graph,
                                   const TreeDecomposition& td,
                                   const ImproveOptions& options = {},
                                   WorkBudget* budget = nullptr);

struct PipelineOptions {
  /// Multi-start restarts of the tie-broken min-fill on the reduced graph.
  size_t starts = 8;
  /// Seed of the multi-start restarts and the polish search (the engine
  /// passes the session fingerprint).
  uint64_t seed = 0;
  /// Local-search polish rounds (ImproveTd) on the winning candidate; 0
  /// disables the polish.
  size_t improve_rounds = 48;
};

struct PipelineStats {
  ReductionCounters reductions;
  /// Treewidth lower bound proven by the preprocessing.
  int lower_bound = 0;
  /// Vertices removed by the reductions.
  size_t eliminated = 0;
  /// Cost-guarded width-reduction merges kept across both candidates.
  size_t merges = 0;
  /// Width of the legacy min-fill fallback candidate.
  int baseline_width = -1;
  /// False when the legacy candidate beat the preprocess+multi-start
  /// candidate and the pipeline fell back to it (the polish may still have
  /// improved the fallback).
  bool used_pipeline = false;
};

/// The full decomposition-quality pipeline: preprocessing reductions →
/// multi-start tie-broken min-fill on the reduced graph → splice-back →
/// cost-guarded width reduction → local-search polish. The legacy
/// single-order min-fill decomposition (also cost-guard width-reduced) is
/// kept as a fallback candidate and the better (width, NormalizedDpCost)
/// ships — the pipeline candidate wins ties — so the result's width and
/// modeled DP cost are never worse than the plain kMinFill decomposition's.
/// Deterministic per (graph, options). Requires a nonempty graph.
StatusOr<TreeDecomposition> DecomposePipeline(const Graph& graph,
                                              const PipelineOptions& options = {},
                                              PipelineStats* stats = nullptr);

}  // namespace treedl

#endif  // TREEDL_TD_IMPROVE_HPP_
