// treedl::server::Server — the multi-tenant serving layer above the Engine.
//
// A Server owns three things:
//
//   tenants   — named bindings of a signature + committed facts (LOAD/ASSERT
//               mutate these; they are cheap text + structure state, not
//               engines);
//   a pool    — the fingerprint-keyed SessionPool of warm Engines, with LRU
//               eviction, a shared memory budget, and transparent warm start
//               from session files;
//   a driver  — HandleLine/Serve, which parse protocol requests
//               (server/protocol.hpp), execute them against pooled sessions,
//               and render deterministic replies.
//
// Two tenants whose structures are equal share one pooled Engine: the pool
// is keyed by structure fingerprint, not tenant name, so N clients loading
// the same graph pay for one decomposition. With `num_threads` > 1 every
// pooled session runs its parallel work on the server's single
// work-stealing pool (EngineOptions::shared_pool).
//
// The driver is single-threaded by design — determinism is the feature (the
// protocol smoke test diffs exact transcripts). The layers below it
// (SessionPool, Engine) are thread-safe, so a concurrent front-end can call
// the pool directly if one is ever added.
#ifndef TREEDL_SERVER_SERVER_HPP_
#define TREEDL_SERVER_SERVER_HPP_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/thread_pool.hpp"
#include "server/protocol.hpp"
#include "server/session_pool.hpp"
#include "structure/structure.hpp"

namespace treedl::server {

struct ServerOptions {
  /// Most warm sessions resident at once (SessionPoolOptions::max_sessions).
  size_t max_sessions = 8;
  /// Global byte budget shared by all resident sessions and their live DP
  /// tables (0 = unlimited). See SessionPoolOptions::table_memory_budget.
  size_t table_memory_budget = 0;
  /// Directory for SAVE/OPEN session files; empty disables persistence.
  std::string session_dir;
  /// Worker threads of the server's shared pool (0 = hardware concurrency,
  /// 1 = sequential: no pool is created and sessions run inline).
  size_t num_threads = 1;
  /// Echo per-request RunStats counters (encode/td/normalize/cache_hits) in
  /// OK replies. Off for byte-stable transcripts that must not depend on
  /// cache state.
  bool echo_stats = true;
  /// Template for pooled engines. Witness extraction defaults off: the
  /// serving layer prefers evictable tables over coloring witnesses.
  EngineOptions engine_options = [] {
    EngineOptions options;
    options.extract_witness = false;
    return options;
  }();
};

struct ServerStats {
  size_t requests = 0;      // protocol lines parsed as requests (incl. failed)
  size_t replies_ok = 0;    // OK lines written
  size_t replies_error = 0; // ERR lines written
  size_t data_lines = 0;    // DATA lines written
  /// High-water mark of RunStats::dp_peak_table_bytes across requests —
  /// together with the pool's ChargedBytes this is what the shared budget
  /// bounds.
  size_t peak_table_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  /// Handles one raw protocol line, appending '\n'-terminated reply lines to
  /// `*out` (comments and blank lines append nothing). Returns false when
  /// the line was QUIT. Not thread-safe: one driver at a time.
  bool HandleLine(std::string_view line, std::string* out);

  /// The driver loop: getline over `in`, replies to `out` (flushed per
  /// request), until EOF or QUIT. Returns the number of requests handled.
  size_t Serve(std::istream& in, std::ostream& out);

  const ServerStats& stats() const { return stats_; }
  SessionPool& pool() { return *pool_; }
  const SessionPool& pool() const { return *pool_; }

 private:
  struct Tenant {
    Signature signature;
    std::string facts_text;
    Structure structure;
    uint64_t fingerprint = 0;
  };

  /// The tenant for `name`, or a kNoTenant-shaped NotFound status.
  StatusOr<Tenant*> FindTenant(const std::string& name);
  /// Acquire + common error mapping; echoes `pool=hit|warm|cold`.
  StatusOr<SessionPool::Lease> AcquireFor(const Tenant& tenant);
  /// Folds a finished request's RunStats into the server counters and the
  /// pool charge, and renders the echo suffix ("" when echo_stats is off).
  std::string FinishRun(uint64_t fingerprint, const RunStats& run);

  void HandleLoad(const LoadRequest& request, std::string* out);
  void HandleAssert(const AssertRequest& request, std::string* out);
  void HandleQuery(const QueryRequest& request, std::string* out);
  void HandleSolve(const SolveRequest& request, std::string* out);
  void HandleSolveAll(const SolveAllRequest& request, std::string* out);
  void HandleMso(const MsoRequest& request, std::string* out);
  void HandleSave(const SaveRequest& request, std::string* out);
  void HandleOpen(const OpenRequest& request, std::string* out);
  void HandleStats(const StatsRequest& request, std::string* out);
  void HandleClose(const CloseRequest& request, std::string* out);

  void EmitOk(std::string_view command, std::string_view details,
              std::string* out);
  void EmitData(std::string_view payload, std::string* out);
  void EmitError(ErrorCode code, std::string_view message, std::string* out);
  void EmitStatus(const Status& status, std::string* out);

  ServerOptions options_;
  std::unique_ptr<ThreadPool> shared_pool_;  // null when sequential
  std::unique_ptr<SessionPool> pool_;
  std::map<std::string, Tenant> tenants_;  // ordered: deterministic STATS
  ServerStats stats_;
};

}  // namespace treedl::server

#endif  // TREEDL_SERVER_SERVER_HPP_
