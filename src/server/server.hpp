// treedl::server::Server — the multi-tenant serving layer above the Engine.
//
// A Server owns three things:
//
//   tenants   — named bindings of a signature + committed facts (LOAD/ASSERT
//               mutate these; they are cheap text + structure state, not
//               engines);
//   a pool    — the fingerprint-keyed SessionPool of warm Engines, with LRU
//               eviction, a shared memory budget, and transparent warm start
//               from session files;
//   a driver  — HandleLine/Serve, which parse protocol requests
//               (server/protocol.hpp), execute them against pooled sessions,
//               and render deterministic replies.
//
// Two tenants whose structures are equal share one pooled Engine: the pool
// is keyed by structure fingerprint, not tenant name, so N clients loading
// the same graph pay for one decomposition. With `num_threads` > 1 every
// pooled session runs its parallel work on the server's single
// work-stealing pool (EngineOptions::shared_pool).
//
// Serve/HandleLine remain the single-threaded driver — one request at a
// time, deterministic by construction. The concurrent front-end
// (server/frontend.hpp) reuses the exact same execution code through the
// two-stage compute split below: PrepareCompute runs sequentially on the
// dispatch thread (tenant lookup, payload parse, pool acquire — everything
// that orders the pool), ExecuteCompute runs on any worker thread (engine
// evaluation + reply rendering — everything thread-safe). HandleLine's
// compute path is literally PrepareCompute + ExecuteCompute, so the two
// drivers cannot diverge byte-wise. Reply counters are atomics: workers
// bump them concurrently, and the barrier discipline of the front-end makes
// every STATS read deterministic.
#ifndef TREEDL_SERVER_SERVER_HPP_
#define TREEDL_SERVER_SERVER_HPP_

#include <atomic>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/thread_pool.hpp"
#include "datalog/ast.hpp"
#include "mso/ast.hpp"
#include "server/protocol.hpp"
#include "server/session_pool.hpp"
#include "structure/structure.hpp"

namespace treedl::server {

struct ServerOptions {
  /// Most warm sessions resident at once (SessionPoolOptions::max_sessions).
  size_t max_sessions = 8;
  /// Global byte budget shared by all resident sessions and their live DP
  /// tables (0 = unlimited). See SessionPoolOptions::table_memory_budget.
  size_t table_memory_budget = 0;
  /// Directory for SAVE/OPEN session files; empty disables persistence.
  std::string session_dir;
  /// Worker threads of the server's shared ENGINE pool — intra-request
  /// parallelism (0 = hardware concurrency, 1 = sequential: no pool is
  /// created and sessions run inline). Inter-request parallelism is the
  /// front-end's num_threads (server/frontend.hpp); the two compose.
  size_t num_threads = 1;
  /// Echo per-request RunStats counters (encode/td/normalize/cache_hits) in
  /// OK replies. Off for byte-stable transcripts that must not depend on
  /// cache state.
  bool echo_stats = true;
  /// Template for pooled engines. Witness extraction defaults off: the
  /// serving layer prefers evictable tables over coloring witnesses.
  EngineOptions engine_options = [] {
    EngineOptions options;
    options.extract_witness = false;
    return options;
  }();
};

/// A point-in-time snapshot of the server counters (the live counters are
/// atomics shared by the front-end workers).
struct ServerStats {
  size_t requests = 0;      // protocol lines parsed as requests (incl. failed)
  size_t replies_ok = 0;    // OK lines written
  size_t replies_error = 0; // ERR lines written
  size_t data_lines = 0;    // DATA lines written
  /// High-water mark of RunStats::dp_peak_table_bytes across requests —
  /// together with the pool's ChargedBytes this is what the shared budget
  /// bounds.
  size_t peak_table_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  /// Handles one raw protocol line, appending '\n'-terminated reply lines to
  /// `*out` (comments and blank lines append nothing). Returns false when
  /// the line was QUIT. Not thread-safe: one driver at a time.
  bool HandleLine(std::string_view line, std::string* out);

  /// Handles one already-parsed request. Same contract as HandleLine.
  bool HandleRequest(const Request& request, std::string* out);

  /// The single-threaded driver loop: getline over `in`, replies to `out`
  /// (flushed per request), until EOF or QUIT. Returns the number of
  /// requests handled. For a concurrent driver, see server/frontend.hpp.
  size_t Serve(std::istream& in, std::ostream& out);

  // --- The two-stage compute split used by the concurrent front-end --------

  /// True for per-tenant compute requests (QUERY/SOLVE/SOLVEALL/MSO): no
  /// tenant-map or pool-structure mutation, so the front-end may execute
  /// them off the dispatch thread after PrepareCompute.
  static bool IsComputeRequest(const Request& request);

  /// One compute request validated and leased by the sequential stage;
  /// everything ExecuteCompute needs is captured here, so it can run on any
  /// thread.
  struct ComputeWork {
    Request request;
    SessionPool::Lease lease;
    datalog::Program program;  // QUERY only
    mso::FormulaPtr formula;   // MSO only
    /// Armed work-unit deadline captured at prepare time (DEADLINE state is
    /// dispatch-thread state; capturing it here keeps ExecuteCompute free of
    /// server mutation and the reply independent of worker scheduling).
    std::optional<uint64_t> deadline;
  };

  /// The pool fingerprint a compute request would acquire, or nullopt when
  /// its tenant is unbound. Lets the front-end decide whether the acquire
  /// will hit a resident session (safe to dispatch immediately) or miss
  /// (must drain the pipeline first: cold construction, eviction and
  /// admission all read state in-flight requests may still be writing).
  std::optional<uint64_t> ComputeFingerprint(const Request& request) const;

  /// Sequential stage of a compute request: tenant lookup, payload parse,
  /// pool acquire — everything whose ORDER determines pool state (LRU
  /// clock, hit/miss counters, admission). On failure the error reply is
  /// rendered into *out and nullopt returns. Call from one thread at a time.
  std::optional<ComputeWork> PrepareCompute(const Request& request,
                                            std::string* out);

  /// Parallel stage: evaluates the leased engine and renders the reply.
  /// Thread-safe — engines, pool accounting and the reply counters all
  /// tolerate concurrent callers.
  void ExecuteCompute(ComputeWork& work, std::string* out);

  ServerStats stats() const;
  SessionPool& pool() { return *pool_; }
  const SessionPool& pool() const { return *pool_; }

 private:
  friend class Frontend;

  struct Tenant {
    Signature signature;
    std::string facts_text;
    Structure structure;
    uint64_t fingerprint = 0;
  };

  struct AtomicStats {
    std::atomic<size_t> requests{0};
    std::atomic<size_t> replies_ok{0};
    std::atomic<size_t> replies_error{0};
    std::atomic<size_t> data_lines{0};
    std::atomic<size_t> peak_table_bytes{0};
  };

  /// Arms `*budget` with the request's captured deadline and the server's
  /// table_memory_budget hard cap; returns it, or nullptr when neither limit
  /// is set (keeps the DP inner loops on their no-budget fast path).
  WorkBudget* ArmBudget(const ComputeWork& work, WorkBudget* budget) const;

  /// The tenant for `name`, or a kNoTenant-shaped NotFound status.
  StatusOr<Tenant*> FindTenant(const std::string& name);
  /// Acquire + common error mapping; echoes `pool=hit|warm|cold`.
  StatusOr<SessionPool::Lease> AcquireFor(const Tenant& tenant);
  /// Folds a finished request's RunStats into the server counters and the
  /// pool charge, and renders the echo suffix ("" when echo_stats is off).
  std::string FinishRun(uint64_t fingerprint, const RunStats& run);

  void HandleLoad(const LoadRequest& request, std::string* out);
  void HandleAssert(const AssertRequest& request, std::string* out);
  void HandleSave(const SaveRequest& request, std::string* out);
  void HandleOpen(const OpenRequest& request, std::string* out);
  void HandleStats(const StatsRequest& request, std::string* out);
  void HandleDeadline(const DeadlineRequest& request, std::string* out);
  void HandleReopt(const ReoptRequest& request, std::string* out);
  void HandleClose(const CloseRequest& request, std::string* out);

  void ExecuteQuery(ComputeWork& work, std::string* out);
  void ExecuteSolve(ComputeWork& work, std::string* out);
  void ExecuteSolveAll(ComputeWork& work, std::string* out);
  void ExecuteMso(ComputeWork& work, std::string* out);

  void EmitOk(std::string_view command, std::string_view details,
              std::string* out);
  void EmitData(std::string_view payload, std::string* out);
  void EmitError(ErrorCode code, std::string_view message, std::string* out);
  void EmitStatus(const Status& status, std::string* out);

  ServerOptions options_;
  std::unique_ptr<ThreadPool> shared_pool_;  // null when sequential
  std::unique_ptr<SessionPool> pool_;
  std::map<std::string, Tenant> tenants_;  // ordered: deterministic STATS
  /// Armed DEADLINE for subsequent compute requests (nullopt = off). Only
  /// the dispatch thread reads or writes it.
  std::optional<uint64_t> deadline_units_;
  AtomicStats stats_;
};

}  // namespace treedl::server

#endif  // TREEDL_SERVER_SERVER_HPP_
