// Concurrency tests for the shared treedl::Engine session: the PR-1
// amortization invariant (N queries = 1 encode + 1 TD build) must survive N
// *threads* racing on a cold cache, and every thread must see the same
// answers as a sequential session. Run under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "graph/generators.hpp"
#include "mso/parser.hpp"
#include "schema/primality_bruteforce.hpp"
#include "schema/schema.hpp"
#include "test_util.hpp"

namespace treedl {
namespace {

constexpr int kThreads = 8;
constexpr int kRounds = 3;

TEST(EngineConcurrencyTest, SchemaSessionBuildsOnceUnderContention) {
  Schema schema = Schema::PaperExampleSchema();
  const AttributeId n = schema.NumAttributes();
  std::vector<bool> expected = AllPrimesBruteForce(schema);

  EngineCounters& global = GlobalEngineCounters();
  size_t encode_before = global.encode_builds;
  size_t td_before = global.td_builds;

  Engine engine(schema);
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (AttributeId a = 0; a < n; ++a) {
          auto result = engine.IsPrime(a);
          if (!result.ok()) {
            ++errors;
          } else if (*result != expected[static_cast<size_t>(a)]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // The PR-1 amortization invariant, now under contention: one encoding and
  // one decomposition build for the whole racing session.
  EXPECT_EQ(global.encode_builds - encode_before, 1u);
  EXPECT_EQ(global.td_builds - td_before, 1u);
  EXPECT_EQ(engine.CumulativeStats().encode_builds, 1u);
  EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
}

TEST(EngineConcurrencyTest, AllPrimesMemoUnderContention) {
  Schema schema = Schema::PaperExampleSchema();
  std::vector<bool> expected = AllPrimesBruteForce(schema);

  Engine engine(schema);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto primes = engine.AllPrimes();
      if (!primes.ok() || *primes != expected) ++failures;
      // Decisions after the enumeration answer from the shared memo.
      auto one = engine.IsPrime(0);
      if (!one.ok() || *one != expected[0]) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.CumulativeStats().encode_builds, 1u);
  EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
}

TEST(EngineConcurrencyTest, GraphSolvesAgreeWithSequentialSession) {
  Rng rng(TestSeed());
  Graph graph = RandomPartialKTree(60, 3, 0.6, &rng);

  // Sequential ground truth (num_threads = 1: no pool, no sharding pass).
  EngineOptions sequential;
  sequential.num_threads = 1;
  Engine oracle = Engine::FromGraph(graph, sequential);
  auto expected_color = oracle.Solve(Engine::Problem::kThreeColor);
  auto expected_count = oracle.Solve(Engine::Problem::kThreeColorCount);
  auto expected_vc = oracle.Solve(Engine::Problem::kVertexCover);
  ASSERT_TRUE(expected_color.ok() && expected_count.ok() && expected_vc.ok());

  // One shared parallel session queried from many threads at once.
  EngineOptions parallel;
  parallel.num_threads = 4;
  Engine engine = Engine::FromGraph(graph, parallel);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        switch ((t + round) % 3) {
          case 0: {
            auto r = engine.Solve(Engine::Problem::kThreeColor);
            if (!r.ok() || r->feasible != expected_color->feasible) ++failures;
            break;
          }
          case 1: {
            auto r = engine.Solve(Engine::Problem::kThreeColorCount);
            if (!r.ok() || r->count != expected_count->count) ++failures;
            break;
          }
          case 2: {
            auto r = engine.Solve(Engine::Problem::kVertexCover);
            if (!r.ok() || r->optimum != expected_vc->optimum) ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // One decomposition and one normalization serve every racing query.
  EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
  EXPECT_EQ(engine.CumulativeStats().normalize_builds, 1u);
}

TEST(EngineConcurrencyTest, MsoProgramCacheCompilesOnceUnderContention) {
  // The rank-1 unary regime of engine_test's MSO cross-check, now racing.
  Signature unary = Signature::Make({{"p", 1}}).value();
  Structure a(unary);
  for (int i = 0; i < 6; ++i) a.AddElement("u" + std::to_string(i));
  ASSERT_TRUE(a.AddFactNamed("p", {"u1"}).ok());
  ASSERT_TRUE(a.AddFactNamed("p", {"u4"}).ok());
  auto query = mso::ParseFormula("p(x) & (ex1 y: (~(y = x) & p(y)))");
  ASSERT_TRUE(query.ok()) << query.status();

  TreeDecomposition path_td;
  TdNodeId prev = path_td.AddNode({0, 1});
  for (ElementId e = 1; e + 1 < 6; ++e) {
    prev = path_td.AddNode({e, e + 1}, prev);
  }
  EngineOptions options;
  options.decomposition = path_td;
  Engine engine{Structure(a), options};

  const std::vector<bool> expected{false, true, false, false, true, false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        auto selected = engine.EvaluateMsoUnary(*query, "x");
        if (!selected.ok() || *selected != expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Exactly one Thm 4.5 construction across all racing evaluations.
  EXPECT_EQ(engine.CumulativeStats().mso_compile_builds, 1u);
  EXPECT_EQ(engine.CumulativeStats().td_builds, 1u);
}

}  // namespace
}  // namespace treedl
