// Thm 4.4: quasi-guarded datalog evaluates in O(|P|·|A|) via grounding +
// LTUR. Compares the three engines on a quasi-guarded τ_td program over
// growing inputs; the grounded pipeline should scale linearly and beat the
// generic engines.
#include <benchmark/benchmark.h>

#include "datalog/parser.hpp"
#include "engine/engine.hpp"
#include "datalog/tau_td.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"

namespace treedl {
namespace {

constexpr const char* kProgram =
    "good(V) :- bag(V, X0, X1), leaf(V), e(X0, X1).\n"
    "good(V) :- bag(V, X0, X1), child1(V1, V), good(V1), bag(V1, Y0, Y1).\n"
    "good(V) :- bag(V, X0, X1), child1(V1, V), child2(V2, V), good(V1), "
    "good(V2), bag(V1, X0, X1), bag(V2, X0, X1).\n"
    "success :- root(V), good(V).\n";

Structure Atd(size_t n) {
  Graph g = PathGraph(n);
  Structure a = GraphToStructure(g);
  auto raw = DecomposeStructure(a);
  TREEDL_CHECK(raw.ok());
  auto tuple = NormalizeTuple(*raw);
  TREEDL_CHECK(tuple.ok());
  auto atd = datalog::BuildTauTd(a, *tuple);
  TREEDL_CHECK(atd.ok());
  return std::move(atd->structure);
}

void BM_Backend(benchmark::State& state, DatalogBackend backend) {
  auto program = datalog::ParseProgram(kProgram);
  TREEDL_CHECK(program.ok());
  Engine engine(Atd(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto result = engine.EvaluateDatalog(*program, backend);
    TREEDL_CHECK(result.ok());
    benchmark::DoNotOptimize(result->NumFacts());
  }
  state.SetComplexityN(state.range(0));
}

void BM_GroundedLtur(benchmark::State& state) {
  BM_Backend(state, DatalogBackend::kGrounded);
}
BENCHMARK(BM_GroundedLtur)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_SemiNaive(benchmark::State& state) {
  BM_Backend(state, DatalogBackend::kSemiNaive);
}
BENCHMARK(BM_SemiNaive)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_Naive(benchmark::State& state) {
  BM_Backend(state, DatalogBackend::kNaive);
}
// Naive evaluation is quadratic-ish in rounds; keep sizes smaller.
BENCHMARK(BM_Naive)->RangeMultiplier(2)->Range(16, 128)->Complexity();

}  // namespace
}  // namespace treedl

BENCHMARK_MAIN();
