// End-to-end flows across module boundaries, mirroring the example binaries.
#include <gtest/gtest.h>

#include "core/extensions.hpp"
#include "core/primality.hpp"
#include "core/primality_enum.hpp"
#include "core/three_color.hpp"
#include "datalog/eval.hpp"
#include "datalog/grounder.hpp"
#include "datalog/parser.hpp"
#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"
#include "mso/evaluator.hpp"
#include "mso/formulas.hpp"
#include "schema/encode.hpp"
#include "schema/generators.hpp"
#include "schema/primality_bruteforce.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"
#include "td/validate.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

TEST(IntegrationTest, SchemaTextToPrimes) {
  // Parse text -> encode -> decompose -> enumerate, no manual plumbing.
  auto schema = Schema::Parse(
      "a b -> c\n"
      "c -> b\n"
      "c d -> e\n"
      "d e -> g\n"
      "g -> e\n");
  ASSERT_TRUE(schema.ok());
  auto primes = core::EnumeratePrimes(*schema);
  ASSERT_TRUE(primes.ok()) << primes.status();
  std::vector<std::string> prime_names;
  for (AttributeId a = 0; a < schema->NumAttributes(); ++a) {
    if ((*primes)[static_cast<size_t>(a)]) {
      prime_names.push_back(schema->AttributeName(a));
    }
  }
  EXPECT_EQ(prime_names, (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(IntegrationTest, GraphPipelineAgreesAcrossSolvers) {
  // Same instance through the MSO sentence, the §5.1 DP, and brute force.
  Rng rng(TestSeed());
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = RandomPartialKTree(8, 3, 0.85, &rng);
    bool brute = BruteForceColoring(g, 3).has_value();
    auto dp = core::SolveThreeColor(g, /*extract_coloring=*/false);
    ASSERT_TRUE(dp.ok());
    auto direct = mso::EvaluateSentence(GraphToStructure(g),
                                        *mso::ThreeColorabilitySentence());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(dp->colorable, brute);
    EXPECT_EQ(*direct, brute);
  }
}

TEST(IntegrationTest, MsoPrimalityFormulaAgreesWithDpOnBalancedInstance) {
  BalancedInstance inst = GenerateBalancedInstance(2);  // small: MSO feasible
  mso::FormulaPtr phi = mso::PrimalityFormula("x");
  auto dp = core::EnumeratePrimes(inst.schema, inst.encoding, inst.td);
  ASSERT_TRUE(dp.ok());
  for (AttributeId a = 0; a < inst.schema.NumAttributes(); ++a) {
    auto direct = mso::EvaluateUnary(inst.encoding.structure, *phi, "x",
                                     inst.encoding.AttrElement(a));
    ASSERT_TRUE(direct.ok()) << direct.status();
    EXPECT_EQ(*direct, (*dp)[static_cast<size_t>(a)])
        << inst.schema.AttributeName(a);
  }
}

TEST(IntegrationTest, NormalFormsRemainValidDecompositions) {
  // Both normal forms of the same raw decomposition stay valid for the
  // original structure, across random schemas.
  Rng rng(TestSeed());
  for (int trial = 0; trial < 5; ++trial) {
    Schema schema = RandomWindowSchema(10, 7, 4, &rng);
    SchemaEncoding enc = EncodeSchema(schema);
    auto raw = DecomposeStructure(enc.structure);
    ASSERT_TRUE(raw.ok());
    NormalizeOptions options;
    options.ensure_leaf_coverage = true;
    auto norm = Normalize(*raw, options);
    ASSERT_TRUE(norm.ok());
    EXPECT_TRUE(ValidateForStructure(enc.structure, norm->ToRaw()).ok());
    auto tuple = NormalizeTuple(*raw);
    ASSERT_TRUE(tuple.ok());
    EXPECT_TRUE(ValidateForStructure(enc.structure, tuple->ToRaw()).ok());
  }
}

TEST(IntegrationTest, DatalogEnginesAgreeOnReachability) {
  auto program = datalog::ParseProgram(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Y) :- e(X, Z), path(Z, Y).\n"
      "cyclic(X) :- path(X, X).\n");
  ASSERT_TRUE(program.ok());
  Rng rng(TestSeed());
  Graph g = RandomGnp(7, 0.35, &rng);
  Structure edb = GraphToStructure(g);
  auto naive = datalog::NaiveEvaluate(*program, edb);
  auto semi = datalog::SemiNaiveEvaluate(*program, edb);
  ASSERT_TRUE(naive.ok() && semi.ok());
  EXPECT_TRUE(*naive == *semi);
}

TEST(IntegrationTest, ExtensionsConsistentWithColorability) {
  // If max independent set >= n - (n/3)*2 trivia aside, at least verify that
  // a 3-colorable graph has an independent set of size >= n/3 (one color
  // class) — a cross-solver sanity property.
  Rng rng(TestSeed());
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = RandomPartialKTree(12, 3, 0.75, &rng);
    auto colorable = core::SolveThreeColor(g, false);
    ASSERT_TRUE(colorable.ok());
    if (!colorable->colorable) continue;
    auto is = core::MaxIndependentSetTd(g);
    ASSERT_TRUE(is.ok());
    EXPECT_GE(*is * 3, g.NumVertices());
  }
}

TEST(IntegrationTest, BalancedInstanceScalesThroughFullPipeline) {
  // A mid-size instance through closure, re-rooting, normalization, both
  // passes — and the decision/enumeration answers agree attribute by
  // attribute.
  BalancedInstance inst = GenerateBalancedInstance(9);
  auto enumerated = core::EnumeratePrimes(inst.schema, inst.encoding, inst.td);
  ASSERT_TRUE(enumerated.ok());
  for (AttributeId a = 0; a < inst.schema.NumAttributes(); ++a) {
    auto decided = core::IsPrimeViaTd(inst.schema, inst.encoding, inst.td, a);
    ASSERT_TRUE(decided.ok()) << decided.status();
    EXPECT_EQ(*decided, (*enumerated)[static_cast<size_t>(a)])
        << inst.schema.AttributeName(a);
  }
}

}  // namespace
}  // namespace treedl
