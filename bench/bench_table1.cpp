// Reproduces Table 1 (§6): PRIMALITY processing time, monadic-datalog
// approach ("MD") versus the MSO-model-checking route ("MSO", standing in
// for MONA — see DESIGN.md: same exponential data complexity, same
// out-of-budget failure mode, reported as "—").
//
// Instances follow the paper's generator: balanced normalized width-3
// decompositions with all node kinds, #Att = 3·#FD, rows at the paper's
// sizes. Absolute times differ from 2007 hardware; the shape to verify is
// MD ≈ linear milliseconds vs MSO exploding and failing from tiny sizes.
//
// Flags: --quick shrinks the row ladder for CI; --json <path> writes the
// deterministic counters of the largest row (instance shape, normalized
// node count, DP states — no wall-clock, so the artifact is comparable
// across runners).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "common/timer.hpp"
#include "core/primality.hpp"
#include "core/primality_internal.hpp"
#include "engine/engine.hpp"
#include "mso/evaluator.hpp"
#include "mso/formulas.hpp"
#include "schema/generators.hpp"
#include "td/normalize.hpp"

namespace treedl {
namespace {

// Node count of the normalized decomposition actually traversed (the paper's
// "#tn" counts normalized tree nodes).
size_t NormalizedNodeCount(const BalancedInstance& inst) {
  core::internal::PrimalityContext context(inst.schema, inst.encoding);
  TreeDecomposition closed =
      core::internal::CloseBagsForRhs(inst.td, inst.encoding, context);
  auto norm = Normalize(closed, core::internal::PrimalityNormalizeOptions(
                                    inst.encoding, false));
  return norm.ok() ? norm->NumNodes() : 0;
}

double MedianOfThree(const std::function<double()>& run) {
  double a = run(), b = run(), c = run();
  double lo = std::min({a, b, c}), hi = std::max({a, b, c});
  return a + b + c - lo - hi;
}

struct BenchConfig {
  std::vector<int> groups = {1, 2, 3, 4, 7, 11, 15, 19, 23, 27, 31};
  const char* json_path = nullptr;
};

}  // namespace

void RunTable1(const BenchConfig& config) {
  std::printf("Table 1 — PRIMALITY processing time (ms)\n");
  std::printf("%3s %6s %5s %6s %10s %12s %12s\n", "tw", "#Att", "#FD", "#tn",
              "MD", "MD(engine)", "MSO(MONA*)");
  const uint64_t kMsoBudget = 200'000'000;  // the stand-in's "memory"
  mso::FormulaPtr phi = mso::PrimalityFormula("x");

  for (int g : config.groups) {
    BalancedInstance inst = GenerateBalancedInstance(g);
    size_t tn = NormalizedNodeCount(inst);

    // MD: the §5.2 decision program for the designated query attribute.
    double md_ms = MedianOfThree([&] {
      Timer timer;
      auto result = core::IsPrimeViaTd(inst.schema, inst.encoding, inst.td,
                                       inst.query_attribute);
      TREEDL_CHECK(result.ok() && *result);
      return timer.ElapsedMillis();
    });

    // MD through a warm Engine session: the encoding, decomposition and
    // rhs-closure are cached, so only re-root + normalize + DP remain.
    EngineOptions engine_options;
    engine_options.decomposition = inst.td;
    Engine engine(inst.schema, engine_options);
    TREEDL_CHECK(engine.IsPrime(inst.query_attribute).ok());  // warm the cache
    double engine_ms = MedianOfThree([&] {
      Timer timer;
      auto result = engine.IsPrime(inst.query_attribute);
      TREEDL_CHECK(result.ok() && *result);
      return timer.ElapsedMillis();
    });

    // MSO stand-in: direct model checking of φ(x) with a work budget.
    double mso_ms = -1.0;
    {
      Timer timer;
      mso::EvalOptions options;
      options.work_budget = kMsoBudget;
      ElementId a_elem = inst.encoding.AttrElement(inst.query_attribute);
      auto verdict = mso::EvaluateUnary(inst.encoding.structure, *phi, "x",
                                        a_elem, options);
      if (verdict.ok()) {
        TREEDL_CHECK(*verdict);
        mso_ms = timer.ElapsedMillis();
      }
    }

    if (mso_ms >= 0) {
      std::printf("%3d %6d %5d %6zu %10.2f %12.2f %12.1f\n", inst.td.Width(),
                  inst.schema.NumAttributes(), inst.schema.NumFds(), tn, md_ms,
                  engine_ms, mso_ms);
    } else {
      std::printf("%3d %6d %5d %6zu %10.2f %12.2f %12s\n", inst.td.Width(),
                  inst.schema.NumAttributes(), inst.schema.NumFds(), tn, md_ms,
                  engine_ms, "—");
    }
  }
  std::printf(
      "\n(*) naive MSO model checking with a %.0fM-step budget, standing in\n"
      "    for MONA: identical exponential data complexity and failure mode\n"
      "    (paper: 650/9210/17930 ms then out-of-memory from #Att >= 12).\n",
      200.0);

  if (config.json_path != nullptr) {
    // Deterministic shape/counter profile of the largest row.
    int g = config.groups.back();
    BalancedInstance inst = GenerateBalancedInstance(g);
    size_t tn = NormalizedNodeCount(inst);
    EngineOptions engine_options;
    engine_options.decomposition = inst.td;
    Engine engine(inst.schema, engine_options);
    RunStats run;
    auto verdict = engine.IsPrime(inst.query_attribute, &run);
    TREEDL_CHECK(verdict.ok() && *verdict);
    FILE* out = std::fopen(config.json_path, "w");
    TREEDL_CHECK(out != nullptr) << "cannot open " << config.json_path;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"table1\",\n"
                 "  \"num_fds\": %d,\n"
                 "  \"num_attributes\": %d,\n"
                 "  \"treewidth\": %d,\n"
                 "  \"normalized_nodes\": %zu,\n"
                 "  \"dp_states\": %zu,\n"
                 "  \"dp_max_states_per_node\": %zu\n"
                 "}\n",
                 inst.schema.NumFds(), inst.schema.NumAttributes(),
                 inst.td.Width(), tn, run.dp_states,
                 run.dp_max_states_per_node);
    std::fclose(out);
    std::printf("  wrote %s\n", config.json_path);
  }
}

}  // namespace treedl

int main(int argc, char** argv) {
  treedl::BenchConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.groups = {1, 2, 3, 4, 7};
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      config.json_path = argv[++i];
    }
  }
  treedl::RunTable1(config);
  return 0;
}
