// Normalized tree decompositions, in both forms used by the paper.
//
// 1. The *modified normal form* of §5 (Fig. 4): bags are sets; internal nodes
//    are element-introduction, element-removal (forget), branch (two children,
//    all three bags identical) or copy nodes. This is the form the practical
//    algorithms (3-Colorability, PRIMALITY) traverse.
//
// 2. The *tuple normal form* of Def 2.3 (Fig. 2): bags are (w+1)-tuples of
//    pairwise distinct elements; internal nodes are permutation nodes, element
//    replacement nodes (position 0 changes) or branch nodes with identical
//    child bags. This is the form referenced by the generic MSO-to-datalog
//    construction of Thm 4.5 and by the τ_td encoding's bag/child predicates.
#ifndef TREEDL_TD_NORMALIZE_HPP_
#define TREEDL_TD_NORMALIZE_HPP_

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl {

// ---------------------------------------------------------------------------
// Modified normal form (§5).
// ---------------------------------------------------------------------------

enum class NormNodeKind {
  kLeaf,       // no children
  kIntroduce,  // bag = bag(child) ⊎ {element}
  kForget,     // bag = bag(child) \ {element}   ("element removal" node)
  kBranch,     // two children, both bags identical to this node's bag
  kCopy,       // one child with an identical bag
};

const char* NormNodeKindName(NormNodeKind kind);

struct NormNode {
  NormNodeKind kind = NormNodeKind::kLeaf;
  /// The element introduced/forgotten (kIntroduce/kForget only).
  ElementId element = 0;
  /// Sorted, duplicate-free bag.
  std::vector<ElementId> bag;
  TdNodeId parent = kNoTdNode;
  std::vector<TdNodeId> children;
};

class NormalizedTreeDecomposition {
 public:
  size_t NumNodes() const { return nodes_.size(); }
  TdNodeId root() const { return root_; }
  const NormNode& node(TdNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const std::vector<ElementId>& Bag(TdNodeId id) const { return node(id).bag; }
  int Width() const;

  /// Every node after its parent / before its parent, respectively.
  std::vector<TdNodeId> PreOrder() const;
  std::vector<TdNodeId> PostOrder() const;

  /// Count of nodes per kind (indexed by static_cast<int>(kind)).
  std::vector<size_t> KindCounts() const;

  /// Conversion back to a raw decomposition (same tree and bags), so that the
  /// result can be validated against the original structure/graph.
  TreeDecomposition ToRaw() const;

  /// Internal: appends a node; used by Normalize and by tests building
  /// decompositions by hand.
  TdNodeId AddNode(NormNode node);
  void SetRoot(TdNodeId id) { root_ = id; }
  NormNode* MutableNode(TdNodeId id) { return &nodes_[static_cast<size_t>(id)]; }

 private:
  std::vector<NormNode> nodes_;
  TdNodeId root_ = kNoTdNode;
};

struct NormalizeOptions {
  /// Ensure every element occurs in the bag of at least one leaf — required
  /// by the enumeration algorithm of §5.3 (prime() is read off at leaves).
  bool ensure_leaf_coverage = false;
  /// Insert a copy node directly above every branch node, so each branch node
  /// is surrounded by equal-bag neighbors (§5.3's re-rooting robustness).
  bool copy_above_branches = false;
  /// Optional element priority for introduce/forget chains: elements with
  /// higher priority are forgotten first and introduced last. The PRIMALITY
  /// solver uses this to forget FD elements before their rhs attribute, so
  /// the §5.2 invariant "every bag containing f also contains rhs(f)" holds
  /// at every chain node, not just at the original bags.
  std::function<int(ElementId)> forget_priority;
};

/// Transforms a raw tree decomposition into modified normal form. Preserves
/// width, validity, and the root's bag; linear in the output size.
StatusOr<NormalizedTreeDecomposition> Normalize(
    const TreeDecomposition& td, const NormalizeOptions& options = {});

/// Checks the kind/bag invariants listed above NormNodeKind.
Status ValidateNormalized(const NormalizedTreeDecomposition& ntd);

// ---------------------------------------------------------------------------
// Tuple normal form (Def 2.3).
// ---------------------------------------------------------------------------

enum class TupleNodeKind {
  kLeaf,
  kPermutation,         // child bag is a permutation of this bag
  kElementReplacement,  // bags agree except at position 0
  kBranch,              // two children with identical tuples
};

const char* TupleNodeKindName(TupleNodeKind kind);

struct TupleNode {
  TupleNodeKind kind = TupleNodeKind::kLeaf;
  /// Ordered bag: exactly width+1 pairwise distinct elements.
  std::vector<ElementId> bag;
  TdNodeId parent = kNoTdNode;
  std::vector<TdNodeId> children;
};

class TupleNormalizedTd {
 public:
  explicit TupleNormalizedTd(int width) : width_(width) {}

  int width() const { return width_; }
  size_t NumNodes() const { return nodes_.size(); }
  TdNodeId root() const { return root_; }
  const TupleNode& node(TdNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  std::vector<TdNodeId> PreOrder() const;
  std::vector<TdNodeId> PostOrder() const;

  TreeDecomposition ToRaw() const;

  TdNodeId AddNode(TupleNode node);
  void SetRoot(TdNodeId id) { root_ = id; }

 private:
  int width_;
  std::vector<TupleNode> nodes_;
  TdNodeId root_ = kNoTdNode;
};

/// Transforms a raw decomposition of width w into tuple normal form
/// (Prop 2.4): pads every bag to w+1 elements with neighbor elements,
/// binarizes, and interpolates neighboring bags via permutation +
/// replacement steps. Requires the structure's domain to have >= w+1
/// elements (guaranteed since some bag already has w+1).
StatusOr<TupleNormalizedTd> NormalizeTuple(const TreeDecomposition& td);

/// Checks the Def 2.3 invariants (tuple sizes, kind/bag relations).
Status ValidateTupleNormalized(const TupleNormalizedTd& ntd);

}  // namespace treedl

#endif  // TREEDL_TD_NORMALIZE_HPP_
