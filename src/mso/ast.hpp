// Monadic Second Order logic (§2.3): FO plus set variables and quantifiers.
//
// Individual (FO) variables range over domain elements; set (SO) variables
// over sets of elements. By convention (and enforced by the parser) FO
// variable names start lower-case and SO names upper-case.
#ifndef TREEDL_MSO_AST_HPP_
#define TREEDL_MSO_AST_HPP_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "structure/signature.hpp"

namespace treedl::mso {

enum class FormulaKind {
  kAtom,      // R(x1, ..., xk)
  kEqual,     // x = y
  kIn,        // x ∈ X
  kSubseteq,  // X ⊆ Y
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kExistsFo,  // ex1 x: φ
  kForallFo,  // all1 x: φ
  kExistsSo,  // ex2 X: φ
  kForallSo,  // all2 X: φ
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

struct Formula {
  FormulaKind kind;
  // kAtom: predicate name + FO argument variables.
  std::string predicate;
  std::vector<std::string> args;
  // kEqual/kIn/kSubseteq use args[0], args[1].
  // Quantifiers: bound variable name.
  std::string bound;
  // Children: unary connectives/quantifiers use `left` only.
  FormulaPtr left;
  FormulaPtr right;
};

// --- Builders ---------------------------------------------------------------

FormulaPtr MakeAtom(std::string predicate, std::vector<std::string> args);
FormulaPtr MakeEqual(std::string x, std::string y);
FormulaPtr MakeIn(std::string x, std::string big_x);
FormulaPtr MakeSubseteq(std::string big_x, std::string big_y);
FormulaPtr MakeNot(FormulaPtr f);
FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeImplies(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeIff(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeExistsFo(std::string var, FormulaPtr f);
FormulaPtr MakeForallFo(std::string var, FormulaPtr f);
FormulaPtr MakeExistsSo(std::string var, FormulaPtr f);
FormulaPtr MakeForallSo(std::string var, FormulaPtr f);
/// Conjunction/disjunction over a list (empty list: true/false have no
/// representation, so the list must be non-empty).
FormulaPtr MakeAndAll(std::vector<FormulaPtr> fs);
FormulaPtr MakeOrAll(std::vector<FormulaPtr> fs);

// --- Inspection ---------------------------------------------------------------

/// Maximum quantifier nesting (both FO and SO), §2.3.
int QuantifierDepth(const Formula& f);

struct FreeVariables {
  std::set<std::string> fo;
  std::set<std::string> so;
};
FreeVariables ComputeFreeVariables(const Formula& f);

/// Checks that every atom's predicate exists in `sig` with the right arity.
Status CheckAgainstSignature(const Formula& f, const Signature& sig);

std::string ToString(const Formula& f);

}  // namespace treedl::mso

#endif  // TREEDL_MSO_AST_HPP_
