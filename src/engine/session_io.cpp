#include "engine/session_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/binary_io.hpp"
#include "common/fault_injection.hpp"
#include "structure/structure_io.hpp"
#include "td/td_io.hpp"

namespace treedl::engine {

namespace {

// The errno rendering behind every IO failure Status: "<op> failed:
// <strerror>". strerror text is libc-stable for a fixed platform, so the
// serving layer can surface these messages in transcripts that diff
// byte-for-byte across runs.
std::string ErrnoText(int err) {
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

void AppendSection(SessionSection tag, BinaryWriter&& payload,
                   BinaryWriter* out) {
  out->U32(static_cast<uint32_t>(tag));
  out->Str(payload.buffer());
}

void EncodeSchemaEncoding(const SchemaEncoding& encoding, BinaryWriter* w) {
  SerializeStructure(encoding.structure, w);
  w->I32(encoding.num_attributes);
  w->I32(encoding.num_fds);
}

StatusOr<SchemaEncoding> DecodeSchemaEncoding(BinaryReader* r) {
  SchemaEncoding encoding{Structure(Signature()), 0, 0};
  TREEDL_ASSIGN_OR_RETURN(encoding.structure, DeserializeStructure(r));
  TREEDL_RETURN_IF_ERROR(r->I32(&encoding.num_attributes));
  TREEDL_RETURN_IF_ERROR(r->I32(&encoding.num_fds));
  if (encoding.num_attributes < 0 || encoding.num_fds < 0 ||
      static_cast<size_t>(encoding.num_attributes) +
          static_cast<size_t>(encoding.num_fds) >
          encoding.structure.NumElements()) {
    return Status::ParseError("session: schema encoding counts exceed domain");
  }
  return encoding;
}

void EncodePrimes(const std::vector<bool>& primes, BinaryWriter* w) {
  w->U64(primes.size());
  for (bool p : primes) w->U8(p ? 1 : 0);
}

StatusOr<std::vector<bool>> DecodePrimes(BinaryReader* r) {
  size_t n = 0;
  TREEDL_RETURN_IF_ERROR(r->Length(&n, 1));
  std::vector<bool> primes(n, false);
  for (size_t i = 0; i < n; ++i) {
    uint8_t bit = 0;
    TREEDL_RETURN_IF_ERROR(r->U8(&bit));
    if (bit > 1) return Status::ParseError("session: non-boolean primes bit");
    primes[i] = bit != 0;
  }
  return primes;
}

}  // namespace

size_t SessionArtifacts::Count() const {
  return (td.has_value() ? 1u : 0u) + (closed_td.has_value() ? 1u : 0u) +
         (plain_ntd.has_value() ? 1u : 0u) + (enum_ntd.has_value() ? 1u : 0u) +
         (tau_td.has_value() ? 1u : 0u) + (encoding.has_value() ? 1u : 0u) +
         (primes.has_value() ? 1u : 0u);
}

size_t SessionArtifactRefs::Count() const {
  return (td != nullptr ? 1u : 0u) + (closed_td != nullptr ? 1u : 0u) +
         (plain_ntd != nullptr ? 1u : 0u) + (enum_ntd != nullptr ? 1u : 0u) +
         (tau_td != nullptr ? 1u : 0u) + (encoding != nullptr ? 1u : 0u) +
         (primes != nullptr ? 1u : 0u);
}

std::string EncodeSessionFile(uint64_t fingerprint,
                              const SessionArtifactRefs& artifacts) {
  BinaryWriter out;
  out.U32(kSessionMagic);
  out.U32(kSessionVersion);
  out.U64(fingerprint);
  out.U64(artifacts.Count());
  if (artifacts.td != nullptr) {
    BinaryWriter payload;
    SerializeTreeDecomposition(*artifacts.td, &payload);
    AppendSection(SessionSection::kTreeDecomposition, std::move(payload), &out);
  }
  if (artifacts.closed_td != nullptr) {
    BinaryWriter payload;
    SerializeTreeDecomposition(*artifacts.closed_td, &payload);
    AppendSection(SessionSection::kClosedTreeDecomposition, std::move(payload),
                  &out);
  }
  if (artifacts.plain_ntd != nullptr) {
    BinaryWriter payload;
    SerializeNormalizedTd(*artifacts.plain_ntd, &payload);
    AppendSection(SessionSection::kPlainNormalizedTd, std::move(payload), &out);
  }
  if (artifacts.enum_ntd != nullptr) {
    BinaryWriter payload;
    SerializeNormalizedTd(*artifacts.enum_ntd, &payload);
    AppendSection(SessionSection::kEnumNormalizedTd, std::move(payload), &out);
  }
  if (artifacts.tau_td != nullptr) {
    BinaryWriter payload;
    datalog::SerializeTauTd(*artifacts.tau_td, &payload);
    AppendSection(SessionSection::kTauTd, std::move(payload), &out);
  }
  if (artifacts.encoding != nullptr) {
    BinaryWriter payload;
    EncodeSchemaEncoding(*artifacts.encoding, &payload);
    AppendSection(SessionSection::kSchemaEncoding, std::move(payload), &out);
  }
  if (artifacts.primes != nullptr) {
    BinaryWriter payload;
    EncodePrimes(*artifacts.primes, &payload);
    AppendSection(SessionSection::kPrimes, std::move(payload), &out);
  }
  return out.Take();
}

StatusOr<SessionArtifacts> DecodeSessionFile(std::string_view data,
                                             uint64_t expected_fingerprint) {
  BinaryReader reader(data);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t fingerprint = 0;
  TREEDL_RETURN_IF_ERROR(reader.U32(&magic));
  if (magic != kSessionMagic) {
    return Status::ParseError("session: bad magic (not a treedl session file)");
  }
  TREEDL_RETURN_IF_ERROR(reader.U32(&version));
  if (version == 0 || version > kSessionVersion) {
    return Status::ParseError(
        "session: file version " + std::to_string(version) +
        " not supported (this build reads up to version " +
        std::to_string(kSessionVersion) + ")");
  }
  TREEDL_RETURN_IF_ERROR(reader.U64(&fingerprint));
  if (fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(
        "session: fingerprint mismatch — the file was saved for a different "
        "schema/structure");
  }
  size_t num_sections = 0;
  TREEDL_RETURN_IF_ERROR(reader.Length(&num_sections, 4 + 8));

  SessionArtifacts artifacts;
  for (size_t i = 0; i < num_sections; ++i) {
    uint32_t tag = 0;
    TREEDL_RETURN_IF_ERROR(reader.U32(&tag));
    size_t length = 0;
    TREEDL_RETURN_IF_ERROR(reader.Length(&length, 1));
    std::string_view payload;
    TREEDL_RETURN_IF_ERROR(reader.Slice(length, &payload));
    BinaryReader section(payload);
    switch (static_cast<SessionSection>(tag)) {
      case SessionSection::kTreeDecomposition: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.td,
                                DeserializeTreeDecomposition(&section));
        break;
      }
      case SessionSection::kClosedTreeDecomposition: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.closed_td,
                                DeserializeTreeDecomposition(&section));
        break;
      }
      case SessionSection::kPlainNormalizedTd: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.plain_ntd,
                                DeserializeNormalizedTd(&section));
        break;
      }
      case SessionSection::kEnumNormalizedTd: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.enum_ntd,
                                DeserializeNormalizedTd(&section));
        break;
      }
      case SessionSection::kTauTd: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.tau_td,
                                datalog::DeserializeTauTd(&section));
        break;
      }
      case SessionSection::kSchemaEncoding: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.encoding,
                                DecodeSchemaEncoding(&section));
        break;
      }
      case SessionSection::kPrimes: {
        TREEDL_ASSIGN_OR_RETURN(artifacts.primes, DecodePrimes(&section));
        break;
      }
      default:
        // Unknown tag: a same-version writer with artifacts this reader does
        // not know. Skipping keeps the rest of the file usable.
        break;
    }
    if (!section.AtEnd() && tag >= 1 &&
        tag <= static_cast<uint32_t>(SessionSection::kPrimes)) {
      return Status::ParseError("session: trailing bytes in section " +
                                std::to_string(tag));
    }
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("session: trailing bytes after last section");
  }
  return artifacts;
}

Status WriteSessionFile(const std::string& path, uint64_t fingerprint,
                        const SessionArtifactRefs& artifacts) {
  TREEDL_RETURN_IF_ERROR(TREEDL_FAULT_POINT("session_io.write"));
  std::string bytes = EncodeSessionFile(fingerprint, artifacts);
  // Atomic, durable write: the full image goes to a temporary sibling, is
  // fsync'd to stable storage, and then one rename() publishes it. A crash
  // (or power loss) mid-save leaves at worst a stray .tmp file — `path` is
  // always either the previous complete session or the new one, never a
  // truncated file that LoadSession would reject. The pid + counter suffix
  // keeps concurrent saves — same-process and cross-process — off each
  // other's temp file (the renames then race, but each publishes a complete
  // image).
  static std::atomic<uint64_t> temp_counter{0};
  std::string temp_path = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(temp_counter.fetch_add(1));
  {
    errno = 0;
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("session: cannot open '" + temp_path +
                                     "' for writing: " + ErrnoText(errno));
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      int err = errno;
      out.close();
      std::remove(temp_path.c_str());
      return Status::Internal("session: short write to '" + temp_path +
                              "': " + ErrnoText(err));
    }
  }
  // Force the data to disk before the rename becomes visible: journaling
  // filesystems may otherwise persist the rename ahead of the data blocks,
  // which would resurrect exactly the truncated-file failure mode this
  // function exists to rule out.
  int fd = ::open(temp_path.c_str(), O_WRONLY);
  if (fd < 0 || ::fsync(fd) != 0) {
    int err = errno;
    if (fd >= 0) ::close(fd);
    std::remove(temp_path.c_str());
    return Status::Internal("session: cannot fsync '" + temp_path +
                            "': " + ErrnoText(err));
  }
  ::close(fd);
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    int err = errno;
    std::remove(temp_path.c_str());
    return Status::Internal("session: cannot rename '" + temp_path +
                            "' to '" + path + "': " + ErrnoText(err));
  }
  // Best-effort directory sync so the rename itself is durable.
  std::string_view view(path);
  size_t slash = view.find_last_of('/');
  std::string dir(slash == std::string_view::npos ? "." : view.substr(0, slash));
  if (dir.empty()) dir = "/";
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

StatusOr<SessionArtifacts> ReadSessionFile(const std::string& path,
                                           uint64_t expected_fingerprint) {
  TREEDL_RETURN_IF_ERROR(TREEDL_FAULT_POINT("session_io.read"));
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("session: cannot open '" + path +
                            "': " + ErrnoText(errno));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("session: read error on '" + path + "'");
  }
  std::string bytes = buffer.str();
  return DecodeSessionFile(bytes, expected_fingerprint);
}

}  // namespace treedl::engine
