// SessionPool: fingerprint-keyed reuse, LRU eviction order, warm start from
// session files, and shared-budget admission control.
#include "server/session_pool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "structure/structure_io.hpp"
#include "test_util.hpp"

namespace treedl::server {
namespace {

/// A path graph a -> b -> c -> ... with `n` vertices over the e/2 signature.
Structure PathStructure(size_t n) {
  auto signature = Signature::Make({{"e", 2}});
  EXPECT_TRUE(signature.ok());
  std::string text;
  for (size_t i = 0; i + 1 < n; ++i) {
    text += "e(v" + std::to_string(i) + ", v" + std::to_string(i + 1) + ").\n";
  }
  if (n == 1) text = "element(v0).\n";
  auto structure = ParseStructure(*signature, text);
  EXPECT_TRUE(structure.ok()) << structure.status();
  return *std::move(structure);
}

TEST(SessionPoolTest, HitIsKeyedByFingerprintNotIdentity) {
  SessionPool pool(SessionPoolOptions{});
  Structure first = PathStructure(4);
  Structure second = PathStructure(4);  // equal content, distinct object

  auto miss = pool.Acquire(first);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().hit);
  auto hit = pool.Acquire(second);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().hit);
  EXPECT_EQ(hit.value().engine.get(), miss.value().engine.get());
  EXPECT_EQ(hit.value().fingerprint, Engine::FingerprintOf(first));

  SessionPoolCounters counters = pool.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(pool.NumResident(), 1u);
}

TEST(SessionPoolTest, LruEvictionOrder) {
  SessionPoolOptions options;
  options.max_sessions = 2;
  SessionPool pool(options);
  Structure s1 = PathStructure(3);
  Structure s2 = PathStructure(4);
  Structure s3 = PathStructure(5);
  uint64_t fp1 = Engine::FingerprintOf(s1);
  uint64_t fp2 = Engine::FingerprintOf(s2);
  uint64_t fp3 = Engine::FingerprintOf(s3);

  ASSERT_TRUE(pool.Acquire(s1).ok());
  ASSERT_TRUE(pool.Acquire(s2).ok());
  EXPECT_EQ(pool.LruFingerprints(), (std::vector<uint64_t>{fp1, fp2}));

  // Touch s1: s2 becomes the eviction victim.
  ASSERT_TRUE(pool.Acquire(s1).ok());
  EXPECT_EQ(pool.LruFingerprints(), (std::vector<uint64_t>{fp2, fp1}));

  ASSERT_TRUE(pool.Acquire(s3).ok());
  EXPECT_EQ(pool.NumResident(), 2u);
  EXPECT_EQ(pool.Peek(fp2), nullptr);
  EXPECT_NE(pool.Peek(fp1), nullptr);
  EXPECT_EQ(pool.LruFingerprints(), (std::vector<uint64_t>{fp1, fp3}));
  EXPECT_EQ(pool.counters().evictions, 1u);
}

TEST(SessionPoolTest, SecondAcquireReusesArtifactsWithZeroBuilds) {
  SessionPool pool(SessionPoolOptions{});
  Structure structure = PathStructure(6);

  {
    auto lease = pool.Acquire(structure);
    ASSERT_TRUE(lease.ok());
    RunStats cold;
    ASSERT_TRUE(lease.value().engine->SolveAll(&cold).ok());
    EXPECT_GT(cold.td_builds, 0u);
  }
  auto lease = pool.Acquire(structure);
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease.value().hit);
  RunStats warm;
  ASSERT_TRUE(lease.value().engine->SolveAll(&warm).ok());
  EXPECT_EQ(warm.encode_builds, 0u);
  EXPECT_EQ(warm.td_builds, 0u);
  EXPECT_EQ(warm.normalize_builds, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
}

TEST(SessionPoolTest, WarmStartFromSavedSessionFile) {
  const std::string dir =
      "session_pool_test_" + std::to_string(TestSeed() % 100000);
  std::filesystem::create_directories(dir);
  Structure structure = PathStructure(6);
  uint64_t fingerprint = Engine::FingerprintOf(structure);

  SessionPoolOptions options;
  options.session_dir = dir;
  {
    SessionPool pool(options);
    auto lease = pool.Acquire(structure);
    ASSERT_TRUE(lease.ok());
    EXPECT_FALSE(lease.value().warm_loaded);  // nothing saved yet
    ASSERT_TRUE(lease.value().engine->SolveAll(nullptr).ok());
    RunStats saved;
    ASSERT_TRUE(pool.Save(fingerprint, &saved).ok());
    EXPECT_GT(saved.artifact_saves, 0u);
  }

  SessionPool fresh(options);
  auto lease = fresh.Acquire(structure);
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease.value().hit);
  EXPECT_TRUE(lease.value().warm_loaded);
  EXPECT_GT(lease.value().artifact_loads, 0u);
  EXPECT_EQ(fresh.counters().warm_loads, 1u);

  RunStats warm;
  ASSERT_TRUE(lease.value().engine->SolveAll(&warm).ok());
  EXPECT_EQ(warm.encode_builds, 0u);
  EXPECT_EQ(warm.td_builds, 0u);
  EXPECT_EQ(warm.normalize_builds, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SessionPoolTest, BudgetRejectsOversizedStructure) {
  SessionPoolOptions options;
  options.table_memory_budget = 64;  // below any structure estimate
  SessionPool pool(options);
  auto lease = pool.Acquire(PathStructure(8));
  EXPECT_FALSE(lease.ok());
  EXPECT_EQ(lease.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.counters().rejections, 1u);
  EXPECT_EQ(pool.NumResident(), 0u);
}

TEST(SessionPoolTest, BudgetRejectsWhenEveryResidentSessionIsLeased) {
  Structure s1 = PathStructure(4);
  Structure s2 = PathStructure(5);
  // Room for one structure charge but not two (4 elements * 48 + 3 tuples *
  // (24 + 2 * 4) = 288 bytes for s1; s2 is bigger).
  SessionPoolOptions options;
  options.table_memory_budget = 400;
  SessionPool pool(options);

  auto held = pool.Acquire(s1);
  ASSERT_TRUE(held.ok()) << held.status();
  auto rejected = pool.Acquire(s2);  // s1 is leased: nothing to evict
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.counters().rejections, 1u);

  held.value().engine.reset();  // release the lease; s1 becomes evictable
  auto admitted = pool.Acquire(s2);
  EXPECT_TRUE(admitted.ok()) << admitted.status();
  EXPECT_EQ(pool.counters().evictions, 1u);
  EXPECT_EQ(pool.Peek(Engine::FingerprintOf(s1)), nullptr);
}

TEST(SessionPoolTest, SaveRequiresResidencyAndSessionDir) {
  SessionPool pool(SessionPoolOptions{});
  EXPECT_EQ(pool.Save(0x1234).code(), StatusCode::kNotFound);

  Structure structure = PathStructure(3);
  ASSERT_TRUE(pool.Acquire(structure).ok());
  Status no_dir = pool.Save(Engine::FingerprintOf(structure));
  EXPECT_EQ(no_dir.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace treedl::server
