// The PRIMALITY decision algorithm of §5.2 (Fig. 6): given a relational
// schema (R, F) of bounded treewidth and an attribute a, decide whether a is
// prime (belongs to some key), in time f(w)·|(R, F)|.
#ifndef TREEDL_CORE_PRIMALITY_HPP_
#define TREEDL_CORE_PRIMALITY_HPP_

#include "common/status.hpp"
#include "core/tree_dp.hpp"
#include "schema/encode.hpp"
#include "schema/schema.hpp"
#include "td/tree_decomposition.hpp"

namespace treedl::core {

/// Decides primality of `a` using the supplied raw decomposition of the
/// encoded structure. Pipeline: validate → rhs-closure pass → re-root at a
/// bag containing a → normalize (modified form, FD-first forget order) →
/// bottom-up solve() DP → success test at the root.
StatusOr<bool> IsPrimeViaTd(const Schema& schema, const SchemaEncoding& encoding,
                            const TreeDecomposition& td, AttributeId a,
                            DpStats* stats = nullptr);

/// Convenience: encodes the schema and builds a min-fill decomposition.
StatusOr<bool> IsPrimeViaTd(const Schema& schema, AttributeId a,
                            DpStats* stats = nullptr);

}  // namespace treedl::core

#endif  // TREEDL_CORE_PRIMALITY_HPP_
