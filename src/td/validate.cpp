#include "td/validate.hpp"

#include <algorithm>
#include <unordered_map>

namespace treedl {

namespace {

// Condition (3): for every element, its occurrence set induces a subtree.
// Equivalent check: for each element e, the number of occurrence nodes whose
// parent also contains e must be exactly (#occurrences - 1) — i.e. the
// occurrence nodes form one connected component in the tree.
Status CheckConnectedness(const TreeDecomposition& td) {
  std::unordered_map<ElementId, int> occurrences;
  std::unordered_map<ElementId, int> linked;
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    TdNodeId id = static_cast<TdNodeId>(i);
    for (ElementId e : td.Bag(id)) {
      occurrences[e] += 1;
      TdNodeId p = td.node(id).parent;
      if (p != kNoTdNode && td.BagContains(p, e)) linked[e] += 1;
    }
  }
  for (const auto& [e, count] : occurrences) {
    if (linked[e] != count - 1) {
      return Status::InvalidArgument(
          "connectedness violated for element id " + std::to_string(e) + ": " +
          std::to_string(count) + " occurrences, " + std::to_string(linked[e]) +
          " parent links");
    }
  }
  return Status::OK();
}

Status CheckTreeShape(const TreeDecomposition& td) {
  if (td.Empty()) return Status::InvalidArgument("empty tree decomposition");
  if (td.root() == kNoTdNode) {
    return Status::InvalidArgument("tree decomposition has no root");
  }
  // PreOrder checks reachability of all nodes from the root.
  size_t seen = 0;
  std::vector<TdNodeId> stack{td.root()};
  std::vector<bool> visited(td.NumNodes(), false);
  while (!stack.empty()) {
    TdNodeId id = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(id)]) {
      return Status::InvalidArgument("cycle in tree decomposition");
    }
    visited[static_cast<size_t>(id)] = true;
    ++seen;
    for (TdNodeId c : td.node(id).children) {
      if (td.node(c).parent != id) {
        return Status::InvalidArgument("parent/child pointers inconsistent");
      }
      stack.push_back(c);
    }
  }
  if (seen != td.NumNodes()) {
    return Status::InvalidArgument("tree decomposition is not connected");
  }
  return Status::OK();
}

// True iff some bag contains all of `elements` (sorted).
bool SomeBagCovers(const TreeDecomposition& td,
                   const std::vector<ElementId>& elements) {
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    const auto& bag = td.Bag(static_cast<TdNodeId>(i));
    if (std::includes(bag.begin(), bag.end(), elements.begin(),
                      elements.end())) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status ValidateConnectedness(const TreeDecomposition& td) {
  TREEDL_RETURN_IF_ERROR(CheckTreeShape(td));
  return CheckConnectedness(td);
}

Status ValidateForStructure(const Structure& structure,
                            const TreeDecomposition& td) {
  TREEDL_RETURN_IF_ERROR(ValidateConnectedness(td));
  // (1) element coverage.
  std::vector<bool> covered(structure.NumElements(), false);
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    for (ElementId e : td.Bag(static_cast<TdNodeId>(i))) {
      if (e >= structure.NumElements()) {
        return Status::InvalidArgument("bag element not in structure domain");
      }
      covered[e] = true;
    }
  }
  for (ElementId e = 0; e < structure.NumElements(); ++e) {
    if (!covered[e]) {
      return Status::InvalidArgument("element not covered by any bag: " +
                                     structure.ElementName(e));
    }
  }
  // (2) fact coverage.
  for (const Fact& fact : structure.AllFacts()) {
    std::vector<ElementId> args = fact.args;
    std::sort(args.begin(), args.end());
    args.erase(std::unique(args.begin(), args.end()), args.end());
    if (!SomeBagCovers(td, args)) {
      return Status::InvalidArgument(
          "fact not covered by any bag: predicate " +
          structure.signature().name(fact.predicate));
    }
  }
  return Status::OK();
}

Status ValidateForGraph(const Graph& graph, const TreeDecomposition& td) {
  TREEDL_RETURN_IF_ERROR(ValidateConnectedness(td));
  std::vector<bool> covered(graph.NumVertices(), false);
  for (size_t i = 0; i < td.NumNodes(); ++i) {
    for (ElementId e : td.Bag(static_cast<TdNodeId>(i))) {
      if (e >= graph.NumVertices()) {
        return Status::InvalidArgument("bag element not a graph vertex");
      }
      covered[e] = true;
    }
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!covered[v]) {
      return Status::InvalidArgument("vertex not covered by any bag: v" +
                                     std::to_string(v));
    }
  }
  for (auto [u, v] : graph.Edges()) {
    std::vector<ElementId> pair{std::min(u, v), std::max(u, v)};
    if (!SomeBagCovers(td, pair)) {
      return Status::InvalidArgument("edge not covered by any bag: {v" +
                                     std::to_string(u) + ", v" +
                                     std::to_string(v) + "}");
    }
  }
  return Status::OK();
}

}  // namespace treedl
