#include <gtest/gtest.h>

#include "core/three_color.hpp"
#include "fta/tree_automaton.hpp"
#include "fta/type_automaton.hpp"
#include "graph/generators.hpp"
#include "graph/graph_algorithms.hpp"
#include "td/heuristics.hpp"

#include "test_util.hpp"

namespace treedl::fta {
namespace {

// Automaton over labels {a=0, b=1} accepting trees with an even number of
// a-labels. States: 0 = even, 1 = odd.
TreeAutomaton EvenAAutomaton() {
  TreeAutomaton m(2, 2);
  auto add = [&](LabelId label, std::vector<StateId> children, StateId target) {
    EXPECT_TRUE(m.AddTransition(label, std::move(children), target).ok());
  };
  for (LabelId label : {0, 1}) {
    int flip = label == 0 ? 1 : 0;
    add(label, {}, flip == 1 ? 1 : 0);
    for (StateId c : {0, 1}) {
      add(label, {c}, (c + flip) % 2);
      for (StateId c2 : {0, 1}) {
        add(label, {c, c2}, (c + c2 + flip) % 2);
      }
    }
  }
  m.SetAccepting(0);
  return m;
}

LabeledTree Chain(const std::vector<LabelId>& labels) {
  LabeledTree t;
  int prev = -1;
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    prev = t.AddNode(*it, prev == -1 ? std::vector<int>{}
                                     : std::vector<int>{prev});
  }
  t.root = prev;
  return t;
}

TEST(TreeAutomatonTest, RunAndAccept) {
  TreeAutomaton m = EvenAAutomaton();
  EXPECT_TRUE(m.Accepts(Chain({1, 1})).value());     // zero a's: even
  EXPECT_FALSE(m.Accepts(Chain({0, 1})).value());    // one a
  EXPECT_TRUE(m.Accepts(Chain({0, 0, 1})).value());  // two a's
  // Branching tree: a(a, a) has three a's -> odd.
  LabeledTree t;
  int l = t.AddNode(0);
  int r = t.AddNode(0);
  t.root = t.AddNode(0, {l, r});
  EXPECT_FALSE(m.Accepts(t).value());
}

TEST(TreeAutomatonTest, MissingTransitionRejects) {
  TreeAutomaton m(1, 2);
  ASSERT_TRUE(m.AddTransition(0, {}, 0).ok());
  m.SetAccepting(0);
  EXPECT_TRUE(m.Accepts(Chain({0})).value());
  EXPECT_FALSE(m.Accepts(Chain({1})).value());  // no transition for label 1
}

TEST(TreeAutomatonTest, DeterminismEnforced) {
  TreeAutomaton m(2, 1);
  ASSERT_TRUE(m.AddTransition(0, {}, 0).ok());
  EXPECT_EQ(m.AddTransition(0, {}, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(m.AddTransition(0, {}, 0).ok());  // idempotent re-add
}

TEST(TreeAutomatonTest, ProductConjunction) {
  // Even-a automaton against "root label is a" automaton.
  TreeAutomaton even = EvenAAutomaton();
  TreeAutomaton root_a(2, 2);  // state 1 iff node label is a
  for (LabelId label : {0, 1}) {
    StateId target = label == 0 ? 1 : 0;
    ASSERT_TRUE(root_a.AddTransition(label, {}, target).ok());
    for (StateId c : {0, 1}) {
      ASSERT_TRUE(root_a.AddTransition(label, {c}, target).ok());
      for (StateId c2 : {0, 1}) {
        ASSERT_TRUE(root_a.AddTransition(label, {c, c2}, target).ok());
      }
    }
  }
  root_a.SetAccepting(1);
  auto both = TreeAutomaton::Product(even, root_a, /*conjunction=*/true);
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->Accepts(Chain({0, 0})).value());   // two a's, root a
  EXPECT_FALSE(both->Accepts(Chain({1, 0, 0})).value());  // root b
  EXPECT_FALSE(both->Accepts(Chain({0})).value());     // odd a's
}

TEST(TreeAutomatonTest, CompleteAndComplement) {
  TreeAutomaton partial(1, 2);
  ASSERT_TRUE(partial.AddTransition(0, {}, 0).ok());
  partial.SetAccepting(0);
  EXPECT_FALSE(partial.IsComplete());
  TreeAutomaton complete = partial.Complete();
  EXPECT_TRUE(complete.IsComplete());
  auto complement = complete.Complement();
  ASSERT_TRUE(complement.ok());
  EXPECT_TRUE(complete.Accepts(Chain({0})).value());
  EXPECT_FALSE(complement->Accepts(Chain({0})).value());
  EXPECT_FALSE(complete.Accepts(Chain({1})).value());
  EXPECT_TRUE(complement->Accepts(Chain({1})).value());
  // Complement of an incomplete automaton is rejected.
  EXPECT_FALSE(partial.Complement().ok());
}

TEST(TreeAutomatonTest, EmptinessViaReachability) {
  TreeAutomaton m(3, 1);
  ASSERT_TRUE(m.AddTransition(0, {}, 0).ok());
  ASSERT_TRUE(m.AddTransition(0, {0}, 1).ok());
  // State 2 has no incoming transition chain from leaves.
  ASSERT_TRUE(m.AddTransition(0, {2}, 2).ok());
  m.SetAccepting(2);
  EXPECT_TRUE(m.IsLanguageEmpty());
  m.SetAccepting(1);
  EXPECT_FALSE(m.IsLanguageEmpty());
  auto reachable = m.ReachableStates();
  EXPECT_TRUE(reachable.count(0));
  EXPECT_TRUE(reachable.count(1));
  EXPECT_FALSE(reachable.count(2));
}

TEST(TypeAutomatonTest, MeasuresSubsetStates) {
  Rng rng(TestSeed());
  Graph g = RandomPartialKTree(14, 3, 0.8, &rng);
  auto td = Decompose(g);
  ASSERT_TRUE(td.ok());
  auto usage = MeasureThreeColorAutomaton(g, *td);
  ASSERT_TRUE(usage.ok()) << usage.status();
  EXPECT_GT(usage->distinct_subset_states, 0u);
  EXPECT_GT(usage->total_facts, 0u);
  EXPECT_GE(usage->max_subset_size, 1u);
  // Consistency with the solver (whatever the verdict is for this seed).
  auto solve = core::SolveThreeColor(g, *td, /*extract_coloring=*/false);
  ASSERT_TRUE(solve.ok());
  EXPECT_EQ(solve->colorable, BruteForceColoring(g, 3).has_value());
}

TEST(TypeAutomatonTest, FactCountTracksDatalogStates) {
  // The determinized automaton's total facts equal the datalog approach's
  // total solve() facts (they enumerate the same per-node sets).
  Graph g = CycleGraph(8);
  auto td = Decompose(g);
  ASSERT_TRUE(td.ok());
  auto usage = MeasureThreeColorAutomaton(g, *td);
  ASSERT_TRUE(usage.ok());
  auto solve = core::SolveThreeColor(g, *td, false);
  ASSERT_TRUE(solve.ok());
  EXPECT_EQ(usage->total_facts, solve->stats.total_states);
}

}  // namespace
}  // namespace treedl::fta
