#include <gtest/gtest.h>

#include "graph/gaifman.hpp"
#include "graph/generators.hpp"
#include "schema/generators.hpp"
#include "td/heuristics.hpp"
#include "td/normalize.hpp"
#include "td/validate.hpp"

#include "test_util.hpp"

namespace treedl {
namespace {

// --- Modified normal form (§5) ---------------------------------------------

TEST(NormalizeTest, PreservesValidityAndWidth) {
  Rng rng(TestSeed());
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomPartialKTree(16, 3, 0.7, &rng);
    auto td = Decompose(g);
    ASSERT_TRUE(td.ok());
    auto norm = Normalize(*td);
    ASSERT_TRUE(norm.ok()) << norm.status();
    EXPECT_EQ(norm->Width(), td->Width());
    EXPECT_TRUE(ValidateNormalized(*norm).ok());
    EXPECT_TRUE(ValidateForGraph(g, norm->ToRaw()).ok());
  }
}

TEST(NormalizeTest, RootBagPreserved) {
  Graph g = CycleGraph(6);
  auto td = Decompose(g);
  ASSERT_TRUE(td.ok());
  auto norm = Normalize(*td);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->Bag(norm->root()), td->Bag(td->root()));
}

TEST(NormalizeTest, SingleNodeBecomesLeaf) {
  TreeDecomposition td;
  td.AddNode({0, 1, 2});
  auto norm = Normalize(td);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm->NumNodes(), 1u);
  EXPECT_EQ(norm->node(norm->root()).kind, NormNodeKind::kLeaf);
}

TEST(NormalizeTest, IntroduceForgetChainsAreSingleStep) {
  TreeDecomposition td;
  TdNodeId root = td.AddNode({0, 1, 2});
  td.AddNode({3, 4, 5, 0}, root);  // differs by 3 removals + 2 introductions
  auto norm = Normalize(td);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(ValidateNormalized(*norm).ok());
  // Chain: leaf{0,3,4,5} -f3 -f4 -f5 +1 +2 → root: 1 leaf + 5 unary = 6.
  EXPECT_EQ(norm->NumNodes(), 6u);
  auto counts = norm->KindCounts();
  EXPECT_EQ(counts[static_cast<size_t>(NormNodeKind::kLeaf)], 1u);
  EXPECT_EQ(counts[static_cast<size_t>(NormNodeKind::kForget)], 3u);
  EXPECT_EQ(counts[static_cast<size_t>(NormNodeKind::kIntroduce)], 2u);
}

TEST(NormalizeTest, BranchNodesHaveEqualBags) {
  TreeDecomposition td;
  TdNodeId root = td.AddNode({0, 1});
  td.AddNode({1, 2}, root);
  td.AddNode({0, 3}, root);
  td.AddNode({0, 4}, root);  // three children force two branch nodes
  auto norm = Normalize(td);
  ASSERT_TRUE(norm.ok());
  auto counts = norm->KindCounts();
  EXPECT_EQ(counts[static_cast<size_t>(NormNodeKind::kBranch)], 2u);
  EXPECT_TRUE(ValidateNormalized(*norm).ok());
}

TEST(NormalizeTest, LeafCoverageOptionCoversAllElements) {
  Rng rng(TestSeed());
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = RandomPartialKTree(14, 2, 0.8, &rng);
    auto td = Decompose(g);
    ASSERT_TRUE(td.ok());
    NormalizeOptions options;
    options.ensure_leaf_coverage = true;
    auto norm = Normalize(*td, options);
    ASSERT_TRUE(norm.ok());
    std::vector<bool> in_leaf(g.NumVertices(), false);
    for (TdNodeId id : norm->PreOrder()) {
      if (norm->node(id).kind == NormNodeKind::kLeaf) {
        for (ElementId e : norm->Bag(id)) in_leaf[e] = true;
      }
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_TRUE(in_leaf[v]) << "vertex " << v << " in no leaf bag";
    }
    EXPECT_TRUE(ValidateForGraph(g, norm->ToRaw()).ok());
  }
}

TEST(NormalizeTest, CopyAboveBranchesOption) {
  TreeDecomposition td;
  TdNodeId root = td.AddNode({0, 1});
  td.AddNode({0, 1}, root);
  td.AddNode({0, 1}, root);
  NormalizeOptions options;
  options.copy_above_branches = true;
  auto norm = Normalize(td, options);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(ValidateNormalized(*norm).ok());
  for (TdNodeId id : norm->PreOrder()) {
    if (norm->node(id).kind != NormNodeKind::kBranch) continue;
    TdNodeId parent = norm->node(id).parent;
    ASSERT_NE(parent, kNoTdNode) << "branch node must not be the root";
    EXPECT_EQ(norm->Bag(parent), norm->Bag(id));
    EXPECT_EQ(norm->node(parent).children.size(), 1u);
  }
}

TEST(NormalizeTest, ValidatorCatchesBadKinds) {
  NormalizedTreeDecomposition bad;
  TdNodeId leaf = bad.AddNode({NormNodeKind::kLeaf, 0, {0, 1}, kNoTdNode, {}});
  // Introduce node whose bag does not add the element.
  TdNodeId intro = bad.AddNode(
      {NormNodeKind::kIntroduce, 5, {0, 1}, kNoTdNode, {leaf}});
  bad.SetRoot(intro);
  EXPECT_FALSE(ValidateNormalized(bad).ok());
}

TEST(NormalizeTest, BalancedInstanceNormalizes) {
  BalancedInstance inst = GenerateBalancedInstance(7);
  ASSERT_TRUE(ValidateForStructure(inst.encoding.structure, inst.td).ok());
  EXPECT_EQ(inst.td.Width(), 3);
  NormalizeOptions options;
  options.ensure_leaf_coverage = true;
  options.copy_above_branches = true;
  auto norm = Normalize(inst.td, options);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(ValidateNormalized(*norm).ok());
  EXPECT_TRUE(ValidateForStructure(inst.encoding.structure, norm->ToRaw()).ok());
  // All kinds of nodes occur (§6: "all different kinds of nodes occur evenly").
  auto counts = norm->KindCounts();
  EXPECT_GT(counts[static_cast<size_t>(NormNodeKind::kLeaf)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(NormNodeKind::kIntroduce)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(NormNodeKind::kForget)], 0u);
  EXPECT_GT(counts[static_cast<size_t>(NormNodeKind::kBranch)], 0u);
}

// --- Tuple normal form (Def 2.3) --------------------------------------------

class TupleNormalizeParamTest : public ::testing::TestWithParam<int> {};

TEST_P(TupleNormalizeParamTest, RandomPartialKTrees) {
  int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Graph g = RandomPartialKTree(12 + seed % 5, 2 + seed % 2, 0.75, &rng);
  auto td = Decompose(g);
  ASSERT_TRUE(td.ok());
  auto tuple = NormalizeTuple(*td);
  ASSERT_TRUE(tuple.ok()) << tuple.status();
  EXPECT_EQ(tuple->width(), td->Width());
  EXPECT_TRUE(ValidateTupleNormalized(*tuple).ok());
  // The tuple form is still a valid decomposition of the graph (bags only
  // ever grew during padding).
  EXPECT_TRUE(ValidateForGraph(g, tuple->ToRaw()).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleNormalizeParamTest,
                         ::testing::Range(0, 12));

TEST(TupleNormalizeTest, AllBagsFullSize) {
  Graph g = CycleGraph(7);
  auto td = Decompose(g);
  ASSERT_TRUE(td.ok());
  auto tuple = NormalizeTuple(*td);
  ASSERT_TRUE(tuple.ok());
  size_t full = static_cast<size_t>(tuple->width()) + 1;
  for (TdNodeId id : tuple->PreOrder()) {
    EXPECT_EQ(tuple->node(id).bag.size(), full);
  }
}

TEST(TupleNormalizeTest, KindInvariantsHold) {
  Rng rng(TestSeed());
  Graph g = RandomPartialKTree(15, 3, 0.65, &rng);
  auto tuple = NormalizeTuple(*Decompose(g));
  ASSERT_TRUE(tuple.ok());
  for (TdNodeId id : tuple->PreOrder()) {
    const TupleNode& n = tuple->node(id);
    switch (n.kind) {
      case TupleNodeKind::kLeaf:
        EXPECT_TRUE(n.children.empty());
        break;
      case TupleNodeKind::kPermutation:
      case TupleNodeKind::kElementReplacement:
        EXPECT_EQ(n.children.size(), 1u);
        break;
      case TupleNodeKind::kBranch:
        EXPECT_EQ(n.children.size(), 2u);
        break;
    }
  }
}

}  // namespace
}  // namespace treedl
