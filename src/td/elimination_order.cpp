#include "td/elimination_order.hpp"

#include <algorithm>
#include <set>

namespace treedl {

namespace {

Status CheckPermutation(const Graph& graph, const std::vector<VertexId>& order) {
  if (order.size() != graph.NumVertices()) {
    return Status::InvalidArgument("elimination order has wrong length");
  }
  std::vector<bool> seen(graph.NumVertices(), false);
  for (VertexId v : order) {
    if (v >= graph.NumVertices() || seen[v]) {
      return Status::InvalidArgument("elimination order is not a permutation");
    }
    seen[v] = true;
  }
  return Status::OK();
}

// Simulates elimination; fills bag-per-vertex (in elimination order) and,
// for each eliminated vertex, the earliest-later-eliminated neighbor (or
// kNoTdNode). Uses std::set adjacency for cheap edge insertion/removal.
void SimulateElimination(const Graph& graph, const std::vector<VertexId>& order,
                         std::vector<std::vector<ElementId>>* bags,
                         std::vector<int>* attach_position) {
  size_t n = graph.NumVertices();
  std::vector<std::set<VertexId>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<int> position(n);
  for (size_t i = 0; i < n; ++i) position[order[i]] = static_cast<int>(i);

  bags->assign(n, {});
  attach_position->assign(n, -1);
  for (size_t i = 0; i < n; ++i) {
    VertexId v = order[i];
    std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
    auto& bag = (*bags)[i];
    bag.push_back(v);
    int earliest_later = -1;
    for (VertexId u : nbrs) {
      bag.push_back(u);
      if (earliest_later == -1 || position[u] < earliest_later) {
        earliest_later = position[u];
      }
    }
    (*attach_position)[i] = earliest_later;
    // Clique-ify the neighborhood and remove v.
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(v);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    adj[v].clear();
  }
}

}  // namespace

StatusOr<TreeDecomposition> DecompositionFromOrder(
    const Graph& graph, const std::vector<VertexId>& order) {
  TREEDL_RETURN_IF_ERROR(CheckPermutation(graph, order));
  TreeDecomposition td;
  if (graph.NumVertices() == 0) {
    td.AddNode({});
    return td;
  }
  std::vector<std::vector<ElementId>> bags;
  std::vector<int> attach_position;
  SimulateElimination(graph, order, &bags, &attach_position);

  size_t n = graph.NumVertices();
  // Build top-down: the last-eliminated vertex's bag is the root; the bag of
  // order[i] hangs under the bag of its earliest later-eliminated neighbor
  // (or under the next bag in order for isolated vertices, keeping one tree).
  std::vector<TdNodeId> node_of_position(n, kNoTdNode);
  node_of_position[n - 1] = td.AddNode(bags[n - 1]);
  for (size_t i = n - 1; i-- > 0;) {
    int parent_pos = attach_position[i];
    if (parent_pos < 0) parent_pos = static_cast<int>(i) + 1;
    node_of_position[i] =
        td.AddNode(bags[i], node_of_position[static_cast<size_t>(parent_pos)]);
  }
  return td;
}

StatusOr<int> OrderWidth(const Graph& graph,
                         const std::vector<VertexId>& order) {
  TREEDL_RETURN_IF_ERROR(CheckPermutation(graph, order));
  std::vector<std::vector<ElementId>> bags;
  std::vector<int> attach_position;
  SimulateElimination(graph, order, &bags, &attach_position);
  int width = -1;
  for (const auto& bag : bags) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

}  // namespace treedl
