#include "td/heuristics.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "graph/gaifman.hpp"
#include "td/elimination_order.hpp"

namespace treedl {

namespace {

// Number of fill edges created by eliminating v given set-based adjacency.
size_t FillIn(const std::vector<std::set<VertexId>>& adj, VertexId v) {
  size_t fill = 0;
  std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
  for (size_t a = 0; a < nbrs.size(); ++a) {
    for (size_t b = a + 1; b < nbrs.size(); ++b) {
      if (!adj[nbrs[a]].count(nbrs[b])) ++fill;
    }
  }
  return fill;
}

std::vector<VertexId> GreedyOrder(const Graph& graph, bool min_fill) {
  size_t n = graph.NumVertices();
  std::vector<std::set<VertexId>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<bool> eliminated(n, false);
  std::vector<VertexId> order;
  order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    VertexId best = 0;
    size_t best_score = std::numeric_limits<size_t>::max();
    for (VertexId v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      size_t score = min_fill ? FillIn(adj, v) : adj[v].size();
      if (score < best_score) {
        best_score = score;
        best = v;
      }
    }
    order.push_back(best);
    eliminated[best] = true;
    std::vector<VertexId> nbrs(adj[best].begin(), adj[best].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(best);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    adj[best].clear();
  }
  return order;
}

// Min-fill with principled tie-breaking: candidates are compared by
// (fill, current degree, id); when `rng` is non-null, ties on (fill, degree)
// are instead broken uniformly at random — the randomized restarts of the
// multi-start variant.
std::vector<VertexId> TieBrokenMinFillOrder(const Graph& graph, Rng* rng) {
  size_t n = graph.NumVertices();
  std::vector<std::set<VertexId>> adj(n);
  for (auto [u, v] : graph.Edges()) {
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::vector<bool> eliminated(n, false);
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> ties;
  for (size_t step = 0; step < n; ++step) {
    VertexId best = 0;
    auto best_score = std::make_pair(std::numeric_limits<size_t>::max(),
                                     std::numeric_limits<size_t>::max());
    ties.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      auto score = std::make_pair(FillIn(adj, v), adj[v].size());
      if (score < best_score) {
        best_score = score;
        best = v;
        ties.clear();
        ties.push_back(v);
      } else if (rng != nullptr && score == best_score) {
        ties.push_back(v);
      }
    }
    if (rng != nullptr && ties.size() > 1) {
      best = ties[rng->UniformIndex(ties.size())];
    }
    order.push_back(best);
    eliminated[best] = true;
    std::vector<VertexId> nbrs(adj[best].begin(), adj[best].end());
    for (size_t a = 0; a < nbrs.size(); ++a) {
      adj[nbrs[a]].erase(best);
      for (size_t b = a + 1; b < nbrs.size(); ++b) {
        adj[nbrs[a]].insert(nbrs[b]);
        adj[nbrs[b]].insert(nbrs[a]);
      }
    }
    adj[best].clear();
  }
  return order;
}

// Maximum cardinality search: repeatedly pick the vertex with the most
// already-visited neighbors; the *reverse* of the visit order is used as the
// elimination order (exact on chordal graphs).
std::vector<VertexId> McsOrder(const Graph& graph) {
  size_t n = graph.NumVertices();
  std::vector<int> weight(n, 0);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> visit_order;
  visit_order.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    int best_weight = -1;
    VertexId best = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (!visited[v] && weight[v] > best_weight) {
        best_weight = weight[v];
        best = v;
      }
    }
    visited[best] = true;
    visit_order.push_back(best);
    for (VertexId u : graph.Neighbors(best)) {
      if (!visited[u]) ++weight[u];
    }
  }
  std::reverse(visit_order.begin(), visit_order.end());
  return visit_order;
}

// (induced width, Σ 3^min(|bag|, 20)) of an order — the same state-count
// model as td::EstimateNodeCost, aggregated over the raw bags, used to rank
// multi-start candidates without normalizing each one.
std::pair<int, uint64_t> OrderQuality(const Graph& graph,
                                      const std::vector<VertexId>& order) {
  StatusOr<TreeDecomposition> td = DecompositionFromOrder(graph, order);
  TREEDL_CHECK(td.ok()) << td.status();
  uint64_t cost = 0;
  for (size_t id = 0; id < td->NumNodes(); ++id) {
    size_t b = std::min<size_t>(td->Bag(static_cast<TdNodeId>(id)).size(), 20);
    uint64_t states = 1;
    for (size_t i = 0; i < b; ++i) states *= 3;
    cost += states;
  }
  return {td->Width(), cost};
}

}  // namespace

std::vector<VertexId> HeuristicOrder(const Graph& graph,
                                     TdHeuristic heuristic) {
  switch (heuristic) {
    case TdHeuristic::kMinDegree:
      return GreedyOrder(graph, /*min_fill=*/false);
    case TdHeuristic::kMinFill:
      return GreedyOrder(graph, /*min_fill=*/true);
    case TdHeuristic::kMcs:
      return McsOrder(graph);
    case TdHeuristic::kMinFillTieBreak:
      return TieBrokenMinFillOrder(graph, /*rng=*/nullptr);
  }
  TREEDL_CHECK(false) << "unknown heuristic";
  return {};
}

std::vector<VertexId> MinFillMultiStartOrder(const Graph& graph,
                                             const MultiStartOptions& options) {
  TREEDL_CHECK(graph.NumVertices() > 0);
  std::vector<VertexId> best = TieBrokenMinFillOrder(graph, nullptr);
  std::pair<int, uint64_t> best_quality = OrderQuality(graph, best);
  for (size_t start = 1; start < options.starts; ++start) {
    // One independent deterministic stream per restart (golden-ratio step).
    Rng rng(options.seed + start * 0x9E3779B97F4A7C15ULL);
    std::vector<VertexId> candidate = TieBrokenMinFillOrder(graph, &rng);
    std::pair<int, uint64_t> quality = OrderQuality(graph, candidate);
    if (quality < best_quality) {
      best_quality = quality;
      best = std::move(candidate);
    }
  }
  return best;
}

StatusOr<TreeDecomposition> Decompose(const Graph& graph,
                                      TdHeuristic heuristic) {
  if (graph.NumVertices() == 0) {
    return Status::InvalidArgument("cannot decompose the empty graph");
  }
  return DecompositionFromOrder(graph, HeuristicOrder(graph, heuristic));
}

StatusOr<TreeDecomposition> DecomposeStructure(const Structure& structure,
                                               TdHeuristic heuristic) {
  if (structure.NumElements() == 0) {
    return Status::InvalidArgument("cannot decompose the empty structure");
  }
  return Decompose(GaifmanGraph(structure), heuristic);
}

StatusOr<int> ExactTreewidth(const Graph& graph) {
  size_t n = graph.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (n > 20) {
    return Status::OutOfRange("exact treewidth limited to 20 vertices");
  }
  // f(S) = best achievable max-bag-minus-one when the vertex set S (bitmask)
  // is eliminated first, in some order. Transition: last vertex v of the
  // prefix costs q(S \ {v}, v) = |neighbors of v reachable via S \ {v}|.
  size_t full = size_t{1} << n;
  std::vector<int8_t> f(full, 0);
  auto q = [&](uint64_t through, VertexId v) -> int {
    // BFS from v, travelling only through vertices in `through`; count
    // reached vertices outside `through` (excluding v itself).
    uint64_t seen = uint64_t{1} << v;
    std::vector<VertexId> stack{v};
    int count = 0;
    while (!stack.empty()) {
      VertexId u = stack.back();
      stack.pop_back();
      for (VertexId w : graph.Neighbors(u)) {
        if (seen & (uint64_t{1} << w)) continue;
        seen |= uint64_t{1} << w;
        if (through & (uint64_t{1} << w)) {
          stack.push_back(w);
        } else {
          ++count;
        }
      }
    }
    return count;
  };
  f[0] = -1;
  for (uint64_t s = 1; s < full; ++s) {
    int best = std::numeric_limits<int>::max();
    uint64_t rest = s;
    while (rest) {
      int v = __builtin_ctzll(rest);
      rest &= rest - 1;
      uint64_t prev = s & ~(uint64_t{1} << v);
      int cost = std::max(static_cast<int>(f[prev]),
                          q(prev, static_cast<VertexId>(v)));
      best = std::min(best, cost);
    }
    f[s] = static_cast<int8_t>(best);
  }
  return static_cast<int>(f[full - 1]);
}

}  // namespace treedl
